// Teamaudit: an outsider (auditor / new team member / manager) explores a
// synthetic collaborative project at multiple resolutions. Per-result
// segments are summarized with different property aggregations and
// provenance-type radii, showing how PgSum trades detail for compactness
// while never inventing a pipeline that did not happen.
package main

import (
	"fmt"
	"log"

	provdb "repro"
)

func main() {
	// A mid-sized synthetic project (Sec. V's Pd generator).
	g := provdb.GeneratePd(provdb.PdConfig{N: 4000, Seed: 7})
	if err := g.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("project: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	// Slice the project into per-outcome segments: for a handful of late
	// result entities, segment back to the earliest datasets.
	src, _ := provdb.DefaultPdQuery(g)
	ents := g.Prov().Entities()
	var segs []*provdb.Segment
	for i := 0; i < 6; i++ {
		dst := ents[len(ents)-1-i*3]
		seg, err := g.Segment(provdb.Query{
			Src: src,
			Dst: []provdb.VertexID{dst},
		})
		if err != nil {
			log.Fatal(err)
		}
		if seg.NumVertices() > 2 {
			segs = append(segs, seg)
		}
	}
	fmt.Printf("collected %d segments\n", len(segs))

	// Resolution 1: coarse — ignore everything but the vertex kinds.
	coarse, err := provdb.Summarize(segs, provdb.SumOptions{TypeRadius: 0})
	if err != nil {
		log.Fatal(err)
	}
	// Resolution 2: group activities by command (what happened), 1-hop
	// provenance types (how it was wired).
	medium, err := provdb.Summarize(segs, provdb.SumOptions{
		K:          provdb.Aggregation{Activity: []string{"command"}},
		TypeRadius: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Resolution 3: also distinguish files and a wider neighborhood.
	fine, err := provdb.Summarize(segs, provdb.SumOptions{
		K: provdb.Aggregation{
			Activity: []string{"command", "options"},
			Entity:   []string{"filename"},
		},
		TypeRadius: 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nresolution ladder (lower cr = more compact):")
	fmt.Printf("  kinds only,        R0: %4d nodes  cr=%.3f\n", len(coarse.Nodes), coarse.CompactionRatio())
	fmt.Printf("  by command,        R1: %4d nodes  cr=%.3f\n", len(medium.Nodes), medium.CompactionRatio())
	fmt.Printf("  command+file+opts, R2: %4d nodes  cr=%.3f\n", len(fine.Nodes), fine.CompactionRatio())

	// The paper's comparison: pSum (keyword answer-graph summarizer)
	// cannot exploit directed trace equivalence and compacts less.
	pcr := provdb.PSumBaseline(segs, provdb.Aggregation{Activity: []string{"command"}})
	fmt.Printf("\npSum baseline at the middle resolution: cr=%.3f (PgSum: %.3f)\n",
		pcr, medium.CompactionRatio())

	// Most common pipeline steps at the middle resolution.
	fmt.Println("\npipeline steps seen in every segment (frequency = 100%):")
	for _, e := range medium.Edges {
		if e.Freq == 1 {
			fmt.Printf("  %s -[%s]-> %s\n", medium.Nodes[e.From].Label, e.Rel, medium.Nodes[e.To].Label)
		}
	}
}
