// Secaudit: provenance segmentation for system diagnosis, the paper's
// "other provenance applications" claim (Sec. VII): no workflow skeleton,
// verbose ingestion, and a program — not a human — issuing queries where
// Vsrc = Vdst (the paper notes PgSeg allows the two sets to be identical,
// citing the cybersecurity segmentation use case [26]).
package main

import (
	"fmt"
	"log"
	"os"

	provdb "repro"
	"repro/internal/graph"
	"repro/internal/prov"
)

func main() {
	g := provdb.New()

	// A small host-activity trace: a service reads config + input, writes
	// logs and outputs; a suspicious process touches the same files.
	conf := g.Import("system", "service.conf", "")
	input := g.Import("ops", "upload.bin", "")
	_, svc1 := g.Run("service", "handle-request", []provdb.VertexID{conf, input}, []string{"access.log", "result.dat"})
	_, svc2 := g.Run("service", "handle-request", []provdb.VertexID{conf, svc1[1]}, []string{"access.log", "result.dat"})
	_, sus := g.Run("intruder", "exfil", []provdb.VertexID{svc2[1], conf}, []string{"staging.tar"})
	_, _ = g.Run("intruder", "cleanup", []provdb.VertexID{sus[0]}, []string{"staging.tar"})

	if err := g.Validate(); err != nil {
		log.Fatal(err)
	}

	// The detector flags staging.tar. A program segments around it with
	// Vsrc = Vdst = {staging.tar}: the zero-length palindrome anchors the
	// slice, and expansion pulls in the k-activity neighborhood — the
	// "radius" style slicing the paper relates VC2 to.
	flagged, _ := g.Latest("staging.tar")
	seg, err := g.Segment(provdb.Query{
		Src: []provdb.VertexID{flagged},
		Dst: []provdb.VertexID{flagged},
		Boundary: provdb.Boundary{
			Expansions: []provdb.Expansion{{Within: []provdb.VertexID{flagged}, K: 3}},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("slice around flagged artifact (src = dst = staging.tar):")
	seg.Render(os.Stdout)

	// Who is implicated? Agents arrive via the VC4 rule.
	fmt.Println("\nimplicated agents:")
	for _, v := range seg.Vertices {
		if g.Prov().KindOf(v) == provdb.KindAgent {
			fmt.Printf("  %s\n", g.Name(v))
		}
	}

	// Scope the slice down by excluding the service's own activities
	// (adjust step: exclusion boundary over the cached segment, no
	// re-induction).
	service := g.Agent("service")
	only := g.AdjustExclude(seg, provdb.Boundary{
		VertexFilters: []provdb.VertexFilter{
			func(p *prov.Graph, v graph.VertexID) bool {
				if p.KindOf(v) != prov.KindActivity {
					return true
				}
				var buf []graph.VertexID
				for _, u := range p.AgentsOf(v, buf) {
					if u == service {
						return false
					}
				}
				return true
			},
		},
	})
	fmt.Printf("\nafter excluding the service's own activities: %d of %d vertices remain\n",
		only.NumVertices(), seg.NumVertices())
}
