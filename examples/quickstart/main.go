// Quickstart: record the paper's Fig. 2 face-classification lifecycle,
// then ask the three worked queries — two segmentation queries (Q1, Q2)
// and one summarization query (Q3).
package main

import (
	"fmt"
	"log"
	"os"

	provdb "repro"
)

func main() {
	// Record a small collaborative lifecycle by hand (the same graph the
	// paper's Fig. 2 uses; provdb.Fig2Lifecycle() builds it too).
	g := provdb.New()

	// v1 — Alice sets the project up and trains a first model.
	dataset := g.Import("Alice", "dataset", "http://data.example/faces")
	model1 := g.Import("Alice", "model", "")
	solver1 := g.Import("Alice", "solver", "")
	_, v1 := g.Run("Alice", "train", []provdb.VertexID{model1, solver1, dataset}, []string{"logs", "weights"})
	g.SetProp(v1[0], "acc", provdb.Float(0.7))

	// v2 — Alice edits the model and retrains; accuracy drops.
	_, mo := g.Run("Alice", "update", []provdb.VertexID{model1}, []string{"model"})
	_, v2 := g.Run("Alice", "train", []provdb.VertexID{mo[0], solver1, dataset}, []string{"logs", "weights"})
	g.SetProp(v2[0], "acc", provdb.Float(0.5))

	// v3 — Bob tunes the solver instead, using Alice's original model.
	_, so := g.Run("Bob", "update", []provdb.VertexID{solver1}, []string{"solver"})
	_, v3 := g.Run("Bob", "train", []provdb.VertexID{model1, so[0], dataset}, []string{"logs", "weights"})
	g.SetProp(v3[0], "acc", provdb.Float(0.75))

	if err := g.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lifecycle recorded: %d vertices, %d edges\n\n", g.NumVertices(), g.NumEdges())

	// Q1 — Bob wants to know what Alice did in v2: how is her weights file
	// connected to the dataset? He excludes attribution/derivation edges
	// and extends two activities from the weights.
	weights2 := v2[1]
	q1 := provdb.Query{
		Src: []provdb.VertexID{dataset},
		Dst: []provdb.VertexID{weights2},
		Boundary: provdb.Boundary{
			ExcludeRels: []provdb.Rel{provdb.RelAttr, provdb.RelDeriv},
			Expansions:  []provdb.Expansion{{Within: []provdb.VertexID{weights2}, K: 2}},
		},
	}
	seg1, err := g.Segment(q1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Q1: how was weights-v2 generated from dataset-v1?")
	seg1.Render(os.Stdout)
	fmt.Println()

	// Q2 — Alice wants to learn how Bob improved accuracy.
	logs3 := v3[0]
	q2 := provdb.Query{
		Src: []provdb.VertexID{dataset},
		Dst: []provdb.VertexID{logs3},
		Boundary: provdb.Boundary{
			ExcludeRels: []provdb.Rel{provdb.RelAttr, provdb.RelDeriv},
			Expansions:  []provdb.Expansion{{Within: []provdb.VertexID{logs3}, K: 2}},
		},
	}
	seg2, err := g.Segment(q2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Q2: how was the v3 accuracy log generated?")
	seg2.Render(os.Stdout)
	fmt.Println()

	// Q3 — an auditor summarizes both trails: aggregate activities by
	// command, entities by filename, 1-hop provenance types.
	psg, err := provdb.Summarize([]*provdb.Segment{seg1, seg2}, provdb.SumOptions{
		K: provdb.Aggregation{
			Entity:   []string{"filename"},
			Activity: []string{"command"},
		},
		TypeRadius: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Q3: summary of both trails (edge labels are appearance frequencies):")
	psg.Render(os.Stdout)
}
