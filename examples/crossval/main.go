// Crossval: the paper's Fig. 3 scenario — repetitive model adjustment with
// dataset partitions, where the user only remembers one model version and
// the final comparison plot. The similar-path rule (VC2) recovers the
// parallel adjustment rounds the user did not mention, and the
// property-constrained variant restricts matching to identical commands.
package main

import (
	"fmt"
	"log"
	"os"

	provdb "repro"
)

func main() {
	g := provdb.New()

	// A cross-validation-style project: partition the data, then run
	// three update-train-plot rounds, one per fold, and compare.
	raw := g.Import("carol", "rawdata", "http://data.example/raw")
	model := g.Import("carol", "model", "")
	_, folds := g.Run("carol", "partition", []provdb.VertexID{raw}, []string{"fold1", "fold2", "fold3"})

	cur := model
	var plots []provdb.VertexID
	for i, fold := range folds {
		_, mo := g.Run("carol", "update", []provdb.VertexID{cur}, []string{"model"})
		cur = mo[0]
		_, to := g.Run("carol", "train", []provdb.VertexID{cur, fold}, []string{"weights", "logs"})
		_, po := g.Run("carol", "plot", []provdb.VertexID{to[0]}, []string{fmt.Sprintf("plot%d", i+1)})
		plots = append(plots, po[0])
	}
	_, cmp := g.Run("carol", "compare", plots, []string{"report"})

	if err := g.Validate(); err != nil {
		log.Fatal(err)
	}

	// Carol asks: how does the model I touched relate to the final report?
	// She names only {model version, report}; VC2 induces the other folds'
	// rounds because they contribute "in a similar way".
	seg, err := g.Segment(provdb.Query{
		Src: []provdb.VertexID{cur},
		Dst: []provdb.VertexID{cmp[0]},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("similar adjustment paths induced from {model, report}:")
	seg.Render(os.Stdout)
	fmt.Println()

	// The property-constrained variant (paper Sec. III.A.2's
	// generalization): matched activities must share the same command, a
	// finer notion of "contributing in the same way".
	seg2, err := g.SegmentWith(provdb.Query{
		Src: []provdb.VertexID{cur},
		Dst: []provdb.VertexID{cmp[0]},
	}, provdb.SegmentOptions{MatchActivityProp: "command"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with command-matched paths: %d vertices (unconstrained: %d)\n",
		seg2.NumVertices(), seg.NumVertices())

	// Write the segment for visualization.
	f, err := os.Create("crossval-segment.dot")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := seg.WriteDOT(f); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote crossval-segment.dot (render with: dot -Tpng)")
}
