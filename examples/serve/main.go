// Serve walkthrough: run the provd HTTP service in-process and drive every
// endpoint the way an external client would — ingest a small collaborative
// lifecycle over the wire, ask a segmentation query twice (the repeat is
// answered by the LRU cache), summarize two segments, run a Cypher-subset
// lookup, and watch /stats expose the cache behavior around a write.
//
// The same API is served standalone by `provd -addr :8042` (see cmd/provd).
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	"repro/internal/prov"
	"repro/internal/server"
)

func main() {
	// An empty graph: this walkthrough ingests everything over HTTP.
	store := server.NewStore(prov.New(), 64)
	ts := httptest.NewServer(server.NewServer(store))
	defer ts.Close()
	fmt.Println("provd serving on", ts.URL)

	// --- 1. ingest a lifecycle over the wire ---
	// Alice imports a dataset and trains; ids come back in the response and
	// chain into the next batch.
	var ing server.IngestResponse
	post(ts.URL+"/ingest", server.IngestRequest{Ops: []server.IngestOp{
		{Op: "import", Agent: "Alice", Artifact: "dataset", URL: "http://data.example/faces"},
		{Op: "import", Agent: "Alice", Artifact: "model"},
	}}, &ing)
	dataset, model := ing.Results[0].ID, ing.Results[1].ID

	post(ts.URL+"/ingest", server.IngestRequest{Ops: []server.IngestOp{
		{Op: "run", Agent: "Alice", Command: "train", Inputs: []uint32{dataset, model}, Outputs: []string{"weights", "logs"}},
	}}, &ing)
	weights := ing.Results[0].Outputs[0]

	post(ts.URL+"/ingest", server.IngestRequest{Ops: []server.IngestOp{
		{Op: "run", Agent: "Bob", Command: "eval", Inputs: []uint32{weights}, Outputs: []string{"report"}},
	}}, &ing)
	report := ing.Results[0].Outputs[0]
	fmt.Printf("ingested lifecycle: %d vertices, %d edges\n\n", ing.Vertices, ing.Edges)

	// --- 2. segmentation, twice: the repeat hits the LRU cache ---
	segReq := server.SegmentRequest{Src: []uint32{dataset}, Dst: []uint32{report}}
	var seg server.SegmentResponse
	post(ts.URL+"/segment", segReq, &seg)
	fmt.Printf("segment(dataset -> report): |V|=%d |E|=%d cached=%v\n",
		seg.NumVertices, seg.NumEdges, seg.Cached)
	for _, v := range seg.Vertices {
		fmt.Printf("  [%s] %s (%s)\n", v.Kind, v.Name, v.Rule)
	}
	post(ts.URL+"/segment", segReq, &seg)
	fmt.Printf("same query again:  |V|=%d |E|=%d cached=%v\n\n",
		seg.NumVertices, seg.NumEdges, seg.Cached)

	// --- 3. summarization over two segment queries ---
	var sum server.SummarizeResponse
	post(ts.URL+"/summarize", server.SummarizeRequest{
		Segments: []server.SegmentSpec{
			{Src: []uint32{dataset}, Dst: []uint32{weights}},
			{Src: []uint32{dataset}, Dst: []uint32{report}},
		},
		AggActivity: []string{"command"},
		TypeRadius:  1,
	}, &sum)
	fmt.Printf("summary: %d nodes from %d occurrences, compaction ratio %.3f\n\n",
		len(sum.Nodes), sum.InputVertices, sum.CompactionRatio)

	// --- 4. a Cypher-subset lookup ---
	var q server.QueryResponse
	post(ts.URL+"/query", server.QueryRequest{
		Query: fmt.Sprintf("match (e:E) where id(e) in [%d, %d] return e", dataset, weights),
	}, &q)
	fmt.Printf("cypher lookup returned %d rows\n\n", q.NumRows)

	// --- 5. stats: cache counters around a write ---
	fmt.Println("stats before write:", cacheLine(ts.URL))
	post(ts.URL+"/ingest", server.IngestRequest{Ops: []server.IngestOp{
		{Op: "run", Agent: "Alice", Command: "retrain", Inputs: []uint32{dataset}, Outputs: []string{"weights"}},
	}}, &ing)
	fmt.Println("stats after write: ", cacheLine(ts.URL), "(write invalidated the cache)")
	post(ts.URL+"/segment", segReq, &seg)
	fmt.Printf("post-write repeat: cached=%v (re-solved against the new graph)\n", seg.Cached)
}

// post sends a JSON request and decodes the reply into out.
func post(url string, req, out any) {
	body, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e server.ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		log.Fatalf("%s: %d: %s", url, resp.StatusCode, e.Error)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

// cacheLine fetches /stats and formats the cache counters.
func cacheLine(base string) string {
	var st server.StoreStats
	resp, err := http.Get(base + "/stats")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatal(err)
	}
	return fmt.Sprintf("hits=%d misses=%d entries=%d invalidations=%d",
		st.Cache.Hits, st.Cache.Misses, st.Cache.Entries, st.Cache.Invalidations)
}
