// Package provdb is a provenance management and querying library for data
// science lifecycles, reproducing "Understanding Data Science Lifecycle
// Provenance via Graph Segmentation and Summarization" (Miao & Deshpande,
// ICDE 2019).
//
// It stores W3C PROV provenance graphs in an embedded property graph and
// provides the paper's two high-level query operators:
//
//   - PgSeg — graph segmentation: given source and destination entities and
//     flexible boundary criteria, induce the subgraph explaining how the
//     destinations were generated, including "similar path" ancestors
//     defined by the context-free language L(SimProv).
//
//   - PgSum — graph summarization: combine multiple segments into a
//     provenance summary graph that merges equivalent vertices (under a
//     property aggregation and a k-hop provenance type) while preserving
//     the path-label language exactly.
//
// Quickstart:
//
//	g := provdb.New()
//	data := g.Import("alice", "dataset", "http://example.com/faces")
//	model := g.Import("alice", "model", "")
//	_, outs := g.Run("alice", "train", []provdb.VertexID{data, model}, []string{"weights", "logs"})
//	seg, _ := g.Segment(provdb.Query{Src: []provdb.VertexID{data}, Dst: outs[:1]})
//	seg.Render(os.Stdout)
//
// The implementation lives in internal/ packages (one per subsystem: the
// property graph store, the PROV model, compressed bitmaps, CFL
// reachability, the operators, baselines, and workload generators); this
// package is the stable facade examples and benchmarks use.
package provdb

import (
	"io"

	"repro/internal/bitmap"
	"repro/internal/core"
	"repro/internal/cypher"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/prov"
	"repro/internal/psum"
)

// Re-exported identifier and model types.
type (
	// VertexID identifies a vertex in a provenance graph.
	VertexID = graph.VertexID
	// EdgeID identifies an edge.
	EdgeID = graph.EdgeID
	// Value is a property value (String / Int / Float / Bool).
	Value = graph.Value
	// Kind is a PROV vertex kind (entity, activity, agent).
	Kind = prov.Kind
	// Rel is a PROV relationship type.
	Rel = prov.Rel
)

// Re-exported PROV constants.
const (
	KindEntity   = prov.KindEntity
	KindActivity = prov.KindActivity
	KindAgent    = prov.KindAgent

	RelUsed  = prov.RelUsed
	RelGen   = prov.RelGen
	RelAssoc = prov.RelAssoc
	RelAttr  = prov.RelAttr
	RelDeriv = prov.RelDeriv
)

// Property value constructors.
var (
	// String wraps a string property value.
	String = graph.String
	// Int wraps an integer property value.
	Int = graph.Int
	// Float wraps a float property value.
	Float = graph.Float
	// Bool wraps a boolean property value.
	Bool = graph.Bool
)

// Segmentation (PgSeg) types.
type (
	// Query is the PgSeg 3-tuple (Vsrc, Vdst, Boundary).
	Query = core.Query
	// Boundary holds exclusion filters and expansion specifications.
	Boundary = core.Boundary
	// Expansion asks for ancestry within K activities of the Within set.
	Expansion = core.Expansion
	// VertexFilter / EdgeFilter are exclusion predicates.
	VertexFilter = core.VertexFilter
	// EdgeFilter is the edge exclusion predicate.
	EdgeFilter = core.EdgeFilter
	// Segment is a PgSeg result subgraph.
	Segment = core.Segment
	// SegmentOptions select the VC2 solver and its knobs.
	SegmentOptions = core.Options
	// SolverKind names a VC2 algorithm.
	SolverKind = core.SolverKind
)

// VC2 solver kinds.
const (
	// SolverTst is SimProvTst, the default per-destination linear solver.
	SolverTst = core.SolverTst
	// SolverAlg is SimProvAlg on the rewritten grammar.
	SolverAlg = core.SolverAlg
	// SolverCflrB is the generic CFLR baseline.
	SolverCflrB = core.SolverCflrB
)

// Summarization (PgSum) types.
type (
	// SumOptions configure PgSum: property aggregation K and provenance
	// type radius Rk.
	SumOptions = core.SumOptions
	// Aggregation is K = (K_E, K_A, K_U).
	Aggregation = core.Aggregation
	// Psg is a provenance summary graph.
	Psg = core.Psg
	// PsgNode / PsgEdge are its elements.
	PsgNode = core.PsgNode
	// PsgEdge is a frequency-annotated summary edge.
	PsgEdge = core.PsgEdge
)

// Generator configurations (paper Sec. V).
type (
	// PdConfig parameterizes the lifecycle graph generator.
	PdConfig = gen.PdConfig
	// SdConfig parameterizes the similar-segment generator.
	SdConfig = gen.SdConfig
)

// Fast-set factories for SegmentOptions.Sets.
var (
	// BitsetSets uses dense bitsets (default).
	BitsetSets = bitmap.Factory(bitmap.BitsetFactory)
	// RoaringSets uses compressed bitmaps (the paper's Cbm variants).
	RoaringSets = bitmap.Factory(bitmap.RoaringFactory)
)

// Graph is a provenance graph with lifecycle-recording conveniences.
type Graph struct {
	rec *prov.Recorder
}

// New returns an empty provenance graph.
func New() *Graph {
	return &Graph{rec: prov.NewRecorder()}
}

// wrap adapts an existing PROV graph, rebuilding the lifecycle indexes so
// recording resumes where the loaded graph left off (artifact versions keep
// counting, agents are reused instead of duplicated).
func wrap(p *prov.Graph) *Graph {
	return &Graph{rec: prov.WrapRecorder(p)}
}

// Prov exposes the underlying PROV-typed graph.
func (g *Graph) Prov() *prov.Graph { return g.rec.P }

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return g.rec.P.NumVertices() }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return g.rec.P.NumEdges() }

// Validate checks PROV well-formedness (typed endpoints, acyclicity).
func (g *Graph) Validate() error { return g.rec.P.Validate() }

// --- lifecycle recording (Fig. 1's ingestion surface) ---

// Agent returns (creating if needed) the agent vertex for a team member.
func (g *Graph) Agent(name string) VertexID { return g.rec.Agent(name) }

// Import records an externally added artifact snapshot attributed to agent.
func (g *Graph) Import(agent, artifact, url string) VertexID {
	return g.rec.Import(agent, artifact, url)
}

// Snapshot records a new version of an artifact without a generating
// activity.
func (g *Graph) Snapshot(artifact string) VertexID { return g.rec.Snapshot(artifact) }

// Run records an activity by agent that used inputs and generated new
// snapshots of the named output artifacts.
func (g *Graph) Run(agent, command string, inputs []VertexID, outputs []string) (VertexID, []VertexID) {
	return g.rec.Run(agent, command, inputs, outputs)
}

// Latest returns the newest snapshot of an artifact.
func (g *Graph) Latest(artifact string) (VertexID, bool) { return g.rec.Latest(artifact) }

// Version returns the n-th (1-based) snapshot of an artifact.
func (g *Graph) Version(artifact string, n int) (VertexID, bool) { return g.rec.Version(artifact, n) }

// SetProp sets a vertex property.
func (g *Graph) SetProp(v VertexID, key string, val Value) {
	g.rec.P.PG().SetVertexProp(v, key, val)
}

// Prop reads a vertex property.
func (g *Graph) Prop(v VertexID, key string) Value { return g.rec.P.PG().VertexProp(v, key) }

// Name returns the display name of a vertex.
func (g *Graph) Name(v VertexID) string { return g.rec.P.Name(v) }

// --- querying ---

// Segment evaluates a PgSeg query with default options (SimProvTst).
func (g *Graph) Segment(q Query) (*Segment, error) {
	return g.SegmentWith(q, SegmentOptions{})
}

// SegmentWith evaluates a PgSeg query with explicit solver options.
func (g *Graph) SegmentWith(q Query, opts SegmentOptions) (*Segment, error) {
	return core.NewEngine(g.rec.P, opts).Segment(q)
}

// NewSegment builds a segment from an explicit vertex set (externally
// delimited slices enter PgSum this way).
func (g *Graph) NewSegment(vertices []VertexID) *Segment {
	return core.NewSegment(g.rec.P, vertices)
}

// AdjustExclude applies extra exclusion boundaries to a cached segment.
func (g *Graph) AdjustExclude(s *Segment, b Boundary) *Segment {
	return core.NewEngine(g.rec.P, SegmentOptions{}).AdjustExclude(s, b)
}

// AdjustExpand grows a cached segment by an expansion specification.
func (g *Graph) AdjustExpand(s *Segment, ex Expansion) (*Segment, error) {
	return core.NewEngine(g.rec.P, SegmentOptions{}).AdjustExpand(s, ex)
}

// Summarize evaluates PgSum over a set of segments.
func Summarize(segs []*Segment, opts SumOptions) (*Psg, error) {
	return core.Summarize(segs, opts)
}

// PSumBaseline runs the pSum answer-graph summarization baseline and
// returns its compaction ratio (for comparison experiments).
func PSumBaseline(segs []*Segment, k Aggregation) float64 {
	return psum.Summarize(segs, psum.Options{K: k}).CompactionRatio()
}

// CypherOptions bound the baseline Cypher evaluator.
type CypherOptions = cypher.Options

// CypherResult is a baseline query result.
type CypherResult = cypher.Result

// Cypher evaluates a query in the supported Cypher subset (the paper's
// Neo4j baseline; exponential on variable-length path joins).
func (g *Graph) Cypher(query string, opts CypherOptions) (*CypherResult, error) {
	return cypher.NewProvEvaluator(g.rec.P, opts).Run(query)
}

// --- persistence & interchange ---

// Save writes the graph in the binary property-graph format.
func (g *Graph) Save(w io.Writer) error { return g.rec.P.PG().Save(w) }

// Load reads a graph written by Save.
func Load(r io.Reader) (*Graph, error) {
	pg, err := graph.Load(r)
	if err != nil {
		return nil, err
	}
	return wrap(prov.Wrap(pg)), nil
}

// ExportJSON writes the PROV-JSON-style interchange document.
func (g *Graph) ExportJSON(w io.Writer) error { return g.rec.P.ExportJSON(w) }

// ImportJSON reads a PROV-JSON-style document.
func ImportJSON(r io.Reader) (*Graph, error) {
	p, err := prov.ImportJSON(r)
	if err != nil {
		return nil, err
	}
	return wrap(p), nil
}

// --- generators ---

// GeneratePd builds a synthetic lifecycle provenance graph (paper Sec.
// V(a)).
func GeneratePd(cfg PdConfig) *Graph { return wrap(gen.Pd(cfg)) }

// GenerateSd builds |S| conceptually similar segments over one graph
// (paper Sec. V(b)).
func GenerateSd(cfg SdConfig) (*Graph, []*Segment) {
	p, segs := gen.Sd(cfg)
	return wrap(p), segs
}

// DefaultPdQuery returns the paper's most challenging query on a Pd graph:
// first two entities as sources, last two as destinations.
func DefaultPdQuery(g *Graph) (src, dst []VertexID) { return gen.DefaultQuery(g.rec.P) }

// PdQueryAtRank places the sources at a percentile of the entity order of
// being (Fig. 5d).
func PdQueryAtRank(g *Graph, percent int) (src, dst []VertexID) {
	return gen.QueryAtRank(g.rec.P, percent)
}

// SdSumOptions returns the summarization options the Sd experiments use.
func SdSumOptions() SumOptions { return gen.SdSumOptions() }

// ExcludeRels builds a boundary that excludes whole PROV edge types.
func ExcludeRels(rels ...Rel) Boundary { return Boundary{ExcludeRels: rels} }
