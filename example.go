package provdb

// Worked examples from the paper, reusable by tests, examples and the CLI:
// the Fig. 2 face-classification lifecycle (Alice and Bob train models over
// three commits) and the Fig. 3 repetitive model-adjustment project.

import "repro/internal/prov"

// Fig2Lifecycle builds the provenance graph of the paper's running example
// (Fig. 2(a)/(c)) and returns it together with the named vertices the
// queries reference.
//
// Version v1 (Alice): imports dataset, model (from vgg16) and solver,
// trains; v2 (Alice): updates the model definition, retrains; v3 (Bob):
// updates the solver configuration, retrains with Alice's original model.
func Fig2Lifecycle() (*Graph, map[string]VertexID) {
	g := New()
	names := map[string]VertexID{}

	// Version v1 — Alice.
	dataset := g.Import("Alice", "dataset", "http://data.example/faces")
	model1 := g.Import("Alice", "model", "")
	g.SetProp(model1, "ref", String("vgg16"))
	solver1 := g.Import("Alice", "solver", "")
	g.SetProp(solver1, "iter", Int(20000))
	train1, outs1 := g.Run("Alice", "train", []VertexID{model1, solver1, dataset}, []string{"logs", "weights"})
	g.SetProp(train1, "opt", String("-gpu"))
	g.SetProp(outs1[0], "acc", Float(0.7))

	// Version v2 — Alice edits the model definition and retrains.
	update2, modelOuts := g.Run("Alice", "update", []VertexID{model1}, []string{"model"})
	model2 := modelOuts[0]
	g.SetProp(model2, "ann", String("AVG"))
	train2, outs2 := g.Run("Alice", "train", []VertexID{model2, solver1, dataset}, []string{"logs", "weights"})
	g.SetProp(train2, "opt", String("-gpu"))
	g.SetProp(outs2[0], "acc", Float(0.5))

	// Version v3 — Bob edits the solver and retrains with model v1.
	update3, solverOuts := g.Run("Bob", "update", []VertexID{solver1}, []string{"solver"})
	solver3 := solverOuts[0]
	g.SetProp(solver3, "lr", Float(0.01))
	train3, outs3 := g.Run("Bob", "train", []VertexID{model1, solver3, dataset}, []string{"logs", "weights"})
	g.SetProp(train3, "opt", String("-gpu"))
	g.SetProp(outs3[0], "acc", Float(0.75))

	names["dataset-v1"] = dataset
	names["model-v1"] = model1
	names["model-v2"] = model2
	names["solver-v1"] = solver1
	names["solver-v3"] = solver3
	names["train-v1"] = train1
	names["train-v2"] = train2
	names["train-v3"] = train3
	names["update-v2"] = update2
	names["update-v3"] = update3
	names["log-v1"] = outs1[0]
	names["weight-v1"] = outs1[1]
	names["log-v2"] = outs2[0]
	names["weight-v2"] = outs2[1]
	names["log-v3"] = outs3[0]
	names["weight-v3"] = outs3[1]
	names["Alice"] = g.Agent("Alice")
	names["Bob"] = g.Agent("Bob")
	return g, names
}

// Fig2Q1 is Query 1 (Fig. 2(d)): how is Alice's v2 weight connected to the
// dataset — excluding attribution and derivation edges, extending two
// activities from the weight.
func Fig2Q1(names map[string]VertexID) Query {
	return Query{
		Src: []VertexID{names["dataset-v1"]},
		Dst: []VertexID{names["weight-v2"]},
		Boundary: Boundary{
			ExcludeRels: []Rel{RelAttr, RelDeriv},
			Expansions:  []Expansion{{Within: []VertexID{names["weight-v2"]}, K: 2}},
		},
	}
}

// Fig2Q2 is Query 2: how did Bob derive the v3 accuracy log from the
// dataset.
func Fig2Q2(names map[string]VertexID) Query {
	return Query{
		Src: []VertexID{names["dataset-v1"]},
		Dst: []VertexID{names["log-v3"]},
		Boundary: Boundary{
			ExcludeRels: []Rel{RelAttr, RelDeriv},
			Expansions:  []Expansion{{Within: []VertexID{names["log-v3"]}, K: 2}},
		},
	}
}

// Fig2Q3Options is Query 3 (Fig. 2(e)): summarize Q1 and Q2 aggregating
// activities by command and entities by filename, with 1-hop provenance
// types.
func Fig2Q3Options() SumOptions {
	return SumOptions{
		K: Aggregation{
			Entity:   []string{prov.PropFilename},
			Activity: []string{prov.PropCommand},
		},
		TypeRadius: 1,
	}
}

// Fig3Project builds the repetitive model-adjustment project of Fig. 3:
// a partition step produces two datasets; two update-train-plot rounds
// adjust a model, and a compare step joins the plots.
func Fig3Project() (*Graph, map[string]VertexID) {
	g := New()
	names := map[string]VertexID{}

	d0 := g.Import("carol", "rawdata", "http://data.example/raw")
	m1 := g.Import("carol", "model", "")
	_, parts := g.Run("carol", "partition", []VertexID{d0}, []string{"d1", "d2"})
	d1, d2 := parts[0], parts[1]

	// Round 1: update model -> m2, train on d1 -> w2/l2, plot -> p2.
	_, m2out := g.Run("carol", "update", []VertexID{m1}, []string{"model2"})
	m2 := m2out[0]
	_, t1out := g.Run("carol", "train", []VertexID{m2, d1}, []string{"w2", "l2"})
	w2 := t1out[0]
	_, p2out := g.Run("carol", "plot", []VertexID{w2}, []string{"p2"})

	// Round 2: update model -> m3, train on d2 -> w3/l3, plot -> p3.
	_, m3out := g.Run("carol", "update", []VertexID{m2}, []string{"model3"})
	m3 := m3out[0]
	_, t2out := g.Run("carol", "train", []VertexID{m3, d2}, []string{"w3", "l3"})
	w3 := t2out[0]
	_, p3out := g.Run("carol", "plot", []VertexID{w3}, []string{"p3"})

	// Compare joins the plots.
	_, cmpOut := g.Run("carol", "compare", []VertexID{p2out[0], p3out[0]}, []string{"p4"})

	names["rawdata"] = d0
	names["m1"], names["m2"], names["m3"] = m1, m2, m3
	names["d1"], names["d2"] = d1, d2
	names["w2"], names["l2"] = w2, t1out[1]
	names["w3"], names["l3"] = w3, t2out[1]
	names["p2"], names["p3"] = p2out[0], p3out[0]
	names["p4"] = cmpOut[0]
	return g, names
}
