package provdb_test

import (
	"bytes"
	"strings"
	"testing"

	provdb "repro"
)

func segmentNames(g *provdb.Graph, s *provdb.Segment) map[string]bool {
	out := make(map[string]bool, len(s.Vertices))
	for _, v := range s.Vertices {
		out[g.Name(v)] = true
	}
	return out
}

// TestFig2Queries reproduces the paper's worked segmentation queries
// (Fig. 2(d)): Q1 must show Alice's v2 trail (including the expanded
// update-v2 and model-v1, excluding everything of Bob's), Q2 must show
// Bob's v3 trail using Alice's original model.
func TestFig2Queries(t *testing.T) {
	g, names := provdb.Fig2Lifecycle()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}

	seg1, err := g.Segment(provdb.Fig2Q1(names))
	if err != nil {
		t.Fatal(err)
	}
	got1 := segmentNames(g, seg1)
	for _, w := range []string{
		"dataset-v1", "weights-v2", "model-v2", "solver-v1",
		"logs-v2", "model-v1", "Alice",
	} {
		if !got1[w] {
			t.Errorf("Q1: missing %q (got %v)", w, got1)
		}
	}
	for _, w := range []string{"train-v2", "update-v2"} {
		if !seg1.Contains(names[w]) {
			t.Errorf("Q1: missing activity %s", w)
		}
	}
	for _, bad := range []string{"Bob", "solver-v2", "weights-v3", "weights-v1", "logs-v1", "logs-v3"} {
		if got1[bad] {
			t.Errorf("Q1: unexpectedly contains %q", bad)
		}
	}
	for _, bad := range []string{"train-v1", "train-v3", "update-v3"} {
		if seg1.Contains(names[bad]) {
			t.Errorf("Q1: unexpectedly contains activity %s", bad)
		}
	}

	seg2, err := g.Segment(provdb.Fig2Q2(names))
	if err != nil {
		t.Fatal(err)
	}
	got2 := segmentNames(g, seg2)
	for _, w := range []string{
		"dataset-v1", "logs-v3", "model-v1", "solver-v2",
		"weights-v3", "solver-v1", "Bob",
	} {
		if !got2[w] {
			t.Errorf("Q2: missing %q (got %v)", w, got2)
		}
	}
	for _, w := range []string{"train-v3", "update-v3"} {
		if !seg2.Contains(names[w]) {
			t.Errorf("Q2: missing activity %s", w)
		}
	}
	for _, bad := range []string{"model-v2", "weights-v2", "logs-v2", "weights-v1"} {
		if got2[bad] {
			t.Errorf("Q2: unexpectedly contains %q", bad)
		}
	}
	for _, bad := range []string{"train-v1", "train-v2", "update-v2"} {
		if seg2.Contains(names[bad]) {
			t.Errorf("Q2: unexpectedly contains activity %s", bad)
		}
	}
}

// TestFig2Summarization reproduces Query 3 (Fig. 2(e)): summarizing Q1 and
// Q2 with command/filename aggregation and 1-hop provenance types must
// merge the shared dataset and distinguish two provenance types for the
// update/model/solver classes.
func TestFig2Summarization(t *testing.T) {
	g, names := provdb.Fig2Lifecycle()
	seg1, err := g.Segment(provdb.Fig2Q1(names))
	if err != nil {
		t.Fatal(err)
	}
	seg2, err := g.Segment(provdb.Fig2Q2(names))
	if err != nil {
		t.Fatal(err)
	}
	psg, err := provdb.Summarize([]*provdb.Segment{seg1, seg2}, provdb.Fig2Q3Options())
	if err != nil {
		t.Fatal(err)
	}
	if psg.InputVertices != len(seg1.Vertices)+len(seg2.Vertices) {
		t.Fatalf("input vertices %d", psg.InputVertices)
	}
	if len(psg.Nodes) >= psg.InputVertices {
		t.Errorf("no compaction: %d nodes from %d inputs", len(psg.Nodes), psg.InputVertices)
	}
	// The two trains (same command, same 1-hop shape: 3 used, 2 generated)
	// must merge; dataset occurrences must merge; there must be at least
	// one 100%-frequency edge (train->dataset appears in both segments).
	var mergedAcross int
	for _, n := range psg.Nodes {
		segs := map[int]bool{}
		for _, m := range n.Members {
			segs[m[0]] = true
		}
		if len(segs) == 2 {
			mergedAcross++
		}
	}
	if mergedAcross == 0 {
		t.Error("no node merged occurrences across the two segments")
	}
	full := 0
	for _, e := range psg.Edges {
		if e.Freq == 1 {
			full++
		}
	}
	if full == 0 {
		t.Error("no edge with frequency 1 (dataset is shared by both trails)")
	}
	// Rendering sanity.
	var buf bytes.Buffer
	psg.Render(&buf)
	if !strings.Contains(buf.String(), "cr=") {
		t.Error("Render output missing compaction ratio")
	}
}

// TestFig3SimilarPaths reproduces the Fig. 3 scenario: with Vsrc={m3} and
// Vdst={p4}, the similar-path rule must pull in the parallel adjustment
// round (m2/w2/l2 side) even though it is not on the direct path.
func TestFig3SimilarPaths(t *testing.T) {
	g, names := provdb.Fig3Project()
	seg, err := g.Segment(provdb.Query{
		Src: []provdb.VertexID{names["m3"]},
		Dst: []provdb.VertexID{names["p4"]},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := segmentNames(g, seg)
	// Direct path: p4 <- compare <- p3 <- plot <- w3 <- train <- m3.
	// Similar paths at matching depths: the other round through p2/w2/m2
	// and the datasets d1/d2.
	for _, w := range []string{"p4-v1", "p3-v1", "p2-v1", "w3-v1", "w2-v1", "model3-v1", "model2-v1", "d1-v1", "d2-v1"} {
		if !got[w] {
			t.Errorf("missing %q; segment: %v", w, got)
		}
	}
	// l2/l3 are siblings (VC3).
	for _, w := range []string{"l2-v1", "l3-v1"} {
		if !got[w] {
			t.Errorf("missing sibling %q", w)
		}
	}
}

// TestSaveLoadRoundTrip exercises persistence through the public API.
func TestSaveLoadRoundTrip(t *testing.T) {
	g, names := provdb.Fig2Lifecycle()
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := provdb.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("roundtrip size mismatch: %d/%d vs %d/%d",
			g2.NumVertices(), g.NumVertices(), g2.NumEdges(), g.NumEdges())
	}
	// The same query must give the same segment on the loaded graph.
	s1, err := g.Segment(provdb.Fig2Q1(names))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := g2.Segment(provdb.Fig2Q1(names))
	if err != nil {
		t.Fatal(err)
	}
	if len(s1.Vertices) != len(s2.Vertices) || len(s1.Edges) != len(s2.Edges) {
		t.Fatalf("segment mismatch after roundtrip")
	}
}

// TestJSONRoundTrip exercises the PROV-JSON interchange.
func TestJSONRoundTrip(t *testing.T) {
	g, _ := provdb.Fig2Lifecycle()
	var buf bytes.Buffer
	if err := g.ExportJSON(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := provdb.ImportJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("json roundtrip mismatch: %d/%d vs %d/%d",
			g2.NumVertices(), g.NumVertices(), g2.NumEdges(), g.NumEdges())
	}
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestCypherFacade runs a query through the public Cypher surface.
func TestCypherFacade(t *testing.T) {
	g, names := provdb.Fig2Lifecycle()
	res, err := g.Cypher("match (a:A)-[:S]->(u:U) return id(a), id(u)", provdb.CypherOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// 5 activities each associated with one agent.
	if len(res.Rows) != 5 {
		t.Fatalf("want 5 association rows, got %d", len(res.Rows))
	}
	_ = names
}

// TestPdSdGenerators sanity-checks the public generator surface.
func TestPdSdGenerators(t *testing.T) {
	g := provdb.GeneratePd(provdb.PdConfig{N: 500, Seed: 42})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	if n < 400 || n > 600 {
		t.Errorf("Pd size off target: %d", n)
	}
	src, dst := provdb.DefaultPdQuery(g)
	seg, err := g.Segment(provdb.Query{Src: src, Dst: dst})
	if err != nil {
		t.Fatal(err)
	}
	if seg.NumVertices() == 0 {
		t.Error("empty segment on Pd")
	}

	sg, segs := provdb.GenerateSd(provdb.SdConfig{Segments: 5, Seed: 7})
	if err := sg.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(segs) != 5 {
		t.Fatalf("want 5 segments, got %d", len(segs))
	}
	psg, err := provdb.Summarize(segs, provdb.SdSumOptions())
	if err != nil {
		t.Fatal(err)
	}
	pcr := provdb.PSumBaseline(segs, provdb.SdSumOptions().K)
	if psg.CompactionRatio() > pcr {
		t.Errorf("PgSum (cr=%.3f) should compact at least as well as pSum (cr=%.3f)",
			psg.CompactionRatio(), pcr)
	}
}
