package cypher_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cypher"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/prov"
)

func TestParseQuery1(t *testing.T) {
	q := cypher.Query1([]graph.VertexID{1, 2}, []graph.VertexID{90, 91})
	parsed, err := cypher.Parse(q)
	if err != nil {
		t.Fatalf("Query1 does not parse: %v", err)
	}
	if len(parsed.Clauses) != 3 {
		t.Fatalf("want 3 clauses (match, with, match), got %d", len(parsed.Clauses))
	}
	if len(parsed.Return) != 1 {
		t.Fatalf("want 1 return item, got %d", len(parsed.Return))
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"match (a:E return a",
		"match (a)-[:U*]->(b) where id(a = 3 return a",
		"return",
		"match (a) with q return a",
	} {
		if _, err := cypher.Parse(bad); err == nil {
			// "with q return a" parses but fails at eval; only pure syntax
			// errors must fail here.
			if bad != "match (a) with q return a" {
				t.Errorf("Parse(%q) unexpectedly succeeded", bad)
			}
		}
	}
}

func buildTinyChain(t *testing.T) (*prov.Graph, graph.VertexID, graph.VertexID) {
	t.Helper()
	p := prov.New()
	data := p.NewEntity("data")
	train := p.NewActivity("train")
	p.Used(train, data)
	model := p.NewEntity("model")
	p.WasGeneratedBy(model, train)
	eval := p.NewActivity("eval")
	p.Used(eval, model)
	result := p.NewEntity("result")
	p.WasGeneratedBy(result, eval)
	return p, data, result
}

func TestEvalSimplePattern(t *testing.T) {
	p, data, result := buildTinyChain(t)
	ev := cypher.NewProvEvaluator(p, cypher.Options{})
	res, err := ev.Run("match p=(b:E)<-[:U|G*]-(e:E) where id(b) in [0] and id(e) in [4] return p")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("want exactly one path, got %d", len(res.Rows))
	}
	path := res.Rows[0][0]
	if path.Kind != cypher.KindPath {
		t.Fatalf("want path, got %v", path.Kind)
	}
	if len(path.P.Verts) != 5 {
		t.Fatalf("want 5 vertices on path, got %d", len(path.P.Verts))
	}
	if path.P.Verts[0] != data || path.P.Verts[4] != result {
		t.Fatalf("path endpoints wrong: %v", path.P.Verts)
	}
}

func TestEvalFunctions(t *testing.T) {
	p, _, _ := buildTinyChain(t)
	ev := cypher.NewProvEvaluator(p, cypher.Options{})
	res, err := ev.Run("match p=(b:E)<-[:U|G*]-(e:E) where id(b) in [0] and id(e) in [4] return length(p), extract(x in nodes(p) | labels(x)[0])")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("want 1 row, got %d", len(res.Rows))
	}
	if res.Rows[0][0].I != 4 {
		t.Errorf("length(p)=%v, want 4", res.Rows[0][0].I)
	}
	if got := res.Rows[0][1].String(); got != "[E, A, E, A, E]" {
		t.Errorf("labels along path = %s", got)
	}
}

// TestCypherMatchesSolversSingleDst cross-checks the Cypher Query 1 result
// against the native VC2 solvers on single-destination queries (with
// multiple destinations Query 1 is anchored per-path and is a superset by
// construction, as the paper's handcrafted query compares label sequences
// only).
func TestCypherMatchesSolversSingleDst(t *testing.T) {
	seeds := int64(5)
	if testing.Short() {
		// The exponential Cypher baseline costs seconds per seed even on
		// Pd40; one seed keeps the cross-check in short runs.
		seeds = 1
	}
	for seed := int64(1); seed <= seeds; seed++ {
		// Small, sparse graphs: the baseline materializes every path and
		// cross-joins two clauses, so its cost (and memory) is exponential
		// in the ancestry-cone density — which is the very point of
		// Fig. 5a. lambda_i=1 keeps the path count testable.
		p := gen.Pd(gen.PdConfig{N: 40, LambdaIn: 1, Seed: seed})
		ents := p.Entities()
		src := []graph.VertexID{ents[0], ents[1]}
		dst := []graph.VertexID{ents[len(ents)-1]}

		got, err := cypher.CypherVC2(p, src, dst, cypher.Options{Timeout: 30 * time.Second})
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		eng := core.NewEngine(p, core.Options{Solver: core.SolverTst})
		set, err := eng.SimilarPaths(core.Query{Src: src, Dst: dst})
		if err != nil {
			t.Fatal(err)
		}
		want := make(map[graph.VertexID]bool)
		set.Iterate(func(x uint32) bool {
			want[graph.VertexID(x)] = true
			return true
		})
		for v := range want {
			if !got[v] {
				t.Errorf("seed=%d: cypher missing vertex %d", seed, v)
			}
		}
		for v := range got {
			if !want[v] {
				t.Errorf("seed=%d: cypher extra vertex %d", seed, v)
			}
		}
	}
}

func TestEvalTimeout(t *testing.T) {
	p := gen.Pd(gen.PdConfig{N: 600, Seed: 1})
	src, dst := gen.DefaultQuery(p)
	_, err := cypher.CypherVC2(p, src, dst, cypher.Options{Timeout: time.Nanosecond})
	if err == nil {
		t.Skip("graph too small to hit the deadline")
	}
}

func TestRowBudget(t *testing.T) {
	p := gen.Pd(gen.PdConfig{N: 300, Seed: 2})
	src, dst := gen.DefaultQuery(p)
	_, err := cypher.CypherVC2(p, src, dst, cypher.Options{MaxRows: 1})
	if err == nil {
		t.Fatal("expected row budget error")
	}
}
