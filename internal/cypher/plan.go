package cypher

import (
	"repro/internal/bitmap"
	"repro/internal/graph"
)

// Snapshot-aware pattern planner. On a frozen graph the evaluator knows,
// before enumerating a single path, the per-label CSR blocks and the
// freeze-time degree statistics — enough to bound where each pattern
// position can possibly bind. The planner runs the same bitmap frontier
// kernels the core traversals use (row unions over NeighborRowSegs with
// word-parallel visited subtraction) from the pattern's anchored ends:
//
//   - a forward sweep from the first node's anchor ids computes, per node
//     position, an over-approximation of the vertices reachable there;
//   - a backward sweep from the last node's anchor ids computes the
//     vertices that can still reach an admissible final binding;
//   - their intersection is the allowed set per position, and the sweep
//     unions per variable-length hop bound the intermediate vertices.
//
// The prune sets are strictly over-approximations (edge distinctness and
// WHERE predicates are ignored), so filtering the naive DFS with them
// removes only bindings that cannot complete — the surviving rows, and
// their order, are bit-identical to the unplanned evaluation. Degree
// statistics pick which anchored end to sweep first (cheapest volume) and
// drop empty labels before any row is read.

// patternPlan carries the prune sets for one path pattern under one base
// row. A nil *patternPlan (planner disabled or pattern unanchored) prunes
// nothing.
type patternPlan struct {
	// allowed[i] over-approximates the vertices that may bind node i in a
	// complete match; nil = unconstrained.
	allowed []*bitmap.Bitset
	// pathSet[i] over-approximates every vertex (endpoint or variable-
	// length intermediate) on an admissible binding of rel i; nil =
	// unconstrained.
	pathSet []*bitmap.Bitset
	// empty marks a pattern proven unmatchable: skip enumeration.
	empty bool
}

func (p *patternPlan) allowedOK(i int, v graph.VertexID) bool {
	if p == nil || p.allowed[i] == nil {
		return true
	}
	return p.allowed[i].Contains(uint32(v))
}

func (p *patternPlan) pathOK(i int, v graph.VertexID) bool {
	if p == nil || p.pathSet[i] == nil {
		return true
	}
	return p.pathSet[i].Contains(uint32(v))
}

// planPattern builds the prune sets for pat under base/seeds, or nil when
// the planner cannot help (disabled, live graph, or no anchored end).
func (ev *Evaluator) planPattern(pat PathPattern, base row, seeds map[string][]graph.VertexID) *patternPlan {
	if ev.opts.NoPlanner || !ev.g.Frozen() || ev.g.Degrees() == nil || len(pat.Rels) == 0 {
		return nil
	}
	firstIDs, firstAnchored := ev.anchorIDs(pat.Nodes[0], base, seeds)
	last := len(pat.Nodes) - 1
	lastIDs, lastAnchored := ev.anchorIDs(pat.Nodes[last], base, seeds)
	if !firstAnchored && !lastAnchored {
		return nil
	}
	nRels := len(pat.Rels)
	plan := &patternPlan{
		allowed: make([]*bitmap.Bitset, nRels+1),
		pathSet: make([]*bitmap.Bitset, nRels),
	}
	// An anchored end whose ids all fail the node's label constraint can
	// never bind: the pattern is unmatchable.
	if firstAnchored {
		firstIDs = ev.filterByLabel(firstIDs, pat.Nodes[0])
		if len(firstIDs) == 0 {
			plan.empty = true
			return plan
		}
	}
	if lastAnchored {
		lastIDs = ev.filterByLabel(lastIDs, pat.Nodes[last])
		if len(lastIDs) == 0 {
			plan.empty = true
			return plan
		}
	}

	// Sweep the cheaper anchored end first (freeze-time stats price one
	// frontier's expected row volume); if it already proves the pattern
	// empty, the other sweep never runs.
	sweeps := make([]func(), 0, 2)
	fwdSweep := func() { ev.sweep(pat, firstIDs, true, plan) }
	bwdSweep := func() { ev.sweep(pat, lastIDs, false, plan) }
	switch {
	case firstAnchored && lastAnchored:
		if ev.anchorCost(firstIDs, pat.Rels[0]) <= ev.anchorCost(lastIDs, pat.Rels[nRels-1]) {
			sweeps = append(sweeps, fwdSweep, bwdSweep)
		} else {
			sweeps = append(sweeps, bwdSweep, fwdSweep)
		}
	case firstAnchored:
		sweeps = append(sweeps, fwdSweep)
	default:
		sweeps = append(sweeps, bwdSweep)
	}
	for _, s := range sweeps {
		s()
		if plan.empty {
			return plan
		}
	}
	return plan
}

// sweep runs one frontier pass over the pattern — forward from the first
// node's ids or backward from the last node's — intersecting its results
// into plan.allowed / plan.pathSet and flagging emptiness.
func (ev *Evaluator) sweep(pat PathPattern, ids []graph.VertexID, forward bool, plan *patternPlan) {
	n := ev.g.NumVertices()
	maxLen := ev.opts.MaxPathLen
	if maxLen <= 0 {
		maxLen = ev.g.NumEdges()
	}
	cur := bitmap.NewBitset(n)
	for _, v := range ids {
		cur.Add(uint32(v))
	}
	nRels := len(pat.Rels)
	pos := 0
	if !forward {
		pos = nRels
	}
	intersectAllowed(plan, pos, cur)
	for k := 0; k < nRels && !plan.empty; k++ {
		ri := k
		if !forward {
			ri = nRels - 1 - k
		}
		rp := pat.Rels[ri]
		labels, useOut, useIn := ev.relStep(rp, forward)
		var pathVerts, next *bitmap.Bitset
		if rp.VarLen {
			maxHops := rp.MaxHops
			if maxHops == 0 || maxHops > maxLen {
				maxHops = maxLen
			}
			// The closure over-approximates both the admissible endpoints
			// (walks may revisit vertices, so no minimum-hop filtering) and
			// every intermediate vertex on a var-length walk.
			pathVerts = ev.frontierClosure(cur, labels, useOut, useIn, maxHops)
			next = pathVerts
		} else {
			next = ev.frontierStep(cur, labels, useOut, useIn)
			pathVerts = cur.Clone()
			pathVerts.UnionWith(next)
		}
		intersectPath(plan, ri, pathVerts)
		npos := ri + 1
		if !forward {
			npos = ri
		}
		intersectAllowed(plan, npos, next)
		cur = next
	}
}

// intersectAllowed narrows plan.allowed[i] by s, flagging emptiness.
func intersectAllowed(plan *patternPlan, i int, s *bitmap.Bitset) {
	if plan.allowed[i] == nil {
		plan.allowed[i] = s.Clone()
	} else {
		plan.allowed[i].IntersectWith(s)
	}
	if plan.allowed[i].Cardinality() == 0 {
		plan.empty = true
	}
}

// intersectPath narrows plan.pathSet[i] by s. An empty path set just means
// rel i admits no binding, which allowed-set emptiness already captures.
func intersectPath(plan *patternPlan, i int, s *bitmap.Bitset) {
	if plan.pathSet[i] == nil {
		plan.pathSet[i] = s.Clone()
	} else {
		plan.pathSet[i].IntersectWith(s)
	}
}

// anchorIDs returns the exact id list a node pattern is pinned to — a
// vertex variable already bound in the row, or a mined id(x) constraint.
func (ev *Evaluator) anchorIDs(np NodePattern, base row, seeds map[string][]graph.VertexID) ([]graph.VertexID, bool) {
	if np.Var == "" {
		return nil, false
	}
	if bound, ok := base[np.Var]; ok {
		if bound.Kind != KindVertex {
			return nil, false
		}
		return []graph.VertexID{bound.V}, true
	}
	if ids, ok := seeds[np.Var]; ok {
		return ids, true
	}
	return nil, false
}

// filterByLabel keeps the ids that satisfy np's label constraint (and are
// in range — out-of-range ids can never bind).
func (ev *Evaluator) filterByLabel(ids []graph.VertexID, np NodePattern) []graph.VertexID {
	n := ev.g.NumVertices()
	var want graph.Label
	checkLabel := false
	if np.Label != "" {
		l, ok := ev.vertexLabel(np.Label)
		if !ok {
			return nil
		}
		want, checkLabel = l, true
	}
	out := make([]graph.VertexID, 0, len(ids))
	for _, v := range ids {
		if int(v) >= n {
			continue
		}
		if checkLabel && ev.g.VertexLabel(v) != want {
			continue
		}
		out = append(out, v)
	}
	return out
}

// anchorCost estimates one sweep step's row volume from an anchor: ids
// times the average degree over the rel's admissible labels.
func (ev *Evaluator) anchorCost(ids []graph.VertexID, rp RelPattern) float64 {
	ds := ev.g.Degrees()
	avg := 0.0
	labels, _, _ := ev.relStep(rp, true)
	for _, l := range labels {
		avg += ds.AvgDegree(l)
	}
	return float64(len(ids)) * (1 + avg)
}

// relStep resolves rp's admissible edge labels (dropping, via the degree
// stats, labels with no edges in the snapshot) and which CSR directions a
// forward (node i → i+1) or reverse (node i+1 → i) sweep follows.
func (ev *Evaluator) relStep(rp RelPattern, forward bool) (labels []graph.Label, useOut, useIn bool) {
	right := rp.Dir == DirRight || rp.Dir == DirBoth
	left := rp.Dir == DirLeft || rp.Dir == DirBoth
	if forward {
		useOut, useIn = right, left
	} else {
		useOut, useIn = left, right
	}
	ds := ev.g.Degrees()
	add := func(l graph.Label) {
		if ds.EdgesWithLabel(l) == 0 {
			return
		}
		for _, have := range labels {
			if have == l {
				return
			}
		}
		labels = append(labels, l)
	}
	if len(rp.Types) == 0 {
		d := ev.g.Dict()
		for l := 0; l < d.Len(); l++ {
			add(graph.Label(l))
		}
		return labels, useOut, useIn
	}
	for _, tn := range rp.Types {
		if l, ok := ev.relLabel(tn); ok {
			add(l)
		}
	}
	return labels, useOut, useIn
}

// frontierStep computes the one-hop image of src through the labels.
func (ev *Evaluator) frontierStep(src *bitmap.Bitset, labels []graph.Label, useOut, useIn bool) *bitmap.Bitset {
	out := bitmap.NewBitset(ev.g.NumVertices())
	for _, l := range labels {
		src.Iterate(func(x uint32) bool {
			v := graph.VertexID(x)
			if useOut {
				b, xt, _ := ev.g.NeighborRowSegs(v, l, true)
				bitmap.OrInto(out, b)
				bitmap.OrInto(out, xt)
			}
			if useIn {
				b, xt, _ := ev.g.NeighborRowSegs(v, l, false)
				bitmap.OrInto(out, b)
				bitmap.OrInto(out, xt)
			}
			return true
		})
	}
	return out
}

// relMatches reports whether edge e's label satisfies rp's type constraint.
func (ev *Evaluator) relMatches(rp RelPattern, e graph.EdgeID) bool {
	if len(rp.Types) == 0 {
		return true
	}
	for _, tn := range rp.Types {
		if l, ok := ev.relLabel(tn); ok && ev.g.EdgeLabel(e) == l {
			return true
		}
	}
	return false
}

// iterRelEdges invokes fn for each edge incident on cur that matches rp in
// the given direction, in ascending edge-id order — the order the mixed
// adjacency list yields. With the planner enabled, a typed pattern on a
// frozen snapshot reads only the matching labels' CSR rows, merged by edge
// id, instead of label-filtering every incident edge; untyped patterns and
// live graphs scan the mixed list as before. Enumeration order is identical
// either way.
func (ev *Evaluator) iterRelEdges(cur graph.VertexID, rp RelPattern, out bool, fn func(graph.EdgeID, graph.VertexID) error) error {
	if !ev.opts.NoPlanner && ev.g.Frozen() && len(rp.Types) > 0 {
		type relRow struct {
			nbrs []graph.VertexID
			eids []graph.EdgeID
		}
		var (
			rows   []relRow
			labels []graph.Label
			usable = true
		)
	resolve:
		for _, tn := range rp.Types {
			l, ok := ev.relLabel(tn)
			if !ok {
				continue // unknown type name matches no edge
			}
			for _, have := range labels {
				if have == l {
					continue resolve
				}
			}
			labels = append(labels, l)
			nbrs, eids, ok := ev.g.FrozenNeighbors(cur, l, out)
			if !ok {
				usable = false
				break
			}
			if len(eids) > 0 {
				rows = append(rows, relRow{nbrs, eids})
			}
		}
		if usable {
			switch len(rows) {
			case 0:
				return nil
			case 1:
				for i, e := range rows[0].eids {
					if err := fn(e, rows[0].nbrs[i]); err != nil {
						return err
					}
				}
				return nil
			default:
				idx := make([]int, len(rows))
				for {
					best := -1
					for ri := range rows {
						if idx[ri] >= len(rows[ri].eids) {
							continue
						}
						if best < 0 || rows[ri].eids[idx[ri]] < rows[best].eids[idx[best]] {
							best = ri
						}
					}
					if best < 0 {
						return nil
					}
					i := idx[best]
					idx[best]++
					if err := fn(rows[best].eids[i], rows[best].nbrs[i]); err != nil {
						return err
					}
				}
			}
		}
	}
	edges := ev.g.Out(cur)
	if !out {
		edges = ev.g.In(cur)
	}
	for _, e := range edges {
		if !ev.relMatches(rp, e) {
			continue
		}
		nxt := ev.g.Dst(e)
		if !out {
			nxt = ev.g.Src(e)
		}
		if err := fn(e, nxt); err != nil {
			return err
		}
	}
	return nil
}

// frontierClosure computes every vertex within maxHops label-steps of src
// (src included), frontier-at-a-time with visited subtraction.
func (ev *Evaluator) frontierClosure(src *bitmap.Bitset, labels []graph.Label, useOut, useIn bool, maxHops int) *bitmap.Bitset {
	all := src.Clone()
	cur := src
	for h := 0; h < maxHops && cur.Cardinality() > 0; h++ {
		next := ev.frontierStep(cur, labels, useOut, useIn)
		next.AndNotWith(all)
		if next.Cardinality() == 0 {
			break
		}
		all.UnionWith(next)
		cur = next
	}
	return all
}
