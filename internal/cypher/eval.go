package cypher

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/graph"
)

// Value is a runtime value: vertex, edge, path, list, string, int or bool.
type Value struct {
	Kind ValueKind
	V    graph.VertexID
	E    graph.EdgeID
	P    *PathValue
	L    []Value
	S    string
	I    int64
	B    bool
}

// ValueKind tags runtime values.
type ValueKind int

// Value kinds.
const (
	KindNull ValueKind = iota
	KindVertex
	KindEdge
	KindPath
	KindList
	KindString
	KindInt
	KindBool
)

// PathValue is a materialized path binding.
type PathValue struct {
	Verts []graph.VertexID
	Edges []graph.EdgeID
}

// Equal is deep value equality.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KindNull:
		return true
	case KindVertex:
		return v.V == o.V
	case KindEdge:
		return v.E == o.E
	case KindPath:
		if len(v.P.Edges) != len(o.P.Edges) || len(v.P.Verts) != len(o.P.Verts) {
			return false
		}
		for i := range v.P.Edges {
			if v.P.Edges[i] != o.P.Edges[i] {
				return false
			}
		}
		for i := range v.P.Verts {
			if v.P.Verts[i] != o.P.Verts[i] {
				return false
			}
		}
		return true
	case KindList:
		if len(v.L) != len(o.L) {
			return false
		}
		for i := range v.L {
			if !v.L[i].Equal(o.L[i]) {
				return false
			}
		}
		return true
	case KindString:
		return v.S == o.S
	case KindInt:
		return v.I == o.I
	case KindBool:
		return v.B == o.B
	}
	return false
}

// Options bound evaluation cost (the baseline is exponential by design).
type Options struct {
	// Timeout aborts evaluation (0 = no limit).
	Timeout time.Duration
	// MaxRows aborts when an intermediate binding table exceeds this many
	// rows (0 = no limit).
	MaxRows int
	// MaxPathLen caps variable-length pattern expansion (0 = number of
	// graph edges, i.e. effectively unbounded on a DAG).
	MaxPathLen int
	// NoPlanner disables the snapshot-aware prune planner and the
	// per-label CSR row enumeration (see plan.go), forcing the naive DFS
	// over mixed edge lists. Rows and their order are identical either
	// way; the differential tests run both and diff.
	NoPlanner bool
}

// ErrTimeout is returned when evaluation exceeds its deadline — the
// practical rendering of the paper's ">12 hours on Pd100".
var ErrTimeout = errors.New("cypher: evaluation deadline exceeded")

// ErrRowBudget is returned when an intermediate result exceeds MaxRows.
var ErrRowBudget = errors.New("cypher: row budget exceeded")

// Evaluator executes parsed queries over a property graph.
type Evaluator struct {
	g    *graph.Graph
	opts Options

	// vertexLabel resolves node-pattern label names ("E") to graph labels.
	vertexLabel func(string) (graph.Label, bool)
	// relLabel resolves relationship type names ("U") to graph labels.
	relLabel func(string) (graph.Label, bool)
	// labelName renders a vertex's label for labels(n).
	labelName func(graph.Label) string
	// relName renders an edge's label for type(r).
	relName func(graph.Label) string

	deadline time.Time
	steps    uint64
}

// NewEvaluator builds an evaluator with explicit label resolvers.
func NewEvaluator(g *graph.Graph, vertexLabel, relLabel func(string) (graph.Label, bool),
	labelName, relName func(graph.Label) string, opts Options) *Evaluator {
	return &Evaluator{
		g:           g,
		opts:        opts,
		vertexLabel: vertexLabel,
		relLabel:    relLabel,
		labelName:   labelName,
		relName:     relName,
	}
}

// row is one binding of variables to values.
type row map[string]Value

func (r row) clone() row {
	out := make(row, len(r)+2)
	for k, v := range r {
		out[k] = v
	}
	return out
}

// Result is the RETURN projection: one []Value per row.
type Result struct {
	Rows [][]Value
}

// Run parses and evaluates a query.
func (ev *Evaluator) Run(src string) (*Result, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return ev.Eval(q)
}

// Eval evaluates a parsed query.
func (ev *Evaluator) Eval(q *Query) (*Result, error) {
	if ev.opts.Timeout > 0 {
		ev.deadline = time.Now().Add(ev.opts.Timeout)
	} else {
		ev.deadline = time.Time{}
	}
	rows := []row{{}}
	var err error
	for _, cl := range q.Clauses {
		switch c := cl.(type) {
		case MatchClause:
			rows, err = ev.evalMatch(c, rows)
		case WithClause:
			rows, err = ev.evalWith(c, rows)
		}
		if err != nil {
			return nil, err
		}
	}
	res := &Result{}
	for _, r := range rows {
		proj := make([]Value, 0, len(q.Return))
		for _, e := range q.Return {
			v, err := ev.evalExpr(e, r)
			if err != nil {
				return nil, err
			}
			proj = append(proj, v)
		}
		res.Rows = append(res.Rows, proj)
	}
	return res, nil
}

func (ev *Evaluator) checkBudget(n int) error {
	if !ev.deadline.IsZero() && time.Now().After(ev.deadline) {
		return ErrTimeout
	}
	if ev.opts.MaxRows > 0 && n > ev.opts.MaxRows {
		return ErrRowBudget
	}
	return nil
}

// steps counts traversal work between deadline checks so exponential DFS
// expansion cannot outrun the timeout.
func (ev *Evaluator) stepBudget() error {
	ev.steps++
	if ev.steps&0xfff != 0 {
		return nil
	}
	if !ev.deadline.IsZero() && time.Now().After(ev.deadline) {
		return ErrTimeout
	}
	return nil
}

func (ev *Evaluator) evalWith(c WithClause, rows []row) ([]row, error) {
	out := make([]row, 0, len(rows))
	for _, r := range rows {
		nr := make(row, len(c.Vars))
		for _, v := range c.Vars {
			val, ok := r[v]
			if !ok {
				return nil, fmt.Errorf("cypher: WITH references unbound variable %q", v)
			}
			nr[v] = val
		}
		out = append(out, nr)
	}
	return out, nil
}

// evalMatch expands every pattern against every current row — the naive
// "materialize all paths per path variable, then join" plan.
func (ev *Evaluator) evalMatch(c MatchClause, rows []row) ([]row, error) {
	// idConstraints: var name -> allowed vertex ids, mined from the WHERE
	// clause to seed enumeration (mirrors "we always use id to seek the
	// nodes" in the paper's setup).
	seeds := mineIDConstraints(c.Where)

	cur := rows
	for _, pat := range c.Patterns {
		var next []row
		for _, r := range cur {
			expanded, err := ev.expandPattern(pat, r, seeds)
			if err != nil {
				return nil, err
			}
			next = append(next, expanded...)
			if err := ev.checkBudget(len(next)); err != nil {
				return nil, err
			}
		}
		cur = next
	}
	if c.Where == nil {
		return cur, nil
	}
	out := cur[:0:0]
	for _, r := range cur {
		v, err := ev.evalExpr(c.Where, r)
		if err != nil {
			return nil, err
		}
		if v.Kind == KindBool && v.B {
			out = append(out, r)
		}
	}
	return out, nil
}

// mineIDConstraints extracts id(x) = n / id(x) IN [..] conjuncts.
func mineIDConstraints(e Expr) map[string][]graph.VertexID {
	out := make(map[string][]graph.VertexID)
	var walk func(Expr)
	walk = func(e Expr) {
		be, ok := e.(BinaryExpr)
		if !ok {
			return
		}
		switch be.Op {
		case "AND":
			walk(be.L)
			walk(be.R)
		case "=", "IN":
			call, ok := be.L.(CallExpr)
			if !ok || call.Fn != "id" || len(call.Args) != 1 {
				return
			}
			vr, ok := call.Args[0].(VarExpr)
			if !ok {
				return
			}
			switch rhs := be.R.(type) {
			case NumberExpr:
				out[vr.Name] = append(out[vr.Name], graph.VertexID(rhs.Value))
			case ListExpr:
				for _, item := range rhs.Items {
					if n, ok := item.(NumberExpr); ok {
						out[vr.Name] = append(out[vr.Name], graph.VertexID(n.Value))
					}
				}
			}
		}
	}
	walk(e)
	return out
}

// expandPattern enumerates all bindings of one path pattern compatible with
// an existing row. On frozen snapshots the planner's prune sets (plan.go)
// cut enumeration branches that provably cannot complete; the surviving
// rows and their order are identical to the unplanned DFS.
func (ev *Evaluator) expandPattern(pat PathPattern, base row, seeds map[string][]graph.VertexID) ([]row, error) {
	var out []row

	plan := ev.planPattern(pat, base, seeds)
	if plan != nil && plan.empty {
		return nil, nil
	}

	// candidates for the first node.
	first := pat.Nodes[0]
	cands, err := ev.nodeCandidates(first, base, seeds)
	if err != nil {
		return nil, err
	}

	maxLen := ev.opts.MaxPathLen
	if maxLen <= 0 {
		maxLen = ev.g.NumEdges()
	}

	var verts []graph.VertexID
	var edgesAcc []graph.EdgeID

	var matchFrom func(ni int, r row) error
	var expandRel func(ni int, hops int, rp RelPattern, cur graph.VertexID, r row) error

	bindNode := func(np NodePattern, v graph.VertexID, r row) (row, bool) {
		// Mined id(x) constraints can carry ids outside the graph; they
		// bind nothing.
		if int(v) >= ev.g.NumVertices() {
			return nil, false
		}
		if np.Label != "" {
			l, ok := ev.vertexLabel(np.Label)
			if !ok || ev.g.VertexLabel(v) != l {
				return nil, false
			}
		}
		if np.Var != "" {
			if bound, ok := r[np.Var]; ok {
				if bound.Kind != KindVertex || bound.V != v {
					return nil, false
				}
				return r, true
			}
			nr := r.clone()
			nr[np.Var] = Value{Kind: KindVertex, V: v}
			return nr, true
		}
		return r, true
	}

	matchFrom = func(ni int, r row) error {
		if ni == len(pat.Rels) {
			// Pattern complete: bind the path variable.
			final := r
			if pat.PathVar != "" {
				final = r.clone()
				final[pat.PathVar] = Value{Kind: KindPath, P: &PathValue{
					Verts: append([]graph.VertexID(nil), verts...),
					Edges: append([]graph.EdgeID(nil), edgesAcc...),
				}}
			}
			out = append(out, final)
			return ev.checkBudget(len(out))
		}
		return expandRel(ni, 0, pat.Rels[ni], verts[len(verts)-1], r)
	}

	expandRel = func(ni, hops int, rp RelPattern, cur graph.VertexID, r row) error {
		if err := ev.stepBudget(); err != nil {
			return err
		}
		minHops, maxHops := 1, 1
		if rp.VarLen {
			minHops = rp.MinHops
			maxHops = rp.MaxHops
			if maxHops == 0 {
				maxHops = maxLen
			}
		}
		if hops >= minHops && plan.allowedOK(ni+1, cur) {
			// Try to close the relationship at the current vertex (which
			// is already the last element of verts).
			nr, ok := bindNode(pat.Nodes[ni+1], cur, r)
			if ok {
				if err := matchFrom(ni+1, nr); err != nil {
					return err
				}
			}
		}
		if hops == maxHops {
			return nil
		}
		step := func(e graph.EdgeID, nxt graph.VertexID) error {
			// Planner prune: nxt provably on no admissible binding of this
			// relationship.
			if !plan.pathOK(ni, nxt) {
				return nil
			}
			// Cypher relationship isomorphism: edges on a path are distinct.
			for _, used := range edgesAcc {
				if used == e {
					return nil
				}
			}
			edgesAcc = append(edgesAcc, e)
			verts = append(verts, nxt)
			err := expandRel(ni, hops+1, rp, nxt, r)
			verts = verts[:len(verts)-1]
			edgesAcc = edgesAcc[:len(edgesAcc)-1]
			return err
		}
		if rp.Dir == DirRight || rp.Dir == DirBoth {
			if err := ev.iterRelEdges(cur, rp, true, step); err != nil {
				return err
			}
		}
		if rp.Dir == DirLeft || rp.Dir == DirBoth {
			if err := ev.iterRelEdges(cur, rp, false, step); err != nil {
				return err
			}
		}
		return nil
	}

	for _, v := range cands {
		if !plan.allowedOK(0, v) {
			continue
		}
		r, ok := bindNode(first, v, base)
		if !ok {
			continue
		}
		verts = append(verts[:0], v)
		edgesAcc = edgesAcc[:0]
		if err := matchFrom(0, r); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// nodeCandidates picks the starting vertex set for pattern expansion:
// an already-bound variable, an id-constraint seed, a label scan, or a
// full scan.
func (ev *Evaluator) nodeCandidates(np NodePattern, base row, seeds map[string][]graph.VertexID) ([]graph.VertexID, error) {
	if np.Var != "" {
		if bound, ok := base[np.Var]; ok {
			if bound.Kind != KindVertex {
				return nil, fmt.Errorf("cypher: variable %q is not a vertex", np.Var)
			}
			return []graph.VertexID{bound.V}, nil
		}
		if ids, ok := seeds[np.Var]; ok {
			return ids, nil
		}
	}
	if np.Label != "" {
		if l, ok := ev.vertexLabel(np.Label); ok {
			return ev.g.VerticesWithLabel(l), nil
		}
		return nil, nil
	}
	all := make([]graph.VertexID, ev.g.NumVertices())
	for i := range all {
		all[i] = graph.VertexID(i)
	}
	return all, nil
}

// evalExpr evaluates an expression under a row.
func (ev *Evaluator) evalExpr(e Expr, r row) (Value, error) {
	switch x := e.(type) {
	case NumberExpr:
		return Value{Kind: KindInt, I: x.Value}, nil
	case StringExpr:
		return Value{Kind: KindString, S: x.Value}, nil
	case VarExpr:
		v, ok := r[x.Name]
		if !ok {
			return Value{}, fmt.Errorf("cypher: unbound variable %q", x.Name)
		}
		return v, nil
	case ListExpr:
		out := Value{Kind: KindList}
		for _, item := range x.Items {
			v, err := ev.evalExpr(item, r)
			if err != nil {
				return Value{}, err
			}
			out.L = append(out.L, v)
		}
		return out, nil
	case IndexExpr:
		base, err := ev.evalExpr(x.E, r)
		if err != nil {
			return Value{}, err
		}
		idx, err := ev.evalExpr(x.Index, r)
		if err != nil {
			return Value{}, err
		}
		if base.Kind != KindList || idx.Kind != KindInt {
			return Value{}, fmt.Errorf("cypher: bad index expression")
		}
		if idx.I < 0 || int(idx.I) >= len(base.L) {
			return Value{Kind: KindNull}, nil
		}
		return base.L[idx.I], nil
	case NotExpr:
		v, err := ev.evalExpr(x.E, r)
		if err != nil {
			return Value{}, err
		}
		return Value{Kind: KindBool, B: !(v.Kind == KindBool && v.B)}, nil
	case BinaryExpr:
		return ev.evalBinary(x, r)
	case CallExpr:
		return ev.evalCall(x, r)
	case ExtractExpr:
		list, err := ev.evalExpr(x.List, r)
		if err != nil {
			return Value{}, err
		}
		if list.Kind != KindList {
			return Value{}, fmt.Errorf("cypher: extract over non-list")
		}
		out := Value{Kind: KindList}
		for _, item := range list.L {
			nr := r.clone()
			nr[x.Var] = item
			v, err := ev.evalExpr(x.Body, nr)
			if err != nil {
				return Value{}, err
			}
			out.L = append(out.L, v)
		}
		return out, nil
	}
	return Value{}, fmt.Errorf("cypher: unsupported expression %T", e)
}

func (ev *Evaluator) evalBinary(x BinaryExpr, r row) (Value, error) {
	l, err := ev.evalExpr(x.L, r)
	if err != nil {
		return Value{}, err
	}
	rv, err := ev.evalExpr(x.R, r)
	if err != nil {
		return Value{}, err
	}
	switch x.Op {
	case "AND":
		return Value{Kind: KindBool, B: truthy(l) && truthy(rv)}, nil
	case "OR":
		return Value{Kind: KindBool, B: truthy(l) || truthy(rv)}, nil
	case "=":
		return Value{Kind: KindBool, B: l.Equal(rv)}, nil
	case "<>":
		return Value{Kind: KindBool, B: !l.Equal(rv)}, nil
	case "IN":
		if rv.Kind != KindList {
			return Value{}, fmt.Errorf("cypher: IN requires a list")
		}
		for _, item := range rv.L {
			if l.Equal(item) {
				return Value{Kind: KindBool, B: true}, nil
			}
		}
		return Value{Kind: KindBool, B: false}, nil
	}
	return Value{}, fmt.Errorf("cypher: unsupported operator %q", x.Op)
}

func truthy(v Value) bool { return v.Kind == KindBool && v.B }

func (ev *Evaluator) evalCall(x CallExpr, r row) (Value, error) {
	arg := func(i int) (Value, error) {
		if i >= len(x.Args) {
			return Value{}, fmt.Errorf("cypher: %s: missing argument", x.Fn)
		}
		return ev.evalExpr(x.Args[i], r)
	}
	switch x.Fn {
	case "id":
		v, err := arg(0)
		if err != nil {
			return Value{}, err
		}
		switch v.Kind {
		case KindVertex:
			return Value{Kind: KindInt, I: int64(v.V)}, nil
		case KindEdge:
			return Value{Kind: KindInt, I: int64(v.E)}, nil
		}
		return Value{}, fmt.Errorf("cypher: id() of non-element")
	case "labels":
		v, err := arg(0)
		if err != nil {
			return Value{}, err
		}
		if v.Kind != KindVertex {
			return Value{}, fmt.Errorf("cypher: labels() of non-vertex")
		}
		name := ev.labelName(ev.g.VertexLabel(v.V))
		return Value{Kind: KindList, L: []Value{{Kind: KindString, S: name}}}, nil
	case "type":
		v, err := arg(0)
		if err != nil {
			return Value{}, err
		}
		if v.Kind != KindEdge {
			return Value{}, fmt.Errorf("cypher: type() of non-edge")
		}
		return Value{Kind: KindString, S: ev.relName(ev.g.EdgeLabel(v.E))}, nil
	case "length":
		v, err := arg(0)
		if err != nil {
			return Value{}, err
		}
		switch v.Kind {
		case KindPath:
			return Value{Kind: KindInt, I: int64(len(v.P.Edges))}, nil
		case KindList:
			return Value{Kind: KindInt, I: int64(len(v.L))}, nil
		}
		return Value{}, fmt.Errorf("cypher: length() of non-path")
	case "nodes":
		v, err := arg(0)
		if err != nil {
			return Value{}, err
		}
		if v.Kind != KindPath {
			return Value{}, fmt.Errorf("cypher: nodes() of non-path")
		}
		out := Value{Kind: KindList}
		for _, vert := range v.P.Verts {
			out.L = append(out.L, Value{Kind: KindVertex, V: vert})
		}
		return out, nil
	case "relationships":
		v, err := arg(0)
		if err != nil {
			return Value{}, err
		}
		if v.Kind != KindPath {
			return Value{}, fmt.Errorf("cypher: relationships() of non-path")
		}
		out := Value{Kind: KindList}
		for _, e := range v.P.Edges {
			out.L = append(out.L, Value{Kind: KindEdge, E: e})
		}
		return out, nil
	}
	return Value{}, fmt.Errorf("cypher: unknown function %q", x.Fn)
}

// String renders a value for display.
func (v Value) String() string {
	switch v.Kind {
	case KindVertex:
		return fmt.Sprintf("(%d)", v.V)
	case KindEdge:
		return fmt.Sprintf("[%d]", v.E)
	case KindPath:
		parts := make([]string, 0, len(v.P.Verts))
		for _, vert := range v.P.Verts {
			parts = append(parts, fmt.Sprintf("(%d)", vert))
		}
		return strings.Join(parts, "-")
	case KindList:
		parts := make([]string, 0, len(v.L))
		for _, item := range v.L {
			parts = append(parts, item.String())
		}
		return "[" + strings.Join(parts, ", ") + "]"
	case KindString:
		return v.S
	case KindInt:
		return fmt.Sprintf("%d", v.I)
	case KindBool:
		return fmt.Sprintf("%t", v.B)
	}
	return "null"
}
