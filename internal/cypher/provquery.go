package cypher

import (
	"fmt"
	"strings"

	"repro/internal/graph"
	"repro/internal/prov"
)

// PROV adapter: resolves the one-letter PROV conventions used in the
// paper's queries ((b:E), [:U|G*]) against the prov package's interned
// labels, and renders the paper's Query 1 for a given (Vsrc, Vdst).

// NewProvEvaluator builds an evaluator over a PROV graph.
func NewProvEvaluator(p *prov.Graph, opts Options) *Evaluator {
	vertexLabel := func(name string) (graph.Label, bool) {
		switch strings.ToUpper(name) {
		case "E":
			return p.KindLabel(prov.KindEntity), true
		case "A":
			return p.KindLabel(prov.KindActivity), true
		case "U":
			return p.KindLabel(prov.KindAgent), true
		}
		return 0, false
	}
	relLabel := func(name string) (graph.Label, bool) {
		switch strings.ToUpper(name) {
		case "U":
			return p.RelLabel(prov.RelUsed), true
		case "G":
			return p.RelLabel(prov.RelGen), true
		case "S":
			return p.RelLabel(prov.RelAssoc), true
		case "A":
			return p.RelLabel(prov.RelAttr), true
		case "D":
			return p.RelLabel(prov.RelDeriv), true
		}
		return 0, false
	}
	trim := func(l graph.Label) string {
		name := p.PG().Dict().Name(l)
		if i := strings.IndexByte(name, ':'); i >= 0 {
			return name[i+1:]
		}
		return name
	}
	return NewEvaluator(p.PG(), vertexLabel, relLabel, trim, trim, opts)
}

func idList(vs []graph.VertexID) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// Query1 renders the paper's handcrafted Cypher query for L(SimProv)
// (Sec. III.B.2, "Query 1"): the first MATCH materializes all ancestry
// paths p1 from a source b to a destination e1; the second MATCH finds the
// other half p2 and joins on node-by-node label equality and edge-by-edge
// type equality.
func Query1(src, dst []graph.VertexID) string {
	return fmt.Sprintf(`match p1=(b:E)<-[:U|G*]-(e1:E)
where id(b) in %s and id(e1) in %s
with p1
match p2=(c:E)<-[:U|G*]-(e2:E)
where id(e2) in %s and
  extract(x in nodes(p1) | labels(x)[0])
    = extract(x in nodes(p2) | labels(x)[0]) and
  extract(x in relationships(p1) | type(x))
    = extract(x in relationships(p2) | type(x))
return p2`, idList(src), idList(dst), idList(dst))
}

// CypherVC2 runs Query 1 and post-processes the returned p2 paths into the
// VC2 vertex set (every vertex on a similar path), for cross-checking
// against the native solvers.
//
// Note: Query 1 as written in the paper compares whole-path label
// sequences, so a returned p2 shares only its length pattern with p1; the
// joined pairs are exactly the Ee answer pairs, and the union of vertices
// on all returned p2 paths (plus all p1 paths of matching lengths, which
// the first clause already enumerated from the sources) is VC2.
func CypherVC2(p *prov.Graph, src, dst []graph.VertexID, opts Options) (map[graph.VertexID]bool, error) {
	ev := NewProvEvaluator(p, opts)
	q := fmt.Sprintf(`match p1=(b:E)<-[:U|G*]-(e1:E)
where id(b) in %s and id(e1) in %s
with p1
match p2=(c:E)<-[:U|G*]-(e2:E)
where id(e2) in %s and
  extract(x in nodes(p1) | labels(x)[0])
    = extract(x in nodes(p2) | labels(x)[0]) and
  extract(x in relationships(p1) | type(x))
    = extract(x in relationships(p2) | type(x))
return p1, p2`, idList(src), idList(dst), idList(dst))
	res, err := ev.Run(q)
	if err != nil {
		return nil, err
	}
	out := make(map[graph.VertexID]bool)
	for _, row := range res.Rows {
		for _, v := range row {
			if v.Kind == KindPath {
				for _, vert := range v.P.Verts {
					out[vert] = true
				}
			}
		}
	}
	// Degenerate overlap: a vertex in both Vsrc and Vdst matches with the
	// zero-length palindrome, which the Cypher * (min 1 hop) pattern
	// cannot express; add it the way the paper's system would special-case.
	dstSet := make(map[graph.VertexID]bool, len(dst))
	for _, d := range dst {
		dstSet[d] = true
	}
	for _, s := range src {
		if dstSet[s] {
			out[s] = true
		}
	}
	return out, nil
}
