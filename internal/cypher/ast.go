package cypher

// AST for the supported Cypher subset.

// Query is a sequence of reading clauses ending in RETURN.
type Query struct {
	Clauses []Clause
	Return  []Expr
}

// Clause is a MATCH (+ optional WHERE) or a WITH projection.
type Clause interface{ clause() }

// MatchClause is MATCH pattern[, pattern...] [WHERE expr].
type MatchClause struct {
	Patterns []PathPattern
	Where    Expr
}

// WithClause is WITH var[, var...]; only plain variable projection is
// supported.
type WithClause struct {
	Vars []string
}

func (MatchClause) clause() {}
func (WithClause) clause()  {}

// PathPattern is an optionally named chain node-rel-node-rel-...-node.
type PathPattern struct {
	PathVar string // "" when anonymous
	Nodes   []NodePattern
	Rels    []RelPattern // len(Nodes)-1
}

// NodePattern is (var:Label) with both parts optional.
type NodePattern struct {
	Var   string
	Label string // "" = any
}

// Direction of a relationship pattern relative to the textual order.
type Direction int

// Relationship directions.
const (
	DirRight Direction = iota // -[..]-> : edges go left-to-right
	DirLeft                   // <-[..]- : edges go right-to-left
	DirBoth                   // -[..]-  : either direction
)

// RelPattern is a relationship with optional type alternation and
// variable-length modifier.
type RelPattern struct {
	Var      string
	Types    []string // empty = any
	Dir      Direction
	VarLen   bool
	MinHops  int // valid when VarLen (default 1)
	MaxHops  int // 0 = unbounded
	Explicit bool
}

// Expr is a boolean/value expression.
type Expr interface{ expr() }

// BinaryExpr covers AND, OR, =, <>, IN.
type BinaryExpr struct {
	Op   string // "AND", "OR", "=", "<>", "IN"
	L, R Expr
}

// NotExpr is NOT e.
type NotExpr struct{ E Expr }

// VarExpr references a bound variable.
type VarExpr struct{ Name string }

// NumberExpr is an integer literal.
type NumberExpr struct{ Value int64 }

// StringExpr is a string literal.
type StringExpr struct{ Value string }

// ListExpr is [e1, e2, ...].
type ListExpr struct{ Items []Expr }

// IndexExpr is e[i].
type IndexExpr struct {
	E     Expr
	Index Expr
}

// CallExpr is fn(args...): id, labels, type, length, nodes, relationships.
type CallExpr struct {
	Fn   string
	Args []Expr
}

// ExtractExpr is extract(v IN list | body).
type ExtractExpr struct {
	Var  string
	List Expr
	Body Expr
}

func (BinaryExpr) expr()  {}
func (NotExpr) expr()     {}
func (VarExpr) expr()     {}
func (NumberExpr) expr()  {}
func (StringExpr) expr()  {}
func (ListExpr) expr()    {}
func (IndexExpr) expr()   {}
func (CallExpr) expr()    {}
func (ExtractExpr) expr() {}
