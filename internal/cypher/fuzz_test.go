package cypher

import (
	"regexp"
	"testing"
)

// errPos matches the position clause every lexer ("at 12") and parser
// ("at offset 12") diagnostic carries.
var errPos = regexp.MustCompile(` at (offset )?\d+`)

// FuzzCypherParse feeds arbitrary query text to the parser. The contract:
// Parse never panics, and every rejection is a positioned diagnostic (the
// service surfaces parse errors verbatim to HTTP clients, who need the
// offset to point at the bad token). Seed corpus:
// testdata/fuzz/FuzzCypherParse plus the programmatic seeds below.
func FuzzCypherParse(f *testing.F) {
	for _, src := range []string{
		"MATCH (a:E) RETURN a",
		"MATCH (a:E)-[:U]->(b:A) WHERE a.name = 'x' RETURN a, b LIMIT 3",
		"MATCH (a)-[*1..3]->(b) RETURN count(a)",
		"MATCH (a:E)-[:G]->(x:A)<-[:G]-(b:E) WITH a RETURN a.name",
		"match (a) return a order by a.name",
		"MATCH (a:E RETURN a",
		"MATCH (a)-[>(b) RETURN a",
		"RETURN",
		"MATCH (a) WHERE a.v = 'unterminated RETURN a",
		"",
		"\x00\xff",
	} {
		f.Add(src)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			if !errPos.MatchString(err.Error()) {
				t.Fatalf("unpositioned parse error: %v", err)
			}
			return
		}
		if q == nil {
			t.Fatal("nil query with nil error")
		}
	})
}
