package cypher

import (
	"fmt"
	"strconv"
	"strings"
)

// Recursive-descent parser for the supported subset.

type parser struct {
	toks []token
	pos  int
}

// Parse parses a query.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF) {
		return nil, p.errf("trailing input")
	}
	return q, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(k tokenKind) bool { return p.cur().kind == k }

func (p *parser) atKw(kw string) bool { return isKeyword(p.cur(), kw) }

func (p *parser) expect(k tokenKind, what string) (token, error) {
	if !p.at(k) {
		return token{}, p.errf("expected %s", what)
	}
	return p.next(), nil
}

func (p *parser) errf(format string, args ...any) error {
	t := p.cur()
	return fmt.Errorf("cypher: parse error at offset %d (near %q): %s", t.pos, t.text, fmt.Sprintf(format, args...))
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{}
	for {
		switch {
		case p.atKw("match"):
			p.next()
			mc, err := p.parseMatch()
			if err != nil {
				return nil, err
			}
			q.Clauses = append(q.Clauses, mc)
		case p.atKw("with"):
			p.next()
			wc := WithClause{}
			for {
				t, err := p.expect(tokIdent, "variable")
				if err != nil {
					return nil, err
				}
				wc.Vars = append(wc.Vars, t.text)
				if !p.at(tokComma) {
					break
				}
				p.next()
			}
			q.Clauses = append(q.Clauses, wc)
		case p.atKw("return"):
			p.next()
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				q.Return = append(q.Return, e)
				if !p.at(tokComma) {
					break
				}
				p.next()
			}
			return q, nil
		default:
			return nil, p.errf("expected MATCH, WITH or RETURN")
		}
	}
}

func (p *parser) parseMatch() (MatchClause, error) {
	mc := MatchClause{}
	for {
		pat, err := p.parsePathPattern()
		if err != nil {
			return mc, err
		}
		mc.Patterns = append(mc.Patterns, pat)
		if !p.at(tokComma) {
			break
		}
		p.next()
	}
	if p.atKw("where") {
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return mc, err
		}
		mc.Where = e
	}
	return mc, nil
}

func (p *parser) parsePathPattern() (PathPattern, error) {
	pat := PathPattern{}
	// Optional "p =" prefix.
	if p.at(tokIdent) && p.toks[p.pos+1].kind == tokEq &&
		!isKeyword(p.cur(), "where") {
		pat.PathVar = p.next().text
		p.next() // =
	}
	n, err := p.parseNodePattern()
	if err != nil {
		return pat, err
	}
	pat.Nodes = append(pat.Nodes, n)
	for p.at(tokDash) || p.at(tokLArrow) {
		rel, err := p.parseRelPattern()
		if err != nil {
			return pat, err
		}
		n, err := p.parseNodePattern()
		if err != nil {
			return pat, err
		}
		pat.Rels = append(pat.Rels, rel)
		pat.Nodes = append(pat.Nodes, n)
	}
	return pat, nil
}

func (p *parser) parseNodePattern() (NodePattern, error) {
	np := NodePattern{}
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return np, err
	}
	if p.at(tokIdent) {
		np.Var = p.next().text
	}
	if p.at(tokColon) {
		p.next()
		t, err := p.expect(tokIdent, "node label")
		if err != nil {
			return np, err
		}
		np.Label = t.text
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return np, err
	}
	return np, nil
}

// parseRelPattern parses <-[spec]- , -[spec]-> or -[spec]-.
func (p *parser) parseRelPattern() (RelPattern, error) {
	rp := RelPattern{MinHops: 1}
	leftArrow := false
	if p.at(tokLArrow) {
		leftArrow = true
		p.next()
	} else if _, err := p.expect(tokDash, "'-'"); err != nil {
		return rp, err
	}
	if p.at(tokLBracket) {
		p.next()
		rp.Explicit = true
		if p.at(tokIdent) {
			rp.Var = p.next().text
		}
		if p.at(tokColon) {
			p.next()
			for {
				t, err := p.expect(tokIdent, "relationship type")
				if err != nil {
					return rp, err
				}
				rp.Types = append(rp.Types, strings.ToUpper(t.text))
				if !p.at(tokPipe) {
					break
				}
				p.next()
				// allow ":TYPE" after | as some dialects write it
				if p.at(tokColon) {
					p.next()
				}
			}
		}
		if p.at(tokStar) {
			p.next()
			rp.VarLen = true
			if p.at(tokNumber) {
				n, _ := strconv.Atoi(p.next().text)
				rp.MinHops = n
				rp.MaxHops = n
			}
			if p.at(tokDotDot) {
				p.next()
				rp.MaxHops = 0
				if p.at(tokNumber) {
					n, _ := strconv.Atoi(p.next().text)
					rp.MaxHops = n
				}
			}
		}
		if _, err := p.expect(tokRBracket, "']'"); err != nil {
			return rp, err
		}
	}
	if leftArrow {
		rp.Dir = DirLeft
		if _, err := p.expect(tokDash, "'-'"); err != nil {
			return rp, err
		}
	} else {
		if p.at(tokRArrow) {
			p.next()
			rp.Dir = DirRight
		} else if p.at(tokDash) {
			p.next()
			rp.Dir = DirBoth
		} else {
			return rp, p.errf("expected '->' or '-'")
		}
	}
	return rp, nil
}

// Expression precedence: OR < AND < NOT < comparison < postfix < primary.
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.atKw("or") {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = BinaryExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.atKw("and") {
		p.next()
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = BinaryExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.atKw("not") {
		p.next()
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return NotExpr{E: e}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parsePostfix()
	if err != nil {
		return nil, err
	}
	switch {
	case p.at(tokEq):
		p.next()
		r, err := p.parsePostfix()
		if err != nil {
			return nil, err
		}
		return BinaryExpr{Op: "=", L: l, R: r}, nil
	case p.at(tokNeq):
		p.next()
		r, err := p.parsePostfix()
		if err != nil {
			return nil, err
		}
		return BinaryExpr{Op: "<>", L: l, R: r}, nil
	case p.atKw("in"):
		p.next()
		r, err := p.parsePostfix()
		if err != nil {
			return nil, err
		}
		return BinaryExpr{Op: "IN", L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.at(tokLBracket) {
		p.next()
		idx, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRBracket, "']'"); err != nil {
			return nil, err
		}
		e = IndexExpr{E: e, Index: idx}
	}
	return e, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	switch {
	case p.at(tokNumber):
		t := p.next()
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return NumberExpr{Value: v}, nil
	case p.at(tokString):
		return StringExpr{Value: p.next().text}, nil
	case p.at(tokLBracket):
		p.next()
		le := ListExpr{}
		if !p.at(tokRBracket) {
			for {
				item, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				le.Items = append(le.Items, item)
				if !p.at(tokComma) {
					break
				}
				p.next()
			}
		}
		if _, err := p.expect(tokRBracket, "']'"); err != nil {
			return nil, err
		}
		return le, nil
	case p.at(tokLParen):
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	case p.atKw("extract"):
		p.next()
		if _, err := p.expect(tokLParen, "'('"); err != nil {
			return nil, err
		}
		v, err := p.expect(tokIdent, "extract variable")
		if err != nil {
			return nil, err
		}
		if !p.atKw("in") {
			return nil, p.errf("expected IN in extract")
		}
		p.next()
		list, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPipe, "'|'"); err != nil {
			return nil, err
		}
		body, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return ExtractExpr{Var: v.text, List: list, Body: body}, nil
	case p.at(tokIdent):
		t := p.next()
		if p.at(tokLParen) {
			p.next()
			call := CallExpr{Fn: strings.ToLower(t.text)}
			if !p.at(tokRParen) {
				for {
					arg, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, arg)
					if !p.at(tokComma) {
						break
					}
					p.next()
				}
			}
			if _, err := p.expect(tokRParen, "')'"); err != nil {
				return nil, err
			}
			return call, nil
		}
		return VarExpr{Name: t.text}, nil
	}
	return nil, p.errf("expected expression")
}
