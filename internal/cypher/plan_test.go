package cypher_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/cypher"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/prov"
)

// renderRows flattens a result into a canonical string: the planner contract
// is that rows AND their order are bit-identical to the naive evaluation.
func renderRows(res *cypher.Result) string {
	var sb strings.Builder
	for _, r := range res.Rows {
		for i, v := range r {
			if i > 0 {
				sb.WriteString(" | ")
			}
			sb.WriteString(v.String())
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// runBoth evaluates q with the planner on and off and requires identical
// rows in identical order.
func runBoth(t *testing.T, p *prov.Graph, q, tag string) {
	t.Helper()
	planned, err := cypher.NewProvEvaluator(p, cypher.Options{Timeout: 30 * time.Second}).Run(q)
	if err != nil {
		t.Fatalf("%s (planned): %v", tag, err)
	}
	naive, err := cypher.NewProvEvaluator(p, cypher.Options{Timeout: 30 * time.Second, NoPlanner: true}).Run(q)
	if err != nil {
		t.Fatalf("%s (naive): %v", tag, err)
	}
	pr, nr := renderRows(planned), renderRows(naive)
	if pr != nr {
		t.Fatalf("%s: planner diverges from naive\nplanned (%d rows):\n%s\nnaive (%d rows):\n%s",
			tag, len(planned.Rows), pr, len(naive.Rows), nr)
	}
}

// TestPlannerMatchesNaive diffs the snapshot-aware planner against the naive
// DFS over a spread of pattern shapes on frozen graphs — fixed hops,
// bounded and unbounded variable length, both directions, undirected,
// untyped, and unanchored.
func TestPlannerMatchesNaive(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		p := gen.Pd(gen.PdConfig{N: 40, LambdaIn: 1, Seed: seed}).Freeze()
		src, dst := gen.DefaultQuery(p)
		ents := p.Entities()
		acts := p.Activities()
		sl := idList(src)
		dl := idList(dst)
		al := idList(acts[:2])

		queries := []struct{ tag, q string }{
			{"fixed-out", fmt.Sprintf("match (a:A)-[:U]->(b:E) where id(a) in %s return a, b", al)},
			{"fixed-in", fmt.Sprintf("match (b:E)<-[:G]-(a:A) where id(b) in %s return a", idList(ents[len(ents)-2:]))},
			{"fixed-both", fmt.Sprintf("match (a)-[:G]-(b) where id(a) in %s return b", dl)},
			{"varlen-unbounded", fmt.Sprintf("match p=(b:E)<-[:U|G*]-(e:E) where id(b) in %s and id(e) in %s return p", sl, dl)},
			{"varlen-bounded", fmt.Sprintf("match p=(b:E)<-[:U|G*1..3]-(e) where id(b) in %s return p", sl)},
			{"varlen-exact", fmt.Sprintf("match p=(b:E)<-[:U|G*2]-(e) where id(b) in %s return p", sl)},
			{"two-hop-chain", fmt.Sprintf("match (e1:E)<-[:G]-(a:A)-[:U]->(e0:E) where id(e0) in %s return e1, a", sl)},
			{"untyped", fmt.Sprintf("match (a)-[]->(b) where id(a) in %s return b", al)},
			{"unanchored", "match (u:U)<-[:S]-(a:A) return u, a"},
			{"query1", cypher.Query1(src, dst)},
		}
		for _, q := range queries {
			runBoth(t, p, q.q, fmt.Sprintf("seed=%d %s", seed, q.tag))
		}
	}
}

// TestPlannerEmptyPattern pins the unmatchable fast path: an anchor id whose
// vertex fails the node's label constraint proves the pattern empty before a
// single row is enumerated, and the result must still equal the naive
// evaluation (zero rows).
func TestPlannerEmptyPattern(t *testing.T) {
	p := gen.Pd(gen.PdConfig{N: 40, LambdaIn: 1, Seed: 7}).Freeze()
	acts := p.Activities()
	q := fmt.Sprintf("match (b:E)-[:G]->(a) where id(b) in %s return a", idList(acts[:1]))
	runBoth(t, p, q, "activity-as-entity")
	// Out-of-range ids can never bind either.
	q = fmt.Sprintf("match (b:E)<-[:U|G*]-(e) where id(b) in [%d] return e", p.NumVertices()+5)
	runBoth(t, p, q, "out-of-range")
}

// TestPlannerLiveGraphUnchanged: on a live (unfrozen) graph the planner must
// stand down and the evaluator behave exactly as before.
func TestPlannerLiveGraphUnchanged(t *testing.T) {
	p := gen.Pd(gen.PdConfig{N: 40, LambdaIn: 1, Seed: 4})
	if p.Frozen() {
		t.Fatal("expected a live graph")
	}
	src, dst := gen.DefaultQuery(p)
	runBoth(t, p, cypher.Query1(src, dst), "live-query1")
}

// idList mirrors the unexported helper in provquery.go for test use.
func idList(vs []graph.VertexID) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return "[" + strings.Join(parts, ", ") + "]"
}
