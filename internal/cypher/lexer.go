// Package cypher implements a small subset of the Cypher query language —
// enough to express and execute the paper's handcrafted Query 1 (Sec.
// III.B.2) — over the property graph store. It exists as the Neo4j baseline
// of Fig. 5(a): the evaluator materializes every binding of each path
// variable and joins clause outputs, which is exponential in path length
// times average degree, exactly the plan shape the paper reports for Neo4j.
//
// Supported surface:
//
//	MATCH p = (a:E)<-[:U|G*]-(b:E), (x)-[:S]->(y) ...
//	WHERE id(a) IN [1, 2] AND extract(n IN nodes(p) | labels(n)) = ...
//	WITH p, a
//	MATCH ... WHERE ...
//	RETURN p, id(a)
//
// with functions id, labels, type, length, nodes, relationships, extract.
package cypher

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokLParen   // (
	tokRParen   // )
	tokLBracket // [
	tokRBracket // ]
	tokColon    // :
	tokComma    // ,
	tokPipe     // |
	tokStar     // *
	tokEq       // =
	tokNeq      // <>
	tokDash     // -
	tokLArrow   // <-
	tokRArrow   // ->
	tokDotDot   // ..
	tokBar      // | inside extract
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the query text.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '(':
			l.emit(tokLParen, "(")
		case c == ')':
			l.emit(tokRParen, ")")
		case c == '[':
			l.emit(tokLBracket, "[")
		case c == ']':
			l.emit(tokRBracket, "]")
		case c == ':':
			l.emit(tokColon, ":")
		case c == ',':
			l.emit(tokComma, ",")
		case c == '|':
			l.emit(tokPipe, "|")
		case c == '*':
			l.emit(tokStar, "*")
		case c == '=':
			l.emit(tokEq, "=")
		case c == '-':
			if l.peekAt(1) == '>' {
				l.emitN(tokRArrow, "->", 2)
			} else {
				l.emit(tokDash, "-")
			}
		case c == '<':
			if l.peekAt(1) == '-' {
				l.emitN(tokLArrow, "<-", 2)
			} else if l.peekAt(1) == '>' {
				l.emitN(tokNeq, "<>", 2)
			} else {
				return nil, fmt.Errorf("cypher: unexpected '<' at %d", l.pos)
			}
		case c == '.':
			if l.peekAt(1) == '.' {
				l.emitN(tokDotDot, "..", 2)
			} else {
				return nil, fmt.Errorf("cypher: unexpected '.' at %d", l.pos)
			}
		case c == '\'' || c == '"':
			if err := l.lexString(c); err != nil {
				return nil, err
			}
		case unicode.IsDigit(rune(c)):
			l.lexNumber()
		case unicode.IsLetter(rune(c)) || c == '_':
			l.lexIdent()
		default:
			return nil, fmt.Errorf("cypher: unexpected character %q at %d", c, l.pos)
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
	return l.toks, nil
}

func (l *lexer) peekAt(off int) byte {
	if l.pos+off < len(l.src) {
		return l.src[l.pos+off]
	}
	return 0
}

func (l *lexer) emit(k tokenKind, text string) { l.emitN(k, text, 1) }

func (l *lexer) emitN(k tokenKind, text string, n int) {
	l.toks = append(l.toks, token{kind: k, text: text, pos: l.pos})
	l.pos += n
}

func (l *lexer) lexString(quote byte) error {
	start := l.pos
	l.pos++
	var b strings.Builder
	for l.pos < len(l.src) && l.src[l.pos] != quote {
		b.WriteByte(l.src[l.pos])
		l.pos++
	}
	if l.pos >= len(l.src) {
		return fmt.Errorf("cypher: unterminated string at %d", start)
	}
	l.pos++
	l.toks = append(l.toks, token{kind: tokString, text: b.String(), pos: start})
	return nil
}

func (l *lexer) lexNumber() {
	start := l.pos
	for l.pos < len(l.src) && (unicode.IsDigit(rune(l.src[l.pos]))) {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)) || c == '_' {
			l.pos++
		} else {
			break
		}
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}

// keyword matching is case-insensitive.
func isKeyword(t token, kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}
