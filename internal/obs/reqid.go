package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync/atomic"
)

// Request-id propagation. The HTTP layer accepts a client-supplied
// X-Request-ID (or generates one), stores it in the request context, echoes
// it in the response, and attaches it to structured logs and slow-query
// entries. The write path carries the context through Store.UpdateCtx into
// the group committer, so a commit can be attributed to the ingest request
// that staged it.

type ctxKey int

const (
	reqIDKey ctxKey = iota
	stagesKey
)

// reqIDFallback seeds distinct ids if crypto/rand ever fails (it effectively
// cannot on the supported platforms, but a request id must never be empty).
var reqIDFallback atomic.Uint64

// NewRequestID returns a fresh 16-hex-digit request id.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		n := reqIDFallback.Add(1)
		for i := range b {
			b[i] = byte(n >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

// ValidRequestID reports whether a client-supplied id is acceptable to echo
// and log: non-empty, at most 128 bytes, printable ASCII with no spaces,
// quotes or backslashes (so it can never break a log line or a Prometheus
// label).
func ValidRequestID(id string) bool {
	if len(id) == 0 || len(id) > 128 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c <= ' ' || c > '~' || c == '"' || c == '\\' {
			return false
		}
	}
	return true
}

// WithRequestID returns a context carrying the request id.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, reqIDKey, id)
}

// RequestID returns the context's request id, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(reqIDKey).(string)
	return id
}

// Stages collects the per-stage timing breakdown of one write request as it
// flows through the commit pipeline: delta encoding and snapshot freeze
// (under the write mutex), commit-queue wait (staged until the group
// committer picks it up), WAL append write, group fsync, and publication
// (cache revalidation + epoch pointer swap). All fields are nanoseconds.
//
// The struct is written by the store/committer and read by the HTTP layer
// only after the write call returns; the commit path's done-channel
// handshake orders those accesses, so plain fields suffice.
type Stages struct {
	EncodeNanos    int64 `json:"encode_ns"`
	FreezeNanos    int64 `json:"freeze_ns"`
	QueueWaitNanos int64 `json:"queue_wait_ns"`
	AppendNanos    int64 `json:"append_ns"`
	FsyncNanos     int64 `json:"fsync_ns"`
	PublishNanos   int64 `json:"publish_ns"`
}

// WithStages returns a context carrying a fresh Stages record, plus the
// record itself for the caller to read back after the request completes.
func WithStages(ctx context.Context) (context.Context, *Stages) {
	st := &Stages{}
	return context.WithValue(ctx, stagesKey, st), st
}

// StagesFrom returns the context's Stages record, or nil.
func StagesFrom(ctx context.Context) *Stages {
	st, _ := ctx.Value(stagesKey).(*Stages)
	return st
}
