package obs

import (
	"sync"
	"time"
)

// SlowEntry is one request that exceeded the slow threshold, as dumped by
// GET /debug/slow.
type SlowEntry struct {
	Time      time.Time `json:"time"`
	RequestID string    `json:"request_id"`
	Store     string    `json:"store"`
	Endpoint  string    `json:"endpoint"`
	// Shape is the request's coarse shape (method + route), enough to find
	// the offending query class without logging request bodies.
	Shape         string `json:"shape,omitempty"`
	Status        int    `json:"status"`
	DurationNanos int64  `json:"duration_ns"`
	// Stages is the commit-pipeline breakdown for write requests (nil for
	// reads).
	Stages *Stages `json:"stages,omitempty"`
}

// SlowRing is a bounded in-memory ring of the most recent slow requests.
// Adds take a short mutex — the ring is only touched by requests already
// slower than the threshold, never on the fast path — and evict the oldest
// entry once full. Total counts every add, including evicted ones.
type SlowRing struct {
	mu    sync.Mutex
	buf   []SlowEntry
	next  int
	full  bool
	total uint64
}

// NewSlowRing builds a ring holding the last capacity entries (<=0 selects
// 128).
func NewSlowRing(capacity int) *SlowRing {
	if capacity <= 0 {
		capacity = 128
	}
	return &SlowRing{buf: make([]SlowEntry, capacity)}
}

// Add appends an entry, evicting the oldest when the ring is full.
func (r *SlowRing) Add(e SlowEntry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next, r.full = 0, true
	}
	r.total++
}

// Snapshot returns the resident entries, newest first.
func (r *SlowRing) Snapshot() []SlowEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	out := make([]SlowEntry, 0, n)
	for i := 0; i < n; i++ {
		// Walk backwards from the slot before next, wrapping.
		idx := (r.next - 1 - i + len(r.buf)) % len(r.buf)
		out = append(out, r.buf[idx])
	}
	return out
}

// Total returns the number of entries ever added (including evicted ones).
func (r *SlowRing) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}
