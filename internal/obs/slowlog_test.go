package obs

import (
	"fmt"
	"testing"
)

func TestSlowRingOrdering(t *testing.T) {
	r := NewSlowRing(4)
	if got := r.Snapshot(); len(got) != 0 {
		t.Fatalf("fresh ring has %d entries", len(got))
	}
	for i := 0; i < 3; i++ {
		r.Add(SlowEntry{RequestID: fmt.Sprintf("r%d", i)})
	}
	got := r.Snapshot()
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	// Newest first.
	for i, want := range []string{"r2", "r1", "r0"} {
		if got[i].RequestID != want {
			t.Errorf("entry %d = %q, want %q", i, got[i].RequestID, want)
		}
	}
}

func TestSlowRingEviction(t *testing.T) {
	r := NewSlowRing(4)
	for i := 0; i < 10; i++ {
		r.Add(SlowEntry{RequestID: fmt.Sprintf("r%d", i)})
	}
	if r.Total() != 10 {
		t.Fatalf("total = %d, want 10", r.Total())
	}
	got := r.Snapshot()
	if len(got) != 4 {
		t.Fatalf("len = %d, want capacity 4", len(got))
	}
	// Only the 4 newest survive, newest first.
	for i, want := range []string{"r9", "r8", "r7", "r6"} {
		if got[i].RequestID != want {
			t.Errorf("entry %d = %q, want %q", i, got[i].RequestID, want)
		}
	}
}

func TestSlowRingDefaultCapacity(t *testing.T) {
	r := NewSlowRing(0)
	for i := 0; i < 200; i++ {
		r.Add(SlowEntry{})
	}
	if got := len(r.Snapshot()); got != 128 {
		t.Fatalf("default capacity holds %d, want 128", got)
	}
}

func TestRequestIDValidation(t *testing.T) {
	for _, ok := range []string{"abc", "a-b_c.d:e/f", "0123456789abcdef"} {
		if !ValidRequestID(ok) {
			t.Errorf("ValidRequestID(%q) = false", ok)
		}
	}
	long := make([]byte, 129)
	for i := range long {
		long[i] = 'a'
	}
	for _, bad := range []string{"", "has space", "quo\"te", "back\\slash", "new\nline", "\x01ctl", string(long)} {
		if ValidRequestID(bad) {
			t.Errorf("ValidRequestID(%q) = true", bad)
		}
	}
}

func TestNewRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if a == b {
		t.Fatalf("two generated ids collide: %q", a)
	}
	if len(a) != 16 || !ValidRequestID(a) {
		t.Fatalf("generated id %q not 16 hex digits / valid", a)
	}
}
