// Package obs is provd's observability substrate: lock-free latency
// histograms, request-id propagation through context, a bounded slow-query
// ring buffer, and Prometheus text-exposition helpers. Everything recorded
// on a hot path uses atomics only — no instrumentation introduces a lock on
// the store's lock-free read path.
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram buckets are log-spaced (factor 2) with the first upper bound at
// 1µs, so bucket i covers (1µs<<(i-1), 1µs<<i]. 28 buckets reach ~134s;
// anything beyond lands in the overflow bucket, whose quantile estimate is
// the recorded maximum. Log spacing bounds the relative error of any
// quantile estimate at 2x, which is the right resolution for latencies that
// span nanosecond cache hits to second-long fsync stalls.
const (
	// NumBuckets is the number of bounded buckets (excluding overflow).
	NumBuckets = 28
	// bucketBaseNs is the upper bound of the first bucket, in nanoseconds.
	bucketBaseNs = 1000
)

// BucketUpperNs returns the inclusive upper bound of bucket i in
// nanoseconds. Bucket NumBuckets (the overflow bucket) has no bound.
func BucketUpperNs(i int) int64 {
	return bucketBaseNs << i
}

// bucketIndex maps a latency to its bucket: the smallest i with
// ns <= bucketBaseNs<<i, or the overflow index NumBuckets.
func bucketIndex(ns int64) int {
	if ns <= bucketBaseNs {
		return 0
	}
	i := bits.Len64(uint64(ns-1) / bucketBaseNs)
	if i >= NumBuckets {
		return NumBuckets
	}
	return i
}

// Histogram is a fixed-bucket latency histogram safe for concurrent
// observation without locks: counts, sum and max are all atomics. The zero
// value is ready to use, so histograms embed directly into per-store metric
// structs.
type Histogram struct {
	counts [NumBuckets + 1]atomic.Uint64
	sumNs  atomic.Int64
	maxNs  atomic.Int64
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketIndex(ns)].Add(1)
	h.sumNs.Add(ns)
	for {
		max := h.maxNs.Load()
		if ns <= max || h.maxNs.CompareAndSwap(max, ns) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram's counters.
// Concurrent observers may land between bucket reads, so the snapshot is
// only approximately consistent — each individual counter is exact and
// monotone, which is all Prometheus semantics require.
type HistogramSnapshot struct {
	// Counts holds per-bucket sample counts; Counts[NumBuckets] is overflow.
	Counts [NumBuckets + 1]uint64
	// Count is the total number of samples.
	Count uint64
	// SumNanos is the sum of all samples.
	SumNanos int64
	// MaxNanos is the largest sample observed.
	MaxNanos int64
}

// Snapshot copies the current counters.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.SumNanos = h.sumNs.Load()
	s.MaxNanos = h.maxNs.Load()
	return s
}

// Quantile estimates the q-quantile (0 < q <= 1) in nanoseconds: the upper
// bound of the bucket holding the rank-⌈q·n⌉ sample, clamped to the observed
// maximum. Returns 0 for an empty histogram.
func (s *HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(s.Count))
	if float64(rank) < q*float64(s.Count) || rank == 0 {
		rank++ // ceil, and at least the first sample
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum uint64
	for i := 0; i < NumBuckets; i++ {
		cum += s.Counts[i]
		if cum >= rank {
			if ub := BucketUpperNs(i); ub < s.MaxNanos {
				return ub
			}
			return s.MaxNanos
		}
	}
	return s.MaxNanos // rank falls in the overflow bucket
}

// LatencySummary is the JSON-friendly digest of a histogram: sample count,
// p50/p90/p99 estimates, the exact maximum, and the exact sum. All values
// are nanoseconds.
type LatencySummary struct {
	Count      uint64 `json:"count"`
	P50Nanos   int64  `json:"p50_ns"`
	P90Nanos   int64  `json:"p90_ns"`
	P99Nanos   int64  `json:"p99_ns"`
	MaxNanos   int64  `json:"max_ns"`
	TotalNanos int64  `json:"total_ns"`
}

// Summary digests the histogram into quantile estimates.
func (h *Histogram) Summary() LatencySummary {
	s := h.Snapshot()
	return LatencySummary{
		Count:      s.Count,
		P50Nanos:   s.Quantile(0.50),
		P90Nanos:   s.Quantile(0.90),
		P99Nanos:   s.Quantile(0.99),
		MaxNanos:   s.MaxNanos,
		TotalNanos: s.SumNanos,
	}
}
