package obs

import (
	"sync"
	"testing"
	"time"
)

func TestBucketIndexBoundaries(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0},
		{1, 0},
		{999, 0},
		{1000, 0},             // first upper bound is inclusive
		{1001, 1},             // first value past it
		{2000, 1},             // second bound inclusive
		{2001, 2},             // and past
		{1 << 40, NumBuckets}, // ~18 minutes: overflow
	}
	for _, c := range cases {
		if got := bucketIndex(c.ns); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	// Every bucket's upper bound must index to that bucket, and the value
	// just past it to the next.
	for i := 0; i < NumBuckets; i++ {
		ub := BucketUpperNs(i)
		if got := bucketIndex(ub); got != i {
			t.Errorf("bucketIndex(upper %d) = %d, want %d", ub, got, i)
		}
		want := i + 1
		if want > NumBuckets {
			want = NumBuckets
		}
		if got := bucketIndex(ub + 1); got != want {
			t.Errorf("bucketIndex(upper+1 %d) = %d, want %d", ub+1, got, want)
		}
	}
}

func TestHistogramEmptyAndNegative(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.Quantile(0.5) != 0 || s.MaxNanos != 0 {
		t.Fatalf("empty histogram: %+v", s)
	}
	h.Observe(-5 * time.Second) // clamps to 0
	s = h.Snapshot()
	if s.Count != 1 || s.Counts[0] != 1 || s.SumNanos != 0 {
		t.Fatalf("negative sample: %+v", s)
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	var h Histogram
	// 100 samples: 1ms..100ms. Log buckets bound quantile error at 2x.
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.MaxNanos != int64(100*time.Millisecond) {
		t.Fatalf("max = %d", s.MaxNanos)
	}
	wantSum := int64(0)
	for i := 1; i <= 100; i++ {
		wantSum += int64(i) * int64(time.Millisecond)
	}
	if s.SumNanos != wantSum {
		t.Fatalf("sum = %d, want %d", s.SumNanos, wantSum)
	}
	for _, c := range []struct {
		q     float64
		exact int64 // true quantile in ns
	}{
		{0.50, int64(50 * time.Millisecond)},
		{0.90, int64(90 * time.Millisecond)},
		{0.99, int64(99 * time.Millisecond)},
	} {
		got := s.Quantile(c.q)
		if got < c.exact || got > 2*c.exact {
			t.Errorf("q%.2f = %d, want within [%d, %d]", c.q, got, c.exact, 2*c.exact)
		}
	}
	// The estimate never exceeds the observed maximum.
	if got := s.Quantile(1.0); got != s.MaxNanos {
		t.Errorf("q1.0 = %d, want max %d", got, s.MaxNanos)
	}
}

func TestHistogramOverflowQuantile(t *testing.T) {
	var h Histogram
	huge := 10 * BucketUpperNs(NumBuckets-1)
	h.Observe(time.Duration(huge))
	s := h.Snapshot()
	if s.Counts[NumBuckets] != 1 {
		t.Fatalf("overflow bucket empty: %+v", s.Counts)
	}
	// An overflow sample's quantile estimate is the recorded max, not a
	// bucket bound.
	if got := s.Quantile(0.5); got != huge {
		t.Fatalf("overflow quantile = %d, want %d", got, huge)
	}
}

func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	h.Observe(3 * time.Millisecond)
	sum := h.Summary()
	want := int64(3 * time.Millisecond)
	if sum.Count != 1 || sum.P50Nanos != want || sum.P99Nanos != want || sum.MaxNanos != want {
		t.Fatalf("single sample summary: %+v", sum)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const (
		workers = 8
		per     = 5000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(1+(w*per+i)%1000) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	var fromBuckets uint64
	for _, c := range s.Counts {
		fromBuckets += c
	}
	if fromBuckets != s.Count {
		t.Fatalf("bucket total %d != count %d", fromBuckets, s.Count)
	}
	if s.MaxNanos != int64(1000*time.Microsecond) {
		t.Fatalf("max = %d", s.MaxNanos)
	}
}
