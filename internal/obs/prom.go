package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4). The writer produces
// `# HELP` / `# TYPE` headers once per metric family and label-escaped
// sample lines; histograms are rendered in the conventional cumulative
// `_bucket{le=...}` / `_sum` / `_count` triplet with bounds converted to
// seconds. ParseExposition is the matching tiny validator used by the
// golden tests and the CI e2e check.

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// Label is one name="value" pair on a sample line.
type Label struct {
	Name, Value string
}

// escapeLabelValue escapes backslash, double-quote and newline per the
// exposition format.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// MetricWriter accumulates exposition text. Errors are sticky: the first
// write failure is kept and later calls no-op, so call sites stay linear.
type MetricWriter struct {
	w    io.Writer
	err  error
	seen map[string]bool
}

// NewMetricWriter wraps w.
func NewMetricWriter(w io.Writer) *MetricWriter {
	return &MetricWriter{w: w, seen: make(map[string]bool)}
}

// Err returns the first write error, if any.
func (m *MetricWriter) Err() error { return m.err }

func (m *MetricWriter) printf(format string, args ...any) {
	if m.err != nil {
		return
	}
	_, m.err = fmt.Fprintf(m.w, format, args...)
}

// Header emits the HELP/TYPE preamble for a metric family once; repeated
// calls for the same family (e.g. the same metric across stores) no-op.
func (m *MetricWriter) Header(name, help, typ string) {
	if m.seen[name] {
		return
	}
	m.seen[name] = true
	m.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func formatLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// Sample emits one sample line.
func (m *MetricWriter) Sample(name string, labels []Label, value float64) {
	m.printf("%s%s %s\n", name, formatLabels(labels), strconv.FormatFloat(value, 'g', -1, 64))
}

// Histogram emits the snapshot as a conventional cumulative histogram in
// seconds: one `_bucket` line per bound plus `+Inf`, then `_sum` and
// `_count`. The caller must have emitted Header(name, ..., "histogram").
func (m *MetricWriter) Histogram(name string, labels []Label, snap HistogramSnapshot) {
	withLE := make([]Label, len(labels), len(labels)+1)
	copy(withLE, labels)
	var cum uint64
	for i := 0; i < NumBuckets; i++ {
		cum += snap.Counts[i]
		le := strconv.FormatFloat(float64(BucketUpperNs(i))/1e9, 'g', -1, 64)
		m.Sample(name+"_bucket", append(withLE, Label{"le", le}), float64(cum))
	}
	cum += snap.Counts[NumBuckets]
	m.Sample(name+"_bucket", append(withLE, Label{"le", "+Inf"}), float64(cum))
	m.Sample(name+"_sum", labels, float64(snap.SumNanos)/1e9)
	m.Sample(name+"_count", labels, float64(snap.Count))
}

// ParseExposition validates Prometheus text-format input line by line and
// returns the number of samples seen per metric name (the full sample name,
// so histogram series appear as name_bucket / name_sum / name_count). It
// rejects malformed comment lines, metric names, label syntax, and values
// that do not parse as floats — the contract the golden test and the CI
// scrape check enforce.
func ParseExposition(r io.Reader) (map[string]int, error) {
	samples := make(map[string]int)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := validateComment(line); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		name, err := validateSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		samples[name]++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return samples, nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validateComment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) >= 2 && fields[1] != "HELP" && fields[1] != "TYPE" {
		return nil // free-form comment
	}
	if len(fields) < 3 || !validMetricName(fields[2]) {
		return fmt.Errorf("malformed %s comment: %q", fields[1], line)
	}
	if fields[1] == "TYPE" {
		if len(fields) != 4 {
			return fmt.Errorf("TYPE comment missing type: %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
	}
	return nil
}

// validateSample checks one sample line and returns its metric name.
func validateSample(line string) (string, error) {
	rest := line
	// Metric name runs to '{' or whitespace.
	end := strings.IndexAny(rest, "{ ")
	if end < 0 {
		return "", fmt.Errorf("sample with no value: %q", line)
	}
	name := rest[:end]
	if !validMetricName(name) {
		return "", fmt.Errorf("invalid metric name %q", name)
	}
	rest = rest[end:]
	if rest[0] == '{' {
		past, err := scanLabels(rest)
		if err != nil {
			return "", fmt.Errorf("%v in %q", err, line)
		}
		rest = rest[past:]
	}
	rest = strings.TrimLeft(rest, " ")
	// Value, optionally followed by a timestamp.
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", fmt.Errorf("expected value [timestamp], got %q", rest)
	}
	if _, err := parsePromValue(fields[0]); err != nil {
		return "", fmt.Errorf("bad sample value %q", fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return name, nil
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf", "-Inf", "NaN":
		return 0, nil
	}
	return strconv.ParseFloat(s, 64)
}

// scanLabels validates a {name="value",...} block starting at s[0]=='{' and
// returns the index just past the closing '}'.
func scanLabels(s string) (int, error) {
	i := 1
	for {
		if i < len(s) && s[i] == '}' {
			return i + 1, nil
		}
		// Label name.
		start := i
		for i < len(s) && s[i] != '=' {
			i++
		}
		if i == len(s) || !validLabelName(s[start:i]) {
			return 0, fmt.Errorf("bad label name %q", s[start:min(i, len(s))])
		}
		i++ // '='
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("label value not quoted")
		}
		i++
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' {
				i++ // skip the escaped byte
			}
			i++
		}
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label value")
		}
		i++ // closing '"'
		if i < len(s) && s[i] == ',' {
			i++
			continue
		}
		if i < len(s) && s[i] == '}' {
			return i + 1, nil
		}
		return 0, fmt.Errorf("expected ',' or '}' after label value")
	}
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
