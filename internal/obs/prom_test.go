package obs

import (
	"strings"
	"testing"
	"time"
)

func TestMetricWriterOutputParses(t *testing.T) {
	var b strings.Builder
	m := NewMetricWriter(&b)
	m.Header("provd_epoch", "Current epoch.", "gauge")
	m.Sample("provd_epoch", []Label{{"store", "default"}}, 42)
	m.Sample("provd_epoch", []Label{{"store", "audit"}}, 7)
	m.Header("provd_requests_total", "Completed requests.", "counter")
	m.Sample("provd_requests_total", []Label{{"store", "default"}, {"endpoint", "ingest"}, {"class", "2xx"}}, 12)

	var h Histogram
	h.Observe(3 * time.Millisecond)
	h.Observe(90 * time.Millisecond)
	m.Header("provd_request_latency_seconds", "Latency.", "histogram")
	m.Histogram("provd_request_latency_seconds", []Label{{"store", "default"}}, h.Snapshot())
	if err := m.Err(); err != nil {
		t.Fatalf("writer error: %v", err)
	}

	samples, err := ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("own output does not parse: %v\n%s", err, b.String())
	}
	if samples["provd_epoch"] != 2 {
		t.Errorf("provd_epoch samples = %d, want 2", samples["provd_epoch"])
	}
	if samples["provd_request_latency_seconds_bucket"] != NumBuckets+1 {
		t.Errorf("bucket lines = %d, want %d", samples["provd_request_latency_seconds_bucket"], NumBuckets+1)
	}
	if samples["provd_request_latency_seconds_sum"] != 1 || samples["provd_request_latency_seconds_count"] != 1 {
		t.Errorf("sum/count lines: %v", samples)
	}
}

func TestMetricWriterHeaderDedup(t *testing.T) {
	var b strings.Builder
	m := NewMetricWriter(&b)
	m.Header("provd_epoch", "Current epoch.", "gauge")
	m.Header("provd_epoch", "Current epoch.", "gauge")
	if got := strings.Count(b.String(), "# TYPE provd_epoch"); got != 1 {
		t.Fatalf("TYPE emitted %d times, want 1:\n%s", got, b.String())
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	var h Histogram
	h.Observe(500 * time.Nanosecond) // bucket 0
	h.Observe(3 * time.Microsecond)  // bucket 2
	h.Observe(3 * time.Microsecond)
	var b strings.Builder
	m := NewMetricWriter(&b)
	m.Histogram("lat", nil, h.Snapshot())

	var prev float64 = -1
	var infSeen bool
	for _, line := range strings.Split(b.String(), "\n") {
		if !strings.HasPrefix(line, "lat_bucket") {
			continue
		}
		var v float64
		fields := strings.Fields(line)
		if _, err := parseFloatField(fields[len(fields)-1], &v); err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("bucket counts not cumulative: %q after %v", line, prev)
		}
		prev = v
		if strings.Contains(line, `le="+Inf"`) {
			infSeen = true
			if v != 3 {
				t.Fatalf("+Inf bucket = %v, want 3", v)
			}
		}
	}
	if !infSeen {
		t.Fatal("no +Inf bucket emitted")
	}
}

func parseFloatField(s string, v *float64) (float64, error) {
	f, err := parsePromValue(s)
	*v = f
	return f, err
}

func TestLabelEscaping(t *testing.T) {
	var b strings.Builder
	m := NewMetricWriter(&b)
	m.Sample("x", []Label{{"v", "a\"b\\c\nd"}}, 1)
	out := b.String()
	if !strings.Contains(out, `v="a\"b\\c\nd"`) {
		t.Fatalf("escaping wrong: %q", out)
	}
	if _, err := ParseExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("escaped output does not parse: %v", err)
	}
}

func TestParseExpositionRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"1bad_name 3\n",          // name starts with a digit
		"x{le=\"0.1} 3\n",        // unterminated label value
		"x{le=0.1} 3\n",          // unquoted label value
		"x notanumber\n",         // bad value
		"x 1 notatimestamp\n",    // bad timestamp
		"# TYPE x notatype\n",    // unknown type
		"# TYPE x\n",             // missing type
		"x{=\"v\"} 1\n",          // empty label name
		"x{a=\"v\" b=\"w\"} 1\n", // missing comma
		"x\n",                    // no value at all
		"x{a=\"v\"} 1 2 3\n",     // trailing garbage
	} {
		if _, err := ParseExposition(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseExposition accepted %q", bad)
		}
	}
	good := "# some free comment\nx{a=\"v\"} 1 1712000000\nnan_ok NaN\ninf_ok +Inf\n"
	if _, err := ParseExposition(strings.NewReader(good)); err != nil {
		t.Errorf("ParseExposition rejected valid input: %v", err)
	}
}
