// Package prov implements the W3C PROV core data model on top of the
// property graph store (paper Sec. II, Definition 1).
//
// A provenance graph G(V, E, lambda_v, lambda_e, sigma, omega) is a DAG
// whose vertices are Entities (E), Activities (A) and Agents (U), and whose
// edges are one of the five core PROV relationships:
//
//	used              U  subset of A x E
//	wasGeneratedBy    G  subset of E x A
//	wasAssociatedWith S  subset of A x U
//	wasAttributedTo   A  subset of E x U
//	wasDerivedFrom    D  subset of E x E
//
// The package provides a typed builder with schema validation, helpers for
// versioned artifacts, order-of-being, path labels (including inverse edge
// labels U^-1 and G^-1), and a JSON interchange format.
package prov

import (
	"fmt"

	"repro/internal/graph"
)

// Kind is a PROV vertex kind.
type Kind uint8

// PROV vertex kinds.
const (
	KindEntity Kind = iota
	KindActivity
	KindAgent
	numKinds
)

// String returns the one-letter PROV vertex label (E, A, U).
func (k Kind) String() string {
	switch k {
	case KindEntity:
		return "E"
	case KindActivity:
		return "A"
	case KindAgent:
		return "U"
	}
	return "?"
}

// Rel is a PROV edge relationship type.
type Rel uint8

// PROV relationship types.
const (
	RelUsed  Rel = iota // used: Activity -> Entity
	RelGen              // wasGeneratedBy: Entity -> Activity
	RelAssoc            // wasAssociatedWith: Activity -> Agent
	RelAttr             // wasAttributedTo: Entity -> Agent
	RelDeriv            // wasDerivedFrom: Entity -> Entity
	numRels
)

// String returns the one-letter edge label used in path words
// (U, G, S, A, D).
func (r Rel) String() string {
	switch r {
	case RelUsed:
		return "U"
	case RelGen:
		return "G"
	case RelAssoc:
		return "S"
	case RelAttr:
		return "A"
	case RelDeriv:
		return "D"
	}
	return "?"
}

// LongName returns the PROV-DM relationship name.
func (r Rel) LongName() string {
	switch r {
	case RelUsed:
		return "used"
	case RelGen:
		return "wasGeneratedBy"
	case RelAssoc:
		return "wasAssociatedWith"
	case RelAttr:
		return "wasAttributedTo"
	case RelDeriv:
		return "wasDerivedFrom"
	}
	return "?"
}

// endpointKinds returns the required (src, dst) vertex kinds for a
// relationship.
func (r Rel) endpointKinds() (Kind, Kind) {
	switch r {
	case RelUsed:
		return KindActivity, KindEntity
	case RelGen:
		return KindEntity, KindActivity
	case RelAssoc:
		return KindActivity, KindAgent
	case RelAttr:
		return KindEntity, KindAgent
	case RelDeriv:
		return KindEntity, KindEntity
	}
	panic("prov: bad relationship")
}

// Well-known property keys used by the lifecycle tooling.
const (
	PropName     = "name"     // display/artifact name
	PropCommand  = "command"  // activity command
	PropVersion  = "version"  // commit/version id
	PropTime     = "time"     // logical timestamp
	PropFilename = "filename" // artifact a snapshot entity belongs to
)

// Graph is a PROV provenance graph. It embeds the generic property graph
// and adds PROV typing.
type Graph struct {
	g *graph.Graph

	kindLabels [numKinds]graph.Label
	relLabels  [numRels]graph.Label
	labelKind  map[graph.Label]Kind
	labelRel   map[graph.Label]Rel
}

// New returns an empty PROV graph.
func New() *Graph {
	return Wrap(graph.New())
}

// Wrap adapts an existing property graph whose labels are the PROV
// one-letter conventions (E, A, U vertices; U, G, S, A, D edges). Labels are
// interned if missing.
func Wrap(g *graph.Graph) *Graph {
	p := &Graph{
		g:         g,
		labelKind: make(map[graph.Label]Kind, numKinds),
		labelRel:  make(map[graph.Label]Rel, numRels),
	}
	d := g.Dict()
	// Vertex labels: E, A, U. Edge labels are prefixed to avoid colliding
	// with the "A"/"U" vertex labels in the shared dictionary.
	for k := Kind(0); k < numKinds; k++ {
		l := d.Intern("v:" + k.String())
		p.kindLabels[k] = l
		p.labelKind[l] = k
	}
	for r := Rel(0); r < numRels; r++ {
		l := d.Intern("e:" + r.String())
		p.relLabels[r] = l
		p.labelRel[l] = r
	}
	return p
}

// PG exposes the underlying property graph.
func (p *Graph) PG() *graph.Graph { return p.g }

// Freeze returns an immutable epoch snapshot of the provenance graph,
// backed by graph.Freeze's CSR adjacency index. The snapshot shares no
// mutable state with the live graph: writers may keep appending while any
// number of readers query the snapshot lock-free. The label tables are
// shared (they are fixed at Wrap time). Freezing a frozen graph returns it
// unchanged.
func (p *Graph) Freeze() *Graph {
	if p.g.Frozen() {
		return p
	}
	return p.wrapSnapshot(p.g.Freeze())
}

// wrapSnapshot wraps a frozen property graph with this graph's (immutable,
// fixed at Wrap time) PROV label tables.
func (p *Graph) wrapSnapshot(fg *graph.Graph) *Graph {
	return &Graph{
		g:          fg,
		kindLabels: p.kindLabels,
		relLabels:  p.relLabels,
		labelKind:  p.labelKind,
		labelRel:   p.labelRel,
	}
}

// ExtendFrozen returns an immutable epoch snapshot like Freeze, but builds
// the CSR index incrementally from prev, an earlier snapshot of this same
// graph (normally the previous epoch): unchanged per-label blocks are
// shared, only the ingest delta is indexed (graph.ExtendFrozen). The bool
// result reports whether the incremental path was taken; when prev is
// unusable as a base the snapshot falls back to a full rebuild.
func (p *Graph) ExtendFrozen(prev *Graph) (*Graph, bool) {
	if p.g.Frozen() {
		return p, false
	}
	var pg *graph.Graph
	if prev != nil {
		pg = prev.g
	}
	fg, incr := p.g.ExtendFrozen(pg)
	return p.wrapSnapshot(fg), incr
}

// Frozen reports whether this graph is an immutable snapshot.
func (p *Graph) Frozen() bool { return p.g.Frozen() }

// KindLabel returns the graph label for a vertex kind.
func (p *Graph) KindLabel(k Kind) graph.Label { return p.kindLabels[k] }

// RelLabel returns the graph label for a relationship.
func (p *Graph) RelLabel(r Rel) graph.Label { return p.relLabels[r] }

// NumVertices returns the number of vertices.
func (p *Graph) NumVertices() int { return p.g.NumVertices() }

// NumEdges returns the number of edges.
func (p *Graph) NumEdges() int { return p.g.NumEdges() }

// KindOf returns the PROV kind of vertex v.
func (p *Graph) KindOf(v graph.VertexID) Kind {
	k, ok := p.labelKind[p.g.VertexLabel(v)]
	if !ok {
		panic(fmt.Sprintf("prov: vertex %d has non-PROV label", v))
	}
	return k
}

// RelOf returns the PROV relationship of edge e.
func (p *Graph) RelOf(e graph.EdgeID) Rel {
	r, ok := p.labelRel[p.g.EdgeLabel(e)]
	if !ok {
		panic(fmt.Sprintf("prov: edge %d has non-PROV label", e))
	}
	return r
}

// IsKind reports whether v has the given kind.
func (p *Graph) IsKind(v graph.VertexID, k Kind) bool {
	return p.g.VertexLabel(v) == p.kindLabels[k]
}

// NewEntity adds an entity vertex with a display name.
func (p *Graph) NewEntity(name string) graph.VertexID {
	v := p.g.AddVertex(p.kindLabels[KindEntity])
	if name != "" {
		p.g.SetVertexProp(v, PropName, graph.String(name))
	}
	return v
}

// NewActivity adds an activity vertex with a display name.
func (p *Graph) NewActivity(name string) graph.VertexID {
	v := p.g.AddVertex(p.kindLabels[KindActivity])
	if name != "" {
		p.g.SetVertexProp(v, PropName, graph.String(name))
	}
	return v
}

// NewAgent adds an agent vertex with a display name.
func (p *Graph) NewAgent(name string) graph.VertexID {
	v := p.g.AddVertex(p.kindLabels[KindAgent])
	if name != "" {
		p.g.SetVertexProp(v, PropName, graph.String(name))
	}
	return v
}

// errKind formats an endpoint-typing error.
func (p *Graph) errKind(r Rel, src, dst graph.VertexID) error {
	ks, kd := r.endpointKinds()
	return fmt.Errorf("prov: %s requires %v -> %v endpoints, got %v -> %v",
		r.LongName(), ks, kd, p.KindOf(src), p.KindOf(dst))
}

// AddRel adds a typed relationship edge after validating the endpoint kinds.
func (p *Graph) AddRel(r Rel, src, dst graph.VertexID) (graph.EdgeID, error) {
	ks, kd := r.endpointKinds()
	if p.KindOf(src) != ks || p.KindOf(dst) != kd {
		return 0, p.errKind(r, src, dst)
	}
	return p.g.AddEdge(src, dst, p.relLabels[r]), nil
}

// mustRel is AddRel that panics on schema violation; used by the typed
// helpers below whose signatures already enforce intent.
func (p *Graph) mustRel(r Rel, src, dst graph.VertexID) graph.EdgeID {
	e, err := p.AddRel(r, src, dst)
	if err != nil {
		panic(err)
	}
	return e
}

// Used records that activity a used entity e (edge a -> e).
func (p *Graph) Used(a, e graph.VertexID) graph.EdgeID { return p.mustRel(RelUsed, a, e) }

// WasGeneratedBy records that entity e was generated by activity a
// (edge e -> a).
func (p *Graph) WasGeneratedBy(e, a graph.VertexID) graph.EdgeID { return p.mustRel(RelGen, e, a) }

// WasAssociatedWith records that activity a was associated with agent u.
func (p *Graph) WasAssociatedWith(a, u graph.VertexID) graph.EdgeID {
	return p.mustRel(RelAssoc, a, u)
}

// WasAttributedTo records that entity e was attributed to agent u.
func (p *Graph) WasAttributedTo(e, u graph.VertexID) graph.EdgeID { return p.mustRel(RelAttr, e, u) }

// WasDerivedFrom records that entity e2 was derived from entity e1
// (edge e2 -> e1).
func (p *Graph) WasDerivedFrom(e2, e1 graph.VertexID) graph.EdgeID {
	return p.mustRel(RelDeriv, e2, e1)
}

// Name returns the display name of a vertex (empty if unset).
func (p *Graph) Name(v graph.VertexID) string {
	return p.g.VertexProp(v, PropName).AsString()
}

// Order returns the order-of-being of a vertex. Vertex ids are assigned in
// ingestion order, so the id is the order (paper Sec. III.B: "order of
// being"); an explicit PropTime property overrides it.
func (p *Graph) Order(v graph.VertexID) int64 {
	if t, ok := p.g.VertexProp(v, PropTime).IntVal(); ok {
		return t
	}
	return int64(v)
}

// Entities returns all entity vertex ids in id order.
func (p *Graph) Entities() []graph.VertexID {
	return p.g.VerticesWithLabel(p.kindLabels[KindEntity])
}

// Activities returns all activity vertex ids in id order.
func (p *Graph) Activities() []graph.VertexID {
	return p.g.VerticesWithLabel(p.kindLabels[KindActivity])
}

// Agents returns all agent vertex ids in id order.
func (p *Graph) Agents() []graph.VertexID {
	return p.g.VerticesWithLabel(p.kindLabels[KindAgent])
}

// GeneratorsOf appends to buf the activities that generated entity e
// (targets of e's G out-edges).
func (p *Graph) GeneratorsOf(e graph.VertexID, buf []graph.VertexID) []graph.VertexID {
	return p.g.OutNeighbors(e, p.relLabels[RelGen], buf)
}

// GeneratedBy appends to buf the entities generated by activity a
// (sources of a's G in-edges).
func (p *Graph) GeneratedBy(a graph.VertexID, buf []graph.VertexID) []graph.VertexID {
	return p.g.InNeighbors(a, p.relLabels[RelGen], buf)
}

// InputsOf appends to buf the entities used by activity a (targets of a's
// U out-edges).
func (p *Graph) InputsOf(a graph.VertexID, buf []graph.VertexID) []graph.VertexID {
	return p.g.OutNeighbors(a, p.relLabels[RelUsed], buf)
}

// UsersOf appends to buf the activities that used entity e (sources of e's
// U in-edges).
func (p *Graph) UsersOf(e graph.VertexID, buf []graph.VertexID) []graph.VertexID {
	return p.g.InNeighbors(e, p.relLabels[RelUsed], buf)
}

// AgentsOf appends to buf the agents linked to v by S (activities) or A
// (entities) edges.
func (p *Graph) AgentsOf(v graph.VertexID, buf []graph.VertexID) []graph.VertexID {
	buf = p.g.OutNeighbors(v, p.relLabels[RelAssoc], buf)
	buf = p.g.OutNeighbors(v, p.relLabels[RelAttr], buf)
	return buf
}

// Validate checks PROV well-formedness: every vertex/edge label is a PROV
// label, every edge is endpoint-typed correctly, and the graph is acyclic
// (Definition 1 requires a DAG).
func (p *Graph) Validate() error {
	for v := 0; v < p.g.NumVertices(); v++ {
		if _, ok := p.labelKind[p.g.VertexLabel(graph.VertexID(v))]; !ok {
			return fmt.Errorf("prov: vertex %d: unknown label %q", v, p.g.Dict().Name(p.g.VertexLabel(graph.VertexID(v))))
		}
	}
	for e := 0; e < p.g.NumEdges(); e++ {
		id := graph.EdgeID(e)
		r, ok := p.labelRel[p.g.EdgeLabel(id)]
		if !ok {
			return fmt.Errorf("prov: edge %d: unknown label %q", e, p.g.Dict().Name(p.g.EdgeLabel(id)))
		}
		ks, kd := r.endpointKinds()
		if p.KindOf(p.g.Src(id)) != ks || p.KindOf(p.g.Dst(id)) != kd {
			return fmt.Errorf("prov: edge %d: %w", e, p.errKind(r, p.g.Src(id), p.g.Dst(id)))
		}
	}
	if !p.g.IsAcyclic(nil) {
		return fmt.Errorf("prov: provenance graph contains a cycle")
	}
	return nil
}
