package prov

import (
	"fmt"

	"repro/internal/graph"
)

// Recorder is a convenience layer for ingesting lifecycle provenance the way
// the paper's motivating system (ProvDB, Fig. 1) does: project artifacts are
// versioned, each version is an entity snapshot, and activities connect the
// snapshots. It addresses requirement R1 (querying both the artifact aspect
// and the snapshot aspect).
type Recorder struct {
	P *Graph

	// artifact name -> ordered version entities
	versions map[string][]graph.VertexID
	agents   map[string]graph.VertexID
}

// NewRecorder returns a recorder over a fresh PROV graph.
func NewRecorder() *Recorder {
	return &Recorder{
		P:        New(),
		versions: make(map[string][]graph.VertexID),
		agents:   make(map[string]graph.VertexID),
	}
}

// WrapRecorder returns a recorder over an existing PROV graph, rebuilding the
// artifact version index and agent table from stored properties so that
// lifecycle recording can resume on a deserialized graph: snapshots carry a
// PropFilename property (version order follows id order), agents their display
// name.
func WrapRecorder(p *Graph) *Recorder {
	rc := &Recorder{
		P:        p,
		versions: make(map[string][]graph.VertexID),
		agents:   make(map[string]graph.VertexID),
	}
	rc.IndexFrom(0)
	return rc
}

// IndexFrom is the replay hook for durable recovery: after a write-ahead-log
// delta has been applied to the underlying graph (bypassing the recorder's
// typed entry points), it folds the vertices appended at or past first into
// the artifact version index and the agent table, exactly as recording them
// live would have. Vertex ids are assigned in ingestion order, so indexing
// each replayed batch in id order reconstructs the pre-crash recorder state.
func (rc *Recorder) IndexFrom(first graph.VertexID) {
	p := rc.P
	for v := int(first); v < p.NumVertices(); v++ {
		id := graph.VertexID(v)
		switch p.KindOf(id) {
		case KindEntity:
			if name, ok := p.PG().VertexProp(id, PropFilename).Str(); ok && name != "" {
				rc.versions[name] = append(rc.versions[name], id)
			}
		case KindAgent:
			if name := p.Name(id); name != "" {
				if _, dup := rc.agents[name]; !dup {
					rc.agents[name] = id
				}
			}
		}
	}
}

// Agent returns (creating on first use) the agent vertex for a team member.
func (rc *Recorder) Agent(name string) graph.VertexID {
	if v, ok := rc.agents[name]; ok {
		return v
	}
	v := rc.P.NewAgent(name)
	rc.agents[name] = v
	return v
}

// AgentNamed returns the agent vertex for a team member, without creating
// one (and whether it exists). The read-only counterpart of Agent, used by
// recovery checks and introspection.
func (rc *Recorder) AgentNamed(name string) (graph.VertexID, bool) {
	v, ok := rc.agents[name]
	return v, ok
}

// Snapshot records a new version of the named artifact and returns its
// entity vertex. If the artifact has a previous version, a wasDerivedFrom
// edge links the new snapshot to it.
func (rc *Recorder) Snapshot(artifact string) graph.VertexID {
	vs := rc.versions[artifact]
	ver := len(vs) + 1
	e := rc.P.NewEntity(fmt.Sprintf("%s-v%d", artifact, ver))
	rc.P.PG().SetVertexProp(e, PropFilename, graph.String(artifact))
	rc.P.PG().SetVertexProp(e, PropVersion, graph.Int(int64(ver)))
	if len(vs) > 0 {
		rc.P.WasDerivedFrom(e, vs[len(vs)-1])
	}
	rc.versions[artifact] = append(vs, e)
	return e
}

// Latest returns the latest snapshot of an artifact (and whether one exists).
func (rc *Recorder) Latest(artifact string) (graph.VertexID, bool) {
	vs := rc.versions[artifact]
	if len(vs) == 0 {
		return 0, false
	}
	return vs[len(vs)-1], true
}

// Version returns the n-th (1-based) snapshot of an artifact.
func (rc *Recorder) Version(artifact string, n int) (graph.VertexID, bool) {
	vs := rc.versions[artifact]
	if n < 1 || n > len(vs) {
		return 0, false
	}
	return vs[n-1], true
}

// Versions returns all snapshots of an artifact in version order.
func (rc *Recorder) Versions(artifact string) []graph.VertexID {
	return rc.versions[artifact]
}

// Run records an activity executed by agent that used the given input
// entities and produced new snapshots of the named output artifacts. It
// returns the activity vertex and the output entities, in order.
func (rc *Recorder) Run(agent, command string, inputs []graph.VertexID, outputs []string) (graph.VertexID, []graph.VertexID) {
	a := rc.P.NewActivity(command)
	rc.P.PG().SetVertexProp(a, PropCommand, graph.String(command))
	rc.P.WasAssociatedWith(a, rc.Agent(agent))
	for _, in := range inputs {
		rc.P.Used(a, in)
	}
	outs := make([]graph.VertexID, 0, len(outputs))
	for _, artifact := range outputs {
		e := rc.Snapshot(artifact)
		rc.P.WasGeneratedBy(e, a)
		outs = append(outs, e)
	}
	return a, outs
}

// Import records an entity added from an external source, attributed to the
// agent (e.g. "Alice downloads the dataset").
func (rc *Recorder) Import(agent, artifact, url string) graph.VertexID {
	e := rc.Snapshot(artifact)
	if url != "" {
		rc.P.PG().SetVertexProp(e, "url", graph.String(url))
	}
	rc.P.WasAttributedTo(e, rc.Agent(agent))
	return e
}
