package prov

import (
	"strings"

	"repro/internal/graph"
)

// Step is one hop of a path: the edge traversed and whether it was followed
// against its direction (an inverse traversal, written U^-1 / G^-1 in the
// paper). Only ancestry edges (used, wasGeneratedBy) have virtual inverses.
type Step struct {
	Edge    graph.EdgeID
	Inverse bool
}

// Path is a vertex/edge alternating sequence v0 e1 v1 ... en vn with n >= 1
// (paper Sec. III.A notation). It stores the start vertex and the steps; the
// intermediate and final vertices are derived.
type Path struct {
	Start graph.VertexID
	Steps []Step
}

// Len returns the number of edges on the path.
func (pt Path) Len() int { return len(pt.Steps) }

// Vertices returns the full vertex sequence v0..vn.
func (pt Path) Vertices(p *Graph) []graph.VertexID {
	out := make([]graph.VertexID, 0, len(pt.Steps)+1)
	cur := pt.Start
	out = append(out, cur)
	for _, s := range pt.Steps {
		cur = s.target(p, cur)
		out = append(out, cur)
	}
	return out
}

// End returns the final vertex vn.
func (pt Path) End(p *Graph) graph.VertexID {
	cur := pt.Start
	for _, s := range pt.Steps {
		cur = s.target(p, cur)
	}
	return cur
}

func (s Step) target(p *Graph, from graph.VertexID) graph.VertexID {
	if s.Inverse {
		if p.PG().Dst(s.Edge) != from {
			panic("prov: inverse step does not start at edge destination")
		}
		return p.PG().Src(s.Edge)
	}
	if p.PG().Src(s.Edge) != from {
		panic("prov: step does not start at edge source")
	}
	return p.PG().Dst(s.Edge)
}

// EdgeToken returns the path-word token for an edge traversal: "U", "G",
// "S", "A", "D" or their inverse forms "U-1", "G-1".
func EdgeToken(r Rel, inverse bool) string {
	if inverse {
		return r.String() + "-1"
	}
	return r.String()
}

// TauPath returns the label word tau(pi) of the full path: vertex and edge
// labels in sequence order, space-separated.
func (p *Graph) TauPath(pt Path) string {
	var b strings.Builder
	cur := pt.Start
	b.WriteString(p.KindOf(cur).String())
	for _, s := range pt.Steps {
		b.WriteByte(' ')
		b.WriteString(EdgeToken(p.RelOf(s.Edge), s.Inverse))
		cur = s.target(p, cur)
		b.WriteByte(' ')
		b.WriteString(p.KindOf(cur).String())
	}
	return b.String()
}

// TauSegment returns the label word tau(pi-hat) of the path segment, i.e.
// the path with its first and last vertices dropped: e1 v1 ... v_{n-1} en.
func (p *Graph) TauSegment(pt Path) string {
	var b strings.Builder
	cur := pt.Start
	for i, s := range pt.Steps {
		if i > 0 {
			b.WriteByte(' ')
			b.WriteString(p.KindOf(cur).String())
			b.WriteByte(' ')
		}
		b.WriteString(EdgeToken(p.RelOf(s.Edge), s.Inverse))
		cur = s.target(p, cur)
	}
	return b.String()
}

// Inverse returns the inverse path pi^-1 (sequence reversed, each ancestry
// step flipped). Panics if the path traverses a non-invertible edge type
// forward (S, A, D have no virtual inverse in the core model).
func (pt Path) Inverse(p *Graph) Path {
	inv := Path{Start: pt.End(p), Steps: make([]Step, 0, len(pt.Steps))}
	for i := len(pt.Steps) - 1; i >= 0; i-- {
		s := pt.Steps[i]
		if !s.Inverse {
			r := p.RelOf(s.Edge)
			if r != RelUsed && r != RelGen {
				panic("prov: cannot invert non-ancestry edge " + r.LongName())
			}
		}
		inv.Steps = append(inv.Steps, Step{Edge: s.Edge, Inverse: !s.Inverse})
	}
	return inv
}

// AncestryPaths enumerates all forward-ancestry alternating paths starting
// at v (following U and G edges forward) with at most maxSteps edges,
// invoking fn for each non-empty path. Enumeration stops early if fn
// returns false. Intended for tests and small-graph verification: the count
// of such paths can be exponential.
func (p *Graph) AncestryPaths(v graph.VertexID, maxSteps int, fn func(Path) bool) {
	var steps []Step
	var rec func(cur graph.VertexID) bool
	rec = func(cur graph.VertexID) bool {
		if len(steps) > 0 {
			cp := Path{Start: v, Steps: append([]Step(nil), steps...)}
			if !fn(cp) {
				return false
			}
		}
		if len(steps) == maxSteps {
			return true
		}
		for _, e := range p.PG().Out(cur) {
			r := p.RelOf(e)
			if r != RelUsed && r != RelGen {
				continue
			}
			steps = append(steps, Step{Edge: e})
			ok := rec(p.PG().Dst(e))
			steps = steps[:len(steps)-1]
			if !ok {
				return false
			}
		}
		return true
	}
	rec(v)
}
