package prov

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/graph"
)

func buildChain(t *testing.T) (*Graph, []graph.VertexID) {
	t.Helper()
	p := New()
	alice := p.NewAgent("alice")
	d := p.NewEntity("data")
	p.WasAttributedTo(d, alice)
	a1 := p.NewActivity("train")
	p.WasAssociatedWith(a1, alice)
	p.Used(a1, d)
	m := p.NewEntity("model")
	p.WasGeneratedBy(m, a1)
	m2 := p.NewEntity("model2")
	p.WasDerivedFrom(m2, m)
	return p, []graph.VertexID{alice, d, a1, m, m2}
}

func TestKindsAndRels(t *testing.T) {
	p, vs := buildChain(t)
	alice, d, a1, m, _ := vs[0], vs[1], vs[2], vs[3], vs[4]
	if p.KindOf(alice) != KindAgent || p.KindOf(d) != KindEntity || p.KindOf(a1) != KindActivity {
		t.Fatal("kinds wrong")
	}
	if !p.IsKind(m, KindEntity) || p.IsKind(m, KindAgent) {
		t.Fatal("IsKind wrong")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Entities()) != 3 || len(p.Activities()) != 1 || len(p.Agents()) != 1 {
		t.Fatal("per-kind listings wrong")
	}
}

func TestSchemaEnforcement(t *testing.T) {
	p := New()
	e := p.NewEntity("e")
	a := p.NewActivity("a")
	u := p.NewAgent("u")
	// Wrong-direction / wrong-kind edges must be rejected.
	bad := []struct {
		rel      Rel
		src, dst graph.VertexID
	}{
		{RelUsed, e, a},  // used must be A -> E
		{RelGen, a, e},   // gen must be E -> A
		{RelAssoc, e, u}, // assoc must be A -> U
		{RelAttr, a, u},  // attr must be E -> U
		{RelDeriv, e, a}, // deriv must be E -> E
		{RelDeriv, u, u}, // deriv must be E -> E
		{RelAssoc, a, e}, // target must be agent
	}
	for _, c := range bad {
		if _, err := p.AddRel(c.rel, c.src, c.dst); err == nil {
			t.Errorf("AddRel(%v, %v->%v) accepted invalid edge", c.rel, c.src, c.dst)
		}
	}
	// Valid ones succeed.
	if _, err := p.AddRel(RelUsed, a, e); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddRel(RelAssoc, a, u); err != nil {
		t.Fatal(err)
	}
}

func TestValidateDetectsCycle(t *testing.T) {
	p := New()
	e1 := p.NewEntity("e1")
	e2 := p.NewEntity("e2")
	p.WasDerivedFrom(e2, e1)
	p.WasDerivedFrom(e1, e2) // cycle
	if err := p.Validate(); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestAdjacencyHelpers(t *testing.T) {
	p, vs := buildChain(t)
	d, a1, m := vs[1], vs[2], vs[3]
	var buf []graph.VertexID
	if buf = p.GeneratorsOf(m, buf[:0]); len(buf) != 1 || buf[0] != a1 {
		t.Fatal("GeneratorsOf wrong")
	}
	if buf = p.GeneratedBy(a1, buf[:0]); len(buf) != 1 || buf[0] != m {
		t.Fatal("GeneratedBy wrong")
	}
	if buf = p.InputsOf(a1, buf[:0]); len(buf) != 1 || buf[0] != d {
		t.Fatal("InputsOf wrong")
	}
	if buf = p.UsersOf(d, buf[:0]); len(buf) != 1 || buf[0] != a1 {
		t.Fatal("UsersOf wrong")
	}
	if buf = p.AgentsOf(a1, buf[:0]); len(buf) != 1 {
		t.Fatal("AgentsOf wrong")
	}
}

func TestOrderOfBeing(t *testing.T) {
	p, vs := buildChain(t)
	// Default: vertex id order.
	if p.Order(vs[1]) >= p.Order(vs[3]) {
		t.Fatal("id order broken")
	}
	// Explicit PropTime overrides.
	p.PG().SetVertexProp(vs[1], PropTime, graph.Int(999))
	if p.Order(vs[1]) != 999 {
		t.Fatal("PropTime override ignored")
	}
}

func TestPathLabels(t *testing.T) {
	p, vs := buildChain(t)
	d, a1, m := vs[1], vs[2], vs[3]
	// Path m -G-> a1 -U-> d (forward ancestry).
	var gEdge, uEdge graph.EdgeID
	for e := 0; e < p.PG().NumEdges(); e++ {
		id := graph.EdgeID(e)
		if p.RelOf(id) == RelGen && p.PG().Src(id) == m {
			gEdge = id
		}
		if p.RelOf(id) == RelUsed && p.PG().Dst(id) == d {
			uEdge = id
		}
	}
	pt := Path{Start: m, Steps: []Step{{Edge: gEdge}, {Edge: uEdge}}}
	if got := p.TauPath(pt); got != "E G A U E" {
		t.Fatalf("TauPath = %q", got)
	}
	if got := p.TauSegment(pt); got != "G A U" {
		t.Fatalf("TauSegment = %q", got)
	}
	if pt.End(p) != d {
		t.Fatal("End wrong")
	}
	verts := pt.Vertices(p)
	if len(verts) != 3 || verts[0] != m || verts[1] != a1 || verts[2] != d {
		t.Fatalf("Vertices = %v", verts)
	}
	// Inverse path: d U^-1 a1 G^-1 m.
	inv := pt.Inverse(p)
	if got := p.TauPath(inv); got != "E U-1 A G-1 E" {
		t.Fatalf("inverse TauPath = %q", got)
	}
	if inv.End(p) != m {
		t.Fatal("inverse End wrong")
	}
}

func TestAncestryPathEnumeration(t *testing.T) {
	p, vs := buildChain(t)
	m := vs[3]
	count := 0
	p.AncestryPaths(m, 5, func(pt Path) bool {
		count++
		return true
	})
	// m -G-> a1 and m -G-> a1 -U-> d.
	if count != 2 {
		t.Fatalf("want 2 ancestry paths from model, got %d", count)
	}
	// Early stop.
	count = 0
	p.AncestryPaths(m, 5, func(Path) bool { count++; return false })
	if count != 1 {
		t.Fatalf("early stop broken: %d", count)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p, _ := buildChain(t)
	p.PG().SetVertexProp(1, "acc", graph.Float(0.75))
	var buf bytes.Buffer
	if err := p.ExportJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"wasGeneratedBy", "wasDerivedFrom", "entity", "agent"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("JSON missing %q: %s", frag, out)
		}
	}
	p2, err := ImportJSON(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if p2.NumVertices() != p.NumVertices() || p2.NumEdges() != p.NumEdges() {
		t.Fatal("roundtrip size mismatch")
	}
	if err := p2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestImportJSONRejectsDangling(t *testing.T) {
	doc := `{"entity":{"e1":{}},"used":{"r1":{"from":"missing","to":"e1"}}}`
	if _, err := ImportJSON(strings.NewReader(doc)); err == nil {
		t.Fatal("dangling reference accepted")
	}
}

func TestRecorderVersioning(t *testing.T) {
	rc := NewRecorder()
	d1 := rc.Import("alice", "data.csv", "http://x")
	a, outs := rc.Run("alice", "clean", []graph.VertexID{d1}, []string{"data.csv"})
	if len(outs) != 1 {
		t.Fatal("Run outputs wrong")
	}
	d2 := outs[0]
	if rc.P.Name(d1) != "data.csv-v1" || rc.P.Name(d2) != "data.csv-v2" {
		t.Fatalf("version names: %q %q", rc.P.Name(d1), rc.P.Name(d2))
	}
	if latest, ok := rc.Latest("data.csv"); !ok || latest != d2 {
		t.Fatal("Latest wrong")
	}
	if v1, ok := rc.Version("data.csv", 1); !ok || v1 != d1 {
		t.Fatal("Version wrong")
	}
	if _, ok := rc.Version("data.csv", 3); ok {
		t.Fatal("phantom version")
	}
	if got := rc.Versions("data.csv"); len(got) != 2 {
		t.Fatal("Versions wrong")
	}
	// D edge between versions.
	var found bool
	for e := 0; e < rc.P.NumEdges(); e++ {
		id := graph.EdgeID(e)
		if rc.P.RelOf(id) == RelDeriv && rc.P.PG().Src(id) == d2 && rc.P.PG().Dst(id) == d1 {
			found = true
		}
	}
	if !found {
		t.Fatal("derivation edge missing between versions")
	}
	// Same agent is reused.
	if rc.Agent("alice") != rc.Agent("alice") {
		t.Fatal("agent duplicated")
	}
	if err := rc.P.Validate(); err != nil {
		t.Fatal(err)
	}
	_ = a
}
