package prov

import (
	"bytes"
	"testing"

	"repro/internal/graph"
)

// TestWrapRecorderResumesLifecycle: a recorder rebuilt over a deserialized
// graph must continue artifact versioning and agent identity where the
// original left off — the provd daemon ingests into loaded .pg graphs.
func TestWrapRecorderResumesLifecycle(t *testing.T) {
	rc := NewRecorder()
	alice := rc.Agent("alice")
	v1 := rc.Snapshot("model")
	v2 := rc.Snapshot("model")
	rc.Import("alice", "dataset", "http://example.com/d")

	var buf bytes.Buffer
	if err := rc.P.PG().Save(&buf); err != nil {
		t.Fatal(err)
	}
	pg, err := graph.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rc2 := WrapRecorder(Wrap(pg))

	if got, ok := rc2.Latest("model"); !ok || got != v2 {
		t.Fatalf("Latest(model) = %v, %v; want %v", got, ok, v2)
	}
	if got, ok := rc2.Version("model", 1); !ok || got != v1 {
		t.Fatalf("Version(model, 1) = %v, %v; want %v", got, ok, v1)
	}
	if got := rc2.Agent("alice"); got != alice {
		t.Fatalf("Agent(alice) = %v; want existing vertex %v", got, alice)
	}

	// A new snapshot continues the version sequence and derives from v2.
	v3 := rc2.Snapshot("model")
	if ver, _ := rc2.P.PG().VertexProp(v3, PropVersion).IntVal(); ver != 3 {
		t.Fatalf("new snapshot version = %d; want 3", ver)
	}
	var derived []graph.VertexID
	derived = rc2.P.PG().OutNeighbors(v3, rc2.P.RelLabel(RelDeriv), derived)
	if len(derived) != 1 || derived[0] != v2 {
		t.Fatalf("new snapshot derives from %v; want [%v]", derived, v2)
	}
	if err := rc2.P.Validate(); err != nil {
		t.Fatal(err)
	}
}
