package prov

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/graph"
)

// JSON interchange format, modeled on the W3C PROV-JSON serialization:
// top-level maps from vertex kind to {id: attributes}, and from relationship
// name to {relation-id: {from, to, attributes}}.

type jsonDoc struct {
	Entity   map[string]map[string]any `json:"entity,omitempty"`
	Activity map[string]map[string]any `json:"activity,omitempty"`
	Agent    map[string]map[string]any `json:"agent,omitempty"`

	Used       map[string]jsonRel `json:"used,omitempty"`
	Generated  map[string]jsonRel `json:"wasGeneratedBy,omitempty"`
	Associated map[string]jsonRel `json:"wasAssociatedWith,omitempty"`
	Attributed map[string]jsonRel `json:"wasAttributedTo,omitempty"`
	Derived    map[string]jsonRel `json:"wasDerivedFrom,omitempty"`
}

type jsonRel struct {
	From string `json:"from"`
	To   string `json:"to"`
}

func vertexKey(v graph.VertexID) string { return fmt.Sprintf("v%d", v) }

func propsToJSON(p graph.Props) map[string]any {
	out := make(map[string]any, len(p))
	for k, v := range p {
		if s, ok := v.Str(); ok {
			out[k] = s
		} else if i, ok := v.IntVal(); ok {
			out[k] = i
		} else if f, ok := v.FloatVal(); ok {
			out[k] = f
		} else if b, ok := v.BoolVal(); ok {
			out[k] = b
		}
	}
	return out
}

// ExportJSON writes the graph in the PROV-JSON-style interchange format.
func (p *Graph) ExportJSON(w io.Writer) error {
	doc := jsonDoc{
		Entity:     map[string]map[string]any{},
		Activity:   map[string]map[string]any{},
		Agent:      map[string]map[string]any{},
		Used:       map[string]jsonRel{},
		Generated:  map[string]jsonRel{},
		Associated: map[string]jsonRel{},
		Attributed: map[string]jsonRel{},
		Derived:    map[string]jsonRel{},
	}
	for v := 0; v < p.g.NumVertices(); v++ {
		id := graph.VertexID(v)
		props := propsToJSON(p.g.VertexProps(id))
		switch p.KindOf(id) {
		case KindEntity:
			doc.Entity[vertexKey(id)] = props
		case KindActivity:
			doc.Activity[vertexKey(id)] = props
		case KindAgent:
			doc.Agent[vertexKey(id)] = props
		}
	}
	for e := 0; e < p.g.NumEdges(); e++ {
		id := graph.EdgeID(e)
		rel := jsonRel{From: vertexKey(p.g.Src(id)), To: vertexKey(p.g.Dst(id))}
		key := fmt.Sprintf("r%d", e)
		switch p.RelOf(id) {
		case RelUsed:
			doc.Used[key] = rel
		case RelGen:
			doc.Generated[key] = rel
		case RelAssoc:
			doc.Associated[key] = rel
		case RelAttr:
			doc.Attributed[key] = rel
		case RelDeriv:
			doc.Derived[key] = rel
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ImportJSON reads a PROV-JSON-style document into a fresh graph. Vertices
// are created in sorted-key order per kind (entities, then activities, then
// agents) so the import is deterministic; original keys are preserved in the
// "provjson.id" property.
func ImportJSON(r io.Reader) (*Graph, error) {
	var doc jsonDoc
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("prov: import json: %w", err)
	}
	p := New()
	ids := make(map[string]graph.VertexID)

	addAll := func(m map[string]map[string]any, mk func(string) graph.VertexID) {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			v := mk("")
			ids[k] = v
			p.g.SetVertexProp(v, "provjson.id", graph.String(k))
			attrs := m[k]
			akeys := make([]string, 0, len(attrs))
			for a := range attrs {
				akeys = append(akeys, a)
			}
			sort.Strings(akeys)
			for _, a := range akeys {
				switch val := attrs[a].(type) {
				case string:
					p.g.SetVertexProp(v, a, graph.String(val))
				case float64:
					p.g.SetVertexProp(v, a, graph.Float(val))
				case bool:
					p.g.SetVertexProp(v, a, graph.Bool(val))
				}
			}
		}
	}
	addAll(doc.Entity, p.NewEntity)
	addAll(doc.Activity, p.NewActivity)
	addAll(doc.Agent, p.NewAgent)

	addRels := func(m map[string]jsonRel, rel Rel) error {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			jr := m[k]
			from, ok1 := ids[jr.From]
			to, ok2 := ids[jr.To]
			if !ok1 || !ok2 {
				return fmt.Errorf("prov: import json: relation %s references unknown vertex", k)
			}
			if _, err := p.AddRel(rel, from, to); err != nil {
				return err
			}
		}
		return nil
	}
	for _, step := range []struct {
		m   map[string]jsonRel
		rel Rel
	}{
		{doc.Used, RelUsed},
		{doc.Generated, RelGen},
		{doc.Associated, RelAssoc},
		{doc.Attributed, RelAttr},
		{doc.Derived, RelDeriv},
	} {
		if err := addRels(step.m, step.rel); err != nil {
			return nil, err
		}
	}
	return p, nil
}
