package bitmap

import (
	"math/bits"
	"sort"
)

// Roaring is a compressed bitmap in the style of RoaringBitmap (the paper's
// Cbm configuration): the 32-bit key space is chunked by the high 16 bits;
// each chunk is stored either as a sorted array of low 16-bit values (when
// sparse) or as a dense 2^16-bit bitmap (when it holds more than
// arrayMaxSize values). Random access is slower than the dense Bitset but
// memory usage tracks the data.
type Roaring struct {
	keys       []uint16
	containers []container
	card       int
}

const arrayMaxSize = 4096

type container interface {
	add(x uint16) (container, bool)
	contains(x uint16) bool
	cardinality() int
	iterate(base uint32, fn func(uint32) bool) bool
	bytes() int
}

// --- array container ---

type arrayContainer struct{ vals []uint16 }

func (a *arrayContainer) add(x uint16) (container, bool) {
	i := sort.Search(len(a.vals), func(i int) bool { return a.vals[i] >= x })
	if i < len(a.vals) && a.vals[i] == x {
		return a, false
	}
	if len(a.vals) >= arrayMaxSize {
		b := a.toBitmap()
		c, _ := b.add(x)
		return c, true
	}
	a.vals = append(a.vals, 0)
	copy(a.vals[i+1:], a.vals[i:])
	a.vals[i] = x
	return a, true
}

func (a *arrayContainer) contains(x uint16) bool {
	i := sort.Search(len(a.vals), func(i int) bool { return a.vals[i] >= x })
	return i < len(a.vals) && a.vals[i] == x
}

func (a *arrayContainer) cardinality() int { return len(a.vals) }

func (a *arrayContainer) iterate(base uint32, fn func(uint32) bool) bool {
	for _, v := range a.vals {
		if !fn(base | uint32(v)) {
			return false
		}
	}
	return true
}

func (a *arrayContainer) bytes() int { return 2 * cap(a.vals) }

func (a *arrayContainer) toBitmap() *bitmapContainer {
	b := &bitmapContainer{card: len(a.vals)}
	for _, v := range a.vals {
		b.words[v/wordBits] |= 1 << (v % wordBits)
	}
	return b
}

// --- bitmap container ---

type bitmapContainer struct {
	words [1024]uint64
	card  int
}

func (b *bitmapContainer) add(x uint16) (container, bool) {
	w, m := x/wordBits, uint64(1)<<(x%wordBits)
	if b.words[w]&m != 0 {
		return b, false
	}
	b.words[w] |= m
	b.card++
	return b, true
}

func (b *bitmapContainer) contains(x uint16) bool {
	return b.words[x/wordBits]&(1<<(x%wordBits)) != 0
}

func (b *bitmapContainer) cardinality() int { return b.card }

func (b *bitmapContainer) iterate(base uint32, fn func(uint32) bool) bool {
	for wi, w := range b.words {
		for w != 0 {
			t := bits.TrailingZeros64(w)
			if !fn(base | uint32(wi*wordBits+t)) {
				return false
			}
			w &= w - 1
		}
	}
	return true
}

func (b *bitmapContainer) bytes() int { return 8192 }

// --- roaring proper ---

// NewRoaring returns an empty compressed bitmap. The capacity hint is
// ignored (containers allocate on demand).
func NewRoaring() *Roaring { return &Roaring{} }

func (r *Roaring) findKey(key uint16) (int, bool) {
	i := sort.Search(len(r.keys), func(i int) bool { return r.keys[i] >= key })
	return i, i < len(r.keys) && r.keys[i] == key
}

// Add inserts x, reporting whether it was newly added.
func (r *Roaring) Add(x uint32) bool {
	key, low := uint16(x>>16), uint16(x)
	i, ok := r.findKey(key)
	if !ok {
		c := &arrayContainer{vals: []uint16{low}}
		r.keys = append(r.keys, 0)
		copy(r.keys[i+1:], r.keys[i:])
		r.keys[i] = key
		r.containers = append(r.containers, nil)
		copy(r.containers[i+1:], r.containers[i:])
		r.containers[i] = c
		r.card++
		return true
	}
	c, added := r.containers[i].add(low)
	r.containers[i] = c
	if added {
		r.card++
	}
	return added
}

// Contains reports membership of x.
func (r *Roaring) Contains(x uint32) bool {
	i, ok := r.findKey(uint16(x >> 16))
	return ok && r.containers[i].contains(uint16(x))
}

// Cardinality returns the number of elements.
func (r *Roaring) Cardinality() int { return r.card }

// Iterate visits elements in ascending order.
func (r *Roaring) Iterate(fn func(uint32) bool) {
	for i, key := range r.keys {
		if !r.containers[i].iterate(uint32(key)<<16, fn) {
			return
		}
	}
}

// DiffAddInto adds every element of r missing from other into other and
// appends the new elements to out.
func (r *Roaring) DiffAddInto(other Set, out []uint32) []uint32 {
	r.Iterate(func(x uint32) bool {
		if other.Add(x) {
			out = append(out, x)
		}
		return true
	})
	return out
}

// Bytes estimates memory usage.
func (r *Roaring) Bytes() int {
	total := 2*cap(r.keys) + 16*cap(r.containers)
	for _, c := range r.containers {
		total += c.bytes()
	}
	return total
}

// ToSlice returns the elements in ascending order.
func (r *Roaring) ToSlice() []uint32 {
	out := make([]uint32, 0, r.card)
	r.Iterate(func(x uint32) bool { out = append(out, x); return true })
	return out
}

var _ Set = (*Roaring)(nil)

// Factory constructs empty sets; the solvers take one so that the bitset /
// roaring choice (paper Fig. 5a's "w CBM" variants) is a runtime knob.
type Factory func(capacityHint int) Set

// BitsetFactory builds dense bitsets.
func BitsetFactory(n int) Set { return NewBitset(n) }

// RoaringFactory builds compressed bitmaps.
func RoaringFactory(int) Set { return NewRoaring() }
