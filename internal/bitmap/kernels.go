package bitmap

import "math/bits"

// Frontier kernels for the vectorized query engine. The serving path's
// frontier-at-a-time BFS unions whole CSR neighbor rows into a bitset,
// subtracts the visited set word-parallel, and — when the frontier turns
// dense — scans unvisited words directly. These kernels are the word-level
// primitives that make each of those steps one pass over packed uint64s
// instead of a per-element loop through interface dispatch.

// Key is any uint32-shaped identifier type. The row kernels are generic
// over it so CSR rows typed as []graph.VertexID land in a bitset directly,
// with no copy and no per-element conversion at the call site.
type Key interface{ ~uint32 }

// OrInto sets the bit of every element of row in b — the scatter step of a
// top-down frontier expansion (one CSR neighbor row ORed into the next
// frontier). The cardinality stays exact: only newly set bits count.
func OrInto[K Key](b *Bitset, row []K) {
	words := b.words
	for _, x := range row {
		w := int(uint32(x) >> 6)
		if w >= len(words) {
			b.grow(w)
			words = b.words
		}
		m := uint64(1) << (uint32(x) & (wordBits - 1))
		if words[w]&m == 0 {
			words[w] |= m
			b.card++
		}
	}
}

// AnyInto reports whether any element of row is present in b — the probe
// step of a bottom-up frontier expansion (does this unvisited vertex have a
// parent in the frontier?). It exits on the first hit.
func AnyInto[K Key](b *Bitset, row []K) bool {
	words := b.words
	for _, x := range row {
		w := int(uint32(x) >> 6)
		if w < len(words) && words[w]&(1<<(uint32(x)&(wordBits-1))) != 0 {
			return true
		}
	}
	return false
}

// AndNotWith removes every element of o from b (b &^= o), word-parallel —
// the visited-set subtraction that dedups a freshly scattered frontier in
// one pass.
func (b *Bitset) AndNotWith(o *Bitset) {
	n := len(b.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	card := 0
	for i := 0; i < n; i++ {
		b.words[i] &^= o.words[i]
		card += bits.OnesCount64(b.words[i])
	}
	for i := n; i < len(b.words); i++ {
		card += bits.OnesCount64(b.words[i])
	}
	b.card = card
}

// WordCount returns the number of 64-bit words backing b.
func (b *Bitset) WordCount() int { return len(b.words) }

// Word returns the i-th 64-bit word (bits i*64 .. i*64+63). Word-level
// access is what lets a bottom-up step scan the *complement* of the visited
// set — iterate words, invert, walk set bits — without allocating a closure
// or materializing the complement; Iterate cannot express that.
func (b *Bitset) Word(i int) uint64 { return b.words[i] }

// Capacity returns the number of bits b currently addresses.
func (b *Bitset) Capacity() int { return len(b.words) * wordBits }

// IterateFrom visits the elements >= from in ascending order until fn
// returns false. Unlike resuming via Iterate — which restarts at bit 0 and
// re-visits (and re-allocates a capture to skip past) everything already
// seen — IterateFrom masks off the low bits of the first word and walks
// only the tail, so a resumed scan costs only the remaining words.
func (b *Bitset) IterateFrom(from uint32, fn func(uint32) bool) {
	wi := int(from / wordBits)
	if wi >= len(b.words) {
		return
	}
	// Mask off bits below `from` in the first word; whole words after it.
	w := b.words[wi] &^ (1<<(from%wordBits) - 1)
	for {
		for w != 0 {
			t := bits.TrailingZeros64(w)
			if !fn(uint32(wi*wordBits + t)) {
				return
			}
			w &= w - 1
		}
		wi++
		if wi >= len(b.words) {
			return
		}
		w = b.words[wi]
	}
}

// Density returns the fill ratio of b over its current capacity. The
// traversal engine uses it to pick frontier representation and direction:
// sparse frontiers iterate as id lists (array-container regime), dense
// frontiers scan words and may flip to bottom-up expansion.
func (b *Bitset) Density() float64 {
	if len(b.words) == 0 {
		return 0
	}
	return float64(b.card) / float64(len(b.words)*wordBits)
}

// SparseCutoff is the density below which a set is cheaper to carry as a
// sorted id list (or Roaring array containers) than to re-scan as words:
// under one set bit per word, a word scan touches 64 bits per element.
const SparseCutoff = 1.0 / wordBits

// ToRoaring converts to a compressed bitmap. Worth it only below
// SparseCutoff-ish densities; dense chunks convert straight to bitmap
// containers without per-element re-search.
func (b *Bitset) ToRoaring() *Roaring {
	r := NewRoaring()
	// One Roaring container spans 1024 words. Build each chunk wholesale.
	const chunkWords = 1 << 16 / wordBits
	for base := 0; base < len(b.words); base += chunkWords {
		end := base + chunkWords
		if end > len(b.words) {
			end = len(b.words)
		}
		card := 0
		for _, w := range b.words[base:end] {
			card += bits.OnesCount64(w)
		}
		if card == 0 {
			continue
		}
		key := uint16(base / chunkWords)
		if card > arrayMaxSize {
			bc := &bitmapContainer{card: card}
			copy(bc.words[:], b.words[base:end])
			r.keys = append(r.keys, key)
			r.containers = append(r.containers, bc)
		} else {
			ac := &arrayContainer{vals: make([]uint16, 0, card)}
			for wi, w := range b.words[base:end] {
				for w != 0 {
					t := bits.TrailingZeros64(w)
					ac.vals = append(ac.vals, uint16(wi*wordBits+t))
					w &= w - 1
				}
			}
			r.keys = append(r.keys, key)
			r.containers = append(r.containers, ac)
		}
		r.card += card
	}
	return r
}

// ToBitset converts to a dense bitset with capacity hint n (in bits).
func (r *Roaring) ToBitset(n int) *Bitset {
	b := NewBitset(n)
	r.Iterate(func(x uint32) bool {
		b.Add(x)
		return true
	})
	return b
}
