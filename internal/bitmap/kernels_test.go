package bitmap

import (
	"math/rand"
	"testing"
)

type vid uint32 // stand-in for graph.VertexID: the kernels must take ~uint32

func TestOrInto(t *testing.T) {
	b := NewBitset(128)
	OrInto(b, []vid{0, 63, 64, 127, 63, 0})
	if b.Cardinality() != 4 {
		t.Fatalf("cardinality = %d, want 4", b.Cardinality())
	}
	for _, x := range []uint32{0, 63, 64, 127} {
		if !b.Contains(x) {
			t.Errorf("missing %d", x)
		}
	}
	// Rows may reference bits past the current capacity (growing graphs).
	OrInto(b, []vid{1000})
	if !b.Contains(1000) || b.Cardinality() != 5 {
		t.Fatalf("grow: Contains(1000)=%v card=%d", b.Contains(1000), b.Cardinality())
	}
}

func TestAnyInto(t *testing.T) {
	b := NewBitset(128)
	b.Add(64)
	if AnyInto(b, []vid{0, 63, 127}) {
		t.Fatal("AnyInto: false positive")
	}
	if !AnyInto(b, []vid{0, 64}) {
		t.Fatal("AnyInto: missed 64")
	}
	// Out-of-capacity probes must not panic or match.
	if AnyInto(b, []vid{100000}) {
		t.Fatal("AnyInto: matched past capacity")
	}
}

func TestAndNotWith(t *testing.T) {
	b := NewBitset(256)
	o := NewBitset(64) // shorter than b: tail words must survive
	for _, x := range []uint32{0, 63, 64, 127, 128, 200} {
		b.Add(x)
	}
	o.Add(0)
	o.Add(63)
	b.AndNotWith(o)
	want := []uint32{64, 127, 128, 200}
	if b.Cardinality() != len(want) {
		t.Fatalf("cardinality = %d, want %d", b.Cardinality(), len(want))
	}
	for _, x := range want {
		if !b.Contains(x) {
			t.Errorf("missing %d", x)
		}
	}
	if b.Contains(0) || b.Contains(63) {
		t.Error("AndNotWith left subtracted bits")
	}
}

// TestIterateFromBoundaries pins the word-edge behavior: starting exactly
// on, one before and one past the 64-bit word boundaries.
func TestIterateFromBoundaries(t *testing.T) {
	b := NewBitset(256)
	elems := []uint32{0, 62, 63, 64, 65, 126, 127, 128, 200}
	for _, x := range elems {
		b.Add(x)
	}
	cases := []struct {
		from uint32
		want []uint32
	}{
		{0, elems},
		{63, []uint32{63, 64, 65, 126, 127, 128, 200}},
		{64, []uint32{64, 65, 126, 127, 128, 200}},
		{65, []uint32{65, 126, 127, 128, 200}},
		{127, []uint32{127, 128, 200}},
		{128, []uint32{128, 200}},
		{201, nil},
		{100000, nil}, // past capacity: no panic, no elements
	}
	for _, tc := range cases {
		var got []uint32
		b.IterateFrom(tc.from, func(x uint32) bool { got = append(got, x); return true })
		if len(got) != len(tc.want) {
			t.Fatalf("IterateFrom(%d) = %v, want %v", tc.from, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("IterateFrom(%d) = %v, want %v", tc.from, got, tc.want)
			}
		}
	}
	// Early exit stops immediately.
	calls := 0
	b.IterateFrom(63, func(x uint32) bool { calls++; return false })
	if calls != 1 {
		t.Fatalf("early exit made %d calls, want 1", calls)
	}
}

func TestWordAccess(t *testing.T) {
	b := NewBitset(130)
	b.Add(63)
	b.Add(64)
	b.Add(127)
	b.Add(129)
	if b.WordCount() != 3 {
		t.Fatalf("WordCount = %d, want 3", b.WordCount())
	}
	if b.Capacity() != 192 {
		t.Fatalf("Capacity = %d, want 192", b.Capacity())
	}
	if b.Word(0) != 1<<63 {
		t.Errorf("Word(0) = %x", b.Word(0))
	}
	if b.Word(1) != 1|1<<63 {
		t.Errorf("Word(1) = %x", b.Word(1))
	}
	if b.Word(2) != 1<<1 {
		t.Errorf("Word(2) = %x", b.Word(2))
	}
}

func TestDensity(t *testing.T) {
	b := NewBitset(64)
	if d := b.Density(); d != 0 {
		t.Fatalf("empty density = %v", d)
	}
	for x := uint32(0); x < 32; x++ {
		b.Add(x)
	}
	if d := b.Density(); d != 0.5 {
		t.Fatalf("density = %v, want 0.5", d)
	}
	var empty Bitset
	if d := empty.Density(); d != 0 {
		t.Fatalf("zero-value density = %v", d)
	}
}

// TestRoaringConversions round-trips sparse and dense sets through both
// representations, exercising both container kinds in ToRoaring.
func TestRoaringConversions(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct {
		name string
		n    int
		gen  func() uint32
	}{
		{"sparse", 300, func() uint32 { return rng.Uint32() % 1_000_000 }},
		{"dense-chunk", 20_000, func() uint32 { return rng.Uint32() % 65_536 }},
		{"two-chunks", 9_000, func() uint32 { return rng.Uint32() % 200_000 }},
	} {
		b := NewBitset(1_000_000)
		for i := 0; i < tc.n; i++ {
			b.Add(tc.gen())
		}
		r := b.ToRoaring()
		if r.Cardinality() != b.Cardinality() {
			t.Fatalf("%s: roaring card %d != bitset card %d", tc.name, r.Cardinality(), b.Cardinality())
		}
		back := r.ToBitset(1_000_000)
		if back.Cardinality() != b.Cardinality() {
			t.Fatalf("%s: round-trip card %d != %d", tc.name, back.Cardinality(), b.Cardinality())
		}
		b.Iterate(func(x uint32) bool {
			if !r.Contains(x) || !back.Contains(x) {
				t.Fatalf("%s: %d lost in conversion", tc.name, x)
			}
			return true
		})
	}
}
