package bitmap

import (
	"math/rand"
	"testing"
)

// Micro-benchmarks for the set kernels the query engine leans on. The
// end-to-end panels ("csr", "vec") measure whole traversals; these isolate
// the word-level primitives so a kernel regression shows up in
// `go test -bench` without re-running the serving benches.

const benchBits = 1 << 20

func randomBitset(rng *rand.Rand, n, card int) *Bitset {
	b := NewBitset(n)
	for i := 0; i < card; i++ {
		b.Add(rng.Uint32() % uint32(n))
	}
	return b
}

func BenchmarkDiffAddIntoBitset(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	src := randomBitset(rng, benchBits, benchBits/8)
	dst := randomBitset(rng, benchBits, benchBits/8)
	out := make([]uint32, 0, benchBits/8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Clone outside the measured kernel would skew less, but the copy is
		// word-parallel too and identical per iteration.
		d := dst.Clone()
		out = src.DiffAddInto(d, out[:0])
	}
	_ = out
}

func BenchmarkDiffAddIntoRoaring(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	src := randomBitset(rng, benchBits, benchBits/64).ToRoaring()
	dst := randomBitset(rng, benchBits, benchBits/64)
	out := make([]uint32, 0, benchBits/64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := dst.Clone()
		out = src.DiffAddInto(d, out[:0])
	}
	_ = out
}

func BenchmarkUnionWith(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := randomBitset(rng, benchBits, benchBits/8)
	y := randomBitset(rng, benchBits, benchBits/8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := x.Clone()
		c.UnionWith(y)
	}
}

func BenchmarkAndNotWith(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := randomBitset(rng, benchBits, benchBits/8)
	y := randomBitset(rng, benchBits, benchBits/8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := x.Clone()
		c.AndNotWith(y)
	}
}

// BenchmarkOrIntoRows scatters CSR-row-shaped slices (short, clustered)
// into a bitset — the top-down frontier step.
func BenchmarkOrIntoRows(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	rows := make([][]uint32, 4096)
	for i := range rows {
		row := make([]uint32, 2+rng.Intn(6))
		base := rng.Uint32() % (benchBits - 64)
		for j := range row {
			row[j] = base + rng.Uint32()%64
		}
		rows[i] = row
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst := NewBitset(benchBits)
		for _, row := range rows {
			OrInto(dst, row)
		}
	}
}

// BenchmarkAnyIntoRows probes rows against a frontier — the bottom-up step.
func BenchmarkAnyIntoRows(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	frontier := randomBitset(rng, benchBits, benchBits/4)
	rows := make([][]uint32, 4096)
	for i := range rows {
		row := make([]uint32, 2+rng.Intn(6))
		for j := range row {
			row[j] = rng.Uint32() % benchBits
		}
		rows[i] = row
	}
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		for _, row := range rows {
			if AnyInto(frontier, row) {
				hits++
			}
		}
	}
	_ = hits
}

func BenchmarkIterateFrom(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	x := randomBitset(rng, benchBits, benchBits/16)
	b.ResetTimer()
	sum := uint32(0)
	for i := 0; i < b.N; i++ {
		x.IterateFrom(benchBits/2, func(v uint32) bool { sum += v; return true })
	}
	_ = sum
}

func BenchmarkToRoaring(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	x := randomBitset(rng, benchBits, benchBits/64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.ToRoaring()
	}
}
