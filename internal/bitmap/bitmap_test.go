package bitmap

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// model is a reference set implementation.
type model map[uint32]bool

func (m model) slice() []uint32 {
	out := make([]uint32, 0, len(m))
	for x := range m {
		out = append(out, x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// checkAgainstModel drives a Set through random operations and compares
// every observable against the model.
func checkAgainstModel(t *testing.T, name string, mk func() Set, ops []uint32) {
	t.Helper()
	s := mk()
	m := model{}
	for i, x := range ops {
		x %= 1 << 18 // keep roaring containers interesting but bounded
		switch i % 3 {
		case 0, 1:
			added := s.Add(x)
			if added == m[x] {
				t.Fatalf("%s: Add(%d) returned %v, model had %v", name, x, added, m[x])
			}
			m[x] = true
		case 2:
			if s.Contains(x) != m[x] {
				t.Fatalf("%s: Contains(%d) = %v, want %v", name, x, s.Contains(x), m[x])
			}
		}
	}
	if s.Cardinality() != len(m) {
		t.Fatalf("%s: cardinality %d, want %d", name, s.Cardinality(), len(m))
	}
	var got []uint32
	s.Iterate(func(x uint32) bool { got = append(got, x); return true })
	want := m.slice()
	if len(got) != len(want) {
		t.Fatalf("%s: iterate returned %d elements, want %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: iterate[%d] = %d, want %d (ascending order required)", name, i, got[i], want[i])
		}
	}
}

func TestSetsAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(3000)
		ops := make([]uint32, n)
		for i := range ops {
			ops[i] = rng.Uint32()
		}
		checkAgainstModel(t, "bitset", func() Set { return NewBitset(0) }, ops)
		checkAgainstModel(t, "roaring", func() Set { return NewRoaring() }, ops)
	}
}

// TestDiffAddIntoQuick: DiffAddInto(other) must equal the set difference,
// and afterwards other must equal the union — for every combination of
// implementations.
func TestDiffAddIntoQuick(t *testing.T) {
	mks := map[string]func() Set{
		"bitset":  func() Set { return NewBitset(0) },
		"roaring": func() Set { return NewRoaring() },
	}
	for an, mkA := range mks {
		for bn, mkB := range mks {
			f := func(as, bs []uint32) bool {
				a, b := mkA(), mkB()
				ma, mb := model{}, model{}
				for _, x := range as {
					x %= 1 << 16
					a.Add(x)
					ma[x] = true
				}
				for _, x := range bs {
					x %= 1 << 16
					b.Add(x)
					mb[x] = true
				}
				out := a.DiffAddInto(b, nil)
				// out = ma \ mb
				wantDiff := model{}
				for x := range ma {
					if !mb[x] {
						wantDiff[x] = true
					}
				}
				if len(out) != len(wantDiff) {
					return false
				}
				for _, x := range out {
					if !wantDiff[x] {
						return false
					}
				}
				// b = ma ∪ mb
				for x := range ma {
					if !b.Contains(x) {
						return false
					}
				}
				return b.Cardinality() == len(ma)+len(mb)-(len(ma)-len(wantDiff))
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
				t.Errorf("%s->%s: %v", an, bn, err)
			}
		}
	}
}

func TestBitsetSetOps(t *testing.T) {
	f := func(as, bs []uint32) bool {
		a, b := NewBitset(0), NewBitset(0)
		ma, mb := model{}, model{}
		for _, x := range as {
			x %= 4096
			a.Add(x)
			ma[x] = true
		}
		for _, x := range bs {
			x %= 4096
			b.Add(x)
			mb[x] = true
		}
		u := a.Clone()
		u.UnionWith(b)
		i := a.Clone()
		i.IntersectWith(b)
		wantU, wantI := 0, 0
		inter := false
		for x := range ma {
			if mb[x] {
				wantI++
				inter = true
			}
		}
		wantU = len(ma) + len(mb) - wantI
		if u.Cardinality() != wantU || i.Cardinality() != wantI {
			return false
		}
		if a.Intersects(b) != inter {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBitsetRemove(t *testing.T) {
	b := NewBitset(128)
	for i := uint32(0); i < 100; i += 2 {
		b.Add(i)
	}
	if !b.Remove(4) || b.Remove(4) || b.Remove(5) {
		t.Fatal("Remove semantics broken")
	}
	if b.Contains(4) || !b.Contains(6) {
		t.Fatal("Remove removed the wrong bit")
	}
	if b.Cardinality() != 49 {
		t.Fatalf("cardinality %d after remove", b.Cardinality())
	}
}

func TestRoaringContainerPromotion(t *testing.T) {
	r := NewRoaring()
	// Fill past the array-container threshold within one chunk.
	for i := uint32(0); i < arrayMaxSize+100; i++ {
		if !r.Add(i * 3 % 65536) {
			// duplicates possible with mod; re-add is fine
			continue
		}
	}
	if r.Cardinality() == 0 {
		t.Fatal("empty after fill")
	}
	// All inserted values must still be present.
	for i := uint32(0); i < arrayMaxSize+100; i++ {
		if !r.Contains(i * 3 % 65536) {
			t.Fatalf("lost %d after promotion", i*3%65536)
		}
	}
	// Values in distinct high-bit chunks.
	r2 := NewRoaring()
	vals := []uint32{0, 65535, 65536, 1 << 20, 1<<31 + 5}
	for _, v := range vals {
		r2.Add(v)
	}
	for _, v := range vals {
		if !r2.Contains(v) {
			t.Fatalf("chunked value %d missing", v)
		}
	}
	if r2.Contains(1) || r2.Contains(1<<20+1) {
		t.Fatal("phantom membership")
	}
}

func TestIterateEarlyStop(t *testing.T) {
	for _, s := range []Set{NewBitset(0), NewRoaring()} {
		for i := uint32(0); i < 100; i++ {
			s.Add(i)
		}
		count := 0
		s.Iterate(func(uint32) bool { count++; return count < 10 })
		if count != 10 {
			t.Errorf("early stop visited %d", count)
		}
	}
}

func TestBytesReporting(t *testing.T) {
	b := NewBitset(1 << 16)
	r := NewRoaring()
	for i := uint32(0); i < 100; i++ {
		b.Add(i * 600)
		r.Add(i * 600)
	}
	if b.Bytes() == 0 || r.Bytes() == 0 {
		t.Fatal("zero byte estimates")
	}
	// Sparse data: roaring should be much smaller than a dense bitset
	// spanning the same range.
	if r.Bytes() >= b.Bytes() {
		t.Errorf("roaring (%dB) not smaller than bitset (%dB) on sparse data", r.Bytes(), b.Bytes())
	}
}

func BenchmarkBitsetDiffAddInto(b *testing.B) {
	a, o := NewBitset(1<<16), NewBitset(1<<16)
	for i := uint32(0); i < 1<<16; i += 2 {
		a.Add(i)
	}
	for i := uint32(0); i < 1<<16; i += 3 {
		o.Add(i)
	}
	buf := make([]uint32, 0, 1<<15)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		oc := o.Clone()
		buf = a.DiffAddInto(oc, buf[:0])
	}
}

func BenchmarkRoaringAdd(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := NewRoaring()
		for j := uint32(0); j < 4096; j++ {
			r.Add(j * 17)
		}
	}
}
