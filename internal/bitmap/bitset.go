// Package bitmap provides the set data structures used by the CFL
// reachability solvers: a dense Bitset (the "fast set" of CflrB, with
// word-parallel difference/union — the method of four Russians flavor the
// paper cites) and a Roaring-style compressed bitmap (the paper's Cbm
// variant), both behind a common Set interface.
package bitmap

import "math/bits"

const wordBits = 64

// Set is the interface the reachability solvers program against.
type Set interface {
	// Add inserts x; it reports whether x was newly added.
	Add(x uint32) bool
	// Contains reports membership of x.
	Contains(x uint32) bool
	// Cardinality returns the number of elements.
	Cardinality() int
	// Iterate calls fn for each element in ascending order until fn
	// returns false.
	Iterate(fn func(uint32) bool)
	// DiffAddInto visits every element of the receiver that is absent from
	// other, adds it to other, and appends it to out; it returns out. This
	// is the fused diff+union step CflrB performs per worklist pop.
	DiffAddInto(other Set, out []uint32) []uint32
	// Bytes estimates the memory footprint in bytes.
	Bytes() int
}

// Bitset is a dense, uncompressed bitset over uint32 keys.
type Bitset struct {
	words []uint64
	card  int
}

// NewBitset returns an empty dense bitset with capacity hint n (in bits).
func NewBitset(n int) *Bitset {
	return &Bitset{words: make([]uint64, (n+wordBits-1)/wordBits)}
}

func (b *Bitset) grow(word int) {
	if word < len(b.words) {
		return
	}
	nw := make([]uint64, word+1+word/2)
	copy(nw, b.words)
	b.words = nw
}

// Add inserts x, reporting whether it was newly added.
func (b *Bitset) Add(x uint32) bool {
	w, m := int(x/wordBits), uint64(1)<<(x%wordBits)
	b.grow(w)
	if b.words[w]&m != 0 {
		return false
	}
	b.words[w] |= m
	b.card++
	return true
}

// Remove deletes x, reporting whether it was present.
func (b *Bitset) Remove(x uint32) bool {
	w, m := int(x/wordBits), uint64(1)<<(x%wordBits)
	if w >= len(b.words) || b.words[w]&m == 0 {
		return false
	}
	b.words[w] &^= m
	b.card--
	return true
}

// Contains reports membership.
func (b *Bitset) Contains(x uint32) bool {
	w := int(x / wordBits)
	return w < len(b.words) && b.words[w]&(1<<(x%wordBits)) != 0
}

// Cardinality returns the number of set bits.
func (b *Bitset) Cardinality() int { return b.card }

// Iterate visits elements in ascending order.
func (b *Bitset) Iterate(fn func(uint32) bool) {
	for wi, w := range b.words {
		for w != 0 {
			t := bits.TrailingZeros64(w)
			if !fn(uint32(wi*wordBits + t)) {
				return
			}
			w &= w - 1
		}
	}
}

// DiffAddInto adds every element of b missing from other into other and
// appends the new elements to out. When other is also a *Bitset the whole
// operation runs word-parallel.
func (b *Bitset) DiffAddInto(other Set, out []uint32) []uint32 {
	if ob, ok := other.(*Bitset); ok {
		ob.grow(len(b.words) - 1)
		for wi, w := range b.words {
			diff := w &^ ob.words[wi]
			if diff == 0 {
				continue
			}
			ob.words[wi] |= diff
			ob.card += bits.OnesCount64(diff)
			for diff != 0 {
				t := bits.TrailingZeros64(diff)
				out = append(out, uint32(wi*wordBits+t))
				diff &= diff - 1
			}
		}
		return out
	}
	b.Iterate(func(x uint32) bool {
		if other.Add(x) {
			out = append(out, x)
		}
		return true
	})
	return out
}

// UnionWith ors o into b.
func (b *Bitset) UnionWith(o *Bitset) {
	b.grow(len(o.words) - 1)
	b.card = 0
	for wi := range b.words {
		if wi < len(o.words) {
			b.words[wi] |= o.words[wi]
		}
		b.card += bits.OnesCount64(b.words[wi])
	}
}

// IntersectWith ands o into b.
func (b *Bitset) IntersectWith(o *Bitset) {
	b.card = 0
	for wi := range b.words {
		if wi < len(o.words) {
			b.words[wi] &= o.words[wi]
		} else {
			b.words[wi] = 0
		}
		b.card += bits.OnesCount64(b.words[wi])
	}
}

// Intersects reports whether b and o share any element.
func (b *Bitset) Intersects(o *Bitset) bool {
	n := len(b.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		if b.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// Clone returns a deep copy.
func (b *Bitset) Clone() *Bitset {
	return &Bitset{words: append([]uint64(nil), b.words...), card: b.card}
}

// Clear removes all elements, retaining capacity.
func (b *Bitset) Clear() {
	for i := range b.words {
		b.words[i] = 0
	}
	b.card = 0
}

// ToSlice returns the elements in ascending order.
func (b *Bitset) ToSlice() []uint32 {
	out := make([]uint32, 0, b.card)
	b.Iterate(func(x uint32) bool { out = append(out, x); return true })
	return out
}

// Bytes estimates memory usage.
func (b *Bitset) Bytes() int { return len(b.words) * 8 }

var _ Set = (*Bitset)(nil)
