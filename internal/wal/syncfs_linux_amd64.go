//go:build linux && amd64

package wal

// sysSyncfs is the syncfs(2) syscall number on linux/amd64. The frozen
// syscall package predates syncfs, so the number is pinned here.
const (
	sysSyncfs       = 306
	syncfsSupported = true
)
