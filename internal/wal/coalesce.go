// Device-level fsync coalescing across stores.
//
// Each store's group committer amortizes fsync across its own writers, but
// with N stores on one device the N committers still issue N competing
// fsyncs per window and the group-commit win collapses (the shard bench
// measured 1.78x at 1 store -> 0.97x at 4). The Coalescer restores the win
// by making the flush itself shared: committers append their group
// unsynced, then park in SyncWait; the coalescer's flusher goroutine
// drains every parked request into one sync window and retires it with a
// single device-level barrier — syncfs(2) on the data-dir fd where the
// kernel supports it, deduplicated parallel per-log fsyncs otherwise.
// Under saturation the flusher holds each window open for a short gather
// interval so every overlapping store lands in the same barrier; an idle
// period's first window flushes immediately, so a lone commit pays no
// gather latency. Durability-before-visibility is untouched: SyncWait
// returns only after the window's barrier covers the caller's bytes, and
// only then does the store publish the epochs.
package wal

import (
	"errors"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// CoalescerMode selects how a sync window is retired.
type CoalescerMode int

const (
	// CoalesceAuto probes syncfs(2) at construction and falls back to
	// per-file fsync when the kernel refuses it.
	CoalesceAuto CoalescerMode = iota
	// CoalesceFsync forces the per-file fallback (one fsync per distinct
	// log in the window, issued in parallel). Used by tests and as the
	// degraded mode on kernels without syncfs.
	CoalesceFsync
)

// syncReq is one committer parked in SyncWait.
type syncReq struct {
	m    *Manager
	prep func() // runs immediately before the window's barrier
	errc chan error
}

// Coalescer merges the fsync phase of many stores' group commits into
// shared device-level sync windows. One Coalescer serves one data
// directory tree (all stores on the same filesystem).
type Coalescer struct {
	dirFD  *os.File
	syncfs bool // retire windows with syncfs(dirFD)

	mu     sync.Mutex
	closed bool

	reqCh       chan *syncReq
	stopCh      chan struct{}
	flusherDone chan struct{}

	windows    atomic.Uint64
	requests   atomic.Uint64
	lastWindow atomic.Uint64
	maxWindow  atomic.Uint64
	syncLastNs atomic.Int64
	syncMaxNs  atomic.Int64
	syncTotNs  atomic.Int64
}

// CoalescerStats is the /metrics snapshot of one coalescer.
type CoalescerStats struct {
	Enabled bool `json:"enabled"`
	// Mode is "syncfs" (one device barrier per window) or "fsync"
	// (deduplicated parallel per-log fsyncs per window).
	Mode           string `json:"mode"`
	Windows        uint64 `json:"windows"`
	Requests       uint64 `json:"requests"`
	LastWindowSize uint64 `json:"last_window_size"`
	MaxWindowSize  uint64 `json:"max_window_size"`
	SyncLastNanos  int64  `json:"sync_last_ns"`
	SyncMaxNanos   int64  `json:"sync_max_ns"`
	SyncTotalNanos int64  `json:"sync_total_ns"`
}

// NewCoalescer opens a coalescer over the data directory dir. Under
// CoalesceAuto it probes syncfs(2) once and degrades to per-file fsync if
// the kernel (or sandbox) refuses the syscall.
func NewCoalescer(dir string, mode CoalescerMode) (*Coalescer, error) {
	fd, err := os.Open(dir)
	if err != nil {
		return nil, err
	}
	c := &Coalescer{
		dirFD:       fd,
		reqCh:       make(chan *syncReq, 1024),
		stopCh:      make(chan struct{}),
		flusherDone: make(chan struct{}),
	}
	if mode == CoalesceAuto && syncfsSupported {
		c.syncfs = rawSyncfs(fd.Fd()) == nil
	}
	go c.flusher()
	return c, nil
}

// Mode reports how windows are retired: "syncfs" or "fsync".
func (c *Coalescer) Mode() string {
	if c.syncfs {
		return "syncfs"
	}
	return "fsync"
}

// SyncWait makes every byte m has appended so far durable and returns. The
// caller must have finished its writes before calling (the happens-before
// the window barrier needs). Concurrent callers share windows: everyone
// parked when the flusher retires a window comes back with that barrier's
// result. After Close, SyncWait degrades to a direct per-manager fsync so
// shutdown ordering can never strand a committer.
func (c *Coalescer) SyncWait(m *Manager) error {
	return c.SyncWaitPrep(m, nil)
}

// SyncWaitPrep is SyncWait with a hook: prep (when non-nil) runs on the
// flusher goroutine immediately before the window's barrier, after every
// append the barrier will cover has happened. A caller appending
// concurrently from another goroutine can use it to observe exactly which
// of its writes this barrier makes durable (the store's sync pipeline
// samples its append sequence here to retire piggybacked groups).
func (c *Coalescer) SyncWaitPrep(m *Manager, prep func()) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		if prep != nil {
			prep()
		}
		return m.Sync()
	}
	r := &syncReq{m: m, prep: prep, errc: make(chan error, 1)}
	c.requests.Add(1)
	c.reqCh <- r
	c.mu.Unlock()
	return <-r.errc
}

// flusher owns window formation: it blocks for the first request of a
// window, optionally holds the window open for one gather interval, then
// retires the batch with a single barrier. Running it on a dedicated
// goroutine (rather than electing a caller as leader) keeps windows open
// across the instant where every parked store has just been released and
// not yet re-parked — exactly the moment a caller-led loop would tear the
// window down and degenerate to one barrier per request.
// gatherYields bounds the cooperative gather: after scooping the queue the
// flusher yields its timeslice up to this many times, letting committers
// that are runnable right now stage into the window, and stops as soon as
// a yield brings nothing new. Unlike a timer-based gather this wastes no
// wall clock — on a loaded box a yield runs other goroutines and comes
// back, on an idle one it returns immediately and the window flushes.
const gatherYields = 8

func (c *Coalescer) flusher() {
	defer close(c.flusherDone)
	saturated := false
	for {
		var batch []*syncReq
		select {
		case r := <-c.reqCh:
			batch = append(batch, r)
		case <-c.stopCh:
			c.finalFlush(nil)
			return
		}
	scoop:
		for {
			select {
			case r := <-c.reqCh:
				batch = append(batch, r)
			default:
				break scoop
			}
		}
		if saturated {
			// Hold the window open while yields keep producing arrivals: every
			// store whose committer is runnable lands in this barrier instead
			// of paying for one of its own.
			for i := 0; i < gatherYields; i++ {
				before := len(batch)
				runtime.Gosched()
			regather:
				for {
					select {
					case r := <-c.reqCh:
						batch = append(batch, r)
					default:
						break regather
					}
				}
				if len(batch) == before {
					break
				}
			}
		}
		c.flushWindow(batch)
		// Overlapping requests (a multi-request window, or arrivals during
		// the barrier) mean the next window is worth holding open; a
		// singleton window with an empty queue means idle traffic, where the
		// next first arrival should flush immediately.
		saturated = len(batch) > 1 || len(c.reqCh) > 0
	}
}

// finalFlush retires everything still queued at shutdown in one last
// window so no committer that enqueued before Close is stranded.
func (c *Coalescer) finalFlush(batch []*syncReq) {
	for {
		select {
		case r := <-c.reqCh:
			batch = append(batch, r)
		default:
			if len(batch) > 0 {
				c.flushWindow(batch)
			}
			return
		}
	}
}

// flushWindow retires one window: a single device barrier (or deduplicated
// per-log fsyncs), then every parked committer is released with the result
// covering its log.
func (c *Coalescer) flushWindow(batch []*syncReq) {
	start := time.Now()
	// Prep hooks fire after window formation and before the barrier: every
	// append that happened up to here is about to be covered.
	for _, r := range batch {
		if r.prep != nil {
			r.prep()
		}
	}
	// Deduplicate managers: under syncfs each distinct one still gets its
	// flush latency recorded (its "fsyncs" counter counts durable barriers
	// its data crossed); under fallback each is fsynced exactly once.
	perMgr := make(map[*Manager][]*syncReq, len(batch))
	for _, r := range batch {
		perMgr[r.m] = append(perMgr[r.m], r)
	}
	errs := make(map[*Manager]error, len(perMgr))
	if c.syncfs {
		err := rawSyncfs(c.dirFD.Fd())
		d := time.Since(start)
		for m := range perMgr {
			errs[m] = err
			if err == nil {
				m.observeCoalescedSync(d)
			}
		}
	} else {
		var wg sync.WaitGroup
		var emu sync.Mutex
		for m := range perMgr {
			wg.Add(1)
			go func(m *Manager) {
				defer wg.Done()
				err := m.Sync()
				emu.Lock()
				errs[m] = err
				emu.Unlock()
			}(m)
		}
		wg.Wait()
	}
	ns := time.Since(start).Nanoseconds()
	c.windows.Add(1)
	c.lastWindow.Store(uint64(len(batch)))
	for {
		max := c.maxWindow.Load()
		if uint64(len(batch)) <= max || c.maxWindow.CompareAndSwap(max, uint64(len(batch))) {
			break
		}
	}
	c.syncLastNs.Store(ns)
	c.syncTotNs.Add(ns)
	for {
		max := c.syncMaxNs.Load()
		if ns <= max || c.syncMaxNs.CompareAndSwap(max, ns) {
			break
		}
	}
	for m, reqs := range perMgr {
		for _, r := range reqs {
			r.errc <- errs[m]
		}
	}
}

// StatsSnapshot returns cumulative window counters.
func (c *Coalescer) StatsSnapshot() CoalescerStats {
	return CoalescerStats{
		Enabled:        true,
		Mode:           c.Mode(),
		Windows:        c.windows.Load(),
		Requests:       c.requests.Load(),
		LastWindowSize: c.lastWindow.Load(),
		MaxWindowSize:  c.maxWindow.Load(),
		SyncLastNanos:  c.syncLastNs.Load(),
		SyncMaxNanos:   c.syncMaxNs.Load(),
		SyncTotalNanos: c.syncTotNs.Load(),
	}
}

// Close stops the flusher (retiring anything still queued in one last
// window) and releases the directory fd. Stores must be closed (committers
// drained) first; a straggling SyncWait after Close falls back to a direct
// fsync rather than erroring.
func (c *Coalescer) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	close(c.stopCh)
	<-c.flusherDone
	return c.dirFD.Close()
}

var errNoLog = errors.New("wal: append before Bootstrap")

// AppendBatchTimedNoSync writes a group of records like AppendBatchTimed
// but never fsyncs, regardless of policy — the coalesced group-commit
// path: the store appends its group, then borrows the shared device
// barrier via Coalescer.SyncWait before publishing.
func (m *Manager) AppendBatchTimedNoSync(recs []Record) (AppendTimings, error) {
	m.mu.Lock()
	lg := m.log
	m.mu.Unlock()
	if lg == nil {
		return AppendTimings{}, errNoLog
	}
	return lg.AppendBatchTimed(recs, false)
}

// observeCoalescedSync records a shared device barrier this manager's data
// crossed, so per-store fsync counters stay meaningful under coalescing.
func (m *Manager) observeCoalescedSync(d time.Duration) {
	m.stats.observeSync(d)
}
