package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
)

// Directory layout. A data directory holds
//
//	checkpoint-<epoch>.pg   full graph snapshot at <epoch> (graph.Save)
//	wal-<epoch>.log         delta records for epochs <epoch>+1, +2, ...
//
// with <epoch> zero-padded hex so lexical order is numeric order. The
// active log's base is the epoch of the newest durable checkpoint at the
// last rotation. Checkpointing is a three-step dance driven by the store:
//
//  1. Rotate(N) under the store's write mutex: seal (fsync) the active log
//     and switch appends to a fresh wal-N.log — from here on, epochs > N
//     land in the new file.
//  2. Checkpoint(g, N) with no lock held: write checkpoint-N.pg durably
//     (tmp file, fsync, atomic rename, directory fsync) from the immutable
//     epoch-N snapshot.
//  3. Obsolete files (checkpoints and logs below N) are removed only after
//     step 2 lands, so a crash anywhere leaves a recoverable chain: either
//     the old checkpoint plus the old log plus the new log, or the new
//     checkpoint plus the new log.
//
// Recovery (Open) inverts this: load the newest loadable checkpoint E,
// replay every log with base >= E in order — epochs must run E+1, E+2, ...
// with each delta's base watermark matching the graph, anything else is
// corruption — and tolerate a torn tail only in the final log, which a
// crash mid-append legitimately produces.

const (
	checkpointPrefix = "checkpoint-"
	checkpointSuffix = ".pg"
	logPrefix        = "wal-"
	logSuffix        = ".log"
	epochDigits      = 16
)

// ErrRecovery wraps unrecoverable data-directory corruption: epoch gaps,
// torn records in sealed logs, deltas whose base does not match. A torn
// final record is not an error (it is the expected crash artifact).
var ErrRecovery = errors.New("wal: unrecoverable data directory")

func checkpointName(epoch uint64) string {
	return fmt.Sprintf("%s%0*x%s", checkpointPrefix, epochDigits, epoch, checkpointSuffix)
}

func logName(epoch uint64) string {
	return fmt.Sprintf("%s%0*x%s", logPrefix, epochDigits, epoch, logSuffix)
}

func parseEpoch(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	hex := name[len(prefix) : len(name)-len(suffix)]
	if len(hex) != epochDigits {
		return 0, false
	}
	e, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return e, true
}

// Options configures a data directory manager.
type Options struct {
	// Dir is the data directory (created if missing).
	Dir string
	// Policy selects the fsync discipline for appends (default SyncAlways).
	Policy SyncPolicy
	// SyncInterval is the background flush period under SyncInterval
	// (default 100ms).
	SyncInterval time.Duration

	// OnBase, when set, is invoked with the loaded checkpoint graph (live,
	// mutable) before WAL replay begins. The serving layer uses it to stand
	// up the lifecycle recorder over the checkpoint state.
	OnBase func(g *graph.Graph, epoch uint64) error
	// OnRecord, when set, is invoked after each replayed delta record with
	// the epoch it produced and the index of the first vertex the delta
	// appended — the prov.Recorder.IndexFrom replay hook.
	OnRecord func(epoch uint64, firstNewVertex int) error
}

// Recovery describes what Open found.
type Recovery struct {
	// Graph is the recovered live graph (nil when Fresh: the caller must
	// seed one and call Bootstrap).
	Graph *graph.Graph
	// Epoch is the last durable epoch (checkpoint + replayed records).
	Epoch uint64
	// CheckpointEpoch is the epoch of the checkpoint the replay started at.
	CheckpointEpoch uint64
	// Replayed is the number of WAL records applied on top of it.
	Replayed int
	// TornTail reports whether a torn final record was discarded.
	TornTail bool
	// Fresh reports an empty directory: no checkpoint, no logs.
	Fresh bool
}

// Manager owns one data directory: the active log, checkpoint writes and
// obsolete-file cleanup. Append and Rotate must be serialized by the caller
// (provd runs them under the store's write mutex); Sync, Stats and
// Checkpoint are safe concurrently with appends.
type Manager struct {
	dir    string
	policy SyncPolicy

	mu   sync.Mutex // guards log swaps (rotate/close vs append/sync)
	log  *Log
	base uint64 // epoch base of the active log

	stats        statCounters
	checkpoints  atomic.Uint64
	ckptLastNs   atomic.Int64
	ckptTotalNs  atomic.Int64
	ckptLastEp   atomic.Uint64
	tickerStop   chan struct{}
	tickerDone   chan struct{}
	syncInterval time.Duration
}

// ManagerStats extends the log counters with checkpoint counters.
type ManagerStats struct {
	Stats
	Checkpoints          uint64 `json:"checkpoints"`
	CheckpointLastNanos  int64  `json:"checkpoint_last_ns"`
	CheckpointTotalNanos int64  `json:"checkpoint_total_ns"`
	LastCheckpointEpoch  uint64 `json:"last_checkpoint_epoch"`
}

// DirHasState reports whether dir already holds durable provd state (any
// checkpoint or log file). A missing directory has no state.
func DirHasState(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, err
	}
	for _, e := range entries {
		if _, ok := parseEpoch(e.Name(), checkpointPrefix, checkpointSuffix); ok {
			return true, nil
		}
		if _, ok := parseEpoch(e.Name(), logPrefix, logSuffix); ok {
			return true, nil
		}
	}
	return false, nil
}

// Open recovers the newest durable state from opts.Dir and returns the
// manager plus what it found. On a fresh directory the manager has no
// active log yet: seed a graph and call Bootstrap before appending.
func Open(opts Options) (*Manager, *Recovery, error) {
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, err
	}
	if opts.SyncInterval <= 0 {
		opts.SyncInterval = 100 * time.Millisecond
	}
	m := &Manager{dir: opts.Dir, policy: opts.Policy, syncInterval: opts.SyncInterval}

	entries, err := os.ReadDir(opts.Dir)
	if err != nil {
		return nil, nil, err
	}
	var ckpts, logs []uint64
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			// Remnant of a checkpoint write that never completed.
			_ = os.Remove(filepath.Join(opts.Dir, name))
			continue
		}
		if ep, ok := parseEpoch(name, checkpointPrefix, checkpointSuffix); ok {
			ckpts = append(ckpts, ep)
		} else if ep, ok := parseEpoch(name, logPrefix, logSuffix); ok {
			logs = append(logs, ep)
		}
	}
	sort.Slice(ckpts, func(i, j int) bool { return ckpts[i] < ckpts[j] })
	sort.Slice(logs, func(i, j int) bool { return logs[i] < logs[j] })

	if len(ckpts) == 0 {
		if len(logs) > 0 {
			return nil, nil, fmt.Errorf("%w: log files with no checkpoint", ErrRecovery)
		}
		return m, &Recovery{Fresh: true}, nil
	}

	// Newest loadable checkpoint wins; an unloadable newest checkpoint
	// (which the durable write protocol should never produce) falls back to
	// the previous one as long as a log chain still covers the gap.
	var g *graph.Graph
	var base uint64
	var loadErr error
	for i := len(ckpts) - 1; i >= 0; i-- {
		f, err := os.Open(filepath.Join(opts.Dir, checkpointName(ckpts[i])))
		if err != nil {
			loadErr = err
			continue
		}
		g, err = graph.Load(f)
		f.Close()
		if err == nil {
			base = ckpts[i]
			break
		}
		g, loadErr = nil, err
	}
	if g == nil {
		return nil, nil, fmt.Errorf("%w: no loadable checkpoint: %v", ErrRecovery, loadErr)
	}
	if opts.OnBase != nil {
		if err := opts.OnBase(g, base); err != nil {
			return nil, nil, err
		}
	}

	rec := &Recovery{Graph: g, Epoch: base, CheckpointEpoch: base}
	cur := base
	var replayLogs []uint64
	for _, ep := range logs {
		if ep >= base {
			replayLogs = append(replayLogs, ep)
		}
	}
	var lastInfo ReplayInfo
	for i, lep := range replayLogs {
		path := filepath.Join(opts.Dir, logName(lep))
		info, err := ReplayFile(path, func(epoch uint64, payload []byte) error {
			if epoch != cur+1 {
				return fmt.Errorf("%w: %s: record epoch %d after epoch %d", ErrRecovery, logName(lep), epoch, cur)
			}
			firstNew := g.NumVertices()
			if err := g.ApplyDelta(bytes.NewReader(payload)); err != nil {
				return fmt.Errorf("%w: %s: epoch %d: %v", ErrRecovery, logName(lep), epoch, err)
			}
			cur = epoch
			rec.Replayed++
			if opts.OnRecord != nil {
				return opts.OnRecord(epoch, firstNew)
			}
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
		if info.Torn && i != len(replayLogs)-1 {
			// Sealed logs are fsynced before rotation; a torn record in one
			// means real corruption, and the chain past it cannot be trusted.
			return nil, nil, fmt.Errorf("%w: torn record in sealed log %s", ErrRecovery, logName(lep))
		}
		lastInfo = info
	}
	rec.Epoch = cur
	rec.TornTail = lastInfo.Torn

	// Reopen the newest log for appending, truncating any torn tail.
	if len(replayLogs) == 0 {
		// A checkpoint with no log at its base (cleanup removed older logs,
		// crash before Rotate created the new one — impossible under the
		// protocol, but cheap to self-heal).
		if err := m.openFreshLog(base); err != nil {
			return nil, nil, err
		}
	} else {
		last := replayLogs[len(replayLogs)-1]
		lg, err := OpenLog(filepath.Join(opts.Dir, logName(last)), lastInfo.GoodBytes, &m.stats)
		if err != nil {
			return nil, nil, err
		}
		m.log, m.base = lg, last
	}
	m.removeObsolete(base)
	// The recovered checkpoint is the newest durable one; report it (rather
	// than zero) until the first in-process checkpoint supersedes it.
	m.ckptLastEp.Store(base)
	m.startTicker()
	return m, rec, nil
}

// Bootstrap initializes a fresh directory with the seed graph: a durable
// checkpoint-0 plus an empty active log. Must be called exactly once, only
// when Open reported Fresh.
func (m *Manager) Bootstrap(g *graph.Graph) error {
	if m.log != nil {
		return errors.New("wal: Bootstrap on an initialized manager")
	}
	if err := m.Checkpoint(g, 0); err != nil {
		return err
	}
	if err := m.openFreshLog(0); err != nil {
		return err
	}
	m.startTicker()
	return nil
}

func (m *Manager) openFreshLog(epoch uint64) error {
	lg, err := OpenLog(filepath.Join(m.dir, logName(epoch)), 0, &m.stats)
	if err != nil {
		return err
	}
	m.mu.Lock()
	m.log, m.base = lg, epoch
	m.mu.Unlock()
	syncDir(m.dir)
	return nil
}

// Append logs the delta that produced epoch. Under SyncAlways the record is
// on stable storage when Append returns; the caller then publishes the
// epoch. Callers serialize Append with Rotate (the store's write mutex).
func (m *Manager) Append(epoch uint64, payload []byte) error {
	_, err := m.AppendTimed(epoch, payload)
	return err
}

// AppendTimed is Append reporting write vs fsync time (the commit-stage
// histogram hook).
func (m *Manager) AppendTimed(epoch uint64, payload []byte) (AppendTimings, error) {
	m.mu.Lock()
	lg := m.log
	m.mu.Unlock()
	if lg == nil {
		return AppendTimings{}, errors.New("wal: append before Bootstrap")
	}
	return lg.AppendTimed(epoch, payload, m.policy == SyncAlways)
}

// AppendBatch logs a group of delta records with one write and (under
// SyncAlways) one fsync — the group-commit path. Records must carry
// consecutive epochs in slice order. Callers serialize AppendBatch with
// Append and Rotate exactly as they do Append.
func (m *Manager) AppendBatch(recs []Record) error {
	_, err := m.AppendBatchTimed(recs)
	return err
}

// AppendBatchTimed is AppendBatch reporting write vs fsync time for the
// whole group.
func (m *Manager) AppendBatchTimed(recs []Record) (AppendTimings, error) {
	m.mu.Lock()
	lg := m.log
	m.mu.Unlock()
	if lg == nil {
		return AppendTimings{}, errors.New("wal: append before Bootstrap")
	}
	return lg.AppendBatchTimed(recs, m.policy == SyncAlways)
}

// Rotate seals the active log and directs subsequent appends to a fresh
// wal-<epoch>.log. The caller must hold its write mutex so no append lands
// between choosing epoch and the swap, and must follow up with Checkpoint
// for the same epoch. Rotating onto the current base is a no-op.
func (m *Manager) Rotate(epoch uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.log == nil {
		return errors.New("wal: rotate before Bootstrap")
	}
	if epoch == m.base {
		return nil
	}
	if err := m.log.Close(); err != nil { // Close fsyncs: the old log is sealed
		return err
	}
	lg, err := OpenLog(filepath.Join(m.dir, logName(epoch)), 0, &m.stats)
	if err != nil {
		return err
	}
	m.log, m.base = lg, epoch
	syncDir(m.dir)
	return nil
}

// Checkpoint durably writes the frozen graph as checkpoint-<epoch>.pg (tmp
// file, fsync, atomic rename, directory fsync), then removes obsolete
// checkpoints and logs below epoch. g must be immutable for the duration
// (an epoch snapshot, or the pre-serving seed graph).
func (m *Manager) Checkpoint(g *graph.Graph, epoch uint64) error {
	start := time.Now()
	final := filepath.Join(m.dir, checkpointName(epoch))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	err = g.Save(f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(m.dir)
	m.removeObsolete(epoch)
	ns := time.Since(start).Nanoseconds()
	m.checkpoints.Add(1)
	m.ckptLastNs.Store(ns)
	m.ckptTotalNs.Add(ns)
	m.ckptLastEp.Store(epoch)
	return nil
}

// removeObsolete deletes checkpoints and logs strictly below keep. Safe to
// call any time after checkpoint-<keep> is durable.
func (m *Manager) removeObsolete(keep uint64) {
	entries, err := os.ReadDir(m.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if ep, ok := parseEpoch(name, checkpointPrefix, checkpointSuffix); ok && ep < keep {
			_ = os.Remove(filepath.Join(m.dir, name))
		} else if ep, ok := parseEpoch(name, logPrefix, logSuffix); ok && ep < keep {
			_ = os.Remove(filepath.Join(m.dir, name))
		}
	}
}

// Sync flushes the active log to stable storage.
func (m *Manager) Sync() error {
	m.mu.Lock()
	lg := m.log
	m.mu.Unlock()
	if lg == nil {
		return nil
	}
	return lg.Sync()
}

// StatsSnapshot returns cumulative log and checkpoint counters.
func (m *Manager) StatsSnapshot() ManagerStats {
	return ManagerStats{
		Stats:                m.stats.snapshot(),
		Checkpoints:          m.checkpoints.Load(),
		CheckpointLastNanos:  m.ckptLastNs.Load(),
		CheckpointTotalNanos: m.ckptTotalNs.Load(),
		LastCheckpointEpoch:  m.ckptLastEp.Load(),
	}
}

// Close stops the background flusher and seals the active log.
func (m *Manager) Close() error {
	m.stopTicker()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.log == nil {
		return nil
	}
	err := m.log.Close()
	m.log = nil
	return err
}

func (m *Manager) startTicker() {
	if m.policy != SyncInterval || m.tickerStop != nil {
		return
	}
	m.tickerStop = make(chan struct{})
	m.tickerDone = make(chan struct{})
	go func() {
		defer close(m.tickerDone)
		t := time.NewTicker(m.syncInterval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				_ = m.Sync()
			case <-m.tickerStop:
				return
			}
		}
	}()
}

func (m *Manager) stopTicker() {
	if m.tickerStop == nil {
		return
	}
	close(m.tickerStop)
	<-m.tickerDone
	m.tickerStop, m.tickerDone = nil, nil
}

// syncDir fsyncs a directory so renames and creates inside it are durable.
// Best-effort: not every platform supports it.
func syncDir(dir string) {
	f, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = f.Sync()
	f.Close()
}
