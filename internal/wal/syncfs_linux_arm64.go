//go:build linux && arm64

package wal

// sysSyncfs is the syncfs(2) syscall number on linux/arm64. The frozen
// syscall package predates syncfs, so the number is pinned here.
const (
	sysSyncfs       = 267
	syncfsSupported = true
)
