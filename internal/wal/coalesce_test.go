package wal

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
)

// openCoalesced stands up n bootstrapped managers in subdirectories of one
// data dir plus a coalescer over it, mirroring the registry layout.
func openCoalesced(t *testing.T, n int, mode CoalescerMode) (string, []*Manager, *Coalescer) {
	t.Helper()
	dir := t.TempDir()
	mgrs := make([]*Manager, n)
	for i := range mgrs {
		m, rec, err := Open(Options{Dir: filepath.Join(dir, fmt.Sprintf("s%d", i))})
		if err != nil {
			t.Fatal(err)
		}
		if !rec.Fresh {
			t.Fatalf("store %d: fresh dir not fresh: %+v", i, rec)
		}
		if err := m.Bootstrap(testGraph(2)); err != nil {
			t.Fatal(err)
		}
		mgrs[i] = m
	}
	c, err := NewCoalescer(dir, mode)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return dir, mgrs, c
}

// runCoalescedAppends drives rounds of unsynced batch appends + SyncWait
// from one goroutine per manager, then verifies every record is durable
// (replayable at the right epochs) and the window accounting is coherent.
func runCoalescedAppends(t *testing.T, mode CoalescerMode) {
	const stores, rounds = 4, 16
	dir, mgrs, c := openCoalesced(t, stores, mode)

	var wg sync.WaitGroup
	for i, m := range mgrs {
		wg.Add(1)
		go func(i int, m *Manager) {
			defer wg.Done()
			for ep := uint64(1); ep <= rounds; ep++ {
				payload := []byte(fmt.Sprintf("store-%d-epoch-%d", i, ep))
				if _, err := m.AppendBatchTimedNoSync([]Record{{Epoch: ep, Payload: payload}}); err != nil {
					t.Errorf("store %d append %d: %v", i, ep, err)
					return
				}
				if err := c.SyncWait(m); err != nil {
					t.Errorf("store %d sync %d: %v", i, ep, err)
					return
				}
			}
		}(i, m)
	}
	wg.Wait()
	for _, m := range mgrs {
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
	}

	for i := 0; i < stores; i++ {
		var got uint64
		info, err := ReplayFile(filepath.Join(dir, fmt.Sprintf("s%d", i), logName(0)), func(epoch uint64, payload []byte) error {
			got++
			if epoch != got {
				t.Fatalf("store %d: epoch %d at position %d", i, epoch, got)
			}
			want := fmt.Sprintf("store-%d-epoch-%d", i, epoch)
			if string(payload) != want {
				t.Fatalf("store %d: payload %q, want %q", i, payload, want)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if info.Torn || got != rounds {
			t.Fatalf("store %d: %d records (torn=%v), want %d", i, got, info.Torn, rounds)
		}
	}

	st := c.StatsSnapshot()
	if st.Requests != stores*rounds {
		t.Fatalf("requests = %d, want %d", st.Requests, stores*rounds)
	}
	if st.Windows == 0 || st.Windows > st.Requests {
		t.Fatalf("windows = %d, want within (0, %d]", st.Windows, st.Requests)
	}
	if st.MaxWindowSize < st.LastWindowSize || st.MaxWindowSize == 0 {
		t.Fatalf("window sizes inconsistent: %+v", st)
	}
	if st.SyncTotalNanos <= 0 || st.SyncMaxNanos < st.SyncLastNanos {
		t.Fatalf("sync timings inconsistent: %+v", st)
	}
	// Under concurrency at least some windows should have coalesced more
	// than one request; guaranteed whenever windows < requests.
	if st.Windows == st.Requests && st.MaxWindowSize != 1 {
		t.Fatalf("window accounting contradicts itself: %+v", st)
	}
}

func TestCoalescerAuto(t *testing.T)          { runCoalescedAppends(t, CoalesceAuto) }
func TestCoalescerFsyncFallback(t *testing.T) { runCoalescedAppends(t, CoalesceFsync) }

// TestCoalescerSyncWaitAfterClose: a straggling committer calling SyncWait
// after Close must still come back durable via the direct-fsync fallback,
// not deadlock or error.
func TestCoalescerSyncWaitAfterClose(t *testing.T) {
	_, mgrs, c := openCoalesced(t, 1, CoalesceAuto)
	m := mgrs[0]
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AppendBatchTimedNoSync([]Record{{Epoch: 1, Payload: []byte("late")}}); err != nil {
		t.Fatal(err)
	}
	if err := c.SyncWait(m); err != nil {
		t.Fatalf("SyncWait after Close: %v", err)
	}
	if got := c.StatsSnapshot().Requests; got != 0 {
		t.Fatalf("post-close SyncWait counted as a coalesced request: %d", got)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCoalescerModeReporting: the fallback-forced coalescer must report
// "fsync"; auto mode reports whichever the probe found, and both spellings
// are the only legal ones.
func TestCoalescerModeReporting(t *testing.T) {
	_, _, auto := openCoalesced(t, 1, CoalesceAuto)
	_, _, forced := openCoalesced(t, 1, CoalesceFsync)
	if m := forced.Mode(); m != "fsync" {
		t.Fatalf("forced mode = %q, want fsync", m)
	}
	if m := auto.Mode(); m != "syncfs" && m != "fsync" {
		t.Fatalf("auto mode = %q", m)
	}
	if s := auto.StatsSnapshot(); !s.Enabled || s.Mode != auto.Mode() {
		t.Fatalf("stats disagree with mode: %+v", s)
	}
}
