package wal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Streaming frame primitives. The replication layer ships WAL records over
// the wire byte-identical to how they sit on disk (see the package comment
// for the frame layout), so the leader can frame straight out of its
// publish path and a follower can treat the connection like a log tail: a
// clean close between frames is an orderly end of stream, a close inside a
// frame is the network's version of a torn tail, and a CRC or length
// violation is corruption. Replay (wal.go) folds the last two cases into
// "stop here" because a crashed local log is truncated and rewritten; a
// follower instead reconnects and resumes, so FrameReader surfaces the
// three cases as distinct errors.

// ErrTornFrame reports a stream that ended inside a frame: the reader got a
// partial header or a partial body. For a network stream this is the normal
// artifact of a cut connection; the bytes before the torn frame are intact.
var ErrTornFrame = errors.New("wal: stream ended mid-frame")

// ErrBadFrame reports a structurally invalid frame: an impossible length
// field or a CRC mismatch. Bytes past it cannot be trusted.
var ErrBadFrame = errors.New("wal: corrupt frame")

// WriteFrame writes one framed record to w, byte-identical to an on-disk
// log append of the same (epoch, payload).
func WriteFrame(w io.Writer, epoch uint64, payload []byte) error {
	if bodyHeaderLen+len(payload) > maxRecordLen {
		return fmt.Errorf("wal: record of %d bytes exceeds the %d limit", len(payload), maxRecordLen-bodyHeaderLen)
	}
	hdr := frameHeader(epoch, payload)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// AppendFrame appends one framed record to buf (the in-memory spelling of
// WriteFrame, for callers assembling a stream chunk).
func AppendFrame(buf *bytes.Buffer, epoch uint64, payload []byte) {
	frameInto(buf, epoch, payload)
}

// FrameReader decodes framed records one at a time from a byte stream — the
// incremental counterpart to Replay, for consumers (a follower's applier)
// that act on each record as it arrives rather than scanning a file whole.
type FrameReader struct {
	br  *bufio.Reader
	buf bytes.Buffer
}

// NewFrameReader wraps r for incremental frame decoding.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{br: bufio.NewReaderSize(r, 1<<16)}
}

// Next returns the next record. io.EOF means the stream ended cleanly
// between frames; ErrTornFrame means it ended inside one; ErrBadFrame means
// the frame is structurally invalid. Any other error is a transport read
// error. The payload slice is only valid until the next call.
func (fr *FrameReader) Next() (epoch uint64, payload []byte, err error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(fr.br, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			return 0, nil, ErrTornFrame
		}
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	crc := binary.LittleEndian.Uint32(hdr[4:8])
	if n < bodyHeaderLen || n > maxRecordLen {
		return 0, nil, fmt.Errorf("%w: length %d", ErrBadFrame, n)
	}
	// Copy incrementally rather than allocating n up front: on a hostile
	// stream n is arbitrary, and the read must fail at EOF without first
	// committing a giant allocation (same discipline as Replay).
	fr.buf.Reset()
	if _, err := io.CopyN(&fr.buf, fr.br, int64(n)); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, nil, ErrTornFrame
		}
		return 0, nil, err
	}
	body := fr.buf.Bytes()
	if crc32.Checksum(body, crcTable) != crc {
		return 0, nil, fmt.Errorf("%w: CRC mismatch", ErrBadFrame)
	}
	return binary.LittleEndian.Uint64(body[:bodyHeaderLen]), body[bodyHeaderLen:], nil
}
