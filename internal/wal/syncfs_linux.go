//go:build linux && (amd64 || arm64)

package wal

import "syscall"

// rawSyncfs flushes the whole filesystem containing fd to stable storage —
// one device-level barrier covering every store's log in the data tree.
// Returns the raw errno on failure (ENOSYS on pre-2.6.39 kernels or
// seccomp-filtered sandboxes; callers fall back to per-file fsync).
func rawSyncfs(fd uintptr) error {
	_, _, errno := syscall.Syscall(sysSyncfs, fd, 0, 0)
	if errno != 0 {
		return errno
	}
	return nil
}
