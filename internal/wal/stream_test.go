package wal

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// TestFrameReaderRoundTrip checks WriteFrame output decodes record for
// record and is byte-identical to a Log append of the same records.
func TestFrameReaderRoundTrip(t *testing.T) {
	var stream bytes.Buffer
	recs := []Record{
		{Epoch: 1, Payload: []byte("alpha")},
		{Epoch: 2, Payload: nil},
		{Epoch: 3, Payload: bytes.Repeat([]byte{0xAB}, 9000)},
	}
	for _, r := range recs {
		if err := WriteFrame(&stream, r.Epoch, r.Payload); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}

	var framed bytes.Buffer
	for _, r := range recs {
		AppendFrame(&framed, r.Epoch, r.Payload)
	}
	if !bytes.Equal(stream.Bytes(), framed.Bytes()) {
		t.Fatal("WriteFrame and AppendFrame produced different bytes")
	}

	fr := NewFrameReader(bytes.NewReader(stream.Bytes()))
	for i, want := range recs {
		epoch, payload, err := fr.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if epoch != want.Epoch || !bytes.Equal(payload, want.Payload) {
			t.Fatalf("record %d: got (%d, %d bytes), want (%d, %d bytes)",
				i, epoch, len(payload), want.Epoch, len(want.Payload))
		}
	}
	if _, _, err := fr.Next(); err != io.EOF {
		t.Fatalf("after last record: got %v, want io.EOF", err)
	}
}

// TestFrameReaderTornAndCorrupt checks the three stream-end cases are
// distinguished: clean EOF, torn mid-frame at every byte, and CRC/length
// corruption.
func TestFrameReaderTornAndCorrupt(t *testing.T) {
	var stream bytes.Buffer
	if err := WriteFrame(&stream, 7, []byte("payload-bytes")); err != nil {
		t.Fatal(err)
	}
	full := stream.Bytes()

	for cut := 1; cut < len(full); cut++ {
		fr := NewFrameReader(bytes.NewReader(full[:cut]))
		if _, _, err := fr.Next(); !errors.Is(err, ErrTornFrame) {
			t.Fatalf("cut at %d/%d: got %v, want ErrTornFrame", cut, len(full), err)
		}
	}

	// Flip one payload byte: CRC mismatch.
	corrupt := append([]byte(nil), full...)
	corrupt[len(corrupt)-1] ^= 0xFF
	fr := NewFrameReader(bytes.NewReader(corrupt))
	if _, _, err := fr.Next(); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("corrupt payload: got %v, want ErrBadFrame", err)
	}

	// An impossible length field is corruption, not a huge read.
	bad := append([]byte(nil), full...)
	bad[0], bad[1], bad[2], bad[3] = 0xFF, 0xFF, 0xFF, 0xFF
	fr = NewFrameReader(bytes.NewReader(bad))
	if _, _, err := fr.Next(); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("hostile length: got %v, want ErrBadFrame", err)
	}

	// A record after a valid one still decodes (reader state survives).
	var two bytes.Buffer
	if err := WriteFrame(&two, 1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&two, 2, []byte("b")); err != nil {
		t.Fatal(err)
	}
	fr = NewFrameReader(bytes.NewReader(two.Bytes()[:two.Len()-1]))
	if epoch, _, err := fr.Next(); err != nil || epoch != 1 {
		t.Fatalf("first of two: got (%d, %v)", epoch, err)
	}
	if _, _, err := fr.Next(); !errors.Is(err, ErrTornFrame) {
		t.Fatalf("torn second: got %v, want ErrTornFrame", err)
	}
}

// TestFrameReaderMatchesLogBytes pins the wire framing to the on-disk
// framing: a streamed frame replays through the file-oriented Replay.
func TestFrameReaderMatchesLogBytes(t *testing.T) {
	var stream bytes.Buffer
	if err := WriteFrame(&stream, 42, []byte("delta")); err != nil {
		t.Fatal(err)
	}
	var got []byte
	var gotEpoch uint64
	info, err := Replay(bytes.NewReader(stream.Bytes()), func(epoch uint64, payload []byte) error {
		gotEpoch = epoch
		got = append([]byte(nil), payload...)
		return nil
	})
	if err != nil || info.Torn || info.Records != 1 {
		t.Fatalf("Replay over streamed bytes: %+v, %v", info, err)
	}
	if gotEpoch != 42 || string(got) != "delta" {
		t.Fatalf("replayed (%d, %q)", gotEpoch, got)
	}
}
