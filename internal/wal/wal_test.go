package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
)

// writeRecords appends the given (epoch, payload) pairs to a fresh log at
// path and closes it, returning the raw file bytes.
func writeRecords(t *testing.T, path string, recs [][]byte) []byte {
	t.Helper()
	lg, err := OpenLog(path, 0, nil)
	if err != nil {
		t.Fatalf("open log: %v", err)
	}
	for i, p := range recs {
		if err := lg.Append(uint64(i+1), p, true); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := lg.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func replayAll(t *testing.T, data []byte) ([][]byte, ReplayInfo) {
	t.Helper()
	var got [][]byte
	info, err := Replay(bytes.NewReader(data), func(epoch uint64, payload []byte) error {
		if int(epoch) != len(got)+1 {
			t.Fatalf("epoch %d out of order (want %d)", epoch, len(got)+1)
		}
		got = append(got, append([]byte(nil), payload...))
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got, info
}

func TestLogRoundTrip(t *testing.T) {
	recs := [][]byte{[]byte("alpha"), {}, []byte("gamma with a longer payload"), {0x00, 0xff}}
	data := writeRecords(t, filepath.Join(t.TempDir(), "w.log"), recs)
	got, info := replayAll(t, data)
	if info.Torn || info.Records != len(recs) || info.GoodBytes != int64(len(data)) {
		t.Fatalf("info = %+v, want %d records over %d bytes", info, len(recs), len(data))
	}
	for i := range recs {
		if !bytes.Equal(got[i], recs[i]) {
			t.Fatalf("record %d mismatch: %q vs %q", i, got[i], recs[i])
		}
	}
}

// TestAppendBatchRoundTrip: a grouped append is byte-compatible with the
// same records appended one by one — replay cannot tell them apart — and
// pays one fsync for the whole group.
func TestAppendBatchRoundTrip(t *testing.T) {
	dir := t.TempDir()
	recs := []Record{
		{Epoch: 1, Payload: []byte("alpha")},
		{Epoch: 2, Payload: []byte{}},
		{Epoch: 3, Payload: []byte("gamma with a longer payload")},
		{Epoch: 4, Payload: bytes.Repeat([]byte{0xab}, 9000)}, // past smallRecordMax
	}
	var stats statCounters
	lg, err := OpenLog(filepath.Join(dir, "batch.log"), 0, &stats)
	if err != nil {
		t.Fatal(err)
	}
	if err := lg.AppendBatch(nil, true); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if err := lg.AppendBatch(recs, true); err != nil {
		t.Fatal(err)
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	if got := stats.fsyncs.Load(); got != 1 { // one for the whole group (Close syncs uncounted)
		t.Fatalf("batch of %d paid %d counted fsyncs, want 1", len(recs), got)
	}
	if got := stats.records.Load(); got != uint64(len(recs)) {
		t.Fatalf("record counter %d, want %d", got, len(recs))
	}

	batched, err := os.ReadFile(filepath.Join(dir, "batch.log"))
	if err != nil {
		t.Fatal(err)
	}
	var single [][]byte
	for _, r := range recs {
		single = append(single, r.Payload)
	}
	serial := writeRecords(t, filepath.Join(dir, "serial.log"), single)
	if !bytes.Equal(batched, serial) {
		t.Fatal("grouped append is not byte-identical to serial appends")
	}
	got, info := replayAll(t, batched)
	if info.Torn || info.Records != len(recs) {
		t.Fatalf("replay info %+v", info)
	}
	for i, r := range recs {
		if !bytes.Equal(got[i], r.Payload) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

// TestAppendBatchOversizedRecord: a batch containing an over-limit record
// is refused before any byte is written.
func TestAppendBatchOversizedRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "big.log")
	lg, err := OpenLog(path, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	// make of maxRecordLen bytes is a large but untouched mapping: the limit
	// check fires on len() before any framing writes to it.
	err = lg.AppendBatch([]Record{{Epoch: 1, Payload: []byte("ok")}, {Epoch: 2, Payload: make([]byte, maxRecordLen)}}, false)
	if err == nil {
		t.Fatal("oversized batch accepted")
	}
	data, _ := os.ReadFile(path)
	if len(data) != 0 {
		t.Fatalf("refused batch still wrote %d bytes", len(data))
	}
}

// TestManagerAppendBatch drives the manager-level group append end to end:
// bootstrap, one grouped append, recovery replays every member in order.
func TestManagerAppendBatch(t *testing.T) {
	dir := t.TempDir()
	m, rcv, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if !rcv.Fresh {
		t.Fatalf("fresh dir: %+v", rcv)
	}
	g := graph.New()
	if err := m.Bootstrap(g); err != nil {
		t.Fatal(err)
	}
	if err := m.AppendBatch(makeDeltaBatch(t, g, 3)); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	var epochs []uint64
	_, rcv2, err := Open(Options{Dir: dir, OnRecord: func(epoch uint64, firstNewVertex int) error {
		epochs = append(epochs, epoch)
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if rcv2.Epoch != 3 || rcv2.Replayed != 3 || rcv2.TornTail {
		t.Fatalf("recovery after grouped append: %+v", rcv2)
	}
	for i, e := range epochs {
		if e != uint64(i+1) {
			t.Fatalf("replay order: %v", epochs)
		}
	}
}

// makeDeltaBatch grows g by n single-vertex deltas and returns them as a
// record batch with consecutive epochs.
func makeDeltaBatch(t *testing.T, g *graph.Graph, n int) []Record {
	t.Helper()
	var recs []Record
	for i := 0; i < n; i++ {
		baseD, baseV, baseE := g.Dict().Len(), g.NumVertices(), g.NumEdges()
		g.AddVertex(g.Dict().Intern(fmt.Sprintf("L%d", i)))
		var buf bytes.Buffer
		if err := g.EncodeDelta(&buf, baseD, baseV, baseE); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, Record{Epoch: uint64(i + 1), Payload: append([]byte(nil), buf.Bytes()...)})
	}
	return recs
}

// TestLogTornTail truncates the log at every byte offset: replay must
// return exactly the records whose frames fit, flag everything else torn,
// and never error or panic.
func TestLogTornTail(t *testing.T) {
	recs := [][]byte{[]byte("one"), []byte("two-two"), []byte("33333")}
	data := writeRecords(t, filepath.Join(t.TempDir(), "w.log"), recs)
	// Frame boundaries: prefix sums of 8-byte header + 8-byte epoch + payload.
	bounds := []int64{0}
	for _, r := range recs {
		bounds = append(bounds, bounds[len(bounds)-1]+int64(frameHeaderLen+bodyHeaderLen+len(r)))
	}
	for cut := 0; cut <= len(data); cut++ {
		got, info := replayAll(t, data[:cut])
		wantN := 0
		for _, b := range bounds[1:] {
			if int64(cut) >= b {
				wantN++
			}
		}
		if len(got) != wantN {
			t.Fatalf("cut %d: %d records, want %d", cut, len(got), wantN)
		}
		if info.GoodBytes != bounds[wantN] {
			t.Fatalf("cut %d: GoodBytes %d, want %d", cut, info.GoodBytes, bounds[wantN])
		}
		if wantTorn := int64(cut) != bounds[wantN]; info.Torn != wantTorn {
			t.Fatalf("cut %d: Torn=%v, want %v", cut, info.Torn, wantTorn)
		}
	}
}

// TestLogCorruptRecord flips one byte at every offset: replay stops at (or
// before) the record containing the flip and never panics.
func TestLogCorruptRecord(t *testing.T) {
	recs := [][]byte{[]byte("aaaa"), []byte("bbbbbbbb"), []byte("cc")}
	data := writeRecords(t, filepath.Join(t.TempDir(), "w.log"), recs)
	for off := 0; off < len(data); off++ {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x5a
		var n int
		info, err := Replay(bytes.NewReader(mut), func(epoch uint64, payload []byte) error {
			n++
			return nil
		})
		if err != nil {
			t.Fatalf("off %d: %v", off, err)
		}
		// The flip corrupts exactly one frame; all records before it must
		// survive, nothing after it may be read (a corrupt length field can
		// also swallow the rest of the file, which is fine — it's torn).
		if !info.Torn && n != len(recs) {
			t.Fatalf("off %d: not torn but only %d records", off, n)
		}
	}
}

func TestOpenLogTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.log")
	data := writeRecords(t, path, [][]byte{[]byte("keep"), []byte("gone")})
	// Chop mid-way through the second record, reopen at the good prefix,
	// append a replacement; replay must see keep + replacement.
	_, info := replayAll(t, data[:len(data)-3])
	if info.Records != 1 || !info.Torn {
		t.Fatalf("setup: %+v", info)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	lg, err := OpenLog(path, info.GoodBytes, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := lg.Append(2, []byte("replacement"), true); err != nil {
		t.Fatal(err)
	}
	lg.Close()
	reread, _ := os.ReadFile(path)
	got, info := replayAll(t, reread)
	if info.Torn || len(got) != 2 || string(got[0]) != "keep" || string(got[1]) != "replacement" {
		t.Fatalf("after reopen: %+v %q", info, got)
	}
}

// --- manager tests ---

// testGraph builds a small prov-shaped graph the manager can checkpoint.
func testGraph(n int) *graph.Graph {
	g := graph.New()
	l := g.Dict().Intern("v")
	el := g.Dict().Intern("e")
	for i := 0; i < n; i++ {
		v := g.AddVertex(l)
		g.SetVertexProp(v, "name", graph.String(fmt.Sprintf("n%d", i)))
		if i > 0 {
			g.AddEdge(v, v-1, el)
		}
	}
	return g
}

// appendBatch mutates g with one batch and appends the delta at epoch.
func appendBatch(t *testing.T, m *Manager, g *graph.Graph, epoch uint64, extra int) (baseDict, baseV, baseE int) {
	t.Helper()
	baseDict, baseV, baseE = g.Dict().Len(), g.NumVertices(), g.NumEdges()
	l, _ := g.Dict().Lookup("v")
	el, _ := g.Dict().Lookup("e")
	for i := 0; i < extra; i++ {
		v := g.AddVertex(l)
		if int(v) > 0 {
			g.AddEdge(v, 0, el)
		}
	}
	var buf bytes.Buffer
	if err := g.EncodeDelta(&buf, baseDict, baseV, baseE); err != nil {
		t.Fatal(err)
	}
	if err := m.Append(epoch, buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	return
}

func openDir(t *testing.T, dir string) (*Manager, *Recovery) {
	t.Helper()
	m, rec, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("open %s: %v", dir, err)
	}
	return m, rec
}

func TestManagerBootstrapAndRecover(t *testing.T) {
	dir := t.TempDir()
	m, rec := openDir(t, dir)
	if !rec.Fresh {
		t.Fatalf("fresh dir not reported fresh: %+v", rec)
	}
	g := testGraph(5)
	if err := m.Bootstrap(g); err != nil {
		t.Fatal(err)
	}
	appendBatch(t, m, g, 1, 3)
	appendBatch(t, m, g, 2, 2)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, rec2 := openDir(t, dir)
	defer m2.Close()
	if rec2.Fresh || rec2.Epoch != 2 || rec2.Replayed != 2 || rec2.TornTail {
		t.Fatalf("recovery: %+v", rec2)
	}
	if rec2.Graph.NumVertices() != g.NumVertices() || rec2.Graph.NumEdges() != g.NumEdges() {
		t.Fatalf("recovered %d/%d, want %d/%d", rec2.Graph.NumVertices(), rec2.Graph.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	// Ingest resumes on the recovered state.
	appendBatch(t, m2, rec2.Graph, 3, 1)
}

func TestManagerCheckpointRotateAndCleanup(t *testing.T) {
	dir := t.TempDir()
	m, _ := openDir(t, dir)
	g := testGraph(4)
	if err := m.Bootstrap(g); err != nil {
		t.Fatal(err)
	}
	for ep := uint64(1); ep <= 3; ep++ {
		appendBatch(t, m, g, ep, 2)
	}
	// Checkpoint at epoch 3: rotate then write, as the store does.
	if err := m.Rotate(3); err != nil {
		t.Fatal(err)
	}
	fz := g.Freeze()
	if err := m.Checkpoint(fz, 3); err != nil {
		t.Fatal(err)
	}
	appendBatch(t, m, g, 4, 2)
	st := m.StatsSnapshot()
	if st.Checkpoints != 2 || st.LastCheckpointEpoch != 3 || st.Records != 4 {
		t.Fatalf("stats: %+v", st)
	}
	m.Close()

	// Old checkpoint-0 and wal-0 must be gone.
	for _, name := range []string{checkpointName(0), logName(0)} {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Fatalf("obsolete file %s survived cleanup", name)
		}
	}
	m2, rec := openDir(t, dir)
	defer m2.Close()
	if rec.CheckpointEpoch != 3 || rec.Epoch != 4 || rec.Replayed != 1 {
		t.Fatalf("recovery after checkpoint: %+v", rec)
	}
	if rec.Graph.NumVertices() != g.NumVertices() {
		t.Fatalf("recovered shape mismatch")
	}
}

// TestManagerCrashBetweenRotateAndCheckpoint models the crash window where
// the new log exists but its checkpoint was never written: recovery must
// chain the old checkpoint through both logs.
func TestManagerCrashBetweenRotateAndCheckpoint(t *testing.T) {
	dir := t.TempDir()
	m, _ := openDir(t, dir)
	g := testGraph(3)
	if err := m.Bootstrap(g); err != nil {
		t.Fatal(err)
	}
	appendBatch(t, m, g, 1, 2)
	appendBatch(t, m, g, 2, 2)
	if err := m.Rotate(2); err != nil {
		t.Fatal(err)
	}
	// Crash here: no Checkpoint(., 2). Records keep landing in wal-2.
	appendBatch(t, m, g, 3, 4)
	m.Close()

	m2, rec := openDir(t, dir)
	defer m2.Close()
	if rec.CheckpointEpoch != 0 || rec.Epoch != 3 || rec.Replayed != 3 {
		t.Fatalf("chained recovery: %+v", rec)
	}
	if rec.Graph.NumVertices() != g.NumVertices() || rec.Graph.NumEdges() != g.NumEdges() {
		t.Fatalf("chained recovery shape mismatch")
	}
}

func TestManagerRejectsEpochGap(t *testing.T) {
	dir := t.TempDir()
	m, _ := openDir(t, dir)
	g := testGraph(2)
	if err := m.Bootstrap(g); err != nil {
		t.Fatal(err)
	}
	appendBatch(t, m, g, 1, 1)
	// Skip epoch 2: append a (structurally valid) delta labeled epoch 3.
	appendBatch(t, m, g, 3, 1)
	m.Close()
	if _, _, err := Open(Options{Dir: dir}); !errors.Is(err, ErrRecovery) {
		t.Fatalf("epoch gap: want ErrRecovery, got %v", err)
	}
}

func TestManagerLogsWithoutCheckpoint(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, logName(0)), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(Options{Dir: dir}); !errors.Is(err, ErrRecovery) {
		t.Fatalf("want ErrRecovery, got %v", err)
	}
}

func TestDirHasState(t *testing.T) {
	dir := t.TempDir()
	if has, err := DirHasState(dir); err != nil || has {
		t.Fatalf("empty dir: has=%v err=%v", has, err)
	}
	if has, err := DirHasState(filepath.Join(dir, "missing")); err != nil || has {
		t.Fatalf("missing dir: has=%v err=%v", has, err)
	}
	m, _ := openDir(t, dir)
	if err := m.Bootstrap(testGraph(1)); err != nil {
		t.Fatal(err)
	}
	m.Close()
	if has, err := DirHasState(dir); err != nil || !has {
		t.Fatalf("bootstrapped dir: has=%v err=%v", has, err)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
	}{{"always", SyncAlways}, {"interval", SyncInterval}, {"never", SyncNever}} {
		got, err := ParseSyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("String() round-trip: %q vs %q", got.String(), tc.in)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}
