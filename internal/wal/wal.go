// Package wal implements the durability layer behind provd's Store: a
// write-ahead log of per-epoch ingest deltas plus periodic full-graph
// checkpoints, laid out in one data directory.
//
// Log format. A log file is a sequence of framed records:
//
//	u32le payload length | u32le CRC-32 (Castagnoli) of the body | body
//	body = u64le epoch | payload
//
// where payload is opaque to this layer (the manager stores graph deltas,
// see graph.EncodeDelta). The frame makes crash recovery a pure prefix
// scan: a record is accepted only if its full frame is present and its CRC
// matches, so a crash mid-append — a torn length, a torn body — truncates
// cleanly to the last durable record. Records are fsynced per the
// configured policy before the caller publishes the epoch they carry;
// everything after the first invalid frame is by construction unpublished
// and is discarded on recovery.
//
// Directory layout and recovery are in manager.go.
package wal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// SyncPolicy selects when appended records are fsynced to stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: a committed batch survives any
	// crash. This is the default and the only policy under which the
	// durability guarantee is exact.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a background ticker: a crash may lose the last
	// interval's batches, but each surviving prefix is still consistent.
	SyncInterval
	// SyncNever leaves flushing to the OS: fastest, loses the most on a
	// crash, still recovers a consistent prefix.
	SyncNever
)

// ParseSyncPolicy maps the -fsync flag spelling to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval, never)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

const (
	frameHeaderLen = 8
	bodyHeaderLen  = 8
	// maxRecordLen bounds a single record body; a length field beyond it is
	// treated as a torn/corrupt frame rather than attempted as a read.
	maxRecordLen = 1 << 30
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Stats are the log's cumulative counters, safe to read concurrently with
// appends. They power the /metrics wal panel.
type Stats struct {
	Records         uint64 `json:"records"`
	Bytes           uint64 `json:"bytes"`
	Fsyncs          uint64 `json:"fsyncs"`
	FsyncLastNanos  int64  `json:"fsync_last_ns"`
	FsyncMaxNanos   int64  `json:"fsync_max_ns"`
	FsyncTotalNanos int64  `json:"fsync_total_ns"`
}

// statCounters is the atomic backing for Stats, shared across log rotations
// so the manager reports totals for the whole process lifetime.
type statCounters struct {
	records      atomic.Uint64
	bytes        atomic.Uint64
	fsyncs       atomic.Uint64
	fsyncLastNs  atomic.Int64
	fsyncMaxNs   atomic.Int64
	fsyncTotalNs atomic.Int64
}

func (c *statCounters) observeSync(d time.Duration) {
	ns := d.Nanoseconds()
	c.fsyncs.Add(1)
	c.fsyncTotalNs.Add(ns)
	c.fsyncLastNs.Store(ns)
	for {
		max := c.fsyncMaxNs.Load()
		if ns <= max || c.fsyncMaxNs.CompareAndSwap(max, ns) {
			return
		}
	}
}

func (c *statCounters) snapshot() Stats {
	return Stats{
		Records:         c.records.Load(),
		Bytes:           c.bytes.Load(),
		Fsyncs:          c.fsyncs.Load(),
		FsyncLastNanos:  c.fsyncLastNs.Load(),
		FsyncMaxNanos:   c.fsyncMaxNs.Load(),
		FsyncTotalNanos: c.fsyncTotalNs.Load(),
	}
}

// Log is one open write-ahead log file. Appends are serialized by the
// caller (the store's write mutex); Sync may race with Append (the
// interval-sync ticker) and is internally locked.
type Log struct {
	mu    sync.Mutex
	f     *os.File
	stats *statCounters
}

// ReplayInfo summarizes one log scan.
type ReplayInfo struct {
	// Records is the number of valid records handed to the callback.
	Records int
	// GoodBytes is the file offset after the last valid record; a torn or
	// corrupt tail starts there.
	GoodBytes int64
	// Torn reports whether trailing bytes past GoodBytes were discarded.
	Torn bool
}

// Replay scans framed records from r, invoking fn for each valid record in
// order. It stops at the first torn or corrupt frame (reported via
// ReplayInfo, not an error). Only running out of bytes counts as torn: a
// real read error (say EIO under recovery) is returned as an error, so a
// transiently unreadable log is never mistaken for a short one and
// truncated. An error from fn aborts the scan and is returned. The payload
// slice passed to fn is only valid during the call.
func Replay(r io.Reader, fn func(epoch uint64, payload []byte) error) (ReplayInfo, error) {
	var info ReplayInfo
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [frameHeaderLen]byte
	var bb bytes.Buffer
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return info, nil
			}
			if err == io.ErrUnexpectedEOF {
				info.Torn = true
				return info, nil
			}
			return info, err
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if n < bodyHeaderLen || n > maxRecordLen {
			info.Torn = true
			return info, nil
		}
		// Copy incrementally rather than make([]byte, n) up front: in a
		// corrupt file n is arbitrary bytes, and a hostile length must fail
		// at EOF without first committing a gigabyte allocation.
		bb.Reset()
		if _, err := io.CopyN(&bb, br, int64(n)); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				info.Torn = true
				return info, nil
			}
			return info, err
		}
		body := bb.Bytes()
		if crc32.Checksum(body, crcTable) != crc {
			info.Torn = true
			return info, nil
		}
		epoch := binary.LittleEndian.Uint64(body[:bodyHeaderLen])
		if err := fn(epoch, body[bodyHeaderLen:]); err != nil {
			return info, err
		}
		info.Records++
		info.GoodBytes += int64(frameHeaderLen) + int64(n)
	}
}

// ReplayFile scans the log at path; a missing file yields a zero ReplayInfo
// and no error.
func ReplayFile(path string, fn func(epoch uint64, payload []byte) error) (ReplayInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return ReplayInfo{}, nil
		}
		return ReplayInfo{}, err
	}
	defer f.Close()
	return Replay(f, fn)
}

// OpenLog opens (creating if absent) the log at path for appending,
// truncating it to goodBytes first — the valid prefix a prior ReplayFile
// established — so a torn tail from a crash never precedes new records.
func OpenLog(path string, goodBytes int64, stats *statCounters) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(goodBytes); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(goodBytes, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	if stats == nil {
		stats = &statCounters{}
	}
	return &Log{f: f, stats: stats}, nil
}

// smallRecordMax is the payload size below which Append copies payload
// into one contiguous buffer (one write syscall); larger payloads are
// written from the caller's buffer directly instead of being copied again.
const smallRecordMax = 4 << 10

// Record is one (epoch, payload) pair for AppendBatch.
type Record struct {
	Epoch   uint64
	Payload []byte
}

// frameHeader builds the frame + body header for one record — the single
// definition of the on-disk layout (u32le length, u32le CRC-32C over
// epoch+payload, u64le epoch); the payload follows it verbatim.
func frameHeader(epoch uint64, payload []byte) [frameHeaderLen + bodyHeaderLen]byte {
	var hdr [frameHeaderLen + bodyHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(bodyHeaderLen+len(payload)))
	binary.LittleEndian.PutUint64(hdr[frameHeaderLen:], epoch)
	crc := crc32.Checksum(hdr[frameHeaderLen:], crcTable)
	crc = crc32.Update(crc, crcTable, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	return hdr
}

// frameInto appends the framed record (header + body) to buf.
func frameInto(buf *bytes.Buffer, epoch uint64, payload []byte) {
	hdr := frameHeader(epoch, payload)
	buf.Write(hdr[:])
	buf.Write(payload)
}

// AppendTimings breaks one append into its write and fsync components, the
// per-stage timing hook the serving layer's commit-pipeline histograms feed
// on. Synced reports whether this append paid an fsync at all (false under
// the interval/never policies, whose callers must not record a zero fsync
// sample).
type AppendTimings struct {
	WriteNanos int64
	SyncNanos  int64
	Synced     bool
}

// AppendBatch frames and writes a group of records in one write syscall and,
// with sync true, one fsync for the whole group — the group-commit primitive:
// the fsync cost amortizes across every record in the batch. Records land in
// the file in slice order, so a crash leaves a durable prefix of the batch in
// that order. The caller must not publish any member epoch until AppendBatch
// returns.
func (l *Log) AppendBatch(recs []Record, sync bool) error {
	_, err := l.AppendBatchTimed(recs, sync)
	return err
}

// AppendBatchTimed is AppendBatch reporting where the time went.
func (l *Log) AppendBatchTimed(recs []Record, sync bool) (AppendTimings, error) {
	var tm AppendTimings
	if len(recs) == 0 {
		return tm, nil
	}
	var buf bytes.Buffer
	for _, r := range recs {
		if bodyHeaderLen+len(r.Payload) > maxRecordLen {
			return tm, fmt.Errorf("wal: record of %d bytes exceeds the %d limit", len(r.Payload), maxRecordLen-bodyHeaderLen)
		}
		frameInto(&buf, r.Epoch, r.Payload)
	}
	start := time.Now()
	l.mu.Lock()
	_, err := l.f.Write(buf.Bytes())
	l.mu.Unlock()
	tm.WriteNanos = time.Since(start).Nanoseconds()
	if err != nil {
		return tm, err
	}
	l.stats.records.Add(uint64(len(recs)))
	l.stats.bytes.Add(uint64(buf.Len()))
	if sync {
		start = time.Now()
		err = l.Sync()
		tm.SyncNanos, tm.Synced = time.Since(start).Nanoseconds(), err == nil
	}
	return tm, err
}

// Append frames and writes one record. With sync true the record (and
// everything before it) is fsynced before Append returns; the caller must
// not publish the epoch until then.
func (l *Log) Append(epoch uint64, payload []byte, sync bool) error {
	_, err := l.AppendTimed(epoch, payload, sync)
	return err
}

// AppendTimed is Append reporting where the time went.
func (l *Log) AppendTimed(epoch uint64, payload []byte, sync bool) (AppendTimings, error) {
	var tm AppendTimings
	n := bodyHeaderLen + len(payload)
	if n > maxRecordLen {
		return tm, fmt.Errorf("wal: record of %d bytes exceeds the %d limit", len(payload), maxRecordLen-bodyHeaderLen)
	}
	hdr := frameHeader(epoch, payload)

	start := time.Now()
	l.mu.Lock()
	var err error
	if len(payload) < smallRecordMax {
		_, err = l.f.Write(append(hdr[:len(hdr):len(hdr)], payload...))
	} else {
		// A crash between the two writes leaves a torn frame, which replay
		// already truncates — same failure mode as a torn single write.
		if _, err = l.f.Write(hdr[:]); err == nil {
			_, err = l.f.Write(payload)
		}
	}
	l.mu.Unlock()
	tm.WriteNanos = time.Since(start).Nanoseconds()
	if err != nil {
		return tm, err
	}
	l.stats.records.Add(1)
	l.stats.bytes.Add(uint64(frameHeaderLen) + uint64(n))
	if sync {
		start = time.Now()
		err = l.Sync()
		tm.SyncNanos, tm.Synced = time.Since(start).Nanoseconds(), err == nil
	}
	return tm, err
}

// Sync fsyncs the log file and records the latency.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.stats.observeSync(time.Since(start))
	return nil
}

// Close fsyncs and closes the file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}
