package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// frame builds one valid record frame, for fuzz seeds.
func frame(epoch uint64, payload []byte) []byte {
	n := bodyHeaderLen + len(payload)
	buf := make([]byte, frameHeaderLen+n)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(n))
	binary.LittleEndian.PutUint64(buf[frameHeaderLen:], epoch)
	copy(buf[frameHeaderLen+bodyHeaderLen:], payload)
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(buf[frameHeaderLen:], crcTable))
	return buf
}

// FuzzWALReplay feeds arbitrary bytes to the log replayer. The contract:
// Replay never panics and never errors on bad bytes (fn never fails here);
// whatever valid record prefix it extracts must round-trip — re-appending
// the extracted records produces a log that replays to the identical
// sequence with no torn tail — and GoodBytes must describe exactly the
// consumed prefix (replaying data[:GoodBytes] yields the same records,
// un-torn).
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add(frame(1, []byte("hello")))
	f.Add(append(frame(1, []byte("a")), frame(2, bytes.Repeat([]byte{0xab}, 100))...))
	f.Add(append(frame(1, nil), 0x01, 0x02, 0x03))
	corrupt := frame(7, []byte("payload"))
	corrupt[5] ^= 0xff
	f.Add(corrupt)
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0}) // huge length, no body

	f.Fuzz(func(t *testing.T, data []byte) {
		type rec struct {
			epoch   uint64
			payload []byte
		}
		var got []rec
		info, err := Replay(bytes.NewReader(data), func(epoch uint64, payload []byte) error {
			got = append(got, rec{epoch, append([]byte(nil), payload...)})
			return nil
		})
		if err != nil {
			t.Fatalf("Replay errored on raw bytes: %v", err)
		}
		if info.Records != len(got) {
			t.Fatalf("info.Records %d != callback count %d", info.Records, len(got))
		}
		if info.GoodBytes < 0 || info.GoodBytes > int64(len(data)) {
			t.Fatalf("GoodBytes %d out of range [0,%d]", info.GoodBytes, len(data))
		}
		if !info.Torn && info.GoodBytes != int64(len(data)) {
			t.Fatalf("not torn but GoodBytes %d != len %d", info.GoodBytes, len(data))
		}

		// The valid prefix replays identically on its own.
		var prefix []rec
		pinfo, err := Replay(bytes.NewReader(data[:info.GoodBytes]), func(epoch uint64, payload []byte) error {
			prefix = append(prefix, rec{epoch, append([]byte(nil), payload...)})
			return nil
		})
		if err != nil || pinfo.Torn || pinfo.GoodBytes != info.GoodBytes || len(prefix) != len(got) {
			t.Fatalf("prefix replay diverged: %+v err=%v", pinfo, err)
		}

		// Round-trip: re-append the extracted records, replay, compare.
		var rebuilt bytes.Buffer
		for _, r := range got {
			rebuilt.Write(frame(r.epoch, r.payload))
		}
		var again []rec
		rinfo, err := Replay(bytes.NewReader(rebuilt.Bytes()), func(epoch uint64, payload []byte) error {
			again = append(again, rec{epoch, append([]byte(nil), payload...)})
			return nil
		})
		if err != nil || rinfo.Torn {
			t.Fatalf("rebuilt log torn or errored: %+v err=%v", rinfo, err)
		}
		if len(again) != len(got) {
			t.Fatalf("rebuilt log has %d records, want %d", len(again), len(got))
		}
		for i := range got {
			if again[i].epoch != got[i].epoch || !bytes.Equal(again[i].payload, got[i].payload) {
				t.Fatalf("record %d changed across round-trip", i)
			}
		}
	})
}
