//go:build !linux || (!amd64 && !arm64)

package wal

import "errors"

const syncfsSupported = false

// rawSyncfs is unavailable on this platform; the coalescer degrades to
// deduplicated per-file fsync.
func rawSyncfs(fd uintptr) error {
	return errors.ErrUnsupported
}
