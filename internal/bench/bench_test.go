package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

// TestFigureRegistry: every advertised panel id resolves and unknown ids
// do not.
func TestFigureRegistry(t *testing.T) {
	if len(IDs()) != 15 {
		t.Fatalf("want 15 panels, got %v", IDs())
	}
	if _, ok := ByID("9z", ScaleSmall); ok {
		t.Fatal("phantom figure")
	}
}

// TestRunShardIngestTiny drives the sharded-ingest measurement core on a
// miniature workload across the three commit modes — group commit with
// the device coalescer, group commit with private fsyncs, and per-batch
// fsync. All must commit every batch and report a positive rate.
func TestRunShardIngestTiny(t *testing.T) {
	for _, mode := range []struct {
		name              string
		group, noCoalesce bool
	}{
		{"coalesced", true, false},
		{"private", true, true},
		{"per-batch", false, false},
	} {
		rate, err := runShardIngest(2, 2, 12, mode.group, mode.noCoalesce)
		if err != nil {
			t.Fatalf("%s: %v", mode.name, err)
		}
		if rate <= 0 {
			t.Fatalf("%s: rate %f", mode.name, rate)
		}
	}
}

// TestRunHotNeighborTiny runs the hot-neighbor measurement core with a
// miniature shape, unthrottled and rate-limited: both must yield a
// positive cold-store p99.
func TestRunHotNeighborTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("hot-neighbor probe pays real fsyncs")
	}
	for _, rate := range []float64{0, 50} {
		p99, err := runHotNeighbor(2, 1, 5, rate)
		if err != nil {
			t.Fatalf("rate=%v: %v", rate, err)
		}
		if p99 <= 0 {
			t.Fatalf("rate=%v: p99 %v", rate, p99)
		}
	}
}

// TestRunReplTiny drives the replication measurement core on a miniature
// workload: the leader commits, the follower catches up over real HTTP,
// both rates are positive and no record lag remains.
func TestRunReplTiny(t *testing.T) {
	commit, apply, lag, residual, err := runRepl(2, 15)
	if err != nil {
		t.Fatal(err)
	}
	if commit <= 0 || apply <= 0 {
		t.Fatalf("rates: commit %f apply %f", commit, apply)
	}
	if residual != 0 {
		t.Fatalf("follower left %d records behind after WaitEpoch", residual)
	}
	if lag.Count == 0 {
		t.Fatal("apply-lag histogram empty")
	}
}

// TestFigShardTiny runs the shard panel end to end: every cell must be a
// measurement, and the workload sizes must satisfy the >=8-writer bar the
// panel exists to document.
func TestFigShardTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded ingest sweep pays real fsyncs")
	}
	if w, _ := shardWorkload(ScaleSmall); w < 8 {
		t.Fatalf("small-scale writer pool %d, want >=8", w)
	}
	fig := FigShard(ScaleSmall)
	if len(fig.Rows) != 3 {
		t.Fatalf("want 3 shard points, got %d", len(fig.Rows))
	}
	for _, r := range fig.Rows {
		for _, s := range fig.Series {
			c := r.Cells[s]
			if c == "" || c == "err" {
				t.Fatalf("bad cell %s at stores=%s: %q (%q)", s, r.X, c, r.Cells["speedup"])
			}
		}
	}
}

// TestRecordFigure: the persisted history round-trips and accumulates
// entries across runs, keeping figures separate.
func TestRecordFigure(t *testing.T) {
	path := t.TempDir() + "/BENCH_test.json"
	fig := Figure{
		ID:     "srv",
		Series: []string{"read req/s"},
		Rows:   []Row{{X: "1", Cells: map[string]string{"read req/s": "100"}}},
	}
	if err := RecordFigure(path, fig, ScaleSmall); err != nil {
		t.Fatal(err)
	}
	fig.Rows[0].Cells["read req/s"] = "200"
	if err := RecordFigure(path, fig, ScaleSmall); err != nil {
		t.Fatal(err)
	}
	other := Figure{ID: "csr", Series: []string{"speedup"},
		Rows: []Row{{X: "1000", Cells: map[string]string{"speedup": "2.0x"}}}}
	if err := RecordFigure(path, other, ScaleMedium); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var hist map[string][]BenchEntry
	if err := json.Unmarshal(raw, &hist); err != nil {
		t.Fatalf("history does not round-trip: %v", err)
	}
	if len(hist["srv"]) != 2 || len(hist["csr"]) != 1 {
		t.Fatalf("entry counts: srv=%d csr=%d", len(hist["srv"]), len(hist["csr"]))
	}
	if hist["srv"][0].Rows[0].Cells["read req/s"] != "100" || hist["srv"][1].Rows[0].Cells["read req/s"] != "200" {
		t.Fatalf("entries out of order: %+v", hist["srv"])
	}
	if hist["csr"][0].Scale != string(ScaleMedium) || hist["csr"][0].Time == "" {
		t.Fatalf("metadata missing: %+v", hist["csr"][0])
	}

	// A corrupt history must error out, not be silently overwritten.
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := RecordFigure(path, fig, ScaleSmall); err == nil {
		t.Fatal("corrupt history accepted")
	}
}

// TestFigCSRTiny runs the CSR-vs-filtered panel on the smallest scale and
// sanity-checks every cell is a measurement.
func TestFigCSRTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("CSR sweep regenerates Pd graphs")
	}
	fig := FigCSR(ScaleSmall)
	if len(fig.Rows) != 3 {
		t.Fatalf("want 3 size points, got %d", len(fig.Rows))
	}
	for _, r := range fig.Rows {
		for _, s := range fig.Series {
			if r.Cells[s] == "" {
				t.Fatalf("empty cell %s at N=%s", s, r.X)
			}
		}
	}
}

// TestVecEquivalence drives the vec panel's inline equality assertion on a
// tiny frozen graph — segment, closure and Cypher results must match
// between the scalar and vectorized engines before any timing is trusted.
// This is the CI smoke for the panel; the full sweep runs via provbench.
func TestVecEquivalence(t *testing.T) {
	p := pdGraph(gen.PdConfig{N: 500, Seed: 1})
	src, dst := gen.QueryAtRank(p, 0)
	fz := p.Freeze()
	assertVecEqualsScalar(fz, src, dst) // panics on divergence
	if d := timeWalkOpts(fz, src, dst, core.Options{}, 2); d < 0 {
		t.Fatal("walk timing negative")
	}
}

// TestFigVecTiny runs the scalar-vs-vectorized panel on the smallest scale
// and sanity-checks every cell is a measurement.
func TestFigVecTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("vec sweep regenerates Pd graphs")
	}
	fig := FigVec(ScaleSmall)
	if len(fig.Rows) != 2 {
		t.Fatalf("want 2 size points, got %d", len(fig.Rows))
	}
	for _, r := range fig.Rows {
		for _, s := range fig.Series {
			if r.Cells[s] == "" {
				t.Fatalf("empty cell %s at N=%s", s, r.X)
			}
		}
	}
}

// TestSegSolverEquivalence drives the seg panel's inline four-way solver
// gate on a tiny frozen graph — the scalar and set-at-a-time VC2 solvers
// must produce identical results before any timing is trusted. This is the
// CI smoke for the panel; the full sweep runs via provbench.
func TestSegSolverEquivalence(t *testing.T) {
	p := pdGraph(gen.PdConfig{N: 500, Seed: 1})
	src, dst := gen.QueryAtRank(p, 0)
	fz := p.Freeze()
	assertSegSolversAgree(fz, src, dst, true)  // DiffSolvers; panics on divergence
	assertSegSolversAgree(fz, src, dst, false) // inline Tst + segment parity path
	d, ok := timeVC2Best(fz, src, dst, core.Options{Solver: core.SolverTst, ForceVecSolver: true}, 2)
	if !ok || d < 0 {
		t.Fatalf("VC2 timing: %v ok=%v", d, ok)
	}
	if c := cell(d, ok); c == "" || c == "oom" {
		t.Fatalf("cell rendered %q", c)
	}
	if c := cell(0, false); c != "oom" {
		t.Fatalf("tripped budget rendered %q, want oom", c)
	}
}

// TestFigSegTiny runs the solver panel's row loop at toy sizes, crossing
// the algMax boundary so both the four-way and the beyond-reach branches
// render; every cell must be populated.
func TestFigSegTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("seg sweep regenerates Pd graphs")
	}
	fig := figSeg([]int{400, 900}, 400, 200_000, 1)
	if len(fig.Rows) != 2 {
		t.Fatalf("want 2 size points, got %d", len(fig.Rows))
	}
	for _, r := range fig.Rows {
		for _, s := range fig.Series {
			if r.Cells[s] == "" {
				t.Fatalf("empty cell %s at N=%s", s, r.X)
			}
		}
	}
}

// TestSrvThroughputTiny drives the server-throughput panel end to end on a
// tiny workload: every cell must carry a measured rate, not an error.
func TestSrvThroughputTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("server throughput sweep takes ~10s")
	}
	fig := SrvThroughput(ScaleSmall)
	if len(fig.Rows) != 4 {
		t.Fatalf("want 4 concurrency points, got %d", len(fig.Rows))
	}
	for _, r := range fig.Rows {
		for _, s := range fig.Series {
			c := r.Cells[s]
			if c == "" || c == "err" {
				t.Fatalf("bad cell %s at clients=%s: %q (err cell: %q)", s, r.X, c, r.Cells[strings.TrimSuffix(s, " req/s")+" hit%"])
			}
		}
	}
}

// TestCRFiguresShape runs the cheap summarization panels end to end and
// checks structural properties of the output: PgSum never worse than pSum,
// all cells populated, render works.
func TestCRFiguresShape(t *testing.T) {
	for _, id := range []string{"5e", "5h"} {
		fig, ok := ByID(id, ScaleSmall)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		if len(fig.Rows) == 0 {
			t.Fatalf("%s: no rows", id)
		}
		for _, r := range fig.Rows {
			pg, ps := r.Cells["PgSum"], r.Cells["pSum"]
			if pg == "" || ps == "" {
				t.Fatalf("%s: empty cell at x=%s", id, r.X)
			}
			if pg > ps { // string compare works: same width %.3f in [0,1)
				t.Errorf("%s x=%s: PgSum (%s) worse than pSum (%s)", id, r.X, pg, ps)
			}
		}
		var buf bytes.Buffer
		fig.Render(&buf)
		if !strings.Contains(buf.String(), "Fig "+id) {
			t.Fatalf("%s: render missing header", id)
		}
	}
}

// TestRuntimeFigureTiny runs a miniature Fig 5a-style measurement to cover
// the timing path without heavy graphs.
func TestRuntimeFigureTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("runtime sweep takes ~20s")
	}
	fig := Fig5b(ScaleSmall)
	if len(fig.Rows) != 6 {
		t.Fatalf("want 6 skew points, got %d", len(fig.Rows))
	}
	for _, r := range fig.Rows {
		for _, s := range fig.Series {
			if r.Cells[s] == "" {
				t.Fatalf("empty cell %s at %s", s, r.X)
			}
		}
	}
}
