package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestFigureRegistry: every advertised panel id resolves and unknown ids
// do not.
func TestFigureRegistry(t *testing.T) {
	if len(IDs()) != 9 {
		t.Fatalf("want 9 panels, got %v", IDs())
	}
	if _, ok := ByID("9z", ScaleSmall); ok {
		t.Fatal("phantom figure")
	}
}

// TestSrvThroughputTiny drives the server-throughput panel end to end on a
// tiny workload: every cell must carry a measured rate, not an error.
func TestSrvThroughputTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("server throughput sweep takes ~10s")
	}
	fig := SrvThroughput(ScaleSmall)
	if len(fig.Rows) != 4 {
		t.Fatalf("want 4 concurrency points, got %d", len(fig.Rows))
	}
	for _, r := range fig.Rows {
		for _, s := range fig.Series {
			c := r.Cells[s]
			if c == "" || c == "err" {
				t.Fatalf("bad cell %s at clients=%s: %q (err cell: %q)", s, r.X, c, r.Cells[strings.TrimSuffix(s, " req/s")+" hit%"])
			}
		}
	}
}

// TestCRFiguresShape runs the cheap summarization panels end to end and
// checks structural properties of the output: PgSum never worse than pSum,
// all cells populated, render works.
func TestCRFiguresShape(t *testing.T) {
	for _, id := range []string{"5e", "5h"} {
		fig, ok := ByID(id, ScaleSmall)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		if len(fig.Rows) == 0 {
			t.Fatalf("%s: no rows", id)
		}
		for _, r := range fig.Rows {
			pg, ps := r.Cells["PgSum"], r.Cells["pSum"]
			if pg == "" || ps == "" {
				t.Fatalf("%s: empty cell at x=%s", id, r.X)
			}
			if pg > ps { // string compare works: same width %.3f in [0,1)
				t.Errorf("%s x=%s: PgSum (%s) worse than pSum (%s)", id, r.X, pg, ps)
			}
		}
		var buf bytes.Buffer
		fig.Render(&buf)
		if !strings.Contains(buf.String(), "Fig "+id) {
			t.Fatalf("%s: render missing header", id)
		}
	}
}

// TestRuntimeFigureTiny runs a miniature Fig 5a-style measurement to cover
// the timing path without heavy graphs.
func TestRuntimeFigureTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("runtime sweep takes ~20s")
	}
	fig := Fig5b(ScaleSmall)
	if len(fig.Rows) != 6 {
		t.Fatalf("want 6 skew points, got %d", len(fig.Rows))
	}
	for _, r := range fig.Rows {
		for _, s := range fig.Series {
			if r.Cells[s] == "" {
				t.Fatalf("empty cell %s at %s", s, r.X)
			}
		}
	}
}
