package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/graph/difftest"
	"repro/internal/prov"
)

// Panel "csr": the live graph's boundary-filtered adjacency vs a frozen
// epoch snapshot's CSR index (graph.Freeze). This is the serving layer's
// read path — provd queries always run against a snapshot. Two workloads:
// the full PgSeg solve (dominated by the VC2 solver's bitset kernel, so
// representation-insensitive) and the pure ancestry walk (VC1's closure —
// the adjacency-bound traversal the CSR accelerates, which also drives
// expansions and segment assembly). The freeze cost a commit pays is
// reported both ways the serving layer can build a snapshot: the full CSR
// rebuild and the incremental extension of the previous epoch by a ~1%
// ingest delta (graph.ExtendFrozen — the provd commit path).

// timeSegment measures one full PgSeg evaluation (best of reps).
func timeSegment(p *prov.Graph, src, dst []graph.VertexID, reps int) time.Duration {
	eng := core.NewEngine(p, core.Options{})
	best := time.Duration(0)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if _, err := eng.Segment(core.Query{Src: src, Dst: dst}); err != nil {
			panic(err)
		}
		if d := time.Since(start); i == 0 || d < best {
			best = d
		}
	}
	return best
}

// timeWalk measures one VC1 ancestry pass (forward closure of dst plus
// backward closure of src), averaged over enough iterations to be stable.
func timeWalk(p *prov.Graph, src, dst []graph.VertexID, iters int) time.Duration {
	eng := core.NewEngine(p, core.Options{})
	start := time.Now()
	for i := 0; i < iters; i++ {
		eng.AncestryClosure(dst, core.Boundary{}, true)
		eng.AncestryClosure(src, core.Boundary{}, false)
	}
	return time.Since(start) / time.Duration(iters)
}

// FigCSR compares filtered-adjacency and CSR-snapshot runtimes across
// graph sizes.
func FigCSR(scale Scale) Figure {
	var ns []int
	switch scale {
	case ScaleSmall:
		ns = []int{1000, 5000, 10000}
	case ScaleMedium:
		ns = []int{5000, 20000, 50000}
	default:
		ns = []int{10000, 50000, 100000}
	}
	fig := Figure{
		ID:      "csr",
		Caption: "filtered adjacency vs frozen CSR snapshot (Pd graphs)",
		XLabel:  "N",
		YLabel:  "runtime",
		Series: []string{"seg filt", "seg CSR", "walk filt", "walk CSR", "walk speedup",
			"freeze full", "freeze incr", "freeze speedup"},
	}
	const reps = 3
	for _, n := range ns {
		p := pdGraph(gen.PdConfig{N: n, Seed: 1})
		src, dst := gen.QueryAtRank(p, 0)

		freeze, freezeIncr := timeFreezes(p, reps)

		fz := p.Freeze()
		iters := 2_000_000/n + 1
		liveSeg := timeSegment(p, src, dst, reps)
		snapSeg := timeSegment(fz, src, dst, reps)
		liveWalk := timeWalk(p, src, dst, iters)
		snapWalk := timeWalk(fz, src, dst, iters)

		row := Row{X: fmt.Sprint(n), Cells: map[string]string{
			"seg filt":    secs(liveSeg),
			"seg CSR":     secs(snapSeg),
			"walk filt":   secs(liveWalk),
			"walk CSR":    secs(snapWalk),
			"freeze full": secs(freeze),
			"freeze incr": secs(freezeIncr),
		}}
		if snapWalk > 0 {
			row.Cells["walk speedup"] = fmt.Sprintf("%.1fx", float64(liveWalk)/float64(snapWalk))
		} else {
			row.Cells["walk speedup"] = "-"
		}
		if freezeIncr > 0 {
			row.Cells["freeze speedup"] = fmt.Sprintf("%.1fx", float64(freeze)/float64(freezeIncr))
		} else {
			row.Cells["freeze speedup"] = "-"
		}
		fig.Rows = append(fig.Rows, row)
	}
	return fig
}

// timeFreezes measures, on the same graph state, the two ways a commit can
// build its epoch snapshot: a full CSR rebuild and an incremental extension
// of the previous epoch (graph.ExtendFrozen) whose delta is the last ~1% of
// the graph's edges — a large ingest batch. The graph is replayed so the
// pre-delta epoch exists as a real snapshot; both timings are best-of-reps.
func timeFreezes(p *prov.Graph, reps int) (full, incremental time.Duration) {
	src := p.PG()
	rep := difftest.NewReplayer(src)
	ne := src.NumEdges()
	delta := ne / 100
	if delta < 50 {
		delta = 50
	}
	rep.StepEdges(ne - delta)
	prev := rep.Graph().Freeze()
	rep.StepEdges(ne)
	rep.FinishVertices()
	live := rep.Graph()

	for i := 0; i < reps; i++ {
		start := time.Now()
		live.Freeze()
		if d := time.Since(start); i == 0 || d < full {
			full = d
		}
		start = time.Now()
		_, ok := live.ExtendFrozen(prev)
		d := time.Since(start)
		if !ok {
			panic("bench: incremental freeze fell back to a full rebuild")
		}
		if i == 0 || d < incremental {
			incremental = d
		}
	}
	return full, incremental
}
