package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/prov"
	"repro/internal/server"
)

// Server-throughput scenario (panel "srv"): requests/sec of the provd HTTP
// service under N concurrent clients issuing the paper's dominant mixed
// workload — mostly PgSeg queries drawn from a small pool of distinct
// queries (so the LRU cache matters), plus PgSum, Cypher-subset lookups and
// /stats probes. A second series adds a 5% lifecycle-ingest write mix: under
// the epoch-snapshot store the writes commit fresh snapshots while readers
// keep going lock-free, and because the bench writes are disconnected side
// provenance, revalidation carries the cached segments across every commit
// (the mixed hit rate tracks the read-only one). The req/s series is
// recorded into BENCH_provd.json via provbench -record.

// srvWritePctMixed is the ingest share of the mixed series.
const srvWritePctMixed = 5

type srvWorkload struct {
	segBodies [][]byte // distinct segment request payloads
	sumBody   []byte
	queryBody []byte
	ingest    []byte
}

func buildSrvWorkload(p *prov.Graph) srvWorkload {
	var w srvWorkload
	for _, pct := range []int{0, 20, 40, 60, 80} {
		src, dst := gen.QueryAtRank(p, pct)
		w.segBodies = append(w.segBodies, mustJSON(server.SegmentRequest{
			Src: toU32(src), Dst: toU32(dst),
		}))
	}
	s0, d0 := gen.QueryAtRank(p, 0)
	s1, d1 := gen.QueryAtRank(p, 40)
	w.sumBody = mustJSON(server.SummarizeRequest{
		Segments: []server.SegmentSpec{
			{Src: toU32(s0), Dst: toU32(d0)},
			{Src: toU32(s1), Dst: toU32(d1)},
		},
		AggActivity: []string{"command"},
		TypeRadius:  1,
	})
	w.queryBody = mustJSON(server.QueryRequest{Query: "match (e:E) where id(e) in [0, 1, 2, 3] return e"})
	w.ingest = mustJSON(server.IngestRequest{Ops: []server.IngestOp{
		{Op: "run", Agent: "bench", Command: "touch", Outputs: []string{"bench-artifact"}},
	}})
	return w
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}

func toU32(vs []graph.VertexID) []uint32 {
	out := make([]uint32, len(vs))
	for i, v := range vs {
		out[i] = uint32(v)
	}
	return out
}

// post issues one request and drains the response (keep-alive reuse).
func post(client *http.Client, url string, body []byte) error {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}

func get(client *http.Client, url string) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}

// runSrvMix drives total requests through the service from `clients`
// concurrent goroutines and returns throughput plus the segment-cache hit
// rate observed by the store. writePct (0..100) of requests are ingest
// batches.
func runSrvMix(store *server.Store, clients, total, writePct int, w srvWorkload) (reqPerSec, hitRate float64, err error) {
	ts := httptest.NewServer(server.NewServer(store))
	defer ts.Close()
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        clients * 2,
		MaxIdleConnsPerHost: clients * 2,
	}}
	defer client.CloseIdleConnections()

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	perClient := total / clients
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				n := (c*perClient + i) % 100
				var e error
				switch {
				case n < writePct:
					e = post(client, ts.URL+"/ingest", w.ingest)
				case n%10 < 7:
					e = post(client, ts.URL+"/segment", w.segBodies[(c+i)%len(w.segBodies)])
				case n%10 == 7:
					e = post(client, ts.URL+"/summarize", w.sumBody)
				case n%10 == 8:
					e = post(client, ts.URL+"/query", w.queryBody)
				default:
					e = get(client, ts.URL+"/stats")
				}
				if e != nil {
					errs <- e
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case e := <-errs:
		return 0, 0, e
	default:
	}
	st := store.Stats()
	if lookups := st.Cache.Hits + st.Cache.Misses; lookups > 0 {
		hitRate = float64(st.Cache.Hits) / float64(lookups)
	}
	return float64(clients*perClient) / elapsed.Seconds(), hitRate, nil
}

// srvGraphSize returns the Pd size and request count for a scale.
func srvGraphSize(scale Scale) (n, total int) {
	switch scale {
	case ScaleMedium:
		return 10000, 1500
	case ScalePaper:
		return 20000, 4000
	default:
		return 2000, 400
	}
}

// SrvThroughput measures provd requests/sec vs client concurrency.
func SrvThroughput(scale Scale) Figure {
	n, total := srvGraphSize(scale)
	fig := Figure{
		ID:      "srv",
		Caption: fmt.Sprintf("provd throughput vs concurrency (Pd%dk, %d requests)", n/1000, total),
		XLabel:  "clients",
		YLabel:  "requests/sec",
		Series:  []string{"read req/s", "read hit%", "mixed req/s", "mixed hit%"},
	}
	// One shared graph for the read-only series (never mutated; per-cell
	// stores keep cache counters independent). The write mix appends
	// vertices, so it gets a private graph per cell — and neither series
	// uses pdCache, whose graphs other panels share.
	readG := gen.Pd(gen.PdConfig{N: n, Seed: 1})
	w := buildSrvWorkload(readG)
	for _, clients := range []int{1, 2, 4, 8} {
		row := Row{X: fmt.Sprint(clients), Cells: map[string]string{}}
		rps, hit, err := runSrvMix(server.NewStore(readG, 256), clients, total, 0, w)
		fillCells(row.Cells, "read", rps, hit, err)
		writeG := gen.Pd(gen.PdConfig{N: n, Seed: 1})
		rps, hit, err = runSrvMix(server.NewStore(writeG, 256), clients, total, srvWritePctMixed, w)
		fillCells(row.Cells, "mixed", rps, hit, err)
		fig.Rows = append(fig.Rows, row)
	}
	return fig
}

func fillCells(cells map[string]string, prefix string, rps, hit float64, err error) {
	if err != nil {
		cells[prefix+" req/s"], cells[prefix+" hit%"] = "err", err.Error()
		return
	}
	cells[prefix+" req/s"] = fmt.Sprintf("%.0f", rps)
	cells[prefix+" hit%"] = fmt.Sprintf("%.0f%%", hit*100)
}
