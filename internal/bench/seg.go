package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/graph/difftest"
	"repro/internal/prov"
)

// Panel "seg": the VC2 segmentation solvers themselves — the scalar
// worklist algorithms vs the set-at-a-time passes over the CSR bitmap
// kernels (core/simprovvec.go) — on frozen Pd snapshots. This is the layer
// the "vec" panel could not move: after PR 7 vectorized the closures and
// the planner, segmentation runtime was dominated by the per-vertex solver
// worklists and the seg series recorded ~1.0x. Three workloads per size:
// SimProvTst VC2 alone, SimProvAlg VC2 alone (skipped where the scalar
// worklist stops being feasible), and the full PgSeg segmentation with the
// solver forced each way. Before timing each size, the panel asserts the
// solver variants produce identical results — a benchmark of diverging
// solvers would be meaningless.

// timeVC2Best measures one VC2 evaluation under opts, best of reps; ok is
// false when the fact budget trips (rendered "oom", the paper's OOM).
func timeVC2Best(p *prov.Graph, src, dst []graph.VertexID, opts core.Options, reps int) (time.Duration, bool) {
	eng := core.NewEngine(p, opts)
	best := time.Duration(0)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if _, err := eng.SimilarPaths(core.Query{Src: src, Dst: dst}); err != nil {
			return 0, false
		}
		if d := time.Since(start); i == 0 || d < best {
			best = d
		}
	}
	return best, true
}

// cell renders a measured duration ("oom" on a tripped budget).
func cell(d time.Duration, ok bool) string {
	if !ok {
		return "oom"
	}
	return secs(d)
}

// assertSegSolversAgree is the inline row-equality gate. Where the scalar
// SimProvAlg is timed it runs the full four-way solver matrix
// (difftest.DiffSolvers); at sizes beyond the scalar worklist's reach it
// still asserts SimProvTst scalar-vs-vec VC2 equality and whole-segment
// parity with the solver forced each way.
func assertSegSolversAgree(p *prov.Graph, src, dst []graph.VertexID, includeAlg bool) {
	q := core.Query{Src: src, Dst: dst}
	if includeAlg {
		if err := difftest.DiffSolvers(p, q); err != nil {
			panic(fmt.Sprintf("bench seg: solver divergence: %v", err))
		}
		return
	}
	sv, err := core.NewEngine(p, core.Options{Solver: core.SolverTst, ScalarTraversal: true}).SimilarPaths(q)
	if err != nil {
		panic(err)
	}
	vv, err := core.NewEngine(p, core.Options{Solver: core.SolverTst, ForceVecSolver: true}).SimilarPaths(q)
	if err != nil {
		panic(err)
	}
	sl, vl := sv.ToSlice(), vv.ToSlice()
	if len(sl) != len(vl) {
		panic(fmt.Sprintf("bench seg: VC2 size divergence: scalar %d vs vec %d", len(sl), len(vl)))
	}
	for i := range sl {
		if sl[i] != vl[i] {
			panic(fmt.Sprintf("bench seg: VC2 divergence at %d: scalar %d vs vec %d", i, sl[i], vl[i]))
		}
	}
	ss, err := core.NewEngine(p, core.Options{ScalarTraversal: true}).Segment(q)
	if err != nil {
		panic(err)
	}
	vs, err := core.NewEngine(p, core.Options{ForceVecSolver: true}).Segment(q)
	if err != nil {
		panic(err)
	}
	if len(ss.Vertices) != len(vs.Vertices) || len(ss.Edges) != len(vs.Edges) {
		panic(fmt.Sprintf("bench seg: segment divergence: %d/%d vertices, %d/%d edges",
			len(ss.Vertices), len(vs.Vertices), len(ss.Edges), len(vs.Edges)))
	}
	for i := range ss.Vertices {
		if ss.Vertices[i] != vs.Vertices[i] {
			panic(fmt.Sprintf("bench seg: segment vertex divergence at %d", i))
		}
	}
}

// FigSeg compares the scalar and vectorized VC2 solvers across graph sizes.
func FigSeg(scale Scale) Figure {
	var ns []int
	// The scalar SimProvAlg worklist (and the four-way DiffSolvers gate,
	// which runs it without a fact budget) stops being affordable past
	// ~20000 vertices — the same wall Fig. 5a's Alg series hits.
	const algMax = 20000
	maxFacts := 20_000_000
	const reps = 3
	switch scale {
	case ScaleSmall:
		ns = []int{5000, 20000}
	case ScaleMedium:
		ns = []int{20000, 50000, 100000}
		maxFacts = 60_000_000
	default:
		ns = []int{100000, 300000, 1000000}
		maxFacts = 60_000_000
	}
	return figSeg(ns, algMax, maxFacts, reps)
}

// figSeg is the measurement core behind FigSeg, parameterized so the test
// suite can drive the full row loop (including the beyond-algMax skip
// branch) at toy sizes.
func figSeg(ns []int, algMax, maxFacts, reps int) Figure {
	fig := Figure{
		ID:      "seg",
		Caption: "scalar vs vectorized VC2 solvers (frozen Pd snapshots)",
		XLabel:  "N",
		YLabel:  "runtime",
		Series: []string{"tst scalar", "tst vec", "tst speedup",
			"alg scalar", "alg vec", "alg speedup",
			"segment scalar", "segment vec", "segment speedup"},
	}
	speedup := func(scalar, vec time.Duration, ok bool) string {
		if !ok || vec <= 0 {
			return "-"
		}
		return fmt.Sprintf("%.1fx", float64(scalar)/float64(vec))
	}
	for _, n := range ns {
		p := pdGraph(gen.PdConfig{N: n, Seed: 1})
		src, dst := gen.QueryAtRank(p, 0)
		fz := p.Freeze()
		includeAlg := n <= algMax

		assertSegSolversAgree(fz, src, dst, includeAlg)

		row := Row{X: fmt.Sprint(n), Cells: map[string]string{}}
		scalarTst := core.Options{Solver: core.SolverTst, ScalarTraversal: true}
		vecTst := core.Options{Solver: core.SolverTst, ForceVecSolver: true}
		ts, tsOK := timeVC2Best(fz, src, dst, scalarTst, reps)
		tv, tvOK := timeVC2Best(fz, src, dst, vecTst, reps)
		row.Cells["tst scalar"] = cell(ts, tsOK)
		row.Cells["tst vec"] = cell(tv, tvOK)
		row.Cells["tst speedup"] = speedup(ts, tv, tsOK && tvOK)
		vecAlg := core.Options{Solver: core.SolverAlg, ForceVecSolver: true, MaxFacts: maxFacts}
		if includeAlg {
			scalarAlg := core.Options{Solver: core.SolverAlg, ScalarTraversal: true, MaxFacts: maxFacts}
			as, asOK := timeVC2Best(fz, src, dst, scalarAlg, reps)
			av, avOK := timeVC2Best(fz, src, dst, vecAlg, reps)
			row.Cells["alg scalar"] = cell(as, asOK)
			row.Cells["alg vec"] = cell(av, avOK)
			row.Cells["alg speedup"] = speedup(as, av, asOK && avOK)
		} else {
			// The scalar worklist's per-pair churn stops being worth the
			// burn here (Fig. 5a's Alg series dies near this scale).
			row.Cells["alg scalar"] = "skip"
			av, avOK := timeVC2Best(fz, src, dst, vecAlg, 1)
			row.Cells["alg vec"] = cell(av, avOK)
			row.Cells["alg speedup"] = "-"
		}
		segScalar := timeSegmentOpts(fz, src, dst, core.Options{ScalarTraversal: true}, reps)
		segVec := timeSegmentOpts(fz, src, dst, core.Options{ForceVecSolver: true}, reps)
		row.Cells["segment scalar"] = secs(segScalar)
		row.Cells["segment vec"] = secs(segVec)
		row.Cells["segment speedup"] = speedup(segScalar, segVec, true)
		fig.Rows = append(fig.Rows, row)
	}
	return fig
}
