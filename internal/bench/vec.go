package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/cypher"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/graph/difftest"
	"repro/internal/prov"
)

// Panel "vec": the scalar per-vertex traversals vs the vectorized
// frontier-at-a-time engine, on the same frozen epoch snapshot. Three
// workloads: the full PgSeg segmentation, the pure ancestry walk (VC1
// closures, the adjacency-bound kernel the frontier engine rewrites into
// word-parallel row unions), and a both-ends-anchored bounded Cypher
// pattern (the snapshot-aware planner's corridor pruning vs the naive DFS).
// Before timing each size, the panel asserts the two engines produce
// bit-identical results — a benchmark of diverging engines would be
// meaningless.

// timeSegmentOpts measures one full PgSeg evaluation under opts (best of
// reps).
func timeSegmentOpts(p *prov.Graph, src, dst []graph.VertexID, opts core.Options, reps int) time.Duration {
	eng := core.NewEngine(p, opts)
	best := time.Duration(0)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if _, err := eng.Segment(core.Query{Src: src, Dst: dst}); err != nil {
			panic(err)
		}
		if d := time.Since(start); i == 0 || d < best {
			best = d
		}
	}
	return best
}

// timeWalkOpts measures one VC1 ancestry pass under opts, averaged over
// iters.
func timeWalkOpts(p *prov.Graph, src, dst []graph.VertexID, opts core.Options, iters int) time.Duration {
	eng := core.NewEngine(p, opts)
	start := time.Now()
	for i := 0; i < iters; i++ {
		eng.AncestryClosure(dst, core.Boundary{}, true)
		eng.AncestryClosure(src, core.Boundary{}, false)
	}
	return time.Since(start) / time.Duration(iters)
}

// vecCypherQuery renders the panel's anchored corridor pattern: all bounded
// lineage walks descending from entity b down to entity e. The naive DFS
// enumerates every edge-distinct walk in b's 8-hop cone; the planner's
// backward sweep from e prunes branches to the b—e corridor (and proves
// disconnected pairs empty without enumerating at all), turning exponential
// walk counts into linear frontier sweeps.
func vecCypherQuery(b, e graph.VertexID) string {
	return fmt.Sprintf("match p=(b:E)<-[:U|G*1..8]-(e:E) where id(b) in [%d] and id(e) in [%d] return p", b, e)
}

// timeCypherOpts measures the corridor pattern over the query pairs under
// opts (best of reps across the whole mix).
func timeCypherOpts(p *prov.Graph, src, dst []graph.VertexID, opts cypher.Options, reps int) time.Duration {
	best := time.Duration(0)
	for i := 0; i < reps; i++ {
		start := time.Now()
		for _, b := range src {
			for _, e := range dst {
				if _, err := cypher.NewProvEvaluator(p, opts).Run(vecCypherQuery(b, e)); err != nil {
					panic(err)
				}
			}
		}
		if d := time.Since(start); i == 0 || d < best {
			best = d
		}
	}
	return best
}

// assertVecEqualsScalar diffs the engines on the panel's workloads before
// any timing.
func assertVecEqualsScalar(p *prov.Graph, src, dst []graph.VertexID) {
	q := core.Query{Src: src, Dst: dst}
	if err := difftest.DiffVecScalar(p, q); err != nil {
		panic(fmt.Sprintf("bench vec: segment divergence: %v", err))
	}
	if err := difftest.DiffClosures(p, q); err != nil {
		panic(fmt.Sprintf("bench vec: closure divergence: %v", err))
	}
	for _, b := range src {
		for _, e := range dst {
			qs := vecCypherQuery(b, e)
			planned, perr := cypher.NewProvEvaluator(p, cypher.Options{}).Run(qs)
			naive, nerr := cypher.NewProvEvaluator(p, cypher.Options{NoPlanner: true}).Run(qs)
			if (perr == nil) != (nerr == nil) {
				panic(fmt.Sprintf("bench vec: cypher error divergence: %v vs %v", perr, nerr))
			}
			if perr != nil {
				continue
			}
			if len(planned.Rows) != len(naive.Rows) {
				panic(fmt.Sprintf("bench vec: cypher row divergence on %q: %d vs %d",
					qs, len(planned.Rows), len(naive.Rows)))
			}
			for i := range planned.Rows {
				for j := range planned.Rows[i] {
					if planned.Rows[i][j].String() != naive.Rows[i][j].String() {
						panic(fmt.Sprintf("bench vec: cypher cell divergence on %q at row %d", qs, i))
					}
				}
			}
		}
	}
}

// FigVec compares the scalar and vectorized engines across graph sizes.
func FigVec(scale Scale) Figure {
	var ns []int
	switch scale {
	case ScaleSmall:
		ns = []int{5000, 20000}
	case ScaleMedium:
		ns = []int{50000, 100000}
	default:
		ns = []int{100000, 300000, 1000000}
	}
	fig := Figure{
		ID:      "vec",
		Caption: "scalar vs vectorized frontier engine (frozen Pd snapshots)",
		XLabel:  "N",
		YLabel:  "runtime",
		Series: []string{"seg scalar", "seg vec", "seg speedup",
			"walk scalar", "walk vec", "walk speedup",
			"cypher naive", "cypher planned", "cypher speedup"},
	}
	const reps = 3
	speedup := func(scalar, vec time.Duration) string {
		if vec <= 0 {
			return "-"
		}
		return fmt.Sprintf("%.1fx", float64(scalar)/float64(vec))
	}
	for _, n := range ns {
		p := pdGraph(gen.PdConfig{N: n, Seed: 1})
		src, dst := gen.QueryAtRank(p, 0)
		fz := p.Freeze()

		assertVecEqualsScalar(fz, src, dst)

		iters := 2_000_000/n + 1
		scalarOpts := core.Options{ScalarTraversal: true}
		segScalar := timeSegmentOpts(fz, src, dst, scalarOpts, reps)
		segVec := timeSegmentOpts(fz, src, dst, core.Options{}, reps)
		walkScalar := timeWalkOpts(fz, src, dst, scalarOpts, iters)
		walkVec := timeWalkOpts(fz, src, dst, core.Options{}, iters)
		cyNaive := timeCypherOpts(fz, src, dst, cypher.Options{NoPlanner: true}, reps)
		cyPlanned := timeCypherOpts(fz, src, dst, cypher.Options{}, reps)

		fig.Rows = append(fig.Rows, Row{X: fmt.Sprint(n), Cells: map[string]string{
			"seg scalar":     secs(segScalar),
			"seg vec":        secs(segVec),
			"seg speedup":    speedup(segScalar, segVec),
			"walk scalar":    secs(walkScalar),
			"walk vec":       secs(walkVec),
			"walk speedup":   speedup(walkScalar, walkVec),
			"cypher naive":   secs(cyNaive),
			"cypher planned": secs(cyPlanned),
			"cypher speedup": speedup(cyNaive, cyPlanned),
		}})
	}
	return fig
}
