package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"time"
)

// Persisted benchmark history (BENCH_provd.json): the serving-layer panels
// ("srv" throughput, "csr" adjacency comparison) are re-measured every PR
// and appended here so the performance trajectory survives across PRs. The
// file maps figure id -> run entries, newest last.

// BenchEntry is one recorded run of a figure.
type BenchEntry struct {
	Time   string     `json:"time"`
	Scale  string     `json:"scale"`
	Series []string   `json:"series"`
	Rows   []BenchRow `json:"rows"`
}

// BenchRow mirrors one figure row: the x-axis point and its per-series
// cells.
type BenchRow struct {
	X     string            `json:"x"`
	Cells map[string]string `json:"cells"`
}

// RecordFigure appends one measured figure to the history file at path,
// creating it if absent. The file is a JSON object keyed by figure id.
func RecordFigure(path string, fig Figure, scale Scale) error {
	hist := map[string][]BenchEntry{}
	raw, err := os.ReadFile(path)
	switch {
	case err == nil:
		if err := json.Unmarshal(raw, &hist); err != nil {
			return fmt.Errorf("bench: corrupt history %s: %w", path, err)
		}
	case errors.Is(err, fs.ErrNotExist):
		// first run: start a fresh history
	default:
		return err
	}

	entry := BenchEntry{
		Time:   time.Now().UTC().Format(time.RFC3339),
		Scale:  string(scale),
		Series: fig.Series,
	}
	for _, r := range fig.Rows {
		entry.Rows = append(entry.Rows, BenchRow{X: r.X, Cells: r.Cells})
	}
	hist[fig.ID] = append(hist[fig.ID], entry)

	out, err := json.MarshalIndent(hist, "", "  ")
	if err != nil {
		return err
	}
	// Write-then-rename so an interrupted run can never leave a truncated
	// history behind (a corrupt file blocks all future recording).
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(out, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
