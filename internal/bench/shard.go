package bench

import (
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/prov"
	"repro/internal/server"
	"repro/internal/wal"
)

// Sharded-ingest scenario (panel "shard"): aggregate durable-ingest
// throughput of provd's store registry as the writer pool fans out over 1,
// 2 and 4 named stores, with the WAL group-commit path on and off. Two
// effects stack:
//
//   - group commit: concurrent batches on ONE store share a single fsync
//     instead of paying one each, so per-shard throughput rises with writer
//     concurrency (the acceptance bar is >=1.5x over fsync-per-batch at >=8
//     writers);
//   - sharding: stores fsync independently, so aggregate throughput scales
//     again as the same writers spread across more shards.
//
// The batches/sec series are recorded into BENCH_provd.json via
// provbench -record.

// shardWorkload returns the writer pool size and total batch count.
func shardWorkload(scale Scale) (writers, total int) {
	switch scale {
	case ScaleMedium:
		return 16, 1280
	case ScalePaper:
		return 32, 3200
	default:
		return 8, 480
	}
}

// runShardIngest drives total single-op ingest batches from `writers`
// concurrent goroutines round-robined across nStores durable stores and
// returns aggregate committed batches/sec. noCoalesce disables the
// registry's device-level fsync coalescer (meaningful only with group
// commit on).
func runShardIngest(nStores, writers, total int, groupCommit, noCoalesce bool) (float64, error) {
	dir, err := os.MkdirTemp("", "provbench-shard-")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	var extra []string
	for i := 1; i < nStores; i++ {
		extra = append(extra, fmt.Sprintf("s%d", i))
	}
	reg, _, err := server.OpenRegistry(server.RegistryOptions{
		DataDir:         dir,
		Fsync:           wal.SyncAlways,
		CheckpointEvery: 1 << 30, // keep checkpoint cost out of the series
		CacheCap:        16,
		NoGroupCommit:   !groupCommit,
		NoCoalesce:      noCoalesce,
	}, extra, nil)
	if err != nil {
		return 0, err
	}
	defer reg.Close()
	names := reg.Names()
	stores := make([]*server.Store, nStores)
	for i, name := range names {
		if stores[i], err = reg.Get(name); err != nil {
			return 0, err
		}
	}

	perWriter := total / writers
	// One warm-up pass (~10% of the load, untimed) settles the directory's
	// metadata and the page cache so the timed series isn't skewed by
	// whichever panel ran before this one.
	warmup := perWriter / 10
	if warmup < 2 {
		warmup = 2
	}
	run := func(rounds int, tag string) error {
		var wg sync.WaitGroup
		errs := make(chan error, writers)
		for w := 0; w < writers; w++ {
			w := w
			st := stores[w%nStores] // writers spread across shards
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < rounds; i++ {
					err := st.Update(func(rec *prov.Recorder) error {
						rec.Snapshot(fmt.Sprintf("b%s-%d-%d", tag, w, i))
						return nil
					})
					if err != nil {
						errs <- err
						return
					}
				}
			}()
		}
		wg.Wait()
		select {
		case err := <-errs:
			return err
		default:
			return nil
		}
	}
	if err := run(warmup, "w"); err != nil {
		return 0, err
	}
	start := time.Now()
	if err := run(perWriter, ""); err != nil {
		return 0, err
	}
	return float64(writers*perWriter) / time.Since(start).Seconds(), nil
}

// FigShard measures aggregate durable ingest throughput vs shard count,
// group commit on vs off.
func FigShard(scale Scale) Figure {
	writers, total := shardWorkload(scale)
	fig := Figure{
		ID: "shard",
		Caption: fmt.Sprintf("sharded ingest: aggregate batches/sec, %d writers, %d batches (fsync=always)",
			writers, total),
		XLabel: "stores",
		YLabel: "batches/sec",
		Series: []string{"group b/s", "per-batch b/s", "speedup"},
	}
	for _, n := range []int{1, 2, 4} {
		row := Row{X: fmt.Sprint(n), Cells: map[string]string{}}
		grp, errG := runShardIngest(n, writers, total, true, false)
		solo, errS := runShardIngest(n, writers, total, false, false)
		switch {
		case errG != nil:
			row.Cells["group b/s"], row.Cells["speedup"] = "err", errG.Error()
		case errS != nil:
			row.Cells["per-batch b/s"], row.Cells["speedup"] = "err", errS.Error()
		default:
			row.Cells["group b/s"] = fmt.Sprintf("%.0f", grp)
			row.Cells["per-batch b/s"] = fmt.Sprintf("%.0f", solo)
			row.Cells["speedup"] = fmt.Sprintf("%.2fx", grp/solo)
		}
		fig.Rows = append(fig.Rows, row)
	}
	return fig
}
