// Package bench regenerates every panel of the paper's Fig. 5 (the whole
// experimental evaluation) as text series: runtimes of the PgSeg solvers
// over the Pd workloads (panels a-d) and compaction ratios of PgSum vs the
// pSum baseline over the Sd workloads (panels e-h).
//
// Absolute numbers depend on the host; the reproduction targets the shape:
// which algorithm wins, by roughly what factor, and how each curve moves
// with its parameter. EXPERIMENTS.md records paper-vs-measured values.
package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/bitmap"
	"repro/internal/core"
	"repro/internal/cypher"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/prov"
	"repro/internal/psum"
)

// Scale selects experiment sizes.
type Scale string

// Scales.
const (
	// ScaleSmall finishes in seconds (CI-friendly).
	ScaleSmall Scale = "small"
	// ScaleMedium finishes in a few minutes.
	ScaleMedium Scale = "medium"
	// ScalePaper approaches the paper's sizes (up to Pd100k; needs memory
	// comparable to the paper's 16 GB machine).
	ScalePaper Scale = "paper"
)

// Figure is one rendered experiment panel.
type Figure struct {
	ID      string
	Caption string
	XLabel  string
	YLabel  string
	Series  []string
	Rows    []Row
}

// Row is one x-axis point with one formatted cell per series.
type Row struct {
	X     string
	Cells map[string]string
}

// Render prints the figure as an aligned text table.
func (f Figure) Render(w io.Writer) {
	fmt.Fprintf(w, "== Fig %s: %s ==\n", f.ID, f.Caption)
	fmt.Fprintf(w, "x-axis: %s; y-axis: %s\n", f.XLabel, f.YLabel)
	widths := make([]int, len(f.Series)+1)
	widths[0] = len(f.XLabel)
	for _, r := range f.Rows {
		if len(r.X) > widths[0] {
			widths[0] = len(r.X)
		}
	}
	for i, s := range f.Series {
		widths[i+1] = len(s)
		for _, r := range f.Rows {
			if len(r.Cells[s]) > widths[i+1] {
				widths[i+1] = len(r.Cells[s])
			}
		}
	}
	fmt.Fprintf(w, "%-*s", widths[0]+2, f.XLabel)
	for i, s := range f.Series {
		fmt.Fprintf(w, "%*s", widths[i+1]+2, s)
	}
	fmt.Fprintln(w)
	for _, r := range f.Rows {
		fmt.Fprintf(w, "%-*s", widths[0]+2, r.X)
		for i, s := range f.Series {
			fmt.Fprintf(w, "%*s", widths[i+1]+2, r.Cells[s])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// secs formats a duration in seconds with sensible precision.
func secs(d time.Duration) string {
	s := d.Seconds()
	switch {
	case s < 0.01:
		return fmt.Sprintf("%.4fs", s)
	case s < 1:
		return fmt.Sprintf("%.3fs", s)
	default:
		return fmt.Sprintf("%.2fs", s)
	}
}

// timeVC2 measures one VC2 evaluation; it returns a note instead of a time
// when the solver exhausts its fact budget (the paper's OOM).
func timeVC2(p *prov.Graph, src, dst []graph.VertexID, opts core.Options) string {
	eng := core.NewEngine(p, opts)
	start := time.Now()
	_, err := eng.SimilarPaths(core.Query{Src: src, Dst: dst})
	if err != nil {
		return "oom"
	}
	return secs(time.Since(start))
}

// pdCache avoids regenerating identical Pd graphs across panels.
var pdCache = map[string]*prov.Graph{}

func pdGraph(cfg gen.PdConfig) *prov.Graph {
	key := fmt.Sprintf("%+v", cfg)
	if g, ok := pdCache[key]; ok {
		return g
	}
	g := gen.Pd(cfg)
	pdCache[key] = g
	return g
}

// solverSet describes one plotted algorithm configuration.
type solverSet struct {
	name string
	opts core.Options
}

func stdSolvers(withCbm bool, maxFacts int) []solverSet {
	out := []solverSet{
		{name: "CflrB", opts: core.Options{Solver: core.SolverCflrB, MaxFacts: maxFacts}},
		{name: "SimProvAlg", opts: core.Options{Solver: core.SolverAlg, MaxFacts: maxFacts}},
		{name: "SimProvTst", opts: core.Options{Solver: core.SolverTst}},
	}
	if withCbm {
		out = append(out,
			solverSet{name: "SimProvAlg+Cbm", opts: core.Options{Solver: core.SolverAlg, Sets: bitmap.RoaringFactory, MaxFacts: maxFacts}},
			solverSet{name: "SimProvTst+Cbm", opts: core.Options{Solver: core.SolverTst, Sets: bitmap.RoaringFactory}},
		)
	}
	return out
}

// Fig5a: PgSeg runtime vs graph size N, all algorithms plus the Cypher
// baseline (which only completes on tiny graphs).
func Fig5a(scale Scale) Figure {
	var ns []int
	cypherTimeout := 10 * time.Second
	maxFacts := 20_000_000
	switch scale {
	case ScaleSmall:
		ns = []int{50, 100, 1000, 5000}
	case ScaleMedium:
		ns = []int{50, 100, 1000, 10000, 20000}
	default:
		ns = []int{100, 1000, 10000, 50000, 100000}
		cypherTimeout = 60 * time.Second
		maxFacts = 60_000_000
	}
	solvers := stdSolvers(true, maxFacts)
	fig := Figure{
		ID:      "5a",
		Caption: "PgSeg runtime vs graph size N (Pd graphs)",
		XLabel:  "N",
		YLabel:  "runtime",
		Series:  append([]string{"Cypher"}, names(solvers)...),
	}
	for _, n := range ns {
		p := pdGraph(gen.PdConfig{N: n, Seed: 1})
		src, dst := gen.DefaultQuery(p)
		row := Row{X: fmt.Sprint(n), Cells: map[string]string{}}
		// Cypher baseline: attempt only on tiny graphs, as the paper found
		// it needs >12h beyond ~100 vertices.
		if n <= 1000 {
			start := time.Now()
			_, err := cypher.CypherVC2(p, src, dst, cypher.Options{Timeout: cypherTimeout})
			if err != nil {
				row.Cells["Cypher"] = fmt.Sprintf(">%s", cypherTimeout)
			} else {
				row.Cells["Cypher"] = secs(time.Since(start))
			}
		} else {
			row.Cells["Cypher"] = "skip(>12h)"
		}
		for _, s := range solvers {
			// CflrB exhausts memory at Pd50k in the paper; its fact budget
			// trips long before that here, so skip the pointless burn.
			// SimProvAlg runs with its budget and reports "oom" if it trips
			// (the paper's Alg without Cbm dies at Pd100k).
			if n > 20000 && s.opts.Solver == core.SolverCflrB {
				row.Cells[s.name] = "oom"
				continue
			}
			if n > 20000 && s.opts.Solver == core.SolverAlg && scale != ScalePaper {
				row.Cells[s.name] = "skip"
				continue
			}
			row.Cells[s.name] = timeVC2(p, src, dst, s.opts)
		}
		fig.Rows = append(fig.Rows, row)
	}
	return fig
}

func names(ss []solverSet) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.name
	}
	return out
}

// Fig5b: runtime vs input-selection skew se.
func Fig5b(scale Scale) Figure {
	n := 10000
	if scale == ScaleSmall {
		n = 2000
	}
	fig := Figure{
		ID:      "5b",
		Caption: fmt.Sprintf("PgSeg runtime vs selection skew se (Pd%dk)", n/1000),
		XLabel:  "se",
		YLabel:  "runtime",
	}
	solvers := stdSolvers(false, 20_000_000)
	fig.Series = names(solvers)
	for _, se := range []float64{1.1, 1.3, 1.5, 1.7, 1.9, 2.1} {
		p := pdGraph(gen.PdConfig{N: n, SelectSkew: se, Seed: 1})
		src, dst := gen.DefaultQuery(p)
		row := Row{X: fmt.Sprintf("%.1f", se), Cells: map[string]string{}}
		for _, s := range solvers {
			row.Cells[s.name] = timeVC2(p, src, dst, s.opts)
		}
		fig.Rows = append(fig.Rows, row)
	}
	return fig
}

// Fig5c: runtime vs activity input mean lambda_i.
func Fig5c(scale Scale) Figure {
	n := 10000
	if scale == ScaleSmall {
		n = 2000
	}
	fig := Figure{
		ID:      "5c",
		Caption: fmt.Sprintf("PgSeg runtime vs activity input mean lambda_i (Pd%dk)", n/1000),
		XLabel:  "lambda_i",
		YLabel:  "runtime",
	}
	solvers := stdSolvers(false, 20_000_000)
	fig.Series = names(solvers)
	for _, li := range []float64{1, 2, 3, 4, 5} {
		p := pdGraph(gen.PdConfig{N: n, LambdaIn: li, Seed: 1})
		src, dst := gen.DefaultQuery(p)
		row := Row{X: fmt.Sprintf("%.0f", li), Cells: map[string]string{}}
		for _, s := range solvers {
			row.Cells[s.name] = timeVC2(p, src, dst, s.opts)
		}
		fig.Rows = append(fig.Rows, row)
	}
	return fig
}

// Fig5d: effectiveness of temporal early stopping — runtime vs the
// percentile rank of the source entities.
func Fig5d(scale Scale) Figure {
	n := 50000
	switch scale {
	case ScaleSmall:
		n = 5000
	case ScaleMedium:
		n = 10000
	}
	fig := Figure{
		ID:      "5d",
		Caption: fmt.Sprintf("early stopping: runtime vs Vsrc start rank (Pd%dk)", n/1000),
		XLabel:  "rank%",
		YLabel:  "runtime",
		Series:  []string{"SimProvAlg", "Alg w/o Prune", "SimProvTst", "Tst w/o Prune"},
	}
	p := pdGraph(gen.PdConfig{N: n, Seed: 1})
	for _, pct := range []int{0, 20, 40, 60, 80} {
		src, dst := gen.QueryAtRank(p, pct)
		row := Row{X: fmt.Sprint(pct), Cells: map[string]string{}}
		row.Cells["SimProvAlg"] = timeVC2(p, src, dst, core.Options{Solver: core.SolverAlg, MaxFacts: 60_000_000})
		row.Cells["Alg w/o Prune"] = timeVC2(p, src, dst, core.Options{Solver: core.SolverAlg, NoEarlyStop: true, MaxFacts: 60_000_000})
		row.Cells["SimProvTst"] = timeVC2(p, src, dst, core.Options{Solver: core.SolverTst})
		row.Cells["Tst w/o Prune"] = timeVC2(p, src, dst, core.Options{Solver: core.SolverTst, NoEarlyStop: true})
		fig.Rows = append(fig.Rows, row)
	}
	return fig
}

// crPoint runs PgSum and pSum over one Sd configuration, averaged over
// seeds.
func crPoint(cfg gen.SdConfig, seeds int) (pg, ps float64) {
	for s := 0; s < seeds; s++ {
		cfg.Seed = int64(s + 1)
		_, segs := gen.Sd(cfg)
		psg, err := core.Summarize(segs, gen.SdSumOptions())
		if err != nil {
			panic(err)
		}
		pg += psg.CompactionRatio()
		ps += psum.Summarize(segs, psum.Options{K: gen.SdSumOptions().K}).CompactionRatio()
	}
	return pg / float64(seeds), ps / float64(seeds)
}

func crFigure(id, caption, xlabel string, xs []string, cfgs []gen.SdConfig, seeds int) Figure {
	fig := Figure{
		ID: id, Caption: caption, XLabel: xlabel, YLabel: "compaction ratio",
		Series: []string{"PgSum", "pSum"},
	}
	for i, cfg := range cfgs {
		pg, ps := crPoint(cfg, seeds)
		fig.Rows = append(fig.Rows, Row{X: xs[i], Cells: map[string]string{
			"PgSum": fmt.Sprintf("%.3f", pg),
			"pSum":  fmt.Sprintf("%.3f", ps),
		}})
	}
	return fig
}

func crSeeds(scale Scale) int {
	if scale == ScaleSmall {
		return 2
	}
	return 5
}

// Fig5e: compaction ratio vs transition concentration alpha.
func Fig5e(scale Scale) Figure {
	alphas := []float64{0.025, 0.05, 0.1, 0.25, 0.5, 1}
	var cfgs []gen.SdConfig
	var xs []string
	for _, a := range alphas {
		cfgs = append(cfgs, gen.SdConfig{Alpha: a})
		xs = append(xs, fmt.Sprintf("%g", a))
	}
	return crFigure("5e", "compaction ratio vs concentration alpha (k=5, n=20, |S|=10)", "alpha", xs, cfgs, crSeeds(scale))
}

// Fig5f: compaction ratio vs number of activity types k.
func Fig5f(scale Scale) Figure {
	ks := []int{3, 5, 10, 15, 20, 25}
	var cfgs []gen.SdConfig
	var xs []string
	for _, k := range ks {
		cfgs = append(cfgs, gen.SdConfig{States: k})
		xs = append(xs, fmt.Sprint(k))
	}
	return crFigure("5f", "compaction ratio vs activity types k (alpha=0.1, n=20, |S|=10)", "k", xs, cfgs, crSeeds(scale))
}

// Fig5g: compaction ratio vs segment size n.
func Fig5g(scale Scale) Figure {
	nsz := []int{5, 10, 20, 30, 40, 50}
	var cfgs []gen.SdConfig
	var xs []string
	for _, n := range nsz {
		cfgs = append(cfgs, gen.SdConfig{Activities: n})
		xs = append(xs, fmt.Sprint(n))
	}
	return crFigure("5g", "compaction ratio vs segment size n (alpha=0.1, k=5, |S|=10)", "n", xs, cfgs, crSeeds(scale))
}

// Fig5h: compaction ratio vs number of segments |S| (alpha=0.25).
func Fig5h(scale Scale) Figure {
	sizes := []int{5, 10, 20, 30, 40}
	var cfgs []gen.SdConfig
	var xs []string
	for _, s := range sizes {
		cfgs = append(cfgs, gen.SdConfig{Alpha: 0.25, Segments: s})
		xs = append(xs, fmt.Sprint(s))
	}
	return crFigure("5h", "compaction ratio vs segment count |S| (alpha=0.25, k=5, n=20)", "|S|", xs, cfgs, crSeeds(scale))
}

// All runs every panel at the given scale.
func All(scale Scale) []Figure {
	return []Figure{
		Fig5a(scale), Fig5b(scale), Fig5c(scale), Fig5d(scale),
		Fig5e(scale), Fig5f(scale), Fig5g(scale), Fig5h(scale),
		FigCSR(scale), FigVec(scale), FigSeg(scale), SrvThroughput(scale),
		FigShard(scale), FigQoS(scale), FigRepl(scale),
	}
}

// ByID returns one panel by id ("5a".."5h", "csr", "vec", "seg", "srv",
// "shard", "qos", "repl").
func ByID(id string, scale Scale) (Figure, bool) {
	fns := map[string]func(Scale) Figure{
		"5a": Fig5a, "5b": Fig5b, "5c": Fig5c, "5d": Fig5d,
		"5e": Fig5e, "5f": Fig5f, "5g": Fig5g, "5h": Fig5h,
		"csr": FigCSR, "vec": FigVec, "seg": FigSeg, "srv": SrvThroughput,
		"shard": FigShard, "qos": FigQoS, "repl": FigRepl,
	}
	fn, ok := fns[id]
	if !ok {
		return Figure{}, false
	}
	return fn(scale), true
}

// IDs lists the available panel ids.
func IDs() []string {
	out := []string{"5a", "5b", "5c", "5d", "5e", "5f", "5g", "5h", "csr", "vec", "seg", "srv", "shard", "qos", "repl"}
	sort.Strings(out)
	return out
}
