package bench

import (
	"fmt"
	"net/http/httptest"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/prov"
	"repro/internal/server"
)

// Replication scenario (panel "repl"): a leader under sustained multi-writer
// ingest with a follower tailing its wal stream over real HTTP. Per writer
// count the row reports the leader's commit throughput, the follower's apply
// throughput (total epochs over the time from first commit to the follower
// catching up), the per-record publish-to-apply lag p50/p99 from the
// follower's repl panel, and the record lag left when the writers stop —
// which must be zero once WaitEpoch returns. Recorded into BENCH_provd.json
// via provbench -record.

// replWorkload returns batches per writer for a scale.
func replWorkload(scale Scale) int {
	switch scale {
	case ScaleMedium:
		return 600
	case ScalePaper:
		return 1500
	default:
		return 200
	}
}

// replCatchUp bounds how long the follower may trail the last commit.
const replCatchUp = 60 * time.Second

// runRepl drives writers*perWriter commits into a memory-only leader while
// one follower registry replicates it, and measures both sides.
func runRepl(writers, perWriter int) (commitPerSec, applyPerSec float64, lag obs.LatencySummary, lagRecords int64, err error) {
	leader := server.NewStore(prov.New(), 16)
	defer leader.Close()
	// Enable the hub before the first commit so the whole run streams as
	// deltas rather than opening with a checkpoint re-seed.
	leader.EnableRepl()
	ts := httptest.NewServer(server.NewServer(leader))
	defer func() {
		// Sever the follower's live stream first: Close alone waits for the
		// tailing wal handler, which only returns when its client goes away.
		ts.CloseClientConnections()
		ts.Close()
	}()

	fr, err := server.OpenFollower(server.FollowerOptions{
		LeaderURL:        ts.URL,
		CacheCap:         16,
		PollInterval:     time.Hour, // single store; discovery noise off
		ReconnectBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		return 0, 0, lag, 0, err
	}
	defer fr.Close()
	fst, err := fr.Get(server.DefaultStore)
	if err != nil {
		return 0, 0, lag, 0, err
	}

	total := uint64(writers * perWriter)
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := leader.Update(func(rec *prov.Recorder) error {
					rec.Snapshot(fmt.Sprintf("w%d-%d", w, i))
					return nil
				}); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	commitElapsed := time.Since(start)
	select {
	case err := <-errs:
		return 0, 0, lag, 0, err
	default:
	}

	if !fst.WaitEpoch(total, replCatchUp) {
		return 0, 0, lag, 0, fmt.Errorf("follower stuck at epoch %d of %d", fst.Epoch().N, total)
	}
	applyElapsed := time.Since(start)

	rs := fst.ReplStatsSnapshot()
	if rs == nil {
		return 0, 0, lag, 0, fmt.Errorf("follower store has no repl panel")
	}
	return float64(total) / commitElapsed.Seconds(),
		float64(total) / applyElapsed.Seconds(),
		rs.Lag, rs.LagRecords, nil
}

// FigRepl measures follower apply throughput and replication lag against
// leader commit throughput as writer concurrency grows.
func FigRepl(scale Scale) Figure {
	perWriter := replWorkload(scale)
	fig := Figure{
		ID:      "repl",
		Caption: fmt.Sprintf("replication: follower apply throughput and lag vs leader ingest (%d batches/writer)", perWriter),
		XLabel:  "writers",
		YLabel:  "batches/sec | lag",
		Series:  []string{"commit/s", "apply/s", "lag p50", "lag p99", "residual"},
	}
	for _, writers := range []int{1, 4, 8} {
		row := Row{X: fmt.Sprint(writers), Cells: map[string]string{}}
		commit, apply, lag, residual, err := runRepl(writers, perWriter)
		if err != nil {
			row.Cells["commit/s"] = "err: " + err.Error()
		} else {
			row.Cells["commit/s"] = fmt.Sprintf("%.0f", commit)
			row.Cells["apply/s"] = fmt.Sprintf("%.0f", apply)
			row.Cells["lag p50"] = time.Duration(lag.P50Nanos).Round(10 * time.Microsecond).String()
			row.Cells["lag p99"] = time.Duration(lag.P99Nanos).Round(10 * time.Microsecond).String()
			row.Cells["residual"] = fmt.Sprintf("%d rec", residual)
		}
		fig.Rows = append(fig.Rows, row)
	}
	return fig
}
