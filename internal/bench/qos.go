package bench

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/prov"
	"repro/internal/server"
	"repro/internal/wal"
)

// QoS scenario (panel "qos"): the two halves of the multi-store
// group-commit fix, measured back to back.
//
//  1. Device-level fsync coalescing. With several stores ingesting at
//     once, per-store group commit still pays one fsync per store per
//     window and the device serializes them. The registry's coalescer
//     folds every store's staged window into one device flush. The rows
//     compare 4-store/8-writer aggregate throughput for coalesced group
//     commit, private-fsync group commit (-no-coalesce) and
//     fsync-per-batch; the acceptance bar is coalesced >= 1.5x over
//     per-batch.
//
//  2. Hot-neighbor isolation. A cold store sharing the device with hot
//     stores sees its commit latency inflated by the neighbors' flush
//     traffic. The rows report the cold store's commit p99 with the hot
//     stores unthrottled vs rate-limited through the same Admit() gate
//     the HTTP layer uses; the bar is a >= 5x p99 reduction. The run
//     uses private per-store fsyncs (-no-coalesce) — the adversarial
//     regime the issue describes — so the panel isolates what admission
//     control alone buys.
//
// Recorded into BENCH_provd.json via provbench -record.

// qosWorkload returns the hot-neighbor shape: hot store count, writers
// per hot store, timed cold-store samples, and the per-hot-store rate
// limit (ops/sec) applied in the QoS run. The sample count matters: p99
// over a few hundred samples is a single host-I/O hiccup away from the
// maximum, so every scale takes at least 500 to keep the estimate stable.
func qosWorkload(scale Scale) (hotStores, hotWriters, coldSamples int, rate float64) {
	switch scale {
	case ScaleMedium:
		return 10, 3, 800, 2
	case ScalePaper:
		return 10, 4, 1500, 2
	default:
		return 10, 3, 500, 2
	}
}

const coldWarmup = 20

// runHotNeighbor measures the cold store's durable-commit p99 while
// hotStores*hotWriters goroutines hammer the hot stores. rate > 0
// applies a per-hot-store token-bucket limit; rejected writers sleep out
// (a capped slice of) the advertised retry delay, exactly as a polite
// HTTP client would on a 429.
func runHotNeighbor(hotStores, hotWriters, coldSamples int, rate float64) (time.Duration, error) {
	dir, err := os.MkdirTemp("", "provbench-qos-")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	extra := []string{"cold"}
	for i := 0; i < hotStores; i++ {
		extra = append(extra, fmt.Sprintf("h%d", i))
	}
	reg, _, err := server.OpenRegistry(server.RegistryOptions{
		DataDir:         dir,
		Fsync:           wal.SyncAlways,
		CheckpointEvery: 1 << 30,
		CacheCap:        16,
		NoCoalesce:      true, // private fsyncs: the contended regime under test
	}, extra, nil)
	if err != nil {
		return 0, err
	}
	defer reg.Close()
	cold, err := reg.Get("cold")
	if err != nil {
		return 0, err
	}
	hots := make([]*server.Store, hotStores)
	for i := range hots {
		if hots[i], err = reg.Get(fmt.Sprintf("h%d", i)); err != nil {
			return 0, err
		}
		if rate > 0 {
			if err := hots[i].SetQoS(server.QoSConfig{RatePerSec: rate, Burst: 1}); err != nil {
				return 0, err
			}
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for hi, st := range hots {
		for w := 0; w < hotWriters; w++ {
			hi, w, st := hi, w, st
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					release, retry, ok := st.Admit()
					if !ok {
						if retry > 5*time.Millisecond {
							retry = 5 * time.Millisecond
						}
						time.Sleep(retry)
						continue
					}
					err := st.Update(func(rec *prov.Recorder) error {
						rec.Snapshot(fmt.Sprintf("h%d-%d-%d", hi, w, i))
						return nil
					})
					release()
					if err != nil {
						return
					}
				}
			}()
		}
	}

	lat := make([]time.Duration, 0, coldSamples)
	for i := 0; i < coldWarmup+coldSamples; i++ {
		t0 := time.Now()
		err := cold.Update(func(rec *prov.Recorder) error {
			rec.Snapshot(fmt.Sprintf("c-%d", i))
			return nil
		})
		if err != nil {
			close(stop)
			wg.Wait()
			return 0, err
		}
		if i >= coldWarmup {
			lat = append(lat, time.Since(t0))
		}
		time.Sleep(time.Millisecond) // cold store trickles; hot stores saturate
	}
	close(stop)
	wg.Wait()
	sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
	return lat[len(lat)*99/100], nil
}

// FigQoS measures the device-level coalescer's multi-store speedup and
// the cold-store tail-latency isolation bought by per-store admission
// control.
func FigQoS(scale Scale) Figure {
	writers, total := shardWorkload(scale)
	hotStores, hotWriters, coldSamples, rate := qosWorkload(scale)
	const nStores = 4
	fig := Figure{
		ID: "qos",
		Caption: fmt.Sprintf(
			"qos: %d-store/%d-writer coalesced ingest + hot-neighbor cold-store p99 (%d hot stores x %d writers, limit %.0f/s)",
			nStores, writers, hotStores, hotWriters, rate),
		XLabel: "configuration",
		YLabel: "batches/sec | p99",
		Series: []string{"b/s", "vs per-batch", "cold p99", "isolation"},
	}
	ingestRow := func(x string, bs float64, base float64, err error) {
		row := Row{X: x, Cells: map[string]string{}}
		if err != nil {
			row.Cells["b/s"], row.Cells["vs per-batch"] = "err", err.Error()
		} else {
			row.Cells["b/s"] = fmt.Sprintf("%.0f", bs)
			row.Cells["vs per-batch"] = fmt.Sprintf("%.2fx", bs/base)
		}
		fig.Rows = append(fig.Rows, row)
	}
	solo, errS := runShardIngest(nStores, writers, total, false, false)
	grp, errG := runShardIngest(nStores, writers, total, true, false)
	prv, errP := runShardIngest(nStores, writers, total, true, true)
	if errS != nil {
		ingestRow("per-batch fsync", 0, 1, errS)
	} else {
		ingestRow("coalesced group commit", grp, solo, errG)
		ingestRow("private-fsync group commit", prv, solo, errP)
		ingestRow("per-batch fsync", solo, solo, nil)
	}

	noq, errN := runHotNeighbor(hotStores, hotWriters, coldSamples, 0)
	q, errQ := runHotNeighbor(hotStores, hotWriters, coldSamples, rate)
	p99Row := func(x string, p99 time.Duration, err error, ratio string) {
		row := Row{X: x, Cells: map[string]string{}}
		if err != nil {
			row.Cells["cold p99"] = "err: " + err.Error()
		} else {
			row.Cells["cold p99"] = p99.Round(10 * time.Microsecond).String()
			row.Cells["isolation"] = ratio
		}
		fig.Rows = append(fig.Rows, row)
	}
	p99Row("hot-neighbor unthrottled", noq, errN, "1.00x")
	ratio := ""
	if errN == nil && errQ == nil && q > 0 {
		ratio = fmt.Sprintf("%.2fx", float64(noq)/float64(q))
	}
	p99Row("hot-neighbor rate-limited", q, errQ, ratio)
	return fig
}
