package server

import (
	"fmt"
	"log/slog"
	"time"

	"repro/internal/graph"
	"repro/internal/prov"
	"repro/internal/wal"
)

// Durable stores. OpenDurable wraps the Store around a wal.Manager so that
// every committed ingest batch survives a crash:
//
//   - commit path: Store.Update encodes the batch as a graph delta and
//     appends it to the write-ahead log (fsync per policy) before the epoch
//     pointer swap publishes it;
//   - background: a checkpointer goroutine rotates the log and writes a
//     full checkpoint from the current (immutable) epoch snapshot every
//     CheckpointEvery commits, bounding both log growth and restart replay;
//   - startup: the newest checkpoint is loaded and the log tail replayed
//     back through prov.Recorder (IndexFrom per record), reconstructing the
//     exact pre-crash epoch — a torn final record, the expected artifact of
//     a crash mid-append, is discarded.
type DurableOptions struct {
	// Dir is the data directory (created if missing).
	Dir string
	// Fsync selects the append fsync policy (default wal.SyncAlways).
	Fsync wal.SyncPolicy
	// SyncInterval is the background flush period under wal.SyncInterval.
	SyncInterval time.Duration
	// CheckpointEvery is the number of committed batches between
	// checkpoints (<=0 selects 256).
	CheckpointEvery int
	// CacheCap bounds the segment cache (entries; <=0 selects the default).
	CacheCap int
	// NoGroupCommit disables group commit, restoring the append-then-fsync-
	// per-batch write path. With group commit (the default) concurrent
	// Update callers stage encoded deltas into a commit queue; a committer
	// goroutine appends the whole group, issues one fsync, then publishes
	// the member epochs in order — the fsync cost amortizes across writers
	// while a batch still never becomes visible before it is durable.
	NoGroupCommit bool
	// Coalescer, when non-nil, shares the fsync phase of group commits
	// across stores: the committer appends its group unsynced and waits on
	// a device-level sync window instead of fsyncing its own log (see
	// wal.Coalescer). Only honored under group commit with the SyncAlways
	// policy — the other policies don't fsync on the commit path at all.
	Coalescer *wal.Coalescer
	// Logger, when non-nil, receives a Debug-level structured line per
	// published commit (store, epoch, request id, group size).
	Logger *slog.Logger
}

// commitQueueCap bounds the staged-batch queue. Staging blocks (under the
// write mutex) when the committer falls this far behind, which is the
// backpressure that keeps unpublished epochs from piling up without bound.
const commitQueueCap = 256

// defaultCheckpointEvery bounds WAL replay at restart to a few hundred
// batch-sized deltas, which replays in well under a second.
const defaultCheckpointEvery = 256

// OpenDurable opens (or creates) a durable store over the data directory.
// When the directory holds prior state it is recovered and seed is not
// consulted; on a fresh directory seed provides the initial graph (nil
// seeds an empty PROV graph) and becomes checkpoint zero. The returned
// Recovery reports what startup found. Callers must Close the store to
// seal the log.
func OpenDurable(opts DurableOptions, seed func() (*prov.Graph, error)) (*Store, *wal.Recovery, error) {
	var p *prov.Graph
	var rec *prov.Recorder
	m, rcv, err := wal.Open(wal.Options{
		Dir:          opts.Dir,
		Policy:       opts.Fsync,
		SyncInterval: opts.SyncInterval,
		OnBase: func(g *graph.Graph, epoch uint64) error {
			// Stand the lifecycle recorder up over the checkpoint state;
			// replayed deltas below extend it incrementally.
			p = prov.Wrap(g)
			if err := p.Validate(); err != nil {
				return fmt.Errorf("server: checkpoint at epoch %d: %w", epoch, err)
			}
			rec = prov.WrapRecorder(p)
			return nil
		},
		OnRecord: func(epoch uint64, firstNewVertex int) error {
			rec.IndexFrom(graph.VertexID(firstNewVertex))
			return nil
		},
	})
	if err != nil {
		return nil, nil, err
	}
	if rcv.Fresh {
		if seed != nil {
			p, err = seed()
		} else {
			p = prov.New()
		}
		if err == nil {
			rec = prov.WrapRecorder(p)
			err = m.Bootstrap(p.PG())
		}
		if err != nil {
			m.Close()
			return nil, nil, err
		}
	}

	s := newStore(p, rec, opts.CacheCap, rcv.Epoch)
	s.wal = m
	s.logger = opts.Logger
	s.checkpointEvery = opts.CheckpointEvery
	if s.checkpointEvery <= 0 {
		s.checkpointEvery = defaultCheckpointEvery
	}
	// Replayed WAL records count against the next checkpoint so a restart
	// that keeps crashing short of the threshold still converges.
	s.sinceCkpt.Store(int64(rcv.Replayed))
	s.ckptCh = make(chan struct{}, 1)
	s.stopCh = make(chan struct{})
	s.ckptDone = make(chan struct{})
	s.pubCh = make(chan struct{}, 1)
	s.resolved.Store(rcv.Epoch)
	if !opts.NoGroupCommit {
		s.groupCommit = true
		s.commitCh = make(chan *commitReq, commitQueueCap)
		s.commitStop = make(chan struct{})
		s.commitDone = make(chan struct{})
		if opts.Fsync == wal.SyncAlways {
			s.coal = opts.Coalescer
		}
		if s.coal != nil {
			s.syncQ = make(chan *syncJob, commitQueueCap)
			s.syncDone = make(chan struct{})
			go s.syncLoop()
		}
		go s.commitLoop()
	}
	go s.checkpointLoop()
	return s, rcv, nil
}

// GroupCommit reports whether the store commits through the group path.
func (s *Store) GroupCommit() bool { return s.groupCommit }

// Durable reports whether the store persists commits to a write-ahead log.
func (s *Store) Durable() bool { return s.wal != nil }

// checkpointLoop services checkpoint signals until Close.
func (s *Store) checkpointLoop() {
	defer close(s.ckptDone)
	for {
		select {
		case <-s.ckptCh:
			if err := s.checkpointNow(); err != nil {
				s.ckptFails.Add(1)
			}
		case <-s.stopCh:
			return
		}
	}
}

// checkpointNow rotates the log at the current epoch (briefly under the
// write mutex, so the rotation point is exact) and then writes the
// checkpoint from the immutable snapshot with no lock held: ingest stalls
// for the rotation, never for the checkpoint serialization.
func (s *Store) checkpointNow() error {
	s.writeMu.Lock()
	// Under group commit the write mutex freezes the staged tail but the
	// committer may still be appending or owe publishes; wait until it has
	// RESOLVED everything staged — published it, or failed it without
	// acknowledging — before choosing the rotation point. Only then is it
	// safe to rotate and let the checkpoint's cleanup delete old logs:
	// every acknowledged epoch is <= snap (covered by the checkpoint), and
	// records beyond snap, if any, belong to failed-and-unacknowledged
	// batches. Waiting on publishes alone would deadlock on a poisoned
	// committer; skipping the wait when poisoned would race a healthy group
	// still inside its append.
	if s.groupCommit {
		for tailN := s.tail.N; s.resolved.Load() < tailN; {
			<-s.pubCh
		}
	}
	ep := s.snap.Load()
	err := s.wal.Rotate(ep.N)
	if err == nil {
		s.sinceCkpt.Store(0)
	}
	s.writeMu.Unlock()
	if err != nil {
		return err
	}
	return s.wal.Checkpoint(ep.P.PG(), ep.N)
}

// Close stops the checkpointer, writes a final checkpoint when the log has
// grown since the last one (so the next start replays nothing), and seals
// the write-ahead log. On follower stores it also seals the applier, and
// on any store it closes the replication hub so wal-stream tailers end.
// Memory-only stores with neither do nothing beyond refusing writes.
//
// Close is safe to race with Update: it first marks the store closed under
// the write mutex, so every write that had already passed the closed check
// is fully staged by the time the mark lands (staging happens under the
// same mutex) and every later write is refused with ErrStoreClosed. The
// committer is then stopped — its stop branch drains the queue, so each
// staged batch is made durable, published, and acknowledged before the
// final checkpoint runs. Nothing deadlocks and no acknowledged (or even
// staged) batch is stranded.
func (s *Store) Close() error {
	var err error
	s.closeOnce.Do(func() {
		s.writeMu.Lock()
		s.closed = true
		s.writeMu.Unlock()
		// The applier stops after the closed mark so an apply in flight
		// finishes (or fails cleanly) and nothing new starts; the hub
		// closes after the applier so its last publish still reaches
		// tailers before they see the end of stream.
		s.stopApplier()
		if h := s.hub.Load(); h != nil {
			h.Close()
		}
		if s.wal == nil {
			return
		}
		close(s.stopCh)
		<-s.ckptDone
		if s.commitStop != nil {
			// Stop the committer after the checkpointer: a checkpoint in
			// flight may be waiting on the committer's publishes. New writes
			// are already refused, so the queue drains and snap catches the
			// tail.
			close(s.commitStop)
			<-s.commitDone
			if s.syncQ != nil {
				// The committer has drained its queue into the sync
				// pipeline; close it and wait for the last barriers and
				// publishes before the final checkpoint reads the tail.
				close(s.syncQ)
				<-s.syncDone
			}
		}
		if s.sinceCkpt.Load() > 0 {
			if cerr := s.checkpointNow(); cerr != nil {
				s.ckptFails.Add(1)
			}
		}
		err = s.wal.Close()
	})
	return err
}

// DurabilityStats is the /metrics wal panel: write-ahead log volume and
// fsync latency, checkpoint counters, and the distance to the next
// checkpoint. Nil on memory-only stores.
type DurabilityStats struct {
	wal.ManagerStats
	CheckpointEvery    int              `json:"checkpoint_every"`
	SinceCheckpoint    int64            `json:"since_checkpoint"`
	CheckpointFailures uint64           `json:"checkpoint_failures"`
	GroupCommit        GroupCommitStats `json:"group_commit"`
	// Coalescer reports the shared device-level sync windows this store
	// commits through (nil when the store fsyncs its own log).
	Coalescer *wal.CoalescerStats `json:"coalescer,omitempty"`
}

// GroupCommitStats is the /metrics group-commit panel: how staged batches
// coalesced into fsync groups, and how long batches waited on the commit
// queue before their committer picked them up (the queue-wait share of
// ingest latency that the old last/max_size counters left invisible; the
// full distribution is in the "enqueue" stage histogram). Records/Groups is
// the average amortization factor; it approaches the writer concurrency
// under load.
type GroupCommitStats struct {
	Enabled bool   `json:"enabled"`
	Groups  uint64 `json:"groups"`
	Records uint64 `json:"records"`
	Last    int64  `json:"last_size"`
	Max     int64  `json:"max_size"`
	// CoalescedGroups counts groups retired through a shared device-level
	// sync window rather than a private fsync (== Groups when the registry
	// coalescer is active for this store).
	CoalescedGroups     uint64 `json:"coalesced_groups"`
	QueueWaitLastNanos  int64  `json:"queue_wait_last_ns"`
	QueueWaitMaxNanos   int64  `json:"queue_wait_max_ns"`
	QueueWaitTotalNanos int64  `json:"queue_wait_total_ns"`
}

// DurabilityStatsSnapshot returns the current durability counters, or nil
// for a memory-only store.
func (s *Store) DurabilityStatsSnapshot() *DurabilityStats {
	if s.wal == nil {
		return nil
	}
	ds := &DurabilityStats{
		ManagerStats:       s.wal.StatsSnapshot(),
		CheckpointEvery:    s.checkpointEvery,
		SinceCheckpoint:    s.sinceCkpt.Load(),
		CheckpointFailures: s.ckptFails.Load(),
		GroupCommit: GroupCommitStats{
			Enabled:             s.groupCommit,
			Groups:              s.groups.Load(),
			Records:             s.groupRecords.Load(),
			Last:                s.groupLast.Load(),
			Max:                 s.groupMax.Load(),
			CoalescedGroups:     s.coalesced.Load(),
			QueueWaitLastNanos:  s.queueWaitLastNs.Load(),
			QueueWaitMaxNanos:   s.queueWaitMaxNs.Load(),
			QueueWaitTotalNanos: s.queueWaitTotalNs.Load(),
		},
	}
	if s.coal != nil {
		cs := s.coal.StatsSnapshot()
		ds.Coalescer = &cs
	}
	return ds
}
