package server

import (
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/prov"
	"repro/internal/wal"
)

// Durable stores. OpenDurable wraps the Store around a wal.Manager so that
// every committed ingest batch survives a crash:
//
//   - commit path: Store.Update encodes the batch as a graph delta and
//     appends it to the write-ahead log (fsync per policy) before the epoch
//     pointer swap publishes it;
//   - background: a checkpointer goroutine rotates the log and writes a
//     full checkpoint from the current (immutable) epoch snapshot every
//     CheckpointEvery commits, bounding both log growth and restart replay;
//   - startup: the newest checkpoint is loaded and the log tail replayed
//     back through prov.Recorder (IndexFrom per record), reconstructing the
//     exact pre-crash epoch — a torn final record, the expected artifact of
//     a crash mid-append, is discarded.
type DurableOptions struct {
	// Dir is the data directory (created if missing).
	Dir string
	// Fsync selects the append fsync policy (default wal.SyncAlways).
	Fsync wal.SyncPolicy
	// SyncInterval is the background flush period under wal.SyncInterval.
	SyncInterval time.Duration
	// CheckpointEvery is the number of committed batches between
	// checkpoints (<=0 selects 256).
	CheckpointEvery int
	// CacheCap bounds the segment cache (entries; <=0 selects the default).
	CacheCap int
}

// defaultCheckpointEvery bounds WAL replay at restart to a few hundred
// batch-sized deltas, which replays in well under a second.
const defaultCheckpointEvery = 256

// OpenDurable opens (or creates) a durable store over the data directory.
// When the directory holds prior state it is recovered and seed is not
// consulted; on a fresh directory seed provides the initial graph (nil
// seeds an empty PROV graph) and becomes checkpoint zero. The returned
// Recovery reports what startup found. Callers must Close the store to
// seal the log.
func OpenDurable(opts DurableOptions, seed func() (*prov.Graph, error)) (*Store, *wal.Recovery, error) {
	var p *prov.Graph
	var rec *prov.Recorder
	m, rcv, err := wal.Open(wal.Options{
		Dir:          opts.Dir,
		Policy:       opts.Fsync,
		SyncInterval: opts.SyncInterval,
		OnBase: func(g *graph.Graph, epoch uint64) error {
			// Stand the lifecycle recorder up over the checkpoint state;
			// replayed deltas below extend it incrementally.
			p = prov.Wrap(g)
			if err := p.Validate(); err != nil {
				return fmt.Errorf("server: checkpoint at epoch %d: %w", epoch, err)
			}
			rec = prov.WrapRecorder(p)
			return nil
		},
		OnRecord: func(epoch uint64, firstNewVertex int) error {
			rec.IndexFrom(graph.VertexID(firstNewVertex))
			return nil
		},
	})
	if err != nil {
		return nil, nil, err
	}
	if rcv.Fresh {
		if seed != nil {
			p, err = seed()
		} else {
			p = prov.New()
		}
		if err == nil {
			rec = prov.WrapRecorder(p)
			err = m.Bootstrap(p.PG())
		}
		if err != nil {
			m.Close()
			return nil, nil, err
		}
	}

	s := newStore(p, rec, opts.CacheCap, rcv.Epoch)
	s.wal = m
	s.checkpointEvery = opts.CheckpointEvery
	if s.checkpointEvery <= 0 {
		s.checkpointEvery = defaultCheckpointEvery
	}
	// Replayed WAL records count against the next checkpoint so a restart
	// that keeps crashing short of the threshold still converges.
	s.sinceCkpt.Store(int64(rcv.Replayed))
	s.ckptCh = make(chan struct{}, 1)
	s.stopCh = make(chan struct{})
	s.ckptDone = make(chan struct{})
	go s.checkpointLoop()
	return s, rcv, nil
}

// Durable reports whether the store persists commits to a write-ahead log.
func (s *Store) Durable() bool { return s.wal != nil }

// checkpointLoop services checkpoint signals until Close.
func (s *Store) checkpointLoop() {
	defer close(s.ckptDone)
	for {
		select {
		case <-s.ckptCh:
			if err := s.checkpointNow(); err != nil {
				s.ckptFails.Add(1)
			}
		case <-s.stopCh:
			return
		}
	}
}

// checkpointNow rotates the log at the current epoch (briefly under the
// write mutex, so the rotation point is exact) and then writes the
// checkpoint from the immutable snapshot with no lock held: ingest stalls
// for the rotation, never for the checkpoint serialization.
func (s *Store) checkpointNow() error {
	s.writeMu.Lock()
	ep := s.snap.Load()
	err := s.wal.Rotate(ep.N)
	if err == nil {
		s.sinceCkpt.Store(0)
	}
	s.writeMu.Unlock()
	if err != nil {
		return err
	}
	return s.wal.Checkpoint(ep.P.PG(), ep.N)
}

// Close stops the checkpointer, writes a final checkpoint when the log has
// grown since the last one (so the next start replays nothing), and seals
// the write-ahead log. No-op on memory-only stores; Update must not race
// with Close.
func (s *Store) Close() error {
	if s.wal == nil {
		return nil
	}
	var err error
	s.closeOnce.Do(func() {
		close(s.stopCh)
		<-s.ckptDone
		if s.sinceCkpt.Load() > 0 {
			if cerr := s.checkpointNow(); cerr != nil {
				s.ckptFails.Add(1)
			}
		}
		err = s.wal.Close()
	})
	return err
}

// DurabilityStats is the /metrics wal panel: write-ahead log volume and
// fsync latency, checkpoint counters, and the distance to the next
// checkpoint. Nil on memory-only stores.
type DurabilityStats struct {
	wal.ManagerStats
	CheckpointEvery    int    `json:"checkpoint_every"`
	SinceCheckpoint    int64  `json:"since_checkpoint"`
	CheckpointFailures uint64 `json:"checkpoint_failures"`
}

// DurabilityStatsSnapshot returns the current durability counters, or nil
// for a memory-only store.
func (s *Store) DurabilityStatsSnapshot() *DurabilityStats {
	if s.wal == nil {
		return nil
	}
	return &DurabilityStats{
		ManagerStats:       s.wal.StatsSnapshot(),
		CheckpointEvery:    s.checkpointEvery,
		SinceCheckpoint:    s.sinceCkpt.Load(),
		CheckpointFailures: s.ckptFails.Load(),
	}
}
