package server

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/prov"
	"repro/internal/wal"
)

// Group-commit unit tests. commitHold makes group formation deterministic:
// with it set, the committer parks after receiving a group's first request,
// so a test can stage K concurrent writers, verify they coalesce into ONE
// group — one fsync — and that the member epochs publish in order.

// stageWriters launches n concurrent Update calls against s — writer w
// applies op(w, rec) — and returns once all are staged (one held by the
// committer via commitHold, n-1 queued). done receives each writer's result.
func stageWriters(t *testing.T, s *Store, n int, done chan error, op func(w int, rec *prov.Recorder)) {
	t.Helper()
	var staged sync.WaitGroup
	for w := 0; w < n; w++ {
		w := w
		staged.Add(1)
		go func() {
			err := s.Update(func(rec *prov.Recorder) error {
				op(w, rec)
				staged.Done()
				return nil
			})
			done <- err
		}()
	}
	staged.Wait() // every writer entered fn; now wait for the queue to fill
	deadline := time.Now().Add(5 * time.Second)
	for len(s.commitCh) < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d writers staged", len(s.commitCh)+1, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// snapshotOp is the default stageWriters workload: one disconnected
// snapshot per writer.
func snapshotOp(w int, rec *prov.Recorder) {
	rec.Snapshot(fmt.Sprintf("gc-%d", w))
}

func TestGroupCommitOneFsyncPerGroup(t *testing.T) {
	const k = 6
	dir := t.TempDir()
	s, _, err := OpenDurable(DurableOptions{Dir: dir, CheckpointEvery: 1 << 30, CacheCap: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !s.GroupCommit() {
		t.Fatal("group commit not enabled by default")
	}
	s.commitHold = make(chan struct{})

	done := make(chan error, k)
	stageWriters(t, s, k, done, snapshotOp)
	if got := s.Epoch().N; got != 0 {
		t.Fatalf("epoch published before the group fsync: %d", got)
	}
	before := s.wal.StatsSnapshot()

	s.commitHold <- struct{}{} // release exactly one group
	for i := 0; i < k; i++ {
		if err := <-done; err != nil {
			t.Fatalf("writer: %v", err)
		}
	}

	after := s.wal.StatsSnapshot()
	if got := after.Fsyncs - before.Fsyncs; got != 1 {
		t.Errorf("group of %d paid %d fsyncs, want 1", k, got)
	}
	if got := after.Records - before.Records; got != k {
		t.Errorf("group appended %d records, want %d", got, k)
	}
	if got := s.Epoch().N; got != k {
		t.Errorf("published epoch %d, want %d", got, k)
	}
	gs := s.DurabilityStatsSnapshot().GroupCommit
	if !gs.Enabled || gs.Groups != 1 || gs.Records != k || gs.Last != k || gs.Max != k {
		t.Errorf("group stats: %+v", gs)
	}

	// The log carries the group as consecutive epochs in publish order.
	var epochs []uint64
	_, err = wal.ReplayFile(filepath.Join(dir, fmt.Sprintf("wal-%016x.log", 0)), func(epoch uint64, payload []byte) error {
		epochs = append(epochs, epoch)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) != k {
		t.Fatalf("log holds %d records, want %d", len(epochs), k)
	}
	for i, e := range epochs {
		if e != uint64(i+1) {
			t.Fatalf("log epoch order broken at %d: %v", i, epochs)
		}
	}
}

// TestGroupCommitRespectsDisable covers the NoGroupCommit escape hatch: the
// inline path must pay one fsync per batch and survive a restart.
func TestGroupCommitRespectsDisable(t *testing.T) {
	dir := t.TempDir()
	s, _, err := OpenDurable(DurableOptions{Dir: dir, NoGroupCommit: true, CheckpointEvery: 1 << 30, CacheCap: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.GroupCommit() {
		t.Fatal("NoGroupCommit ignored")
	}
	before := s.wal.StatsSnapshot().Fsyncs
	const n = 4
	for i := 0; i < n; i++ {
		if err := s.Update(func(rec *prov.Recorder) error {
			rec.Snapshot(fmt.Sprintf("inline-%d", i))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.wal.StatsSnapshot().Fsyncs - before; got != n {
		t.Errorf("inline path paid %d fsyncs for %d batches, want %d", got, n, n)
	}
	if gs := s.DurabilityStatsSnapshot().GroupCommit; gs.Enabled || gs.Groups != 0 {
		t.Errorf("inline path reported group stats: %+v", gs)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, rcv, err := OpenDurable(DurableOptions{Dir: dir, NoGroupCommit: true, CacheCap: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rcv.Epoch != n {
		t.Fatalf("recovered epoch %d, want %d", rcv.Epoch, n)
	}
}

// TestUpdatePanicReleasesWriteMutex: a panic inside the update closure (the
// recorder has deliberate panics, e.g. the snapshot-watermark race guard)
// must propagate but release the write mutex — the store keeps serving
// instead of wedging every later ingest, the checkpointer and Close.
func TestUpdatePanicReleasesWriteMutex(t *testing.T) {
	run := func(t *testing.T, s *Store) {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("panic did not propagate out of Update")
				}
			}()
			_ = s.Update(func(rec *prov.Recorder) error { panic("recorder guard") })
		}()
		done := make(chan error, 1)
		go func() {
			done <- s.Update(func(rec *prov.Recorder) error {
				rec.Snapshot("after-panic")
				return nil
			})
		}()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("update after panic: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("write mutex still held after a panicking Update")
		}
	}
	t.Run("memory", func(t *testing.T) {
		run(t, NewStore(prov.New(), 4))
	})
	t.Run("durable", func(t *testing.T) {
		s, _, err := OpenDurable(DurableOptions{Dir: t.TempDir(), CacheCap: 4}, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		run(t, s)
	})
}

// TestCloseUnderLoad races Close against a full complement of group-commit
// writers: Close must neither deadlock nor strand a staged batch — every
// writer either commits (and the commit survives the restart) or is refused
// with ErrStoreClosed, and the recovered epoch equals the exact number of
// acknowledged commits. Run twice: a bare durable store, and a multi-store
// registry whose committers share the fsync coalescer.
func TestCloseUnderLoad(t *testing.T) {
	const writersN = 4

	// spin launches writersN writers looping Updates until the store refuses
	// them; n counts acknowledged commits.
	spin := func(t *testing.T, s *Store, label string, n *atomic.Uint64, wg *sync.WaitGroup) {
		for w := 0; w < writersN; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; ; i++ {
					err := s.Update(func(rec *prov.Recorder) error {
						rec.Snapshot(fmt.Sprintf("%s-%d-%d", label, w, i))
						return nil
					})
					if err != nil {
						if !errors.Is(err, ErrStoreClosed) {
							t.Errorf("%s writer %d: %v (want ErrStoreClosed)", label, w, err)
						}
						return
					}
					n.Add(1)
				}
			}()
		}
	}
	waitFor := func(t *testing.T, n *atomic.Uint64, min uint64) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for n.Load() < min {
			if time.Now().After(deadline) {
				t.Fatalf("writers stalled at %d commits", n.Load())
			}
			time.Sleep(time.Millisecond)
		}
	}
	closeWithin := func(t *testing.T, what string, fn func() error) {
		t.Helper()
		done := make(chan error, 1)
		go func() { done <- fn() }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("%s under load: %v", what, err)
			}
		case <-time.After(15 * time.Second):
			t.Fatalf("%s deadlocked against in-flight writers", what)
		}
	}

	t.Run("store", func(t *testing.T) {
		dir := t.TempDir()
		s, _, err := OpenDurable(DurableOptions{Dir: dir, CheckpointEvery: 1 << 30, CacheCap: 8}, nil)
		if err != nil {
			t.Fatal(err)
		}
		var committed atomic.Uint64
		var wg sync.WaitGroup
		spin(t, s, "cul", &committed, &wg)
		waitFor(t, &committed, 8) // close mid-flight, not before the ramp
		closeWithin(t, "Close", s.Close)
		wg.Wait() // every writer observed ErrStoreClosed (or already exited)

		if err := s.Update(func(rec *prov.Recorder) error { return nil }); !errors.Is(err, ErrStoreClosed) {
			t.Fatalf("update after Close: %v, want ErrStoreClosed", err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("second Close: %v", err)
		}

		// Durability is exact: the acknowledged count IS the recovered epoch
		// (no commit lost, no unacknowledged batch published).
		n := committed.Load()
		s2, rcv, err := OpenDurable(DurableOptions{Dir: dir, CacheCap: 8}, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer s2.Close()
		if rcv.Epoch != n || s2.Epoch().N != n || s2.Epoch().Vertices != int(n) {
			t.Fatalf("recovered epoch %d (%d vertices), want %d acknowledged commits",
				rcv.Epoch, s2.Epoch().Vertices, n)
		}
	})

	t.Run("registry", func(t *testing.T) {
		dir := t.TempDir()
		opts := RegistryOptions{DataDir: dir, CheckpointEvery: 1 << 30, CacheCap: 8}
		reg, _, err := OpenRegistry(opts, []string{"hot"}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if reg.Coalescer() == nil {
			t.Fatal("durable fsync-always registry built no coalescer")
		}
		names := []string{DefaultStore, "hot"}
		counts := make(map[string]*atomic.Uint64, len(names))
		var wg sync.WaitGroup
		for _, name := range names {
			s, err := reg.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			counts[name] = new(atomic.Uint64)
			spin(t, s, name, counts[name], &wg)
		}
		for _, name := range names {
			waitFor(t, counts[name], 8)
		}
		closeWithin(t, "registry Close", reg.Close)
		wg.Wait()
		if cs := reg.Coalescer().StatsSnapshot(); cs.Requests == 0 {
			t.Error("no group commit went through the shared coalescer")
		}

		reg2, _, err := OpenRegistry(opts, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer reg2.Close()
		for _, name := range names {
			s, err := reg2.Get(name)
			if err != nil {
				t.Fatalf("store %q not recovered: %v", name, err)
			}
			if n := counts[name].Load(); s.Epoch().N != n {
				t.Errorf("store %q recovered epoch %d, want %d acknowledged commits", name, s.Epoch().N, n)
			}
		}
	})
}

// TestGroupCommitCheckpointDrain forces a checkpoint while a multi-writer
// group is parked unpublished on the commit queue: checkpointNow must wait
// for the committer so the rotation never strands durable-but-unpublished
// records behind a cleanup.
func TestGroupCommitCheckpointDrain(t *testing.T) {
	const k = 4
	s, _, err := OpenDurable(DurableOptions{Dir: t.TempDir(), CheckpointEvery: 1 << 30, CacheCap: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.commitHold = make(chan struct{})
	done := make(chan error, k)
	stageWriters(t, s, k, done, snapshotOp)

	ckptErr := make(chan error, 1)
	go func() { ckptErr <- s.checkpointNow() }()
	select {
	case err := <-ckptErr:
		t.Fatalf("checkpoint completed past %d unpublished epochs: %v", k, err)
	case <-time.After(50 * time.Millisecond):
		// parked on the drain, as it must be
	}

	s.commitHold <- struct{}{}
	for i := 0; i < k; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if err := <-ckptErr; err != nil {
		t.Fatalf("checkpoint after drain: %v", err)
	}
	st := s.wal.StatsSnapshot()
	if st.LastCheckpointEpoch != k {
		t.Errorf("checkpoint landed at epoch %d, want %d (after the whole group)", st.LastCheckpointEpoch, k)
	}
}
