package server

import (
	"container/list"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/graph"
)

// segCache is an LRU cache of segmentation results keyed by canonicalized
// query. PgSeg is the service's dominant workload and its CFL-reachability
// solve is the expensive part, so repeated identical queries are served from
// here. The cache is guarded by its own mutex (separate from the store's
// write mutex) so cache bookkeeping never serializes solver work.
//
// Entries are tagged with the epoch they were last validated at; all
// resident entries share that epoch (the invariant advance maintains). On
// ingest commit the cache is revalidated against the delta instead of being
// dropped wholesale: the graph is append-only, so a cached segment's answer
// can only change if a newly appended edge is incident to a vertex in the
// segment's support set (its ancestry closures, its vertices, its expansion
// seeds — see core.Segment.Support). Entries the delta touches are purged
// (they fall back to a full re-solve on the next request); the rest are
// re-tagged with the new epoch and re-pointed at the new snapshot, the
// incremental revalidation pass that only ever scans edges past the old
// watermark.
type segCache struct {
	mu    sync.Mutex
	cap   int
	epoch uint64     // the epoch every resident entry is valid at
	ll    *list.List // front = most recently used
	byK   map[string]*list.Element

	hits          atomic.Uint64
	misses        atomic.Uint64
	invalidations atomic.Uint64 // entries purged because an ingest delta touched them
	revalidations atomic.Uint64 // entries carried to a new epoch untouched
}

type cacheEntry struct {
	key string
	seg *core.Segment
	// relOK is the admitted-relations mask of the query's boundary: delta
	// edges of an excluded relationship type cannot appear in any traversal
	// of this query and are skipped during revalidation.
	relOK [8]bool
}

func newSegCache(capacity int) *segCache {
	if capacity <= 0 {
		capacity = 128
	}
	return &segCache{
		cap: capacity,
		ll:  list.New(),
		byK: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached segment for key validated at the reader's epoch,
// if any, and records a hit or miss. A reader pinned to an older snapshot
// than the cache's epoch misses (it must not be served results that may
// reference vertices past its watermark).
func (c *segCache) get(key string, epoch uint64) (*core.Segment, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if epoch == c.epoch {
		if el, ok := c.byK[key]; ok {
			c.ll.MoveToFront(el)
			c.hits.Add(1)
			return el.Value.(*cacheEntry).seg, true
		}
	}
	c.misses.Add(1)
	return nil, false
}

// add inserts a result solved against the given epoch, unless the cache has
// advanced since (a writer committed after the solver loaded its snapshot),
// in which case the possibly stale result is dropped.
func (c *segCache) add(key string, seg *core.Segment, relOK [8]bool, epoch uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if epoch != c.epoch {
		return
	}
	if el, ok := c.byK[key]; ok {
		en := el.Value.(*cacheEntry)
		en.seg, en.relOK = seg, relOK
		c.ll.MoveToFront(el)
		return
	}
	c.byK[key] = c.ll.PushFront(&cacheEntry{key: key, seg: seg, relOK: relOK})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byK, oldest.Value.(*cacheEntry).key)
	}
}

// advance moves the cache from epoch old to ep, revalidating every entry
// against the ingest delta (the edges in [old.Edges, ep.Edges)). Called by
// the store with the write mutex held, before the new epoch is published.
//
// The delta scan itself runs without the cache mutex so a bulk ingest never
// stalls concurrent reader lookups: once the epoch counter is bumped every
// get misses anyway (no reader holds the new epoch until the store
// publishes it, which happens only after advance returns), and no add can
// land (solves in flight carry the old epoch). Entries and their support
// sets are immutable outside the mutex.
func (c *segCache) advance(ep, old *Epoch) {
	c.mu.Lock()
	c.epoch = ep.N
	entries := make([]*cacheEntry, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		entries = append(entries, el.Value.(*cacheEntry))
	}
	c.mu.Unlock()

	stale := make([]bool, len(entries))
	rebased := make([]*core.Segment, len(entries))
	for i, en := range entries {
		if deltaTouches(en, ep, old) {
			stale[i] = true
			continue
		}
		// Still exact at the new epoch: re-point the segment at the new
		// snapshot (a fresh shallow copy, so readers holding the old one are
		// unaffected).
		rebased[i] = en.seg.Rebase(ep.P)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	for i, en := range entries {
		el, ok := c.byK[en.key]
		if !ok || el.Value.(*cacheEntry) != en {
			continue // entry was replaced or evicted meanwhile
		}
		if stale[i] {
			c.ll.Remove(el)
			delete(c.byK, en.key)
			c.invalidations.Add(1)
			continue
		}
		en.seg = rebased[i]
		c.revalidations.Add(1)
	}
}

// reset purges every entry and rebases the cache at epoch. Snapshot
// resets (a follower re-seeding from a leader checkpoint) break the
// append-only continuity delta revalidation relies on, so nothing can be
// carried over.
func (c *segCache) reset(epoch uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.epoch = epoch
	c.invalidations.Add(uint64(c.ll.Len()))
	c.ll.Init()
	c.byK = make(map[string]*list.Element, c.cap)
}

// deltaTouches reports whether any edge ingested since the entry's last
// validation is incident to the entry's support set. The support set is the
// soundness boundary: on an append-only graph every path or SimProv
// derivation the query result depends on enters the post-solve region
// through a support vertex, so an untouched support means an unchanged
// answer. New vertices can never be support members (the set is frozen at
// solve time), so only the delta's old-side endpoints are probed.
func deltaTouches(en *cacheEntry, ep, old *Epoch) bool {
	sup := en.seg.Support()
	if sup == nil {
		return true // not a revalidatable segment; purge conservatively
	}
	p := ep.P
	g := p.PG()
	for e := old.Edges; e < ep.Edges; e++ {
		eid := graph.EdgeID(e)
		if !en.relOK[p.RelOf(eid)] {
			continue
		}
		if sup.Contains(uint32(g.Src(eid))) || sup.Contains(uint32(g.Dst(eid))) {
			return true
		}
	}
	return false
}

// len returns the current entry count.
func (c *segCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// CacheStats is a snapshot of cache counters, surfaced via /stats and
// /metrics.
type CacheStats struct {
	Entries  int    `json:"entries"`
	Capacity int    `json:"capacity"`
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	// Invalidations counts entries purged because an ingest delta touched
	// their support set; Revalidations counts entries carried across an
	// ingest untouched (served afterwards without a re-solve).
	Invalidations uint64 `json:"invalidations"`
	Revalidations uint64 `json:"revalidations"`
}

func (c *segCache) stats() CacheStats {
	return CacheStats{
		Entries:       c.len(),
		Capacity:      c.cap,
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Invalidations: c.invalidations.Load(),
		Revalidations: c.revalidations.Load(),
	}
}

// segKey canonicalizes a segmentation query + solver options into a cache
// key. Queries that differ only in the order of their vertex lists, excluded
// relationship types, or expansion specs map to the same key. Queries
// carrying programmatic filters (VertexFilters/EdgeFilters) are not
// canonicalizable and must bypass the cache; HTTP requests never produce
// them.
func segKey(q core.Query, opts core.Options) (string, bool) {
	if len(q.Boundary.VertexFilters) > 0 || len(q.Boundary.EdgeFilters) > 0 {
		return "", false
	}
	var b strings.Builder
	b.WriteString("s=")
	b.WriteString(opts.Solver.String())
	fmt.Fprintf(&b, "|x=%v|p=%s,%s", opts.VC1ExcludeDerivations, opts.MatchActivityProp, opts.MatchEntityProp)
	b.WriteString("|src=")
	writeSortedIDs(&b, q.Src)
	b.WriteString("|dst=")
	writeSortedIDs(&b, q.Dst)
	b.WriteString("|rels=")
	rels := make([]int, 0, len(q.Boundary.ExcludeRels))
	for _, r := range q.Boundary.ExcludeRels {
		rels = append(rels, int(r))
	}
	sort.Ints(rels)
	for _, r := range rels {
		fmt.Fprintf(&b, "%d,", r)
	}
	exps := make([]string, 0, len(q.Boundary.Expansions))
	for _, ex := range q.Boundary.Expansions {
		var eb strings.Builder
		writeSortedIDs(&eb, ex.Within)
		exps = append(exps, fmt.Sprintf("%s:%d", eb.String(), ex.K))
	}
	sort.Strings(exps)
	b.WriteString("|exp=")
	b.WriteString(strings.Join(exps, ";"))
	return b.String(), true
}

func writeSortedIDs(b *strings.Builder, vs []graph.VertexID) {
	ids := make([]uint32, len(vs))
	for i, v := range vs {
		ids[i] = uint32(v)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		fmt.Fprintf(b, "%d,", id)
	}
}
