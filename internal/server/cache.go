package server

import (
	"container/list"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/graph"
)

// segCache is an LRU cache of segmentation results keyed by canonicalized
// query. PgSeg is the service's dominant workload and its CFL-reachability
// solve is the expensive part, so repeated identical queries are served from
// here. The cache is guarded by its own mutex (separate from the store's
// graph RWMutex) so cache bookkeeping never serializes solver work.
//
// Writes to the graph invalidate the whole cache: the graph is append-only,
// so a cached segment stays structurally valid, but new vertices may extend
// the similar-path language and change the correct answer.
type segCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	byK map[string]*list.Element

	// gen is bumped on every invalidation; a result solved against an older
	// generation is dropped instead of inserted (see addIfGen).
	gen atomic.Uint64

	hits          atomic.Uint64
	misses        atomic.Uint64
	invalidations atomic.Uint64
}

type cacheEntry struct {
	key string
	seg *core.Segment
}

func newSegCache(capacity int) *segCache {
	if capacity <= 0 {
		capacity = 128
	}
	return &segCache{
		cap: capacity,
		ll:  list.New(),
		byK: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached segment for key, if any, and records a hit or miss.
func (c *segCache) get(key string) (*core.Segment, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byK[key]; ok {
		c.ll.MoveToFront(el)
		c.hits.Add(1)
		return el.Value.(*cacheEntry).seg, true
	}
	c.misses.Add(1)
	return nil, false
}

// generation returns the current cache generation. Callers snapshot it while
// holding the store's read lock, so no invalidation can be concurrent with
// the snapshot's solve.
func (c *segCache) generation() uint64 { return c.gen.Load() }

// addIfGen inserts a result solved against generation gen, unless the cache
// has been invalidated since (a writer got in after the solver released the
// read lock), in which case the stale result is dropped.
func (c *segCache) addIfGen(key string, seg *core.Segment, gen uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gen.Load() != gen {
		return
	}
	if el, ok := c.byK[key]; ok {
		el.Value.(*cacheEntry).seg = seg
		c.ll.MoveToFront(el)
		return
	}
	c.byK[key] = c.ll.PushFront(&cacheEntry{key: key, seg: seg})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byK, oldest.Value.(*cacheEntry).key)
	}
}

// invalidate drops every entry and bumps the generation.
func (c *segCache) invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen.Add(1)
	c.invalidations.Add(1)
	c.ll.Init()
	c.byK = make(map[string]*list.Element, c.cap)
}

// len returns the current entry count.
func (c *segCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// CacheStats is a snapshot of cache counters, surfaced via /stats.
type CacheStats struct {
	Entries       int    `json:"entries"`
	Capacity      int    `json:"capacity"`
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Invalidations uint64 `json:"invalidations"`
}

func (c *segCache) stats() CacheStats {
	return CacheStats{
		Entries:       c.len(),
		Capacity:      c.cap,
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Invalidations: c.invalidations.Load(),
	}
}

// segKey canonicalizes a segmentation query + solver options into a cache
// key. Queries that differ only in the order of their vertex lists, excluded
// relationship types, or expansion specs map to the same key. Queries
// carrying programmatic filters (VertexFilters/EdgeFilters) are not
// canonicalizable and must bypass the cache; HTTP requests never produce
// them.
func segKey(q core.Query, opts core.Options) (string, bool) {
	if len(q.Boundary.VertexFilters) > 0 || len(q.Boundary.EdgeFilters) > 0 {
		return "", false
	}
	var b strings.Builder
	b.WriteString("s=")
	b.WriteString(opts.Solver.String())
	fmt.Fprintf(&b, "|x=%v|p=%s,%s", opts.VC1ExcludeDerivations, opts.MatchActivityProp, opts.MatchEntityProp)
	b.WriteString("|src=")
	writeSortedIDs(&b, q.Src)
	b.WriteString("|dst=")
	writeSortedIDs(&b, q.Dst)
	b.WriteString("|rels=")
	rels := make([]int, 0, len(q.Boundary.ExcludeRels))
	for _, r := range q.Boundary.ExcludeRels {
		rels = append(rels, int(r))
	}
	sort.Ints(rels)
	for _, r := range rels {
		fmt.Fprintf(&b, "%d,", r)
	}
	exps := make([]string, 0, len(q.Boundary.Expansions))
	for _, ex := range q.Boundary.Expansions {
		var eb strings.Builder
		writeSortedIDs(&eb, ex.Within)
		exps = append(exps, fmt.Sprintf("%s:%d", eb.String(), ex.K))
	}
	sort.Strings(exps)
	b.WriteString("|exp=")
	b.WriteString(strings.Join(exps, ";"))
	return b.String(), true
}

func writeSortedIDs(b *strings.Builder, vs []graph.VertexID) {
	ids := make([]uint32, len(vs))
	for i, v := range vs {
		ids[i] = uint32(v)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		fmt.Fprintf(b, "%d,", id)
	}
}
