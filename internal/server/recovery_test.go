package server

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/graph/difftest"
	"repro/internal/prov"
	"repro/internal/wal"
)

// Kill-replay differential harness, in the style of internal/graph/difftest:
// a deterministic ingest script runs against a durable store, the process
// "crashes" at an arbitrary byte of the write-ahead log (a SIGKILL leaves
// exactly a byte prefix of the fsynced log, possibly mid-record), and
// recovery must reconstruct a store indistinguishable from an uncrashed run
// of the same epoch prefix — graph rows, dictionary, Out/In views,
// core.Segment results, and lifecycle recorder state — and then resume
// ingest to the same final state.

// scriptBatch is one committed ingest batch of wire-level ops.
type scriptBatch []IngestOp

// randomScript derives nBatches deterministic batches from seed. Run inputs
// reference entity vertex ids, which are themselves deterministic, so the
// same script replays identically on any store.
func randomScript(seed int64, nBatches int) []scriptBatch {
	rng := rand.New(rand.NewSource(seed))
	scratch := prov.NewRecorder()
	var entities []uint32
	agents := []string{"alice", "bob", "carol"}
	artifacts := []string{"data.csv", "train.py", "model.bin", "eval.json", "notes.md"}
	script := make([]scriptBatch, 0, nBatches)
	for b := 0; b < nBatches; b++ {
		n := 1 + rng.Intn(3)
		var batch scriptBatch
		for i := 0; i < n; i++ {
			switch r := rng.Intn(10); {
			case r < 1:
				batch = append(batch, IngestOp{Op: "agent", Agent: agents[rng.Intn(len(agents))]})
			case r < 3:
				batch = append(batch, IngestOp{
					Op: "import", Agent: agents[rng.Intn(len(agents))],
					Artifact: artifacts[rng.Intn(len(artifacts))], URL: "http://example/x",
				})
			case r < 5:
				batch = append(batch, IngestOp{Op: "snapshot", Artifact: artifacts[rng.Intn(len(artifacts))]})
			default:
				var inputs []uint32
				for k := 0; k < rng.Intn(3) && len(entities) > 0; k++ {
					inputs = append(inputs, entities[rng.Intn(len(entities))])
				}
				outs := []string{artifacts[rng.Intn(len(artifacts))]}
				if rng.Intn(3) == 0 {
					outs = append(outs, artifacts[rng.Intn(len(artifacts))])
				}
				batch = append(batch, IngestOp{
					Op: "run", Agent: agents[rng.Intn(len(agents))],
					Command: fmt.Sprintf("cmd-%d", b), Inputs: inputs, Outputs: outs,
				})
			}
		}
		// Track the entity population by replaying onto the scratch recorder.
		for _, id := range applyScriptOps(scratch, batch) {
			entities = append(entities, uint32(id))
		}
		script = append(script, batch)
	}
	return script
}

// applyScriptOps replays one batch through a recorder (the handleIngest op
// switch) and returns the entity vertices it created.
func applyScriptOps(rec *prov.Recorder, batch scriptBatch) []graph.VertexID {
	var ents []graph.VertexID
	for _, op := range batch {
		switch op.Op {
		case "agent":
			rec.Agent(op.Agent)
		case "import":
			ents = append(ents, rec.Import(op.Agent, op.Artifact, op.URL))
		case "snapshot":
			ents = append(ents, rec.Snapshot(op.Artifact))
		case "run":
			_, outs := rec.Run(op.Agent, op.Command, toVertexIDs(op.Inputs), op.Outputs)
			ents = append(ents, outs...)
		}
	}
	return ents
}

// ingestBatch commits one script batch through the store's write path.
func ingestBatch(t *testing.T, s *Store, batch scriptBatch) {
	t.Helper()
	if err := s.Update(func(rec *prov.Recorder) error {
		applyScriptOps(rec, batch)
		return nil
	}); err != nil {
		t.Fatalf("ingest batch: %v", err)
	}
}

// refRun replays the whole script on a memory-only store, returning the
// store plus the frozen snapshot at every epoch (index j = after j batches).
func refRun(t *testing.T, script []scriptBatch) (*Store, []*prov.Graph) {
	t.Helper()
	s := NewStore(prov.New(), 16)
	snaps := []*prov.Graph{s.Epoch().P}
	for _, b := range script {
		ingestBatch(t, s, b)
		snaps = append(snaps, s.Epoch().P)
	}
	return s, snaps
}

// diffStores asserts the recovered store is indistinguishable from the
// reference snapshot at the same epoch: snapshot rows/dict/Out/In via
// difftest.DiffSnapshots, PgSeg results over deterministic queries via
// difftest.DiffSegments, and the lifecycle recorder's artifact/agent
// indexes.
func diffStores(refP *prov.Graph, refRec *prov.Recorder, got *Store, artifacts, agents []string) error {
	gotP := got.Epoch().P
	if err := difftest.DiffSnapshots(refP.PG(), gotP.PG()); err != nil {
		return fmt.Errorf("snapshot diff: %w", err)
	}
	ents := refP.Entities()
	rng := rand.New(rand.NewSource(int64(len(ents))))
	for qi := 0; qi < 6 && len(ents) >= 2; qi++ {
		q := core.Query{
			Src: []graph.VertexID{ents[rng.Intn(len(ents))]},
			Dst: []graph.VertexID{ents[rng.Intn(len(ents))]},
		}
		if qi%3 == 1 {
			q.Boundary.ExcludeRels = []prov.Rel{prov.Rel(rng.Intn(5))}
		}
		if err := difftest.DiffSegments(refP, gotP, q); err != nil {
			return fmt.Errorf("segment diff (query %d): %w", qi, err)
		}
	}
	if refRec != nil {
		for _, a := range artifacts {
			rv, gv := refRec.Versions(a), got.rec.Versions(a)
			if len(rv) != len(gv) {
				return fmt.Errorf("artifact %q: %d versions vs %d recovered", a, len(rv), len(gv))
			}
			for i := range rv {
				if rv[i] != gv[i] {
					return fmt.Errorf("artifact %q version %d: %d vs %d", a, i, rv[i], gv[i])
				}
			}
		}
		for _, name := range agents {
			rid, rok := refRec.AgentNamed(name)
			gid, gok := got.rec.AgentNamed(name)
			if rok != gok || rid != gid {
				return fmt.Errorf("agent %q: (%d,%v) vs (%d,%v)", name, rid, rok, gid, gok)
			}
		}
	}
	return nil
}

var scriptArtifacts = []string{"data.csv", "train.py", "model.bin", "eval.json", "notes.md"}
var scriptAgents = []string{"alice", "bob", "carol"}

// refRecorderAt rebuilds the reference recorder state after j batches.
func refRecorderAt(script []scriptBatch, j int) *prov.Recorder {
	rec := prov.NewRecorder()
	for _, b := range script[:j] {
		applyScriptOps(rec, b)
	}
	return rec
}

// walRecordBoundaries parses the frame layout of a log file independently
// of the wal package's replayer: offsets after each complete record.
func walRecordBoundaries(data []byte) []int64 {
	bounds := []int64{0}
	off := int64(0)
	for int(off)+8 <= len(data) {
		n := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		if int(off)+8+int(n) > len(data) {
			break
		}
		off += 8 + n
		bounds = append(bounds, off)
	}
	return bounds
}

// openRecoveredAt materializes a crash image — checkpoint files plus the
// active log truncated at cut — in a fresh directory and recovers from it.
func openRecoveredAt(t *testing.T, srcDir, activeLog string, walData []byte, cut int, caseDir string) (*Store, *wal.Recovery) {
	t.Helper()
	if err := os.MkdirAll(caseDir, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() == activeLog {
			continue
		}
		data, err := os.ReadFile(filepath.Join(srcDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(caseDir, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(caseDir, activeLog), walData[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	s, rcv, err := OpenDurable(DurableOptions{Dir: caseDir, CacheCap: 16}, func() (*prov.Graph, error) {
		t.Fatalf("cut %d: recovery fell back to seeding a fresh graph", cut)
		return nil, nil
	})
	if err != nil {
		t.Fatalf("cut %d: recover: %v", cut, err)
	}
	return s, rcv
}

// TestKillReplayRecovery is the acceptance gate: interrupting the durable
// store at every (sampled) byte of the WAL — including mid-record — must
// recover a store byte-identical to the uncrashed run at the prefix epoch,
// and ingest must resume from there to the uncrashed final state.
func TestKillReplayRecovery(t *testing.T) {
	nBatches := 12
	if testing.Short() {
		nBatches = 8
	}
	script := randomScript(1, nBatches)
	refStore, refSnaps := refRun(t, script)
	defer refStore.Close()

	// The "victim" run: durable, fsync=always, no checkpoints (so the whole
	// history is one log and every cut point is interesting). No Close —
	// the crash leaves whatever bytes the appends fsynced.
	crashDir := t.TempDir()
	victim, rcv, err := OpenDurable(DurableOptions{Dir: crashDir, CheckpointEvery: 1 << 30, CacheCap: 16}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rcv.Fresh {
		t.Fatalf("fresh dir not fresh: %+v", rcv)
	}
	for _, b := range script {
		ingestBatch(t, victim, b)
	}
	activeLog := "wal-" + fmt.Sprintf("%016x", 0) + ".log"
	walData, err := os.ReadFile(filepath.Join(crashDir, activeLog))
	if err != nil {
		t.Fatal(err)
	}
	bounds := walRecordBoundaries(walData)
	if len(bounds) != nBatches+1 {
		t.Fatalf("expected %d records in the log, found %d", nBatches, len(bounds)-1)
	}

	// Cut points: every record boundary, its neighbors (torn header), a
	// mid-record byte, plus a uniform sample of the rest.
	cuts := map[int]bool{0: true, len(walData): true}
	for i, b := range bounds {
		cuts[int(b)] = true
		if int(b)+1 <= len(walData) {
			cuts[int(b)+1] = true
		}
		if i+1 < len(bounds) {
			cuts[int((b+bounds[i+1])/2)] = true
		}
	}
	stride := len(walData) / 150
	if stride < 1 {
		stride = 1
	}
	for c := 0; c <= len(walData); c += stride {
		cuts[c] = true
	}

	caseRoot := t.TempDir()
	caseID := 0
	prevEpoch := int64(-1)
	var cutList []int
	for c := range cuts {
		cutList = append(cutList, c)
	}
	// Ascending cuts let us assert the recovered epoch is monotone.
	for i := 0; i < len(cutList); i++ {
		for j := i + 1; j < len(cutList); j++ {
			if cutList[j] < cutList[i] {
				cutList[i], cutList[j] = cutList[j], cutList[i]
			}
		}
	}

	for _, cut := range cutList {
		caseID++
		s, rcv := openRecoveredAt(t, crashDir, activeLog, walData, cut, filepath.Join(caseRoot, fmt.Sprintf("c%d", caseID)))
		ep := s.Epoch()
		r := int(ep.N)

		// The recovered epoch is exactly the number of complete records the
		// cut preserved (fsync=always: every committed batch has a full
		// frame; a torn frame is the uncommitted tail).
		wantR := 0
		for _, b := range bounds[1:] {
			if int64(cut) >= b {
				wantR++
			}
		}
		if r != wantR {
			t.Fatalf("cut %d: recovered epoch %d, want %d", cut, r, wantR)
		}
		if int64(r) < prevEpoch {
			t.Fatalf("cut %d: recovered epoch went backwards (%d after %d)", cut, r, prevEpoch)
		}
		prevEpoch = int64(r)
		if rcv.Replayed != r || rcv.TornTail != (int64(cut) != bounds[wantR]) {
			t.Fatalf("cut %d: recovery report %+v, want %d replayed, torn=%v", cut, rcv, r, int64(cut) != bounds[wantR])
		}
		if err := diffStores(refSnaps[r], refRecorderAt(script, r), s, scriptArtifacts, scriptAgents); err != nil {
			t.Fatalf("cut %d (epoch %d): %v", cut, r, err)
		}

		// Resume: the remaining script must drive the recovered store to
		// the uncrashed final state (checked at record-boundary cuts and a
		// sample of torn ones; the state diff above already covers all).
		if int64(cut) == bounds[wantR] || caseID%7 == 0 {
			for _, b := range script[r:] {
				ingestBatch(t, s, b)
			}
			if got := int(s.Epoch().N); got != nBatches {
				t.Fatalf("cut %d: resumed to epoch %d, want %d", cut, got, nBatches)
			}
			if err := diffStores(refSnaps[nBatches], refRecorderAt(script, nBatches), s, scriptArtifacts, scriptAgents); err != nil {
				t.Fatalf("cut %d: resumed state: %v", cut, err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
	}
	victim.Close()
}

// TestKillReplayGroupCommit extends the kill-replay harness to the group
// commit path: concurrent writers coalesce into multi-record commit groups
// (made deterministic via commitHold), the log is cut at sampled offsets
// INSIDE committed groups — record boundaries interior to a group, torn
// headers, mid-record bytes — and recovery must land on an exact prefix of
// the publish order: the recovered epoch equals the number of complete
// records the cut preserved, and the recovered state equals replaying
// exactly those deltas. No epoch may ever surface whose delta was not
// durable at the cut.
func TestKillReplayGroupCommit(t *testing.T) {
	const (
		writersK = 4
		rounds   = 4
	)
	crashDir := t.TempDir()
	victim, rcv, err := OpenDurable(DurableOptions{Dir: crashDir, CheckpointEvery: 1 << 30, CacheCap: 16}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rcv.Fresh || !victim.GroupCommit() {
		t.Fatalf("fresh group-commit store: fresh=%v group=%v", rcv.Fresh, victim.GroupCommit())
	}
	victim.commitHold = make(chan struct{})

	// Each round stages writersK concurrent batches (via the shared
	// stageWriters helper) and releases them as one commit group. Batch
	// contents are deterministic per (round, writer) and reference nothing
	// outside themselves, so any realized order is valid — the WAL records
	// the one that happened.
	for r := 0; r < rounds; r++ {
		done := make(chan error, writersK)
		stageWriters(t, victim, writersK, done, func(w int, rec *prov.Recorder) {
			rec.Import("alice", fmt.Sprintf("art-r%d-w%d", r, w), "http://x")
			rec.Snapshot(fmt.Sprintf("snap-r%d-w%d", r, w))
		})
		victim.commitHold <- struct{}{}
		for w := 0; w < writersK; w++ {
			if err := <-done; err != nil {
				t.Fatalf("round %d: %v", r, err)
			}
		}
	}
	gs := victim.DurabilityStatsSnapshot().GroupCommit
	if gs.Groups != rounds || gs.Records != writersK*rounds || gs.Max != writersK {
		t.Fatalf("groups did not form as scripted: %+v", gs)
	}

	activeLog := "wal-" + fmt.Sprintf("%016x", 0) + ".log"
	walData, err := os.ReadFile(filepath.Join(crashDir, activeLog))
	if err != nil {
		t.Fatal(err)
	}
	bounds := walRecordBoundaries(walData)
	if len(bounds) != writersK*rounds+1 {
		t.Fatalf("log holds %d records, want %d", len(bounds)-1, writersK*rounds)
	}
	// The publish order, straight from the log.
	var payloads [][]byte
	if _, err := wal.ReplayFile(filepath.Join(crashDir, activeLog), func(epoch uint64, payload []byte) error {
		if epoch != uint64(len(payloads)+1) {
			return fmt.Errorf("log epoch %d at position %d", epoch, len(payloads))
		}
		payloads = append(payloads, append([]byte(nil), payload...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// refAt replays the first n published deltas onto an empty graph — the
	// only states recovery is allowed to land on.
	refAt := func(n int) (*prov.Graph, *prov.Recorder) {
		t.Helper()
		g := prov.New()
		rec := prov.WrapRecorder(g)
		for _, p := range payloads[:n] {
			first := g.PG().NumVertices()
			if err := g.PG().ApplyDelta(bytes.NewReader(p)); err != nil {
				t.Fatalf("reference delta: %v", err)
			}
			rec.IndexFrom(graph.VertexID(first))
		}
		return g.Freeze(), rec
	}
	var artifacts, agents []string
	for r := 0; r < rounds; r++ {
		for w := 0; w < writersK; w++ {
			artifacts = append(artifacts, fmt.Sprintf("art-r%d-w%d", r, w), fmt.Sprintf("snap-r%d-w%d", r, w))
		}
	}
	agents = []string{"alice"}

	// Cut points: every record boundary (including those interior to a
	// group), their torn-header neighbors, a mid-record byte, plus a stride
	// sample.
	cuts := map[int]bool{0: true, len(walData): true}
	for i, b := range bounds {
		cuts[int(b)] = true
		if int(b)+1 <= len(walData) {
			cuts[int(b)+1] = true
		}
		if i+1 < len(bounds) {
			cuts[int((b+bounds[i+1])/2)] = true
		}
	}
	stride := len(walData) / 120
	if stride < 1 {
		stride = 1
	}
	for c := 0; c <= len(walData); c += stride {
		cuts[c] = true
	}

	caseRoot := t.TempDir()
	caseID := 0
	for cut := range cuts {
		caseID++
		s, rcv := openRecoveredAt(t, crashDir, activeLog, walData, cut, filepath.Join(caseRoot, fmt.Sprintf("g%d", caseID)))
		wantR := 0
		for _, b := range bounds[1:] {
			if int64(cut) >= b {
				wantR++
			}
		}
		if got := int(s.Epoch().N); got != wantR {
			t.Fatalf("cut %d: recovered epoch %d, want %d (prefix of the publish order)", cut, got, wantR)
		}
		if rcv.Replayed != wantR {
			t.Fatalf("cut %d: recovery report %+v, want %d replayed", cut, rcv, wantR)
		}
		refP, refRec := refAt(wantR)
		if err := diffStores(refP, refRec, s, artifacts[:2*wantR], agents); err != nil {
			t.Fatalf("cut %d (epoch %d): %v", cut, wantR, err)
		}
		// A sampled subset also proves the recovered store (group commit
		// enabled again) accepts new grouped ingest.
		if caseID%9 == 0 {
			if err := s.Update(func(rec *prov.Recorder) error {
				rec.Snapshot("post-recovery")
				return nil
			}); err != nil {
				t.Fatalf("cut %d: resume: %v", cut, err)
			}
			if got := int(s.Epoch().N); got != wantR+1 {
				t.Fatalf("cut %d: resume published epoch %d, want %d", cut, got, wantR+1)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
	}
	victim.Close()
}

// TestKillReplayCoalescedMultiStore extends the kill-replay harness across
// the device-level fsync coalescer: two stores commit multi-writer groups
// whose fsync phase rides shared sync windows, and each store's log is then
// cut at every record boundary, torn-header neighbor and mid-record byte.
// Coalescing shares the BARRIER, never the logs — so each store must still
// recover to an exact prefix of its own publish order, exactly as it would
// with a private fsync, no matter where in a coalesced window the cut falls.
func TestKillReplayCoalescedMultiStore(t *testing.T) {
	const (
		writersK = 3
		rounds   = 3
	)
	root := t.TempDir()
	coal, err := wal.NewCoalescer(root, wal.CoalesceAuto)
	if err != nil {
		t.Fatal(err)
	}
	defer coal.Close()
	names := []string{"alpha", "beta"}
	victims := make([]*Store, len(names))
	for i, name := range names {
		s, rcv, err := OpenDurable(DurableOptions{
			Dir:             filepath.Join(root, name),
			CheckpointEvery: 1 << 30,
			CacheCap:        16,
			Coalescer:       coal,
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !rcv.Fresh || !s.GroupCommit() {
			t.Fatalf("store %s: fresh=%v group=%v", name, rcv.Fresh, s.GroupCommit())
		}
		s.commitHold = make(chan struct{})
		victims[i] = s
	}

	// Each round stages writersK batches on EVERY store, then releases all
	// the holds back-to-back so the committers' deferred syncs land in the
	// coalescer together and can share device windows.
	for r := 0; r < rounds; r++ {
		dones := make([]chan error, len(victims))
		for i, s := range victims {
			i, r := i, r
			dones[i] = make(chan error, writersK)
			stageWriters(t, s, writersK, dones[i], func(w int, rec *prov.Recorder) {
				rec.Import("alice", fmt.Sprintf("%s-art-r%d-w%d", names[i], r, w), "http://x")
			})
		}
		for _, s := range victims {
			s.commitHold <- struct{}{}
		}
		for i := range victims {
			for w := 0; w < writersK; w++ {
				if err := <-dones[i]; err != nil {
					t.Fatalf("round %d store %s: %v", r, names[i], err)
				}
			}
		}
	}
	for i, s := range victims {
		gs := s.DurabilityStatsSnapshot().GroupCommit
		if gs.Groups != rounds || gs.CoalescedGroups != rounds {
			t.Fatalf("store %s: %d of %d groups coalesced: %+v", names[i], gs.CoalescedGroups, gs.Groups, gs)
		}
	}
	cs := coal.StatsSnapshot()
	if cs.Requests != uint64(len(names)*rounds) || cs.Windows == 0 || cs.Windows > cs.Requests {
		t.Fatalf("coalescer accounting: %+v, want %d requests over >=1 windows", cs, len(names)*rounds)
	}

	// Cut each store's log independently (a crash freezes both logs at one
	// instant, but recovery is per-store, so per-store cut coverage covers
	// every joint crash image).
	activeLog := "wal-" + fmt.Sprintf("%016x", 0) + ".log"
	caseRoot := t.TempDir()
	caseID := 0
	for i, name := range names {
		srcDir := filepath.Join(root, name)
		walData, err := os.ReadFile(filepath.Join(srcDir, activeLog))
		if err != nil {
			t.Fatal(err)
		}
		bounds := walRecordBoundaries(walData)
		if len(bounds) != writersK*rounds+1 {
			t.Fatalf("store %s: log holds %d records, want %d", name, len(bounds)-1, writersK*rounds)
		}
		var payloads [][]byte
		if _, err := wal.ReplayFile(filepath.Join(srcDir, activeLog), func(epoch uint64, payload []byte) error {
			if epoch != uint64(len(payloads)+1) {
				return fmt.Errorf("log epoch %d at position %d", epoch, len(payloads))
			}
			payloads = append(payloads, append([]byte(nil), payload...))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		refAt := func(n int) (*prov.Graph, *prov.Recorder) {
			t.Helper()
			g := prov.New()
			rec := prov.WrapRecorder(g)
			for _, p := range payloads[:n] {
				first := g.PG().NumVertices()
				if err := g.PG().ApplyDelta(bytes.NewReader(p)); err != nil {
					t.Fatalf("reference delta: %v", err)
				}
				rec.IndexFrom(graph.VertexID(first))
			}
			return g.Freeze(), rec
		}
		var artifacts []string
		for r := 0; r < rounds; r++ {
			for w := 0; w < writersK; w++ {
				artifacts = append(artifacts, fmt.Sprintf("%s-art-r%d-w%d", name, r, w))
			}
		}

		cuts := map[int]bool{0: true, len(walData): true}
		for j, b := range bounds {
			cuts[int(b)] = true
			if int(b)+1 <= len(walData) {
				cuts[int(b)+1] = true
			}
			if j+1 < len(bounds) {
				cuts[int((b+bounds[j+1])/2)] = true
			}
		}
		for cut := range cuts {
			caseID++
			s, rcv := openRecoveredAt(t, srcDir, activeLog, walData, cut, filepath.Join(caseRoot, fmt.Sprintf("m%d", caseID)))
			wantR := 0
			for _, b := range bounds[1:] {
				if int64(cut) >= b {
					wantR++
				}
			}
			if got := int(s.Epoch().N); got != wantR {
				t.Fatalf("store %s cut %d: recovered epoch %d, want %d (prefix of the publish order)", name, cut, got, wantR)
			}
			if rcv.Replayed != wantR {
				t.Fatalf("store %s cut %d: recovery report %+v", name, cut, rcv)
			}
			refP, refRec := refAt(wantR)
			// Absent artifacts compare equal on both sides, so the full name
			// list is safe at every prefix.
			if err := diffStores(refP, refRec, s, artifacts, []string{"alice"}); err != nil {
				t.Fatalf("store %s cut %d (epoch %d): %v", name, cut, wantR, err)
			}
			if err := s.Close(); err != nil {
				t.Fatalf("store %s cut %d: close: %v", name, cut, err)
			}
		}
		if err := victims[i].Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestKillReplayAcrossCheckpoints crashes a run that checkpointed mid-way:
// recovery must chain the newest checkpoint with the log tail, and cuts in
// the active log must land on checkpoint-or-later epochs.
func TestKillReplayAcrossCheckpoints(t *testing.T) {
	const nBatches = 10
	script := randomScript(2, nBatches)
	refStore, refSnaps := refRun(t, script)
	defer refStore.Close()

	crashDir := t.TempDir()
	// Huge CheckpointEvery disables the background trigger; the test drives
	// checkpoints synchronously at exact epochs instead.
	victim, _, err := OpenDurable(DurableOptions{Dir: crashDir, CheckpointEvery: 1 << 30, CacheCap: 16}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ckptAt := map[int]bool{3: true, 7: true}
	for j, b := range script {
		ingestBatch(t, victim, b)
		if ckptAt[j+1] {
			if err := victim.checkpointNow(); err != nil {
				t.Fatalf("checkpoint at %d: %v", j+1, err)
			}
		}
	}
	activeLog := "wal-" + fmt.Sprintf("%016x", 7) + ".log"
	walData, err := os.ReadFile(filepath.Join(crashDir, activeLog))
	if err != nil {
		t.Fatal(err)
	}
	bounds := walRecordBoundaries(walData)
	if len(bounds) != nBatches-7+1 {
		t.Fatalf("active log holds %d records, want %d", len(bounds)-1, nBatches-7)
	}

	caseRoot := t.TempDir()
	for cut := 0; cut <= len(walData); cut++ {
		s, rcv := openRecoveredAt(t, crashDir, activeLog, walData, cut, filepath.Join(caseRoot, fmt.Sprintf("c%d", cut)))
		r := int(s.Epoch().N)
		if r < 7 || rcv.CheckpointEpoch != 7 {
			t.Fatalf("cut %d: recovered epoch %d from checkpoint %d, want >=7 from 7", cut, r, rcv.CheckpointEpoch)
		}
		if err := diffStores(refSnaps[r], refRecorderAt(script, r), s, scriptArtifacts, scriptAgents); err != nil {
			t.Fatalf("cut %d (epoch %d): %v", cut, r, err)
		}
		s.Close()
	}
	victim.Close()
}

// TestDurableRestartCycle covers the clean path: ingest, Close (final
// checkpoint), reopen, verify, keep ingesting, with background
// checkpointing enabled at a small cadence.
func TestDurableRestartCycle(t *testing.T) {
	script := randomScript(3, 9)
	refStore, refSnaps := refRun(t, script)
	defer refStore.Close()

	dir := t.TempDir()
	s, _, err := OpenDurable(DurableOptions{Dir: dir, CheckpointEvery: 2, CacheCap: 16}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range script[:5] {
		ingestBatch(t, s, b)
	}
	if !s.Durable() {
		t.Fatal("durable store says not durable")
	}
	if st := s.DurabilityStatsSnapshot(); st == nil || st.Records != 5 || st.Fsyncs < 5 {
		t.Fatalf("durability stats: %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, rcv, err := OpenDurable(DurableOptions{Dir: dir, CheckpointEvery: 2, CacheCap: 16}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Close checkpointed, so the restart replays nothing.
	if rcv.Fresh || rcv.Epoch != 5 || rcv.Replayed != 0 || rcv.TornTail {
		t.Fatalf("clean restart recovery: %+v", rcv)
	}
	if err := diffStores(refSnaps[5], refRecorderAt(script, 5), s2, scriptArtifacts, scriptAgents); err != nil {
		t.Fatalf("after restart: %v", err)
	}
	for _, b := range script[5:] {
		ingestBatch(t, s2, b)
	}
	if err := diffStores(refSnaps[len(script)], refRecorderAt(script, len(script)), s2, scriptArtifacts, scriptAgents); err != nil {
		t.Fatalf("after resumed ingest: %v", err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// Memory-only stores report no durability stats and Close is a no-op.
	mem := NewStore(prov.New(), 4)
	if mem.Durable() || mem.DurabilityStatsSnapshot() != nil || mem.Close() != nil {
		t.Fatal("memory-only store leaks durability state")
	}
}

// TestDurableFsyncPolicies smoke-tests the non-default fsync policies: the
// daemon stays correct (recovery of a cleanly-closed store is exact), only
// the crash-loss window differs.
func TestDurableFsyncPolicies(t *testing.T) {
	script := randomScript(4, 5)
	for _, policy := range []wal.SyncPolicy{wal.SyncInterval, wal.SyncNever} {
		dir := t.TempDir()
		s, _, err := OpenDurable(DurableOptions{Dir: dir, Fsync: policy, CheckpointEvery: 1 << 30, CacheCap: 8}, nil)
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		for _, b := range script {
			ingestBatch(t, s, b)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("%v: close: %v", policy, err)
		}
		s2, rcv, err := OpenDurable(DurableOptions{Dir: dir, Fsync: policy, CacheCap: 8}, nil)
		if err != nil {
			t.Fatalf("%v: reopen: %v", policy, err)
		}
		if rcv.Epoch != uint64(len(script)) {
			t.Fatalf("%v: recovered epoch %d, want %d", policy, rcv.Epoch, len(script))
		}
		s2.Close()
	}
}

// TestDurableWALFailurePoisonsWrites forces an append failure and asserts
// the store refuses subsequent writes instead of diverging from its log.
func TestDurableWALFailurePoisonsWrites(t *testing.T) {
	dir := t.TempDir()
	s, _, err := OpenDurable(DurableOptions{Dir: dir, CheckpointEvery: 1 << 30, CacheCap: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	script := randomScript(5, 3)
	ingestBatch(t, s, script[0])
	epoch := s.Epoch().N
	// Sever the log out from under the store: the next append's fsync (or
	// write) fails, the batch must stay unpublished, and the store must
	// refuse writes from then on.
	if err := s.wal.Close(); err != nil {
		t.Fatal(err)
	}
	err = s.Update(func(rec *prov.Recorder) error {
		applyScriptOps(rec, script[1])
		return nil
	})
	if err == nil {
		t.Fatal("update succeeded with a dead WAL")
	}
	if got := s.Epoch().N; got != epoch {
		t.Fatalf("failed update published epoch %d", got)
	}
	if err := s.Update(func(rec *prov.Recorder) error { return nil }); err == nil {
		t.Fatal("store accepted writes after WAL failure")
	}
}
