package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/prov"
)

// Admission-control tests: the GCRA rate limiter, the concurrency cap, the
// commit-queue backpressure, and the PUT /stores/{name} configuration
// surface. The timing-sensitive cases use slow rates (emission intervals of
// hundreds of milliseconds) so scheduler jitter cannot flip an admit into a
// reject or vice versa.

func TestQoSConfigValidate(t *testing.T) {
	valid := []QoSConfig{
		{},
		{RatePerSec: 10},
		{RatePerSec: 10, Burst: 3},
		{MaxConcurrent: 4},
		{MaxQueue: commitQueueCap},
		{RatePerSec: 0.5, Burst: 1, MaxConcurrent: 2, MaxQueue: 8},
	}
	for _, cfg := range valid {
		if err := cfg.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", cfg, err)
		}
	}
	invalid := []QoSConfig{
		{RatePerSec: -1},
		{RatePerSec: 1, Burst: -1},
		{MaxConcurrent: -2},
		{MaxQueue: -1},
		{Burst: 3}, // a burst with no rate to refill it
		{MaxQueue: commitQueueCap + 1},
	}
	for _, cfg := range invalid {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", cfg)
		}
	}
	// SetQoS is the only write path for configs and must apply Validate.
	s := NewStore(prov.New(), 4)
	if err := s.SetQoS(QoSConfig{Burst: 2}); err == nil {
		t.Error("SetQoS accepted a burst without a rate")
	}
}

func TestQoSRateAdmission(t *testing.T) {
	s := NewStore(prov.New(), 4)
	// Emission interval 200ms, burst 2: two admits back-to-back from idle,
	// then rejection until the bucket refills.
	if err := s.SetQoS(QoSConfig{RatePerSec: 5, Burst: 2}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		release, _, ok := s.Admit()
		if !ok {
			t.Fatalf("admit %d refused from idle (burst 2)", i)
		}
		release()
	}
	_, retry, ok := s.Admit()
	if ok {
		t.Fatal("third immediate request conformed past the burst")
	}
	if retry <= 0 || retry > 200*time.Millisecond {
		t.Fatalf("retry hint %v, want within (0, 200ms]", retry)
	}
	time.Sleep(250 * time.Millisecond) // one emission interval refills one slot
	release, _, ok := s.Admit()
	if !ok {
		t.Fatal("request refused after the bucket refilled")
	}
	release()

	st := s.QoSStatsSnapshot()
	if st.Admitted != 3 || st.RejectedRate != 1 || st.Rejected != 1 {
		t.Fatalf("qos stats after 3 admits + 1 rate reject: %+v", st)
	}
}

func TestQoSBurstDefault(t *testing.T) {
	s := NewStore(prov.New(), 4)
	for rate, wantBurst := range map[float64]int{2.5: 2, 0.5: 1, 8: 8} {
		if err := s.SetQoS(QoSConfig{RatePerSec: rate}); err != nil {
			t.Fatal(err)
		}
		if got := s.QoSConfigSnapshot().Burst; got != wantBurst {
			t.Errorf("rate %v: derived burst %d, want %d", rate, got, wantBurst)
		}
	}
}

func TestQoSConcurrencyCap(t *testing.T) {
	s := NewStore(prov.New(), 4)
	if err := s.SetQoS(QoSConfig{MaxConcurrent: 2}); err != nil {
		t.Fatal(err)
	}
	relA, _, ok := s.Admit()
	if !ok {
		t.Fatal("first admit refused")
	}
	_, _, ok = s.Admit()
	if !ok {
		t.Fatal("second admit refused under cap 2")
	}
	_, retry, ok := s.Admit()
	if ok {
		t.Fatal("third in-flight request admitted past cap 2")
	}
	if retry != concRetryAfter {
		t.Fatalf("concurrency retry hint %v, want %v", retry, concRetryAfter)
	}
	if st := s.QoSStatsSnapshot(); st.Inflight != 2 || st.RejectedConcurrency != 1 {
		t.Fatalf("qos stats at the cap: %+v", st)
	}
	relA()
	relA() // release is idempotent: a double call must not free a phantom slot
	relD, _, ok := s.Admit()
	if !ok {
		t.Fatal("admit refused after a release freed a slot")
	}
	if _, _, ok := s.Admit(); ok {
		t.Fatal("double release leaked a concurrency slot")
	}
	relD()
}

func TestSetQoSSwap(t *testing.T) {
	s := NewStore(prov.New(), 4)
	if err := s.SetQoS(QoSConfig{RatePerSec: 5, Burst: 1}); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Admit(); !ok {
		t.Fatal("burst-1 first admit refused")
	}
	if _, _, ok := s.Admit(); ok {
		t.Fatal("burst-1 second immediate admit conformed")
	}
	// Swapping in the zero config removes admission control entirely; the
	// reject counters survive the swap (they live on the store).
	if err := s.SetQoS(QoSConfig{}); err != nil {
		t.Fatal(err)
	}
	if got := s.QoSConfigSnapshot(); got != (QoSConfig{}) {
		t.Fatalf("config after reset: %+v", got)
	}
	for i := 0; i < 10; i++ {
		release, _, ok := s.Admit()
		if !ok {
			t.Fatalf("unlimited store refused request %d", i)
		}
		release()
	}
	if st := s.QoSStatsSnapshot(); st.RejectedRate != 1 {
		t.Fatalf("reject counters reset by config swap: %+v", st)
	}
}

// TestBackpressureRejectsBeforeMutation parks the committer with a full
// (per config) commit queue and asserts the next write is refused with
// ErrBackpressure before the update closure mutates anything, then that the
// store drains and serves normally once the committer resumes.
func TestBackpressureRejectsBeforeMutation(t *testing.T) {
	s, _, err := OpenDurable(DurableOptions{Dir: t.TempDir(), CheckpointEvery: 1 << 30, CacheCap: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.commitHold = make(chan struct{})

	done := make(chan error, 3)
	stageWriters(t, s, 3, done, snapshotOp) // 1 held by the committer + 2 staged
	// Configure the cap only now: a lower bound set before staging could
	// reject one of the stagers themselves and leave the queue short.
	if err := s.SetQoS(QoSConfig{MaxQueue: 2}); err != nil {
		t.Fatal(err)
	}
	mutated := false
	err = s.Update(func(rec *prov.Recorder) error {
		mutated = true
		rec.Snapshot("must-not-land")
		return nil
	})
	if !errors.Is(err, ErrBackpressure) {
		t.Fatalf("update against a full queue: %v, want ErrBackpressure", err)
	}
	if mutated {
		t.Fatal("backpressure rejection ran the update closure")
	}
	if st := s.QoSStatsSnapshot(); st.RejectedQueue != 1 || st.QueueDepth != 2 {
		t.Fatalf("qos stats with a saturated queue: %+v", st)
	}

	s.commitHold <- struct{}{}
	for i := 0; i < 3; i++ {
		if err := <-done; err != nil {
			t.Fatalf("staged writer: %v", err)
		}
	}
	go func() { s.commitHold <- struct{}{} }() // release the next group too
	if err := s.Update(func(rec *prov.Recorder) error {
		rec.Snapshot("after-drain")
		return nil
	}); err != nil {
		t.Fatalf("update after the queue drained: %v", err)
	}
	if got := s.Epoch().N; got != 4 {
		t.Fatalf("epoch %d after 3 staged + 1 post-drain commits, want 4 (the rejected batch must not publish)", got)
	}
}

// TestIngestBackpressureHTTP drives the same saturation through the HTTP
// layer: the ingest must answer 429 with Retry-After and the request id,
// then succeed after the committer drains.
func TestIngestBackpressureHTTP(t *testing.T) {
	reg, _, err := OpenRegistry(RegistryOptions{
		DataDir:         t.TempDir(),
		CheckpointEvery: 1 << 30,
		CacheCap:        8,
	}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	st := reg.Default()
	st.commitHold = make(chan struct{})
	ts := httptest.NewServer(NewMultiServer(reg))
	defer ts.Close()

	done := make(chan error, 2)
	stageWriters(t, st, 2, done, snapshotOp)
	// Cap the queue at its current depth only after staging, so the stagers
	// themselves were never subject to it.
	if err := st.SetQoS(QoSConfig{MaxQueue: 1}); err != nil {
		t.Fatal(err)
	}

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/ingest", jsonBody(t, IngestRequest{
		Ops: []IngestOp{{Op: "snapshot", Artifact: "bp-probe"}},
	}))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "bp-reject")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("ingest against a full queue: status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("backpressure Retry-After %q, want \"1\"", got)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "bp-reject" {
		t.Fatalf("429 echoed request id %q, want the client's", got)
	}

	st.commitHold <- struct{}{}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatalf("staged writer: %v", err)
		}
	}
	go func() { st.commitHold <- struct{}{} }() // release the next group too
	var ing IngestResponse
	if code := doJSON(t, http.MethodPost, ts.URL+"/ingest", IngestRequest{
		Ops: []IngestOp{{Op: "snapshot", Artifact: "bp-after"}},
	}, &ing); code != http.StatusOK {
		t.Fatalf("ingest after drain: status %d", code)
	}
	if st.QoSStatsSnapshot().RejectedQueue != 1 {
		t.Fatalf("qos stats: %+v", st.QoSStatsSnapshot())
	}
}

// TestStoreCreateQoSBody covers the PUT /stores/{name} configuration
// surface: create with limits, reconfigure an existing store, an empty body
// keeping the config, and an explicit zero config removing it.
func TestStoreCreateQoSBody(t *testing.T) {
	reg, _, err := OpenRegistry(RegistryOptions{CacheCap: 8}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	ts := httptest.NewServer(NewMultiServer(reg))
	defer ts.Close()

	cfg := QoSConfig{RatePerSec: 5, Burst: 2, MaxConcurrent: 4, MaxQueue: 8}
	var created StoreCreateResponse
	if code := doJSON(t, http.MethodPut, ts.URL+"/stores/limited",
		StoreCreateRequest{QoS: &cfg}, &created); code != http.StatusCreated {
		t.Fatalf("create with qos: status %d", code)
	}
	if !created.Created || created.QoS != cfg {
		t.Fatalf("create reply: %+v", created)
	}
	st, err := reg.Get("limited")
	if err != nil {
		t.Fatal(err)
	}
	if got := st.QoSConfigSnapshot(); got != cfg {
		t.Fatalf("store config %+v, want %+v", got, cfg)
	}
	var m MetricsResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/stores/limited/metrics", nil, &m); code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	if m.QoS.Config != cfg {
		t.Fatalf("metrics qos panel config %+v, want %+v", m.QoS.Config, cfg)
	}

	// An empty body is "open or create", never "reset the config".
	if code := doJSON(t, http.MethodPut, ts.URL+"/stores/limited", nil, &created); code != http.StatusOK {
		t.Fatalf("bare re-PUT: status %d", code)
	}
	if created.Created || created.QoS != cfg {
		t.Fatalf("bare re-PUT reply: %+v", created)
	}

	// Reconfigure in place, then remove the limits with an explicit zero.
	cfg2 := QoSConfig{RatePerSec: 50}
	if code := doJSON(t, http.MethodPut, ts.URL+"/stores/limited",
		StoreCreateRequest{QoS: &cfg2}, &created); code != http.StatusOK {
		t.Fatalf("reconfigure: status %d", code)
	}
	if created.QoS.RatePerSec != 50 || created.QoS.Burst != 50 {
		t.Fatalf("reconfigure reply (burst should derive from rate): %+v", created.QoS)
	}
	created = StoreCreateResponse{} // the zero config omits fields; decode fresh
	if code := doJSON(t, http.MethodPut, ts.URL+"/stores/limited",
		StoreCreateRequest{QoS: &QoSConfig{}}, &created); code != http.StatusOK {
		t.Fatalf("unlimit: status %d", code)
	}
	if created.QoS != (QoSConfig{}) {
		t.Fatalf("unlimit reply: %+v", created.QoS)
	}
	if got := st.QoSConfigSnapshot(); got != (QoSConfig{}) {
		t.Fatalf("store still limited after zero config: %+v", got)
	}
}

// TestRegistryDefaultQoS: a registry-wide default policy applies to boot
// stores and runtime-created stores alike, and OpenRegistry refuses an
// invalid default outright.
func TestRegistryDefaultQoS(t *testing.T) {
	def := QoSConfig{RatePerSec: 100, Burst: 10}
	reg, _, err := OpenRegistry(RegistryOptions{CacheCap: 8, DefaultQoS: def}, []string{"boot"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	for _, name := range []string{DefaultStore, "boot"} {
		st, err := reg.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := st.QoSConfigSnapshot(); got != def {
			t.Errorf("store %q config %+v, want the registry default %+v", name, got, def)
		}
	}
	st, createdNow, err := reg.Create("later")
	if err != nil || !createdNow {
		t.Fatalf("create: %v", err)
	}
	if got := st.QoSConfigSnapshot(); got != def {
		t.Errorf("runtime store config %+v, want the registry default %+v", got, def)
	}

	if _, _, err := OpenRegistry(RegistryOptions{CacheCap: 8, DefaultQoS: QoSConfig{Burst: 1}}, nil, nil); err == nil ||
		!strings.Contains(err.Error(), "burst") {
		t.Fatalf("invalid default qos accepted: %v", err)
	}
}

// jsonBody marshals v for a hand-built request (when doJSON's header
// handling is not enough).
func jsonBody(t *testing.T, v any) *bytes.Reader {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(b)
}
