package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/prov"
	"repro/internal/wal"
)

// Registry hosts N named stores behind one daemon. Each store is a fully
// independent shard: its own epoch pointer, segment cache, prov.Recorder,
// request counters and — on durable registries — its own WAL/checkpoint
// directory under DataDir/<name>/, so shards ingest concurrently without
// serializing behind each other's fsyncs. The HTTP layer routes
// /stores/{name}/... to the named store; the legacy unprefixed endpoints
// alias the default store.
//
// A durable registry's directory tree looks like
//
//	<data>/default/checkpoint-....pg  wal-....log
//	<data>/audit/checkpoint-....pg    wal-....log
//	...
//
// Opening a registry scans DataDir for subdirectories holding durable state
// and recovers every one of them; stores created later (PUT /stores/{name})
// bootstrap a fresh subdirectory. For backward compatibility with the
// single-store layout, checkpoint/WAL files sitting directly in DataDir are
// adopted as the default store's state.

// DefaultStore is the name the unprefixed legacy endpoints resolve to.
const DefaultStore = "default"

// maxStoreName bounds store name length.
const maxStoreName = 64

// ErrUnknownStore reports a routed store name with no store behind it.
var ErrUnknownStore = errors.New("unknown store")

// ValidStoreName reports whether name is usable as a store name (and thus a
// data subdirectory): 1..64 characters drawn from [a-zA-Z0-9_-]. The
// character set makes path traversal unspellable.
func ValidStoreName(name string) bool {
	if len(name) == 0 || len(name) > maxStoreName {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}

// RegistryOptions configures every store a registry opens or creates.
type RegistryOptions struct {
	// DataDir is the root data directory; empty builds memory-only stores.
	DataDir string
	// Fsync, SyncInterval, CheckpointEvery and NoGroupCommit configure each
	// store's durability exactly as in DurableOptions.
	Fsync           wal.SyncPolicy
	SyncInterval    time.Duration
	CheckpointEvery int
	NoGroupCommit   bool
	// NoCoalesce disables the registry-wide fsync coalescer, leaving each
	// store's committer to fsync its own log. By default (group commit +
	// SyncAlways on a durable registry) all stores share device-level sync
	// windows — one flush per window instead of one per store — which is
	// what keeps the group-commit speedup from collapsing as stores are
	// added (see wal.Coalescer).
	NoCoalesce bool
	// DefaultQoS is the admission policy every opened or created store
	// starts with (zero = no limits); PUT /stores/{name} can override it
	// per store.
	DefaultQoS QoSConfig
	// CacheCap bounds each store's segment cache (entries).
	CacheCap int
	// Logger, when non-nil, receives each store's per-commit Debug lines.
	Logger *slog.Logger
}

// StoreRecovery pairs a recovered store name with what its startup found.
type StoreRecovery struct {
	Name string
	Rcv  *wal.Recovery
}

// Registry is the named-store map plus the configuration new stores adopt.
type Registry struct {
	opts RegistryOptions

	// createMu serializes store creations with each other (so two PUTs for
	// one name never bootstrap the same directory concurrently) WITHOUT
	// holding mu across the bootstrap I/O — request routing on existing
	// shards never stalls behind a slow disk.
	createMu sync.Mutex

	// coal is the registry-wide fsync coalescer durable stores commit
	// through (nil when disabled or memory-only). Closed after the stores.
	coal *wal.Coalescer

	// Follower mode (see follow_registry.go): the leader being mirrored,
	// the HTTP client shared by discovery polls and replication streams,
	// the applier redial pace, and the discovery loop's lifecycle. All
	// zero on ordinary registries.
	leaderURL      string
	replClient     *http.Client
	replBackoff    time.Duration
	discoverCancel context.CancelFunc
	discoverDone   chan struct{}

	mu     sync.RWMutex
	stores map[string]*Store
	closed bool
}

// OpenRegistry opens a registry: the default store always exists (seeded by
// seed on a fresh directory, exactly as OpenDurable), extra lists additional
// stores to open or create at boot, and — on durable registries — every
// DataDir subdirectory already holding state is recovered even if unnamed
// here. Returns the per-store recovery reports, default store first.
func OpenRegistry(opts RegistryOptions, extra []string, seed func() (*prov.Graph, error)) (*Registry, []StoreRecovery, error) {
	if err := opts.DefaultQoS.Validate(); err != nil {
		return nil, nil, fmt.Errorf("registry: %w", err)
	}
	r := &Registry{opts: opts, stores: make(map[string]*Store)}
	if opts.DataDir != "" && !opts.NoGroupCommit && !opts.NoCoalesce && opts.Fsync == wal.SyncAlways {
		if err := os.MkdirAll(opts.DataDir, 0o755); err != nil {
			return nil, nil, err
		}
		c, err := wal.NewCoalescer(opts.DataDir, wal.CoalesceAuto)
		if err != nil {
			return nil, nil, err
		}
		r.coal = c
	}
	names := []string{DefaultStore}
	seen := map[string]bool{DefaultStore: true}
	add := func(name string) error {
		if seen[name] {
			return nil
		}
		if !ValidStoreName(name) {
			return fmt.Errorf("registry: invalid store name %q", name)
		}
		seen[name] = true
		names = append(names, name)
		return nil
	}
	for _, name := range extra {
		if err := add(name); err != nil {
			return nil, nil, err
		}
	}
	if opts.DataDir != "" {
		// A tree with state both directly in DataDir (pre-sharding layout)
		// and under DataDir/default/ is ambiguous: adopting either would
		// silently shadow the other's graph. Refuse and make the operator
		// pick one.
		rootHas, err := wal.DirHasState(opts.DataDir)
		if err != nil {
			return nil, nil, err
		}
		subHas, err := wal.DirHasState(filepath.Join(opts.DataDir, DefaultStore))
		if err != nil {
			return nil, nil, err
		}
		if rootHas && subHas {
			return nil, nil, fmt.Errorf(
				"registry: %s holds default-store state both directly (legacy layout) and under %s; move one aside",
				opts.DataDir, filepath.Join(opts.DataDir, DefaultStore))
		}
		entries, err := os.ReadDir(opts.DataDir)
		if err != nil && !os.IsNotExist(err) {
			return nil, nil, err
		}
		for _, e := range entries {
			if !e.IsDir() || !ValidStoreName(e.Name()) {
				continue
			}
			has, err := wal.DirHasState(filepath.Join(opts.DataDir, e.Name()))
			if err != nil {
				return nil, nil, err
			}
			if has {
				if err := add(e.Name()); err != nil {
					return nil, nil, err
				}
			}
		}
		sort.Strings(names[1:]) // deterministic boot order after the default
	}

	var rcvs []StoreRecovery
	for _, name := range names {
		storeSeed := seed
		if name != DefaultStore {
			storeSeed = nil // -in/-gen seed the default store only
		}
		s, rcv, err := r.open(name, storeSeed)
		if err != nil {
			r.Close()
			return nil, nil, fmt.Errorf("registry: store %q: %w", name, err)
		}
		r.stores[name] = s
		rcvs = append(rcvs, StoreRecovery{Name: name, Rcv: rcv})
	}
	return r, rcvs, nil
}

// NewMemRegistry builds a memory-only registry around an existing default
// store (the single-store constructors' upgrade path).
func NewMemRegistry(def *Store, cacheCap int) *Registry {
	def.name = DefaultStore
	return &Registry{
		opts:   RegistryOptions{CacheCap: cacheCap},
		stores: map[string]*Store{DefaultStore: def},
	}
}

// storeDir maps a store name to its data subdirectory. The default store
// adopts legacy single-store state sitting directly in DataDir.
func (r *Registry) storeDir(name string) string {
	dir := filepath.Join(r.opts.DataDir, name)
	if name == DefaultStore {
		if has, err := wal.DirHasState(r.opts.DataDir); err == nil && has {
			return r.opts.DataDir
		}
	}
	return dir
}

// open builds one store per the registry configuration (no map insert).
func (r *Registry) open(name string, seed func() (*prov.Graph, error)) (*Store, *wal.Recovery, error) {
	if r.opts.DataDir == "" {
		var p *prov.Graph
		var err error
		if seed != nil {
			p, err = seed()
		} else {
			p = prov.New()
		}
		if err != nil {
			return nil, nil, err
		}
		s := NewStore(p, r.opts.CacheCap)
		s.name = name
		s.logger = r.opts.Logger
		_ = s.SetQoS(r.opts.DefaultQoS) // validated at OpenRegistry
		return s, &wal.Recovery{Fresh: true}, nil
	}
	s, rcv, err := OpenDurable(DurableOptions{
		Dir:             r.storeDir(name),
		Fsync:           r.opts.Fsync,
		SyncInterval:    r.opts.SyncInterval,
		CheckpointEvery: r.opts.CheckpointEvery,
		CacheCap:        r.opts.CacheCap,
		NoGroupCommit:   r.opts.NoGroupCommit,
		Coalescer:       r.coal,
		Logger:          r.opts.Logger,
	}, seed)
	if err != nil {
		return nil, nil, err
	}
	s.name = name
	_ = s.SetQoS(r.opts.DefaultQoS) // validated at OpenRegistry
	return s, rcv, nil
}

// Get returns the named store, or ErrUnknownStore. Lock-free on the read
// path beyond one RLock.
func (r *Registry) Get(name string) (*Store, error) {
	r.mu.RLock()
	s, ok := r.stores[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownStore, name)
	}
	return s, nil
}

// Create opens (or returns) the named store, reporting whether it was
// created by this call. New durable stores bootstrap a fresh empty
// subdirectory; creation is idempotent so PUT /stores/{name} can be
// retried. The bootstrap I/O runs outside the routing lock: requests to
// existing shards proceed while a store is being created.
func (r *Registry) Create(name string) (*Store, bool, error) {
	if !ValidStoreName(name) {
		return nil, false, fmt.Errorf("registry: invalid store name %q (want 1-%d chars of [a-zA-Z0-9_-])", name, maxStoreName)
	}
	r.createMu.Lock()
	defer r.createMu.Unlock()
	r.mu.RLock()
	s, ok := r.stores[name]
	closed := r.closed
	r.mu.RUnlock()
	if closed {
		return nil, false, errors.New("registry: closed")
	}
	if ok {
		return s, false, nil
	}
	// Not present, and no concurrent creation possible (createMu): bootstrap
	// with no registry lock held.
	s, _, err := r.open(name, nil)
	if err != nil {
		return nil, false, fmt.Errorf("registry: store %q: %w", name, err)
	}
	r.mu.Lock()
	if r.closed {
		// Close ran while we were bootstrapping and will not see this store;
		// seal it here instead of leaking its WAL.
		r.mu.Unlock()
		_ = s.Close()
		return nil, false, errors.New("registry: closed")
	}
	r.stores[name] = s
	r.mu.Unlock()
	return s, true, nil
}

// Names lists the stores, sorted, default first.
func (r *Registry) Names() []string {
	stores := r.List()
	names := make([]string, len(stores))
	for i, s := range stores {
		names[i] = s.Name()
	}
	return names
}

// List returns one consistent snapshot of the stores, sorted by name with
// the default store first.
func (r *Registry) List() []*Store {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.stores))
	for name := range r.stores {
		if name != DefaultStore {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if _, ok := r.stores[DefaultStore]; ok {
		names = append([]string{DefaultStore}, names...)
	}
	stores := make([]*Store, len(names))
	for i, name := range names {
		stores[i] = r.stores[name]
	}
	return stores
}

// Default returns the default store.
func (r *Registry) Default() *Store {
	s, _ := r.Get(DefaultStore)
	return s
}

// Coalescer returns the registry-wide fsync coalescer (nil when disabled
// or memory-only).
func (r *Registry) Coalescer() *wal.Coalescer { return r.coal }

// Close closes every store (sealing WALs, writing final checkpoints) and
// refuses further creations. The first error wins; all stores are closed
// regardless. The shared coalescer closes after the stores — their
// committers are drained by then, and a straggler would still fall back to
// a direct fsync rather than fail.
func (r *Registry) Close() error {
	// Follower registries: stop discovery before the stores so no new
	// applier starts while the map is being torn down.
	r.CloseFollow()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	var first error
	for _, name := range sortedKeys(r.stores) {
		if err := r.stores[name].Close(); err != nil && first == nil {
			first = fmt.Errorf("store %q: %w", name, err)
		}
	}
	if r.coal != nil {
		if err := r.coal.Close(); err != nil && first == nil {
			first = fmt.Errorf("coalescer: %w", err)
		}
	}
	return first
}

func sortedKeys(m map[string]*Store) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
