package server

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"time"
)

// Follower registries: OpenFollower stands up a registry whose stores
// mirror a leader provd instead of owning data directories. Every store is
// memory-only, marked follower (writes redirect to the leader), and runs
// an applier goroutine tailing the leader's wal stream. A discovery loop
// polls the leader's GET /stores so stores created on the leader appear
// here without a restart; stores are never dropped on a poll miss (a
// transiently unreachable leader must not tear down working replicas).

// FollowerOptions configures OpenFollower.
type FollowerOptions struct {
	// LeaderURL is the leader's base URL (e.g. http://host:9464).
	LeaderURL string
	// CacheCap bounds each follower store's segment cache (entries).
	CacheCap int
	// Client serves both the discovery polls and the replication streams;
	// nil selects a client with no overall timeout (streams are long-lived;
	// polls bound themselves with per-request contexts).
	Client *http.Client
	// PollInterval paces store discovery (<=0 selects 2s).
	PollInterval time.Duration
	// ReconnectBackoff paces applier redials (<=0 selects the default).
	ReconnectBackoff time.Duration
	// Logger, when non-nil, receives per-store replication log lines.
	Logger *slog.Logger
}

// defaultDiscoveryPoll is the store-discovery poll period.
const defaultDiscoveryPoll = 2 * time.Second

// discoveryTimeout bounds one GET /stores poll.
const discoveryTimeout = 5 * time.Second

// OpenFollower opens a follower registry over the leader. The default
// store exists (and replicates) immediately; the first discovery poll runs
// synchronously so a reachable leader's store set is mirrored before the
// follower starts serving, and an unreachable leader just means discovery
// keeps retrying in the background while the default store's applier
// redials on its own schedule.
func OpenFollower(opts FollowerOptions) (*Registry, error) {
	if opts.LeaderURL == "" {
		return nil, fmt.Errorf("follower: leader URL required")
	}
	if opts.Client == nil {
		opts.Client = &http.Client{}
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = defaultDiscoveryPoll
	}
	r := &Registry{
		opts:        RegistryOptions{CacheCap: opts.CacheCap, Logger: opts.Logger},
		stores:      make(map[string]*Store),
		leaderURL:   strings.TrimSuffix(opts.LeaderURL, "/"),
		replClient:  opts.Client,
		replBackoff: opts.ReconnectBackoff,
	}
	r.addFollowerStore(DefaultStore)

	ctx, cancel := context.WithCancel(context.Background())
	r.discoverCancel = cancel
	r.discoverDone = make(chan struct{})
	r.discoverOnce(ctx)
	go r.discoverLoop(ctx, opts.PollInterval)
	return r, nil
}

// FollowerOf returns the leader a follower registry mirrors; empty on
// ordinary registries.
func (r *Registry) FollowerOf() string { return r.leaderURL }

// addFollowerStore creates and registers a follower store (with a running
// applier) for name if absent. Caller must not hold mu.
func (r *Registry) addFollowerStore(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	if _, ok := r.stores[name]; ok {
		return
	}
	s := newFollowerStore(name, r.leaderURL, r.opts.CacheCap)
	s.logger = r.opts.Logger
	s.startApplier(r.replClient, r.replBackoff)
	r.stores[name] = s
}

// discoverLoop mirrors the leader's store set until the registry closes.
func (r *Registry) discoverLoop(ctx context.Context, every time.Duration) {
	defer close(r.discoverDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			r.discoverOnce(ctx)
		case <-ctx.Done():
			return
		}
	}
}

// discoverOnce polls GET /stores on the leader and creates follower stores
// for any names not yet mirrored. Errors are logged and retried on the
// next tick.
func (r *Registry) discoverOnce(ctx context.Context) {
	ctx, cancel := context.WithTimeout(ctx, discoveryTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.leaderURL+"/stores", nil)
	if err != nil {
		return
	}
	resp, err := r.replClient.Do(req)
	if err != nil {
		if r.opts.Logger != nil {
			r.opts.Logger.Debug("store discovery failed", "leader", r.leaderURL, "err", err)
		}
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	var list StoreListResponse
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		return
	}
	for _, info := range list.Stores {
		if ValidStoreName(info.Name) {
			r.addFollowerStore(info.Name)
		}
	}
}

// CloseFollow stops the discovery loop (no-op on ordinary registries).
// Close calls it; exposed for tests that tear down discovery first.
func (r *Registry) CloseFollow() {
	if r.discoverCancel == nil {
		return
	}
	r.discoverCancel()
	<-r.discoverDone
}
