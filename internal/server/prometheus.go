package server

import (
	"net/http"

	"repro/internal/obs"
)

// Prometheus text exposition of the store metrics (GET /metrics with
// ?format=prometheus or an Accept header asking for text). The catalog
// mirrors the JSON panel — same underlying counters, rendered as metric
// families labeled by store (and endpoint / stage / class where the JSON
// nests maps):
//
//	provd_epoch{store}                     current epoch (gauge)
//	provd_graph_vertices{store}            snapshot vertex count
//	provd_graph_edges{store}               snapshot edge count
//	provd_uptime_seconds{store}            store uptime
//	provd_requests_routed_total{store,endpoint}          routed totals
//	provd_requests_total{store,endpoint,class}           completions by class
//	provd_request_latency_seconds{store,endpoint}        histogram
//	provd_request_latency_quantile_seconds{...,quantile} p50/p90/p99 estimates
//	provd_commit_stage_latency_seconds{store,stage}      pipeline histogram
//	provd_commit_stage_latency_quantile_seconds{...}     stage quantiles
//	provd_cache_*{store}, provd_freeze_*{store}          cache / freeze panels
//	provd_wal_*{store}, provd_checkpoint_*{store}        durability panels
//	provd_group_commit_*{store}                          group-commit panel
//	provd_qos_*{store}                                   admission control
//	provd_repl_*{store}                                  replication panel
//	provd_coalescer_*{store}                             shared sync windows
//	provd_slow_queries_total                             slow-ring admissions
//
// Quantile gauges are derived from the same log-spaced buckets Prometheus
// would see (relative error <= 2x), published for dashboards that want
// percentiles without running histogram_quantile.
func (s *Server) writePrometheus(w http.ResponseWriter, stores []*Store) {
	w.Header().Set("Content-Type", obs.PromContentType)
	m := obs.NewMetricWriter(w)
	for _, st := range stores {
		writeStoreProm(m, st)
	}
	m.Header("provd_slow_queries_total", "Requests admitted to the slow-query ring since start.", "counter")
	m.Sample("provd_slow_queries_total", nil, float64(s.slow.Total()))
	// The coalescer is registry-wide (one per data directory), so its
	// series carry no store label — summing a per-store copy would
	// over-count the shared windows.
	if c := s.reg.Coalescer(); c != nil {
		co := c.StatsSnapshot()
		mode := obs.Label{Name: "mode", Value: co.Mode}
		m.Header("provd_coalescer_windows_total", "Device-level sync windows retired across all stores.", "counter")
		m.Sample("provd_coalescer_windows_total", []obs.Label{mode}, float64(co.Windows))
		m.Header("provd_coalescer_requests_total", "Per-store sync requests coalesced into windows.", "counter")
		m.Sample("provd_coalescer_requests_total", []obs.Label{mode}, float64(co.Requests))
		m.Header("provd_coalescer_last_window_size", "Size of the most recent sync window.", "gauge")
		m.Sample("provd_coalescer_last_window_size", nil, float64(co.LastWindowSize))
		m.Header("provd_coalescer_max_window_size", "Largest sync window so far.", "gauge")
		m.Sample("provd_coalescer_max_window_size", nil, float64(co.MaxWindowSize))
		m.Header("provd_coalescer_sync_seconds_total", "Cumulative time retiring sync windows.", "counter")
		m.Sample("provd_coalescer_sync_seconds_total", []obs.Label{mode}, float64(co.SyncTotalNanos)/1e9)
	}
}

// statusClassLabels maps endpointMetrics.classes indices to the class label.
var statusClassLabels = [3]string{"2xx", "4xx", "5xx"}

// quantileGauges are the derived-percentile gauges emitted next to each
// histogram family.
var quantileGauges = []struct {
	label string
	q     float64
}{{"0.5", 0.50}, {"0.9", 0.90}, {"0.99", 0.99}}

func writeStoreProm(m *obs.MetricWriter, st *Store) {
	store := obs.Label{Name: "store", Value: st.Name()}
	ep := st.Epoch()

	m.Header("provd_epoch", "Current committed epoch (one per ingest batch).", "gauge")
	m.Sample("provd_epoch", []obs.Label{store}, float64(ep.N))
	m.Header("provd_graph_vertices", "Vertices in the current snapshot.", "gauge")
	m.Sample("provd_graph_vertices", []obs.Label{store}, float64(ep.Vertices))
	m.Header("provd_graph_edges", "Edges in the current snapshot.", "gauge")
	m.Sample("provd_graph_edges", []obs.Label{store}, float64(ep.Edges))
	m.Header("provd_uptime_seconds", "Store uptime.", "gauge")
	m.Sample("provd_uptime_seconds", []obs.Label{store}, st.Uptime().Seconds())

	m.Header("provd_requests_routed_total", "Requests routed to the store, per endpoint (bumped before the handler runs).", "counter")
	m.Header("provd_requests_total", "Completed requests per endpoint and status class.", "counter")
	m.Header("provd_request_latency_seconds", "Request completion latency per endpoint.", "histogram")
	m.Header("provd_request_latency_quantile_seconds", "Estimated request-latency quantiles per endpoint (log-bucket upper bounds).", "gauge")
	for _, name := range endpointNames {
		epLabel := obs.Label{Name: "endpoint", Value: name}
		st.requests[name].writeProm(m, store, epLabel)
	}

	m.Header("provd_commit_stage_latency_seconds", "Write-pipeline stage latency: enqueue (group-commit queue wait), append (WAL write), fsync, publish.", "histogram")
	m.Header("provd_commit_stage_latency_quantile_seconds", "Estimated stage-latency quantiles (log-bucket upper bounds).", "gauge")
	for _, stage := range stageNames {
		snap := st.stageHistogram(stage).Snapshot()
		labels := []obs.Label{store, {Name: "stage", Value: stage}}
		m.Histogram("provd_commit_stage_latency_seconds", labels, snap)
		if snap.Count > 0 {
			writeQuantiles(m, "provd_commit_stage_latency_quantile_seconds", labels, snap)
		}
	}

	cache := st.CacheStats()
	m.Header("provd_cache_entries", "Segment-cache entries.", "gauge")
	m.Sample("provd_cache_entries", []obs.Label{store}, float64(cache.Entries))
	m.Header("provd_cache_capacity", "Segment-cache capacity.", "gauge")
	m.Sample("provd_cache_capacity", []obs.Label{store}, float64(cache.Capacity))
	m.Header("provd_cache_hits_total", "Segment-cache hits.", "counter")
	m.Sample("provd_cache_hits_total", []obs.Label{store}, float64(cache.Hits))
	m.Header("provd_cache_misses_total", "Segment-cache misses.", "counter")
	m.Sample("provd_cache_misses_total", []obs.Label{store}, float64(cache.Misses))
	m.Header("provd_cache_invalidations_total", "Cache entries purged by ingest deltas.", "counter")
	m.Sample("provd_cache_invalidations_total", []obs.Label{store}, float64(cache.Invalidations))
	m.Header("provd_cache_revalidations_total", "Cache entries carried across epochs by delta revalidation.", "counter")
	m.Sample("provd_cache_revalidations_total", []obs.Label{store}, float64(cache.Revalidations))

	fz := st.FreezeStatsSnapshot()
	m.Header("provd_freeze_total", "Commit snapshot builds, split by incremental CSR extension vs full rebuild.", "counter")
	m.Sample("provd_freeze_total", []obs.Label{store, {Name: "mode", Value: "incremental"}}, float64(fz.Incremental))
	m.Sample("provd_freeze_total", []obs.Label{store, {Name: "mode", Value: "full"}}, float64(fz.Full))
	m.Header("provd_freeze_seconds_total", "Cumulative time in snapshot freezes.", "counter")
	m.Sample("provd_freeze_seconds_total", []obs.Label{store}, float64(fz.TotalNanos)/1e9)
	m.Header("provd_freeze_last_seconds", "Duration of the most recent freeze.", "gauge")
	m.Sample("provd_freeze_last_seconds", []obs.Label{store}, float64(fz.LastNanos)/1e9)
	m.Header("provd_freeze_max_seconds", "Longest freeze so far.", "gauge")
	m.Sample("provd_freeze_max_seconds", []obs.Label{store}, float64(fz.MaxNanos)/1e9)

	qos := st.QoSStatsSnapshot()
	m.Header("provd_qos_admitted_total", "Requests past admission control.", "counter")
	m.Sample("provd_qos_admitted_total", []obs.Label{store}, float64(qos.Admitted))
	m.Header("provd_qos_rejected_total", "Requests rejected by admission control, by cause (rate, concurrency, queue).", "counter")
	m.Sample("provd_qos_rejected_total", []obs.Label{store, {Name: "cause", Value: "rate"}}, float64(qos.RejectedRate))
	m.Sample("provd_qos_rejected_total", []obs.Label{store, {Name: "cause", Value: "concurrency"}}, float64(qos.RejectedConcurrency))
	m.Sample("provd_qos_rejected_total", []obs.Label{store, {Name: "cause", Value: "queue"}}, float64(qos.RejectedQueue))
	m.Header("provd_qos_inflight", "Requests currently in flight (0 without a concurrency cap).", "gauge")
	m.Sample("provd_qos_inflight", []obs.Label{store}, float64(qos.Inflight))
	m.Header("provd_qos_queue_depth", "Batches staged on the commit queue.", "gauge")
	m.Sample("provd_qos_queue_depth", []obs.Label{store}, float64(qos.QueueDepth))
	m.Header("provd_qos_rate_limit", "Configured rate limit in requests/second (0 = unlimited).", "gauge")
	m.Sample("provd_qos_rate_limit", []obs.Label{store}, qos.Config.RatePerSec)
	m.Header("provd_qos_max_concurrent", "Configured concurrency cap (0 = unlimited).", "gauge")
	m.Sample("provd_qos_max_concurrent", []obs.Label{store}, float64(qos.Config.MaxConcurrent))

	if rs := st.ReplStatsSnapshot(); rs != nil {
		follower := 0.0
		if rs.Follower {
			follower = 1.0
		}
		m.Header("provd_repl_follower", "Whether the store is a read-only follower (1) or writable (0).", "gauge")
		m.Sample("provd_repl_follower", []obs.Label{store}, follower)
		m.Header("provd_repl_applied_epoch", "Last epoch applied from the leader's stream.", "gauge")
		m.Sample("provd_repl_applied_epoch", []obs.Label{store}, float64(rs.AppliedEpoch))
		m.Header("provd_repl_leader_epoch", "Leader's head epoch as last reported on the stream.", "gauge")
		m.Sample("provd_repl_leader_epoch", []obs.Label{store}, float64(rs.LeaderEpoch))
		m.Header("provd_repl_lag_records", "Epochs the follower trails the leader by.", "gauge")
		m.Sample("provd_repl_lag_records", []obs.Label{store}, float64(rs.LagRecords))
		m.Header("provd_repl_lag_seconds", "Commit-to-apply latency of the most recent replicated record.", "gauge")
		m.Sample("provd_repl_lag_seconds", []obs.Label{store}, float64(rs.LagNanos)/1e9)
		m.Header("provd_repl_reconnects_total", "Times the applier redialed the leader.", "counter")
		m.Sample("provd_repl_reconnects_total", []obs.Label{store}, float64(rs.Reconnects))
	}

	ds := st.DurabilityStatsSnapshot()
	if ds == nil {
		return
	}
	m.Header("provd_wal_records_total", "Records appended to the write-ahead log.", "counter")
	m.Sample("provd_wal_records_total", []obs.Label{store}, float64(ds.Records))
	m.Header("provd_wal_bytes_total", "Bytes appended to the write-ahead log.", "counter")
	m.Sample("provd_wal_bytes_total", []obs.Label{store}, float64(ds.Bytes))
	m.Header("provd_wal_fsyncs_total", "WAL fsyncs issued.", "counter")
	m.Sample("provd_wal_fsyncs_total", []obs.Label{store}, float64(ds.Fsyncs))
	m.Header("provd_wal_fsync_seconds_total", "Cumulative WAL fsync time.", "counter")
	m.Sample("provd_wal_fsync_seconds_total", []obs.Label{store}, float64(ds.FsyncTotalNanos)/1e9)
	m.Header("provd_wal_fsync_last_seconds", "Duration of the most recent fsync.", "gauge")
	m.Sample("provd_wal_fsync_last_seconds", []obs.Label{store}, float64(ds.FsyncLastNanos)/1e9)
	m.Header("provd_wal_fsync_max_seconds", "Longest fsync so far.", "gauge")
	m.Sample("provd_wal_fsync_max_seconds", []obs.Label{store}, float64(ds.FsyncMaxNanos)/1e9)
	m.Header("provd_checkpoints_total", "Checkpoints written.", "counter")
	m.Sample("provd_checkpoints_total", []obs.Label{store}, float64(ds.Checkpoints))
	m.Header("provd_checkpoint_failures_total", "Checkpoint attempts that failed.", "counter")
	m.Sample("provd_checkpoint_failures_total", []obs.Label{store}, float64(ds.CheckpointFailures))
	m.Header("provd_checkpoint_last_epoch", "Epoch of the newest checkpoint.", "gauge")
	m.Sample("provd_checkpoint_last_epoch", []obs.Label{store}, float64(ds.LastCheckpointEpoch))
	m.Header("provd_commits_since_checkpoint", "Commits since the last checkpoint (replay distance).", "gauge")
	m.Sample("provd_commits_since_checkpoint", []obs.Label{store}, float64(ds.SinceCheckpoint))

	gc := ds.GroupCommit
	m.Header("provd_group_commit_enabled", "Whether the store commits through the group path (1/0).", "gauge")
	enabled := 0.0
	if gc.Enabled {
		enabled = 1.0
	}
	m.Sample("provd_group_commit_enabled", []obs.Label{store}, enabled)
	m.Header("provd_group_commit_groups_total", "Fsync groups committed.", "counter")
	m.Sample("provd_group_commit_groups_total", []obs.Label{store}, float64(gc.Groups))
	m.Header("provd_group_commit_records_total", "Records committed through groups.", "counter")
	m.Sample("provd_group_commit_records_total", []obs.Label{store}, float64(gc.Records))
	m.Header("provd_group_commit_last_size", "Size of the most recent group.", "gauge")
	m.Sample("provd_group_commit_last_size", []obs.Label{store}, float64(gc.Last))
	m.Header("provd_group_commit_max_size", "Largest group so far.", "gauge")
	m.Sample("provd_group_commit_max_size", []obs.Label{store}, float64(gc.Max))
	m.Header("provd_group_commit_queue_wait_last_seconds", "Queue wait of the most recent group member.", "gauge")
	m.Sample("provd_group_commit_queue_wait_last_seconds", []obs.Label{store}, float64(gc.QueueWaitLastNanos)/1e9)
	m.Header("provd_group_commit_queue_wait_max_seconds", "Longest queue wait so far.", "gauge")
	m.Sample("provd_group_commit_queue_wait_max_seconds", []obs.Label{store}, float64(gc.QueueWaitMaxNanos)/1e9)
	m.Header("provd_group_commit_queue_wait_seconds_total", "Cumulative queue wait across all group members.", "counter")
	m.Sample("provd_group_commit_queue_wait_seconds_total", []obs.Label{store}, float64(gc.QueueWaitTotalNanos)/1e9)
	m.Header("provd_group_commit_coalesced_total", "Groups retired through a shared device-level sync window.", "counter")
	m.Sample("provd_group_commit_coalesced_total", []obs.Label{store}, float64(gc.CoalescedGroups))
}

// writeProm renders one endpoint's counters: the routed total, the
// status-class completions, and the latency histogram with derived
// quantile gauges (quantiles only once the endpoint has traffic, so an
// idle endpoint contributes no misleading zero-percentile series).
func (em *endpointMetrics) writeProm(m *obs.MetricWriter, store, endpoint obs.Label) {
	m.Sample("provd_requests_routed_total", []obs.Label{store, endpoint}, float64(em.total.Load()))
	for i, class := range statusClassLabels {
		m.Sample("provd_requests_total",
			[]obs.Label{store, endpoint, {Name: "class", Value: class}},
			float64(em.classes[i].Load()))
	}
	snap := em.lat.Snapshot()
	labels := []obs.Label{store, endpoint}
	m.Histogram("provd_request_latency_seconds", labels, snap)
	if snap.Count > 0 {
		writeQuantiles(m, "provd_request_latency_quantile_seconds", labels, snap)
	}
}

// writeQuantiles emits the p50/p90/p99 gauges derived from a histogram
// snapshot.
func writeQuantiles(m *obs.MetricWriter, name string, labels []obs.Label, snap obs.HistogramSnapshot) {
	base := make([]obs.Label, len(labels), len(labels)+1)
	copy(base, labels)
	for _, qg := range quantileGauges {
		m.Sample(name,
			append(base, obs.Label{Name: "quantile", Value: qg.label}),
			float64(snap.Quantile(qg.q))/1e9)
	}
}
