package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/prov"
	"repro/internal/repl"
)

// Follower mode: a store that mirrors a leader's store by tailing its
// wal-stream endpoint (GET /stores/{name}/wal, see internal/repl) and
// feeding each delta through the same apply path crash recovery replays a
// local log through — graph.ApplyDelta, then Recorder.IndexFrom over the
// appended vertices, then an incremental freeze and the atomic epoch
// pointer swap. A follower therefore serves the entire lock-free read API
// at its applied epoch; writes are refused with a redirect to the leader
// until Promote seals the applier and opens the write path.
//
// The applier is a retry loop around followOnce (one connection consumed
// until it breaks). Any byte cut leaves the store at an exact epoch prefix
// of the leader: the frame reader refuses torn or corrupt frames, and
// applyReplicated refuses epoch gaps, so a partial stream can only ever
// end cleanly between applied epochs. Reconnects resume from the applied
// epoch; if the leader's ring has moved past it, the stream re-seeds from
// a full checkpoint (resetReplicated).

// ErrFollowerWrites reports a write routed to a follower store.
var ErrFollowerWrites = errors.New("follower store: writes go to the leader")

// ErrNotFollower reports a Promote on a store that is not (or no longer) a
// follower.
var ErrNotFollower = errors.New("store is not a follower")

// defaultReconnectBackoff paces applier redials after a broken stream.
const defaultReconnectBackoff = 250 * time.Millisecond

// newFollowerStore builds a memory-only store that mirrors the same-named
// store on the leader. The applier is not started; callers use
// startApplier (production) or drive followOnce directly (tests).
func newFollowerStore(name, leaderURL string, cacheCap int) *Store {
	s := NewStore(prov.New(), cacheCap)
	s.name = name
	s.leaderURL = leaderURL
	s.follower.Store(true)
	return s
}

// startApplier launches the replication loop. backoff <= 0 selects the
// default redial pace.
func (s *Store) startApplier(hc *http.Client, backoff time.Duration) {
	if backoff <= 0 {
		backoff = defaultReconnectBackoff
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.applierCancel = cancel
	s.applierDone = make(chan struct{})
	go s.followLoop(ctx, hc, backoff)
}

// stopApplier cancels the replication loop and waits for it to exit.
// No-op when none was started; safe to call more than once.
func (s *Store) stopApplier() {
	if s.applierCancel == nil {
		return
	}
	s.applierCancel()
	<-s.applierDone
}

// followLoop drives followOnce until the store is promoted or closed,
// redialing with a fixed backoff after each broken stream.
func (s *Store) followLoop(ctx context.Context, hc *http.Client, backoff time.Duration) {
	defer close(s.applierDone)
	for attempt := 0; ; attempt++ {
		if ctx.Err() != nil || !s.follower.Load() {
			return
		}
		if f := s.walFail.Load(); f != nil {
			// Poisoned mid-apply: the live graph and the stream can no
			// longer be reconciled. Published snapshots stay exactly where
			// they were; redialing would only fail again.
			if s.logger != nil {
				s.logger.Error("replication stopped", "store", s.name, "err", f.err)
			}
			return
		}
		if attempt > 0 {
			s.replReconnects.Add(1)
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return
			}
		}
		err := s.followOnce(ctx, hc)
		if ctx.Err() != nil {
			return
		}
		if err != nil && s.logger != nil {
			s.logger.Debug("replication stream ended", "store", s.name, "epoch", s.snap.Load().N, "err", err)
		}
	}
}

// followOnce opens one replication stream at the applied epoch and
// consumes it until it breaks (or the context cancels), applying every
// snapshot and delta in order. The error is the reason the stream ended —
// io.EOF for a clean leader-side close, wal.ErrTornFrame for a cut
// connection; the store is a valid epoch prefix of the leader regardless.
func (s *Store) followOnce(ctx context.Context, hc *http.Client) error {
	st, err := repl.Open(ctx, hc, s.leaderURL, s.name, s.snap.Load().N)
	if err != nil {
		return err
	}
	defer st.Close()
	s.noteLeaderEpoch(st.LeaderEpoch())
	for {
		ev, err := st.Next()
		if err != nil {
			return err
		}
		s.noteLeaderEpoch(ev.LeaderEpoch)
		switch ev.Kind {
		case repl.KindMeta:
			continue
		case repl.KindSnapshot:
			if err := s.resetReplicated(ev.Epoch, ev.Payload); err != nil {
				return err
			}
		case repl.KindDelta:
			if err := s.applyReplicated(ev.Epoch, ev.Payload); err != nil {
				return err
			}
		}
		if ev.PublishedNanos > 0 {
			lag := time.Now().UnixNano() - ev.PublishedNanos
			if lag < 0 {
				lag = 0
			}
			s.replLagNs.Store(lag)
			s.replLagHist.Observe(time.Duration(lag))
		}
	}
}

// noteLeaderEpoch records the leader's head epoch as seen on the stream.
func (s *Store) noteLeaderEpoch(ep uint64) {
	for {
		cur := s.replLeaderEp.Load()
		if ep <= cur || s.replLeaderEp.CompareAndSwap(cur, ep) {
			return
		}
	}
}

// applyReplicated applies one leader delta: exactly the recovery replay
// path (ApplyDelta + IndexFrom), then the standard incremental freeze and
// publish. The epoch must extend the applied prefix contiguously — a gap
// means this delta belongs to a future the store hasn't seen, and applying
// it would corrupt the graph; the caller reconnects instead.
func (s *Store) applyReplicated(epoch uint64, payload []byte) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if s.closed {
		return fmt.Errorf("store: %w", ErrStoreClosed)
	}
	if !s.follower.Load() {
		return fmt.Errorf("store: %w", ErrNotFollower)
	}
	if f := s.walFail.Load(); f != nil {
		return fmt.Errorf("store: %w", f.err)
	}
	old := s.tail
	if epoch != old.N+1 {
		return fmt.Errorf("repl: delta for epoch %d cannot extend applied epoch %d", epoch, old.N)
	}
	firstNew := s.rec.P.NumVertices()
	if err := s.rec.P.PG().ApplyDelta(bytes.NewReader(payload)); err != nil {
		// The live graph may be partially mutated: poison the store so no
		// further apply (or promoted write) builds on it. Published
		// snapshots are frozen copies and remain an exact epoch prefix.
		s.walFail.CompareAndSwap(nil, &walFailure{err: err})
		return fmt.Errorf("repl: apply delta for epoch %d: %w", epoch, err)
	}
	s.rec.IndexFrom(graph.VertexID(firstNew))
	start := time.Now()
	fz, incremental := s.rec.P.ExtendFrozen(old.P)
	s.observeFreeze(incremental, time.Since(start))
	ep := &Epoch{N: epoch, P: fz, Vertices: fz.NumVertices(), Edges: fz.NumEdges()}
	s.tail = ep
	if s.hub.Load() != nil {
		// The hub retains the payload (chained followers tail it), but the
		// stream reader reuses its buffer on the next frame.
		payload = append([]byte(nil), payload...)
	}
	s.publish(ep, old, payload)
	return nil
}

// resetReplicated replaces the store's state with a full leader checkpoint
// at the given epoch — the re-seed path when the leader's delta ring no
// longer covers the applied epoch. The graph is validated and indexed
// exactly as a local checkpoint would be at startup; the segment cache is
// purged wholesale (delta revalidation assumes append-only continuity,
// which a snapshot jump breaks) and the hub is rebased, ending any chained
// followers' streams so they re-seed too.
func (s *Store) resetReplicated(epoch uint64, data []byte) error {
	g, err := graph.Load(bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("repl: checkpoint at epoch %d: %w", epoch, err)
	}
	p := prov.Wrap(g)
	if err := p.Validate(); err != nil {
		return fmt.Errorf("repl: checkpoint at epoch %d: %w", epoch, err)
	}
	rec := prov.WrapRecorder(p)
	start := time.Now()
	fz := p.Freeze()
	freeze := time.Since(start)

	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if s.closed {
		return fmt.Errorf("store: %w", ErrStoreClosed)
	}
	if !s.follower.Load() {
		return fmt.Errorf("store: %w", ErrNotFollower)
	}
	if epoch < s.tail.N {
		return fmt.Errorf("repl: checkpoint at epoch %d behind applied epoch %d", epoch, s.tail.N)
	}
	s.observeFreeze(false, freeze)
	ep := &Epoch{N: epoch, P: fz, Vertices: fz.NumVertices(), Edges: fz.NumEdges()}
	if epoch == 0 && ep.Vertices > 0 {
		// The leader shipped a non-empty epoch-0 base: chained followers
		// reading this store's wal stream need the same checkpoint seeding.
		s.nonEmptyBase.Store(true)
	}
	s.rec = rec
	s.tail = ep
	s.cache.reset(epoch)
	s.snap.Store(ep)
	ch := make(chan struct{})
	close(*s.epochWait.Swap(&ch))
	if h := s.hub.Load(); h != nil {
		h.Rebase(epoch)
	}
	s.signalPub()
	return nil
}

// Promote seals the applier and opens the write path: the store stops
// being a follower, in-flight applies finish or fail cleanly, and the next
// Update commits epoch N+1 on top of the applied prefix. Returns
// ErrNotFollower if the store is not (or no longer) one — promotion is
// not idempotent so that exactly one caller wins a failover race.
func (s *Store) Promote() error {
	if !s.follower.CompareAndSwap(true, false) {
		return fmt.Errorf("store %q: %w", s.name, ErrNotFollower)
	}
	s.stopApplier()
	if s.logger != nil {
		s.logger.Info("store promoted", "store", s.name, "epoch", s.snap.Load().N, "leader", s.leaderURL)
	}
	return nil
}

// Follower reports whether the store currently applies a leader's stream.
func (s *Store) Follower() bool { return s.follower.Load() }

// LeaderURL returns the leader this store replicates (or replicated) from;
// empty for stores that were never followers.
func (s *Store) LeaderURL() string { return s.leaderURL }

// EnableRepl turns on the replication hub: from now on every published
// epoch's delta is retained in a bounded ring for wal-stream tailers. The
// first wal-stream request calls this lazily, so stores nobody replicates
// never pay for delta retention (or, on memory-only stores, for delta
// encoding at all). Idempotent.
func (s *Store) EnableRepl() *repl.Hub {
	if h := s.hub.Load(); h != nil {
		return h
	}
	// Under writeMu so memory-only commits start encoding deltas exactly
	// from the next epoch; the hub bases at the published snapshot, which
	// staged-but-unpublished group batches (that all carry payloads) will
	// extend contiguously as they publish.
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if h := s.hub.Load(); h != nil {
		return h
	}
	h := repl.NewHub(0, s.snap.Load().N)
	s.hub.Store(h)
	return h
}

// SnapshotBytes serializes the current epoch's graph in the binary .pg
// format — the checkpoint frame a wal stream opens with when its tail ring
// no longer covers the requested epoch. Lock-free: the snapshot is
// immutable.
func (s *Store) SnapshotBytes() (uint64, []byte, error) {
	ep := s.snap.Load()
	var buf bytes.Buffer
	if err := ep.P.PG().Save(&buf); err != nil {
		return 0, nil, err
	}
	return ep.N, buf.Bytes(), nil
}

// WaitEpoch blocks until the published epoch reaches min, the timeout
// elapses, or the store closes, reporting whether the epoch was reached —
// the serving half of the read-your-writes token (X-Min-Epoch). On a
// leader this returns immediately (a client can only hold tokens for
// epochs the leader has published); on a follower it parks on the publish
// wake channel until the applier catches up.
func (s *Store) WaitEpoch(min uint64, timeout time.Duration) bool {
	if s.snap.Load().N >= min {
		return true
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for {
		ch := *s.epochWait.Load()
		if s.snap.Load().N >= min {
			return true
		}
		select {
		case <-ch:
		case <-timer.C:
			return s.snap.Load().N >= min
		}
	}
}

// ReplStats is the /metrics repl panel, present on stores that are (or
// were) followers: the applied and leader epochs, the record and
// wall-clock lag, and the reconnect count, plus the apply-lag latency
// digest the bench panel reads p99 from.
type ReplStats struct {
	Follower     bool   `json:"follower"`
	LeaderURL    string `json:"leader_url"`
	AppliedEpoch uint64 `json:"applied_epoch"`
	LeaderEpoch  uint64 `json:"leader_epoch"`
	// LagRecords is leader epoch minus applied epoch (0 when caught up or
	// when the leader epoch is not yet known).
	LagRecords int64 `json:"lag_records"`
	// LagNanos is the publish-to-apply wall-clock lag of the most recently
	// applied record.
	LagNanos   int64  `json:"lag_ns"`
	Reconnects uint64 `json:"reconnects"`
	// Lag digests the per-record apply lag distribution.
	Lag obs.LatencySummary `json:"lag"`
}

// ReplStatsSnapshot returns the replication counters, or nil for stores
// that were never followers (the JSON panel omits the section).
func (s *Store) ReplStatsSnapshot() *ReplStats {
	if s.leaderURL == "" {
		return nil
	}
	applied := s.snap.Load().N
	leader := s.replLeaderEp.Load()
	lag := int64(0)
	if leader > applied {
		lag = int64(leader - applied)
	}
	return &ReplStats{
		Follower:     s.follower.Load(),
		LeaderURL:    s.leaderURL,
		AppliedEpoch: applied,
		LeaderEpoch:  leader,
		LagRecords:   lag,
		LagNanos:     s.replLagNs.Load(),
		Reconnects:   s.replReconnects.Load(),
		Lag:          s.replLagHist.Summary(),
	}
}
