package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/prov"
	"repro/internal/repl"
)

// Replication differential harness, in the style of the kill-replay tests
// above: a deterministic ingest script runs on a leader, a follower tails
// the wal-stream endpoint, and the connection is cut at arbitrary byte
// offsets — mid-frame, mid-header, mid-meta-window. The invariant under
// every cut is the replication analogue of crash recovery's: the follower
// is always an exact epoch prefix of the leader (same graph rows, segment
// results and lifecycle indexes as an uncrashed run of that prefix), never
// poisoned by a torn stream, and converges to the leader's head after a
// clean reconnect — or takes over entirely after promotion.

// cutTransport truncates every response body after limit bytes, then fails
// the read — a byte-exact model of a connection dropped mid-stream.
type cutTransport struct {
	base  http.RoundTripper
	limit int64
}

var errStreamCut = errors.New("repl test: stream cut")

func (c *cutTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := c.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	resp.Body = &cutBody{rc: resp.Body, remaining: c.limit}
	return resp, nil
}

type cutBody struct {
	rc        io.ReadCloser
	remaining int64
}

func (b *cutBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, errStreamCut
	}
	if int64(len(p)) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.rc.Read(p)
	b.remaining -= int64(n)
	return n, err
}

func (b *cutBody) Close() error { return b.rc.Close() }

// cyclingCutTransport cuts the k-th stream after limits[k % len] bytes —
// the flaky-network model for the reconnect chaos test. A cycle that ends
// in a generous limit guarantees every connection sequence eventually makes
// progress.
type cyclingCutTransport struct {
	base   http.RoundTripper
	limits []int64
	k      atomic.Int64
}

func (c *cyclingCutTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := c.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	limit := c.limits[int(c.k.Add(1)-1)%len(c.limits)]
	resp.Body = &cutBody{rc: resp.Body, remaining: limit}
	return resp, nil
}

// countingTransport counts stream body bytes delivered — used once to size
// the cut schedule.
type countingTransport struct {
	base http.RoundTripper
	n    atomic.Int64
}

func (c *countingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := c.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	resp.Body = &countingBody{rc: resp.Body, n: &c.n}
	return resp, nil
}

type countingBody struct {
	rc io.ReadCloser
	n  *atomic.Int64
}

func (b *countingBody) Read(p []byte) (int, error) {
	n, err := b.rc.Read(p)
	b.n.Add(int64(n))
	return n, err
}

func (b *countingBody) Close() error { return b.rc.Close() }

// tailUntil drives one followOnce stream on f until the applied epoch
// reaches target, then tears the stream down. Batches may be committed on
// the leader while this runs (the live-tail path).
func tailUntil(t *testing.T, f *Store, hc *http.Client, target uint64) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- f.followOnce(ctx, hc) }()
	ok := f.WaitEpoch(target, 10*time.Second)
	cancel()
	<-done
	if !ok {
		t.Fatalf("follower stuck at epoch %d short of %d", f.Epoch().N, target)
	}
}

// diffFollowerAt asserts the follower is indistinguishable from the
// reference run after j batches.
func diffFollowerAt(t *testing.T, script []scriptBatch, refSnaps []*prov.Graph, f *Store, j int) {
	t.Helper()
	if err := diffStores(refSnaps[j], refRecorderAt(script, j), f, scriptArtifacts, scriptAgents); err != nil {
		t.Fatalf("follower at epoch %d diverged: %v", j, err)
	}
}

// TestReplStreamCutEveryOffset is the partition harness: the wal stream is
// cut at sampled byte offsets (every offset through the opening meta frame
// and the first delta, then a stride over the rest), and after each cut the
// follower must sit at an exact epoch prefix of the leader — not poisoned,
// no torn state — and converge to the head on a clean reconnect.
func TestReplStreamCutEveryOffset(t *testing.T) {
	leader := NewStore(prov.New(), 16)
	leader.EnableRepl() // before ingest, so the ring serves every epoch as deltas
	ts := httptest.NewServer(NewServer(leader))
	defer ts.Close()

	script := randomScript(42, 24)
	_, refSnaps := refRun(t, script)
	for _, b := range script {
		ingestBatch(t, leader, b)
	}
	head := leader.Epoch().N
	if head != uint64(len(script)) {
		t.Fatalf("leader at epoch %d, want %d", head, len(script))
	}

	// Size the cut schedule by streaming once cleanly.
	meter := &countingTransport{base: http.DefaultTransport}
	scout := newFollowerStore(DefaultStore, ts.URL, 16)
	tailUntil(t, scout, &http.Client{Transport: meter}, head)
	diffFollowerAt(t, script, refSnaps, scout, int(head))
	total := meter.n.Load()
	if total < 64 {
		t.Fatalf("stream only %d bytes, harness needs a real tail", total)
	}

	cuts := []int64{}
	for off := int64(1); off <= 48 && off < total; off++ {
		cuts = append(cuts, off) // every byte of the opening frames
	}
	for off := int64(49); off < total; off += total / 64 {
		cuts = append(cuts, off)
	}
	for _, cut := range cuts {
		f := newFollowerStore(DefaultStore, ts.URL, 16)
		hc := &http.Client{Transport: &cutTransport{base: http.DefaultTransport, limit: cut}}
		if err := f.followOnce(context.Background(), hc); err == nil {
			t.Fatalf("cut %d: stream ended without error", cut)
		}
		j := f.Epoch().N
		if j > head {
			t.Fatalf("cut %d: follower epoch %d beyond leader head %d", cut, j, head)
		}
		if fl := f.walFail.Load(); fl != nil {
			t.Fatalf("cut %d: torn stream poisoned the follower: %v", cut, fl.err)
		}
		diffFollowerAt(t, script, refSnaps, f, int(j))

		// Clean reconnect resumes from the applied epoch and converges.
		tailUntil(t, f, ts.Client(), head)
		diffFollowerAt(t, script, refSnaps, f, int(head))
	}
}

// TestReplCheckpointSeedAndReseed covers the ring-eviction paths: a
// follower whose requested epoch has left the leader's delta ring must be
// seeded from a full checkpoint — both on first contact and on a reconnect
// after falling behind — and still end up byte-identical to the reference.
func TestReplCheckpointSeedAndReseed(t *testing.T) {
	leader := NewStore(prov.New(), 16)
	leader.hub.Store(repl.NewHub(4, 0)) // tiny ring: eviction after 4 epochs
	ts := httptest.NewServer(NewServer(leader))
	defer ts.Close()

	script := randomScript(3, 30)
	_, refSnaps := refRun(t, script)
	for _, b := range script[:20] {
		ingestBatch(t, leader, b)
	}

	// First contact from epoch 0: the ring starts at 17, so the stream must
	// open with a checkpoint frame, not deltas.
	st, err := repl.Open(context.Background(), nil, ts.URL, DefaultStore, 0)
	if err != nil {
		t.Fatal(err)
	}
	for {
		ev, err := st.Next()
		if err != nil {
			t.Fatalf("reading seed stream: %v", err)
		}
		if ev.Kind == repl.KindMeta {
			continue
		}
		if ev.Kind != repl.KindSnapshot {
			t.Fatalf("first frame kind %v, want snapshot", ev.Kind)
		}
		if ev.Epoch != 20 {
			t.Fatalf("checkpoint at epoch %d, want 20", ev.Epoch)
		}
		break
	}
	st.Close()

	f := newFollowerStore(DefaultStore, ts.URL, 16)
	tailUntil(t, f, ts.Client(), 20)
	diffFollowerAt(t, script, refSnaps, f, 20)

	// Fall behind while disconnected: 6 more epochs evict 21..22 from the
	// ring, so the reconnect must re-seed the live store from a checkpoint.
	for _, b := range script[20:26] {
		ingestBatch(t, leader, b)
	}
	tailUntil(t, f, ts.Client(), 26)
	diffFollowerAt(t, script, refSnaps, f, 26)

	// And the live-tail path: commits made while the stream is attached.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- f.followOnce(ctx, ts.Client()) }()
	for _, b := range script[26:] {
		ingestBatch(t, leader, b)
	}
	ok := f.WaitEpoch(30, 10*time.Second)
	cancel()
	<-done
	if !ok {
		t.Fatalf("live tail stuck at epoch %d", f.Epoch().N)
	}
	diffFollowerAt(t, script, refSnaps, f, 30)
}

// TestReplReconnectChaos runs the production applier loop against a
// transport that cuts every stream at a different byte count: the follower
// must converge to the leader's head anyway, counting its reconnects, and
// remain an exact replica.
func TestReplReconnectChaos(t *testing.T) {
	leader := NewStore(prov.New(), 16)
	leader.EnableRepl()
	ts := httptest.NewServer(NewServer(leader))
	defer ts.Close()

	script := randomScript(99, 40)
	_, refSnaps := refRun(t, script)
	for _, b := range script {
		ingestBatch(t, leader, b)
	}
	head := leader.Epoch().N

	flaky := &cyclingCutTransport{
		base:   http.DefaultTransport,
		limits: []int64{41, 97, 257, 1031, 1 << 20},
	}
	f := newFollowerStore(DefaultStore, ts.URL, 16)
	f.startApplier(&http.Client{Transport: flaky}, 2*time.Millisecond)
	if !f.WaitEpoch(head, 20*time.Second) {
		t.Fatalf("chaos follower stuck at epoch %d short of %d", f.Epoch().N, head)
	}
	f.Close()
	if rs := f.ReplStatsSnapshot(); rs == nil || rs.Reconnects == 0 {
		t.Fatalf("flaky transport produced no reconnects: %+v", rs)
	}
	if fl := f.walFail.Load(); fl != nil {
		t.Fatalf("chaos run poisoned the follower: %v", fl.err)
	}
	diffFollowerAt(t, script, refSnaps, f, int(head))
}

// TestReplFailoverPromote is the failover drill: replicate, kill the
// leader, promote the follower, keep writing. The promoted store must carry
// the exact replicated prefix forward and refuse a second promotion.
func TestReplFailoverPromote(t *testing.T) {
	leader := NewStore(prov.New(), 16)
	ts := httptest.NewServer(NewServer(leader))

	script := randomScript(7, 30)
	_, refSnaps := refRun(t, script)

	f := newFollowerStore(DefaultStore, ts.URL, 16)
	f.startApplier(nil, 5*time.Millisecond)
	for _, b := range script[:20] {
		ingestBatch(t, leader, b)
	}
	if !f.WaitEpoch(20, 10*time.Second) {
		t.Fatalf("follower stuck at epoch %d", f.Epoch().N)
	}

	// Writes bounce off the follower with the leader's address.
	err := f.Update(func(rec *prov.Recorder) error { rec.Agent("mallory"); return nil })
	if !errors.Is(err, ErrFollowerWrites) {
		t.Fatalf("follower write error = %v, want ErrFollowerWrites", err)
	}

	// SIGKILL-equivalent: the leader vanishes mid-conversation and the
	// applier starts redialing. Sever the live streams first — a graceful
	// Close would wait for the wal tail we are simulating the death of.
	ts.CloseClientConnections()
	ts.Close()
	deadline := time.Now().Add(5 * time.Second)
	for f.ReplStatsSnapshot().Reconnects == 0 {
		if time.Now().After(deadline) {
			t.Fatal("applier never noticed the dead leader")
		}
		time.Sleep(2 * time.Millisecond)
	}

	if err := f.Promote(); err != nil {
		t.Fatalf("promote: %v", err)
	}
	if err := f.Promote(); !errors.Is(err, ErrNotFollower) {
		t.Fatalf("second promote error = %v, want ErrNotFollower", err)
	}
	if rs := f.ReplStatsSnapshot(); rs == nil || rs.Follower {
		t.Fatalf("promoted store still reports follower: %+v", rs)
	}

	// The write path opens on top of the replicated prefix.
	for _, b := range script[20:] {
		ingestBatch(t, f, b)
	}
	if f.Epoch().N != 30 {
		t.Fatalf("promoted store at epoch %d, want 30", f.Epoch().N)
	}
	diffFollowerAt(t, script, refSnaps, f, 30)
}

// TestReplWALEndpointErrors pins the endpoint's failure contract: a
// malformed cursor is a 400, a cursor ahead of the leader's head is a 409
// (the follower-ahead signal a failed-over follower uses to refuse an
// outdated leader).
func TestReplWALEndpointErrors(t *testing.T) {
	leader := NewStore(prov.New(), 16)
	ts := httptest.NewServer(NewServer(leader))
	defer ts.Close()

	if code, _, _ := fetchText(t, ts.URL+"/wal?from=abc", nil); code != http.StatusBadRequest {
		t.Fatalf("bad cursor status %d, want 400", code)
	}
	if code, _, _ := fetchText(t, ts.URL+"/wal?from=999", nil); code != http.StatusConflict {
		t.Fatalf("ahead cursor status %d, want 409", code)
	}
	if _, err := repl.Open(context.Background(), nil, ts.URL, DefaultStore, 999); !errors.Is(err, repl.ErrFollowerAhead) {
		t.Fatalf("client ahead error = %v, want ErrFollowerAhead", err)
	}
}

// promValue extracts one sample's value from a text exposition.
func promValue(t *testing.T, body, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("series %s: bad value %q", series, rest)
			}
			return v
		}
	}
	t.Fatalf("series %s not in exposition", series)
	return 0
}

// noRedirectClient surfaces 3xx responses instead of chasing them — the
// follower redirect tests assert the 307 itself (DefaultClient would
// silently re-POST to the leader and report its 200).
var noRedirectClient = &http.Client{
	CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse },
}

// doJSONHeaders is doJSON plus request headers and response header capture.
func doJSONHeaders(t *testing.T, method, url string, hdr map[string]string, body, out any) (int, http.Header) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
		rd = &buf
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := noRedirectClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s %s: %v", method, url, err)
		}
	} else {
		_, _ = io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode, resp.Header
}

// TestReplFollowerEndToEnd exercises the whole HTTP surface across a
// leader and a follower daemon pair: store discovery, the read-your-writes
// token, write redirects, the metrics panel in both formats (reconciled
// exactly), and promotion over HTTP.
func TestReplFollowerEndToEnd(t *testing.T) {
	reg, _, err := OpenRegistry(RegistryOptions{
		DataDir:         t.TempDir(),
		CheckpointEvery: 1 << 30,
		CacheCap:        16,
	}, []string{"audit"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	lts := httptest.NewServer(NewMultiServer(reg))
	defer lts.Close()

	freg, err := OpenFollower(FollowerOptions{
		LeaderURL:        lts.URL,
		CacheCap:         16,
		PollInterval:     20 * time.Millisecond,
		ReconnectBackoff: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer freg.Close()
	if freg.FollowerOf() != lts.URL {
		t.Fatalf("FollowerOf = %q, want %q", freg.FollowerOf(), lts.URL)
	}
	fts := httptest.NewServer(NewMultiServer(freg))
	defer fts.Close()

	// Ingest on the leader; the response's epoch is the read-your-writes
	// token.
	dataset, model := seedShard(t, lts.URL, DefaultStore)
	var ir IngestResponse
	if code := doJSON(t, http.MethodPost, lts.URL+"/ingest", IngestRequest{Ops: []IngestOp{
		{Op: "run", Agent: "u-default", Command: "rw-probe",
			Inputs: []uint32{dataset}, Outputs: []string{"rw-artifact"}},
	}}, &ir); code != http.StatusOK {
		t.Fatalf("leader ingest status %d", code)
	}
	if ir.Epoch == 0 {
		t.Fatal("ingest response carries no commit epoch")
	}

	// A follower read holding the token blocks until the applier catches up,
	// then reflects the write.
	token := strconv.FormatUint(ir.Epoch, 10)
	var sr SegmentResponse
	code, _ := doJSONHeaders(t, http.MethodPost, fts.URL+"/segment",
		map[string]string{repl.HeaderMinEpoch: token},
		SegmentRequest{Src: []uint32{dataset}, Dst: []uint32{model}}, &sr)
	if code != http.StatusOK {
		t.Fatalf("follower read with token status %d", code)
	}
	if got := freg.Default().Epoch().N; got < ir.Epoch {
		t.Fatalf("follower served epoch %d below token %d", got, ir.Epoch)
	}

	// An unreachable token fails fast with the leader's address.
	code, hdr := doJSONHeaders(t, http.MethodPost, fts.URL+"/segment",
		map[string]string{repl.HeaderMinEpoch: "100000", repl.HeaderMinEpochWait: "50"},
		SegmentRequest{Src: []uint32{dataset}, Dst: []uint32{model}}, nil)
	if code != http.StatusPreconditionFailed {
		t.Fatalf("unreachable token status %d, want 412", code)
	}
	if hdr.Get(repl.HeaderLeader) != lts.URL {
		t.Fatalf("412 leader header = %q, want %q", hdr.Get(repl.HeaderLeader), lts.URL)
	}
	// And a malformed token is a 400, not a hang.
	code, _ = doJSONHeaders(t, http.MethodPost, fts.URL+"/segment",
		map[string]string{repl.HeaderMinEpoch: "not-a-number"},
		SegmentRequest{Src: []uint32{dataset}, Dst: []uint32{model}}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("malformed token status %d, want 400", code)
	}

	// Writes redirect to the leader, with Location preserving the path.
	code, hdr = doJSONHeaders(t, http.MethodPost, fts.URL+"/ingest", nil,
		IngestRequest{Ops: []IngestOp{{Op: "agent", Agent: "x"}}}, nil)
	if code != http.StatusTemporaryRedirect {
		t.Fatalf("follower ingest status %d, want 307", code)
	}
	if hdr.Get("Location") != lts.URL+"/ingest" || hdr.Get(repl.HeaderLeader) != lts.URL {
		t.Fatalf("redirect headers: Location=%q X-Repl-Leader=%q", hdr.Get("Location"), hdr.Get(repl.HeaderLeader))
	}
	code, _ = doJSONHeaders(t, http.MethodPut, fts.URL+"/stores/fresh", nil, nil, nil)
	if code != http.StatusTemporaryRedirect {
		t.Fatalf("follower store create status %d, want 307", code)
	}

	// Discovery mirrors the leader's store set, including ones created after
	// the follower booted.
	code, _ = doJSONHeaders(t, http.MethodPut, lts.URL+"/stores/late", nil, nil, nil)
	if code != http.StatusCreated {
		t.Fatalf("leader store create status %d", code)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		var list StoreListResponse
		if code := doJSON(t, http.MethodGet, fts.URL+"/stores", nil, &list); code != http.StatusOK {
			t.Fatalf("follower store list status %d", code)
		}
		names := map[string]bool{}
		for _, s := range list.Stores {
			names[s.Name] = true
		}
		if names[DefaultStore] && names["audit"] && names["late"] {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("discovery never mirrored the leader: %v", names)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Metrics: the JSON panel and the Prometheus exposition must agree
	// exactly on the repl gauges (the store is quiescent between the two
	// fetches — nothing applies, so the counters are stable).
	if !freg.Default().WaitEpoch(reg.Default().Epoch().N, 5*time.Second) {
		t.Fatal("follower never caught up for the metrics check")
	}
	var m MetricsResponse
	if code := doJSON(t, http.MethodGet, fts.URL+"/metrics", nil, &m); code != http.StatusOK {
		t.Fatalf("follower metrics status %d", code)
	}
	if m.Repl == nil || !m.Repl.Follower || m.Repl.LeaderURL != lts.URL {
		t.Fatalf("follower repl panel: %+v", m.Repl)
	}
	if m.Repl.AppliedEpoch != m.Epoch {
		t.Fatalf("applied epoch %d != store epoch %d", m.Repl.AppliedEpoch, m.Epoch)
	}
	_, _, prom := fetchText(t, fts.URL+"/stores/default/metrics?format=prometheus", nil)
	if _, err := obs.ParseExposition(strings.NewReader(prom)); err != nil {
		t.Fatalf("follower exposition does not parse: %v", err)
	}
	series := func(name string) string { return name + `{store="default"}` }
	for _, chk := range []struct {
		series string
		want   float64
	}{
		{series("provd_repl_follower"), 1},
		{series("provd_repl_applied_epoch"), float64(m.Repl.AppliedEpoch)},
		{series("provd_repl_leader_epoch"), float64(m.Repl.LeaderEpoch)},
		{series("provd_repl_lag_records"), float64(m.Repl.LagRecords)},
		{series("provd_repl_lag_seconds"), float64(m.Repl.LagNanos) / 1e9},
		{series("provd_repl_reconnects_total"), float64(m.Repl.Reconnects)},
	} {
		if got := promValue(t, prom, chk.series); got != chk.want {
			t.Errorf("%s = %v, JSON panel says %v", chk.series, got, chk.want)
		}
	}
	// Leader stores never followed anyone: no repl series, no JSON panel.
	_, _, leaderProm := fetchText(t, lts.URL+"/stores/default/metrics?format=prometheus", nil)
	if strings.Contains(leaderProm, "provd_repl_") {
		t.Error("leader exposition grew repl series without ever following")
	}
	var lm MetricsResponse
	if code := doJSON(t, http.MethodGet, lts.URL+"/metrics", nil, &lm); code != http.StatusOK || lm.Repl != nil {
		t.Fatalf("leader metrics: status %d repl %+v", code, lm.Repl)
	}

	// Promotion over HTTP: first wins, second conflicts, writes then land.
	var pr PromoteResponse
	code, _ = doJSONHeaders(t, http.MethodPost, fts.URL+"/promote", nil, nil, &pr)
	if code != http.StatusOK || pr.Store != DefaultStore {
		t.Fatalf("promote: status %d resp %+v", code, pr)
	}
	code, _ = doJSONHeaders(t, http.MethodPost, fts.URL+"/promote", nil, nil, nil)
	if code != http.StatusConflict {
		t.Fatalf("second promote status %d, want 409", code)
	}
	var pir IngestResponse
	if code := doJSON(t, http.MethodPost, fts.URL+"/ingest", IngestRequest{Ops: []IngestOp{
		{Op: "agent", Agent: "post-failover"},
	}}, &pir); code != http.StatusOK {
		t.Fatalf("post-promotion ingest status %d", code)
	}
	if pir.Epoch != pr.Epoch+1 {
		t.Fatalf("post-promotion epoch %d, want %d", pir.Epoch, pr.Epoch+1)
	}
	_, _, prom2 := fetchText(t, fts.URL+"/stores/default/metrics?format=prometheus", nil)
	if got := promValue(t, prom2, series("provd_repl_follower")); got != 0 {
		t.Fatalf("promoted store still exports follower=%v", got)
	}
}

// TestReplNonEmptyBaseSeedsCheckpoint pins the boot-time-graph hole: a
// leader whose epoch-0 graph was already populated (-gen / -in, or a
// recovered checkpoint) has state no ring delta reproduces, so a fresh
// from=0 follower must be seeded with a checkpoint frame even though the
// hub still covers epoch 1. Without ForceSnapshot the stream is delta-only
// and the follower silently converges to the leader's epoch with none of
// the base graph.
func TestReplNonEmptyBaseSeedsCheckpoint(t *testing.T) {
	p := prov.New()
	rec := prov.WrapRecorder(p)
	rec.Snapshot("base-artifact")
	leader := NewStore(p, 8)
	leader.EnableRepl() // hub based at 0: the ring covers every delta
	ts := httptest.NewServer(NewServer(leader))
	defer ts.Close()
	if v := leader.Epoch().Vertices; v == 0 {
		t.Fatal("test needs a non-empty epoch-0 base")
	}

	ingestBatch(t, leader, scriptBatch{{Op: "agent", Agent: "post-base"}})

	f := newFollowerStore(DefaultStore, ts.URL, 8)
	defer f.Close()
	tailUntil(t, f, ts.Client(), leader.Epoch().N)

	le, fe := leader.Epoch(), f.Epoch()
	if fe.N != le.N {
		t.Fatalf("follower epoch %d, leader %d", fe.N, le.N)
	}
	if fe.Vertices != le.Vertices || fe.Edges != le.Edges {
		t.Fatalf("follower %d vertices / %d edges, leader %d / %d — epoch-0 base not shipped",
			fe.Vertices, fe.Edges, le.Vertices, le.Edges)
	}

	// Chained replication: a second follower tailing the first must get the
	// same checkpoint seeding (resetReplicated propagates nonEmptyBase).
	fs := httptest.NewServer(NewServer(f))
	defer fs.Close()
	f2 := newFollowerStore(DefaultStore, fs.URL, 8)
	defer f2.Close()
	tailUntil(t, f2, fs.Client(), fe.N)
	if e2 := f2.Epoch(); e2.Vertices != le.Vertices || e2.Edges != le.Edges {
		t.Fatalf("chained follower %d vertices / %d edges, leader %d / %d",
			e2.Vertices, e2.Edges, le.Vertices, le.Edges)
	}
}
