package server

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/cypher"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/prov"
)

// Wire types: the JSON request/response schema of every endpoint. Vertex and
// edge ids are the dense uint32 ids of the underlying property graph;
// relationship types use the paper's one-letter convention (U, G, S, A, D).

// Output formats.
const (
	// FormatJSON is the default structured response.
	FormatJSON = "json"
	// FormatDOT renders the result subgraph in graphviz DOT.
	FormatDOT = "dot"
)

// ExpansionSpec is one expansion boundary b_x(Within, K).
type ExpansionSpec struct {
	Within []uint32 `json:"within"`
	K      int      `json:"k"`
}

// SegmentRequest is the POST /segment body.
type SegmentRequest struct {
	Src []uint32 `json:"src"`
	Dst []uint32 `json:"dst"`
	// ExcludeRels lists PROV edge types excluded by the boundary (one-letter
	// names: U, G, S, A, D).
	ExcludeRels []string        `json:"exclude_rels,omitempty"`
	Expansions  []ExpansionSpec `json:"expansions,omitempty"`
	// Solver picks the VC2 algorithm: "tst" (default), "alg", or "cflrb".
	Solver string `json:"solver,omitempty"`
	// Format is "json" (default) or "dot".
	Format string `json:"format,omitempty"`
	// NoCache bypasses the segment result cache.
	NoCache bool `json:"no_cache,omitempty"`
}

// VertexInfo describes one segment vertex.
type VertexInfo struct {
	ID   uint32 `json:"id"`
	Kind string `json:"kind"` // E, A, or U
	Name string `json:"name,omitempty"`
	Rule string `json:"rule,omitempty"` // induction rule that contributed it
}

// EdgeInfo describes one segment edge.
type EdgeInfo struct {
	ID  uint32 `json:"id"`
	Src uint32 `json:"src"`
	Dst uint32 `json:"dst"`
	Rel string `json:"rel"` // U, G, S, A, or D
}

// SegmentResponse is the POST /segment reply.
type SegmentResponse struct {
	NumVertices int          `json:"num_vertices"`
	NumEdges    int          `json:"num_edges"`
	Vertices    []VertexInfo `json:"vertices,omitempty"`
	Edges       []EdgeInfo   `json:"edges,omitempty"`
	// Cached reports whether the result was served from the LRU cache.
	Cached bool `json:"cached"`
	// DOT carries the graphviz rendering when format=dot.
	DOT string `json:"dot,omitempty"`
}

// AdjustRequest is the POST /adjust body: the base segmentation query
// (resolved through the segment cache) plus the interactive adjustment to
// apply to its result — additional relationship-type exclusions
// (AdjustExclude) and/or expansion boundaries (AdjustExpand). At least one
// adjustment must be given.
type AdjustRequest struct {
	Segment SegmentRequest `json:"segment"`
	// ExcludeRels are additional PROV edge types to exclude from the cached
	// segment (one-letter names: U, G, S, A, D).
	ExcludeRels []string `json:"exclude_rels,omitempty"`
	// ExcludeKinds are PROV vertex kinds to exclude (one-letter names: E,
	// A, U — e.g. "U" hides all agents). Query vertices always survive.
	ExcludeKinds []string `json:"exclude_kinds,omitempty"`
	// Expansions grow the segment by ancestry within k activities of the
	// given entities.
	Expansions []ExpansionSpec `json:"expansions,omitempty"`
	// Format is "json" (default) or "dot".
	Format string `json:"format,omitempty"`
}

// StoreCreateRequest is the optional PUT /stores/{name} body. An empty
// body keeps the store's current configuration (the original creation
// API), so existing clients are unaffected.
type StoreCreateRequest struct {
	// QoS, when present, replaces the store's admission policy — on the
	// store being created, or on an existing store (the PUT is the
	// configuration surface as well as the creation one). A zero config
	// removes all limits.
	QoS *QoSConfig `json:"qos,omitempty"`
}

// StoreCreateResponse is the PUT /stores/{name} reply.
type StoreCreateResponse struct {
	Store string `json:"store"`
	// Created reports whether this request created the store (false: it
	// already existed; the PUT is idempotent).
	Created bool   `json:"created"`
	Epoch   uint64 `json:"epoch"`
	// QoS echoes the store's admission policy after this request (zero
	// when unlimited).
	QoS QoSConfig `json:"qos"`
}

// StoreInfo is one store's headline state in the GET /stores listing.
type StoreInfo struct {
	Name     string `json:"name"`
	Epoch    uint64 `json:"epoch"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
	Durable  bool   `json:"durable"`
}

// StoreListResponse is the GET /stores reply, default store first.
type StoreListResponse struct {
	Stores []StoreInfo `json:"stores"`
}

// MetricsResponse is the GET /metrics payload: store-level counters for
// observability — the current epoch, cache effectiveness (including how
// often ingest deltas revalidated vs. purged cached segments), how commit
// snapshots were built (incremental CSR extension vs full rebuild) and what
// they cost, durability counters (write-ahead log volume, fsync latency,
// group-commit amortization, checkpoints; omitted on memory-only stores),
// and per-endpoint request counts since start. Every counter is scoped to
// the one store the request was routed to.
type MetricsResponse struct {
	Store        string            `json:"store,omitempty"`
	Epoch        uint64            `json:"epoch"`
	Vertices     int               `json:"vertices"`
	Edges        int               `json:"edges"`
	UptimeMillis int64             `json:"uptime_ms"`
	Cache        CacheStats        `json:"cache"`
	Freeze       FreezeStats       `json:"freeze"`
	WAL          *DurabilityStats  `json:"wal,omitempty"`
	Requests     map[string]uint64 `json:"requests"`
	// Endpoints breaks each endpoint's traffic down by status class with a
	// latency summary (p50/p90/p99/max) from the per-endpoint histogram.
	Endpoints map[string]EndpointStats `json:"endpoints"`
	// Stages summarizes the write pipeline per commit stage
	// (enqueue = group-commit queue wait, append = WAL write, fsync,
	// publish); empty until the store has committed through a stage.
	Stages map[string]obs.LatencySummary `json:"stages"`
	// QoS is the admission-control panel: the active limits, the
	// admitted/rejected split (rejections by cause), and the in-flight /
	// commit-queue-depth pressure gauges.
	QoS QoSStats `json:"qos"`
	// Repl is the replication panel: applied/leader epochs, record and time
	// lag, and reconnects. Present on followers and promoted ex-followers;
	// omitted on stores that never followed anyone.
	Repl *ReplStats `json:"repl,omitempty"`
}

// SlowResponse is the GET /debug/slow payload: the bounded in-memory ring
// of requests that ran at or over the slow threshold, newest first.
type SlowResponse struct {
	ThresholdMillis int64           `json:"threshold_ms"`
	Total           uint64          `json:"total"`
	Entries         []obs.SlowEntry `json:"entries"`
}

// SegmentSpec identifies one input segment of a summarization request.
type SegmentSpec struct {
	Src         []uint32 `json:"src"`
	Dst         []uint32 `json:"dst"`
	ExcludeRels []string `json:"exclude_rels,omitempty"`
}

// SummarizeRequest is the POST /summarize body.
type SummarizeRequest struct {
	Segments []SegmentSpec `json:"segments"`
	// TypeRadius is Rk's k (provenance-type neighborhood radius).
	TypeRadius int `json:"type_radius,omitempty"`
	// AggActivity / AggEntity / AggAgent are the property-aggregation keys K.
	AggActivity []string `json:"agg_activity,omitempty"`
	AggEntity   []string `json:"agg_entity,omitempty"`
	AggAgent    []string `json:"agg_agent,omitempty"`
	// Format is "json" (default) or "dot".
	Format string `json:"format,omitempty"`
}

// PsgNodeInfo is one summary vertex.
type PsgNodeInfo struct {
	Label   string `json:"label"`
	Members int    `json:"members"`
}

// PsgEdgeInfo is one frequency-annotated summary edge.
type PsgEdgeInfo struct {
	From int     `json:"from"`
	To   int     `json:"to"`
	Rel  string  `json:"rel"`
	Freq float64 `json:"freq"`
}

// SummarizeResponse is the POST /summarize reply.
type SummarizeResponse struct {
	Nodes           []PsgNodeInfo `json:"nodes,omitempty"`
	Edges           []PsgEdgeInfo `json:"edges,omitempty"`
	InputVertices   int           `json:"input_vertices"`
	Segments        int           `json:"segments"`
	CompactionRatio float64       `json:"compaction_ratio"`
	DOT             string        `json:"dot,omitempty"`
}

// QueryRequest is the POST /query (Cypher) body.
type QueryRequest struct {
	Query string `json:"query"`
	// TimeoutMillis caps evaluation time (default and ceiling set by the
	// server, see maxCypherTimeout).
	TimeoutMillis int `json:"timeout_ms,omitempty"`
	// MaxRows caps intermediate binding tables.
	MaxRows int `json:"max_rows,omitempty"`
	// MaxPathLen caps variable-length path expansion.
	MaxPathLen int `json:"max_path_len,omitempty"`
}

// QueryResponse is the POST /query reply. Each row cell is a rendered value:
// vertices as {"id", "kind", "name"}, paths as {"verts", "edges"}, scalars as
// their JSON form.
type QueryResponse struct {
	NumRows int     `json:"num_rows"`
	Rows    [][]any `json:"rows"`
}

// IngestOp is one lifecycle mutation. Op selects the shape:
//
//   - "agent":    Agent — ensure an agent exists
//   - "import":   Agent, Artifact, URL — record an external artifact
//   - "snapshot": Artifact — record a new version of an artifact
//   - "run":      Agent, Command, Inputs, Outputs — record an activity
type IngestOp struct {
	Op       string   `json:"op"`
	Agent    string   `json:"agent,omitempty"`
	Artifact string   `json:"artifact,omitempty"`
	URL      string   `json:"url,omitempty"`
	Command  string   `json:"command,omitempty"`
	Inputs   []uint32 `json:"inputs,omitempty"`
	Outputs  []string `json:"outputs,omitempty"`
}

// IngestRequest is the POST /ingest body: a batch of lifecycle operations
// applied atomically under the write lock.
type IngestRequest struct {
	Ops []IngestOp `json:"ops"`
}

// IngestResult reports the vertices created by one op: the primary vertex
// (agent, entity, or activity) and, for "run", the output entities.
type IngestResult struct {
	ID      uint32   `json:"id"`
	Outputs []uint32 `json:"outputs,omitempty"`
}

// IngestResponse is the POST /ingest reply. Epoch is the batch's commit
// epoch — a read-your-writes token: present it as X-Min-Epoch on a later
// read (typically against a follower) and the reply is guaranteed to
// reflect this batch or the request fails with 412 naming the leader.
type IngestResponse struct {
	Results  []IngestResult `json:"results"`
	Vertices int            `json:"vertices"`
	Edges    int            `json:"edges"`
	Epoch    uint64         `json:"epoch"`
}

// PromoteResponse is the POST /stores/{name}/promote reply: the store is
// now writable at Epoch.
type PromoteResponse struct {
	Store string `json:"store"`
	Epoch uint64 `json:"epoch"`
}

// ErrorResponse is the body of every non-2xx reply.
type ErrorResponse struct {
	Error string `json:"error"`
}

// --- decoding helpers ---

func toVertexIDs(ids []uint32) []graph.VertexID {
	out := make([]graph.VertexID, len(ids))
	for i, id := range ids {
		out[i] = graph.VertexID(id)
	}
	return out
}

// parseRels maps one-letter relationship names to prov.Rel values.
func parseRels(names []string) ([]prov.Rel, error) {
	var out []prov.Rel
	for _, n := range names {
		switch strings.ToUpper(strings.TrimSpace(n)) {
		case "U":
			out = append(out, prov.RelUsed)
		case "G":
			out = append(out, prov.RelGen)
		case "S":
			out = append(out, prov.RelAssoc)
		case "A":
			out = append(out, prov.RelAttr)
		case "D":
			out = append(out, prov.RelDeriv)
		default:
			return nil, fmt.Errorf("unknown relationship %q (want U, G, S, A, D)", n)
		}
	}
	return out, nil
}

// parseKinds maps one-letter vertex kind names to prov.Kind values.
func parseKinds(names []string) ([]prov.Kind, error) {
	var out []prov.Kind
	for _, n := range names {
		switch strings.ToUpper(strings.TrimSpace(n)) {
		case "E":
			out = append(out, prov.KindEntity)
		case "A":
			out = append(out, prov.KindActivity)
		case "U":
			out = append(out, prov.KindAgent)
		default:
			return nil, fmt.Errorf("unknown vertex kind %q (want E, A, U)", n)
		}
	}
	return out, nil
}

// parseSolver maps the wire solver name to core options.
func parseSolver(name string) (core.SolverKind, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "tst":
		return core.SolverTst, nil
	case "alg":
		return core.SolverAlg, nil
	case "cflrb":
		return core.SolverCflrB, nil
	}
	return 0, fmt.Errorf("unknown solver %q (want tst, alg, cflrb)", name)
}

// toQuery converts a SegmentRequest into the core query + options.
func (r *SegmentRequest) toQuery() (core.Query, core.Options, error) {
	rels, err := parseRels(r.ExcludeRels)
	if err != nil {
		return core.Query{}, core.Options{}, err
	}
	solver, err := parseSolver(r.Solver)
	if err != nil {
		return core.Query{}, core.Options{}, err
	}
	q := core.Query{
		Src:      toVertexIDs(r.Src),
		Dst:      toVertexIDs(r.Dst),
		Boundary: core.Boundary{ExcludeRels: rels},
	}
	for _, ex := range r.Expansions {
		q.Boundary.Expansions = append(q.Boundary.Expansions, core.Expansion{
			Within: toVertexIDs(ex.Within),
			K:      ex.K,
		})
	}
	return q, core.Options{Solver: solver}, nil
}

// --- encoding helpers (callers hold the store's read lock via Store.View) ---

// encodeSegment renders a segment into the wire response.
func encodeSegment(p *prov.Graph, seg *core.Segment, cached bool) *SegmentResponse {
	resp := &SegmentResponse{
		NumVertices: seg.NumVertices(),
		NumEdges:    seg.NumEdges(),
		Cached:      cached,
	}
	g := p.PG()
	for _, v := range seg.Vertices {
		resp.Vertices = append(resp.Vertices, VertexInfo{
			ID:   uint32(v),
			Kind: p.KindOf(v).String(),
			Name: p.Name(v),
			Rule: seg.ByRule[v].String(),
		})
	}
	for _, e := range seg.Edges {
		resp.Edges = append(resp.Edges, EdgeInfo{
			ID:  uint32(e),
			Src: uint32(g.Src(e)),
			Dst: uint32(g.Dst(e)),
			Rel: p.RelOf(e).String(),
		})
	}
	return resp
}

// encodePsg renders a summary graph into the wire response.
func encodePsg(psg *core.Psg) *SummarizeResponse {
	resp := &SummarizeResponse{
		InputVertices:   psg.InputVertices,
		Segments:        psg.Segments,
		CompactionRatio: psg.CompactionRatio(),
	}
	for _, n := range psg.Nodes {
		resp.Nodes = append(resp.Nodes, PsgNodeInfo{Label: n.Label, Members: len(n.Members)})
	}
	for _, e := range psg.Edges {
		resp.Edges = append(resp.Edges, PsgEdgeInfo{From: e.From, To: e.To, Rel: e.Rel.String(), Freq: e.Freq})
	}
	return resp
}

// encodeValue renders one Cypher runtime value as a JSON-friendly any.
func encodeValue(p *prov.Graph, v cypher.Value) any {
	switch v.Kind {
	case cypher.KindVertex:
		return map[string]any{
			"id":   uint32(v.V),
			"kind": p.KindOf(v.V).String(),
			"name": p.Name(v.V),
		}
	case cypher.KindEdge:
		g := p.PG()
		return map[string]any{
			"id":  uint32(v.E),
			"src": uint32(g.Src(v.E)),
			"dst": uint32(g.Dst(v.E)),
			"rel": p.RelOf(v.E).String(),
		}
	case cypher.KindPath:
		verts := make([]uint32, len(v.P.Verts))
		for i, pv := range v.P.Verts {
			verts[i] = uint32(pv)
		}
		edges := make([]uint32, len(v.P.Edges))
		for i, pe := range v.P.Edges {
			edges[i] = uint32(pe)
		}
		return map[string]any{"verts": verts, "edges": edges}
	case cypher.KindList:
		out := make([]any, len(v.L))
		for i, lv := range v.L {
			out[i] = encodeValue(p, lv)
		}
		return out
	case cypher.KindString:
		return v.S
	case cypher.KindInt:
		return v.I
	case cypher.KindBool:
		return v.B
	}
	return nil
}

// encodeResult renders a Cypher result table.
func encodeResult(p *prov.Graph, res *cypher.Result) *QueryResponse {
	resp := &QueryResponse{NumRows: len(res.Rows), Rows: make([][]any, 0, len(res.Rows))}
	for _, row := range res.Rows {
		cells := make([]any, len(row))
		for i, v := range row {
			cells[i] = encodeValue(p, v)
		}
		resp.Rows = append(resp.Rows, cells)
	}
	return resp
}
