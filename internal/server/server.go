package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/cypher"
	"repro/internal/graph"
	"repro/internal/prov"
)

// Limits protecting the service from oversized or runaway requests.
const (
	// maxBodyBytes bounds request bodies.
	maxBodyBytes = 8 << 20
	// defaultCypherTimeout applies when a /query request names none.
	defaultCypherTimeout = 10 * time.Second
	// maxCypherTimeout is the ceiling a request can ask for.
	maxCypherTimeout = 60 * time.Second
	// defaultCypherMaxRows bounds intermediate binding tables when the
	// request names no budget (the Cypher baseline is exponential on
	// variable-length path joins; an unbounded query could exhaust memory).
	defaultCypherMaxRows = 1_000_000
)

// Server is the provd HTTP API over one Store.
//
// Endpoints:
//
//	POST /segment    PgSeg query                     (read)
//	POST /summarize  PgSum over segment queries      (read)
//	POST /query      Cypher-subset query             (read)
//	POST /adjust     interactive adjust of a cached segment (read)
//	POST /ingest     lifecycle mutation batch        (write)
//	GET  /stats      graph + cache statistics        (read)
//	GET  /metrics    service counters (epoch, cache, per-endpoint requests)
//	GET  /healthz    liveness probe
//	GET  /export     whole-graph export: ?format=prov-json | dot | pg
//
// All reads run lock-free against the store's current epoch snapshot; only
// /ingest takes the write mutex.
type Server struct {
	store    *Store
	mux      *http.ServeMux
	requests map[string]*atomic.Uint64 // per-endpoint request counters
}

// NewServer builds the HTTP API over store.
func NewServer(store *Store) *Server {
	s := &Server{store: store, mux: http.NewServeMux(), requests: make(map[string]*atomic.Uint64)}
	for _, ep := range []struct {
		pattern, name string
		h             http.HandlerFunc
	}{
		{"POST /segment", "segment", s.handleSegment},
		{"POST /summarize", "summarize", s.handleSummarize},
		{"POST /query", "query", s.handleQuery},
		{"POST /adjust", "adjust", s.handleAdjust},
		{"POST /ingest", "ingest", s.handleIngest},
		{"GET /stats", "stats", s.handleStats},
		{"GET /metrics", "metrics", s.handleMetrics},
		{"GET /healthz", "healthz", s.handleHealthz},
		{"GET /export", "export", s.handleExport},
	} {
		ctr := &atomic.Uint64{}
		s.requests[ep.name] = ctr
		h := ep.h
		s.mux.HandleFunc(ep.pattern, func(w http.ResponseWriter, r *http.Request) {
			ctr.Add(1)
			h(w, r)
		})
	}
	return s
}

// Store returns the store the server serves.
func (s *Server) Store() *Store { return s.store }

// ServeHTTP dispatches to the endpoint handlers.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// --- plumbing ---

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// decode parses the request body into v, enforcing the body size limit.
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// queryErrCode maps an operator error to an HTTP status.
func queryErrCode(err error) int {
	switch {
	case errors.Is(err, cypher.ErrTimeout):
		return http.StatusGatewayTimeout
	case errors.Is(err, cypher.ErrRowBudget):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusBadRequest
	}
}

// --- endpoint handlers ---

func (s *Server) handleSegment(w http.ResponseWriter, r *http.Request) {
	var req SegmentRequest
	if !decode(w, r, &req) {
		return
	}
	format := strings.ToLower(req.Format)
	if format != "" && format != FormatJSON && format != FormatDOT {
		// Reject before the (potentially expensive) solve runs.
		writeErr(w, http.StatusBadRequest, "unknown format %q (want json, dot)", req.Format)
		return
	}
	q, opts, err := req.toQuery()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	seg, cached, err := s.store.Segment(q, opts, !req.NoCache)
	if err != nil {
		writeErr(w, queryErrCode(err), "segment: %v", err)
		return
	}
	var resp *SegmentResponse
	var dotErr error
	s.store.View(func(p *prov.Graph) {
		if format == FormatDOT {
			var b strings.Builder
			dotErr = seg.WriteDOT(&b)
			resp = &SegmentResponse{
				NumVertices: seg.NumVertices(),
				NumEdges:    seg.NumEdges(),
				Cached:      cached,
				DOT:         b.String(),
			}
			return
		}
		resp = encodeSegment(p, seg, cached)
	})
	if dotErr != nil {
		writeErr(w, http.StatusInternalServerError, "%v", dotErr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleAdjust serves the paper's interactive adjust step: the base PgSeg
// query is resolved through the segment cache, then the requested
// AdjustExclude / AdjustExpand refinements derive the adjusted segment
// without re-running the solver.
func (s *Server) handleAdjust(w http.ResponseWriter, r *http.Request) {
	var req AdjustRequest
	if !decode(w, r, &req) {
		return
	}
	format := strings.ToLower(req.Format)
	if format != "" && format != FormatJSON && format != FormatDOT {
		writeErr(w, http.StatusBadRequest, "unknown format %q (want json, dot)", req.Format)
		return
	}
	q, opts, err := req.Segment.toQuery()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	rels, err := parseRels(req.ExcludeRels)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	kinds, err := parseKinds(req.ExcludeKinds)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	excl := core.Boundary{ExcludeRels: rels}
	if len(kinds) > 0 {
		excl.VertexFilters = []core.VertexFilter{func(p *prov.Graph, v graph.VertexID) bool {
			for _, k := range kinds {
				if p.IsKind(v, k) {
					return false
				}
			}
			return true
		}}
	}
	exps := make([]core.Expansion, 0, len(req.Expansions))
	for _, ex := range req.Expansions {
		exps = append(exps, core.Expansion{Within: toVertexIDs(ex.Within), K: ex.K})
	}
	if len(rels) == 0 && len(kinds) == 0 && len(exps) == 0 {
		writeErr(w, http.StatusBadRequest, "adjust: needs exclude_rels, exclude_kinds or expansions")
		return
	}
	seg, cached, err := s.store.Adjust(q, opts, excl, exps)
	if err != nil {
		writeErr(w, queryErrCode(err), "adjust: %v", err)
		return
	}
	var resp *SegmentResponse
	var dotErr error
	s.store.View(func(p *prov.Graph) {
		if format == FormatDOT {
			var b strings.Builder
			dotErr = seg.WriteDOT(&b)
			resp = &SegmentResponse{
				NumVertices: seg.NumVertices(),
				NumEdges:    seg.NumEdges(),
				Cached:      cached,
				DOT:         b.String(),
			}
			return
		}
		resp = encodeSegment(p, seg, cached)
	})
	if dotErr != nil {
		writeErr(w, http.StatusInternalServerError, "%v", dotErr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSummarize(w http.ResponseWriter, r *http.Request) {
	var req SummarizeRequest
	if !decode(w, r, &req) {
		return
	}
	if len(req.Segments) == 0 {
		writeErr(w, http.StatusBadRequest, "summarize: needs at least one segment spec")
		return
	}
	format := strings.ToLower(req.Format)
	if format != "" && format != FormatJSON && format != FormatDOT {
		// Reject before the (potentially expensive) solves run.
		writeErr(w, http.StatusBadRequest, "unknown format %q (want json, dot)", req.Format)
		return
	}
	queries := make([]core.Query, 0, len(req.Segments))
	for i, spec := range req.Segments {
		rels, err := parseRels(spec.ExcludeRels)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "segment %d: %v", i, err)
			return
		}
		queries = append(queries, core.Query{
			Src:      toVertexIDs(spec.Src),
			Dst:      toVertexIDs(spec.Dst),
			Boundary: core.Boundary{ExcludeRels: rels},
		})
	}
	sumOpts := core.SumOptions{
		TypeRadius: req.TypeRadius,
		K: core.Aggregation{
			Entity:   req.AggEntity,
			Activity: req.AggActivity,
			Agent:    req.AggAgent,
		},
	}
	psg, err := s.store.Summarize(queries, core.Options{}, sumOpts)
	if err != nil {
		writeErr(w, queryErrCode(err), "summarize: %v", err)
		return
	}
	if format == FormatDOT {
		var b strings.Builder
		if err := psg.WriteDOT(&b); err != nil {
			writeErr(w, http.StatusInternalServerError, "%v", err)
			return
		}
		resp := encodePsg(psg)
		resp.Nodes, resp.Edges = nil, nil
		resp.DOT = b.String()
		writeJSON(w, http.StatusOK, resp)
		return
	}
	writeJSON(w, http.StatusOK, encodePsg(psg))
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !decode(w, r, &req) {
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		writeErr(w, http.StatusBadRequest, "query: empty query text")
		return
	}
	timeout := defaultCypherTimeout
	if req.TimeoutMillis > 0 {
		timeout = time.Duration(req.TimeoutMillis) * time.Millisecond
		if timeout > maxCypherTimeout {
			timeout = maxCypherTimeout
		}
	}
	maxRows := defaultCypherMaxRows
	if req.MaxRows > 0 && req.MaxRows < maxRows {
		maxRows = req.MaxRows
	}
	opts := cypher.Options{Timeout: timeout, MaxRows: maxRows, MaxPathLen: req.MaxPathLen}
	res, err := s.store.Cypher(req.Query, opts)
	if err != nil {
		writeErr(w, queryErrCode(err), "query: %v", err)
		return
	}
	var resp *QueryResponse
	s.store.View(func(p *prov.Graph) { resp = encodeResult(p, res) })
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req IngestRequest
	if !decode(w, r, &req) {
		return
	}
	if len(req.Ops) == 0 {
		writeErr(w, http.StatusBadRequest, "ingest: empty op batch")
		return
	}
	resp := IngestResponse{Results: make([]IngestResult, 0, len(req.Ops))}
	err := s.store.Update(func(rec *prov.Recorder) error {
		// Validate the whole batch against the pre-batch graph first so the
		// batch applies atomically: either every op commits or none does.
		// Input ids must reference vertices that existed before the batch
		// (chain across batches using the returned ids).
		for i, op := range req.Ops {
			if err := validateOp(rec.P, op); err != nil {
				return fmt.Errorf("op %d: %w", i, err)
			}
		}
		for _, op := range req.Ops {
			switch op.Op {
			case "agent":
				resp.Results = append(resp.Results, IngestResult{ID: uint32(rec.Agent(op.Agent))})
			case "import":
				resp.Results = append(resp.Results, IngestResult{ID: uint32(rec.Import(op.Agent, op.Artifact, op.URL))})
			case "snapshot":
				resp.Results = append(resp.Results, IngestResult{ID: uint32(rec.Snapshot(op.Artifact))})
			case "run":
				a, outs := rec.Run(op.Agent, op.Command, toVertexIDs(op.Inputs), op.Outputs)
				res := IngestResult{ID: uint32(a)}
				for _, o := range outs {
					res.Outputs = append(res.Outputs, uint32(o))
				}
				resp.Results = append(resp.Results, res)
			}
		}
		// Snapshot the totals while still holding the write lock so the
		// reply reflects exactly this batch's commit point, not later
		// concurrent batches.
		resp.Vertices = rec.P.NumVertices()
		resp.Edges = rec.P.NumEdges()
		return nil
	})
	if err != nil {
		writeErr(w, http.StatusBadRequest, "ingest: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, &resp)
}

// validateOp checks one ingest op against the current graph; it must reject
// anything that would make the recorder panic (bad input kinds, out-of-range
// ids).
func validateOp(p *prov.Graph, op IngestOp) error {
	switch op.Op {
	case "agent":
		if op.Agent == "" {
			return errors.New(`"agent" op needs a non-empty agent name`)
		}
	case "import":
		if op.Agent == "" || op.Artifact == "" {
			return errors.New(`"import" op needs agent and artifact`)
		}
	case "snapshot":
		if op.Artifact == "" {
			return errors.New(`"snapshot" op needs an artifact name`)
		}
	case "run":
		if op.Agent == "" || op.Command == "" {
			return errors.New(`"run" op needs agent and command`)
		}
		if len(op.Outputs) == 0 {
			return errors.New(`"run" op needs at least one output artifact`)
		}
		for _, out := range op.Outputs {
			if out == "" {
				// An empty artifact name would create a nameless snapshot
				// whose version chain is lost on reload (WrapRecorder keys
				// versions by filename).
				return errors.New(`"run" op output artifact names must be non-empty`)
			}
		}
		for _, in := range op.Inputs {
			if int(in) >= p.NumVertices() {
				return fmt.Errorf("input vertex %d out of range", in)
			}
			if !p.IsKind(graph.VertexID(in), prov.KindEntity) {
				return fmt.Errorf("input vertex %d is not an entity", in)
			}
		}
	default:
		return fmt.Errorf("unknown op %q (want agent, import, snapshot, run)", op.Op)
	}
	return nil
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.store.Stats())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	ep := s.store.Epoch()
	resp := MetricsResponse{
		Epoch:        ep.N,
		Vertices:     ep.Vertices,
		Edges:        ep.Edges,
		UptimeMillis: s.store.Uptime().Milliseconds(),
		Cache:        s.store.CacheStats(),
		Freeze:       s.store.FreezeStatsSnapshot(),
		WAL:          s.store.DurabilityStatsSnapshot(),
		Requests:     make(map[string]uint64, len(s.requests)),
	}
	for name, ctr := range s.requests {
		resp.Requests[name] = ctr.Load()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	format := r.URL.Query().Get("format")
	var contentType string
	var export func(io.Writer) error
	switch strings.ToLower(format) {
	case "", "prov-json":
		contentType, export = "application/json", s.store.ExportJSON
	case "dot":
		contentType, export = "text/vnd.graphviz", s.store.ExportDOT
	case "pg":
		contentType, export = "application/octet-stream", s.store.Save
	default:
		writeErr(w, http.StatusBadRequest, "unknown format %q (want prov-json, dot, pg)", format)
		return
	}
	w.Header().Set("Content-Type", contentType)
	cw := &countingWriter{w: w}
	if err := export(cw); err != nil && cw.n == 0 {
		// Nothing streamed yet, so the status line is still ours to set.
		// After the first byte (e.g. the client hung up mid-stream) an
		// error status can no longer be delivered; just drop the request.
		writeErr(w, http.StatusInternalServerError, "export: %v", err)
	}
}

// countingWriter tracks whether any bytes reached the response.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
