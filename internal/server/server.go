package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/cypher"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/prov"
	"repro/internal/repl"
)

// Limits protecting the service from oversized or runaway requests.
const (
	// maxBodyBytes bounds request bodies.
	maxBodyBytes = 8 << 20
	// defaultCypherTimeout applies when a /query request names none.
	defaultCypherTimeout = 10 * time.Second
	// maxCypherTimeout is the ceiling a request can ask for.
	maxCypherTimeout = 60 * time.Second
	// defaultCypherMaxRows bounds intermediate binding tables when the
	// request names no budget (the Cypher baseline is exponential on
	// variable-length path joins; an unbounded query could exhaust memory).
	defaultCypherMaxRows = 1_000_000
)

// Server is the provd HTTP API over a Registry of named stores (shards).
//
// Endpoints (every store-scoped endpoint exists twice: the unprefixed
// legacy spelling against the default store, and /stores/{name}/... against
// the named store; an unknown or invalid name is a 404 with a JSON error):
//
//	POST [/stores/{name}]/segment    PgSeg query                     (read)
//	POST [/stores/{name}]/summarize  PgSum over segment queries      (read)
//	POST [/stores/{name}]/query      Cypher-subset query             (read)
//	POST [/stores/{name}]/adjust     interactive adjust of a cached segment (read)
//	POST [/stores/{name}]/ingest     lifecycle mutation batch        (write)
//	GET  [/stores/{name}]/stats      graph + cache statistics        (read)
//	GET  [/stores/{name}]/metrics    store counters (epoch, cache, requests)
//	GET  [/stores/{name}]/healthz    liveness probe
//	GET  [/stores/{name}]/export     whole-graph export: ?format=prov-json | dot | pg
//	PUT  /stores/{name}              create the named store (idempotent); the
//	                                 optional JSON body sets its QoS limits
//	GET  /stores                     list stores
//
// All reads run lock-free against the routed store's current epoch
// snapshot; only /ingest takes that store's write mutex — shards never
// serialize behind each other.
//
// Observability (see internal/obs): every store-scoped request is assigned
// a request id (the client's X-Request-ID if acceptable, else generated)
// that is echoed in the response, propagated via context through the write
// path into the group committer, and attached to the structured request
// log; per-endpoint status-class counters and latency histograms are
// recorded per store; requests at or over the slow threshold land in a
// bounded ring dumped at GET /debug/slow; and GET /metrics serves either
// the JSON panel (default) or Prometheus text exposition
// (?format=prometheus, or an Accept header naming text/plain /
// openmetrics).
//
// Admission control (see qos.go): a store configured with rate /
// concurrency limits rejects over-limit requests with 429 + Retry-After
// before the handler runs (metrics and health probes are exempt), and a
// bounded commit queue rejects ingest with 429 before the batch mutates
// the graph. Rejections flow through the same observability wrapper as
// successes: the request id is echoed and the status-class counters and
// latency histograms stay exact.
type Server struct {
	reg *Registry
	mux *http.ServeMux

	// logger receives one structured line per request (Debug level for
	// successes, Warn for 4xx/slow, Error for 5xx); nil disables.
	logger *slog.Logger
	// slow collects requests at or over slowThresh; slowThresh <= 0
	// disables capture.
	slow       *obs.SlowRing
	slowThresh time.Duration
}

// Options configures the server's observability surfaces.
type Options struct {
	// SlowThreshold is the duration at or over which a request enters the
	// slow-query ring. 0 selects the 500ms default; negative disables
	// capture.
	SlowThreshold time.Duration
	// SlowRingCap bounds the slow-query ring (entries; <=0 selects 128).
	SlowRingCap int
	// Logger, when non-nil, receives per-request structured log lines.
	Logger *slog.Logger
}

// defaultSlowThreshold is the slow-query capture threshold when Options
// names none.
const defaultSlowThreshold = 500 * time.Millisecond

// NewServer builds the HTTP API over a single memory-resident store, which
// becomes the default store of a one-entry registry.
func NewServer(store *Store) *Server {
	return NewMultiServer(NewMemRegistry(store, 0))
}

// NewMultiServer builds the HTTP API over a registry of named stores with
// default observability options.
func NewMultiServer(reg *Registry) *Server {
	return NewMultiServerWith(reg, Options{})
}

// NewMultiServerWith builds the HTTP API over a registry of named stores.
func NewMultiServerWith(reg *Registry, opts Options) *Server {
	if opts.SlowThreshold == 0 {
		opts.SlowThreshold = defaultSlowThreshold
	}
	s := &Server{
		reg:        reg,
		mux:        http.NewServeMux(),
		logger:     opts.Logger,
		slow:       obs.NewSlowRing(opts.SlowRingCap),
		slowThresh: opts.SlowThreshold,
	}
	for _, ep := range []endpointDef{
		{"POST", "/segment", "segment", s.handleSegment},
		{"POST", "/summarize", "summarize", s.handleSummarize},
		{"POST", "/query", "query", s.handleQuery},
		{"POST", "/adjust", "adjust", s.handleAdjust},
		{"POST", "/ingest", "ingest", s.handleIngest},
		{"GET", "/stats", "stats", s.handleStats},
		{"GET", "/metrics", "metrics", s.handleMetrics},
		{"GET", "/healthz", "healthz", s.handleHealthz},
		{"GET", "/export", "export", s.handleExport},
		{"GET", "/wal", "wal", s.handleWALStream},
		{"POST", "/promote", "promote", s.handlePromote},
	} {
		ep := ep
		s.mux.HandleFunc(ep.method+" "+ep.path, func(w http.ResponseWriter, r *http.Request) {
			s.serveEndpoint(s.reg.Default(), ep, w, r)
		})
		s.mux.HandleFunc(ep.method+" /stores/{store}"+ep.path, func(w http.ResponseWriter, r *http.Request) {
			st, err := s.reg.Get(r.PathValue("store"))
			if err != nil {
				writeErr(w, http.StatusNotFound, "%v", err)
				return
			}
			s.serveEndpoint(st, ep, w, r)
		})
	}
	s.mux.HandleFunc("PUT /stores/{store}", s.handleStoreCreate)
	s.mux.HandleFunc("GET /stores", s.handleStoreList)
	s.mux.HandleFunc("GET /debug/slow", s.handleSlow)
	return s
}

// endpointDef is one store-scoped endpoint registration.
type endpointDef struct {
	method, path, name string
	h                  func(*Store, http.ResponseWriter, *http.Request)
}

// statusWriter captures the response status for the request metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so chunked streams (the wal
// endpoint) can push frames through the metrics wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// admissionExempt reports endpoints that bypass the store's QoS limits:
// health probes and metrics scrapes must keep answering on an overloaded
// (or deliberately throttled) store — they are how the overload is seen.
// Replication streams are exempt too: a wal tail lives for hours and would
// otherwise pin a concurrency slot, and promote is the failover control
// path — exactly when a store may be throttled.
func admissionExempt(endpoint string) bool {
	switch endpoint {
	case "metrics", "healthz", "wal", "promote":
		return true
	}
	return false
}

// Read-your-writes wait bounds: how long a request holding an X-Min-Epoch
// token may park for the applier by default, and the cap on what
// X-Min-Epoch-Wait-Ms can ask for.
const (
	defaultMinEpochWait = 2 * time.Second
	maxMinEpochWait     = 10 * time.Second
)

// minEpochSatisfied enforces the read-your-writes token: a request
// presenting X-Min-Epoch waits (bounded) for the store's published epoch
// to reach it. On timeout the reply is 412 with the leader's address — the
// client can retry there, where the token is satisfied by construction.
// Returns false when the response has been written.
func minEpochSatisfied(st *Store, w http.ResponseWriter, r *http.Request) bool {
	v := r.Header.Get(repl.HeaderMinEpoch)
	if v == "" {
		return true
	}
	min, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad %s %q: %v", repl.HeaderMinEpoch, v, err)
		return false
	}
	wait := defaultMinEpochWait
	if ms := r.Header.Get(repl.HeaderMinEpochWait); ms != "" {
		n, err := strconv.ParseInt(ms, 10, 64)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, "bad %s %q", repl.HeaderMinEpochWait, ms)
			return false
		}
		wait = time.Duration(n) * time.Millisecond
		if wait > maxMinEpochWait {
			wait = maxMinEpochWait
		}
	}
	if st.WaitEpoch(min, wait) {
		return true
	}
	if leader := st.LeaderURL(); leader != "" {
		w.Header().Set(repl.HeaderLeader, leader)
	}
	writeErr(w, http.StatusPreconditionFailed,
		"store %q: epoch %d not reached (at %d)", st.Name(), min, st.Epoch().N)
	return false
}

// retryAfterSeconds renders a Retry-After hint in the header's
// delay-seconds form: an integer, rounded up, at least 1 (a "0" invites an
// immediate identical retry).
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// serveEndpoint runs one store-scoped request through the observability
// wrapper: request-id resolution and echo, per-endpoint counters and
// latency histogram, slow-query capture and the structured request log.
// The total counter bumps before the handler (so a /metrics response counts
// itself, as it always has); status class and latency record on completion.
// Admission control runs inside the wrapper: a 429 carries the request id
// and counts in the endpoint's status-class and latency metrics exactly
// like any other completion.
func (s *Server) serveEndpoint(st *Store, ep endpointDef, w http.ResponseWriter, r *http.Request) {
	st.countRequest(ep.name)

	id := r.Header.Get("X-Request-ID")
	if !obs.ValidRequestID(id) {
		id = obs.NewRequestID()
	}
	w.Header().Set("X-Request-ID", id)
	ctx := obs.WithRequestID(r.Context(), id)
	ctx, stages := obs.WithStages(ctx)

	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	start := time.Now()
	if admissionExempt(ep.name) {
		ep.h(st, sw, r.WithContext(ctx))
	} else if release, retry, ok := st.Admit(); ok {
		if minEpochSatisfied(st, sw, r) {
			ep.h(st, sw, r.WithContext(ctx))
		}
		release()
	} else {
		sw.Header().Set("Retry-After", retryAfterSeconds(retry))
		writeErr(sw, http.StatusTooManyRequests,
			"store %q: over its admission limits (rate or concurrency)", st.Name())
	}
	d := time.Since(start)
	st.observeRequest(ep.name, sw.status, d)

	slow := s.slowThresh > 0 && d >= s.slowThresh
	if slow {
		entry := obs.SlowEntry{
			Time:          start,
			RequestID:     id,
			Store:         st.Name(),
			Endpoint:      ep.name,
			Shape:         r.Method + " " + r.URL.Path,
			Status:        sw.status,
			DurationNanos: d.Nanoseconds(),
		}
		if ep.name == "ingest" {
			entry.Stages = stages
		}
		s.slow.Add(entry)
	}
	if s.logger != nil {
		lvl := slog.LevelDebug
		switch {
		case sw.status >= 500:
			lvl = slog.LevelError
		case sw.status >= 400 || slow:
			lvl = slog.LevelWarn
		}
		s.logger.LogAttrs(ctx, lvl, "request",
			slog.String("request_id", id),
			slog.String("store", st.Name()),
			slog.String("endpoint", ep.name),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status),
			slog.Uint64("epoch", st.Epoch().N),
			slog.Int64("duration_us", d.Microseconds()),
			slog.Bool("slow", slow),
		)
	}
}

// Store returns the default store (the one the legacy endpoints serve).
func (s *Server) Store() *Store { return s.reg.Default() }

// Registry returns the registry the server routes over.
func (s *Server) Registry() *Registry { return s.reg }

// ServeHTTP dispatches to the endpoint handlers.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// --- plumbing ---

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// decode parses the request body into v, enforcing the body size limit.
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// queryErrCode maps an operator error to an HTTP status.
func queryErrCode(err error) int {
	switch {
	case errors.Is(err, cypher.ErrTimeout):
		return http.StatusGatewayTimeout
	case errors.Is(err, cypher.ErrRowBudget):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusBadRequest
	}
}

// --- endpoint handlers ---

func (s *Server) handleSegment(st *Store, w http.ResponseWriter, r *http.Request) {
	var req SegmentRequest
	if !decode(w, r, &req) {
		return
	}
	format := strings.ToLower(req.Format)
	if format != "" && format != FormatJSON && format != FormatDOT {
		// Reject before the (potentially expensive) solve runs.
		writeErr(w, http.StatusBadRequest, "unknown format %q (want json, dot)", req.Format)
		return
	}
	q, opts, err := req.toQuery()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	seg, cached, err := st.Segment(q, opts, !req.NoCache)
	if err != nil {
		writeErr(w, queryErrCode(err), "segment: %v", err)
		return
	}
	var resp *SegmentResponse
	var dotErr error
	st.View(func(p *prov.Graph) {
		if format == FormatDOT {
			var b strings.Builder
			dotErr = seg.WriteDOT(&b)
			resp = &SegmentResponse{
				NumVertices: seg.NumVertices(),
				NumEdges:    seg.NumEdges(),
				Cached:      cached,
				DOT:         b.String(),
			}
			return
		}
		resp = encodeSegment(p, seg, cached)
	})
	if dotErr != nil {
		writeErr(w, http.StatusInternalServerError, "%v", dotErr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleAdjust serves the paper's interactive adjust step: the base PgSeg
// query is resolved through the segment cache, then the requested
// AdjustExclude / AdjustExpand refinements derive the adjusted segment
// without re-running the solver.
func (s *Server) handleAdjust(st *Store, w http.ResponseWriter, r *http.Request) {
	var req AdjustRequest
	if !decode(w, r, &req) {
		return
	}
	format := strings.ToLower(req.Format)
	if format != "" && format != FormatJSON && format != FormatDOT {
		writeErr(w, http.StatusBadRequest, "unknown format %q (want json, dot)", req.Format)
		return
	}
	q, opts, err := req.Segment.toQuery()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	rels, err := parseRels(req.ExcludeRels)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	kinds, err := parseKinds(req.ExcludeKinds)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	excl := core.Boundary{ExcludeRels: rels}
	if len(kinds) > 0 {
		excl.VertexFilters = []core.VertexFilter{func(p *prov.Graph, v graph.VertexID) bool {
			for _, k := range kinds {
				if p.IsKind(v, k) {
					return false
				}
			}
			return true
		}}
	}
	exps := make([]core.Expansion, 0, len(req.Expansions))
	for _, ex := range req.Expansions {
		exps = append(exps, core.Expansion{Within: toVertexIDs(ex.Within), K: ex.K})
	}
	if len(rels) == 0 && len(kinds) == 0 && len(exps) == 0 {
		writeErr(w, http.StatusBadRequest, "adjust: needs exclude_rels, exclude_kinds or expansions")
		return
	}
	seg, cached, err := st.Adjust(q, opts, excl, exps)
	if err != nil {
		writeErr(w, queryErrCode(err), "adjust: %v", err)
		return
	}
	var resp *SegmentResponse
	var dotErr error
	st.View(func(p *prov.Graph) {
		if format == FormatDOT {
			var b strings.Builder
			dotErr = seg.WriteDOT(&b)
			resp = &SegmentResponse{
				NumVertices: seg.NumVertices(),
				NumEdges:    seg.NumEdges(),
				Cached:      cached,
				DOT:         b.String(),
			}
			return
		}
		resp = encodeSegment(p, seg, cached)
	})
	if dotErr != nil {
		writeErr(w, http.StatusInternalServerError, "%v", dotErr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSummarize(st *Store, w http.ResponseWriter, r *http.Request) {
	var req SummarizeRequest
	if !decode(w, r, &req) {
		return
	}
	if len(req.Segments) == 0 {
		writeErr(w, http.StatusBadRequest, "summarize: needs at least one segment spec")
		return
	}
	format := strings.ToLower(req.Format)
	if format != "" && format != FormatJSON && format != FormatDOT {
		// Reject before the (potentially expensive) solves run.
		writeErr(w, http.StatusBadRequest, "unknown format %q (want json, dot)", req.Format)
		return
	}
	queries := make([]core.Query, 0, len(req.Segments))
	for i, spec := range req.Segments {
		rels, err := parseRels(spec.ExcludeRels)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "segment %d: %v", i, err)
			return
		}
		queries = append(queries, core.Query{
			Src:      toVertexIDs(spec.Src),
			Dst:      toVertexIDs(spec.Dst),
			Boundary: core.Boundary{ExcludeRels: rels},
		})
	}
	sumOpts := core.SumOptions{
		TypeRadius: req.TypeRadius,
		K: core.Aggregation{
			Entity:   req.AggEntity,
			Activity: req.AggActivity,
			Agent:    req.AggAgent,
		},
	}
	psg, err := st.Summarize(queries, core.Options{}, sumOpts)
	if err != nil {
		writeErr(w, queryErrCode(err), "summarize: %v", err)
		return
	}
	if format == FormatDOT {
		var b strings.Builder
		if err := psg.WriteDOT(&b); err != nil {
			writeErr(w, http.StatusInternalServerError, "%v", err)
			return
		}
		resp := encodePsg(psg)
		resp.Nodes, resp.Edges = nil, nil
		resp.DOT = b.String()
		writeJSON(w, http.StatusOK, resp)
		return
	}
	writeJSON(w, http.StatusOK, encodePsg(psg))
}

func (s *Server) handleQuery(st *Store, w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !decode(w, r, &req) {
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		writeErr(w, http.StatusBadRequest, "query: empty query text")
		return
	}
	timeout := defaultCypherTimeout
	if req.TimeoutMillis > 0 {
		timeout = time.Duration(req.TimeoutMillis) * time.Millisecond
		if timeout > maxCypherTimeout {
			timeout = maxCypherTimeout
		}
	}
	maxRows := defaultCypherMaxRows
	if req.MaxRows > 0 && req.MaxRows < maxRows {
		maxRows = req.MaxRows
	}
	opts := cypher.Options{Timeout: timeout, MaxRows: maxRows, MaxPathLen: req.MaxPathLen}
	res, err := st.Cypher(req.Query, opts)
	if err != nil {
		writeErr(w, queryErrCode(err), "query: %v", err)
		return
	}
	var resp *QueryResponse
	st.View(func(p *prov.Graph) { resp = encodeResult(p, res) })
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleIngest(st *Store, w http.ResponseWriter, r *http.Request) {
	if st.Follower() {
		redirectToLeader(st.LeaderURL(), w, r)
		return
	}
	var req IngestRequest
	if !decode(w, r, &req) {
		return
	}
	if len(req.Ops) == 0 {
		writeErr(w, http.StatusBadRequest, "ingest: empty op batch")
		return
	}
	resp := IngestResponse{Results: make([]IngestResult, 0, len(req.Ops))}
	epoch, err := st.updateEpoch(r.Context(), func(rec *prov.Recorder) error {
		// Validate the whole batch against the pre-batch graph first so the
		// batch applies atomically: either every op commits or none does.
		// Input ids must reference vertices that existed before the batch
		// (chain across batches using the returned ids).
		for i, op := range req.Ops {
			if err := validateOp(rec.P, op); err != nil {
				return fmt.Errorf("op %d: %w", i, err)
			}
		}
		for _, op := range req.Ops {
			switch op.Op {
			case "agent":
				resp.Results = append(resp.Results, IngestResult{ID: uint32(rec.Agent(op.Agent))})
			case "import":
				resp.Results = append(resp.Results, IngestResult{ID: uint32(rec.Import(op.Agent, op.Artifact, op.URL))})
			case "snapshot":
				resp.Results = append(resp.Results, IngestResult{ID: uint32(rec.Snapshot(op.Artifact))})
			case "run":
				a, outs := rec.Run(op.Agent, op.Command, toVertexIDs(op.Inputs), op.Outputs)
				res := IngestResult{ID: uint32(a)}
				for _, o := range outs {
					res.Outputs = append(res.Outputs, uint32(o))
				}
				resp.Results = append(resp.Results, res)
			}
		}
		// Snapshot the totals while still holding the write lock so the
		// reply reflects exactly this batch's commit point, not later
		// concurrent batches.
		resp.Vertices = rec.P.NumVertices()
		resp.Edges = rec.P.NumEdges()
		return nil
	})
	if err != nil {
		switch {
		case errors.Is(err, ErrBackpressure):
			// The batch was rejected before mutating anything; the committer
			// drains the queue continuously, so a short fixed hint suffices.
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusTooManyRequests, "ingest: %v", err)
		case errors.Is(err, ErrStoreClosed):
			writeErr(w, http.StatusServiceUnavailable, "ingest: %v", err)
		default:
			writeErr(w, http.StatusBadRequest, "ingest: %v", err)
		}
		return
	}
	// The committed epoch doubles as a read-your-writes token: pass it back
	// as X-Min-Epoch on a follower read and the reply is guaranteed to
	// reflect this batch.
	resp.Epoch = epoch
	writeJSON(w, http.StatusOK, &resp)
}

// redirectToLeader answers a write aimed at a follower store: 307 with a
// Location on the leader (same path, so a client that follows redirects
// just works) plus the X-Repl-Leader header for clients that re-aim
// themselves.
func redirectToLeader(leader string, w http.ResponseWriter, r *http.Request) {
	w.Header().Set(repl.HeaderLeader, leader)
	w.Header().Set("Location", leader+r.URL.Path)
	writeErr(w, http.StatusTemporaryRedirect,
		"store is a read-only follower; write to the leader at %s", leader)
}

// validateOp checks one ingest op against the current graph; it must reject
// anything that would make the recorder panic (bad input kinds, out-of-range
// ids).
func validateOp(p *prov.Graph, op IngestOp) error {
	switch op.Op {
	case "agent":
		if op.Agent == "" {
			return errors.New(`"agent" op needs a non-empty agent name`)
		}
	case "import":
		if op.Agent == "" || op.Artifact == "" {
			return errors.New(`"import" op needs agent and artifact`)
		}
	case "snapshot":
		if op.Artifact == "" {
			return errors.New(`"snapshot" op needs an artifact name`)
		}
	case "run":
		if op.Agent == "" || op.Command == "" {
			return errors.New(`"run" op needs agent and command`)
		}
		if len(op.Outputs) == 0 {
			return errors.New(`"run" op needs at least one output artifact`)
		}
		for _, out := range op.Outputs {
			if out == "" {
				// An empty artifact name would create a nameless snapshot
				// whose version chain is lost on reload (WrapRecorder keys
				// versions by filename).
				return errors.New(`"run" op output artifact names must be non-empty`)
			}
		}
		for _, in := range op.Inputs {
			if int(in) >= p.NumVertices() {
				return fmt.Errorf("input vertex %d out of range", in)
			}
			if !p.IsKind(graph.VertexID(in), prov.KindEntity) {
				return fmt.Errorf("input vertex %d is not an entity", in)
			}
		}
	default:
		return fmt.Errorf("unknown op %q (want agent, import, snapshot, run)", op.Op)
	}
	return nil
}

func (s *Server) handleStats(st *Store, w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, st.Stats())
}

// wantsPrometheus reports whether a /metrics request asked for the text
// exposition format: ?format=prometheus wins, else an Accept header naming
// text/plain or an openmetrics type. The JSON panel stays the default so
// existing consumers (and curl without headers) see what they always did.
func wantsPrometheus(r *http.Request) bool {
	switch strings.ToLower(r.URL.Query().Get("format")) {
	case "prometheus", "prom", "text":
		return true
	case "json":
		return false
	}
	accept := strings.ToLower(r.Header.Get("Accept"))
	return strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics")
}

func (s *Server) handleMetrics(st *Store, w http.ResponseWriter, r *http.Request) {
	if wantsPrometheus(r) {
		// The unprefixed endpoint is the scrape target: one exposition over
		// every store. The /stores/{name}/metrics spelling scopes to its
		// store.
		stores := []*Store{st}
		if r.PathValue("store") == "" {
			stores = s.reg.List()
		}
		s.writePrometheus(w, stores)
		return
	}
	ep := st.Epoch()
	resp := MetricsResponse{
		Store:        st.Name(),
		Epoch:        ep.N,
		Vertices:     ep.Vertices,
		Edges:        ep.Edges,
		UptimeMillis: st.Uptime().Milliseconds(),
		Cache:        st.CacheStats(),
		Freeze:       st.FreezeStatsSnapshot(),
		WAL:          st.DurabilityStatsSnapshot(),
		Requests:     st.RequestCounts(),
		Endpoints:    st.EndpointStatsSnapshot(),
		Stages:       st.StageStats(),
		QoS:          st.QoSStatsSnapshot(),
		Repl:         st.ReplStatsSnapshot(),
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleWALStream serves GET /stores/{name}/wal?from=N: the replication
// stream — checkpoint (if the ring no longer covers from+1) followed by the
// live log tail, framed exactly as on-disk WAL records. Works on any store,
// including followers (chained replication reads the replicated ring).
func (s *Server) handleWALStream(st *Store, w http.ResponseWriter, r *http.Request) {
	var from uint64
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad from %q: %v", v, err)
			return
		}
		from = n
	}
	repl.ServeStream(w, r, repl.ServeOptions{
		From:          from,
		Hub:           st.EnableRepl(),
		Snapshot:      st.SnapshotBytes,
		ForceSnapshot: from == 0 && st.nonEmptyBase.Load(),
	})
}

// handlePromote serves POST /stores/{name}/promote: seal the follower's
// applier and open the write path. Idempotence is deliberate one-way —
// promoting a store that is already a leader is a 409, so an operator
// script that raced another promotion finds out.
func (s *Server) handlePromote(st *Store, w http.ResponseWriter, r *http.Request) {
	if err := st.Promote(); err != nil {
		writeErr(w, http.StatusConflict, "promote: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, PromoteResponse{Store: st.Name(), Epoch: st.Epoch().N})
}

// handleSlow serves GET /debug/slow: the slow-query ring, newest first,
// each entry carrying its request id, query shape, status and — for ingest
// — the commit-pipeline stage breakdown.
func (s *Server) handleSlow(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, SlowResponse{
		ThresholdMillis: s.slowThresh.Milliseconds(),
		Total:           s.slow.Total(),
		Entries:         s.slow.Snapshot(),
	})
}

func (s *Server) handleHealthz(st *Store, w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleStoreCreate serves PUT /stores/{name}: open (or return) the named
// store, optionally (re)configuring its admission policy from the request
// body. Creation is idempotent — a retried PUT reports created=false — and
// everything is validated before the data directory is touched: a hostile
// name or a malformed body gets a uniform JSON 400 with no store created.
func (s *Server) handleStoreCreate(w http.ResponseWriter, r *http.Request) {
	if leader := s.reg.FollowerOf(); leader != "" {
		// Follower registries mirror the leader's store set via discovery;
		// creating here would fork the topology.
		redirectToLeader(leader, w, r)
		return
	}
	name := r.PathValue("store")
	if !ValidStoreName(name) {
		writeErr(w, http.StatusBadRequest, "invalid store name %q (want 1-%d chars of [a-zA-Z0-9_-])", name, maxStoreName)
		return
	}
	var req StoreCreateRequest
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(bytes.TrimSpace(body)) > 0 {
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
		if req.QoS != nil {
			if err := req.QoS.Validate(); err != nil {
				writeErr(w, http.StatusBadRequest, "%v", err)
				return
			}
		}
	}
	st, created, err := s.reg.Create(name)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "create store: %v", err)
		return
	}
	if req.QoS != nil {
		if err := st.SetQoS(*req.QoS); err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	code := http.StatusOK
	if created {
		code = http.StatusCreated
	}
	writeJSON(w, code, StoreCreateResponse{
		Store: name, Created: created, Epoch: st.Epoch().N,
		QoS: st.QoSConfigSnapshot(),
	})
}

// handleStoreList serves GET /stores: every store with its headline state.
func (s *Server) handleStoreList(w http.ResponseWriter, r *http.Request) {
	stores := s.reg.List()
	resp := StoreListResponse{Stores: make([]StoreInfo, 0, len(stores))}
	for _, st := range stores {
		ep := st.Epoch()
		resp.Stores = append(resp.Stores, StoreInfo{
			Name:     st.Name(),
			Epoch:    ep.N,
			Vertices: ep.Vertices,
			Edges:    ep.Edges,
			Durable:  st.Durable(),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleExport(st *Store, w http.ResponseWriter, r *http.Request) {
	format := r.URL.Query().Get("format")
	var contentType string
	var export func(io.Writer) error
	switch strings.ToLower(format) {
	case "", "prov-json":
		contentType, export = "application/json", st.ExportJSON
	case "dot":
		contentType, export = "text/vnd.graphviz", st.ExportDOT
	case "pg":
		contentType, export = "application/octet-stream", st.Save
	default:
		writeErr(w, http.StatusBadRequest, "unknown format %q (want prov-json, dot, pg)", format)
		return
	}
	w.Header().Set("Content-Type", contentType)
	cw := &countingWriter{w: w}
	if err := export(cw); err != nil && cw.n == 0 {
		// Nothing streamed yet, so the status line is still ours to set.
		// After the first byte (e.g. the client hung up mid-stream) an
		// error status can no longer be delivered; just drop the request.
		writeErr(w, http.StatusInternalServerError, "export: %v", err)
	}
}

// countingWriter tracks whether any bytes reached the response.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
