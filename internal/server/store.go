// Package server implements provd, the long-lived HTTP query service over a
// provenance graph (the serving layer of the paper's provenance data
// manager). It has three layers:
//
//  1. Store — epoch-snapshot concurrency over the PROV graph and its
//     lifecycle recorder. Every read (segmentation, summarization, Cypher,
//     stats, exports) runs lock-free against an immutable frozen snapshot
//     (prov.Freeze) reached through one atomic pointer load; ingest
//     serializes behind a write mutex and publishes a new snapshot on
//     commit. Readers never block on writers.
//  2. Wire codecs (codec.go) — JSON request/response types for every
//     endpoint, plus DOT and PROV-JSON output formats reusing the existing
//     renderers.
//  3. Result cache (cache.go) — an LRU over canonicalized PgSeg queries
//     whose entries are tagged with the epoch they were solved at and
//     revalidated incrementally against each ingest delta.
package server

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/cypher"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/prov"
	"repro/internal/repl"
	"repro/internal/wal"
)

// Epoch is one immutable snapshot of the graph, published atomically on
// every committed ingest batch. N counts committed batches; P is the frozen
// CSR-indexed provenance graph; Vertices/Edges are the snapshot watermark
// (the graph is append-only, so the watermark fully identifies the state).
type Epoch struct {
	N        uint64
	P        *prov.Graph
	Vertices int
	Edges    int
}

// Store is the graph wrapper the HTTP handlers talk to.
//
// The underlying property graph is append-only and single-writer-unsafe.
// The store serializes mutations behind writeMu; the read path takes no
// lock at all — it loads the current Epoch pointer and queries the frozen
// snapshot, which shares no mutable state with the live graph. A reader
// that raced with an ingest simply observes the previous epoch, which is a
// consistent point-in-time view.
type Store struct {
	// name is the store's registry name ("default" for the unprefixed
	// legacy endpoints; empty for stores built directly via NewStore).
	name string

	// writeMu serializes ingest batches, delta encoding, snapshot builds
	// and (without group commit) publication. Readers never take it.
	writeMu sync.Mutex
	rec     *prov.Recorder
	// closed (guarded by writeMu) marks a store past the point of admitting
	// writes: Close sets it before stopping the committer, so no batch can
	// be staged onto a queue nothing will ever drain.
	closed bool

	snap atomic.Pointer[Epoch]

	// tail is the newest staged epoch, guarded by writeMu. Without group
	// commit it always equals the published snapshot; under group commit it
	// runs ahead of snap by the batches sitting in the commit queue (built
	// and logged-or-queued, not yet durable, therefore not yet visible).
	tail *Epoch

	cache *segCache

	// requests tracks HTTP requests routed to this store, per endpoint:
	// totals (bumped at routing time, so /metrics counts itself), the
	// status-class split and the latency histogram (both recorded on
	// completion). All atomics — the observability layer adds no locks.
	requests map[string]*endpointMetrics

	// Commit-pipeline stage histograms: queue wait (staged → committer
	// dequeue, group commit only), WAL append write, fsync, and publication
	// (cache revalidation + epoch pointer swap).
	stageEnqueue obs.Histogram
	stageAppend  obs.Histogram
	stageFsync   obs.Histogram
	stagePublish obs.Histogram

	// Group-commit queue-wait counters (the JSON metrics panel; the
	// histogram above carries the distribution).
	queueWaitLastNs  atomic.Int64
	queueWaitMaxNs   atomic.Int64
	queueWaitTotalNs atomic.Int64

	// logger, when non-nil, receives a Debug-level structured line per
	// published commit carrying the staging request's id.
	logger *slog.Logger

	// Freeze instrumentation: how commits build their snapshots (the
	// incremental CSR extension vs the full rebuild fallback) and what the
	// freeze step costs, surfaced via /metrics.
	freezeIncr    atomic.Uint64
	freezeFull    atomic.Uint64
	freezeTotalNs atomic.Int64
	freezeLastNs  atomic.Int64
	freezeMaxNs   atomic.Int64

	// Durability (nil/zero on memory-only stores, see OpenDurable). Each
	// commit appends its delta to the write-ahead log before the epoch
	// pointer swap publishes it; a background checkpointer bounds the log.
	wal             *wal.Manager
	walFail         atomic.Pointer[walFailure] // sticky append failure: the store refuses writes
	checkpointEvery int
	sinceCkpt       atomic.Int64
	ckptCh          chan struct{}
	stopCh          chan struct{}
	ckptDone        chan struct{}
	ckptFails       atomic.Uint64
	closeOnce       sync.Once

	// Group commit (durable stores with GroupCommit enabled): writers stage
	// built epochs into commitCh and block on their request's done channel;
	// the committer goroutine drains the queue, appends the whole group with
	// one fsync, then publishes the member epochs in order.
	groupCommit bool
	commitCh    chan *commitReq
	commitStop  chan struct{}
	commitDone  chan struct{}
	// pubCh wakes a drain waiter (checkpointNow under writeMu) after each
	// publish; buffered so the committer never blocks on it.
	pubCh chan struct{}
	// resolved is the newest epoch the committer has finished with — either
	// published (durable and visible) or failed (its writer got an error, so
	// nothing was acknowledged). checkpointNow may only rotate the log once
	// resolved catches the staged tail: before that, the committer may still
	// be appending records a rotation-plus-cleanup would delete.
	resolved atomic.Uint64
	// commitHold, when non-nil (tests only), stalls the committer between
	// receiving a group's first request and draining the rest of the queue,
	// making multi-writer groups deterministic.
	commitHold chan struct{}

	groups       atomic.Uint64 // committed groups
	groupRecords atomic.Uint64 // records committed through groups
	groupLast    atomic.Int64  // size of the most recent group
	groupMax     atomic.Int64  // largest group so far

	// coal, when non-nil, is the registry-wide fsync coalescer: the
	// committer appends its group unsynced and borrows a shared
	// device-level barrier instead of issuing its own fsync, so N stores'
	// committers pay ~one flush per sync window rather than N.
	coal      *wal.Coalescer
	coalesced atomic.Uint64 // groups retired through a shared sync window
	// Coalesced sync/publish pipeline: the committer hands each appended
	// group to syncLoop via syncQ and goes straight back to draining, so
	// group formation overlaps the device barrier instead of lock-stepping
	// behind it. appendSeq numbers appended groups; syncedSeq is the newest
	// one a barrier has covered — a barrier makes every byte appended before
	// it durable, so one SyncWait retires every group staged behind the job
	// that triggered it.
	syncQ     chan *syncJob
	syncDone  chan struct{}
	appendSeq atomic.Uint64
	syncedSeq atomic.Uint64

	// Replication (see follower.go and internal/repl). hub, once enabled,
	// receives every published (epoch, delta) pair and is what wal-stream
	// requests tail; nil until the first follower connects (EnableRepl) so
	// stores nobody replicates pay nothing. epochWait is the
	// read-your-writes wake channel: publish closes and replaces it, and
	// WaitEpoch blocks on it until the snapshot reaches a client's token.
	hub       atomic.Pointer[repl.Hub]
	epochWait atomic.Pointer[chan struct{}]
	// nonEmptyBase records that the store's epoch-0 graph already held
	// vertices (generated, loaded, or recovered from a checkpoint): that
	// state exists in no delta, so a from=0 wal stream must open with a
	// checkpoint frame even while the hub ring still covers epoch 1.
	nonEmptyBase atomic.Bool

	// Follower state (newFollowerStore): follower marks the store as
	// applying a leader's stream — writes are refused and /ingest
	// redirects — until Promote clears it. The applier goroutine's
	// lifecycle and the repl metrics counters live here; leaderURL is set
	// once at construction and never cleared (a promoted store keeps
	// reporting where it replicated from).
	follower       atomic.Bool
	leaderURL      string
	applierCancel  context.CancelFunc
	applierDone    chan struct{}
	replLeaderEp   atomic.Uint64
	replLagNs      atomic.Int64
	replLagHist    obs.Histogram
	replReconnects atomic.Uint64

	// Admission control (see qos.go): the active limiter (nil = no limits)
	// and the admit/reject counters, kept on the store so config swaps
	// don't reset them.
	qos              atomic.Pointer[qosLimiter]
	qosAdmitted      atomic.Uint64
	qosRejectedRate  atomic.Uint64
	qosRejectedConc  atomic.Uint64
	qosRejectedQueue atomic.Uint64

	started time.Time
}

// walFailure is the sticky first write-ahead-log error; once set, the
// in-memory graph and the log can no longer be reconciled and the store
// refuses writes.
type walFailure struct{ err error }

// commitReq is one staged batch traveling from Update to the committer:
// the built (unpublished) epoch, its predecessor, and the encoded delta,
// plus the request-tracing context it carries through the pipeline — when
// it was staged (queue-wait timing), the originating request id, and the
// request's stage record for the committer to stamp timings into.
type commitReq struct {
	ep, old  *Epoch
	payload  []byte
	done     chan error
	stagedAt time.Time
	reqID    string
	stages   *obs.Stages
}

// syncJob is one appended-but-unsynced group traveling from the committer
// to syncLoop: the group to publish once a device barrier covers it, its
// append sequence number, and the append's write cost for stage records.
type syncJob struct {
	group      []*commitReq
	seq        uint64
	writeNanos int64
}

// endpointNames are the per-store request counters surfaced in /metrics.
var endpointNames = []string{
	"segment", "summarize", "query", "adjust", "ingest",
	"stats", "metrics", "healthz", "export", "wal", "promote",
}

// Status-class indices of endpointMetrics.classes. Informational and
// redirect statuses count as success — the split exists to make error
// rates observable.
const (
	classOK  = 0 // < 400
	class4xx = 1
	class5xx = 2
)

// endpointMetrics is one endpoint's per-store counters: total requests
// (routed), completions by status class, and the completion latency
// histogram.
type endpointMetrics struct {
	total   atomic.Uint64
	classes [3]atomic.Uint64
	lat     obs.Histogram
}

// statusClass maps an HTTP status to its counter index.
func statusClass(status int) int {
	switch {
	case status >= 500:
		return class5xx
	case status >= 400:
		return class4xx
	default:
		return classOK
	}
}

// observeFreeze records one snapshot build on the commit path.
func (s *Store) observeFreeze(incremental bool, d time.Duration) {
	if incremental {
		s.freezeIncr.Add(1)
	} else {
		s.freezeFull.Add(1)
	}
	ns := d.Nanoseconds()
	s.freezeTotalNs.Add(ns)
	s.freezeLastNs.Store(ns)
	for {
		max := s.freezeMaxNs.Load()
		if ns <= max || s.freezeMaxNs.CompareAndSwap(max, ns) {
			return
		}
	}
}

// FreezeStats is the /metrics freeze panel: counts of incremental vs full
// snapshot builds on the commit path, and freeze-duration stats.
type FreezeStats struct {
	Incremental uint64 `json:"incremental"`
	Full        uint64 `json:"full"`
	LastNanos   int64  `json:"last_ns"`
	MaxNanos    int64  `json:"max_ns"`
	TotalNanos  int64  `json:"total_ns"`
}

// FreezeStatsSnapshot returns the current freeze counters.
func (s *Store) FreezeStatsSnapshot() FreezeStats {
	return FreezeStats{
		Incremental: s.freezeIncr.Load(),
		Full:        s.freezeFull.Load(),
		LastNanos:   s.freezeLastNs.Load(),
		MaxNanos:    s.freezeMaxNs.Load(),
		TotalNanos:  s.freezeTotalNs.Load(),
	}
}

// NewStore wraps an existing PROV graph in a memory-only store. cacheCap
// bounds the segment cache (entries; <=0 selects the default). For a store
// that survives restarts see OpenDurable.
func NewStore(p *prov.Graph, cacheCap int) *Store {
	return newStore(p, prov.WrapRecorder(p), cacheCap, 0)
}

// newStore builds the store around an existing recorder, publishing the
// initial snapshot at the given epoch number (non-zero when recovery
// resumes a pre-crash epoch sequence).
func newStore(p *prov.Graph, rec *prov.Recorder, cacheCap int, epoch uint64) *Store {
	s := &Store{
		rec:      rec,
		cache:    newSegCache(cacheCap),
		requests: make(map[string]*endpointMetrics, len(endpointNames)),
		started:  time.Now(),
	}
	for _, name := range endpointNames {
		s.requests[name] = &endpointMetrics{}
	}
	ch := make(chan struct{})
	s.epochWait.Store(&ch)
	start := time.Now()
	fz := p.Freeze()
	s.observeFreeze(false, time.Since(start))
	ep := &Epoch{N: epoch, P: fz, Vertices: fz.NumVertices(), Edges: fz.NumEdges()}
	if ep.Vertices > 0 {
		// A non-empty initial graph (loaded, generated, or recovered from a
		// checkpoint) is state no WAL delta reproduces: from=0 replication
		// streams must open with a checkpoint frame.
		s.nonEmptyBase.Store(true)
	}
	s.snap.Store(ep)
	s.tail = ep
	return s
}

// Name returns the store's registry name ("" for bare NewStore stores).
func (s *Store) Name() string { return s.name }

// countRequest bumps the store's per-endpoint request total. Called at
// routing time (before the handler runs), so a /metrics response includes
// the request that produced it. Unknown endpoint names are ignored (the set
// is fixed at construction).
func (s *Store) countRequest(endpoint string) {
	if m, ok := s.requests[endpoint]; ok {
		m.total.Add(1)
	}
}

// observeRequest records a completed request: its status class and latency.
// Totals are bumped at routing time instead, so between the two a request
// is visibly in flight (total exceeds the class sum by the in-flight count).
func (s *Store) observeRequest(endpoint string, status int, d time.Duration) {
	m, ok := s.requests[endpoint]
	if !ok {
		return
	}
	m.classes[statusClass(status)].Add(1)
	m.lat.Observe(d)
}

// RequestCounts snapshots the per-endpoint request totals.
func (s *Store) RequestCounts() map[string]uint64 {
	out := make(map[string]uint64, len(s.requests))
	for name, m := range s.requests {
		out[name] = m.total.Load()
	}
	return out
}

// EndpointStats is one endpoint's /metrics panel: the routed total, the
// status-class split of completions, and the completion-latency digest.
type EndpointStats struct {
	Total     uint64             `json:"total"`
	OK        uint64             `json:"2xx"`
	ClientErr uint64             `json:"4xx"`
	ServerErr uint64             `json:"5xx"`
	Latency   obs.LatencySummary `json:"latency"`
}

// EndpointStatsSnapshot snapshots every endpoint's counters.
func (s *Store) EndpointStatsSnapshot() map[string]EndpointStats {
	out := make(map[string]EndpointStats, len(s.requests))
	for name, m := range s.requests {
		out[name] = EndpointStats{
			Total:     m.total.Load(),
			OK:        m.classes[classOK].Load(),
			ClientErr: m.classes[class4xx].Load(),
			ServerErr: m.classes[class5xx].Load(),
			Latency:   m.lat.Summary(),
		}
	}
	return out
}

// Commit-pipeline stage names, in pipeline order. StageStats and the
// Prometheus exposition key their series by these.
var stageNames = []string{"enqueue", "append", "fsync", "publish"}

// stageHistogram maps a stage name to its histogram.
func (s *Store) stageHistogram(stage string) *obs.Histogram {
	switch stage {
	case "enqueue":
		return &s.stageEnqueue
	case "append":
		return &s.stageAppend
	case "fsync":
		return &s.stageFsync
	case "publish":
		return &s.stagePublish
	}
	return nil
}

// StageStats digests the commit-pipeline stage histograms, keyed by stage
// name (enqueue, append, fsync, publish).
func (s *Store) StageStats() map[string]obs.LatencySummary {
	out := make(map[string]obs.LatencySummary, len(stageNames))
	for _, name := range stageNames {
		out[name] = s.stageHistogram(name).Summary()
	}
	return out
}

// RequestLatency returns the endpoint's latency histogram (nil for unknown
// endpoints); the Prometheus exposition reads buckets through it.
func (s *Store) RequestLatency(endpoint string) *obs.Histogram {
	if m, ok := s.requests[endpoint]; ok {
		return &m.lat
	}
	return nil
}

// Epoch returns the current snapshot. The result is immutable and safe to
// query for any length of time.
func (s *Store) Epoch() *Epoch { return s.snap.Load() }

// View runs fn against the current snapshot. Kept for call-site symmetry
// with the old locked read path; fn may retain p — snapshots are immutable.
func (s *Store) View(fn func(p *prov.Graph)) {
	fn(s.snap.Load().P)
}

// Update runs fn under the exclusive write lock; if fn succeeds, a new
// frozen snapshot is built and published, and the segment cache is
// revalidated against the ingest delta (entries whose support the delta
// touches are purged; the rest carry over to the new epoch). The snapshot
// is built by extending the previous epoch's CSR index with just the
// delta (prov.ExtendFrozen), so commit cost tracks the batch size, not
// the total graph size; a full rebuild happens only when the previous
// epoch is unusable as a base (see graph.ExtendFrozen).
// On durable stores the committed batch is additionally encoded as a graph
// delta and made durable in the write-ahead log — fsynced per the configured
// policy — strictly before the snapshot swap publishes the epoch, so no
// client ever observes a state a crash could lose (under fsync=always).
// With group commit (the default, see DurableOptions.NoGroupCommit) the
// durability step is delegated: Update stages the encoded delta and the
// built snapshot on the commit queue, releases the write mutex, and blocks
// until the committer goroutine has appended its whole group under one
// fsync and published the member epochs in order — concurrent writers share
// the fsync instead of paying one each, and the write mutex is free for the
// next writer while this batch waits on disk. A WAL append failure poisons
// the store: the batch stays unpublished and all further writes are
// refused, because the in-memory graph and the log can no longer be
// reconciled.
func (s *Store) Update(fn func(rec *prov.Recorder) error) error {
	return s.UpdateCtx(context.Background(), fn)
}

// UpdateCtx is Update carrying the request context through the commit
// pipeline: the context's request id (obs.RequestID) is attached to the
// committer's structured logs, and its stage record (obs.StagesFrom) is
// stamped with per-stage timings — encode, freeze, queue wait, append,
// fsync, publish — as the batch flows through. The context does not cancel
// the commit: once fn has mutated the graph the batch must reach the log,
// so ctx is trace metadata, not a deadline.
func (s *Store) UpdateCtx(ctx context.Context, fn func(rec *prov.Recorder) error) error {
	_, err := s.updateEpoch(ctx, fn)
	return err
}

// updateEpoch is the UpdateCtx body, additionally returning the committed
// (and, for acknowledged batches, durable and published) epoch number —
// the read-your-writes token ingest responses hand back to clients.
func (s *Store) updateEpoch(ctx context.Context, fn func(rec *prov.Recorder) error) (uint64, error) {
	stages := obs.StagesFrom(ctx)
	s.writeMu.Lock()
	// Deferred so a panic in fn (or in delta encoding / the freeze) releases
	// the write mutex instead of wedging the store; the group-commit path
	// clears the flag when it hands off and unlocks early.
	locked := true
	defer func() {
		if locked {
			s.writeMu.Unlock()
		}
	}()
	if s.closed {
		return 0, fmt.Errorf("store: %w", ErrStoreClosed)
	}
	if s.follower.Load() {
		return 0, fmt.Errorf("store: %w (leader: %s)", ErrFollowerWrites, s.leaderURL)
	}
	if f := s.walFail.Load(); f != nil {
		return 0, fmt.Errorf("store: writes disabled after write-ahead log failure: %w", f.err)
	}
	// Backpressure: a commit queue at its configured cap rejects the batch
	// here — before fn mutates the graph — so the writer gets a clean 429
	// instead of parking under the write mutex behind a saturated committer.
	if s.groupCommit {
		if l := s.qos.Load(); l != nil && l.cfg.MaxQueue > 0 && len(s.commitCh) >= l.cfg.MaxQueue {
			s.qosRejectedQueue.Add(1)
			return 0, fmt.Errorf("store: %w (%d batches staged)", ErrBackpressure, len(s.commitCh))
		}
	}
	if err := fn(s.rec); err != nil {
		return 0, err
	}
	// The delta and the snapshot both build against the staged tail, not the
	// published snapshot: under group commit earlier batches may still be
	// waiting on their group fsync, and this batch extends them.
	old := s.tail
	var payload []byte
	if s.wal != nil || s.hub.Load() != nil {
		// The delta feeds the log, the replication hub, or both.
		start := time.Now()
		var buf bytes.Buffer
		if err := s.rec.P.PG().EncodeDelta(&buf, old.P.PG().Dict().Len(), old.Vertices, old.Edges); err != nil {
			// The graph mutated but nothing can be logged or replicated:
			// unreconcilable.
			s.walFail.CompareAndSwap(nil, &walFailure{err: err})
			return 0, fmt.Errorf("store: write-ahead log: %w", err)
		}
		payload = buf.Bytes()
		if stages != nil {
			stages.EncodeNanos = time.Since(start).Nanoseconds()
		}
	}
	start := time.Now()
	fz, incremental := s.rec.P.ExtendFrozen(old.P)
	freeze := time.Since(start)
	s.observeFreeze(incremental, freeze)
	if stages != nil {
		stages.FreezeNanos = freeze.Nanoseconds()
	}
	ep := &Epoch{N: old.N + 1, P: fz, Vertices: fz.NumVertices(), Edges: fz.NumEdges()}

	if s.wal != nil && s.groupCommit {
		// Group commit: stage the built epoch (still holding writeMu, so the
		// queue receives epochs in order) and wait off-lock for the committer
		// to make it durable and publish it.
		req := &commitReq{
			ep: ep, old: old, payload: payload, done: make(chan error, 1),
			stagedAt: time.Now(), reqID: obs.RequestID(ctx), stages: stages,
		}
		s.tail = ep
		s.commitCh <- req
		locked = false
		s.writeMu.Unlock()
		if err := <-req.done; err != nil {
			return 0, err
		}
		return ep.N, nil
	}

	if s.wal != nil {
		// Inline commit: append + fsync (per policy) this batch alone, before
		// the swap publishes it.
		tm, err := s.wal.AppendTimed(ep.N, payload)
		s.observeAppend(tm, stages)
		if err != nil {
			s.walFail.CompareAndSwap(nil, &walFailure{err: err})
			return 0, fmt.Errorf("store: write-ahead log: %w", err)
		}
	}
	s.tail = ep
	start = time.Now()
	s.publish(ep, old, payload)
	s.observePublish(time.Since(start), stages)
	s.logCommit(ctx, obs.RequestID(ctx), ep, 1)
	return ep.N, nil
}

// observeAppend records an append's write/fsync split into the stage
// histograms and, when the request carries one, its stage record.
func (s *Store) observeAppend(tm wal.AppendTimings, stages *obs.Stages) {
	s.stageAppend.Observe(time.Duration(tm.WriteNanos))
	if tm.Synced {
		s.stageFsync.Observe(time.Duration(tm.SyncNanos))
	}
	if stages != nil {
		stages.AppendNanos, stages.FsyncNanos = tm.WriteNanos, tm.SyncNanos
	}
}

// observePublish records one publication into the stage histograms and the
// request's stage record.
func (s *Store) observePublish(d time.Duration, stages *obs.Stages) {
	s.stagePublish.Observe(d)
	if stages != nil {
		stages.PublishNanos = d.Nanoseconds()
	}
}

// logCommit emits the per-commit structured log line (Debug level) tying the
// published epoch back to the request that staged it.
func (s *Store) logCommit(ctx context.Context, reqID string, ep *Epoch, group int) {
	if s.logger == nil {
		return
	}
	s.logger.LogAttrs(ctx, slog.LevelDebug, "commit published",
		slog.String("store", s.name),
		slog.Uint64("epoch", ep.N),
		slog.String("request_id", reqID),
		slog.Int("group_size", group),
		slog.Int("vertices", ep.Vertices),
		slog.Int("edges", ep.Edges),
	)
}

// publish makes a durable (or memory-only) epoch visible: the cache is
// revalidated against the delta, the snapshot pointer swaps, epoch waiters
// and a drain waiter are woken, the replication hub (when enabled) takes
// the delta, and the checkpointer is signaled per the cadence. Callers
// guarantee epochs are published in order — either under writeMu (inline
// paths) or from the single committer goroutine. payload is the epoch's
// encoded delta (nil only when nothing consumes deltas, or on a follower
// snapshot reset, which rebases the hub instead).
func (s *Store) publish(ep, old *Epoch, payload []byte) {
	s.cache.advance(ep, old)
	s.snap.Store(ep)
	// Wake read-your-writes waiters strictly after the snapshot swap: a
	// woken waiter re-reads the epoch and must see at least ep.
	ch := make(chan struct{})
	close(*s.epochWait.Swap(&ch))
	if h := s.hub.Load(); h != nil {
		if payload != nil {
			h.Publish(ep.N, payload, time.Now().UnixNano())
		} else {
			h.Rebase(ep.N)
		}
	}
	s.signalPub()
	if s.wal != nil {
		if n := s.sinceCkpt.Add(1); s.checkpointEvery > 0 && n >= int64(s.checkpointEvery) {
			select {
			case s.ckptCh <- struct{}{}:
			default: // checkpointer already signaled
			}
		}
	}
}

// signalPub drops a (non-blocking, buffered) wake token for a drain waiter.
func (s *Store) signalPub() {
	if s.pubCh != nil {
		select {
		case s.pubCh <- struct{}{}:
		default: // a wake token is already pending
		}
	}
}

// commitLoop is the group committer: it owns the order in which staged
// batches reach the log and the epoch pointer. One iteration commits one
// group — everything queued at wake-up time — with a single fsync.
func (s *Store) commitLoop() {
	defer close(s.commitDone)
	for {
		select {
		case req := <-s.commitCh:
			s.commitGroup(req)
		case <-s.commitStop:
			// Drain whatever is still queued (Close never races Update, so
			// nothing new can arrive), then exit.
			for {
				select {
				case req := <-s.commitCh:
					s.commitGroup(req)
				default:
					return
				}
			}
		}
	}
}

// commitGroup gathers the group led by first, appends it with one fsync and
// publishes the members in order. On an append failure every member fails,
// stays unpublished, and the store is poisoned.
func (s *Store) commitGroup(first *commitReq) {
	group := []*commitReq{first}
	if s.commitHold != nil {
		<-s.commitHold
	}
drain:
	for {
		select {
		case req := <-s.commitCh:
			group = append(group, req)
		default:
			break drain
		}
	}
	// Queue wait ends here for every member: the group is formed and the
	// committer owns it. Recorded per member — the group leader waited the
	// longest, stragglers that arrived during the drain barely at all.
	now := time.Now()
	for _, req := range group {
		wait := now.Sub(req.stagedAt)
		if wait < 0 {
			wait = 0
		}
		s.stageEnqueue.Observe(wait)
		s.observeQueueWait(wait.Nanoseconds())
		if req.stages != nil {
			req.stages.QueueWaitNanos = wait.Nanoseconds()
		}
	}
	if f := s.walFail.Load(); f != nil {
		s.failGroup(group, f.err)
		return
	}
	recs := make([]wal.Record, len(group))
	for i, req := range group {
		recs[i] = wal.Record{Epoch: req.ep.N, Payload: req.payload}
	}
	if s.coal != nil {
		// Coalesced path: write the group unsynced and hand it to syncLoop,
		// which parks in the shared device-level sync window and publishes
		// once the barrier covers these bytes. The committer goes straight
		// back to draining, so the next group forms while this one's barrier
		// is in flight — without the pipeline, one store could never have
		// more than a single group per window and the coalescer degenerated
		// to serialized near-empty windows.
		tm, err := s.wal.AppendBatchTimedNoSync(recs)
		s.stageAppend.Observe(time.Duration(tm.WriteNanos))
		if err != nil {
			for _, req := range group {
				if req.stages != nil {
					req.stages.AppendNanos = tm.WriteNanos
				}
			}
			s.walFail.CompareAndSwap(nil, &walFailure{err: err})
			s.failGroup(group, err)
			return
		}
		s.syncQ <- &syncJob{group: group, seq: s.appendSeq.Add(1), writeNanos: tm.WriteNanos}
		return
	}
	tm, err := s.wal.AppendBatchTimed(recs)
	// The append and fsync are group-level costs: record one histogram
	// sample each, but stamp every member's stage record (each request paid
	// the whole group latency in wall-clock terms).
	s.stageAppend.Observe(time.Duration(tm.WriteNanos))
	if tm.Synced {
		s.stageFsync.Observe(time.Duration(tm.SyncNanos))
	}
	for _, req := range group {
		if req.stages != nil {
			req.stages.AppendNanos, req.stages.FsyncNanos = tm.WriteNanos, tm.SyncNanos
		}
	}
	if err != nil {
		s.walFail.CompareAndSwap(nil, &walFailure{err: err})
		s.failGroup(group, err)
		return
	}
	s.retireGroup(group)
}

// syncLoop is the coalesced sync/publish stage: it takes appended groups
// in order, waits for a shared device barrier to cover them, and publishes.
// A barrier makes every byte appended before it durable, so when several
// groups queue up behind one in-flight window, the single SyncWait issued
// for the head job retires all of them — the store pays one barrier per
// pipeline cycle, not per group.
func (s *Store) syncLoop() {
	defer close(s.syncDone)
	var lastSyncNs int64
	for job := range s.syncQ {
		if f := s.walFail.Load(); f != nil {
			s.failGroup(job.group, f.err)
			continue
		}
		if job.seq > s.syncedSeq.Load() {
			// The prep hook samples the appended tail right before the
			// barrier fires: everything the committer appended while this
			// request waited for its window is covered too, so the groups
			// queued behind this job retire without a barrier of their own.
			var covered uint64
			start := time.Now()
			err := s.coal.SyncWaitPrep(s.wal, func() { covered = s.appendSeq.Load() })
			lastSyncNs = time.Since(start).Nanoseconds()
			if err != nil {
				s.walFail.CompareAndSwap(nil, &walFailure{err: err})
				s.failGroup(job.group, err)
				continue
			}
			s.syncedSeq.Store(covered)
			s.stageFsync.Observe(time.Duration(lastSyncNs))
		}
		// Piggybacked jobs are stamped with the barrier wait that covered
		// them: in wall-clock terms that is what their writers paid.
		for _, req := range job.group {
			if req.stages != nil {
				req.stages.AppendNanos, req.stages.FsyncNanos = job.writeNanos, lastSyncNs
			}
		}
		s.coalesced.Add(1)
		s.retireGroup(job.group)
	}
}

// retireGroup counts one durably committed group and publishes its members
// in order. Called from the committer (private-fsync path) or from
// syncLoop (coalesced path) — never both for one store, so publishes stay
// single-threaded.
func (s *Store) retireGroup(group []*commitReq) {
	s.groups.Add(1)
	s.groupRecords.Add(uint64(len(group)))
	s.groupLast.Store(int64(len(group)))
	for {
		max := s.groupMax.Load()
		if int64(len(group)) <= max || s.groupMax.CompareAndSwap(max, int64(len(group))) {
			break
		}
	}
	for _, req := range group {
		start := time.Now()
		s.publish(req.ep, req.old, req.payload)
		s.observePublish(time.Since(start), req.stages)
		s.logCommit(context.Background(), req.reqID, req.ep, len(group))
		// Resolved moves only after the publish is visible, so a drain
		// waiter that observes resolved >= tail also observes snap at (or
		// past) every acknowledged epoch; the extra signal wakes it to
		// re-check after the store.
		s.resolved.Store(req.ep.N)
		s.signalPub()
		req.done <- nil
	}
}

// observeQueueWait folds one member's queue wait into the group-commit
// counters.
func (s *Store) observeQueueWait(ns int64) {
	s.queueWaitLastNs.Store(ns)
	s.queueWaitTotalNs.Add(ns)
	for {
		max := s.queueWaitMaxNs.Load()
		if ns <= max || s.queueWaitMaxNs.CompareAndSwap(max, ns) {
			return
		}
	}
}

// failGroup rejects every member of a group: their writers get errors, the
// epochs never become visible, and they count as resolved — a drain waiter
// must not wait on publishes that will never come (and need not: nothing
// about them was acknowledged, so a rotation that strands their records
// loses nothing).
func (s *Store) failGroup(group []*commitReq, err error) {
	for _, req := range group {
		s.resolved.Store(req.ep.N)
		req.done <- fmt.Errorf("store: write-ahead log: %w", err)
	}
	s.signalPub()
}

// Segment evaluates a PgSeg query against the current snapshot, serving
// repeats from the LRU cache when the query is canonicalizable and useCache
// is true. It reports whether the result came from the cache.
func (s *Store) Segment(q core.Query, opts core.Options, useCache bool) (*core.Segment, bool, error) {
	return s.segmentAt(s.snap.Load(), q, opts, useCache)
}

// segmentAt evaluates one segment query against a pinned snapshot. Cache
// hits require the entry's validation epoch to match the snapshot's, so a
// reader never mixes results across epochs.
func (s *Store) segmentAt(ep *Epoch, q core.Query, opts core.Options, useCache bool) (*core.Segment, bool, error) {
	key := ""
	if useCache {
		var ok bool
		key, ok = segKey(q, opts)
		useCache = ok
	}
	if useCache {
		if seg, ok := s.cache.get(key, ep.N); ok {
			return seg, true, nil
		}
	}
	seg, err := core.NewEngine(ep.P, opts).Segment(q)
	if err != nil {
		return nil, false, err
	}
	if useCache {
		s.cache.add(key, seg, relMask(q.Boundary.ExcludeRels), ep.N)
	}
	return seg, false, nil
}

// Summarize evaluates the segment queries (through the cache) and combines
// the results with PgSum. All segments and the summary are evaluated
// against one pinned snapshot, so the result reflects a single graph state
// even with concurrent ingest.
func (s *Store) Summarize(queries []core.Query, segOpts core.Options, sumOpts core.SumOptions) (*core.Psg, error) {
	ep := s.snap.Load()
	segs := make([]*core.Segment, 0, len(queries))
	for i, q := range queries {
		seg, _, err := s.segmentAt(ep, q, segOpts, true)
		if err != nil {
			return nil, fmt.Errorf("segment %d: %w", i, err)
		}
		segs = append(segs, seg)
	}
	return core.Summarize(segs, sumOpts)
}

// Adjust applies the paper's interactive adjust step to a (cached) segment:
// the base query is resolved through the cache, then AdjustExclude (with
// the given exclusion boundary) and/or AdjustExpand derive the adjusted
// result against the same snapshot. It reports whether the base segment
// came from the cache. Adjusted results are derived views and are not
// inserted back into the cache.
func (s *Store) Adjust(q core.Query, opts core.Options, excl core.Boundary, exps []core.Expansion) (*core.Segment, bool, error) {
	ep := s.snap.Load()
	seg, cached, err := s.segmentAt(ep, q, opts, true)
	if err != nil {
		return nil, false, err
	}
	eng := core.NewEngine(ep.P, opts)
	if len(excl.ExcludeRels) > 0 || len(excl.VertexFilters) > 0 || len(excl.EdgeFilters) > 0 {
		seg = eng.AdjustExclude(seg, excl)
	}
	for _, ex := range exps {
		if seg, err = eng.AdjustExpand(seg, ex); err != nil {
			return nil, false, err
		}
	}
	return seg, cached, nil
}

// Cypher evaluates a query in the supported Cypher subset against the
// current snapshot.
func (s *Store) Cypher(query string, opts cypher.Options) (*cypher.Result, error) {
	return cypher.NewProvEvaluator(s.snap.Load().P, opts).Run(query)
}

// CacheStats snapshots the segment-cache counters.
func (s *Store) CacheStats() CacheStats { return s.cache.stats() }

// Uptime returns the service uptime.
func (s *Store) Uptime() time.Duration { return time.Since(s.started) }

// StoreStats is the /stats payload: graph shape, cache counters, and service
// uptime.
type StoreStats struct {
	Vertices      int            `json:"vertices"`
	Edges         int            `json:"edges"`
	VertexByLabel map[string]int `json:"vertex_by_label"`
	EdgeByLabel   map[string]int `json:"edge_by_label"`
	MaxOutDegree  int            `json:"max_out_degree"`
	MaxInDegree   int            `json:"max_in_degree"`
	Epoch         uint64         `json:"epoch"`
	Writes        uint64         `json:"writes"`
	Cache         CacheStats     `json:"cache"`
	UptimeMillis  int64          `json:"uptime_ms"`
}

// Stats snapshots the store. Lock-free: it reads the current epoch.
func (s *Store) Stats() StoreStats {
	ep := s.snap.Load()
	st := ep.P.PG().Stats()
	return StoreStats{
		Vertices:      st.Vertices,
		Edges:         st.Edges,
		VertexByLabel: st.VertexByLabel,
		EdgeByLabel:   st.EdgeByLabel,
		MaxOutDegree:  st.MaxOutDegree,
		MaxInDegree:   st.MaxInDegree,
		Epoch:         ep.N,
		Writes:        ep.N,
		Cache:         s.cache.stats(),
		UptimeMillis:  time.Since(s.started).Milliseconds(),
	}
}

// The export methods render straight from the current snapshot: it is
// immutable, so a slow client draining the response can never stall ingest
// or other readers (the old read-lock design had to buffer in memory first).

// ExportJSON writes the whole graph as PROV-JSON (prov/json.go's format).
func (s *Store) ExportJSON(w io.Writer) error {
	return s.snap.Load().P.ExportJSON(w)
}

// ExportDOT writes the whole graph in graphviz DOT (graph/dot.go).
func (s *Store) ExportDOT(w io.Writer) error {
	return s.snap.Load().P.PG().WriteDOT(w, graph.DOTOptions{
		NameProp:    prov.PropName,
		VertexShape: provShapes,
	})
}

// Save writes the graph in the binary .pg format (graph/store.go).
func (s *Store) Save(w io.Writer) error {
	return s.snap.Load().P.PG().Save(w)
}

// provShapes is the DOT shape convention shared with the CLI renderers.
var provShapes = map[string]string{
	"v:E": "ellipse",
	"v:A": "box",
	"v:U": "house",
}

// relMask converts a boundary's excluded relationship types into the
// admitted-relations mask cache entries carry for delta revalidation.
func relMask(excluded []prov.Rel) [8]bool {
	var ok [8]bool
	for i := range ok {
		ok[i] = true
	}
	for _, r := range excluded {
		ok[r] = false
	}
	return ok
}
