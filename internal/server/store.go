// Package server implements provd, the long-lived HTTP query service over a
// provenance graph (the serving layer of the paper's provenance data
// manager). It has three layers:
//
//  1. Store — a concurrency-safe wrapper around the PROV graph and its
//     lifecycle recorder. Segmentation, summarization and Cypher evaluation
//     run under a shared read lock (the operators only read the graph);
//     ingest runs under the exclusive write lock.
//  2. Wire codecs (codec.go) — JSON request/response types for every
//     endpoint, plus DOT and PROV-JSON output formats reusing the existing
//     renderers.
//  3. Result cache (cache.go) — an LRU over canonicalized PgSeg queries,
//     invalidated on writes.
package server

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/cypher"
	"repro/internal/graph"
	"repro/internal/prov"
)

// Store is the concurrency-safe graph wrapper the HTTP handlers talk to.
//
// The underlying property graph is append-only and single-writer-unsafe, so
// the store serializes mutations behind mu while letting any number of
// queries share the read side. Cached segments survive across reads; any
// write purges them (see segCache).
type Store struct {
	mu  sync.RWMutex
	rec *prov.Recorder

	cache *segCache

	// writes counts committed ingest batches (the store generation).
	writes uint64

	started time.Time
}

// NewStore wraps an existing PROV graph. cacheCap bounds the segment cache
// (entries; <=0 selects the default).
func NewStore(p *prov.Graph, cacheCap int) *Store {
	return &Store{
		rec:     prov.WrapRecorder(p),
		cache:   newSegCache(cacheCap),
		started: time.Now(),
	}
}

// View runs fn under the shared read lock. fn must not retain p past the
// call.
func (s *Store) View(fn func(p *prov.Graph)) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	fn(s.rec.P)
}

// Update runs fn under the exclusive write lock; if fn succeeds, the write
// generation advances and the segment cache is invalidated.
func (s *Store) Update(fn func(rec *prov.Recorder) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := fn(s.rec); err != nil {
		return err
	}
	s.writes++
	s.cache.invalidate()
	return nil
}

// Segment evaluates a PgSeg query, serving repeats from the LRU cache when
// the query is canonicalizable and useCache is true. It reports whether the
// result came from the cache.
func (s *Store) Segment(q core.Query, opts core.Options, useCache bool) (*core.Segment, bool, error) {
	key := ""
	if useCache {
		var ok bool
		key, ok = segKey(q, opts)
		useCache = ok
	}
	if useCache {
		if seg, ok := s.cache.get(key); ok {
			return seg, true, nil
		}
	}
	seg, gen, err := func() (*core.Segment, uint64, error) {
		s.mu.RLock()
		defer s.mu.RUnlock() // deferred: a solver panic must not leak the RLock
		gen := s.cache.generation()
		seg, err := core.NewEngine(s.rec.P, opts).Segment(q)
		return seg, gen, err
	}()
	if err != nil {
		return nil, false, err
	}
	if useCache {
		s.cache.addIfGen(key, seg, gen)
	}
	return seg, false, nil
}

// Summarize evaluates the segment queries (through the cache) and combines
// the results with PgSum. The whole evaluation holds one read lock so every
// segment and the summary reflect a single graph state even with concurrent
// ingest; cache hits are safe to mix in because any write purges the cache,
// so a surviving entry is always from the current generation.
func (s *Store) Summarize(queries []core.Query, segOpts core.Options, sumOpts core.SumOptions) (*core.Psg, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	gen := s.cache.generation()
	segs := make([]*core.Segment, 0, len(queries))
	for i, q := range queries {
		key, cacheable := segKey(q, segOpts)
		if cacheable {
			if seg, ok := s.cache.get(key); ok {
				segs = append(segs, seg)
				continue
			}
		}
		seg, err := core.NewEngine(s.rec.P, segOpts).Segment(q)
		if err != nil {
			return nil, fmt.Errorf("segment %d: %w", i, err)
		}
		if cacheable {
			s.cache.addIfGen(key, seg, gen)
		}
		segs = append(segs, seg)
	}
	return core.Summarize(segs, sumOpts)
}

// Cypher evaluates a query in the supported Cypher subset.
func (s *Store) Cypher(query string, opts cypher.Options) (*cypher.Result, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return cypher.NewProvEvaluator(s.rec.P, opts).Run(query)
}

// StoreStats is the /stats payload: graph shape, cache counters, and service
// uptime.
type StoreStats struct {
	Vertices      int            `json:"vertices"`
	Edges         int            `json:"edges"`
	VertexByLabel map[string]int `json:"vertex_by_label"`
	EdgeByLabel   map[string]int `json:"edge_by_label"`
	MaxOutDegree  int            `json:"max_out_degree"`
	MaxInDegree   int            `json:"max_in_degree"`
	Writes        uint64         `json:"writes"`
	Cache         CacheStats     `json:"cache"`
	UptimeMillis  int64          `json:"uptime_ms"`
}

// Stats snapshots the store.
func (s *Store) Stats() StoreStats {
	s.mu.RLock()
	st := s.rec.P.PG().Stats()
	writes := s.writes
	s.mu.RUnlock()
	return StoreStats{
		Vertices:      st.Vertices,
		Edges:         st.Edges,
		VertexByLabel: st.VertexByLabel,
		EdgeByLabel:   st.EdgeByLabel,
		MaxOutDegree:  st.MaxOutDegree,
		MaxInDegree:   st.MaxInDegree,
		Writes:        writes,
		Cache:         s.cache.stats(),
		UptimeMillis:  time.Since(s.started).Milliseconds(),
	}
}

// The export methods render into a buffer under the read lock and stream to
// the client only after releasing it: the client may drain the body
// arbitrarily slowly, and a held RLock would queue a waiting writer behind
// it — which in turn blocks every new reader (one slow export client must
// not be able to stall the whole service).

// ExportJSON writes the whole graph as PROV-JSON (prov/json.go's format).
func (s *Store) ExportJSON(w io.Writer) error {
	return s.renderThenStream(w, func(buf io.Writer) error {
		return s.rec.P.ExportJSON(buf)
	})
}

// ExportDOT writes the whole graph in graphviz DOT (graph/dot.go).
func (s *Store) ExportDOT(w io.Writer) error {
	return s.renderThenStream(w, func(buf io.Writer) error {
		return s.rec.P.PG().WriteDOT(buf, graph.DOTOptions{
			NameProp:    prov.PropName,
			VertexShape: provShapes,
		})
	})
}

// Save writes the graph in the binary .pg format (graph/store.go).
func (s *Store) Save(w io.Writer) error {
	return s.renderThenStream(w, func(buf io.Writer) error {
		return s.rec.P.PG().Save(buf)
	})
}

// renderThenStream runs render into a memory buffer under the read lock,
// then copies the result to w lock-free.
func (s *Store) renderThenStream(w io.Writer, render func(io.Writer) error) error {
	var buf bytes.Buffer
	s.mu.RLock()
	err := render(&buf)
	s.mu.RUnlock()
	if err != nil {
		return err
	}
	_, err = w.Write(buf.Bytes())
	return err
}

// provShapes is the DOT shape convention shared with the CLI renderers.
var provShapes = map[string]string{
	"v:E": "ellipse",
	"v:A": "box",
	"v:U": "house",
}
