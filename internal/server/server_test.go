package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cypher"
	"repro/internal/graph"
	"repro/internal/prov"
)

// testLifecycle builds a small Fig.1-style project: alice imports a dataset,
// trains twice (two model versions), bob evaluates.
func testLifecycle() (*prov.Graph, map[string]graph.VertexID) {
	rec := prov.NewRecorder()
	ids := map[string]graph.VertexID{}
	ids["dataset"] = rec.Import("alice", "dataset", "http://example.com/faces")
	_, outs := rec.Run("alice", "train", []graph.VertexID{ids["dataset"]}, []string{"model", "logs"})
	ids["model-v1"], ids["logs-v1"] = outs[0], outs[1]
	_, outs = rec.Run("alice", "train -more", []graph.VertexID{ids["dataset"], ids["model-v1"]}, []string{"model"})
	ids["model-v2"] = outs[0]
	_, outs = rec.Run("bob", "eval", []graph.VertexID{ids["model-v2"]}, []string{"report"})
	ids["report"] = outs[0]
	return rec.P, ids
}

func newTestServer(t *testing.T) (*httptest.Server, *Store, map[string]graph.VertexID) {
	t.Helper()
	p, ids := testLifecycle()
	store := NewStore(p, 16)
	ts := httptest.NewServer(NewServer(store))
	t.Cleanup(ts.Close)
	return ts, store, ids
}

// doJSON posts body and decodes the JSON reply into out, returning the
// status code.
func doJSON(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var reqBody io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		reqBody = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, reqBody)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("bad response body %q: %v", raw, err)
		}
	}
	return resp.StatusCode
}

func TestHealthz(t *testing.T) {
	ts, _, _ := newTestServer(t)
	var got map[string]string
	if code := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, &got); code != 200 {
		t.Fatalf("healthz: status %d", code)
	}
	if got["status"] != "ok" {
		t.Fatalf("healthz: %v", got)
	}
}

func TestSegmentRoundTripAndCache(t *testing.T) {
	ts, _, ids := newTestServer(t)
	req := SegmentRequest{
		Src: []uint32{uint32(ids["dataset"])},
		Dst: []uint32{uint32(ids["model-v2"])},
	}
	var seg SegmentResponse
	if code := doJSON(t, http.MethodPost, ts.URL+"/segment", req, &seg); code != 200 {
		t.Fatalf("segment: status %d", code)
	}
	if seg.Cached {
		t.Fatal("first request must not be cached")
	}
	if seg.NumVertices == 0 || seg.NumEdges == 0 {
		t.Fatalf("empty segment: %+v", seg)
	}
	wantIDs := map[uint32]bool{uint32(ids["dataset"]): false, uint32(ids["model-v2"]): false}
	for _, v := range seg.Vertices {
		if _, ok := wantIDs[v.ID]; ok {
			wantIDs[v.ID] = true
		}
	}
	for id, seen := range wantIDs {
		if !seen {
			t.Errorf("query vertex %d missing from segment", id)
		}
	}

	// The identical query again — now answered from the LRU cache; the
	// request differing only in list order must hit the same entry.
	var again SegmentResponse
	doJSON(t, http.MethodPost, ts.URL+"/segment", req, &again)
	if !again.Cached {
		t.Fatal("identical repeat not served from cache")
	}
	if again.NumVertices != seg.NumVertices || again.NumEdges != seg.NumEdges {
		t.Fatalf("cached reply differs: %+v vs %+v", again, seg)
	}

	var stats StoreStats
	doJSON(t, http.MethodGet, ts.URL+"/stats", nil, &stats)
	if stats.Cache.Hits != 1 || stats.Cache.Misses != 1 {
		t.Fatalf("cache counters: %+v", stats.Cache)
	}
	if stats.Cache.Entries != 1 {
		t.Fatalf("cache entries: %+v", stats.Cache)
	}
}

func TestSegmentSolversAgree(t *testing.T) {
	ts, _, ids := newTestServer(t)
	var sizes []int
	for _, solver := range []string{"tst", "alg", "cflrb"} {
		req := SegmentRequest{
			Src:    []uint32{uint32(ids["dataset"])},
			Dst:    []uint32{uint32(ids["report"])},
			Solver: solver,
			// Distinct solver = distinct cache key; no_cache keeps this test
			// independent of cache state anyway.
			NoCache: true,
		}
		var seg SegmentResponse
		if code := doJSON(t, http.MethodPost, ts.URL+"/segment", req, &seg); code != 200 {
			t.Fatalf("solver %s: status %d", solver, code)
		}
		sizes = append(sizes, seg.NumVertices)
	}
	if sizes[0] != sizes[1] || sizes[1] != sizes[2] {
		t.Fatalf("solvers disagree: %v", sizes)
	}
}

func TestSegmentDOTFormat(t *testing.T) {
	ts, _, ids := newTestServer(t)
	req := SegmentRequest{
		Src:    []uint32{uint32(ids["dataset"])},
		Dst:    []uint32{uint32(ids["model-v1"])},
		Format: "dot",
	}
	var seg SegmentResponse
	if code := doJSON(t, http.MethodPost, ts.URL+"/segment", req, &seg); code != 200 {
		t.Fatalf("status %d", code)
	}
	if !strings.Contains(seg.DOT, "digraph provenance") {
		t.Fatalf("no DOT payload: %+v", seg)
	}
	if len(seg.Vertices) != 0 {
		t.Fatal("dot format should omit the vertex list")
	}
}

func TestSegmentBadRequests(t *testing.T) {
	ts, _, ids := newTestServer(t)
	cases := []struct {
		name string
		req  any
	}{
		{"empty src", SegmentRequest{Dst: []uint32{uint32(ids["model-v1"])}}},
		{"out of range", SegmentRequest{Src: []uint32{99999}, Dst: []uint32{uint32(ids["model-v1"])}}},
		{"bad solver", SegmentRequest{Src: []uint32{uint32(ids["dataset"])}, Dst: []uint32{uint32(ids["model-v1"])}, Solver: "neo4j"}},
		{"bad rel", SegmentRequest{Src: []uint32{uint32(ids["dataset"])}, Dst: []uint32{uint32(ids["model-v1"])}, ExcludeRels: []string{"Z"}}},
		{"bad format", SegmentRequest{Src: []uint32{uint32(ids["dataset"])}, Dst: []uint32{uint32(ids["model-v1"])}, Format: "svg"}},
		{"expansion id out of range", SegmentRequest{Src: []uint32{uint32(ids["dataset"])}, Dst: []uint32{uint32(ids["model-v1"])},
			Expansions: []ExpansionSpec{{Within: []uint32{4_000_000_000}, K: 1}}}},
		{"unknown field", map[string]any{"sources": []int{0}}},
	}
	for _, tc := range cases {
		var errResp ErrorResponse
		if code := doJSON(t, http.MethodPost, ts.URL+"/segment", tc.req, &errResp); code != 400 {
			t.Errorf("%s: want 400, got %d", tc.name, code)
		}
		if errResp.Error == "" {
			t.Errorf("%s: empty error message", tc.name)
		}
	}
}

func TestSummarizeRoundTrip(t *testing.T) {
	ts, _, ids := newTestServer(t)
	req := SummarizeRequest{
		Segments: []SegmentSpec{
			{Src: []uint32{uint32(ids["dataset"])}, Dst: []uint32{uint32(ids["model-v1"])}},
			{Src: []uint32{uint32(ids["dataset"])}, Dst: []uint32{uint32(ids["model-v2"])}},
		},
		AggActivity: []string{"command"},
		TypeRadius:  1,
	}
	var resp SummarizeResponse
	if code := doJSON(t, http.MethodPost, ts.URL+"/summarize", req, &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(resp.Nodes) == 0 || resp.Segments != 2 {
		t.Fatalf("bad summary: %+v", resp)
	}
	if resp.CompactionRatio <= 0 || resp.CompactionRatio > 1 {
		t.Fatalf("compaction ratio out of range: %v", resp.CompactionRatio)
	}

	req.Format = "dot"
	var dotResp SummarizeResponse
	doJSON(t, http.MethodPost, ts.URL+"/summarize", req, &dotResp)
	if !strings.Contains(dotResp.DOT, "digraph psg") {
		t.Fatalf("no DOT payload: %+v", dotResp)
	}

	var errResp ErrorResponse
	if code := doJSON(t, http.MethodPost, ts.URL+"/summarize", SummarizeRequest{}, &errResp); code != 400 {
		t.Fatalf("empty summarize: want 400, got %d", code)
	}
}

func TestQueryRoundTrip(t *testing.T) {
	ts, _, _ := newTestServer(t)
	var resp QueryResponse
	req := QueryRequest{Query: "match (e:E) where id(e) in [0, 1, 2] return e"}
	if code := doJSON(t, http.MethodPost, ts.URL+"/query", req, &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if resp.NumRows == 0 {
		t.Fatalf("no rows: %+v", resp)
	}
	cell, ok := resp.Rows[0][0].(map[string]any)
	if !ok || cell["kind"] != "E" {
		t.Fatalf("bad vertex cell: %#v", resp.Rows[0][0])
	}

	var errResp ErrorResponse
	if code := doJSON(t, http.MethodPost, ts.URL+"/query", QueryRequest{Query: "garbage ("}, &errResp); code != 400 {
		t.Fatalf("bad query: want 400, got %d", code)
	}
	if code := doJSON(t, http.MethodPost, ts.URL+"/query", QueryRequest{}, &errResp); code != 400 {
		t.Fatalf("empty query: want 400, got %d", code)
	}
}

func TestIngestRoundTripAndAtomicity(t *testing.T) {
	ts, store, ids := newTestServer(t)
	before := store.Stats()

	// A valid batch: declare an agent, import an artifact, run an activity
	// over an existing entity.
	req := IngestRequest{Ops: []IngestOp{
		{Op: "agent", Agent: "carol"},
		{Op: "import", Agent: "carol", Artifact: "testset", URL: "http://example.com/t"},
		{Op: "run", Agent: "carol", Command: "evaluate", Inputs: []uint32{uint32(ids["model-v2"])}, Outputs: []string{"scores"}},
	}}
	var resp IngestResponse
	if code := doJSON(t, http.MethodPost, ts.URL+"/ingest", req, &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("want 3 results: %+v", resp)
	}
	if len(resp.Results[2].Outputs) != 1 {
		t.Fatalf("run op: want 1 output, got %+v", resp.Results[2])
	}
	if resp.Vertices <= before.Vertices {
		t.Fatalf("graph did not grow: %d -> %d", before.Vertices, resp.Vertices)
	}

	// Chaining across batches: the import's returned id is usable as a run
	// input in the next batch.
	testset := resp.Results[1].ID
	req = IngestRequest{Ops: []IngestOp{
		{Op: "run", Agent: "carol", Command: "re-evaluate", Inputs: []uint32{testset}, Outputs: []string{"scores"}},
	}}
	if code := doJSON(t, http.MethodPost, ts.URL+"/ingest", req, &resp); code != 200 {
		t.Fatalf("chained batch: status %d", code)
	}

	// Atomicity: a batch whose second op is invalid must leave the graph
	// untouched even though the first op is fine.
	mid := store.Stats()
	bad := IngestRequest{Ops: []IngestOp{
		{Op: "agent", Agent: "dave"},
		{Op: "run", Agent: "dave", Command: "x", Inputs: []uint32{1 << 30}, Outputs: []string{"y"}},
	}}
	var errResp ErrorResponse
	if code := doJSON(t, http.MethodPost, ts.URL+"/ingest", bad, &errResp); code != 400 {
		t.Fatalf("bad batch: want 400, got %d", code)
	}
	after := store.Stats()
	if after.Vertices != mid.Vertices || after.Edges != mid.Edges {
		t.Fatalf("failed batch mutated the graph: %+v -> %+v", mid, after)
	}

	// The run's input must be an entity, not an activity/agent.
	badKind := IngestRequest{Ops: []IngestOp{
		{Op: "run", Agent: "carol", Command: "x", Inputs: []uint32{resp.Results[0].ID}, Outputs: []string{"y"}},
	}}
	if code := doJSON(t, http.MethodPost, ts.URL+"/ingest", badKind, &errResp); code != 400 {
		t.Fatalf("non-entity input: want 400, got %d", code)
	}
	if !strings.Contains(errResp.Error, "not an entity") {
		t.Fatalf("unexpected error: %q", errResp.Error)
	}
}

func TestCacheInvalidationOnWrite(t *testing.T) {
	ts, _, ids := newTestServer(t)
	seg := SegmentRequest{
		Src: []uint32{uint32(ids["dataset"])},
		Dst: []uint32{uint32(ids["model-v2"])},
	}
	var r1, r2, r3 SegmentResponse
	doJSON(t, http.MethodPost, ts.URL+"/segment", seg, &r1)
	doJSON(t, http.MethodPost, ts.URL+"/segment", seg, &r2)
	if r1.Cached || !r2.Cached {
		t.Fatalf("cache warmup broken: %v %v", r1.Cached, r2.Cached)
	}

	// A write invalidates: a new training run extends model-v2's downstream
	// history; the repeat must be re-solved, not served stale.
	ingest := IngestRequest{Ops: []IngestOp{
		{Op: "run", Agent: "alice", Command: "train -v3", Inputs: []uint32{uint32(ids["model-v2"])}, Outputs: []string{"model"}},
	}}
	if code := doJSON(t, http.MethodPost, ts.URL+"/ingest", ingest, nil); code != 200 {
		t.Fatalf("ingest failed")
	}
	var stats StoreStats
	doJSON(t, http.MethodGet, ts.URL+"/stats", nil, &stats)
	if stats.Cache.Invalidations != 1 || stats.Cache.Entries != 0 {
		t.Fatalf("write did not invalidate cache: %+v", stats.Cache)
	}
	if stats.Writes != 1 {
		t.Fatalf("write generation: %+v", stats)
	}

	doJSON(t, http.MethodPost, ts.URL+"/segment", seg, &r3)
	if r3.Cached {
		t.Fatal("post-write repeat served from stale cache")
	}
}

func TestCacheEviction(t *testing.T) {
	p, ids := testLifecycle()
	store := NewStore(p, 2) // capacity 2
	ts := httptest.NewServer(NewServer(store))
	defer ts.Close()

	reqs := []SegmentRequest{
		{Src: []uint32{uint32(ids["dataset"])}, Dst: []uint32{uint32(ids["model-v1"])}},
		{Src: []uint32{uint32(ids["dataset"])}, Dst: []uint32{uint32(ids["model-v2"])}},
		{Src: []uint32{uint32(ids["dataset"])}, Dst: []uint32{uint32(ids["report"])}},
	}
	for _, r := range reqs {
		doJSON(t, http.MethodPost, ts.URL+"/segment", r, nil)
	}
	var stats StoreStats
	doJSON(t, http.MethodGet, ts.URL+"/stats", nil, &stats)
	if stats.Cache.Entries != 2 {
		t.Fatalf("LRU did not evict: %+v", stats.Cache)
	}
	// The oldest entry (reqs[0]) was evicted; the newest is still cached.
	var r SegmentResponse
	doJSON(t, http.MethodPost, ts.URL+"/segment", reqs[2], &r)
	if !r.Cached {
		t.Fatal("most recent entry should still be cached")
	}
	doJSON(t, http.MethodPost, ts.URL+"/segment", reqs[0], &r)
	if r.Cached {
		t.Fatal("evicted entry should have been re-solved")
	}
}

func TestExportFormats(t *testing.T) {
	ts, _, _ := newTestServer(t)

	resp, err := http.Get(ts.URL + "/export?format=prov-json")
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("prov-json: %v", err)
	}
	resp.Body.Close()
	if _, ok := doc["entity"]; !ok {
		t.Fatalf("prov-json missing entity map: %v", doc)
	}

	resp, err = http.Get(ts.URL + "/export?format=dot")
	if err != nil {
		t.Fatal(err)
	}
	dot, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(dot), "digraph provenance") {
		t.Fatal("dot export missing header")
	}

	resp, err = http.Get(ts.URL + "/export?format=pg")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	g, err := graph.Load(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("pg export does not round-trip: %v", err)
	}
	if g.NumVertices() == 0 {
		t.Fatal("pg export empty")
	}

	resp, err = http.Get(ts.URL + "/export?format=csv")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("unknown format: want 400, got %d", resp.StatusCode)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts, _, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/segment")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /segment: want 405, got %d", resp.StatusCode)
	}
}

// TestReadsDontBlockOnWriteLock is the epoch-snapshot architecture's key
// property: queries never acquire the store's write lock — they load a
// snapshot pointer. The test holds the write lock for the whole duration of
// a segmentation, a summarization and a Cypher query and requires all three
// to complete while it is held.
func TestReadsDontBlockOnWriteLock(t *testing.T) {
	p, ids := testLifecycle()
	store := NewStore(p, 16)
	q := core.Query{
		Src: []graph.VertexID{ids["dataset"]},
		Dst: []graph.VertexID{ids["model-v2"]},
	}

	err := store.Update(func(rec *prov.Recorder) error {
		// The write lock is held right now. Run the read path to completion
		// on another goroutine; if it ever needed the lock this would
		// deadlock, so a timeout converts that into a test failure.
		done := make(chan error, 1)
		go func() {
			if _, _, err := store.Segment(q, core.Options{}, true); err != nil {
				done <- err
				return
			}
			if _, err := store.Summarize([]core.Query{q}, core.Options{}, core.SumOptions{}); err != nil {
				done <- err
				return
			}
			_, err := store.Cypher("match (e:E) where id(e) in [0] return e", cypher.Options{})
			done <- err
		}()
		select {
		case err := <-done:
			return err
		case <-time.After(10 * time.Second):
			return fmt.Errorf("query blocked behind the held write lock")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestEpochRevalidation checks the incremental cache revalidation path: an
// ingest batch disconnected from a cached query's support set must carry
// the entry to the new epoch (the repeat is a cache hit, not a re-solve),
// while a batch touching the support must purge it.
func TestEpochRevalidation(t *testing.T) {
	ts, _, ids := newTestServer(t)
	seg := SegmentRequest{
		Src: []uint32{uint32(ids["dataset"])},
		Dst: []uint32{uint32(ids["model-v2"])},
	}
	var r SegmentResponse
	doJSON(t, http.MethodPost, ts.URL+"/segment", seg, &r)
	if r.Cached {
		t.Fatal("first query cached")
	}

	// A side project by a new agent: every new edge connects only new
	// vertices, so the delta cannot touch the cached query's support set.
	side := IngestRequest{Ops: []IngestOp{
		{Op: "agent", Agent: "zoe"},
		{Op: "run", Agent: "zoe", Command: "side-work", Outputs: []string{"side-artifact"}},
	}}
	if code := doJSON(t, http.MethodPost, ts.URL+"/ingest", side, nil); code != 200 {
		t.Fatal("side ingest failed")
	}
	doJSON(t, http.MethodPost, ts.URL+"/segment", seg, &r)
	if !r.Cached {
		t.Fatal("disconnected ingest forced a re-solve instead of revalidating")
	}
	var m MetricsResponse
	doJSON(t, http.MethodGet, ts.URL+"/metrics", nil, &m)
	if m.Cache.Revalidations != 1 || m.Cache.Invalidations != 0 {
		t.Fatalf("revalidation counters: %+v", m.Cache)
	}
	if m.Epoch != 1 {
		t.Fatalf("epoch: want 1, got %d", m.Epoch)
	}

	// A run consuming model-v2 attaches to the cached segment's support:
	// the entry must be purged and the repeat re-solved against the new
	// snapshot (here the answer happens to be unchanged — new provenance is
	// downstream of the query — but the cache must not assume that).
	nBefore := r.NumVertices
	touch := IngestRequest{Ops: []IngestOp{
		{Op: "run", Agent: "alice", Command: "train -v3", Inputs: []uint32{uint32(ids["model-v2"])}, Outputs: []string{"model"}},
	}}
	if code := doJSON(t, http.MethodPost, ts.URL+"/ingest", touch, nil); code != 200 {
		t.Fatal("touching ingest failed")
	}
	doJSON(t, http.MethodPost, ts.URL+"/segment", seg, &r)
	if r.Cached {
		t.Fatal("attached ingest did not purge the cached entry")
	}
	if r.NumVertices != nBefore {
		t.Fatalf("re-solve changed a query whose ancestry is fixed: %d vs %d", r.NumVertices, nBefore)
	}
	doJSON(t, http.MethodGet, ts.URL+"/metrics", nil, &m)
	if m.Cache.Invalidations != 1 {
		t.Fatalf("invalidation counter: %+v", m.Cache)
	}
	if m.Epoch != 2 {
		t.Fatalf("epoch: want 2, got %d", m.Epoch)
	}
}

func TestAdjustEndpoint(t *testing.T) {
	ts, _, ids := newTestServer(t)
	base := SegmentRequest{
		Src: []uint32{uint32(ids["dataset"])},
		Dst: []uint32{uint32(ids["report"])},
	}

	// Excluding the agent vertex kind must drop every agent the base
	// segment contains, and their incident S/A edges with them.
	var baseResp SegmentResponse
	doJSON(t, http.MethodPost, ts.URL+"/segment", base, &baseResp)
	agents, agentEdges := 0, 0
	for _, v := range baseResp.Vertices {
		if v.Kind == "U" {
			agents++
		}
	}
	for _, e := range baseResp.Edges {
		if e.Rel == "S" || e.Rel == "A" {
			agentEdges++
		}
	}
	if agents == 0 || agentEdges == 0 {
		t.Fatal("base segment has no agents; test premise broken")
	}
	var adj SegmentResponse
	req := AdjustRequest{Segment: base, ExcludeKinds: []string{"U"}}
	if code := doJSON(t, http.MethodPost, ts.URL+"/adjust", req, &adj); code != 200 {
		t.Fatalf("adjust: status %d", code)
	}
	if !adj.Cached {
		t.Fatal("adjust base should have hit the entry cached by /segment")
	}
	if adj.NumVertices != baseResp.NumVertices-agents {
		t.Fatalf("exclude did not drop the %d agents: %d -> %d", agents, baseResp.NumVertices, adj.NumVertices)
	}
	for _, v := range adj.Vertices {
		if v.Kind == "U" {
			t.Fatalf("agent %d survived the exclusion", v.ID)
		}
	}

	// Excluding the S/A relationship types drops the edges but keeps the
	// (now isolated) agent vertices — the edge-level adjust.
	var relAdj SegmentResponse
	doJSON(t, http.MethodPost, ts.URL+"/adjust", AdjustRequest{Segment: base, ExcludeRels: []string{"S", "A"}}, &relAdj)
	if relAdj.NumEdges != baseResp.NumEdges-agentEdges {
		t.Fatalf("rel exclude did not drop the %d agent edges: %d -> %d", agentEdges, baseResp.NumEdges, relAdj.NumEdges)
	}
	for _, e := range relAdj.Edges {
		if e.Rel == "S" || e.Rel == "A" {
			t.Fatalf("edge %d (%s) survived the exclusion", e.ID, e.Rel)
		}
	}

	// Expanding a narrower segment around the report entity must grow it.
	narrow := SegmentRequest{
		Src: []uint32{uint32(ids["dataset"])},
		Dst: []uint32{uint32(ids["model-v1"])},
	}
	var narrowResp SegmentResponse
	doJSON(t, http.MethodPost, ts.URL+"/segment", narrow, &narrowResp)
	grow := AdjustRequest{
		Segment:    narrow,
		Expansions: []ExpansionSpec{{Within: []uint32{uint32(ids["report"])}, K: 2}},
	}
	var grown SegmentResponse
	if code := doJSON(t, http.MethodPost, ts.URL+"/adjust", grow, &grown); code != 200 {
		t.Fatalf("adjust expand: status %d", code)
	}
	if grown.NumVertices <= narrowResp.NumVertices {
		t.Fatalf("expansion did not grow the segment: %d <= %d", grown.NumVertices, narrowResp.NumVertices)
	}

	// Bad requests.
	cases := []struct {
		name string
		req  any
	}{
		{"no adjustment", AdjustRequest{Segment: base}},
		{"bad rel", AdjustRequest{Segment: base, ExcludeRels: []string{"Z"}}},
		{"expansion out of range", AdjustRequest{Segment: base,
			Expansions: []ExpansionSpec{{Within: []uint32{4_000_000_000}, K: 1}}}},
		{"bad base", AdjustRequest{Segment: SegmentRequest{Dst: base.Dst}, ExcludeRels: []string{"S"}}},
	}
	for _, tc := range cases {
		var errResp ErrorResponse
		if code := doJSON(t, http.MethodPost, ts.URL+"/adjust", tc.req, &errResp); code != 400 {
			t.Errorf("%s: want 400, got %d", tc.name, code)
		}
	}

	// DOT format.
	dotReq := AdjustRequest{Segment: base, ExcludeRels: []string{"S"}, Format: "dot"}
	var dotResp SegmentResponse
	doJSON(t, http.MethodPost, ts.URL+"/adjust", dotReq, &dotResp)
	if !strings.Contains(dotResp.DOT, "digraph provenance") {
		t.Fatalf("no DOT payload: %+v", dotResp)
	}
}

// TestExcludedRelBlocksNeverRead pins the frontier engine's block-skip
// contract at the HTTP surface: when a /segment or /adjust boundary
// excludes relationship types, the excluded relations' CSR blocks are never
// read — whole per-label blocks are dropped before adjacency is touched,
// rather than edges being read and filtered after the fact.
func TestExcludedRelBlocksNeverRead(t *testing.T) {
	ts, store, ids := newTestServer(t)
	p := store.Epoch().P

	var mu sync.Mutex
	reads := map[graph.Label]int{}
	restore := graph.SetRowReadHook(func(l graph.Label, out bool) {
		mu.Lock()
		reads[l]++
		mu.Unlock()
	})
	defer restore()
	drainReads := func() map[graph.Label]int {
		mu.Lock()
		defer mu.Unlock()
		got := reads
		reads = map[graph.Label]int{}
		return got
	}

	lU := p.RelLabel(prov.RelUsed)
	lS := p.RelLabel(prov.RelAssoc)
	lA := p.RelLabel(prov.RelAttr)

	// A fresh (uncached) /segment under an S/A exclusion: the traversal must
	// read U blocks but never the excluded agent-relation blocks.
	seg := SegmentRequest{
		Src:         []uint32{uint32(ids["dataset"])},
		Dst:         []uint32{uint32(ids["report"])},
		ExcludeRels: []string{"S", "A"},
		NoCache:     true,
	}
	var segResp SegmentResponse
	if code := doJSON(t, http.MethodPost, ts.URL+"/segment", seg, &segResp); code != 200 {
		t.Fatalf("segment: status %d", code)
	}
	got := drainReads()
	if got[lU] == 0 {
		t.Fatal("no U-block reads observed; hook not exercising the frozen path")
	}
	if got[lS] != 0 || got[lA] != 0 {
		t.Fatalf("excluded S/A blocks were read during /segment: %v", got)
	}
	for _, v := range segResp.Vertices {
		if v.Kind == "U" {
			t.Fatalf("agent %d in an agent-excluded segment", v.ID)
		}
	}

	// The same contract through /adjust: the (uncached) base resolves under
	// its own S/A exclusion, then the edge-level refinement filters the
	// result — no excluded block read end to end.
	adj := AdjustRequest{
		Segment: SegmentRequest{
			Src:         []uint32{uint32(ids["dataset"])},
			Dst:         []uint32{uint32(ids["model-v2"])},
			ExcludeRels: []string{"S", "A"},
		},
		ExcludeRels: []string{"D"},
	}
	var adjResp SegmentResponse
	if code := doJSON(t, http.MethodPost, ts.URL+"/adjust", adj, &adjResp); code != 200 {
		t.Fatalf("adjust: status %d", code)
	}
	got = drainReads()
	if got[lU] == 0 {
		t.Fatal("adjust resolved the base without reading any U block")
	}
	if got[lS] != 0 || got[lA] != 0 {
		t.Fatalf("excluded S/A blocks were read during /adjust: %v", got)
	}
	for _, e := range adjResp.Edges {
		if e.Rel == "S" || e.Rel == "A" || e.Rel == "D" {
			t.Fatalf("excluded relation %s survived adjust", e.Rel)
		}
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts, _, ids := newTestServer(t)
	doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, nil)
	seg := SegmentRequest{
		Src: []uint32{uint32(ids["dataset"])},
		Dst: []uint32{uint32(ids["model-v1"])},
	}
	doJSON(t, http.MethodPost, ts.URL+"/segment", seg, nil)
	doJSON(t, http.MethodPost, ts.URL+"/segment", seg, nil)

	var m MetricsResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/metrics", nil, &m); code != 200 {
		t.Fatalf("metrics: status %d", code)
	}
	if m.Epoch != 0 {
		t.Fatalf("epoch: %d", m.Epoch)
	}
	if m.Vertices == 0 || m.Edges == 0 {
		t.Fatalf("watermark empty: %+v", m)
	}
	if m.Requests["segment"] != 2 || m.Requests["healthz"] != 1 || m.Requests["metrics"] != 1 {
		t.Fatalf("request counters: %+v", m.Requests)
	}
	if m.Cache.Hits != 1 || m.Cache.Misses != 1 {
		t.Fatalf("cache counters: %+v", m.Cache)
	}
	if m.UptimeMillis < 0 {
		t.Fatalf("uptime: %d", m.UptimeMillis)
	}
}

// TestConcurrentMixedTraffic hammers the service with concurrent readers and
// writers; run with -race this is the subsystem's data-race proof, and it
// checks reads stay consistent (a segment response never references a vertex
// the graph doesn't have).
func TestConcurrentMixedTraffic(t *testing.T) {
	ts, store, ids := newTestServer(t)
	const (
		readers  = 8
		writers  = 2
		perGoro  = 25
		segEvery = 3
	)
	var wg sync.WaitGroup
	errCh := make(chan error, readers+writers)

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < perGoro; i++ {
				switch i % segEvery {
				case 0:
					req := SegmentRequest{
						Src: []uint32{uint32(ids["dataset"])},
						Dst: []uint32{uint32(ids["model-v2"])},
					}
					b, _ := json.Marshal(req)
					resp, err := http.Post(ts.URL+"/segment", "application/json", bytes.NewReader(b))
					if err != nil {
						errCh <- err
						return
					}
					var seg SegmentResponse
					err = json.NewDecoder(resp.Body).Decode(&seg)
					resp.Body.Close()
					if err != nil {
						errCh <- err
						return
					}
					if resp.StatusCode != 200 {
						errCh <- fmt.Errorf("segment status %d", resp.StatusCode)
						return
					}
					n := store.Stats().Vertices
					for _, v := range seg.Vertices {
						if int(v.ID) >= n {
							errCh <- fmt.Errorf("segment vertex %d beyond graph size %d", v.ID, n)
							return
						}
					}
				case 1:
					b, _ := json.Marshal(QueryRequest{Query: "match (e:E) where id(e) in [0, 1] return e"})
					resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(b))
					if err != nil {
						errCh <- err
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				default:
					resp, err := http.Get(ts.URL + "/stats")
					if err != nil {
						errCh <- err
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}(r)
	}
	for wr := 0; wr < writers; wr++ {
		wg.Add(1)
		go func(wr int) {
			defer wg.Done()
			for i := 0; i < perGoro; i++ {
				req := IngestRequest{Ops: []IngestOp{
					{Op: "run", Agent: fmt.Sprintf("w%d", wr), Command: fmt.Sprintf("step-%d", i),
						Inputs: []uint32{uint32(ids["dataset"])}, Outputs: []string{fmt.Sprintf("art-%d", wr)}},
				}}
				b, _ := json.Marshal(req)
				resp, err := http.Post(ts.URL+"/ingest", "application/json", bytes.NewReader(b))
				if err != nil {
					errCh <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					errCh <- fmt.Errorf("ingest status %d", resp.StatusCode)
					return
				}
			}
		}(wr)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	st := store.Stats()
	if st.Writes != writers*perGoro {
		t.Fatalf("want %d committed writes, got %d", writers*perGoro, st.Writes)
	}
	if err := func() (err error) { store.View(func(p *prov.Graph) { err = p.Validate() }); return }(); err != nil {
		t.Fatalf("graph invalid after concurrent traffic: %v", err)
	}
}
