package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
)

// fetchText GETs a URL with optional headers and returns status, headers and
// body.
func fetchText(t *testing.T, url string, hdr map[string]string) (int, http.Header, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, string(body)
}

// TestPrometheusExposition is the golden test for the text exposition:
// metric names and label sets must stay stable (dashboards and scrape
// configs depend on them), and the whole body must be valid text format —
// every line is re-parsed by the tiny validator the CI scrape check uses.
func TestPrometheusExposition(t *testing.T) {
	reg, _, err := OpenRegistry(RegistryOptions{
		DataDir:         t.TempDir(),
		CheckpointEvery: 1 << 30,
		CacheCap:        8,
	}, []string{"audit"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	ts := httptest.NewServer(NewMultiServerWith(reg, Options{}))
	defer ts.Close()

	// Traffic: ingest into both stores (exercises the commit pipeline),
	// a read, and a client error.
	dataset, model := seedShard(t, ts.URL, DefaultStore)
	seedShard(t, ts.URL, "audit")
	if code := doJSON(t, http.MethodPost, ts.URL+"/segment",
		SegmentRequest{Src: []uint32{dataset}, Dst: []uint32{model}}, nil); code != http.StatusOK {
		t.Fatalf("segment status %d", code)
	}
	if code := doJSON(t, http.MethodPost, ts.URL+"/ingest", IngestRequest{}, nil); code != http.StatusBadRequest {
		t.Fatalf("empty ingest status %d, want 400", code)
	}

	code, hdr, body := fetchText(t, ts.URL+"/metrics?format=prometheus", nil)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, obs.PromContentType)
	}
	samples, err := obs.ParseExposition(strings.NewReader(body))
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}

	// The stable series contract: these exact sample lines must exist.
	for _, want := range []string{
		`provd_epoch{store="default"}`,
		`provd_epoch{store="audit"}`,
		`provd_graph_vertices{store="default"}`,
		`provd_uptime_seconds{store="audit"}`,
		`provd_requests_routed_total{store="default",endpoint="ingest"}`,
		`provd_requests_total{store="default",endpoint="ingest",class="2xx"}`,
		`provd_requests_total{store="default",endpoint="ingest",class="4xx"}`,
		`provd_requests_total{store="audit",endpoint="segment",class="5xx"}`,
		`provd_request_latency_seconds_bucket{store="default",endpoint="ingest",le="+Inf"}`,
		`provd_request_latency_seconds_count{store="default",endpoint="ingest"}`,
		`provd_request_latency_quantile_seconds{store="default",endpoint="ingest",quantile="0.5"}`,
		`provd_request_latency_quantile_seconds{store="default",endpoint="ingest",quantile="0.99"}`,
		`provd_commit_stage_latency_seconds_bucket{store="default",stage="append",le="+Inf"}`,
		`provd_commit_stage_latency_seconds_count{store="default",stage="fsync"}`,
		`provd_commit_stage_latency_seconds_count{store="audit",stage="publish"}`,
		`provd_commit_stage_latency_quantile_seconds{store="default",stage="append",quantile="0.99"}`,
		`provd_cache_hits_total{store="default"}`,
		`provd_freeze_total{store="default",mode="incremental"}`,
		`provd_wal_records_total{store="default"}`,
		`provd_wal_fsyncs_total{store="audit"}`,
		`provd_checkpoints_total{store="default"}`,
		`provd_group_commit_groups_total{store="default"}`,
		`provd_group_commit_queue_wait_seconds_total{store="default"}`,
		`provd_group_commit_queue_wait_max_seconds{store="audit"}`,
		`provd_slow_queries_total`,
	} {
		if !strings.Contains(body, want+" ") {
			t.Errorf("missing series %s", want)
		}
	}

	// The ingest endpoints committed, so their quantile gauges and stage
	// histograms must carry samples; two stores must each contribute a
	// latency histogram per endpoint (11 endpoints x 2 stores).
	if got := samples["provd_request_latency_seconds_count"]; got != 22 {
		t.Errorf("latency _count series = %d, want 22", got)
	}
	if got := samples["provd_commit_stage_latency_seconds_count"]; got != 8 {
		t.Errorf("stage _count series = %d, want 8 (4 stages x 2 stores)", got)
	}

	// Accept-header negotiation selects the same exposition.
	_, hdr2, body2 := fetchText(t, ts.URL+"/metrics", map[string]string{"Accept": "text/plain"})
	if hdr2.Get("Content-Type") != obs.PromContentType {
		t.Fatalf("Accept negotiation ignored: %q", hdr2.Get("Content-Type"))
	}
	if _, err := obs.ParseExposition(strings.NewReader(body2)); err != nil {
		t.Fatalf("negotiated exposition does not parse: %v", err)
	}

	// The store-scoped spelling exposes only that store.
	_, _, scoped := fetchText(t, ts.URL+"/stores/audit/metrics?format=prometheus", nil)
	if strings.Contains(scoped, `store="default"`) {
		t.Error("store-scoped exposition leaked another store")
	}
	if !strings.Contains(scoped, `provd_epoch{store="audit"}`) {
		t.Error("store-scoped exposition missing its own store")
	}

	// And the JSON panel stays the default, now carrying the endpoint and
	// stage breakdowns.
	_, hdrJSON, bodyJSON := fetchText(t, ts.URL+"/metrics", nil)
	if ct := hdrJSON.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("default /metrics Content-Type = %q", ct)
	}
	var m MetricsResponse
	if err := json.Unmarshal([]byte(bodyJSON), &m); err != nil {
		t.Fatalf("default /metrics not JSON: %v", err)
	}
	ing := m.Endpoints["ingest"]
	if ing.OK == 0 || ing.ClientErr == 0 || ing.Latency.Count == 0 {
		t.Errorf("JSON endpoint panel not populated: %+v", ing)
	}
	if m.Stages["append"].Count == 0 || m.Stages["publish"].Count == 0 {
		t.Errorf("JSON stage panel not populated: %+v", m.Stages)
	}
	if m.WAL == nil || !strings.Contains(bodyJSON, `"queue_wait_total_ns"`) {
		t.Error("JSON group-commit panel missing queue-wait counters")
	}
}
