package server

import (
	"fmt"
	"net/http"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/prov"
)

// checkSegmentConsistent asserts a segment response is internally
// consistent with one snapshot: the counts match the payload, every edge
// endpoint is a listed vertex, and every id is below the response's own
// vertex horizon (vertex ids are dense, so a mixed-epoch response would
// reference ids past the epoch it claims).
func checkSegmentConsistent(t *testing.T, r *SegmentResponse) {
	t.Helper()
	if r.NumVertices != len(r.Vertices) || r.NumEdges != len(r.Edges) {
		t.Errorf("segment counts disagree with payload: %d/%d vs %d/%d",
			r.NumVertices, r.NumEdges, len(r.Vertices), len(r.Edges))
		return
	}
	in := make(map[uint32]bool, len(r.Vertices))
	for _, v := range r.Vertices {
		in[v.ID] = true
	}
	for _, e := range r.Edges {
		if !in[e.Src] || !in[e.Dst] {
			t.Errorf("segment edge %d (%d->%d) references a vertex outside the segment", e.ID, e.Src, e.Dst)
			return
		}
	}
}

// TestIngestVersusReadsUnderRace hammers Store.Update via /ingest while
// readers issue /segment, /adjust and /metrics. Under -race this is the
// epoch-swap soundness proof for the incremental freeze path on the commit
// hot loop; the assertions check every response is internally consistent
// with some single epoch (monotone watermarks per epoch, self-contained
// segments).
func TestIngestVersusReadsUnderRace(t *testing.T) {
	ts, store, ids := newTestServer(t)
	const (
		writers = 2
		readers = 3
		rounds  = 25
	)
	var wg sync.WaitGroup

	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				req := IngestRequest{Ops: []IngestOp{
					{Op: "agent", Agent: fmt.Sprintf("w%d", w)},
					{Op: "run", Agent: fmt.Sprintf("w%d", w), Command: "hammer",
						Inputs:  []uint32{uint32(ids["dataset"])},
						Outputs: []string{fmt.Sprintf("art-%d-%d", w, i)}},
				}}
				var resp IngestResponse
				if code := doJSON(t, http.MethodPost, ts.URL+"/ingest", req, &resp); code != http.StatusOK {
					t.Errorf("ingest status %d", code)
					return
				}
				if resp.Edges == 0 || resp.Vertices == 0 {
					t.Error("ingest reply missing commit watermark")
					return
				}
			}
		}()
	}

	seg := SegmentRequest{
		Src: []uint32{uint32(ids["dataset"])},
		Dst: []uint32{uint32(ids["model-v2"])},
	}
	adj := AdjustRequest{Segment: seg, ExcludeKinds: []string{"U"}}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// vertices/edges per observed epoch, to catch a torn epoch
			// (same N, different watermark) and non-monotone swaps.
			seen := map[uint64][2]int{}
			maxEpoch := uint64(0)
			for i := 0; i < rounds; i++ {
				var sr SegmentResponse
				if code := doJSON(t, http.MethodPost, ts.URL+"/segment", seg, &sr); code != http.StatusOK {
					t.Errorf("segment status %d", code)
					return
				}
				checkSegmentConsistent(t, &sr)

				var ar SegmentResponse
				if code := doJSON(t, http.MethodPost, ts.URL+"/adjust", adj, &ar); code != http.StatusOK {
					t.Errorf("adjust status %d", code)
					return
				}
				checkSegmentConsistent(t, &ar)
				for _, v := range ar.Vertices {
					if v.Kind == "U" {
						t.Error("adjust response leaked an excluded agent")
						return
					}
				}

				var m MetricsResponse
				if code := doJSON(t, http.MethodGet, ts.URL+"/metrics", nil, &m); code != http.StatusOK {
					t.Errorf("metrics status %d", code)
					return
				}
				if got, ok := seen[m.Epoch]; ok && (got[0] != m.Vertices || got[1] != m.Edges) {
					t.Errorf("epoch %d reported two watermarks: %v vs %d/%d", m.Epoch, got, m.Vertices, m.Edges)
					return
				}
				seen[m.Epoch] = [2]int{m.Vertices, m.Edges}
				if m.Epoch < maxEpoch {
					t.Errorf("epoch went backwards: %d after %d", m.Epoch, maxEpoch)
					return
				}
				maxEpoch = m.Epoch
			}
		}()
	}
	wg.Wait()

	// Every committed batch built its snapshot by extending the previous
	// epoch: the hammer loop must never have fallen back to a full rebuild
	// (the only full build is NewStore's epoch 0).
	fs := store.FreezeStatsSnapshot()
	if fs.Full != 1 {
		t.Errorf("commit path fell back to full rebuilds: %+v", fs)
	}
	if fs.Incremental != uint64(writers*rounds) {
		t.Errorf("incremental freeze count: want %d, got %+v", writers*rounds, fs)
	}

	// Cross-epoch watermark monotonicity over everything any reader saw.
	var m MetricsResponse
	doJSON(t, http.MethodGet, ts.URL+"/metrics", nil, &m)
	if m.Epoch != uint64(writers*rounds) {
		t.Errorf("final epoch: want %d, got %d", writers*rounds, m.Epoch)
	}
}

// TestCacheAcrossBackToBackIngests pins down the interleaving where two
// commits land between a reader's snapshot load (the "cache lookup" half)
// and the cache's epoch tag check: entries must survive exactly the deltas
// that leave their support untouched, chained across *consecutive* commits;
// and a reader pinned to a pre-commit epoch must neither be served a
// newer-epoch entry nor poison the cache with its stale solve.
func TestCacheAcrossBackToBackIngests(t *testing.T) {
	p, ids := testLifecycle()
	store := NewStore(p, 16)
	q := core.Query{
		Src: []graph.VertexID{ids["dataset"]},
		Dst: []graph.VertexID{ids["model-v2"]},
	}
	// side commits one disconnected batch (new agent, no inputs): its delta
	// cannot touch any existing support set.
	side := func(i int) {
		t.Helper()
		if err := store.Update(func(rec *prov.Recorder) error {
			rec.Run(fmt.Sprintf("side%d", i), "side-work", nil, []string{fmt.Sprintf("side-art-%d", i)})
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	// fresh solves q against the current snapshot with no cache involved.
	fresh := func() *core.Segment {
		t.Helper()
		seg, err := core.NewEngine(store.Epoch().P, core.Options{}).Segment(q)
		if err != nil {
			t.Fatal(err)
		}
		return seg
	}

	// Prime the cache, then pin the pre-commit epoch the way a slow reader
	// (or a multi-segment /summarize) would.
	if _, cached, err := store.Segment(q, core.Options{}, true); err != nil || cached {
		t.Fatalf("prime: cached=%v err=%v", cached, err)
	}
	ep0 := store.Epoch()

	// Two back-to-back commits, both support-untouching: the entry must be
	// revalidated across BOTH advances and still be served as a hit, with a
	// result identical to a fresh solve at the new epoch.
	side(1)
	side(2)
	seg, cached, err := store.Segment(q, core.Options{}, true)
	if err != nil || !cached {
		t.Fatalf("entry did not survive two untouching commits: cached=%v err=%v", cached, err)
	}
	want := fresh()
	if fmt.Sprint(seg.Vertices) != fmt.Sprint(want.Vertices) || fmt.Sprint(seg.Edges) != fmt.Sprint(want.Edges) {
		t.Fatal("revalidated entry diverged from a fresh solve at the new epoch")
	}
	if cs := store.CacheStats(); cs.Revalidations != 2 || cs.Invalidations != 0 {
		t.Fatalf("want 2 revalidations across back-to-back commits, got %+v", cs)
	}

	// The pinned reader resolves the same query at its old epoch: the
	// resident entry is tagged two epochs ahead, so serving it would leak
	// future state — the lookup must miss and re-solve against ep0.
	segStale, cachedStale, err := store.segmentAt(ep0, q, core.Options{}, true)
	if err != nil {
		t.Fatal(err)
	}
	if cachedStale {
		t.Fatal("reader pinned at an old epoch was served a newer-epoch cache entry")
	}
	if segStale.P != ep0.P {
		t.Fatal("stale-epoch solve ran against the wrong snapshot")
	}
	// And its stale add must not have displaced the current-epoch entry.
	if _, cached, _ := store.Segment(q, core.Options{}, true); !cached {
		t.Fatal("stale-epoch solve poisoned the current-epoch cache entry")
	}

	// Back-to-back pair where only the SECOND delta touches the support
	// set: the chained revalidation must purge the entry (a lookup that
	// only checked the first delta would wrongly serve it).
	side(3)
	if err := store.Update(func(rec *prov.Recorder) error {
		rec.Run("alice", "retrain", []graph.VertexID{ids["model-v2"]}, []string{"model"})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	seg, cached, err = store.Segment(q, core.Options{}, true)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("entry survived a chained commit pair whose second delta touched its support")
	}
	want = fresh()
	if fmt.Sprint(seg.Vertices) != fmt.Sprint(want.Vertices) || fmt.Sprint(seg.Edges) != fmt.Sprint(want.Edges) {
		t.Fatal("re-solve after purge diverged from a fresh solve")
	}
	if cs := store.CacheStats(); cs.Invalidations != 1 {
		t.Fatalf("want 1 invalidation from the touching delta, got %+v", cs)
	}
}
