package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/prov"
	"repro/internal/wal"
)

// Sharding tests: the multi-store registry, the /stores/{name} routing, and
// — the heart of it — the cross-shard isolation hammer: N stores ingesting
// and serving concurrently must behave exactly like N daemons that have
// never heard of each other. The stores are deliberately seeded with
// IDENTICAL vertex-id structure but store-specific names, so every shard
// produces the same segment-cache keys: any cache entry leaking across
// stores would surface as another store's artifact names in a response.

func TestValidStoreName(t *testing.T) {
	for name, want := range map[string]bool{
		"default": true, "a": true, "A-1_b": true, strings.Repeat("x", 64): true,
		"": false, strings.Repeat("x", 65): false, "a/b": false, "..": false,
		".": false, "a.b": false, "a b": false, "ü": false, "a\x00b": false,
	} {
		if got := ValidStoreName(name); got != want {
			t.Errorf("ValidStoreName(%q) = %v, want %v", name, got, want)
		}
	}
}

// seedShard primes one store over HTTP with the shared id structure:
// vertex 0 = dataset entity, an activity, and a model output — names
// prefixed with the store name. Returns dataset and model vertex ids.
func seedShard(t *testing.T, url, store string) (dataset, model uint32) {
	t.Helper()
	req := IngestRequest{Ops: []IngestOp{
		{Op: "import", Agent: "u-" + store, Artifact: store + "-dataset", URL: "http://x/" + store},
	}}
	var resp IngestResponse
	if code := doJSON(t, http.MethodPost, url+"/stores/"+store+"/ingest", req, &resp); code != http.StatusOK {
		t.Fatalf("seed %s: status %d", store, code)
	}
	dataset = resp.Results[0].ID
	req = IngestRequest{Ops: []IngestOp{
		{Op: "run", Agent: "u-" + store, Command: store + "-train",
			Inputs: []uint32{dataset}, Outputs: []string{store + "-model"}},
	}}
	if code := doJSON(t, http.MethodPost, url+"/stores/"+store+"/ingest", req, &resp); code != http.StatusOK {
		t.Fatalf("seed %s: status %d", store, code)
	}
	return dataset, resp.Results[0].Outputs[0]
}

// TestCrossShardIsolationHammer runs concurrent ingest, /segment, /adjust
// and /metrics traffic against 4 durable stores behind one server (group
// commit on, fsync=always) and asserts, per store: epochs only ever move
// forward, every response carries only that store's artifacts (no cache
// bleed despite identical cache keys across shards), and the final request
// and write counters match exactly what was sent to that store (no metrics
// bleed).
func TestCrossShardIsolationHammer(t *testing.T) {
	reg, _, err := OpenRegistry(RegistryOptions{
		DataDir:         t.TempDir(),
		CheckpointEvery: 1 << 30,
		CacheCap:        32,
	}, []string{"s1", "s2", "s3"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	srv := NewMultiServer(reg)
	if srv.Registry() != reg || srv.Store() != reg.Default() {
		t.Fatal("server accessors disagree with the registry")
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	stores := []string{DefaultStore, "s1", "s2", "s3"}
	const (
		writers = 2
		readers = 2
		rounds  = 10
	)
	type shardIDs struct{ dataset, model uint32 }
	ids := map[string]shardIDs{}
	for _, name := range stores {
		d, m := seedShard(t, ts.URL, name)
		ids[name] = shardIDs{dataset: d, model: m}
		if d != ids[stores[0]].dataset || m != ids[stores[0]].model {
			t.Fatalf("store %s seeded different ids (%d,%d): the bleed check needs identical cache keys", name, d, m)
		}
	}

	var wg sync.WaitGroup
	for _, name := range stores {
		name := name
		base := ts.URL + "/stores/" + name
		for w := 0; w < writers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < rounds; i++ {
					req := IngestRequest{Ops: []IngestOp{
						{Op: "run", Agent: "u-" + name, Command: name + "-hammer",
							Inputs:  []uint32{ids[name].dataset},
							Outputs: []string{fmt.Sprintf("%s-art-%d-%d", name, w, i)}},
					}}
					var resp IngestResponse
					if code := doJSON(t, http.MethodPost, base+"/ingest", req, &resp); code != http.StatusOK {
						t.Errorf("%s: ingest status %d", name, code)
						return
					}
				}
			}()
		}
		seg := SegmentRequest{Src: []uint32{ids[name].dataset}, Dst: []uint32{ids[name].model}}
		adj := AdjustRequest{Segment: seg, ExcludeKinds: []string{"U"}}
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				maxEpoch := uint64(0)
				for i := 0; i < rounds; i++ {
					for _, req := range []struct {
						path string
						body any
					}{{"/segment", seg}, {"/adjust", adj}} {
						var sr SegmentResponse
						if code := doJSON(t, http.MethodPost, base+req.path, req.body, &sr); code != http.StatusOK {
							t.Errorf("%s%s: status %d", name, req.path, code)
							return
						}
						checkSegmentConsistent(t, &sr)
						for _, v := range sr.Vertices {
							if v.Name != "" && !strings.HasPrefix(v.Name, name+"-") && !strings.HasPrefix(v.Name, "u-"+name) {
								t.Errorf("%s%s: response leaked foreign vertex %q", name, req.path, v.Name)
								return
							}
						}
					}
					var m MetricsResponse
					if code := doJSON(t, http.MethodGet, base+"/metrics", nil, &m); code != http.StatusOK {
						t.Errorf("%s: metrics status %d", name, code)
						return
					}
					if m.Store != name {
						t.Errorf("metrics for %s claim store %q", name, m.Store)
						return
					}
					if m.Epoch < maxEpoch {
						t.Errorf("%s: epoch went backwards: %d after %d", name, m.Epoch, maxEpoch)
						return
					}
					maxEpoch = m.Epoch
				}
			}()
		}
	}
	wg.Wait()

	// Exact post-hammer accounting, per store. Any counter bleeding between
	// shards breaks at least one equality.
	for _, name := range stores {
		var m MetricsResponse
		if code := doJSON(t, http.MethodGet, ts.URL+"/stores/"+name+"/metrics", nil, &m); code != http.StatusOK {
			t.Fatalf("%s: final metrics status %d", name, code)
		}
		wantEpoch := uint64(2 + writers*rounds) // 2 seed batches + hammer writes
		if m.Epoch != wantEpoch {
			t.Errorf("%s: final epoch %d, want %d", name, m.Epoch, wantEpoch)
		}
		want := map[string]uint64{
			"ingest":  2 + writers*rounds,
			"segment": readers * rounds,
			"adjust":  readers * rounds,
			"metrics": readers*rounds + 1, // + this snapshot itself
		}
		for ep, n := range want {
			if m.Requests[ep] != n {
				t.Errorf("%s: %s count %d, want %d", name, ep, m.Requests[ep], n)
			}
		}
		if m.WAL == nil || m.WAL.Records != wantEpoch {
			t.Errorf("%s: wal panel %+v, want %d records", name, m.WAL, wantEpoch)
		}
		// The shard's cache answered only its own lookups: hits+misses is
		// exactly the number of cacheable reads routed here.
		if lookups := m.Cache.Hits + m.Cache.Misses; lookups != uint64(2*readers*rounds) {
			t.Errorf("%s: cache saw %d lookups, want %d", name, lookups, 2*readers*rounds)
		}
	}
}

// TestStoreLifecycleHTTP covers PUT /stores/{name} (create, idempotent
// re-create) and GET /stores.
func TestStoreLifecycleHTTP(t *testing.T) {
	ts, _, _ := newTestServer(t)

	var created StoreCreateResponse
	if code := doJSON(t, http.MethodPut, ts.URL+"/stores/audit", nil, &created); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	if !created.Created || created.Store != "audit" || created.Epoch != 0 {
		t.Fatalf("create reply: %+v", created)
	}
	if code := doJSON(t, http.MethodPut, ts.URL+"/stores/audit", nil, &created); code != http.StatusOK {
		t.Fatalf("re-create: status %d", code)
	}
	if created.Created {
		t.Fatal("re-create claimed to create")
	}

	var errResp ErrorResponse
	if code := doJSON(t, http.MethodPut, ts.URL+"/stores/no.dots", nil, &errResp); code != http.StatusBadRequest {
		t.Fatalf("invalid name: status %d", code)
	}
	if errResp.Error == "" {
		t.Fatal("invalid-name error has no message")
	}

	// The new store serves immediately and is independent of the default.
	var ing IngestResponse
	req := IngestRequest{Ops: []IngestOp{{Op: "snapshot", Artifact: "ledger"}}}
	if code := doJSON(t, http.MethodPost, ts.URL+"/stores/audit/ingest", req, &ing); code != http.StatusOK {
		t.Fatalf("ingest into created store: status %d", code)
	}

	var list StoreListResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/stores", nil, &list); code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	if len(list.Stores) != 2 || list.Stores[0].Name != DefaultStore || list.Stores[1].Name != "audit" {
		t.Fatalf("store list: %+v", list)
	}
	if list.Stores[1].Epoch != 1 || list.Stores[1].Vertices != 1 {
		t.Fatalf("created store state: %+v", list.Stores[1])
	}
	if list.Stores[0].Epoch != 0 {
		t.Fatalf("default store moved: %+v", list.Stores[0])
	}
}

// TestUnknownStore404Shape asserts every store-scoped endpoint rejects an
// unknown (or unspellable) store name with 404 and the uniform JSON error
// shape.
func TestUnknownStore404Shape(t *testing.T) {
	ts, _, _ := newTestServer(t)
	endpoints := []struct {
		method, path string
		body         any
	}{
		{http.MethodPost, "/segment", SegmentRequest{Src: []uint32{0}, Dst: []uint32{1}}},
		{http.MethodPost, "/summarize", SummarizeRequest{Segments: []SegmentSpec{{Src: []uint32{0}, Dst: []uint32{1}}}}},
		{http.MethodPost, "/query", QueryRequest{Query: "match (e:E) return e"}},
		{http.MethodPost, "/adjust", AdjustRequest{Segment: SegmentRequest{Src: []uint32{0}, Dst: []uint32{1}}, ExcludeKinds: []string{"U"}}},
		{http.MethodPost, "/ingest", IngestRequest{Ops: []IngestOp{{Op: "agent", Agent: "x"}}}},
		{http.MethodGet, "/stats", nil},
		{http.MethodGet, "/metrics", nil},
		{http.MethodGet, "/healthz", nil},
		{http.MethodGet, "/export", nil},
	}
	for _, name := range []string{"ghost", "UPPER-but-missing", "0"} {
		for _, ep := range endpoints {
			var errResp ErrorResponse
			code := doJSON(t, ep.method, ts.URL+"/stores/"+name+ep.path, ep.body, &errResp)
			if code != http.StatusNotFound {
				t.Errorf("%s /stores/%s%s: status %d, want 404", ep.method, name, ep.path, code)
				continue
			}
			if !strings.Contains(errResp.Error, "unknown store") || !strings.Contains(errResp.Error, name) {
				t.Errorf("%s /stores/%s%s: error %q lacks the uniform shape", ep.method, name, ep.path, errResp.Error)
			}
		}
	}
}

// TestStoreCreateValidation400Shape asserts PUT /stores/{name} rejects
// hostile or malformed input with the uniform JSON 400 envelope BEFORE
// touching the data directory: no store appears in the registry and no
// subdirectory is created, for bad names and bad bodies alike.
func TestStoreCreateValidation400Shape(t *testing.T) {
	dir := t.TempDir()
	reg, _, err := OpenRegistry(RegistryOptions{DataDir: dir, CacheCap: 8}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	ts := httptest.NewServer(NewMultiServer(reg))
	defer ts.Close()

	dataDirEntries := func() []string {
		t.Helper()
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		var names []string
		for _, e := range entries {
			names = append(names, e.Name())
		}
		return names
	}
	before := dataDirEntries()

	// Bad names, escaped so each stays one path segment on the wire. The
	// traversal spellings ("..", "a/b") are unroutable by construction —
	// TestValidStoreName covers the validator directly — so the table holds
	// the shapes that DO reach the handler.
	badNames := []struct{ label, escaped string }{
		{"dots", "no.dots"},
		{"space", "sp%20ace"},
		{"unicode", "%C3%BC"},
		{"plus", "a+b"},
		{"overlong", strings.Repeat("x", 65)},
	}
	for _, tc := range badNames {
		var errResp ErrorResponse
		code := doJSON(t, http.MethodPut, ts.URL+"/stores/"+tc.escaped, nil, &errResp)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.label, code)
			continue
		}
		if !strings.Contains(errResp.Error, "invalid store name") {
			t.Errorf("%s: error %q lacks the uniform envelope", tc.label, errResp.Error)
		}
	}

	// Bad bodies on a VALID new name: validated before Create, so the store
	// must not exist afterward in the registry or on disk.
	badBodies := []struct {
		label string
		body  string
	}{
		{"syntax", `{`},
		{"unknown-field", `{"qoz":{}}`},
		{"negative-rate", `{"qos":{"rate_per_sec":-1}}`},
		{"burst-without-rate", `{"qos":{"burst":3}}`},
		{"queue-over-cap", `{"qos":{"max_queue":100000}}`},
		{"wrong-type", `{"qos":{"rate_per_sec":"fast"}}`},
	}
	for _, tc := range badBodies {
		req, err := http.NewRequest(http.MethodPut, ts.URL+"/stores/ghost", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var errResp ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&errResp); err != nil {
			t.Fatalf("%s: non-JSON error body: %v", tc.label, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.label, resp.StatusCode)
		}
		if errResp.Error == "" {
			t.Errorf("%s: empty error envelope", tc.label)
		}
		if _, err := reg.Get("ghost"); err == nil {
			t.Fatalf("%s: a rejected PUT created the store", tc.label)
		}
	}
	if after := dataDirEntries(); !reflect.DeepEqual(before, after) {
		t.Fatalf("rejected PUTs touched the data directory: %v -> %v", before, after)
	}

	// Control: the same name with a well-formed body creates exactly one
	// subdirectory.
	var created StoreCreateResponse
	if code := doJSON(t, http.MethodPut, ts.URL+"/stores/ghost",
		StoreCreateRequest{QoS: &QoSConfig{RatePerSec: 100}}, &created); code != http.StatusCreated {
		t.Fatalf("control create: status %d", code)
	}
	if _, err := os.Stat(filepath.Join(dir, "ghost")); err != nil {
		t.Fatalf("control create left no directory: %v", err)
	}
}

// TestRegistryDirectoryTreeRecovery boots a durable registry, ingests into
// three stores, closes, and reopens WITHOUT naming them: the directory scan
// must find and recover each store to its exact pre-shutdown epoch.
func TestRegistryDirectoryTreeRecovery(t *testing.T) {
	dir := t.TempDir()
	opts := RegistryOptions{DataDir: dir, CheckpointEvery: 4, CacheCap: 8}
	reg, rcvs, err := OpenRegistry(opts, []string{"a", "b"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rcvs) != 3 || rcvs[0].Name != DefaultStore || !rcvs[0].Rcv.Fresh {
		t.Fatalf("initial open: %+v", rcvs)
	}
	epochs := map[string]uint64{DefaultStore: 2, "a": 5, "b": 3}
	for name, n := range epochs {
		s, err := reg.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < n; i++ {
			if err := s.Update(func(rec *prov.Recorder) error {
				rec.Snapshot(fmt.Sprintf("%s-%d", name, i))
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	reg2, rcvs2, err := OpenRegistry(opts, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer reg2.Close()
	if len(rcvs2) != 3 {
		t.Fatalf("reopen found %d stores: %+v", len(rcvs2), rcvs2)
	}
	for name, n := range epochs {
		s, err := reg2.Get(name)
		if err != nil {
			t.Fatalf("store %q not recovered: %v", name, err)
		}
		if got := s.Epoch().N; got != n {
			t.Errorf("store %q recovered epoch %d, want %d", name, got, n)
		}
		if got := s.Epoch().Vertices; got != int(n) {
			t.Errorf("store %q recovered %d vertices, want %d", name, got, n)
		}
	}
	if names := reg2.Names(); len(names) != 3 || names[0] != DefaultStore {
		t.Fatalf("names after reopen: %v", names)
	}
}

// TestRegistryAdoptsLegacyLayout points a registry at a pre-sharding data
// directory (WAL + checkpoints directly in the root) and expects the
// default store to adopt it in place.
func TestRegistryAdoptsLegacyLayout(t *testing.T) {
	dir := t.TempDir()
	s, _, err := OpenDurable(DurableOptions{Dir: dir, CacheCap: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Update(func(rec *prov.Recorder) error {
			rec.Snapshot(fmt.Sprintf("legacy-%d", i))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	reg, rcvs, err := OpenRegistry(RegistryOptions{DataDir: dir, CacheCap: 8}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	if len(rcvs) != 1 || rcvs[0].Rcv.Fresh || rcvs[0].Rcv.Epoch != 3 {
		t.Fatalf("legacy adoption: %+v", rcvs)
	}
	if got := reg.Default().Epoch().N; got != 3 {
		t.Fatalf("adopted default at epoch %d, want 3", got)
	}
	// New sibling stores nest beneath the legacy root without clashing.
	if _, created, err := reg.Create("side"); err != nil || !created {
		t.Fatalf("create beside legacy state: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "side")); err != nil {
		t.Fatalf("side store directory: %v", err)
	}
	reg.Close()

	// State both directly in the root AND under <root>/default/ is
	// ambiguous: opening must refuse rather than silently shadow one graph
	// with the other.
	sub, _, err := OpenDurable(DurableOptions{Dir: filepath.Join(dir, DefaultStore), CacheCap: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Update(func(rec *prov.Recorder) error {
		rec.Snapshot("shadowed")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := sub.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenRegistry(RegistryOptions{DataDir: dir, CacheCap: 8}, nil, nil); err == nil ||
		!strings.Contains(err.Error(), "both directly") {
		t.Fatalf("ambiguous default layout accepted: %v", err)
	}
}

// TestRegistryCreateDurable creates a store at runtime on a durable
// registry and restarts: the created store must come back.
func TestRegistryCreateDurable(t *testing.T) {
	dir := t.TempDir()
	opts := RegistryOptions{DataDir: dir, Fsync: wal.SyncAlways, CacheCap: 8}
	reg, _, err := OpenRegistry(opts, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, created, err := reg.Create("runtime")
	if err != nil || !created {
		t.Fatalf("create: %v (created=%v)", err, created)
	}
	if err := st.Update(func(rec *prov.Recorder) error {
		rec.Snapshot("thing")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, again, err := reg.Create("runtime"); err != nil || again {
		t.Fatalf("re-create: %v (created=%v)", err, again)
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	reg2, _, err := OpenRegistry(opts, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer reg2.Close()
	s2, err := reg2.Get("runtime")
	if err != nil {
		t.Fatal(err)
	}
	if s2.Epoch().N != 1 || s2.Epoch().Vertices != 1 {
		t.Fatalf("runtime store after restart: epoch %d, %d vertices", s2.Epoch().N, s2.Epoch().Vertices)
	}
}
