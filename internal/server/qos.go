package server

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Per-store admission control. Sharding isolates state but not resources:
// one hot store can monopolize the device and the committer pool and starve
// its neighbors. A store can therefore carry a QoSConfig — a token-bucket
// rate limit, an in-flight concurrency cap, and a staged-commit backlog cap
// — enforced before any work is done for the request. Rejections are
// instant (HTTP 429 with a Retry-After hint), so an overloaded store sheds
// load at the door instead of queueing it into everyone else's latency.
//
// The hot path is lock-free: the rate limit is a GCRA (virtual-scheduling
// token bucket) over one atomic timestamp, the concurrency cap one atomic
// counter. Configuration updates swap the whole limiter atomically, so
// Admit never sees a half-updated config.

// Typed write-path errors the HTTP layer maps to status codes.
var (
	// ErrBackpressure reports a commit queue at its configured cap; the
	// batch was rejected before mutating the graph. Maps to 429.
	ErrBackpressure = errors.New("commit queue at capacity")
	// ErrStoreClosed reports a write landing on a store that is shutting
	// down. Maps to 503.
	ErrStoreClosed = errors.New("store is closed")
)

// QoSConfig is a store's admission policy. The zero value imposes no
// limits; each field is independent and <= 0 disables that limit.
type QoSConfig struct {
	// RatePerSec caps admitted requests per second (token bucket).
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Burst is the bucket depth: how many requests may be admitted
	// back-to-back from idle. Defaults to max(1, floor(RatePerSec)).
	Burst int `json:"burst,omitempty"`
	// MaxConcurrent caps requests simultaneously in flight on this store.
	MaxConcurrent int `json:"max_concurrent,omitempty"`
	// MaxQueue caps the staged group-commit backlog: an ingest arriving
	// with this many batches already staged is rejected (429) before it
	// mutates the graph, instead of parking on an unbounded queue. Capped
	// by the channel bound (commitQueueCap).
	MaxQueue int `json:"max_queue,omitempty"`
}

// limited reports whether any limit is active.
func (c QoSConfig) limited() bool {
	return c.RatePerSec > 0 || c.MaxConcurrent > 0 || c.MaxQueue > 0
}

// Validate rejects configurations that cannot mean anything: negative
// fields, or a burst without a rate to refill it.
func (c QoSConfig) Validate() error {
	if c.RatePerSec < 0 || c.Burst < 0 || c.MaxConcurrent < 0 || c.MaxQueue < 0 {
		return errors.New("qos: limits must be >= 0")
	}
	if c.Burst > 0 && c.RatePerSec <= 0 {
		return errors.New("qos: burst requires rate_per_sec")
	}
	if c.MaxQueue > commitQueueCap {
		return fmt.Errorf("qos: max_queue above the commit queue bound %d", commitQueueCap)
	}
	return nil
}

// qosLimiter is one immutable admission policy instance. SetQoS builds a
// fresh limiter and swaps the store's pointer; in-flight requests release
// against the limiter that admitted them.
type qosLimiter struct {
	cfg  QoSConfig
	base time.Time
	// GCRA state: emission interval T = 1e9/rate ns, tolerance
	// tau = (burst-1)*T, and the theoretical arrival time of the next
	// conforming request (ns since base). A request at now conforms iff
	// tat - tau <= now; admitting advances tat by T.
	emissionNs int64
	tauNs      int64
	tat        atomic.Int64
	inflight   atomic.Int64
}

func newQoSLimiter(cfg QoSConfig) *qosLimiter {
	l := &qosLimiter{cfg: cfg, base: time.Now()}
	if cfg.RatePerSec > 0 {
		l.emissionNs = int64(1e9 / cfg.RatePerSec)
		if l.emissionNs < 1 {
			l.emissionNs = 1
		}
		if cfg.Burst <= 0 {
			l.cfg.Burst = int(cfg.RatePerSec)
			if l.cfg.Burst < 1 {
				l.cfg.Burst = 1
			}
		}
		l.tauNs = int64(l.cfg.Burst-1) * l.emissionNs
	}
	return l
}

// admitRate runs the GCRA check-and-advance. On rejection it returns how
// long until a request would conform.
func (l *qosLimiter) admitRate() (time.Duration, bool) {
	if l.emissionNs == 0 {
		return 0, true
	}
	now := time.Since(l.base).Nanoseconds()
	for {
		tat := l.tat.Load()
		if tat-l.tauNs > now {
			return time.Duration(tat - l.tauNs - now), false
		}
		next := tat
		if next < now {
			next = now
		}
		if l.tat.CompareAndSwap(tat, next+l.emissionNs) {
			return 0, true
		}
	}
}

// concRetryAfter is the Retry-After hint on concurrency-cap rejections,
// where no refill schedule exists to compute a precise one from.
const concRetryAfter = time.Second

// Admit applies the store's admission policy to one request. When admitted
// the caller must invoke release exactly once on completion; when rejected
// it should answer 429 with the Retry-After hint. Admission is checked
// before any request work happens, so a rejection costs two atomic ops.
func (s *Store) Admit() (release func(), retryAfter time.Duration, ok bool) {
	l := s.qos.Load()
	if l == nil {
		s.qosAdmitted.Add(1)
		return func() {}, 0, true
	}
	capped := l.cfg.MaxConcurrent > 0
	if capped {
		if l.inflight.Add(1) > int64(l.cfg.MaxConcurrent) {
			l.inflight.Add(-1)
			s.qosRejectedConc.Add(1)
			return nil, concRetryAfter, false
		}
	}
	if wait, rateOK := l.admitRate(); !rateOK {
		if capped {
			l.inflight.Add(-1)
		}
		s.qosRejectedRate.Add(1)
		return nil, wait, false
	}
	s.qosAdmitted.Add(1)
	if !capped {
		return func() {}, 0, true
	}
	var once sync.Once
	return func() { once.Do(func() { l.inflight.Add(-1) }) }, 0, true
}

// SetQoS replaces the store's admission policy atomically. A config with
// no active limits removes admission control. Requests already in flight
// release against the limiter that admitted them; the new limiter starts
// with an empty in-flight count.
func (s *Store) SetQoS(cfg QoSConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if !cfg.limited() {
		s.qos.Store(nil)
		return nil
	}
	s.qos.Store(newQoSLimiter(cfg))
	return nil
}

// QoSConfigSnapshot returns the active admission policy (zero when none).
func (s *Store) QoSConfigSnapshot() QoSConfig {
	if l := s.qos.Load(); l != nil {
		return l.cfg
	}
	return QoSConfig{}
}

// QoSStats is the /metrics admission panel: the active limits, the
// admit/reject split (rejections by cause), and the instantaneous
// pressure gauges.
type QoSStats struct {
	Config   QoSConfig `json:"config"`
	Admitted uint64    `json:"admitted"`
	Rejected uint64    `json:"rejected"`
	// Rejection causes: token-bucket rate, concurrency cap, commit-queue
	// backpressure (the only one charged on the write path, not at the
	// door).
	RejectedRate        uint64 `json:"rejected_rate"`
	RejectedConcurrency uint64 `json:"rejected_concurrency"`
	RejectedQueue       uint64 `json:"rejected_queue"`
	Inflight            int64  `json:"inflight"`
	QueueDepth          int    `json:"queue_depth"`
}

// QoSStatsSnapshot returns the admission counters.
func (s *Store) QoSStatsSnapshot() QoSStats {
	st := QoSStats{
		Admitted:            s.qosAdmitted.Load(),
		RejectedRate:        s.qosRejectedRate.Load(),
		RejectedConcurrency: s.qosRejectedConc.Load(),
		RejectedQueue:       s.qosRejectedQueue.Load(),
	}
	st.Rejected = st.RejectedRate + st.RejectedConcurrency + st.RejectedQueue
	if l := s.qos.Load(); l != nil {
		st.Config = l.cfg
		st.Inflight = l.inflight.Load()
	}
	if s.commitCh != nil {
		st.QueueDepth = len(s.commitCh)
	}
	return st
}
