package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"
)

// doJSONWithID is doJSON plus request-id plumbing: it sends the given
// X-Request-ID (when non-empty) and returns the echoed one with the status.
func doJSONWithID(t *testing.T, method, url, reqID string, body, out any) (int, string) {
	t.Helper()
	var reqBody io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		reqBody = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, reqBody)
	if err != nil {
		t.Fatal(err)
	}
	if reqID != "" {
		req.Header.Set("X-Request-ID", reqID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("bad response body %q: %v", raw, err)
		}
	}
	return resp.StatusCode, resp.Header.Get("X-Request-ID")
}

// TestQoSRejectionObservability proves admission rejections are first-class
// citizens of the observability pipeline: a 429 echoes the client's request
// id, carries a delay-seconds Retry-After, lands in the endpoint's
// status-class counters AND its latency histogram (so the hammer's
// totals == class-sum == histogram-count reconciliation stays exact under
// throttling), and shows up in the /metrics qos panel — while the exempt
// metrics/healthz endpoints keep answering on the throttled store.
func TestQoSRejectionObservability(t *testing.T) {
	reg, _, err := OpenRegistry(RegistryOptions{CacheCap: 8}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	ts := httptest.NewServer(NewMultiServer(reg))
	defer ts.Close()
	st := reg.Default()
	// One request per 10s, burst 1: the first /stats conforms, everything
	// after is a deterministic 429 for the remainder of the test.
	if err := st.SetQoS(QoSConfig{RatePerSec: 0.1, Burst: 1}); err != nil {
		t.Fatal(err)
	}

	code, echoed := doJSONWithID(t, http.MethodGet, ts.URL+"/stats", "qos-ok", nil, nil)
	if code != http.StatusOK || echoed != "qos-ok" {
		t.Fatalf("first request: status %d, id %q", code, echoed)
	}
	const rejects = 3
	for i := 0; i < rejects; i++ {
		id := fmt.Sprintf("qos-rej-%d", i)
		var errResp ErrorResponse
		code, echoed := doJSONWithID(t, http.MethodGet, ts.URL+"/stats", id, nil, &errResp)
		if code != http.StatusTooManyRequests {
			t.Fatalf("throttled request %d: status %d, want 429", i, code)
		}
		if echoed != id {
			t.Fatalf("429 %d echoed id %q, want %q", i, echoed, id)
		}
		if errResp.Error == "" {
			t.Fatalf("429 %d carried no JSON error envelope", i)
		}
	}
	// Raw request for the headers doJSONWithID does not surface: Retry-After
	// must be delay-seconds (an integer >= 1, within the 10s refill).
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/stats", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "qos-rej-raw")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("raw throttled request: status %d", resp.StatusCode)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 1 || secs > 10 {
		t.Fatalf("Retry-After %q, want an integer in [1,10]", resp.Header.Get("Retry-After"))
	}
	if got := resp.Header.Get("X-Request-ID"); got != "qos-rej-raw" {
		t.Fatalf("raw 429 echoed id %q", got)
	}

	// The exempt endpoints answer regardless — they are how a throttled
	// store is observed.
	for _, path := range []string{"/metrics", "/healthz"} {
		if code := doJSON(t, http.MethodGet, ts.URL+path, nil, &struct{}{}); code != http.StatusOK {
			t.Fatalf("exempt %s on a throttled store: status %d", path, code)
		}
	}

	// Exact reconciliation, including the rejections: classes and latency
	// record on completion, so poll briefly as the hammer does.
	const totalStats = 1 + rejects + 1 // the OK + the loop's 429s + the raw 429
	deadline := time.Now().Add(2 * time.Second)
	for {
		ep := st.EndpointStatsSnapshot()["stats"]
		if ep.Total == totalStats && ep.Total == ep.OK+ep.ClientErr+ep.ServerErr && ep.Latency.Count == totalStats {
			if ep.OK != 1 || ep.ClientErr != rejects+1 {
				t.Fatalf("stats classes: %+v, want 1 OK / %d client errors", ep, rejects+1)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("429s never reconciled into the endpoint counters: %+v", ep)
		}
		time.Sleep(5 * time.Millisecond)
	}
	var m MetricsResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/metrics", nil, &m); code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	if m.QoS.Admitted != 1 || m.QoS.RejectedRate != rejects+1 || m.QoS.Rejected != rejects+1 {
		t.Fatalf("qos panel: %+v", m.QoS)
	}
	if m.QoS.Config.RatePerSec != 0.1 {
		t.Fatalf("qos panel config: %+v", m.QoS.Config)
	}
}

// TestObservabilityHammer drives mixed load — successful ingest with
// client-supplied request ids, reads, and malformed requests — at 4 durable
// stores concurrently, then asserts the counters reconcile exactly: per
// store and endpoint, the routed total equals the status-class sum equals
// the latency histogram's sample count, with the class split matching the
// load that was sent. Run under -race this is also the proof that the
// atomics-only instrumentation is race-clean.
func TestObservabilityHammer(t *testing.T) {
	reg, _, err := OpenRegistry(RegistryOptions{
		DataDir:         t.TempDir(),
		CheckpointEvery: 1 << 30,
		CacheCap:        16,
	}, []string{"s1", "s2", "s3"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	// SlowThreshold 1ns: every request is "slow", so the ring and the stage
	// breakdown get exercised by the same load.
	ts := httptest.NewServer(NewMultiServerWith(reg, Options{
		SlowThreshold: time.Nanosecond,
		SlowRingCap:   32,
	}))
	defer ts.Close()

	stores := []string{DefaultStore, "s1", "s2", "s3"}
	type shardIDs struct{ dataset, model uint32 }
	ids := map[string]shardIDs{}
	for _, name := range stores {
		d, m := seedShard(t, ts.URL, name)
		ids[name] = shardIDs{dataset: d, model: m}
	}
	const (
		writers   = 2
		readers   = 2
		rounds    = 8
		badRounds = 4 // malformed ingests per store (the 4xx population)
	)

	var wg sync.WaitGroup
	for _, name := range stores {
		name := name
		base := ts.URL + "/stores/" + name
		for w := 0; w < writers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < rounds; i++ {
					id := fmt.Sprintf("hammer-%s-%d-%d", name, w, i)
					req := IngestRequest{Ops: []IngestOp{
						{Op: "run", Agent: "u-" + name, Command: "hammer",
							Inputs:  []uint32{ids[name].dataset},
							Outputs: []string{fmt.Sprintf("%s-a-%d-%d", name, w, i)}},
					}}
					code, echoed := doJSONWithID(t, http.MethodPost, base+"/ingest", id, req, nil)
					if code != http.StatusOK {
						t.Errorf("%s: ingest status %d", name, code)
						return
					}
					if echoed != id {
						t.Errorf("%s: request id %q echoed as %q", name, id, echoed)
						return
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < badRounds; i++ {
				// Empty op batch: a deterministic 400.
				code, echoed := doJSONWithID(t, http.MethodPost, base+"/ingest", "", IngestRequest{}, nil)
				if code != http.StatusBadRequest {
					t.Errorf("%s: bad ingest status %d, want 400", name, code)
					return
				}
				if echoed == "" {
					t.Errorf("%s: no generated request id on error response", name)
					return
				}
				// An unacceptable client id must be replaced, not echoed.
				code, echoed = doJSONWithID(t, http.MethodGet, base+"/stats", "bad id with spaces", nil, nil)
				if code != http.StatusOK || echoed == "" || echoed == "bad id with spaces" {
					t.Errorf("%s: invalid client id handling: status %d, echoed %q", name, code, echoed)
					return
				}
			}
		}()
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < rounds; i++ {
					var sr SegmentResponse
					if code := doJSON(t, http.MethodPost, base+"/segment",
						SegmentRequest{Src: []uint32{ids[name].dataset}, Dst: []uint32{ids[name].model}}, &sr); code != http.StatusOK {
						t.Errorf("%s: segment status %d", name, code)
						return
					}
					var m MetricsResponse
					if code := doJSON(t, http.MethodGet, base+"/metrics", nil, &m); code != http.StatusOK {
						t.Errorf("%s: metrics status %d", name, code)
						return
					}
				}
			}()
		}
	}
	wg.Wait()

	// Totals bump at routing time, classes and latency on completion — and a
	// client can read its response a beat before the server-side wrapper
	// finishes recording. Poll briefly until the counters agree.
	for _, name := range stores {
		st, err := reg.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(2 * time.Second)
		for {
			eps := st.EndpointStatsSnapshot()
			ok := true
			for _, ep := range eps {
				if ep.Total != ep.OK+ep.ClientErr+ep.ServerErr || ep.Total != ep.Latency.Count {
					ok = false
				}
			}
			if ok {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s: counters never reconciled: %+v", name, eps)
			}
			time.Sleep(5 * time.Millisecond)
		}

		eps := st.EndpointStatsSnapshot()
		ing := eps["ingest"]
		wantOK := uint64(2 + writers*rounds) // 2 seed batches + hammer
		if ing.OK != wantOK || ing.ClientErr != badRounds || ing.ServerErr != 0 {
			t.Errorf("%s: ingest classes = %+v, want %d/%d/0", name, ing, wantOK, badRounds)
		}
		if ing.Total != wantOK+badRounds {
			t.Errorf("%s: ingest total = %d, want %d", name, ing.Total, wantOK+badRounds)
		}
		seg := eps["segment"]
		if seg.OK != readers*rounds || seg.Latency.Count != readers*rounds {
			t.Errorf("%s: segment = %+v, want %d OK", name, seg, readers*rounds)
		}
		stats := eps["stats"]
		if stats.OK != badRounds {
			t.Errorf("%s: stats = %+v, want %d OK", name, stats, badRounds)
		}
		if ing.Latency.P50Nanos <= 0 || ing.Latency.P99Nanos < ing.Latency.P50Nanos ||
			ing.Latency.MaxNanos < ing.Latency.P99Nanos {
			t.Errorf("%s: ingest latency digest not monotone: %+v", name, ing.Latency)
		}

		// Every committed batch flowed through the whole pipeline: the stage
		// histograms must hold one sample per commit for publish (and per
		// group <= commits for append/fsync), and queue waits were recorded.
		stages := st.StageStats()
		commits := uint64(2 + writers*rounds)
		if stages["publish"].Count != commits {
			t.Errorf("%s: publish samples = %d, want %d", name, stages["publish"].Count, commits)
		}
		if stages["enqueue"].Count != commits {
			t.Errorf("%s: enqueue samples = %d, want %d (every batch queue-waits under group commit)",
				name, stages["enqueue"].Count, commits)
		}
		if n := stages["append"].Count; n == 0 || n > commits {
			t.Errorf("%s: append samples = %d, want within (0, %d]", name, n, commits)
		}
		if n := stages["fsync"].Count; n == 0 || n > stages["append"].Count {
			t.Errorf("%s: fsync samples = %d, want within (0, %d]", name, n, stages["append"].Count)
		}
		ds := st.DurabilityStatsSnapshot()
		if ds.GroupCommit.QueueWaitTotalNanos < 0 || ds.GroupCommit.QueueWaitMaxNanos < ds.GroupCommit.QueueWaitLastNanos {
			t.Errorf("%s: queue-wait counters inconsistent: %+v", name, ds.GroupCommit)
		}
	}

	// The 1ns threshold put every request in the slow ring. The ring only
	// holds the newest 32 of the hammer's requests, so park one known ingest
	// at the head before inspecting it.
	code, _ := doJSONWithID(t, http.MethodPost, ts.URL+"/ingest", "slow-probe", IngestRequest{Ops: []IngestOp{
		{Op: "run", Agent: "u-default", Command: "probe",
			Inputs:  []uint32{ids[DefaultStore].dataset},
			Outputs: []string{"probe-artifact"}},
	}}, nil)
	if code != http.StatusOK {
		t.Fatalf("probe ingest status %d", code)
	}
	// The ring add runs after the handler wrote the response, so poll until
	// the probe's entry lands. (Newest-first is by insertion, which
	// interleaves freely with request start times under concurrency — the
	// deterministic ordering contract is covered by the obs ring tests.)
	deadline := time.Now().Add(2 * time.Second)
	for {
		var slow SlowResponse
		if code := doJSON(t, http.MethodGet, ts.URL+"/debug/slow", nil, &slow); code != http.StatusOK {
			t.Fatalf("/debug/slow status %d", code)
		}
		if slow.Total == 0 || len(slow.Entries) == 0 || len(slow.Entries) > 32 {
			t.Fatalf("slow ring: total %d, %d entries", slow.Total, len(slow.Entries))
		}
		var sawProbe bool
		for i, e := range slow.Entries {
			if e.RequestID == "" || e.Store == "" || e.Endpoint == "" || e.Shape == "" || e.Time.IsZero() {
				t.Fatalf("slow entry %d incomplete: %+v", i, e)
			}
			if e.RequestID == "slow-probe" {
				sawProbe = true
				if e.Endpoint != "ingest" || e.Status != http.StatusOK || e.Stages == nil {
					t.Fatalf("probe entry wrong: %+v", e)
				}
				if e.Stages.PublishNanos <= 0 {
					t.Fatalf("probe entry missing stage timings: %+v", e.Stages)
				}
			}
		}
		if sawProbe {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("probe ingest never reached the slow ring")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
