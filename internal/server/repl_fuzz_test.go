package server

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/prov"
	"repro/internal/repl"
	"repro/internal/wal"
)

// FuzzWALStream points a follower applier at arbitrary bytes served as a
// replication stream. The contract under fuzz is the WAL's own resumability
// contract: whatever the leader (or an attacker, or a flaky network) puts on
// the wire, the applier never panics, and the store lands on exactly the
// longest contiguous, applicable epoch prefix of the stream — computed here
// by an independent decode-and-apply over a bare graph. A torn frame, a bad
// CRC, a malformed meta payload, an epoch gap or an undecodable delta may
// end the stream early; none of them may move the published snapshot past
// the prefix or leave it internally inconsistent.
//
// The checkpoint (re-seed) path is announced out-of-band via the
// X-Repl-Snapshot header, which raw bytes cannot forge, so this fuzz covers
// the delta path; the re-seed path is pinned by TestReplCheckpointSeedAndReseed.

// fuzzMetaFrame renders one meta frame as ServeStream would ship it.
func fuzzMetaFrame(leaderEpoch uint64, nanos int64) []byte {
	var p [16]byte
	binary.LittleEndian.PutUint64(p[0:8], leaderEpoch)
	binary.LittleEndian.PutUint64(p[8:16], uint64(nanos))
	var buf bytes.Buffer
	if err := wal.WriteFrame(&buf, repl.MetaEpoch, p[:]); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// fuzzLeaderStream captures a real leader's wire stream for n epochs: the
// opening meta frame followed by every published delta, framed exactly as
// ServeStream ships them. The seed corpus under testdata/fuzz/FuzzWALStream
// holds checked-in copies of these shapes so the nightly fuzzer starts from
// real protocol bytes.
func fuzzLeaderStream(tb testing.TB, n int) []byte {
	tb.Helper()
	leader := NewStore(prov.New(), 8)
	defer leader.Close()
	h := leader.EnableRepl()
	for i := 0; i < n; i++ {
		if err := leader.Update(func(rec *prov.Recorder) error {
			rec.Snapshot(fmt.Sprintf("seed-%d", i))
			return nil
		}); err != nil {
			tb.Fatal(err)
		}
	}
	var buf bytes.Buffer
	buf.Write(fuzzMetaFrame(h.Head(), 1))
	for ep := uint64(0); ep < h.Head(); {
		e, res := h.WaitNext(ep, time.Second, nil)
		if res != repl.WaitReady {
			tb.Fatalf("hub drain stalled: %v at epoch %d", res, ep)
		}
		if err := wal.WriteFrame(&buf, e.Epoch, e.Payload); err != nil {
			tb.Fatal(err)
		}
		ep = e.Epoch
	}
	return buf.Bytes()
}

// fuzzStreamSeeds is the seed set: a real stream, its torn/corrupt/replayed
// mutations, and degenerate shapes.
func fuzzStreamSeeds(tb testing.TB) [][]byte {
	full := fuzzLeaderStream(tb, 6)
	corrupt := append([]byte(nil), full...)
	corrupt[len(corrupt)/2] ^= 0x20
	return [][]byte{
		{},
		full,
		full[:len(full)-3], // torn tail mid-frame
		corrupt,            // CRC failure mid-stream
		append(append([]byte(nil), full...), full...), // epoch restart: gap refused
		fuzzMetaFrame(3, 0),                           // heartbeat only, no deltas
		append(fuzzMetaFrame(1, 1), 0xde, 0xad),       // meta then garbage
	}
}

func FuzzWALStream(f *testing.F) {
	for _, seed := range fuzzStreamSeeds(f) {
		f.Add(seed)
	}

	// One shared leader endpoint per worker process; each iteration swaps in
	// its input as the response body. Iterations within a worker run
	// sequentially, so the pointer cannot race.
	var cur atomic.Pointer[[]byte]
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if p := cur.Load(); p != nil {
			_, _ = w.Write(*p)
		}
	}))
	f.Cleanup(ts.Close)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Reference: decode the stream independently and apply each delta to
		// a bare graph, stopping exactly where the applier's contract says
		// the stream ends — frame error, malformed meta, epoch gap, or a
		// delta the graph refuses.
		ref := prov.New()
		refEpoch := uint64(0)
		fr := wal.NewFrameReader(bytes.NewReader(data))
	decode:
		for {
			epoch, payload, err := fr.Next()
			switch {
			case err != nil:
				break decode
			case epoch == repl.MetaEpoch:
				if len(payload) != 16 {
					break decode
				}
			case epoch != refEpoch+1:
				break decode
			default:
				if ref.PG().ApplyDelta(bytes.NewReader(payload)) != nil {
					break decode
				}
				refEpoch = epoch
			}
		}

		cur.Store(&data)
		fol := newFollowerStore(DefaultStore, ts.URL, 4)
		defer fol.Close()
		_ = fol.followOnce(context.Background(), ts.Client())

		ep := fol.Epoch()
		if ep.N != refEpoch {
			t.Fatalf("follower landed at epoch %d, reference prefix ends at %d", ep.N, refEpoch)
		}
		if ep.Vertices != ep.P.NumVertices() || ep.Edges != ep.P.NumEdges() {
			t.Fatalf("published snapshot inconsistent: counts %d/%d, graph %d/%d",
				ep.Vertices, ep.Edges, ep.P.NumVertices(), ep.P.NumEdges())
		}
		if ep.Vertices != ref.NumVertices() || ep.Edges != ref.NumEdges() {
			t.Fatalf("follower diverged from reference at epoch %d: %d/%d vs %d/%d",
				refEpoch, ep.Vertices, ep.Edges, ref.NumVertices(), ref.NumEdges())
		}
	})
}
