package graph

import "fmt"

// Dictionary interns label names to compact Label ids. Label 0 is reserved
// for the empty name.
type Dictionary struct {
	names []string
	ids   map[string]Label
}

// NewDictionary returns a dictionary with the empty label pre-interned.
func NewDictionary() *Dictionary {
	d := &Dictionary{ids: make(map[string]Label)}
	d.names = append(d.names, "")
	d.ids[""] = NoLabel
	return d
}

// Intern returns the Label for name, creating it if necessary.
func (d *Dictionary) Intern(name string) Label {
	if id, ok := d.ids[name]; ok {
		return id
	}
	if len(d.names) >= 1<<16 {
		panic("graph: label dictionary overflow")
	}
	id := Label(len(d.names))
	d.names = append(d.names, name)
	d.ids[name] = id
	return id
}

// Lookup returns the Label for name and whether it exists.
func (d *Dictionary) Lookup(name string) (Label, bool) {
	id, ok := d.ids[name]
	return id, ok
}

// Name returns the name of a label.
func (d *Dictionary) Name(l Label) string {
	if int(l) >= len(d.names) {
		return fmt.Sprintf("<label %d>", l)
	}
	return d.names[l]
}

// Len returns the number of interned labels (including the empty label).
func (d *Dictionary) Len() int { return len(d.names) }
