package graph

import "testing"

// The incremental-vs-full freeze cost on a 50k-vertex graph with a 1%
// delta — the micro-benchmark behind the bench "csr" panel's freeze
// columns.

func benchExtendGraph(nv, ne int) (*Graph, *Graph) {
	g := randomGraph(nv, ne, 42)
	prev := g.Freeze()
	grow(g, nv/100, ne/100, 3)
	return g, prev
}

func BenchmarkExtendFrozen50k(b *testing.B) {
	g, prev := benchExtendGraph(50000, 150000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := g.ExtendFrozen(prev); !ok {
			b.Fatal("incremental freeze fell back to a full rebuild")
		}
	}
}

func BenchmarkFullFreeze50k(b *testing.B) {
	g, _ := benchExtendGraph(50000, 150000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Freeze()
	}
}
