package graph

import (
	"fmt"
	"sync"
	"testing"
)

// grow appends nv vertices and ne edges to g, reusing randomGraph's label
// set (which must already be interned).
func grow(g *Graph, nv, ne int, seed int64) {
	n0 := g.NumVertices()
	for i := 0; i < nv; i++ {
		g.AddVertex(Label(1 + (int(seed)+i)%3))
	}
	n := g.NumVertices()
	for i := 0; i < ne; i++ {
		src := VertexID((int(seed) + 7*i) % n)
		dst := VertexID((int(seed) + 11*i + n0) % n)
		g.AddEdge(src, dst, Label(4+(int(seed)+i)%3))
	}
}

// TestExtendFrozenMatchesFull drives a chain of incremental snapshots and
// checks each against a full rebuild of the same state. (The heavy
// randomized coverage lives in graph/difftest; this is the in-package
// smoke test plus path assertions.)
func TestExtendFrozenMatchesFull(t *testing.T) {
	g := randomGraph(300, 1200, 7)
	prev, inc := g.ExtendFrozen(nil)
	if inc {
		t.Fatal("extension with no base must fall back to a full rebuild")
	}
	if prev.IncrementalSnapshot() {
		t.Fatal("fallback snapshot claims to be incremental")
	}
	sawIncremental := false
	for epoch := 0; epoch < 8; epoch++ {
		grow(g, 10, 40, int64(epoch))
		full := g.Freeze()
		next, inc := g.ExtendFrozen(prev)
		if inc {
			sawIncremental = true
			if !next.IncrementalSnapshot() {
				t.Fatal("incremental snapshot not flagged")
			}
		}
		for v := 0; v < g.NumVertices(); v++ {
			id := VertexID(v)
			if fmt.Sprint(full.Out(id)) != fmt.Sprint(next.Out(id)) {
				t.Fatalf("epoch %d Out(%d): %v vs %v", epoch, v, full.Out(id), next.Out(id))
			}
			if fmt.Sprint(full.In(id)) != fmt.Sprint(next.In(id)) {
				t.Fatalf("epoch %d In(%d): %v vs %v", epoch, v, full.In(id), next.In(id))
			}
			for l := Label(0); int(l) < g.Dict().Len(); l++ {
				for _, out := range []bool{true, false} {
					fn, fe, _ := full.FrozenNeighbors(id, l, out)
					xn, xe, _ := next.FrozenNeighbors(id, l, out)
					if fmt.Sprint(fn) != fmt.Sprint(xn) || fmt.Sprint(fe) != fmt.Sprint(xe) {
						t.Fatalf("epoch %d FrozenNeighbors(%d,%d,%v) diverged", epoch, v, l, out)
					}
				}
			}
		}
		prev = next
	}
	if !sawIncremental {
		t.Fatal("no epoch took the incremental path")
	}
}

// TestExtendFrozenFallbacks enumerates the conditions under which the
// incremental path must refuse prev and rebuild fully.
func TestExtendFrozenFallbacks(t *testing.T) {
	base := randomGraph(50, 200, 9)
	for name, tc := range map[string]struct {
		prev func() *Graph
		g    func() *Graph
	}{
		"nil prev": {
			prev: func() *Graph { return nil },
			g:    func() *Graph { return randomGraph(50, 200, 9) },
		},
		"live prev": {
			prev: func() *Graph { return randomGraph(50, 200, 9) },
			g:    func() *Graph { return randomGraph(50, 200, 9) },
		},
		"prev from a different graph": {
			prev: func() *Graph { return randomGraph(50, 200, 10).Freeze() },
			g: func() *Graph {
				g := randomGraph(50, 200, 9)
				grow(g, 5, 10, 1)
				return g
			},
		},
		"oversized delta": {
			prev: func() *Graph { return base.Freeze() },
			g: func() *Graph {
				grow(base, 10, 500, 2) // delta larger than half the graph
				return base
			},
		},
	} {
		prev := tc.prev()
		g := tc.g()
		fz, inc := g.ExtendFrozen(prev)
		if inc {
			t.Errorf("%s: incremental path taken", name)
		}
		if fz == nil || !fz.Frozen() || fz.IncrementalSnapshot() {
			t.Errorf("%s: fallback did not produce a full snapshot", name)
		}
	}
	// Extending a frozen graph is the identity, like Freeze.
	fz := randomGraph(10, 20, 3).Freeze()
	if got, inc := fz.ExtendFrozen(nil); got != fz || inc {
		t.Fatal("ExtendFrozen of frozen graph must be a no-op")
	}
}

// TestExtendFrozenImmutableAndWatermark: incremental snapshots enforce the
// same immutability and watermark rules as full ones.
func TestExtendFrozenImmutableAndWatermark(t *testing.T) {
	g := randomGraph(40, 120, 11)
	prev := g.Freeze()
	grow(g, 4, 12, 1)
	fz, inc := g.ExtendFrozen(prev)
	if !inc {
		t.Fatal("expected incremental path")
	}
	for name, fn := range map[string]func(){
		"AddVertex":     func() { fz.AddVertex(1) },
		"AddEdge":       func() { fz.AddEdge(0, 1, 4) },
		"SetVertexProp": func() { fz.SetVertexProp(0, "x", Int(1)) },
		"SetEdgeProp":   func() { fz.SetEdgeProp(0, "x", Int(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on incremental snapshot did not panic", name)
				}
			}()
			fn()
		}()
	}
	// The live graph's watermark must cover the extension, so pre-watermark
	// property writes are rejected.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SetVertexProp below extended watermark did not panic")
			}
		}()
		g.SetVertexProp(VertexID(g.NumVertices()-1), "x", Int(1))
	}()
}

// TestExtendFrozenIsolation extends a snapshot while readers traverse both
// the previous and the new epoch and a writer keeps appending; under -race
// this proves epochs share no mutable state even though they share rows.
func TestExtendFrozenIsolation(t *testing.T) {
	g := randomGraph(120, 500, 13)
	prev := g.Freeze()
	grow(g, 10, 40, 1)
	fz, inc := g.ExtendFrozen(prev)
	if !inc {
		t.Fatal("expected incremental path")
	}
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < 150; i++ {
			v := g.AddVertex(1)
			g.AddEdge(v, VertexID(i%100), 4)
		}
	}()
	for _, snap := range []*Graph{prev, fz} {
		snap := snap
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				total := 0
				for v := 0; v < snap.NumVertices(); v++ {
					total += len(snap.Out(VertexID(v)))
					snap.OutNeighbors(VertexID(v), 4, nil)
				}
				if total != snap.NumEdges() {
					t.Errorf("snapshot edge count drifted: %d vs %d", total, snap.NumEdges())
					return
				}
			}
		}()
	}
	wg.Wait()
}
