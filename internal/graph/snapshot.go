package graph

// Epoch snapshots. The graph is append-only (provenance is immutable
// history), so a consistent read view is fully described by a watermark
// (numVertices, numEdges): everything below the watermark never changes.
// Freeze materializes such a view as a frozen *Graph that
//
//   - shares the immutable prefix of the live graph's columnar arrays
//     (vertex/edge labels, endpoints, properties) via capped slice headers,
//     so freezing copies O(V) headers, not the data itself, and
//   - replaces the live per-vertex adjacency lists with a CSR
//     (compressed-sparse-row) index: one contiguous edge array per
//     direction plus, per edge label, contiguous neighbor/edge-id rows.
//
// A frozen graph answers every read the live graph does (the whole Graph
// API works on it), but neighbor scans that previously filtered a mixed
// edge list per call become contiguous slice reads. Mutations panic.
//
// Concurrency: a frozen graph shares no mutable state with its source.
// Writers may keep appending to the live graph while any number of readers
// traverse the snapshot; appends only ever touch indices at or beyond the
// watermark, which no snapshot reader dereferences.

// csrRel is the per-label CSR block of one direction: row v is
// nbr[off[v]:off[v+1]] (the neighbor endpoints, in edge-insertion order)
// with eid holding the matching edge ids.
type csrRel struct {
	off []uint32
	nbr []VertexID
	eid []EdgeID
}

// row returns the neighbor and edge-id rows of v (capped: appending to a
// returned slice never clobbers the next row).
func (r *csrRel) row(v VertexID) ([]VertexID, []EdgeID) {
	if r == nil || int(v)+1 >= len(r.off) {
		return nil, nil
	}
	a, b := r.off[v], r.off[v+1]
	return r.nbr[a:b:b], r.eid[a:b:b]
}

// csrIndex is the frozen adjacency index: flat all-edge arrays backing the
// per-vertex Out/In views, plus per-label neighbor rows for the hot
// label-filtered scans. The per-label tables are dense slices indexed by
// Label (labels are small interned ints) so a row lookup is two array
// indexings — no hashing on the query path.
type csrIndex struct {
	outEdge, inEdge []EdgeID
	outRel, inRel   []*csrRel // indexed by Label; nil = no edges of that label
}

// rel returns the per-label block for one direction (nil when no edge
// carries the label).
func (cs *csrIndex) rel(label Label, out bool) *csrRel {
	t := cs.outRel
	if !out {
		t = cs.inRel
	}
	if int(label) >= len(t) {
		return nil
	}
	return t[label]
}

// Frozen reports whether the graph is an immutable snapshot.
func (g *Graph) Frozen() bool { return g.frozen }

// Freeze returns an immutable snapshot of the graph with a CSR adjacency
// index. Freezing a frozen graph returns it unchanged.
func (g *Graph) Freeze() *Graph {
	if g.frozen {
		return g
	}
	nv, ne := len(g.vLabel), len(g.eLabel)
	fz := &Graph{
		dict:    g.dict.clone(),
		vLabel:  g.vLabel[:nv:nv],
		vProps:  g.vProps[:nv:nv],
		eLabel:  g.eLabel[:ne:ne],
		eProps:  g.eProps[:ne:ne],
		eSrc:    g.eSrc[:ne:ne],
		eDst:    g.eDst[:ne:ne],
		byLabel: make(map[Label][]VertexID, len(g.byLabel)),
		frozen:  true,
	}
	// The label index map must be copied (appends replace its slice-header
	// values in place), but the id lists themselves are append-only.
	for l, vs := range g.byLabel {
		fz.byLabel[l] = vs[:len(vs):len(vs)]
	}
	fz.buildCSR(nv, ne)
	// The snapshot shares this graph's columnar prefix; record the
	// watermark so property writes below it are rejected (SetVertexProp).
	if nv > g.snapV {
		g.snapV, g.snapE = nv, ne
	}
	return fz
}

// buildCSR constructs the CSR index and the per-vertex Out/In views over it
// with two counting-sort passes per direction. Within a row, edges appear in
// ascending id order, matching the live graph's insertion-ordered lists.
func (g *Graph) buildCSR(nv, ne int) {
	nl := g.dict.Len()
	cs := &csrIndex{
		outEdge: make([]EdgeID, ne),
		inEdge:  make([]EdgeID, ne),
		outRel:  make([]*csrRel, nl),
		inRel:   make([]*csrRel, nl),
	}

	// All-edge CSR, backing Out(v)/In(v).
	outOff := make([]uint32, nv+1)
	inOff := make([]uint32, nv+1)
	for e := 0; e < ne; e++ {
		outOff[g.eSrc[e]+1]++
		inOff[g.eDst[e]+1]++
	}
	for v := 0; v < nv; v++ {
		outOff[v+1] += outOff[v]
		inOff[v+1] += inOff[v]
	}
	outCur := append([]uint32(nil), outOff...)
	inCur := append([]uint32(nil), inOff...)
	for e := 0; e < ne; e++ {
		s, d := g.eSrc[e], g.eDst[e]
		cs.outEdge[outCur[s]] = EdgeID(e)
		outCur[s]++
		cs.inEdge[inCur[d]] = EdgeID(e)
		inCur[d]++
	}
	g.out = make([][]EdgeID, nv)
	g.in = make([][]EdgeID, nv)
	for v := 0; v < nv; v++ {
		g.out[v] = cs.outEdge[outOff[v]:outOff[v+1]:outOff[v+1]]
		g.in[v] = cs.inEdge[inOff[v]:inOff[v+1]:inOff[v+1]]
	}

	// Per-label CSR: count rows, prefix-sum, fill.
	for e := 0; e < ne; e++ {
		l := g.eLabel[e]
		ob := cs.outRel[l]
		if ob == nil {
			ob = &csrRel{off: make([]uint32, nv+1)}
			cs.outRel[l] = ob
			cs.inRel[l] = &csrRel{off: make([]uint32, nv+1)}
		}
		ob.off[g.eSrc[e]+1]++
		cs.inRel[l].off[g.eDst[e]+1]++
	}
	outPos := make([][]uint32, nl)
	inPos := make([][]uint32, nl)
	for l := 0; l < nl; l++ {
		for _, b := range []*csrRel{cs.outRel[l], cs.inRel[l]} {
			if b == nil {
				continue
			}
			for v := 0; v < nv; v++ {
				b.off[v+1] += b.off[v]
			}
			n := b.off[nv]
			b.nbr = make([]VertexID, n)
			b.eid = make([]EdgeID, n)
		}
		if cs.outRel[l] != nil {
			outPos[l] = append([]uint32(nil), cs.outRel[l].off...)
			inPos[l] = append([]uint32(nil), cs.inRel[l].off...)
		}
	}
	for e := 0; e < ne; e++ {
		l := g.eLabel[e]
		s, d := g.eSrc[e], g.eDst[e]
		ob, ib := cs.outRel[l], cs.inRel[l]
		op, ip := outPos[l], inPos[l]
		ob.nbr[op[s]] = d
		ob.eid[op[s]] = EdgeID(e)
		op[s]++
		ib.nbr[ip[d]] = s
		ib.eid[ip[d]] = EdgeID(e)
		ip[d]++
	}
	g.csr = cs
}

// FrozenNeighbors returns the contiguous CSR row for v's neighbors over
// edges with the given label: destination endpoints of v's out-edges when
// out is true, source endpoints of its in-edges otherwise, with eids holding
// the matching edge ids. ok is false when the graph is not frozen (callers
// fall back to scanning the live adjacency lists). The returned slices must
// not be modified.
func (g *Graph) FrozenNeighbors(v VertexID, label Label, out bool) (nbrs []VertexID, eids []EdgeID, ok bool) {
	if g.csr == nil {
		return nil, nil, false
	}
	nbrs, eids = g.csr.rel(label, out).row(v)
	return nbrs, eids, true
}

// clone returns an independent copy of the dictionary whose reads are safe
// against concurrent Intern calls on the original.
func (d *Dictionary) clone() *Dictionary {
	nd := &Dictionary{
		names: d.names[:len(d.names):len(d.names)],
		ids:   make(map[string]Label, len(d.ids)),
	}
	for k, v := range d.ids {
		nd.ids[k] = v
	}
	return nd
}
