package graph

import "sort"

// Epoch snapshots. The graph is append-only (provenance is immutable
// history), so a consistent read view is fully described by a watermark
// (numVertices, numEdges): everything below the watermark never changes.
// Freeze materializes such a view as a frozen *Graph that
//
//   - shares the immutable prefix of the live graph's columnar arrays
//     (vertex/edge labels, endpoints, properties) via capped slice headers,
//     so freezing copies O(V) headers, not the data itself, and
//   - replaces the live per-vertex adjacency lists with a CSR
//     (compressed-sparse-row) index: one contiguous edge array per
//     direction plus, per edge label, contiguous neighbor/edge-id rows.
//
// A frozen graph answers every read the live graph does (the whole Graph
// API works on it), but neighbor scans that previously filtered a mixed
// edge list per call become contiguous slice reads. Mutations panic.
//
// Because the graph is append-only, the next epoch's index is the previous
// one plus the delta: ExtendFrozen reuses the previous snapshot's rel
// blocks copy-on-write and stores the delta's edges as sparse extension
// rows, so the commit path pays O(delta + touched rows) instead of
// O(V + E) per freeze (see ExtendFrozen for the layout).
//
// Concurrency: a frozen graph shares no mutable state with its source.
// Writers may keep appending to the live graph while any number of readers
// traverse the snapshot; appends only ever touch indices at or beyond the
// watermark, which no snapshot reader dereferences.

// csrExt holds the rows appended to a rel block since its contiguous base
// was last fully built: a sparse CSR over only the vertices the delta
// touched. vids is sorted ascending; row i of the touched vertex vids[i] is
// nbr[off[i]:off[i+1]] with eid holding the matching edge ids, in ascending
// edge-id order. Lookups binary-search vids, so untouched-label reads pay
// nothing and touched-label reads pay O(log touched).
type csrExt struct {
	vids []VertexID
	off  []uint32
	nbr  []VertexID
	eid  []EdgeID
}

// row returns the extension row of v (nil when the delta never touched v).
func (x *csrExt) row(v VertexID) ([]VertexID, []EdgeID) {
	if x == nil {
		return nil, nil
	}
	i := sort.Search(len(x.vids), func(i int) bool { return x.vids[i] >= v })
	if i == len(x.vids) || x.vids[i] != v {
		return nil, nil
	}
	a, b := x.off[i], x.off[i+1]
	return x.nbr[a:b:b], x.eid[a:b:b]
}

// edges returns the number of edges held in the extension.
func (x *csrExt) edges() int {
	if x == nil {
		return 0
	}
	return len(x.nbr)
}

// csrRel is the per-label CSR block of one direction. A block is either
//
//   - contiguous (base == nil, ext == nil): row v is nbr[off[v]:off[v+1]]
//     with eid holding the matching edge ids, as built by a full rebuild or
//     a flatten, or
//   - extended (ext != nil): the rows of an older epoch's contiguous block
//     (base; nil when the label first appeared after that epoch) plus the
//     sparse extension rows accumulated by ExtendFrozen since. A row then
//     spans up to two epochs: the base segment followed by the extension
//     segment, both in ascending edge-id order (every delta edge id is
//     larger than every base edge id, so the concatenation is exactly the
//     row a full rebuild would produce).
//
// base is always contiguous: extending an already-extended block merges the
// old extension with the new delta instead of chaining, so reads never walk
// more than two segments no matter how many epochs a block has survived.
type csrRel struct {
	off []uint32
	nbr []VertexID
	eid []EdgeID

	base *csrRel
	ext  *csrExt
}

// contiguousRow returns v's slice of the block's own contiguous arrays
// (capped: appending to a returned slice never clobbers the next row).
func (r *csrRel) contiguousRow(v VertexID) ([]VertexID, []EdgeID) {
	if r == nil || int(v)+1 >= len(r.off) {
		return nil, nil
	}
	a, b := r.off[v], r.off[v+1]
	return r.nbr[a:b:b], r.eid[a:b:b]
}

// row returns the neighbor and edge-id rows of v. On an extended block the
// row may span two epochs; when both segments are non-empty they are
// materialized into fresh slices (callers treat rows as read-only either
// way).
func (r *csrRel) row(v VertexID) ([]VertexID, []EdgeID) {
	if r == nil {
		return nil, nil
	}
	if r.ext == nil {
		return r.contiguousRow(v)
	}
	bn, be := r.base.contiguousRow(v)
	xn, xe := r.ext.row(v)
	switch {
	case len(xn) == 0:
		return bn, be
	case len(bn) == 0:
		return xn, xe
	}
	nbr := make([]VertexID, 0, len(bn)+len(xn))
	eid := make([]EdgeID, 0, len(be)+len(xe))
	nbr = append(append(nbr, bn...), xn...)
	eid = append(append(eid, be...), xe...)
	return nbr, eid
}

// appendNbrs appends v's neighbor row to buf without materializing
// multi-epoch rows.
func (r *csrRel) appendNbrs(v VertexID, buf []VertexID) []VertexID {
	if r == nil {
		return buf
	}
	if r.ext == nil {
		n, _ := r.contiguousRow(v)
		return append(buf, n...)
	}
	bn, _ := r.base.contiguousRow(v)
	xn, _ := r.ext.row(v)
	return append(append(buf, bn...), xn...)
}

// edges returns the total edge count of the block (base + extension).
func (r *csrRel) edges() int {
	if r == nil {
		return 0
	}
	if r.ext == nil {
		if len(r.off) == 0 {
			return 0
		}
		return int(r.off[len(r.off)-1])
	}
	return r.base.edges() + r.ext.edges()
}

// edgeRows is a frozen graph's per-vertex edge-id view (the Out/In API):
// an immutable array of row headers, shared pointer-wise with the previous
// epoch on incremental snapshots, plus a sparse sorted overlay holding the
// materialized rows of the vertices the ingest delta touched. Sharing the
// base outright is what keeps ExtendFrozen from copying (and the GC from
// re-scanning) O(V) slice headers per commit; reads pay one binary-search
// miss over the overlay, which is delta-sized and flattened back into a
// plain array when it outgrows a fraction of the vertex count.
type edgeRows struct {
	base [][]EdgeID
	vids []VertexID // sorted; vertices whose current row lives in the overlay
	rows [][]EdgeID // parallel to vids
}

// row returns v's edge-id row (nil when v has none). The result must not
// be modified.
func (r *edgeRows) row(v VertexID) []EdgeID {
	if n := len(r.vids); n > 0 {
		i := sort.Search(n, func(i int) bool { return r.vids[i] >= v })
		if i < n && r.vids[i] == v {
			return r.rows[i]
		}
	}
	if int(v) < len(r.base) {
		return r.base[v]
	}
	return nil
}

// extend derives the next epoch's view: tv (sorted) are the delta-touched
// vertices and add their new edge ids; each touched row is materialized
// once as old row + delta, untouched overlay rows carry over pointer-wise,
// and the base array is shared. The overlay is flattened into a fresh base
// when it outgrows a quarter of the vertex count.
func (r *edgeRows) extend(tv []VertexID, add [][]EdgeID, nv int) *edgeRows {
	nx := &edgeRows{
		base: r.base,
		vids: make([]VertexID, 0, len(r.vids)+len(tv)),
		rows: make([][]EdgeID, 0, len(r.vids)+len(tv)),
	}
	i, j := 0, 0
	for i < len(r.vids) || j < len(tv) {
		switch {
		case j == len(tv) || i < len(r.vids) && r.vids[i] < tv[j]:
			nx.vids = append(nx.vids, r.vids[i])
			nx.rows = append(nx.rows, r.rows[i])
			i++
		default:
			v := tv[j]
			old := r.row(v)
			row := make([]EdgeID, 0, len(old)+len(add[j]))
			nx.vids = append(nx.vids, v)
			nx.rows = append(nx.rows, append(append(row, old...), add[j]...))
			if i < len(r.vids) && r.vids[i] == v {
				i++
			}
			j++
		}
	}
	if len(nx.vids) > rowOverlayFlattenMin && len(nx.vids)*4 > nv {
		base := make([][]EdgeID, nv)
		copy(base, nx.base)
		for k, v := range nx.vids {
			base[v] = nx.rows[k]
		}
		return &edgeRows{base: base}
	}
	return nx
}

// rowsBuilder groups a delta's (vertex, edge id) pairs into sorted rows.
type rowsBuilder struct {
	vids []VertexID
	eids []EdgeID
}

func (b *rowsBuilder) add(v VertexID, e EdgeID) {
	b.vids = append(b.vids, v)
	b.eids = append(b.eids, e)
}

// build returns the touched vertices in ascending order with each one's
// new edge ids (ascending: the sort is stable over insertion order).
func (b *rowsBuilder) build() ([]VertexID, [][]EdgeID) {
	idx := make([]int, len(b.vids))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool { return b.vids[idx[i]] < b.vids[idx[j]] })
	var tv []VertexID
	var rows [][]EdgeID
	for _, i := range idx {
		v := b.vids[i]
		if n := len(tv); n == 0 || tv[n-1] != v {
			tv = append(tv, v)
			rows = append(rows, nil)
		}
		rows[len(rows)-1] = append(rows[len(rows)-1], b.eids[i])
	}
	return tv, rows
}

// csrIndex is the frozen adjacency index: per-label neighbor rows for the
// hot label-filtered scans, plus (on fully rebuilt snapshots) flat all-edge
// arrays backing the per-vertex Out/In views. The per-label tables are
// dense slices indexed by Label (labels are small interned ints) so a row
// lookup is two array indexings — no hashing on the query path.
type csrIndex struct {
	outEdge, inEdge []EdgeID
	outRel, inRel   []*csrRel // indexed by Label; nil = no edges of that label
}

// rel returns the per-label block for one direction (nil when no edge
// carries the label).
func (cs *csrIndex) rel(label Label, out bool) *csrRel {
	t := cs.outRel
	if !out {
		t = cs.inRel
	}
	if int(label) >= len(t) {
		return nil
	}
	return t[label]
}

// Frozen reports whether the graph is an immutable snapshot.
func (g *Graph) Frozen() bool { return g.frozen }

// IncrementalSnapshot reports whether this frozen graph's index was built
// by extending an earlier epoch (ExtendFrozen) rather than a full rebuild.
func (g *Graph) IncrementalSnapshot() bool { return g.incrSnap }

// snapshotShell allocates the frozen graph sharing the live graph's
// columnar prefix via capped slice headers and records the watermark on the
// live graph so property writes below it are rejected (SetVertexProp).
func (g *Graph) snapshotShell(nv, ne int) *Graph {
	fz := &Graph{
		dict:    g.dict.clone(),
		vLabel:  g.vLabel[:nv:nv],
		vProps:  g.vProps[:nv:nv],
		eLabel:  g.eLabel[:ne:ne],
		eProps:  g.eProps[:ne:ne],
		eSrc:    g.eSrc[:ne:ne],
		eDst:    g.eDst[:ne:ne],
		byLabel: make(map[Label][]VertexID, len(g.byLabel)),
		frozen:  true,
	}
	// The label index map must be copied (appends replace its slice-header
	// values in place), but the id lists themselves are append-only.
	for l, vs := range g.byLabel {
		fz.byLabel[l] = vs[:len(vs):len(vs)]
	}
	if nv > g.snapV {
		g.snapV, g.snapE = nv, ne
	}
	return fz
}

// Freeze returns an immutable snapshot of the graph with a CSR adjacency
// index, fully rebuilt from the live adjacency. Freezing a frozen graph
// returns it unchanged.
func (g *Graph) Freeze() *Graph {
	if g.frozen {
		return g
	}
	nv, ne := len(g.vLabel), len(g.eLabel)
	fz := g.snapshotShell(nv, ne)
	fz.buildCSR(g, nv, ne)
	return fz
}

// Incremental extension tuning. A touched rel block's extension is merged
// across epochs rather than chained (reads stay two-segment), and is
// flattened back into a contiguous block once it outgrows its base: past
// that point the merge copies more than a rebuild would, and row reads of
// touched vertices keep paying the binary search + concatenation. The
// extEdges > base/4 ratio bounds both at a fraction of a full rebuild while
// keeping flattens rare; the minimum stops tiny, hot blocks from
// re-flattening on every commit.
const (
	extFlattenMin        = 64
	rowOverlayFlattenMin = 256
)

// ExtendFrozen returns an immutable snapshot like Freeze, but builds the
// adjacency index incrementally from prev — an earlier snapshot of this
// same graph (normally the previous epoch). Rel blocks no delta edge
// touches are shared with prev outright; touched blocks keep prev's
// contiguous rows copy-on-write and gain sparse extension rows over just
// the delta, flattened back to contiguous form only when the accumulated
// extension outgrows its base. The all-edge Out/In views copy prev's row
// headers and rebuild only the rows the delta extends. The commit path
// therefore pays O(V row headers + delta + touched rows), not the full
// O(V + E) counting sort.
//
// The bool result reports whether the incremental path was taken. It falls
// back to a full Freeze (returning false) when prev is nil or not a
// snapshot of this graph's history, or when the delta is so large that a
// rebuild is cheaper. Callers must not extend concurrently with other
// freezes of the same graph (the serving layer serializes commits behind
// its write mutex).
func (g *Graph) ExtendFrozen(prev *Graph) (*Graph, bool) {
	if g.frozen {
		return g, false
	}
	nv, ne := len(g.vLabel), len(g.eLabel)
	if !g.canExtend(prev, nv, ne) {
		return g.Freeze(), false
	}
	pe := prev.NumEdges()
	fz := g.snapshotShell(nv, ne)
	fz.incrSnap = true

	// All-edge Out/In views: share prev's rows, overlaying only the rows
	// the delta extends (each materialized once as old row + new ids).
	var ob, ib rowsBuilder
	for e := pe; e < ne; e++ {
		ob.add(g.eSrc[e], EdgeID(e))
		ib.add(g.eDst[e], EdgeID(e))
	}
	tv, add := ob.build()
	fz.outRows = prev.outRows.extend(tv, add, nv)
	tv, add = ib.build()
	fz.inRows = prev.inRows.extend(tv, add, nv)

	// Per-label blocks: group the delta per (label, direction), share the
	// blocks with no delta, extend the rest.
	nl := g.dict.Len()
	cs := &csrIndex{outRel: make([]*csrRel, nl), inRel: make([]*csrRel, nl)}
	pcs := prev.csr
	copy(cs.outRel, pcs.outRel)
	copy(cs.inRel, pcs.inRel)
	outDelta := make(map[Label]*extBuilder)
	inDelta := make(map[Label]*extBuilder)
	for e := pe; e < ne; e++ {
		l := g.eLabel[e]
		ob := outDelta[l]
		if ob == nil {
			ob = &extBuilder{}
			outDelta[l] = ob
			inDelta[l] = &extBuilder{}
		}
		ob.add(g.eSrc[e], g.eDst[e], EdgeID(e))
		inDelta[l].add(g.eDst[e], g.eSrc[e], EdgeID(e))
	}
	for l, b := range outDelta {
		cs.outRel[l] = extendRel(pcs.rel(l, true), b.build(), nv)
		cs.inRel[l] = extendRel(pcs.rel(l, false), inDelta[l].build(), nv)
	}
	fz.csr = cs

	// Degree stats: the previous epoch's counts plus the delta, label by
	// label — exactly what a full recount over nv/ne would produce.
	ds := prev.degrees.clone(nl)
	ds.vertices = nv
	ds.edges = ne
	for e := pe; e < ne; e++ {
		ds.labelEdges[g.eLabel[e]]++
	}
	fz.degrees = ds
	return fz, true
}

// canExtend validates that prev is a usable base for an incremental
// extension of this graph's current state: a frozen snapshot whose
// watermark is a prefix of ours, whose label dictionary is a prefix of
// ours, and whose boundary rows match ours (a cheap spot check — the full
// prefix property is the caller's contract, prev having been frozen from
// this same graph). A delta larger than half the graph falls back to the
// full rebuild: at that size the counting sort is no slower and resets the
// extension state.
func (g *Graph) canExtend(prev *Graph, nv, ne int) bool {
	if prev == nil || !prev.frozen || prev.csr == nil {
		return false
	}
	pv, pe := prev.NumVertices(), prev.NumEdges()
	if pv > nv || pe > ne || pe == 0 {
		return false
	}
	if (ne-pe)*2 > ne {
		return false
	}
	if prev.dict.Len() > g.dict.Len() {
		return false
	}
	for l := 0; l < prev.dict.Len(); l++ {
		if prev.dict.Name(Label(l)) != g.dict.Name(Label(l)) {
			return false
		}
	}
	for _, i := range []int{0, pv - 1} {
		if prev.vLabel[i] != g.vLabel[i] {
			return false
		}
	}
	for _, i := range []int{0, pe - 1} {
		if prev.eSrc[i] != g.eSrc[i] || prev.eDst[i] != g.eDst[i] || prev.eLabel[i] != g.eLabel[i] {
			return false
		}
	}
	return true
}

// extBuilder accumulates one (label, direction)'s delta rows in edge order,
// then sorts them by vertex into a csrExt.
type extBuilder struct {
	vids []VertexID
	nbr  []VertexID
	eid  []EdgeID
}

func (b *extBuilder) add(v, nbr VertexID, e EdgeID) {
	b.vids = append(b.vids, v)
	b.nbr = append(b.nbr, nbr)
	b.eid = append(b.eid, e)
}

// build groups the accumulated entries into sparse sorted rows. The sort is
// stable so each row keeps ascending edge-id order.
func (b *extBuilder) build() *csrExt {
	idx := make([]int, len(b.vids))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool { return b.vids[idx[i]] < b.vids[idx[j]] })
	x := &csrExt{
		nbr: make([]VertexID, 0, len(idx)),
		eid: make([]EdgeID, 0, len(idx)),
	}
	for _, i := range idx {
		v := b.vids[i]
		if n := len(x.vids); n == 0 || x.vids[n-1] != v {
			x.vids = append(x.vids, v)
			x.off = append(x.off, uint32(len(x.nbr)))
		}
		x.nbr = append(x.nbr, b.nbr[i])
		x.eid = append(x.eid, b.eid[i])
	}
	x.off = append(x.off, uint32(len(x.nbr)))
	return x
}

// extendRel layers a delta extension onto the previous epoch's block. An
// already-extended block has its old extension merged with the delta (so
// rows never span more than two segments); the result is flattened back to
// a contiguous block when the accumulated extension outgrows its base.
func extendRel(prev *csrRel, delta *csrExt, nv int) *csrRel {
	var base *csrRel
	ext := delta
	if prev != nil {
		base = prev
		if prev.ext != nil {
			base = prev.base
			ext = mergeExt(prev.ext, delta)
		}
	}
	if n := ext.edges(); n > extFlattenMin && n*4 > base.edges() {
		return flattenRel(base, ext, nv)
	}
	return &csrRel{base: base, ext: ext}
}

// mergeExt merges two sparse extensions; every edge id in b is newer than
// every id in a, so concatenating a's row before b's preserves ascending
// edge-id order.
func mergeExt(a, b *csrExt) *csrExt {
	x := &csrExt{
		vids: make([]VertexID, 0, len(a.vids)+len(b.vids)),
		off:  make([]uint32, 0, len(a.vids)+len(b.vids)+1),
		nbr:  make([]VertexID, 0, len(a.nbr)+len(b.nbr)),
		eid:  make([]EdgeID, 0, len(a.eid)+len(b.eid)),
	}
	i, j := 0, 0
	appendRow := func(s *csrExt, k int) {
		x.nbr = append(x.nbr, s.nbr[s.off[k]:s.off[k+1]]...)
		x.eid = append(x.eid, s.eid[s.off[k]:s.off[k+1]]...)
	}
	for i < len(a.vids) || j < len(b.vids) {
		var v VertexID
		switch {
		case j == len(b.vids) || i < len(a.vids) && a.vids[i] < b.vids[j]:
			v = a.vids[i]
		default:
			v = b.vids[j]
		}
		x.vids = append(x.vids, v)
		x.off = append(x.off, uint32(len(x.nbr)))
		if i < len(a.vids) && a.vids[i] == v {
			appendRow(a, i)
			i++
		}
		if j < len(b.vids) && b.vids[j] == v {
			appendRow(b, j)
			j++
		}
	}
	x.off = append(x.off, uint32(len(x.nbr)))
	return x
}

// flattenRel rebuilds one (label, direction) block contiguously from a base
// block and its accumulated extension: O(V + edges of the label), the same
// shape a full rebuild produces.
func flattenRel(base *csrRel, ext *csrExt, nv int) *csrRel {
	total := base.edges() + ext.edges()
	r := &csrRel{
		off: make([]uint32, nv+1),
		nbr: make([]VertexID, 0, total),
		eid: make([]EdgeID, 0, total),
	}
	for v := 0; v < nv; v++ {
		bn, be := base.contiguousRow(VertexID(v))
		xn, xe := ext.row(VertexID(v))
		r.nbr = append(append(r.nbr, bn...), xn...)
		r.eid = append(append(r.eid, be...), xe...)
		r.off[v+1] = uint32(len(r.nbr))
	}
	return r
}

// buildCSR constructs the full CSR index and the per-vertex Out/In views
// over it with two counting-sort passes per direction. Within a row, edges
// appear in ascending id order, matching the live graph's insertion-ordered
// lists. src is the graph whose adjacency is being indexed (the live graph;
// the receiver is the snapshot under construction).
func (g *Graph) buildCSR(src *Graph, nv, ne int) {
	nl := src.dict.Len()
	cs := &csrIndex{
		outEdge: make([]EdgeID, ne),
		inEdge:  make([]EdgeID, ne),
		outRel:  make([]*csrRel, nl),
		inRel:   make([]*csrRel, nl),
	}

	// All-edge CSR, backing Out(v)/In(v).
	outOff := make([]uint32, nv+1)
	inOff := make([]uint32, nv+1)
	for e := 0; e < ne; e++ {
		outOff[src.eSrc[e]+1]++
		inOff[src.eDst[e]+1]++
	}
	for v := 0; v < nv; v++ {
		outOff[v+1] += outOff[v]
		inOff[v+1] += inOff[v]
	}
	outCur := append([]uint32(nil), outOff...)
	inCur := append([]uint32(nil), inOff...)
	for e := 0; e < ne; e++ {
		s, d := src.eSrc[e], src.eDst[e]
		cs.outEdge[outCur[s]] = EdgeID(e)
		outCur[s]++
		cs.inEdge[inCur[d]] = EdgeID(e)
		inCur[d]++
	}
	outViews := make([][]EdgeID, nv)
	inViews := make([][]EdgeID, nv)
	for v := 0; v < nv; v++ {
		outViews[v] = cs.outEdge[outOff[v]:outOff[v+1]:outOff[v+1]]
		inViews[v] = cs.inEdge[inOff[v]:inOff[v+1]:inOff[v+1]]
	}
	g.outRows = &edgeRows{base: outViews}
	g.inRows = &edgeRows{base: inViews}

	// Per-label CSR: count rows, prefix-sum, fill.
	for e := 0; e < ne; e++ {
		l := src.eLabel[e]
		ob := cs.outRel[l]
		if ob == nil {
			ob = &csrRel{off: make([]uint32, nv+1)}
			cs.outRel[l] = ob
			cs.inRel[l] = &csrRel{off: make([]uint32, nv+1)}
		}
		ob.off[src.eSrc[e]+1]++
		cs.inRel[l].off[src.eDst[e]+1]++
	}
	outPos := make([][]uint32, nl)
	inPos := make([][]uint32, nl)
	for l := 0; l < nl; l++ {
		for _, b := range []*csrRel{cs.outRel[l], cs.inRel[l]} {
			if b == nil {
				continue
			}
			for v := 0; v < nv; v++ {
				b.off[v+1] += b.off[v]
			}
			n := b.off[nv]
			b.nbr = make([]VertexID, n)
			b.eid = make([]EdgeID, n)
		}
		if cs.outRel[l] != nil {
			outPos[l] = append([]uint32(nil), cs.outRel[l].off...)
			inPos[l] = append([]uint32(nil), cs.inRel[l].off...)
		}
	}
	for e := 0; e < ne; e++ {
		l := src.eLabel[e]
		s, d := src.eSrc[e], src.eDst[e]
		ob, ib := cs.outRel[l], cs.inRel[l]
		op, ip := outPos[l], inPos[l]
		ob.nbr[op[s]] = d
		ob.eid[op[s]] = EdgeID(e)
		op[s]++
		ib.nbr[ip[d]] = s
		ib.eid[ip[d]] = EdgeID(e)
		ip[d]++
	}
	g.csr = cs

	// Degree stats fall out of the per-label blocks already built.
	ds := &DegreeStats{labelEdges: make([]int, nl), vertices: nv, edges: ne}
	for l := 0; l < nl; l++ {
		ds.labelEdges[l] = cs.outRel[l].edges()
	}
	g.degrees = ds
}

// FrozenNeighbors returns the CSR row for v's neighbors over edges with the
// given label: destination endpoints of v's out-edges when out is true,
// source endpoints of its in-edges otherwise, with eids holding the
// matching edge ids in ascending order. On an incrementally extended
// snapshot a row may span two epochs, in which case it is materialized into
// fresh slices; either way the returned slices must not be modified. ok is
// false when the graph is not frozen (callers fall back to scanning the
// live adjacency lists).
func (g *Graph) FrozenNeighbors(v VertexID, label Label, out bool) (nbrs []VertexID, eids []EdgeID, ok bool) {
	if g.csr == nil {
		return nil, nil, false
	}
	hookRowRead(label, out)
	nbrs, eids = g.csr.rel(label, out).row(v)
	return nbrs, eids, true
}

// NeighborRowSegs returns v's neighbor row for the label/direction as up to
// two zero-copy segments: base (the contiguous epoch's slice) and ext (the
// sparse extension's slice, nil unless the block was incrementally
// extended). Concatenated they equal FrozenNeighbors' nbrs — both segments
// are in ascending edge-id order and every ext id is newer than every base
// id — but nothing is materialized, which is what lets the frontier engine
// OR a row straight into a bitset without the per-row allocation
// FrozenNeighbors pays on extended blocks. ok is false on live graphs.
// Returned slices must not be modified.
func (g *Graph) NeighborRowSegs(v VertexID, label Label, out bool) (base, ext []VertexID, ok bool) {
	if g.csr == nil {
		return nil, nil, false
	}
	hookRowRead(label, out)
	r := g.csr.rel(label, out)
	if r == nil {
		return nil, nil, true
	}
	if r.ext == nil {
		base, _ = r.contiguousRow(v)
		return base, nil, true
	}
	base, _ = r.base.contiguousRow(v)
	ext, _ = r.ext.row(v)
	return base, ext, true
}

// RelView is a zero-copy view of one (label, direction) CSR block, resolved
// once so tight traversal loops can slice rows with two array indexes
// instead of paying the per-row dispatch of NeighborRowSegs (hook load, rel
// lookup, segment branch). Row(v) returns the same two segments
// NeighborRowSegs would.
type RelView struct {
	off []uint32
	nbr []VertexID
	ext *csrExt
}

// Row returns v's neighbor row as up to two ascending-edge-id segments.
func (rv RelView) Row(v VertexID) (base, ext []VertexID) {
	if int(v)+1 < len(rv.off) {
		a, b := rv.off[v], rv.off[v+1]
		base = rv.nbr[a:b:b]
	}
	if rv.ext != nil {
		ext, _ = rv.ext.row(v)
	}
	return base, ext
}

// RelBlockView resolves the (label, direction) block into a RelView. ok is
// false on live graphs; a frozen graph with no such edges yields an empty
// view (all rows nil). The row-read hook fires once per acquisition — block
// granularity — so excluded-label instrumentation still observes every
// block a traversal touches.
func (g *Graph) RelBlockView(label Label, out bool) (RelView, bool) {
	if g.csr == nil {
		return RelView{}, false
	}
	hookRowRead(label, out)
	r := g.csr.rel(label, out)
	if r == nil {
		return RelView{}, true
	}
	if r.ext == nil {
		return RelView{off: r.off, nbr: r.nbr}, true
	}
	rv := RelView{ext: r.ext}
	if r.base != nil {
		rv.off, rv.nbr = r.base.off, r.base.nbr
	}
	return rv, true
}

// LabelHasEdges reports whether the snapshot has any edge with the label in
// the given direction — a free pre-check that lets traversals skip a
// label's block for the whole run.
func (g *Graph) LabelHasEdges(label Label, out bool) bool {
	if g.csr == nil {
		return true // live graph: unknown, caller must scan
	}
	return g.csr.rel(label, out) != nil
}

// clone returns an independent copy of the dictionary whose reads are safe
// against concurrent Intern calls on the original.
func (d *Dictionary) clone() *Dictionary {
	nd := &Dictionary{
		names: d.names[:len(d.names):len(d.names)],
		ids:   make(map[string]Label, len(d.ids)),
	}
	for k, v := range d.ids {
		nd.ids[k] = v
	}
	return nd
}
