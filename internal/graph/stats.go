package graph

import "sync/atomic"

// Freeze-time degree statistics. Snapshots are immutable, so one cheap
// counting pass per freeze (or a delta-sized update per incremental
// extension) yields exact per-label edge counts the query planners can
// trust for the snapshot's whole lifetime: the traversal engine sizes its
// top-down/bottom-up direction switch with them, and the Cypher planner
// orders labels and prices pattern anchors without touching a single row.
//
// The stats must stay byte-for-byte consistent between a full Freeze and an
// ExtendFrozen chain — the difftest harness diffs them at every epoch.

// DegreeStats are the per-snapshot adjacency statistics.
type DegreeStats struct {
	// labelEdges counts the edges carrying each label, indexed by Label.
	// Every edge has exactly one out- and one in-occurrence, so the count
	// serves both directions.
	labelEdges []int
	vertices   int
	edges      int
}

// EdgesWithLabel returns the number of edges carrying the label.
func (s *DegreeStats) EdgesWithLabel(l Label) int {
	if s == nil || int(l) >= len(s.labelEdges) {
		return 0
	}
	return s.labelEdges[int(l)]
}

// NumVertices returns the snapshot's vertex count at freeze time.
func (s *DegreeStats) NumVertices() int {
	if s == nil {
		return 0
	}
	return s.vertices
}

// NumEdges returns the snapshot's edge count at freeze time.
func (s *DegreeStats) NumEdges() int {
	if s == nil {
		return 0
	}
	return s.edges
}

// AvgDegree returns the mean per-vertex row length of the label's block in
// either direction: edges of the label over all vertices. This is the
// expected cost of scattering one frontier vertex's row top-down, and of
// probing one unvisited vertex bottom-up.
func (s *DegreeStats) AvgDegree(l Label) float64 {
	if s == nil || s.vertices == 0 {
		return 0
	}
	return float64(s.EdgesWithLabel(l)) / float64(s.vertices)
}

// Degrees returns the snapshot's degree statistics, or nil on a live graph
// (the statistics are only exact — and only safely shareable — on an
// immutable snapshot).
func (g *Graph) Degrees() *DegreeStats { return g.degrees }

// clone returns an independent copy an incremental extension can update.
func (s *DegreeStats) clone(nl int) *DegreeStats {
	le := make([]int, nl)
	copy(le, s.labelEdges)
	return &DegreeStats{labelEdges: le, vertices: s.vertices, edges: s.edges}
}

// Row-read instrumentation. The vectorized engine's contract is that a
// boundary excluding a relation (or a planner proving a label irrelevant)
// skips that label's CSR blocks outright — no row of an excluded block is
// ever fetched. Tests pin that contract by installing a hook that observes
// every per-label row read on frozen snapshots. The hook is test-only: the
// hot path pays one atomic pointer load, which is a plain MOV on the
// architectures we run, and nil-skips in steady state.
var rowReadHook atomic.Pointer[func(Label, bool)]

// SetRowReadHook installs fn to observe every per-label CSR row read
// (label, direction) on frozen graphs, returning a restore function that
// removes it. Passing nil clears the hook. Intended for tests only; the
// hook must be race-free or the calling test must not read graphs
// concurrently.
func SetRowReadHook(fn func(label Label, out bool)) (restore func()) {
	if fn == nil {
		rowReadHook.Store(nil)
		return func() {}
	}
	p := &fn
	rowReadHook.Store(p)
	return func() { rowReadHook.CompareAndSwap(p, nil) }
}

func hookRowRead(label Label, out bool) {
	if fn := rowReadHook.Load(); fn != nil {
		(*fn)(label, out)
	}
}
