package graph

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// buildDeltaPair returns a base graph plus the same graph with one extra
// randomized batch appended, and the encoded delta between them.
func buildDeltaPair(t *testing.T, seed int64) (base, grown *Graph, delta []byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := New()
	labels := []Label{g.Dict().Intern("l0"), g.Dict().Intern("l1")}
	for i := 0; i < 20+rng.Intn(30); i++ {
		v := g.AddVertex(labels[rng.Intn(len(labels))])
		if rng.Intn(2) == 0 {
			g.SetVertexProp(v, "p", Int(rng.Int63n(100)))
		}
	}
	for i := 0; i < 30+rng.Intn(40); i++ {
		e := g.AddEdge(VertexID(rng.Intn(g.NumVertices())), VertexID(rng.Intn(g.NumVertices())), labels[rng.Intn(len(labels))])
		if rng.Intn(3) == 0 {
			g.SetEdgeProp(e, "w", String("x"))
		}
	}
	baseDict, baseV, baseE := g.Dict().Len(), g.NumVertices(), g.NumEdges()

	// Clone the base by save/load so it is an independent graph.
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatalf("save base: %v", err)
	}
	base, err := Load(&buf)
	if err != nil {
		t.Fatalf("load base: %v", err)
	}

	// The batch: new labels, vertices with props, edges touching old and new
	// vertices.
	labels = append(labels, g.Dict().Intern("l2"))
	for i := 0; i < 5+rng.Intn(10); i++ {
		v := g.AddVertex(labels[rng.Intn(len(labels))])
		g.SetVertexProp(v, "name", String("v"))
		if rng.Intn(2) == 0 {
			g.SetVertexProp(v, "f", Float(1.5))
		}
	}
	for i := 0; i < 10+rng.Intn(10); i++ {
		e := g.AddEdge(VertexID(rng.Intn(g.NumVertices())), VertexID(rng.Intn(g.NumVertices())), labels[rng.Intn(len(labels))])
		if rng.Intn(2) == 0 {
			g.SetEdgeProp(e, "b", Bool(true))
		}
	}

	var db bytes.Buffer
	if err := g.EncodeDelta(&db, baseDict, baseV, baseE); err != nil {
		t.Fatalf("encode delta: %v", err)
	}
	return base, g, db.Bytes()
}

// graphsEqual asserts two graphs have identical serialized form (labels,
// edges, props, dictionary).
func graphsEqual(t *testing.T, want, got *Graph) {
	t.Helper()
	var wb, gb bytes.Buffer
	if err := want.Save(&wb); err != nil {
		t.Fatalf("save want: %v", err)
	}
	if err := got.Save(&gb); err != nil {
		t.Fatalf("save got: %v", err)
	}
	if !bytes.Equal(wb.Bytes(), gb.Bytes()) {
		t.Fatalf("graphs differ: want %d/%d vertices/edges, got %d/%d",
			want.NumVertices(), want.NumEdges(), got.NumVertices(), got.NumEdges())
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		base, grown, delta := buildDeltaPair(t, seed)
		if err := base.ApplyDelta(bytes.NewReader(delta)); err != nil {
			t.Fatalf("seed %d: apply: %v", seed, err)
		}
		graphsEqual(t, grown, base)
	}
}

func TestDeltaEmptyBatch(t *testing.T) {
	g := New()
	l := g.Dict().Intern("x")
	g.AddVertex(l)
	var db bytes.Buffer
	if err := g.EncodeDelta(&db, g.Dict().Len(), g.NumVertices(), g.NumEdges()); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if err := g.ApplyDelta(bytes.NewReader(db.Bytes())); err != nil {
		t.Fatalf("apply empty delta: %v", err)
	}
	if g.NumVertices() != 1 || g.NumEdges() != 0 {
		t.Fatalf("empty delta changed the graph: %d/%d", g.NumVertices(), g.NumEdges())
	}
}

func TestDeltaBaseMismatch(t *testing.T) {
	base, _, delta := buildDeltaPair(t, 42)
	// Grow the target past the recorded base: the delta must be rejected
	// with ErrDeltaBase, not applied at the wrong offset.
	base.AddVertex(base.Dict().Intern("extra"))
	err := base.ApplyDelta(bytes.NewReader(delta))
	if !errors.Is(err, ErrDeltaBase) {
		t.Fatalf("want ErrDeltaBase, got %v", err)
	}
}

func TestDeltaFromEmptyBase(t *testing.T) {
	// A delta over the empty graph (baseDict=1, the reserved empty label)
	// reconstructs the whole graph.
	g := New()
	l := g.Dict().Intern("a")
	v0 := g.AddVertex(l)
	v1 := g.AddVertex(l)
	g.AddEdge(v0, v1, l)
	var db bytes.Buffer
	if err := g.EncodeDelta(&db, 1, 0, 0); err != nil {
		t.Fatalf("encode: %v", err)
	}
	fresh := New()
	if err := fresh.ApplyDelta(bytes.NewReader(db.Bytes())); err != nil {
		t.Fatalf("apply: %v", err)
	}
	graphsEqual(t, g, fresh)
}

// TestDeltaCorruption flips and truncates delta bytes at every offset; every
// outcome must be either a clean ErrBadFormat/ErrDeltaBase error or a valid
// apply — never a panic — and a failed apply must leave the target graph
// untouched except for a fully-applied prefix... which cannot happen: apply
// is all-or-nothing, so any error must leave the graph byte-identical.
func TestDeltaCorruption(t *testing.T) {
	base, _, delta := buildDeltaPair(t, 7)
	var want bytes.Buffer
	if err := base.Save(&want); err != nil {
		t.Fatal(err)
	}
	check := func(data []byte) {
		t.Helper()
		// Work on a fresh copy each time so a (legitimately) successful
		// apply does not contaminate later iterations.
		g, err := Load(bytes.NewReader(want.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if err := g.ApplyDelta(bytes.NewReader(data)); err != nil {
			if !errors.Is(err, ErrBadFormat) && !errors.Is(err, ErrDeltaBase) {
				t.Fatalf("unexpected error type: %v", err)
			}
			var got bytes.Buffer
			if err := g.Save(&got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want.Bytes(), got.Bytes()) {
				t.Fatalf("failed apply mutated the graph")
			}
		}
	}
	for cut := 0; cut < len(delta); cut++ {
		check(delta[:cut])
	}
	for off := 0; off < len(delta); off++ {
		mut := append([]byte(nil), delta...)
		mut[off] ^= 0xff
		check(mut)
	}
}

func TestDeltaTrailingBytes(t *testing.T) {
	base, _, delta := buildDeltaPair(t, 3)
	err := base.ApplyDelta(bytes.NewReader(append(append([]byte(nil), delta...), 0x00)))
	if !errors.Is(err, ErrBadFormat) {
		t.Fatalf("trailing bytes: want ErrBadFormat, got %v", err)
	}
}

func TestEncodeDeltaBadBase(t *testing.T) {
	g := New()
	g.AddVertex(g.Dict().Intern("a"))
	var buf bytes.Buffer
	for _, base := range [][3]int{{0, 0, 0}, {1, 5, 0}, {1, 0, 5}, {9, 0, 0}} {
		if err := g.EncodeDelta(&buf, base[0], base[1], base[2]); err == nil {
			t.Fatalf("EncodeDelta(%v) accepted an out-of-range base", base)
		}
	}
}
