package graph

import (
	"bytes"
	"errors"
	"testing"
)

// The server loads untrusted .pg files, so Load must reject every malformed
// input with an ErrBadFormat-wrapped error and must never panic.

// testGraph builds a small graph exercising every serialized section:
// dictionary, vertices, edges, vertex props of all value kinds, edge props.
func testGraph(t *testing.T) *Graph {
	t.Helper()
	g := New()
	e := g.Dict().Intern("E")
	a := g.Dict().Intern("A")
	u := g.Dict().Intern("used")
	v0 := g.AddVertex(e)
	v1 := g.AddVertex(a)
	v2 := g.AddVertex(e)
	eid := g.AddEdge(v1, v0, u)
	g.AddEdge(v2, v1, g.Dict().Intern("gen"))
	g.SetVertexProp(v0, "name", String("dataset"))
	g.SetVertexProp(v0, "version", Int(3))
	g.SetVertexProp(v1, "score", Float(0.5))
	g.SetVertexProp(v2, "final", Bool(true))
	g.SetEdgeProp(eid, "role", String("input"))
	return g
}

func saveBytes(t *testing.T, g *Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// loadNoPanic runs Load and converts a panic into a test failure.
func loadNoPanic(t *testing.T, data []byte) (g *Graph, err error) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("Load panicked on %d bytes: %v", len(data), r)
		}
	}()
	return Load(bytes.NewReader(data))
}

func TestLoadTruncatedAtEveryByte(t *testing.T) {
	data := saveBytes(t, testGraph(t))
	if g, err := loadNoPanic(t, data); err != nil || g.NumVertices() != 3 {
		t.Fatalf("intact round trip failed: %v", err)
	}
	for i := 0; i < len(data); i++ {
		_, err := loadNoPanic(t, data[:i])
		if err == nil {
			t.Fatalf("truncation at byte %d/%d silently accepted", i, len(data))
		}
		if !errors.Is(err, ErrBadFormat) {
			t.Fatalf("truncation at byte %d: error not ErrBadFormat-wrapped: %v", i, err)
		}
	}
}

func TestLoadBadMagic(t *testing.T) {
	data := saveBytes(t, testGraph(t))
	bad := append([]byte("XGS1"), data[4:]...)
	if _, err := loadNoPanic(t, bad); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("bad magic: %v", err)
	}
	if _, err := loadNoPanic(t, nil); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("empty input: %v", err)
	}
}

// TestLoadCorruptEveryByte flips every byte of a valid stream through a few
// corruptions; Load must either reject with ErrBadFormat or decode something
// structurally coherent (a flipped property byte can yield a different but
// valid graph) — but never panic.
func TestLoadCorruptEveryByte(t *testing.T) {
	data := saveBytes(t, testGraph(t))
	for i := 0; i < len(data); i++ {
		for _, delta := range []byte{0x01, 0x80, 0xff} {
			mut := append([]byte(nil), data...)
			mut[i] ^= delta
			g, err := loadNoPanic(t, mut)
			if err != nil {
				if i >= 4 && !errors.Is(err, ErrBadFormat) {
					t.Fatalf("byte %d ^ %#x: error not ErrBadFormat-wrapped: %v", i, delta, err)
				}
				continue
			}
			// Accepted: the decoded graph must at least be internally
			// consistent enough to walk.
			for e := 0; e < g.NumEdges(); e++ {
				if int(g.Src(EdgeID(e))) >= g.NumVertices() || int(g.Dst(EdgeID(e))) >= g.NumVertices() {
					t.Fatalf("byte %d ^ %#x: accepted graph has dangling edge", i, delta)
				}
			}
		}
	}
}

// TestLoadHostileCounts feeds hand-built streams with absurd section counts;
// the decoder must refuse them before allocating.
func TestLoadHostileCounts(t *testing.T) {
	// varint helper
	varint := func(x uint64) []byte {
		var b []byte
		for x >= 0x80 {
			b = append(b, byte(x)|0x80)
			x >>= 7
		}
		return append(b, byte(x))
	}
	cases := [][]byte{
		// dictionary claims 2^20 labels
		append([]byte("PGS1"), varint(1<<20)...),
		// huge string length inside the dictionary
		append(append([]byte("PGS1"), varint(1)...), varint(1<<40)...),
		// zero labels, 2^40 vertices
		append(append([]byte("PGS1"), varint(0)...), varint(1<<40)...),
		// a just-under-the-cap string length (2^27) with no data behind it:
		// must fail at EOF without a giant upfront allocation
		append(append([]byte("PGS1"), varint(1)...), varint(1<<27)...),
	}
	// Hostile props count: zero labels is invalid for a vertex, so build
	// a minimal valid prefix (1 label "E", 1 vertex, 0 edges), then claim
	// one props record with 2^23 keys and no data.
	hostileProps := []byte("PGS1")
	hostileProps = append(hostileProps, varint(1)...) // 1 dict entry
	hostileProps = append(hostileProps, varint(1)...) // len("E")
	hostileProps = append(hostileProps, 'E')
	hostileProps = append(hostileProps, varint(1)...)     // 1 vertex
	hostileProps = append(hostileProps, varint(1)...)     // label id 1
	hostileProps = append(hostileProps, varint(0)...)     // 0 edges
	hostileProps = append(hostileProps, varint(1)...)     // 1 non-nil props record
	hostileProps = append(hostileProps, varint(0)...)     // for vertex 0
	hostileProps = append(hostileProps, varint(1<<23)...) // claiming 2^23 keys
	cases = append(cases, hostileProps)
	for i, data := range cases {
		if _, err := loadNoPanic(t, data); !errors.Is(err, ErrBadFormat) {
			t.Fatalf("hostile case %d: %v", i, err)
		}
	}
}

// TestLoadOutOfRangeRefs corrupts structural references: a vertex label and
// an edge endpoint beyond their tables.
func TestLoadOutOfRangeRefs(t *testing.T) {
	g := New()
	l := g.Dict().Intern("E")
	g.AddVertex(l)
	g.AddVertex(l)
	g.AddEdge(0, 1, l)
	data := saveBytes(t, g)

	// The stream layout here: magic(4) | 1 | "E"(2) | nv=2 | l l | ne=1 |
	// src dst l | props... Patch the vertex label bytes and edge endpoint
	// bytes to out-of-range values.
	patch := func(off int, val byte) []byte {
		mut := append([]byte(nil), data...)
		mut[off] = val
		return mut
	}
	// offsets: 0-3 magic, 4 dictLen, 5-6 "E", 7 nv, 8 label0, 9 label1,
	// 10 ne, 11 src, 12 dst, 13 elabel
	for name, mut := range map[string][]byte{
		"vertex label out of range": patch(8, 9),
		"edge src out of range":     patch(11, 7),
		"edge dst out of range":     patch(12, 7),
		"edge label out of range":   patch(13, 9),
	} {
		if _, err := loadNoPanic(t, mut); !errors.Is(err, ErrBadFormat) {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// TestLoadCorruptPropIndex points a property record at a vertex that does
// not exist.
func TestLoadCorruptPropIndex(t *testing.T) {
	g := New()
	l := g.Dict().Intern("E")
	v := g.AddVertex(l)
	g.SetVertexProp(v, "k", Int(1))
	data := saveBytes(t, g)
	// Find the vertex-props section: magic(4) | 1 | "E"(2) | nv=1 | label |
	// ne=0 | nonNil=1 | idx=0 | cnt=1 | "k"(2) | kind val
	// idx sits right after nonNil.
	idxOff := 4 + 1 + 2 + 1 + 1 + 1 + 1
	mut := append([]byte(nil), data...)
	mut[idxOff] = 5 // vertex 5 of 1
	if _, err := loadNoPanic(t, mut); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("corrupt prop index: %v", err)
	}
	// And a bogus value kind.
	kindOff := len(data) - 2
	mut = append([]byte(nil), data...)
	mut[kindOff] = 200
	if _, err := loadNoPanic(t, mut); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("corrupt value kind: %v", err)
	}
}
