package difftest

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/cypher"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/prov"
)

// Vectorized-vs-scalar differential: the frontier-at-a-time engine
// (core/frontier.go) and the snapshot-aware Cypher planner (cypher/plan.go)
// both promise bit-identical results to their scalar counterparts. This
// harness replays randomized ingest scripts through incremental snapshot
// chains — so the two-segment CSR rows of extended blocks are exercised,
// not just freshly frozen contiguous ones — and diffs both engines at every
// epoch.

// DiffVecScalar runs one PgSeg query on the snapshot with the vectorized
// engine and with ScalarTraversal forced, and asserts identical segments.
func DiffVecScalar(p *prov.Graph, q core.Query) error {
	vs, verr := core.NewEngine(p, core.Options{}).Segment(q)
	ss, serr := core.NewEngine(p, core.Options{ScalarTraversal: true}).Segment(q)
	if (verr == nil) != (serr == nil) {
		return fmt.Errorf("error mismatch: vec %v vs scalar %v", verr, serr)
	}
	if verr != nil {
		if verr.Error() != serr.Error() {
			return fmt.Errorf("error text mismatch: %v vs %v", verr, serr)
		}
		return nil
	}
	return diffSegPair(vs, ss)
}

// DiffClosures diffs the ancestry-closure building block in both directions
// under the query's boundary.
func DiffClosures(p *prov.Graph, q core.Query) error {
	vecEng := core.NewEngine(p, core.Options{})
	scaEng := core.NewEngine(p, core.Options{ScalarTraversal: true})
	for _, fwd := range []bool{true, false} {
		seeds := q.Dst
		if !fwd {
			seeds = q.Src
		}
		v := vecEng.AncestryClosure(seeds, q.Boundary, fwd)
		s := scaEng.AncestryClosure(seeds, q.Boundary, fwd)
		vl, sl := v.ToSlice(), s.ToSlice()
		if len(vl) != len(sl) {
			return fmt.Errorf("closure(fwd=%v) size mismatch: vec %d vs scalar %d", fwd, len(vl), len(sl))
		}
		for i := range vl {
			if vl[i] != sl[i] {
				return fmt.Errorf("closure(fwd=%v) mismatch at %d: %d vs %d", fwd, i, vl[i], sl[i])
			}
		}
	}
	return nil
}

// DiffCypherPlanner runs a bounded variable-length pattern from a random
// entity with the planner on and off and asserts identical rows in identical
// order.
func DiffCypherPlanner(rng *rand.Rand, p *prov.Graph) error {
	ents := p.Entities()
	if len(ents) == 0 {
		return nil
	}
	b := ents[rng.Intn(len(ents))]
	q := fmt.Sprintf("match p=(b:E)<-[:U|G*1..3]-(e) where id(b) in [%d] return p", b)
	planned, perr := cypher.NewProvEvaluator(p, cypher.Options{}).Run(q)
	naive, nerr := cypher.NewProvEvaluator(p, cypher.Options{NoPlanner: true}).Run(q)
	if (perr == nil) != (nerr == nil) {
		return fmt.Errorf("cypher error mismatch: planned %v vs naive %v", perr, nerr)
	}
	if perr != nil {
		return nil
	}
	pr, nr := renderRows(planned), renderRows(naive)
	if pr != nr {
		return fmt.Errorf("cypher planner diverges on %q: %d vs %d rows", q, len(planned.Rows), len(naive.Rows))
	}
	return nil
}

func renderRows(res *cypher.Result) string {
	var sb strings.Builder
	for _, r := range res.Rows {
		for i, v := range r {
			if i > 0 {
				sb.WriteString(" | ")
			}
			sb.WriteString(v.String())
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// CheckVecScript replays a gen.Pd lifecycle graph in randomized edge batches
// through an incremental snapshot chain and, at every epoch, diffs the
// vectorized engines against their scalar counterparts: PgSeg segments on
// randomized queries, ancestry closures in both directions, and the Cypher
// planner on bounded patterns.
func CheckVecScript(seed int64, size, epochs, queries int) (Result, error) {
	rng := rand.New(rand.NewSource(seed))
	src := gen.Pd(gen.PdConfig{N: size, Seed: seed}).PG()
	rep := NewReplayer(src)
	prov.Wrap(rep.Graph())

	cuts := randomCuts(rng, src.NumEdges(), epochs)
	var prev *graph.Graph
	var res Result
	for ep, cut := range cuts {
		rep.StepEdges(cut)
		if ep == len(cuts)-1 {
			rep.FinishVertices()
		}
		incr, inc := rep.Graph().ExtendFrozen(prev)
		res.Epochs++
		if inc {
			res.Incremental++
		}
		p := prov.Wrap(incr)
		for qi := 0; qi < queries; qi++ {
			q, ok := randomQuery(rng, p)
			if !ok {
				break
			}
			if err := DiffVecScalar(p, q); err != nil {
				return res, fmt.Errorf("seed %d epoch %d query %d: %w", seed, ep, qi, err)
			}
			if err := DiffClosures(p, q); err != nil {
				return res, fmt.Errorf("seed %d epoch %d query %d: %w", seed, ep, qi, err)
			}
		}
		if err := DiffCypherPlanner(rng, p); err != nil {
			return res, fmt.Errorf("seed %d epoch %d: %w", seed, ep, err)
		}
		prev = incr
	}
	return res, nil
}
