// Package difftest is the differential-testing harness that gates the
// incremental epoch snapshots (graph.ExtendFrozen): it replays randomized
// ingest scripts and asserts, at every epoch, that the incrementally
// extended snapshot is indistinguishable from a full Freeze rebuild —
// identical FrozenNeighbors rows, all-edge Out/In views, dictionary and
// label-index contents, and identical core.Segment results for randomized
// queries.
//
// The checks are plain functions returning errors (no *testing.T) so the
// same script runners back table tests, property-based loops over many
// seeds, and native fuzz targets.
package difftest

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/prov"
)

// Result summarizes one differential script run.
type Result struct {
	// Epochs is the number of snapshot pairs compared.
	Epochs int
	// Incremental counts epochs where ExtendFrozen took the incremental
	// path; the remainder fell back to a full rebuild (first epoch, or
	// oversized deltas).
	Incremental int
}

// CheckGraphScript replays a randomized graph-level ingest script — vertex
// and edge appends over a growing label set, with properties — derived
// deterministically from seed, freezing after every batch, and diffs the
// incremental snapshot chain against full rebuilds. opsPerEpoch bounds the
// batch size; epochs is the number of commit points.
func CheckGraphScript(seed int64, opsPerEpoch, epochs int) (Result, error) {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	labels := []graph.Label{g.Dict().Intern("l0")}
	var prev *graph.Graph
	var res Result
	for ep := 0; ep < epochs; ep++ {
		n := 1 + rng.Intn(opsPerEpoch)
		for i := 0; i < n; i++ {
			switch r := rng.Float64(); {
			case r < 0.05:
				labels = append(labels, g.Dict().Intern(fmt.Sprintf("l%d", len(labels))))
			case r < 0.45 || g.NumVertices() < 2:
				v := g.AddVertex(labels[rng.Intn(len(labels))])
				if rng.Float64() < 0.3 {
					g.SetVertexProp(v, "p", graph.Int(rng.Int63n(100)))
				}
			default:
				src := graph.VertexID(rng.Intn(g.NumVertices()))
				dst := graph.VertexID(rng.Intn(g.NumVertices()))
				e := g.AddEdge(src, dst, labels[rng.Intn(len(labels))])
				if rng.Float64() < 0.2 {
					g.SetEdgeProp(e, "w", graph.Int(rng.Int63n(100)))
				}
			}
		}
		full := g.Freeze()
		incr, inc := g.ExtendFrozen(prev)
		res.Epochs++
		if inc {
			res.Incremental++
		}
		if err := DiffSnapshots(full, incr); err != nil {
			return res, fmt.Errorf("seed %d epoch %d: %w", seed, ep, err)
		}
		prev = incr
	}
	return res, nil
}

// CheckProvScript generates a lifecycle provenance graph (gen.Pd) of about
// size vertices, replays it into a fresh graph in randomized edge batches,
// and at every epoch diffs the snapshots and additionally runs queries
// randomized PgSeg queries against both, asserting identical segments.
func CheckProvScript(seed int64, size, epochs, queries int) (Result, error) {
	rng := rand.New(rand.NewSource(seed))
	src := gen.Pd(gen.PdConfig{N: size, Seed: seed}).PG()
	rep := NewReplayer(src)
	// Wrapping the replica interns the PROV labels (a no-op id-wise: the
	// replayer pre-interned the source dictionary) so the snapshots below
	// can be wrapped without mutating state.
	prov.Wrap(rep.Graph())

	cuts := randomCuts(rng, src.NumEdges(), epochs)
	var prev *graph.Graph
	var res Result
	for ep, cut := range cuts {
		rep.StepEdges(cut)
		if ep == len(cuts)-1 {
			rep.FinishVertices()
		}
		full := rep.Graph().Freeze()
		incr, inc := rep.Graph().ExtendFrozen(prev)
		res.Epochs++
		if inc {
			res.Incremental++
		}
		if err := DiffSnapshots(full, incr); err != nil {
			return res, fmt.Errorf("seed %d epoch %d: %w", seed, ep, err)
		}
		fullP, incrP := prov.Wrap(full), prov.Wrap(incr)
		for qi := 0; qi < queries; qi++ {
			q, ok := randomQuery(rng, fullP)
			if !ok {
				break
			}
			if err := DiffSegments(fullP, incrP, q); err != nil {
				return res, fmt.Errorf("seed %d epoch %d query %d: %w", seed, ep, qi, err)
			}
		}
		prev = incr
	}
	return res, nil
}

// randomCuts picks n increasing commit points over ne edges, ending at ne.
func randomCuts(rng *rand.Rand, ne, n int) []int {
	if n < 1 {
		n = 1
	}
	cuts := make([]int, 0, n)
	for i := 0; i < n-1; i++ {
		cuts = append(cuts, rng.Intn(ne+1))
	}
	cuts = append(cuts, ne)
	// Insertion sort: n is small and the cuts must be non-decreasing.
	for i := 1; i < len(cuts); i++ {
		for j := i; j > 0 && cuts[j] < cuts[j-1]; j-- {
			cuts[j], cuts[j-1] = cuts[j-1], cuts[j]
		}
	}
	return cuts
}

// randomQuery builds a randomized PgSeg query over the graph's current
// entities: 1-2 sources, 1-2 destinations, sometimes a relation-exclusion
// boundary or an expansion, covering the cached-query shapes the serving
// layer sees.
func randomQuery(rng *rand.Rand, p *prov.Graph) (core.Query, bool) {
	ents := p.Entities()
	if len(ents) < 2 {
		return core.Query{}, false
	}
	pick := func(n int) []graph.VertexID {
		out := make([]graph.VertexID, 0, n)
		for i := 0; i < n; i++ {
			out = append(out, ents[rng.Intn(len(ents))])
		}
		return out
	}
	q := core.Query{Src: pick(1 + rng.Intn(2)), Dst: pick(1 + rng.Intn(2))}
	if rng.Float64() < 0.3 {
		q.Boundary.ExcludeRels = []prov.Rel{prov.Rel(rng.Intn(5))}
	}
	if rng.Float64() < 0.3 {
		q.Boundary.Expansions = []core.Expansion{{Within: pick(1), K: 1 + rng.Intn(3)}}
	}
	return q, true
}

// DiffSnapshots asserts two frozen snapshots of the same graph state are
// indistinguishable: same shape, dictionary, label index, all-edge Out/In
// views, and identical FrozenNeighbors rows for every vertex, label and
// direction.
func DiffSnapshots(full, incr *graph.Graph) error {
	if full.NumVertices() != incr.NumVertices() || full.NumEdges() != incr.NumEdges() {
		return fmt.Errorf("shape mismatch: full %d/%d vs incr %d/%d",
			full.NumVertices(), full.NumEdges(), incr.NumVertices(), incr.NumEdges())
	}
	fd, id := full.Dict(), incr.Dict()
	if fd.Len() != id.Len() {
		return fmt.Errorf("dict length mismatch: %d vs %d", fd.Len(), id.Len())
	}
	fds, ids := full.Degrees(), incr.Degrees()
	if fds == nil || ids == nil {
		return fmt.Errorf("missing degree stats: full %v incr %v", fds != nil, ids != nil)
	}
	if fds.NumVertices() != ids.NumVertices() || fds.NumEdges() != ids.NumEdges() {
		return fmt.Errorf("degree stats shape mismatch: full %d/%d vs incr %d/%d",
			fds.NumVertices(), fds.NumEdges(), ids.NumVertices(), ids.NumEdges())
	}
	for l := 0; l < fd.Len(); l++ {
		if fd.Name(graph.Label(l)) != id.Name(graph.Label(l)) {
			return fmt.Errorf("dict[%d] mismatch: %q vs %q", l, fd.Name(graph.Label(l)), id.Name(graph.Label(l)))
		}
		if fds.EdgesWithLabel(graph.Label(l)) != ids.EdgesWithLabel(graph.Label(l)) {
			return fmt.Errorf("degree stats for %q mismatch: full %d vs incr %d",
				fd.Name(graph.Label(l)), fds.EdgesWithLabel(graph.Label(l)), ids.EdgesWithLabel(graph.Label(l)))
		}
		fv, iv := full.VerticesWithLabel(graph.Label(l)), incr.VerticesWithLabel(graph.Label(l))
		if !vertexSlicesEq(fv, iv) {
			return fmt.Errorf("label index %q mismatch: %v vs %v", fd.Name(graph.Label(l)), fv, iv)
		}
	}
	for v := 0; v < full.NumVertices(); v++ {
		id := graph.VertexID(v)
		if full.VertexLabel(id) != incr.VertexLabel(id) {
			return fmt.Errorf("vertex %d label mismatch", v)
		}
		if !edgeSlicesEq(full.Out(id), incr.Out(id)) {
			return fmt.Errorf("Out(%d) mismatch: %v vs %v", v, full.Out(id), incr.Out(id))
		}
		if !edgeSlicesEq(full.In(id), incr.In(id)) {
			return fmt.Errorf("In(%d) mismatch: %v vs %v", v, full.In(id), incr.In(id))
		}
		for l := 0; l < fd.Len(); l++ {
			for _, out := range []bool{true, false} {
				fn, fe, _ := full.FrozenNeighbors(id, graph.Label(l), out)
				xn, xe, _ := incr.FrozenNeighbors(id, graph.Label(l), out)
				if !vertexSlicesEq(fn, xn) || !edgeSlicesEq(fe, xe) {
					return fmt.Errorf("FrozenNeighbors(%d, %q, out=%v) mismatch: (%v,%v) vs (%v,%v)",
						v, fd.Name(graph.Label(l)), out, fn, fe, xn, xe)
				}
			}
		}
	}
	return nil
}

// DiffSegments evaluates the same PgSeg query against both snapshots and
// asserts identical results: vertex set, edge set, rule attribution and
// revalidation support set.
func DiffSegments(fullP, incrP *prov.Graph, q core.Query) error {
	fs, ferr := core.NewEngine(fullP, core.Options{}).Segment(q)
	is, ierr := core.NewEngine(incrP, core.Options{}).Segment(q)
	if (ferr == nil) != (ierr == nil) {
		return fmt.Errorf("error mismatch: full %v vs incr %v", ferr, ierr)
	}
	if ferr != nil {
		if ferr.Error() != ierr.Error() {
			return fmt.Errorf("error text mismatch: %v vs %v", ferr, ierr)
		}
		return nil
	}
	return diffSegPair(fs, is)
}

// diffSegPair asserts two segments are identical in every externally
// observable dimension: vertex set, edge set, rule attribution, support set.
func diffSegPair(fs, is *core.Segment) error {
	if !vertexSlicesEq(fs.Vertices, is.Vertices) {
		return fmt.Errorf("segment vertices mismatch: %v vs %v", fs.Vertices, is.Vertices)
	}
	if !edgeSlicesEq(fs.Edges, is.Edges) {
		return fmt.Errorf("segment edges mismatch: %v vs %v", fs.Edges, is.Edges)
	}
	if len(fs.ByRule) != len(is.ByRule) {
		return fmt.Errorf("segment ByRule size mismatch: %d vs %d", len(fs.ByRule), len(is.ByRule))
	}
	for v, r := range fs.ByRule {
		if is.ByRule[v] != r {
			return fmt.Errorf("segment ByRule[%d] mismatch: %v vs %v", v, r, is.ByRule[v])
		}
	}
	fsup, isup := fs.Support().ToSlice(), is.Support().ToSlice()
	if len(fsup) != len(isup) {
		return fmt.Errorf("support size mismatch: %d vs %d", len(fsup), len(isup))
	}
	for i := range fsup {
		if fsup[i] != isup[i] {
			return fmt.Errorf("support mismatch at %d: %d vs %d", i, fsup[i], isup[i])
		}
	}
	return nil
}

func vertexSlicesEq(a, b []graph.VertexID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func edgeSlicesEq(a, b []graph.EdgeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
