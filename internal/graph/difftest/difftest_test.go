package difftest

import "testing"

// The property-based gate for incremental snapshots: many randomized
// ingest scripts, each diffing the incremental snapshot chain against full
// rebuilds at every epoch. Short mode still runs well over 100 scripts
// (the acceptance bar for this harness); long mode scales the coverage up.

// TestGraphScriptsDifferential replays randomized graph-level scripts —
// growing label sets, interleaved vertex/edge appends, properties — and
// requires zero divergence.
func TestGraphScriptsDifferential(t *testing.T) {
	scripts, ops, epochs := 120, 60, 6
	if !testing.Short() {
		scripts, ops, epochs = 400, 120, 10
	}
	incremental := 0
	for seed := 0; seed < scripts; seed++ {
		res, err := CheckGraphScript(int64(seed), ops, epochs)
		if err != nil {
			t.Fatal(err)
		}
		incremental += res.Incremental
	}
	// The harness is only meaningful if the incremental path is actually
	// exercised; a silent always-fallback would vacuously pass.
	if incremental == 0 {
		t.Fatal("no script epoch took the incremental freeze path")
	}
	t.Logf("%d scripts, %d incremental epochs", scripts, incremental)
}

// TestProvScriptsDifferential replays gen.Pd lifecycle graphs in randomized
// batches and additionally diffs PgSeg segment results (vertices, edges,
// rule attribution, support sets) between the snapshot kinds at every epoch.
func TestProvScriptsDifferential(t *testing.T) {
	scripts, size, epochs, queries := 40, 150, 5, 3
	if !testing.Short() {
		scripts, size, epochs, queries = 120, 400, 8, 5
	}
	incremental := 0
	for seed := 0; seed < scripts; seed++ {
		res, err := CheckProvScript(int64(seed), size, epochs, queries)
		if err != nil {
			t.Fatal(err)
		}
		incremental += res.Incremental
	}
	if incremental == 0 {
		t.Fatal("no script epoch took the incremental freeze path")
	}
	t.Logf("%d scripts, %d incremental epochs", scripts, incremental)
}

// TestVectorizedScalarDifferential replays randomized scripts through
// incremental snapshot chains and diffs the vectorized frontier engine and
// the Cypher planner against their scalar counterparts at every epoch:
// segments, ancestry closures and bounded pattern rows must be
// bit-identical.
func TestVectorizedScalarDifferential(t *testing.T) {
	scripts, size, epochs, queries := 30, 150, 4, 3
	if !testing.Short() {
		scripts, size, epochs, queries = 80, 400, 6, 5
	}
	incremental := 0
	for seed := 0; seed < scripts; seed++ {
		res, err := CheckVecScript(int64(seed), size, epochs, queries)
		if err != nil {
			t.Fatal(err)
		}
		incremental += res.Incremental
	}
	// The vectorized engine must have been diffed over extended (two-
	// segment) CSR blocks, not just fresh contiguous snapshots.
	if incremental == 0 {
		t.Fatal("no script epoch took the incremental freeze path")
	}
	t.Logf("%d scripts, %d incremental epochs", scripts, incremental)
}

// FuzzExtendFrozen lets the fuzzer hunt for divergent ingest scripts beyond
// the fixed seed sweep.
func FuzzExtendFrozen(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		if _, err := CheckGraphScript(seed, 40, 5); err != nil {
			t.Fatal(err)
		}
		if _, err := CheckProvScript(seed, 80, 4, 2); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzVecScalar hunts for scripts where the vectorized engines diverge from
// the scalar reference beyond the fixed seed sweep.
func FuzzVecScalar(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		if _, err := CheckVecScript(seed, 100, 4, 2); err != nil {
			t.Fatal(err)
		}
	})
}

// TestSolverDifferential runs the VC2 solver matrix (SimProvTst and
// SimProvAlg, each vectorized and scalar — see solverdiff.go) over
// randomized incremental snapshot chains.
func TestSolverDifferential(t *testing.T) {
	scripts, size, epochs, queries := 25, 120, 4, 2
	if !testing.Short() {
		scripts, size, epochs, queries = 60, 300, 6, 4
	}
	incremental := 0
	for seed := 0; seed < scripts; seed++ {
		res, err := CheckSolverScript(int64(seed), size, epochs, queries)
		if err != nil {
			t.Fatal(err)
		}
		incremental += res.Incremental
	}
	// The solvers' row unions must have been diffed over extended
	// (two-segment) CSR blocks, not just fresh contiguous snapshots.
	if incremental == 0 {
		t.Fatal("no script epoch took the incremental freeze path")
	}
	t.Logf("%d scripts, %d incremental epochs", scripts, incremental)
}

func FuzzVecSolver(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		if _, err := CheckSolverScript(seed, 90, 4, 2); err != nil {
			t.Fatal(err)
		}
	})
}
