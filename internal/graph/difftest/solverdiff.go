package difftest

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/prov"
)

// Solver-level differential: the set-at-a-time VC2 solvers
// (core/simprovvec.go) promise the exact vertex sets of their scalar
// worklist counterparts. DiffSolvers runs the full solver matrix on one
// query — SimProvTst and SimProvAlg, each forced through its vectorized
// path and with ScalarTraversal forced — and asserts all four produce the
// same VC2 set, then diffs whole segments with the solver forced each way.
// CheckSolverScript replays the matrix over incremental ExtendFrozen
// chains, so the vectorized row unions see two-segment extended CSR rows,
// not just freshly frozen contiguous ones.

// solverVariant names one (solver, traversal) corner of the matrix.
type solverVariant struct {
	name string
	opts core.Options
}

func solverMatrix() []solverVariant {
	return []solverVariant{
		{"tst-scalar", core.Options{Solver: core.SolverTst, ScalarTraversal: true}},
		{"tst-vec", core.Options{Solver: core.SolverTst, ForceVecSolver: true}},
		{"alg-scalar", core.Options{Solver: core.SolverAlg, ScalarTraversal: true}},
		{"alg-vec", core.Options{Solver: core.SolverAlg, ForceVecSolver: true}},
	}
}

// DiffSolvers asserts the four solver variants agree on the query's VC2 set
// (cross-solver equality is the paper's Thm. 1/2 contract; scalar-vs-vec
// equality is the vectorization contract), then diffs full segments with
// the default solver forced vectorized vs scalar.
func DiffSolvers(p *prov.Graph, q core.Query) error {
	var ref []uint32
	var refName string
	for _, v := range solverMatrix() {
		set, err := core.NewEngine(p, v.opts).SimilarPaths(q)
		if err != nil {
			return fmt.Errorf("%s: %w", v.name, err)
		}
		got := set.ToSlice()
		if ref == nil {
			ref, refName = got, v.name
			continue
		}
		if len(got) != len(ref) {
			return fmt.Errorf("VC2 size mismatch: %s %d vs %s %d", v.name, len(got), refName, len(ref))
		}
		for i := range got {
			if got[i] != ref[i] {
				return fmt.Errorf("VC2 mismatch at %d: %s %d vs %s %d", i, v.name, got[i], refName, ref[i])
			}
		}
	}
	vs, verr := core.NewEngine(p, core.Options{ForceVecSolver: true}).Segment(q)
	ss, serr := core.NewEngine(p, core.Options{ScalarTraversal: true}).Segment(q)
	if (verr == nil) != (serr == nil) {
		return fmt.Errorf("segment error mismatch: vec %v vs scalar %v", verr, serr)
	}
	if verr != nil {
		return nil
	}
	return diffSegPair(vs, ss)
}

// CheckSolverScript replays a gen.Pd lifecycle graph in randomized edge
// batches through an incremental snapshot chain and runs DiffSolvers on
// randomized queries at every epoch.
func CheckSolverScript(seed int64, size, epochs, queries int) (Result, error) {
	rng := rand.New(rand.NewSource(seed))
	src := gen.Pd(gen.PdConfig{N: size, Seed: seed}).PG()
	rep := NewReplayer(src)
	prov.Wrap(rep.Graph())

	cuts := randomCuts(rng, src.NumEdges(), epochs)
	var prev *graph.Graph
	var res Result
	for ep, cut := range cuts {
		rep.StepEdges(cut)
		if ep == len(cuts)-1 {
			rep.FinishVertices()
		}
		incr, inc := rep.Graph().ExtendFrozen(prev)
		res.Epochs++
		if inc {
			res.Incremental++
		}
		p := prov.Wrap(incr)
		for qi := 0; qi < queries; qi++ {
			q, ok := randomQuery(rng, p)
			if !ok {
				break
			}
			if err := DiffSolvers(p, q); err != nil {
				return res, fmt.Errorf("seed %d epoch %d query %d: %w", seed, ep, qi, err)
			}
		}
		prev = incr
	}
	return res, nil
}
