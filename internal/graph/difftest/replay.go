package difftest

import "repro/internal/graph"

// Replayer re-ingests an existing property graph into a fresh live graph
// in increments, preserving every id: vertices and edges are appended in id
// order (edges pull in the vertices they need first), labels keep their
// interned ids, and properties are copied at append time so they land above
// the snapshot watermark. It turns any generated graph (e.g. gen.Pd) into
// an incremental ingest script with arbitrary commit points.
type Replayer struct {
	src   *graph.Graph
	g     *graph.Graph
	nextV int
	nextE int
}

// NewReplayer prepares a replay of src into a fresh graph. The source's
// dictionary is interned up front so label ids match the source exactly
// (prov.Wrap on the replica then resolves the same labels).
func NewReplayer(src *graph.Graph) *Replayer {
	g := graph.New()
	for l := 0; l < src.Dict().Len(); l++ {
		g.Dict().Intern(src.Dict().Name(graph.Label(l)))
	}
	return &Replayer{src: src, g: g}
}

// Graph returns the live replica.
func (r *Replayer) Graph() *graph.Graph { return r.g }

// StepEdges replays source edges [nextE, toEdge), first appending any
// vertices they reference. Calls with toEdge at or below the current
// position are no-ops, so arbitrary non-decreasing cut sequences are fine.
func (r *Replayer) StepEdges(toEdge int) {
	if toEdge > r.src.NumEdges() {
		toEdge = r.src.NumEdges()
	}
	for ; r.nextE < toEdge; r.nextE++ {
		e := graph.EdgeID(r.nextE)
		s, d := r.src.Src(e), r.src.Dst(e)
		need := int(s)
		if int(d) > need {
			need = int(d)
		}
		r.addVerticesThrough(need)
		id := r.g.AddEdge(s, d, r.src.EdgeLabel(e))
		for k, v := range r.src.EdgeProps(e) {
			r.g.SetEdgeProp(id, k, v)
		}
	}
}

// FinishVertices appends the source vertices no edge referenced (trailing
// isolated vertices), completing the replay.
func (r *Replayer) FinishVertices() {
	r.addVerticesThrough(r.src.NumVertices() - 1)
}

func (r *Replayer) addVerticesThrough(v int) {
	for ; r.nextV <= v; r.nextV++ {
		id := r.g.AddVertex(r.src.VertexLabel(graph.VertexID(r.nextV)))
		for k, val := range r.src.VertexProps(graph.VertexID(r.nextV)) {
			r.g.SetVertexProp(id, k, val)
		}
	}
}
