package graph

import (
	"fmt"
	"testing"
)

// countEdgesByLabel recounts per-label edges the slow way, from the columnar
// arrays, as the ground truth for both snapshot paths.
func countEdgesByLabel(g *Graph) []int {
	counts := make([]int, g.Dict().Len())
	for e := 0; e < g.NumEdges(); e++ {
		counts[g.EdgeLabel(EdgeID(e))]++
	}
	return counts
}

func TestDegreeStatsFreeze(t *testing.T) {
	g := randomGraph(200, 800, 11)
	if g.Degrees() != nil {
		t.Fatal("live graph must have nil degree stats")
	}
	fz := g.Freeze()
	ds := fz.Degrees()
	if ds == nil {
		t.Fatal("frozen graph missing degree stats")
	}
	if ds.NumVertices() != 200 || ds.NumEdges() != 800 {
		t.Fatalf("stats totals = (%d,%d), want (200,800)", ds.NumVertices(), ds.NumEdges())
	}
	want := countEdgesByLabel(g)
	for l, n := range want {
		if got := ds.EdgesWithLabel(Label(l)); got != n {
			t.Errorf("label %d: EdgesWithLabel = %d, want %d", l, got, n)
		}
	}
	// Out-of-range labels and the nil receiver are defined, not panics.
	if ds.EdgesWithLabel(Label(200)) != 0 {
		t.Error("out-of-range label must count 0")
	}
	var nilStats *DegreeStats
	if nilStats.EdgesWithLabel(0) != 0 || nilStats.AvgDegree(0) != 0 || nilStats.NumVertices() != 0 {
		t.Error("nil stats must read as empty")
	}
	wantAvg := float64(want[int(g.Dict().Intern("e:U"))]) / 200
	if got := ds.AvgDegree(g.Dict().Intern("e:U")); got != wantAvg {
		t.Errorf("AvgDegree = %v, want %v", got, wantAvg)
	}
}

// TestDegreeStatsExtendFrozen drives an incremental snapshot chain and
// checks that the delta-maintained stats equal a full rebuild's at every
// epoch — including epochs that intern a brand-new edge label mid-chain.
func TestDegreeStatsExtendFrozen(t *testing.T) {
	g := randomGraph(300, 1200, 13)
	prev, _ := g.ExtendFrozen(nil)
	sawIncremental := false
	for epoch := 0; epoch < 8; epoch++ {
		grow(g, 10, 40, int64(epoch))
		if epoch == 3 {
			// A label the base epoch never saw: stats arrays must grow.
			l := g.Dict().Intern(fmt.Sprintf("e:new%d", epoch))
			g.AddEdge(0, 1, l)
		}
		next, inc := g.ExtendFrozen(prev)
		sawIncremental = sawIncremental || inc
		full := g.Freeze()
		fds, xds := full.Degrees(), next.Degrees()
		if fds.NumVertices() != xds.NumVertices() || fds.NumEdges() != xds.NumEdges() {
			t.Fatalf("epoch %d: totals (%d,%d) vs full (%d,%d)", epoch,
				xds.NumVertices(), xds.NumEdges(), fds.NumVertices(), fds.NumEdges())
		}
		for l := 0; l < g.Dict().Len(); l++ {
			if fds.EdgesWithLabel(Label(l)) != xds.EdgesWithLabel(Label(l)) {
				t.Fatalf("epoch %d label %d: incr %d vs full %d", epoch, l,
					xds.EdgesWithLabel(Label(l)), fds.EdgesWithLabel(Label(l)))
			}
		}
		prev = next
	}
	if !sawIncremental {
		t.Fatal("chain never took the incremental path")
	}
}

// TestNeighborRowSegs checks the zero-copy two-segment row accessor against
// the materializing FrozenNeighbors on both full and extended snapshots.
func TestNeighborRowSegs(t *testing.T) {
	g := randomGraph(150, 600, 17)
	check := func(t *testing.T, fz *Graph) {
		t.Helper()
		for v := 0; v < fz.NumVertices(); v++ {
			id := VertexID(v)
			for l := 0; l < fz.Dict().Len(); l++ {
				for _, out := range []bool{true, false} {
					wantN, _, _ := fz.FrozenNeighbors(id, Label(l), out)
					base, ext, ok := fz.NeighborRowSegs(id, Label(l), out)
					if !ok {
						t.Fatal("NeighborRowSegs not ok on frozen graph")
					}
					got := append(append([]VertexID{}, base...), ext...)
					if fmt.Sprint(got) != fmt.Sprint(wantN) {
						t.Fatalf("v=%d l=%d out=%v: segs %v+%v != row %v", v, l, out, base, ext, wantN)
					}
				}
			}
		}
	}
	t.Run("full", func(t *testing.T) { check(t, g.Freeze()) })
	t.Run("extended", func(t *testing.T) {
		prev := g.Freeze()
		grow(g, 5, 30, 3)
		fz, inc := g.ExtendFrozen(prev)
		if !inc {
			t.Fatal("expected incremental snapshot")
		}
		check(t, fz)
	})
	// Live graphs report not-ok rather than guessing.
	live := randomGraph(5, 5, 1)
	if _, _, ok := live.NeighborRowSegs(0, 0, true); ok {
		t.Fatal("NeighborRowSegs ok on live graph")
	}
}

func TestRelView(t *testing.T) {
	g := randomGraph(150, 600, 23)
	check := func(t *testing.T, fz *Graph) {
		t.Helper()
		for l := 0; l < fz.Dict().Len(); l++ {
			for _, out := range []bool{true, false} {
				rv, ok := fz.RelBlockView(Label(l), out)
				if !ok {
					t.Fatal("RelBlockView not ok on frozen graph")
				}
				for v := 0; v < fz.NumVertices(); v++ {
					id := VertexID(v)
					wantN, _, _ := fz.FrozenNeighbors(id, Label(l), out)
					base, ext := rv.Row(id)
					got := append(append([]VertexID{}, base...), ext...)
					if fmt.Sprint(got) != fmt.Sprint(wantN) {
						t.Fatalf("v=%d l=%d out=%v: view %v+%v != row %v", v, l, out, base, ext, wantN)
					}
				}
			}
		}
	}
	t.Run("full", func(t *testing.T) { check(t, g.Freeze()) })
	t.Run("extended", func(t *testing.T) {
		prev := g.Freeze()
		grow(g, 5, 30, 3)
		fz, inc := g.ExtendFrozen(prev)
		if !inc {
			t.Fatal("expected incremental snapshot")
		}
		check(t, fz)
	})
	if _, ok := randomGraph(5, 5, 1).RelBlockView(0, true); ok {
		t.Fatal("RelBlockView ok on live graph")
	}
}

func TestRowReadHook(t *testing.T) {
	g := randomGraph(50, 200, 19)
	fz := g.Freeze()
	type read struct {
		l   Label
		out bool
	}
	var reads []read
	restore := SetRowReadHook(func(l Label, out bool) { reads = append(reads, read{l, out}) })
	lu := fz.Dict().Intern("e:U")
	fz.FrozenNeighbors(3, lu, true)
	fz.NeighborRowSegs(4, lu, false)
	fz.OutNeighbors(5, lu, nil)
	fz.InNeighbors(6, lu, nil)
	restore()
	fz.FrozenNeighbors(3, lu, true) // after restore: unobserved
	want := []read{{lu, true}, {lu, false}, {lu, true}, {lu, false}}
	if fmt.Sprint(reads) != fmt.Sprint(want) {
		t.Fatalf("hook observed %v, want %v", reads, want)
	}
	// Restoring twice (or racing a later hook) must not clear someone
	// else's installation.
	restore2 := SetRowReadHook(func(Label, bool) {})
	restore()
	fzReads := len(reads)
	fz.FrozenNeighbors(3, lu, true)
	if len(reads) != fzReads {
		t.Fatal("stale restore cleared the active hook")
	}
	restore2()
}

func TestLabelHasEdges(t *testing.T) {
	g := New()
	lv := g.Dict().Intern("v:E")
	le := g.Dict().Intern("e:U")
	lunused := g.Dict().Intern("e:unused")
	a := g.AddVertex(lv)
	b := g.AddVertex(lv)
	g.AddEdge(a, b, le)
	fz := g.Freeze()
	if !fz.LabelHasEdges(le, true) || !fz.LabelHasEdges(le, false) {
		t.Fatal("label with edges reported empty")
	}
	if fz.LabelHasEdges(lunused, true) || fz.LabelHasEdges(lunused, false) {
		t.Fatal("unused label reported non-empty")
	}
	if !g.LabelHasEdges(lunused, true) {
		t.Fatal("live graph must report unknown (true)")
	}
}
