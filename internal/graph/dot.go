package graph

import (
	"fmt"
	"io"
)

// DOTOptions configures DOT rendering.
type DOTOptions struct {
	// NameProp, when set, is used as the vertex display name; otherwise the
	// vertex label and id are shown.
	NameProp string
	// Subset restricts rendering to the given vertices (and edges among
	// them). Nil renders everything.
	Subset map[VertexID]bool
	// VertexShape maps a vertex label name to a graphviz shape.
	VertexShape map[string]string
	// EdgeAnnotation, when non-nil, returns an extra per-edge annotation
	// appended to the edge label.
	EdgeAnnotation func(EdgeID) string
}

// WriteDOT renders the graph (or a subset) in graphviz DOT format.
// Labels are quoted with %q, which escapes quotes and newlines.
func (g *Graph) WriteDOT(w io.Writer, opts DOTOptions) error {
	if _, err := fmt.Fprintln(w, "digraph provenance {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  rankdir=LR;")
	for v := 0; v < g.NumVertices(); v++ {
		id := VertexID(v)
		if opts.Subset != nil && !opts.Subset[id] {
			continue
		}
		name := ""
		if opts.NameProp != "" {
			name = g.VertexProp(id, opts.NameProp).AsString()
		}
		if name == "" {
			name = fmt.Sprintf("%s#%d", g.dict.Name(g.vLabel[v]), v)
		}
		shape := ""
		if opts.VertexShape != nil {
			shape = opts.VertexShape[g.dict.Name(g.vLabel[v])]
		}
		attrs := fmt.Sprintf("label=%q", name)
		if shape != "" {
			attrs += fmt.Sprintf(", shape=%s", shape)
		}
		if _, err := fmt.Fprintf(w, "  n%d [%s];\n", v, attrs); err != nil {
			return err
		}
	}
	for e := 0; e < g.NumEdges(); e++ {
		id := EdgeID(e)
		src, dst := g.eSrc[e], g.eDst[e]
		if opts.Subset != nil && (!opts.Subset[src] || !opts.Subset[dst]) {
			continue
		}
		label := g.dict.Name(g.eLabel[e])
		if opts.EdgeAnnotation != nil {
			if extra := opts.EdgeAnnotation(id); extra != "" {
				label += " " + extra
			}
		}
		if _, err := fmt.Fprintf(w, "  n%d -> n%d [label=%q];\n", src, dst, label); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
