package graph

import (
	"bufio"
	"errors"
	"fmt"
	"io"
)

// Delta serialization: the append-only suffix of a graph past a base
// watermark, in the same varint conventions as the full PGS1 format
// (store.go). A delta is what one committed ingest batch adds — new
// dictionary entries, vertices, edges, and the properties set on those new
// elements — and is the payload the write-ahead log records per epoch:
//
//	magic "PGD1" | baseDict baseV baseE | new dict names |
//	new vertex labels | new edges | new-vertex props | new-edge props
//
// Property maps on pre-base elements cannot change once a snapshot covers
// them (SetVertexProp enforces the watermark), so a delta over new elements
// captures the batch exactly.

var deltaMagic = [4]byte{'P', 'G', 'D', '1'}

// ErrDeltaBase is returned by ApplyDelta when a structurally valid delta
// does not apply to the receiving graph's current state (its recorded base
// watermark or dictionary size disagrees). WAL recovery dispatches on it:
// an out-of-sequence record is corruption, not a torn tail.
var ErrDeltaBase = errors.New("graph: delta base mismatch")

// EncodeDelta writes everything this graph appended past the base watermark
// (baseDict interned labels, baseV vertices, baseE edges). The base must be
// a consistent earlier state of this graph, normally the previous epoch
// snapshot's dictionary length and vertex/edge counts.
func (g *Graph) EncodeDelta(out io.Writer, baseDict, baseV, baseE int) error {
	if baseDict < 1 || baseDict > g.dict.Len() || baseV < 0 || baseV > g.NumVertices() ||
		baseE < 0 || baseE > g.NumEdges() {
		return fmt.Errorf("graph: EncodeDelta base (%d,%d,%d) out of range", baseDict, baseV, baseE)
	}
	w := &writer{w: bufio.NewWriter(out)}
	if _, err := w.w.Write(deltaMagic[:]); err != nil {
		return err
	}
	w.uvarint(uint64(baseDict))
	w.uvarint(uint64(baseV))
	w.uvarint(uint64(baseE))
	w.uvarint(uint64(g.dict.Len() - baseDict))
	for _, name := range g.dict.names[baseDict:] {
		w.str(name)
	}
	w.uvarint(uint64(g.NumVertices() - baseV))
	for _, l := range g.vLabel[baseV:] {
		w.uvarint(uint64(l))
	}
	w.uvarint(uint64(g.NumEdges() - baseE))
	for e := baseE; e < g.NumEdges(); e++ {
		w.uvarint(uint64(g.eSrc[e]))
		w.uvarint(uint64(g.eDst[e]))
		w.uvarint(uint64(g.eLabel[e]))
	}
	writeProps(w, g.vProps[baseV:])
	writeProps(w, g.eProps[baseE:])
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// delta is a decoded, validated-in-isolation delta awaiting application.
type delta struct {
	baseDict, baseV, baseE uint64
	names                  []string
	vLabels                []Label
	eSrc, eDst             []VertexID
	eLabels                []Label
	vProps, eProps         []Props
}

// decodeDelta parses and structurally validates a delta. Like Load, any
// malformed input returns an error wrapping ErrBadFormat and never panics;
// cross-checks against a live graph happen in ApplyDelta.
func decodeDelta(in io.Reader) (*delta, error) {
	r := &reader{r: bufio.NewReader(in)}
	var magic [4]byte
	if _, err := io.ReadFull(r.r, magic[:]); err != nil {
		return nil, badFormat(err)
	}
	if magic != deltaMagic {
		return nil, ErrBadFormat
	}
	d := &delta{
		baseDict: r.uvarint(),
		baseV:    r.uvarint(),
		baseE:    r.uvarint(),
	}
	if r.err != nil {
		return nil, badFormat(r.err)
	}
	if d.baseDict < 1 || d.baseDict >= 1<<16 || d.baseV > 1<<31 || d.baseE > 1<<31 {
		return nil, ErrBadFormat
	}
	nLabels := r.uvarint()
	if r.err != nil {
		return nil, badFormat(r.err)
	}
	if d.baseDict+nLabels >= 1<<16 {
		return nil, ErrBadFormat
	}
	for i := uint64(0); i < nLabels && r.err == nil; i++ {
		d.names = append(d.names, r.str())
	}
	dictLen := d.baseDict + nLabels
	nv := r.uvarint()
	if r.err != nil {
		return nil, badFormat(r.err)
	}
	if d.baseV+nv > 1<<31 {
		return nil, ErrBadFormat
	}
	for i := uint64(0); i < nv && r.err == nil; i++ {
		l := r.uvarint()
		if l >= dictLen {
			return nil, ErrBadFormat
		}
		d.vLabels = append(d.vLabels, Label(l))
	}
	ne := r.uvarint()
	if r.err != nil {
		return nil, badFormat(r.err)
	}
	if d.baseE+ne > 1<<31 {
		return nil, ErrBadFormat
	}
	numV := d.baseV + nv
	for i := uint64(0); i < ne && r.err == nil; i++ {
		src := r.uvarint()
		dst := r.uvarint()
		l := r.uvarint()
		if src >= numV || dst >= numV || l >= dictLen {
			return nil, ErrBadFormat
		}
		d.eSrc = append(d.eSrc, VertexID(src))
		d.eDst = append(d.eDst, VertexID(dst))
		d.eLabels = append(d.eLabels, Label(l))
	}
	d.vProps = make([]Props, nv)
	d.eProps = make([]Props, ne)
	readProps(r, d.vProps)
	readProps(r, d.eProps)
	if r.err != nil {
		return nil, fmt.Errorf("graph: delta: %w", badFormat(r.err))
	}
	// A delta must be exactly one record: trailing bytes mean the framing
	// above it is confused, not that the payload has a harmless suffix.
	if _, err := r.r.ReadByte(); err != io.EOF {
		return nil, ErrBadFormat
	}
	return d, nil
}

// ApplyDelta decodes a delta written by EncodeDelta and appends it to this
// live graph. The decode is all-or-nothing: the graph is only mutated after
// the whole delta parses and its base watermark matches the graph's current
// state (otherwise ErrDeltaBase). Malformed bytes return an error wrapping
// ErrBadFormat and never panic, and never mutate the graph.
func (g *Graph) ApplyDelta(in io.Reader) error {
	g.mustBeLive()
	d, err := decodeDelta(in)
	if err != nil {
		return err
	}
	if int(d.baseDict) != g.dict.Len() || int(d.baseV) != g.NumVertices() || int(d.baseE) != g.NumEdges() {
		return fmt.Errorf("%w: delta base (%d,%d,%d) vs graph (%d,%d,%d)", ErrDeltaBase,
			d.baseDict, d.baseV, d.baseE, g.dict.Len(), g.NumVertices(), g.NumEdges())
	}
	// Names past the base are new by construction on the encoding side; a
	// delta re-interning an existing name would silently shift every label
	// id after it, so reject it as corrupt — before mutating anything, to
	// keep the apply all-or-nothing.
	seen := make(map[string]bool, len(d.names))
	for _, name := range d.names {
		if _, ok := g.dict.Lookup(name); ok || seen[name] {
			return fmt.Errorf("%w: delta re-interns existing label %q", ErrBadFormat, name)
		}
		seen[name] = true
	}
	for _, name := range d.names {
		g.dict.Intern(name)
	}
	for i, l := range d.vLabels {
		v := g.AddVertex(l)
		if p := d.vProps[i]; len(p) > 0 {
			g.vProps[v] = p
		}
	}
	for i := range d.eLabels {
		e := g.AddEdge(d.eSrc[i], d.eDst[i], d.eLabels[i])
		if p := d.eProps[i]; len(p) > 0 {
			g.eProps[e] = p
		}
	}
	return nil
}
