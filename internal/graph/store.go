package graph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
)

// Binary serialization of a property graph. The format is a simple
// length-prefixed layout:
//
//	magic "PGS1" | dictionary | vertex labels | edges | vertex props | edge props
//
// All integers are unsigned varints; strings are length-prefixed.

var storeMagic = [4]byte{'P', 'G', 'S', '1'}

// ErrBadFormat is returned when deserialization encounters malformed input.
var ErrBadFormat = errors.New("graph: bad serialized graph format")

type writer struct {
	w   *bufio.Writer
	buf [binary.MaxVarintLen64]byte
	err error
}

func (w *writer) uvarint(x uint64) {
	if w.err != nil {
		return
	}
	n := binary.PutUvarint(w.buf[:], x)
	_, w.err = w.w.Write(w.buf[:n])
}

func (w *writer) str(s string) {
	w.uvarint(uint64(len(s)))
	if w.err == nil {
		_, w.err = w.w.WriteString(s)
	}
}

type reader struct {
	r   *bufio.Reader
	err error
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	x, err := binary.ReadUvarint(r.r)
	if err != nil {
		r.err = err
	}
	return x
}

func (r *reader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > 1<<28 {
		r.err = ErrBadFormat
		return ""
	}
	// Copy incrementally rather than make([]byte, n) up front: n is
	// attacker-controlled in untrusted files, and a hostile length must
	// fail at EOF without first committing a quarter-gigabyte allocation.
	var sb strings.Builder
	if _, err := io.CopyN(&sb, r.r, int64(n)); err != nil {
		r.err = err
		return ""
	}
	return sb.String()
}

func writeValue(w *writer, v Value) {
	w.uvarint(uint64(v.kind))
	switch v.kind {
	case kindString:
		w.str(v.s)
	case kindInt, kindBool:
		w.uvarint(uint64(v.i))
	case kindFloat:
		w.uvarint(math.Float64bits(v.f))
	}
}

func readValue(r *reader) Value {
	k := valueKind(r.uvarint())
	switch k {
	case kindNone:
		return Value{}
	case kindString:
		return Value{kind: kindString, s: r.str()}
	case kindInt:
		return Value{kind: kindInt, i: int64(r.uvarint())}
	case kindBool:
		return Value{kind: kindBool, i: int64(r.uvarint())}
	case kindFloat:
		return Value{kind: kindFloat, f: math.Float64frombits(r.uvarint())}
	}
	r.err = ErrBadFormat
	return Value{}
}

func writeProps(w *writer, all []Props) {
	nonNil := 0
	for _, p := range all {
		if len(p) > 0 {
			nonNil++
		}
	}
	w.uvarint(uint64(nonNil))
	for i, p := range all {
		if len(p) == 0 {
			continue
		}
		w.uvarint(uint64(i))
		w.uvarint(uint64(len(p)))
		for _, k := range SortedPropKeys(p) {
			w.str(k)
			writeValue(w, p[k])
		}
	}
}

func readProps(r *reader, all []Props) {
	n := r.uvarint()
	for j := uint64(0); j < n && r.err == nil; j++ {
		i := r.uvarint()
		if i >= uint64(len(all)) {
			r.err = ErrBadFormat
			return
		}
		cnt := r.uvarint()
		if cnt > 1<<24 {
			r.err = ErrBadFormat
			return
		}
		// Cap the preallocation hint: cnt is attacker-controlled, and a
		// hostile count must hit EOF before the map grows, not pre-commit
		// a 16M-bucket allocation.
		hint := cnt
		if hint > 1024 {
			hint = 1024
		}
		p := make(Props, hint)
		for c := uint64(0); c < cnt && r.err == nil; c++ {
			k := r.str()
			p[k] = readValue(r)
		}
		all[i] = p
	}
}

// Save writes the graph to w in the binary PGS1 format.
func (g *Graph) Save(out io.Writer) error {
	w := &writer{w: bufio.NewWriter(out)}
	if _, err := w.w.Write(storeMagic[:]); err != nil {
		return err
	}
	// Dictionary (skip the reserved empty entry).
	w.uvarint(uint64(len(g.dict.names) - 1))
	for _, name := range g.dict.names[1:] {
		w.str(name)
	}
	// Vertices.
	w.uvarint(uint64(len(g.vLabel)))
	for _, l := range g.vLabel {
		w.uvarint(uint64(l))
	}
	// Edges.
	w.uvarint(uint64(len(g.eLabel)))
	for i := range g.eLabel {
		w.uvarint(uint64(g.eSrc[i]))
		w.uvarint(uint64(g.eDst[i]))
		w.uvarint(uint64(g.eLabel[i]))
	}
	writeProps(w, g.vProps)
	writeProps(w, g.eProps)
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// badFormat wraps an underlying decode error so that every malformed-input
// failure — including truncation surfacing as io.EOF / io.ErrUnexpectedEOF —
// satisfies errors.Is(err, ErrBadFormat). Servers load untrusted .pg files
// and dispatch on that sentinel.
func badFormat(err error) error {
	if err == nil || errors.Is(err, ErrBadFormat) {
		return err
	}
	return fmt.Errorf("%w: %v", ErrBadFormat, err)
}

// Load reads a graph previously written by Save. Any malformed input —
// truncated stream, bad magic, corrupt varints, out-of-range references —
// returns an error wrapping ErrBadFormat; Load never panics on bad bytes.
func Load(in io.Reader) (*Graph, error) {
	r := &reader{r: bufio.NewReader(in)}
	var magic [4]byte
	if _, err := io.ReadFull(r.r, magic[:]); err != nil {
		return nil, badFormat(err)
	}
	if magic != storeMagic {
		return nil, ErrBadFormat
	}
	g := New()
	nLabels := r.uvarint()
	if nLabels >= 1<<16 {
		return nil, ErrBadFormat
	}
	for i := uint64(0); i < nLabels && r.err == nil; i++ {
		g.dict.Intern(r.str())
	}
	nv := r.uvarint()
	if r.err != nil {
		return nil, badFormat(r.err)
	}
	if nv > 1<<31 {
		return nil, ErrBadFormat
	}
	for i := uint64(0); i < nv && r.err == nil; i++ {
		l := r.uvarint()
		if l >= uint64(g.dict.Len()) {
			return nil, ErrBadFormat
		}
		g.AddVertex(Label(l))
	}
	ne := r.uvarint()
	if r.err != nil {
		return nil, badFormat(r.err)
	}
	if ne > 1<<31 {
		return nil, ErrBadFormat
	}
	for i := uint64(0); i < ne && r.err == nil; i++ {
		src := r.uvarint()
		dst := r.uvarint()
		l := r.uvarint()
		if src >= nv || dst >= nv || l >= uint64(g.dict.Len()) {
			return nil, ErrBadFormat
		}
		g.AddEdge(VertexID(src), VertexID(dst), Label(l))
	}
	readProps(r, g.vProps)
	readProps(r, g.eProps)
	if r.err != nil {
		return nil, fmt.Errorf("graph: load: %w", badFormat(r.err))
	}
	return g, nil
}
