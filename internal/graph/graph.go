// Package graph implements an in-memory property graph store.
//
// It is the storage substrate for the provenance operators, standing in for
// the Neo4j backend used in the paper. It guarantees the two properties the
// paper's query evaluation assumes (Sec. III.B): constant-time access to any
// vertex or edge by its primary identifier, and linear-time scans of a
// vertex's incoming and outgoing edges.
//
// Vertices and edges carry a single label (interned through a dictionary)
// and an optional set of key/value properties. The store is append-only:
// vertices and edges are never deleted, which matches provenance ingestion
// semantics (provenance is immutable history).
package graph

import (
	"fmt"
	"sort"
)

// VertexID identifies a vertex. IDs are dense, starting at 0, and are
// assigned in insertion order, so they double as an order-of-being proxy.
type VertexID uint32

// EdgeID identifies an edge. IDs are dense, starting at 0.
type EdgeID uint32

// NoVertex is a sentinel for "no vertex".
const NoVertex = VertexID(^uint32(0))

// Label is an interned vertex or edge label.
type Label uint16

// NoLabel is the zero, unnamed label.
const NoLabel = Label(0)

// Value is a property value: string, int64, float64 or bool.
type Value struct {
	kind valueKind
	s    string
	i    int64
	f    float64
}

type valueKind uint8

const (
	kindNone valueKind = iota
	kindString
	kindInt
	kindFloat
	kindBool
)

// String wraps a string property value.
func String(s string) Value { return Value{kind: kindString, s: s} }

// Int wraps an int64 property value.
func Int(i int64) Value { return Value{kind: kindInt, i: i} }

// Float wraps a float64 property value.
func Float(f float64) Value { return Value{kind: kindFloat, f: f} }

// Bool wraps a bool property value.
func Bool(b bool) Value {
	v := Value{kind: kindBool}
	if b {
		v.i = 1
	}
	return v
}

// IsZero reports whether the value is the absent value.
func (v Value) IsZero() bool { return v.kind == kindNone }

// AsString returns the string form of the value; numeric values are
// formatted. Useful for display and for property-equality keys.
func (v Value) AsString() string {
	switch v.kind {
	case kindString:
		return v.s
	case kindInt:
		return fmt.Sprintf("%d", v.i)
	case kindFloat:
		return fmt.Sprintf("%g", v.f)
	case kindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	}
	return ""
}

// Str returns the string payload and whether the value is a string.
func (v Value) Str() (string, bool) { return v.s, v.kind == kindString }

// IntVal returns the int payload and whether the value is an int.
func (v Value) IntVal() (int64, bool) { return v.i, v.kind == kindInt }

// FloatVal returns the float payload and whether the value is a float.
func (v Value) FloatVal() (float64, bool) { return v.f, v.kind == kindFloat }

// BoolVal returns the bool payload and whether the value is a bool.
func (v Value) BoolVal() (bool, bool) { return v.i != 0, v.kind == kindBool }

// Equal reports deep equality of two values.
func (v Value) Equal(o Value) bool { return v == o }

// Props is a property map attached to a vertex or an edge.
type Props map[string]Value

// Graph is an append-only labeled property multigraph.
//
// The zero value is not usable; construct with New.
type Graph struct {
	dict *Dictionary

	vLabel []Label
	vProps []Props

	eLabel []Label
	eProps []Props
	eSrc   []VertexID
	eDst   []VertexID

	out [][]EdgeID // outgoing edges per vertex (live graphs)
	in  [][]EdgeID // incoming edges per vertex (live graphs)

	// outRows/inRows replace out/in on frozen snapshots: immutable
	// per-vertex edge-id rows that an incremental snapshot can share with
	// the previous epoch plus a sparse overlay of delta-touched rows, so
	// extending a snapshot does not copy O(V) row headers (see edgeRows).
	outRows, inRows *edgeRows

	byLabel map[Label][]VertexID // label index over vertices

	// frozen marks an immutable epoch snapshot (see Freeze); csr is its
	// compressed-sparse-row adjacency index, nil on live graphs. incrSnap
	// marks a snapshot whose index extends an earlier epoch's
	// (ExtendFrozen) instead of being fully rebuilt.
	frozen   bool
	incrSnap bool
	csr      *csrIndex
	// degrees holds freeze-time per-label degree statistics (see stats.go);
	// nil on live graphs. An incremental snapshot updates the previous
	// epoch's stats by the delta, so they always equal a full rebuild's.
	degrees *DegreeStats
	// snapV/snapE are the high-watermarks of the largest snapshot taken
	// from this live graph. Everything below them is shared with lock-free
	// snapshot readers and must stay immutable: appends are naturally safe
	// (they only touch indices at or past the watermark), but property
	// writes to pre-watermark vertices/edges would race and are rejected.
	snapV, snapE int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		dict:    NewDictionary(),
		byLabel: make(map[Label][]VertexID),
	}
}

// Dict exposes the label dictionary.
func (g *Graph) Dict() *Dictionary { return g.dict }

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.vLabel) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return len(g.eLabel) }

// AddVertex appends a vertex with the given label and returns its id.
func (g *Graph) AddVertex(label Label) VertexID {
	g.mustBeLive()
	id := VertexID(len(g.vLabel))
	g.vLabel = append(g.vLabel, label)
	g.vProps = append(g.vProps, nil)
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	g.byLabel[label] = append(g.byLabel[label], id)
	return id
}

// AddEdge appends a directed edge src -> dst with the given label and
// returns its id. Both endpoints must exist.
func (g *Graph) AddEdge(src, dst VertexID, label Label) EdgeID {
	g.mustBeLive()
	if int(src) >= len(g.vLabel) || int(dst) >= len(g.vLabel) {
		panic(fmt.Sprintf("graph: AddEdge endpoint out of range (src=%d dst=%d n=%d)", src, dst, len(g.vLabel)))
	}
	id := EdgeID(len(g.eLabel))
	g.eLabel = append(g.eLabel, label)
	g.eProps = append(g.eProps, nil)
	g.eSrc = append(g.eSrc, src)
	g.eDst = append(g.eDst, dst)
	g.out[src] = append(g.out[src], id)
	g.in[dst] = append(g.in[dst], id)
	return id
}

// VertexLabel returns the label of v.
func (g *Graph) VertexLabel(v VertexID) Label { return g.vLabel[v] }

// EdgeLabel returns the label of e.
func (g *Graph) EdgeLabel(e EdgeID) Label { return g.eLabel[e] }

// Src returns the source endpoint of e.
func (g *Graph) Src(e EdgeID) VertexID { return g.eSrc[e] }

// Dst returns the destination endpoint of e.
func (g *Graph) Dst(e EdgeID) VertexID { return g.eDst[e] }

// Out returns the outgoing edge ids of v. The returned slice must not be
// modified.
func (g *Graph) Out(v VertexID) []EdgeID {
	if g.frozen {
		return g.outRows.row(v)
	}
	return g.out[v]
}

// In returns the incoming edge ids of v. The returned slice must not be
// modified.
func (g *Graph) In(v VertexID) []EdgeID {
	if g.frozen {
		return g.inRows.row(v)
	}
	return g.in[v]
}

// OutDegree returns the number of outgoing edges of v.
func (g *Graph) OutDegree(v VertexID) int { return len(g.Out(v)) }

// InDegree returns the number of incoming edges of v.
func (g *Graph) InDegree(v VertexID) int { return len(g.In(v)) }

// mustBeLive guards mutations: snapshots are immutable by contract, and a
// write slipping through would race with the snapshot's lock-free readers.
func (g *Graph) mustBeLive() {
	if g.frozen {
		panic("graph: mutation of frozen snapshot")
	}
}

// SetVertexProp sets a property on a vertex. The vertex must not be
// covered by a snapshot taken from this graph (see Freeze): snapshot
// readers access shared property maps lock-free, so only vertices appended
// after the last freeze are writable.
func (g *Graph) SetVertexProp(v VertexID, key string, val Value) {
	g.mustBeLive()
	if int(v) < g.snapV {
		panic(fmt.Sprintf("graph: SetVertexProp(%d) below snapshot watermark %d", v, g.snapV))
	}
	if g.vProps[v] == nil {
		g.vProps[v] = make(Props, 2)
	}
	g.vProps[v][key] = val
}

// VertexProp returns the value of a vertex property (zero Value if absent).
func (g *Graph) VertexProp(v VertexID, key string) Value {
	if p := g.vProps[v]; p != nil {
		return p[key]
	}
	return Value{}
}

// VertexProps returns the property map of v (may be nil); callers must not
// modify it.
func (g *Graph) VertexProps(v VertexID) Props { return g.vProps[v] }

// SetEdgeProp sets a property on an edge. Like SetVertexProp, the edge
// must not be covered by a snapshot taken from this graph.
func (g *Graph) SetEdgeProp(e EdgeID, key string, val Value) {
	g.mustBeLive()
	if int(e) < g.snapE {
		panic(fmt.Sprintf("graph: SetEdgeProp(%d) below snapshot watermark %d", e, g.snapE))
	}
	if g.eProps[e] == nil {
		g.eProps[e] = make(Props, 1)
	}
	g.eProps[e][key] = val
}

// EdgeProp returns the value of an edge property (zero Value if absent).
func (g *Graph) EdgeProp(e EdgeID, key string) Value {
	if p := g.eProps[e]; p != nil {
		return p[key]
	}
	return Value{}
}

// EdgeProps returns the property map of e (may be nil); callers must not
// modify it.
func (g *Graph) EdgeProps(e EdgeID) Props { return g.eProps[e] }

// VerticesWithLabel returns the vertices carrying the given label, in id
// order. The returned slice must not be modified.
func (g *Graph) VerticesWithLabel(label Label) []VertexID { return g.byLabel[label] }

// OutNeighbors appends to buf the destination vertices of v's outgoing
// edges with the given label and returns the extended slice. On a frozen
// graph this is one contiguous CSR row copy instead of an edge-list filter.
func (g *Graph) OutNeighbors(v VertexID, label Label, buf []VertexID) []VertexID {
	if g.csr != nil {
		hookRowRead(label, true)
		return g.csr.rel(label, true).appendNbrs(v, buf)
	}
	for _, e := range g.out[v] {
		if g.eLabel[e] == label {
			buf = append(buf, g.eDst[e])
		}
	}
	return buf
}

// InNeighbors appends to buf the source vertices of v's incoming edges with
// the given label and returns the extended slice. On a frozen graph this is
// one contiguous CSR row copy instead of an edge-list filter.
func (g *Graph) InNeighbors(v VertexID, label Label, buf []VertexID) []VertexID {
	if g.csr != nil {
		hookRowRead(label, false)
		return g.csr.rel(label, false).appendNbrs(v, buf)
	}
	for _, e := range g.in[v] {
		if g.eLabel[e] == label {
			buf = append(buf, g.eSrc[e])
		}
	}
	return buf
}

// Stats summarizes the graph.
type Stats struct {
	Vertices      int
	Edges         int
	VertexByLabel map[string]int
	EdgeByLabel   map[string]int
	MaxOutDegree  int
	MaxInDegree   int
}

// Stats computes summary statistics.
func (g *Graph) Stats() Stats {
	st := Stats{
		Vertices:      g.NumVertices(),
		Edges:         g.NumEdges(),
		VertexByLabel: make(map[string]int),
		EdgeByLabel:   make(map[string]int),
	}
	for _, l := range g.vLabel {
		st.VertexByLabel[g.dict.Name(l)]++
	}
	for _, l := range g.eLabel {
		st.EdgeByLabel[g.dict.Name(l)]++
	}
	for v := 0; v < st.Vertices; v++ {
		if d := g.OutDegree(VertexID(v)); d > st.MaxOutDegree {
			st.MaxOutDegree = d
		}
		if d := g.InDegree(VertexID(v)); d > st.MaxInDegree {
			st.MaxInDegree = d
		}
	}
	return st
}

// SortedPropKeys returns the sorted keys of a property map.
func SortedPropKeys(p Props) []string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// IsAcyclic reports whether the graph is a DAG, optionally restricted to
// edges whose label passes the filter (nil filter means all edges).
func (g *Graph) IsAcyclic(edgeFilter func(Label) bool) bool {
	n := g.NumVertices()
	indeg := make([]int, n)
	for e := 0; e < g.NumEdges(); e++ {
		if edgeFilter != nil && !edgeFilter(g.eLabel[e]) {
			continue
		}
		indeg[g.eDst[e]]++
	}
	queue := make([]VertexID, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, VertexID(v))
		}
	}
	seen := 0
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		for _, e := range g.Out(v) {
			if edgeFilter != nil && !edgeFilter(g.eLabel[e]) {
				continue
			}
			d := g.eDst[e]
			indeg[d]--
			if indeg[d] == 0 {
				queue = append(queue, d)
			}
		}
	}
	return seen == n
}
