package graph

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// FuzzGraphLoad feeds arbitrary bytes to the .pg deserializer. The
// contract under fuzz: Load never panics; every rejection wraps
// ErrBadFormat (truncation, corrupt varints, out-of-range references all
// look the same to callers, who dispatch on the sentinel); and anything
// that does load is a well-formed graph that round-trips through Save and
// freezes cleanly. Seed corpus: testdata/fuzz/FuzzGraphLoad plus the
// programmatic seeds below.
func FuzzGraphLoad(f *testing.F) {
	valid := mustSaveBytes(randomGraph(20, 40, 5))
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:4])
	f.Add([]byte("PGS1"))
	f.Add([]byte("XXXX junk"))
	f.Add([]byte{})
	for _, i := range []int{5, 9, len(valid) - 3} {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0xff
		f.Add(mut)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Load(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadFormat) {
				t.Fatalf("Load error does not wrap ErrBadFormat: %v", err)
			}
			return
		}
		// Accepted input: the graph must be internally consistent enough to
		// serialize, reload identically, and build a snapshot index.
		out := mustSaveBytes(g)
		g2, err := Load(bytes.NewReader(out))
		if err != nil {
			t.Fatalf("round-trip reload failed: %v", err)
		}
		if got, want := fmt.Sprintf("%+v", g2.Stats()), fmt.Sprintf("%+v", g.Stats()); got != want {
			t.Fatalf("round-trip stats drifted:\n%s\n%s", got, want)
		}
		fz := g.Freeze()
		for v := 0; v < fz.NumVertices(); v++ {
			if len(fz.Out(VertexID(v))) != g.OutDegree(VertexID(v)) {
				t.Fatalf("frozen Out(%d) disagrees with live degree", v)
			}
		}
	})
}

func mustSaveBytes(g *Graph) []byte {
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}
