package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func buildRandom(rng *rand.Rand, nv, ne int) *Graph {
	g := New()
	lA := g.Dict().Intern("A")
	lB := g.Dict().Intern("B")
	le1 := g.Dict().Intern("x")
	le2 := g.Dict().Intern("y")
	for i := 0; i < nv; i++ {
		l := lA
		if i%2 == 1 {
			l = lB
		}
		v := g.AddVertex(l)
		if i%3 == 0 {
			g.SetVertexProp(v, "name", String("v"))
			g.SetVertexProp(v, "n", Int(int64(i)))
		}
	}
	for i := 0; i < ne; i++ {
		src := VertexID(rng.Intn(nv))
		dst := VertexID(rng.Intn(nv))
		l := le1
		if i%2 == 1 {
			l = le2
		}
		e := g.AddEdge(src, dst, l)
		if i%4 == 0 {
			g.SetEdgeProp(e, "w", Float(float64(i)))
		}
	}
	return g
}

func TestBasicAccessors(t *testing.T) {
	g := New()
	la := g.Dict().Intern("A")
	lb := g.Dict().Intern("B")
	le := g.Dict().Intern("e")
	a := g.AddVertex(la)
	b := g.AddVertex(lb)
	e := g.AddEdge(a, b, le)
	if g.NumVertices() != 2 || g.NumEdges() != 1 {
		t.Fatal("sizes wrong")
	}
	if g.Src(e) != a || g.Dst(e) != b || g.EdgeLabel(e) != le {
		t.Fatal("edge accessors wrong")
	}
	if g.OutDegree(a) != 1 || g.InDegree(b) != 1 || g.OutDegree(b) != 0 {
		t.Fatal("degrees wrong")
	}
	if got := g.VerticesWithLabel(la); len(got) != 1 || got[0] != a {
		t.Fatal("label index wrong")
	}
	var buf []VertexID
	buf = g.OutNeighbors(a, le, buf)
	if len(buf) != 1 || buf[0] != b {
		t.Fatal("OutNeighbors wrong")
	}
	buf = g.InNeighbors(b, le, buf[:0])
	if len(buf) != 1 || buf[0] != a {
		t.Fatal("InNeighbors wrong")
	}
}

func TestProps(t *testing.T) {
	g := New()
	v := g.AddVertex(g.Dict().Intern("A"))
	if !g.VertexProp(v, "missing").IsZero() {
		t.Fatal("missing prop should be zero")
	}
	g.SetVertexProp(v, "s", String("hello"))
	g.SetVertexProp(v, "i", Int(-42))
	g.SetVertexProp(v, "f", Float(2.5))
	g.SetVertexProp(v, "b", Bool(true))
	if s, ok := g.VertexProp(v, "s").Str(); !ok || s != "hello" {
		t.Fatal("string prop")
	}
	if i, ok := g.VertexProp(v, "i").IntVal(); !ok || i != -42 {
		t.Fatal("int prop")
	}
	if f, ok := g.VertexProp(v, "f").FloatVal(); !ok || f != 2.5 {
		t.Fatal("float prop")
	}
	if b, ok := g.VertexProp(v, "b").BoolVal(); !ok || !b {
		t.Fatal("bool prop")
	}
	if g.VertexProp(v, "i").AsString() != "-42" {
		t.Fatal("AsString int")
	}
	// Overwrite.
	g.SetVertexProp(v, "s", String("bye"))
	if s, _ := g.VertexProp(v, "s").Str(); s != "bye" {
		t.Fatal("overwrite failed")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		g := buildRandom(rng, 2+rng.Intn(200), rng.Intn(500))
		var buf bytes.Buffer
		if err := g.Save(&buf); err != nil {
			t.Fatal(err)
		}
		g2, err := Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
			t.Fatal("size mismatch")
		}
		for v := 0; v < g.NumVertices(); v++ {
			id := VertexID(v)
			if g.Dict().Name(g.VertexLabel(id)) != g2.Dict().Name(g2.VertexLabel(id)) {
				t.Fatalf("vertex %d label mismatch", v)
			}
			p1, p2 := g.VertexProps(id), g2.VertexProps(id)
			if len(p1) != len(p2) {
				t.Fatalf("vertex %d props count mismatch: %d vs %d", v, len(p1), len(p2))
			}
			for k, val := range p1 {
				if !p2[k].Equal(val) {
					t.Fatalf("vertex %d prop %q mismatch", v, k)
				}
			}
		}
		for e := 0; e < g.NumEdges(); e++ {
			id := EdgeID(e)
			if g.Src(id) != g2.Src(id) || g.Dst(id) != g2.Dst(id) {
				t.Fatalf("edge %d endpoints mismatch", e)
			}
			if g.Dict().Name(g.EdgeLabel(id)) != g2.Dict().Name(g2.EdgeLabel(id)) {
				t.Fatalf("edge %d label mismatch", e)
			}
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	for _, data := range [][]byte{
		nil,
		[]byte("x"),
		[]byte("NOPE"),
		[]byte("PGS1\xff\xff\xff\xff\xff\xff\xff\xff\xff"),
	} {
		if _, err := Load(bytes.NewReader(data)); err == nil {
			t.Errorf("Load(%q) succeeded on garbage", data)
		}
	}
	// Truncated valid stream.
	g := buildRandom(rand.New(rand.NewSource(1)), 50, 100)
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{5, len(full) / 2} {
		if _, err := Load(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("Load of truncated stream (%d bytes) succeeded", cut)
		}
	}
}

func TestValueRoundTripQuick(t *testing.T) {
	f := func(s string, i int64, fl float64, b bool) bool {
		g := New()
		v := g.AddVertex(g.Dict().Intern("A"))
		g.SetVertexProp(v, "s", String(s))
		g.SetVertexProp(v, "i", Int(i))
		g.SetVertexProp(v, "f", Float(fl))
		g.SetVertexProp(v, "b", Bool(b))
		var buf bytes.Buffer
		if err := g.Save(&buf); err != nil {
			return false
		}
		g2, err := Load(&buf)
		if err != nil {
			return false
		}
		return g2.VertexProp(v, "s").Equal(String(s)) &&
			g2.VertexProp(v, "i").Equal(Int(i)) &&
			g2.VertexProp(v, "f").Equal(Float(fl)) &&
			g2.VertexProp(v, "b").Equal(Bool(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestIsAcyclic(t *testing.T) {
	g := New()
	l := g.Dict().Intern("A")
	le := g.Dict().Intern("e")
	a := g.AddVertex(l)
	b := g.AddVertex(l)
	c := g.AddVertex(l)
	g.AddEdge(a, b, le)
	g.AddEdge(b, c, le)
	if !g.IsAcyclic(nil) {
		t.Fatal("chain should be acyclic")
	}
	back := g.Dict().Intern("back")
	g.AddEdge(c, a, back)
	if g.IsAcyclic(nil) {
		t.Fatal("cycle undetected")
	}
	// Filtering out the back edge restores acyclicity.
	if !g.IsAcyclic(func(lbl Label) bool { return lbl != back }) {
		t.Fatal("filtered acyclicity broken")
	}
}

func TestStats(t *testing.T) {
	g := buildRandom(rand.New(rand.NewSource(3)), 100, 300)
	st := g.Stats()
	if st.Vertices != 100 || st.Edges != 300 {
		t.Fatal("stats sizes wrong")
	}
	total := 0
	for _, c := range st.VertexByLabel {
		total += c
	}
	if total != 100 {
		t.Fatal("vertex label histogram incomplete")
	}
	if st.MaxOutDegree <= 0 {
		t.Fatal("degree stats missing")
	}
}

func TestWriteDOT(t *testing.T) {
	g := New()
	la := g.Dict().Intern("A")
	le := g.Dict().Intern("uses")
	a := g.AddVertex(la)
	b := g.AddVertex(la)
	g.SetVertexProp(a, "name", String(`say "hi"`))
	g.AddEdge(a, b, le)
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, DOTOptions{NameProp: "name"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "digraph") || !strings.Contains(out, "uses") {
		t.Fatalf("DOT output incomplete: %s", out)
	}
	if !strings.Contains(out, `\"hi\"`) {
		t.Fatalf("DOT quoting broken: %s", out)
	}
	// Subset rendering drops edges to excluded vertices.
	buf.Reset()
	if err := g.WriteDOT(&buf, DOTOptions{Subset: map[VertexID]bool{a: true}}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "->") {
		t.Fatal("subset DOT should not contain the edge")
	}
}

func TestDictionary(t *testing.T) {
	d := NewDictionary()
	a := d.Intern("alpha")
	if b := d.Intern("alpha"); b != a {
		t.Fatal("re-intern changed id")
	}
	if d.Name(a) != "alpha" {
		t.Fatal("name lookup")
	}
	if _, ok := d.Lookup("beta"); ok {
		t.Fatal("phantom lookup")
	}
	if d.Len() != 2 { // "" + alpha
		t.Fatalf("len %d", d.Len())
	}
}
