package graph

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// randomGraph builds a multigraph with several vertex and edge labels,
// properties, parallel edges and self-referential shapes.
func randomGraph(nv, ne int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New()
	vLabels := []Label{
		g.Dict().Intern("v:E"), g.Dict().Intern("v:A"), g.Dict().Intern("v:U"),
	}
	eLabels := []Label{
		g.Dict().Intern("e:U"), g.Dict().Intern("e:G"), g.Dict().Intern("e:D"),
	}
	for i := 0; i < nv; i++ {
		v := g.AddVertex(vLabels[rng.Intn(len(vLabels))])
		if rng.Intn(2) == 0 {
			g.SetVertexProp(v, "name", String(fmt.Sprintf("v%d", v)))
		}
	}
	for i := 0; i < ne; i++ {
		src := VertexID(rng.Intn(nv))
		dst := VertexID(rng.Intn(nv))
		e := g.AddEdge(src, dst, eLabels[rng.Intn(len(eLabels))])
		if rng.Intn(3) == 0 {
			g.SetEdgeProp(e, "w", Int(int64(i)))
		}
	}
	return g
}

func TestFreezeMatchesLive(t *testing.T) {
	g := randomGraph(200, 800, 1)
	fz := g.Freeze()

	if !fz.Frozen() || g.Frozen() {
		t.Fatal("frozen flags wrong")
	}
	if fz.NumVertices() != g.NumVertices() || fz.NumEdges() != g.NumEdges() {
		t.Fatalf("watermark mismatch: %d/%d vs %d/%d",
			fz.NumVertices(), fz.NumEdges(), g.NumVertices(), g.NumEdges())
	}

	eLabels := []Label{0, 1, 2, 3, 4, 5, 6} // includes labels with no edges
	for v := 0; v < g.NumVertices(); v++ {
		id := VertexID(v)
		if got, want := fmt.Sprint(fz.Out(id)), fmt.Sprint(g.Out(id)); got != want {
			t.Fatalf("Out(%d): %s vs %s", v, got, want)
		}
		if got, want := fmt.Sprint(fz.In(id)), fmt.Sprint(g.In(id)); got != want {
			t.Fatalf("In(%d): %s vs %s", v, got, want)
		}
		if fz.OutDegree(id) != g.OutDegree(id) || fz.InDegree(id) != g.InDegree(id) {
			t.Fatalf("degree mismatch at %d", v)
		}
		if fz.VertexLabel(id) != g.VertexLabel(id) {
			t.Fatalf("label mismatch at %d", v)
		}
		for _, l := range eLabels {
			gotO := fz.OutNeighbors(id, l, nil)
			wantO := g.OutNeighbors(id, l, nil)
			if fmt.Sprint(gotO) != fmt.Sprint(wantO) {
				t.Fatalf("OutNeighbors(%d, %d): %v vs %v", v, l, gotO, wantO)
			}
			gotI := fz.InNeighbors(id, l, nil)
			wantI := g.InNeighbors(id, l, nil)
			if fmt.Sprint(gotI) != fmt.Sprint(wantI) {
				t.Fatalf("InNeighbors(%d, %d): %v vs %v", v, l, gotI, wantI)
			}
			// CSR rows carry matching (neighbor, edge id) pairs.
			nbrs, eids, ok := fz.FrozenNeighbors(id, l, true)
			if !ok {
				t.Fatal("FrozenNeighbors not ok on frozen graph")
			}
			if len(nbrs) != len(eids) || len(nbrs) != len(wantO) {
				t.Fatalf("CSR row shape at %d/%d", v, l)
			}
			for i, e := range eids {
				if fz.EdgeLabel(e) != l || fz.Src(e) != id || fz.Dst(e) != nbrs[i] {
					t.Fatalf("CSR row %d/%d entry %d inconsistent", v, l, i)
				}
			}
		}
	}
	for e := 0; e < g.NumEdges(); e++ {
		id := EdgeID(e)
		if fz.Src(id) != g.Src(id) || fz.Dst(id) != g.Dst(id) || fz.EdgeLabel(id) != g.EdgeLabel(id) {
			t.Fatalf("edge %d mismatch", e)
		}
		if !fz.EdgeProp(id, "w").Equal(g.EdgeProp(id, "w")) {
			t.Fatalf("edge prop %d mismatch", e)
		}
	}

	gs, fs := g.Stats(), fz.Stats()
	if fmt.Sprintf("%+v", gs) != fmt.Sprintf("%+v", fs) {
		t.Fatalf("stats mismatch:\n%+v\n%+v", gs, fs)
	}
	for _, l := range []Label{1, 2, 3} {
		if fmt.Sprint(fz.VerticesWithLabel(l)) != fmt.Sprint(g.VerticesWithLabel(l)) {
			t.Fatalf("VerticesWithLabel(%d) mismatch", l)
		}
	}
	if fz.Dict().Name(1) != g.Dict().Name(1) || fz.Dict().Len() != g.Dict().Len() {
		t.Fatal("dictionary snapshot mismatch")
	}

	// FrozenNeighbors on the live graph must report not-frozen.
	if _, _, ok := g.FrozenNeighbors(0, 1, true); ok {
		t.Fatal("live graph claimed a CSR index")
	}
	// Re-freezing is the identity.
	if fz.Freeze() != fz {
		t.Fatal("Freeze of frozen graph must be a no-op")
	}
}

func TestFrozenGraphIsImmutable(t *testing.T) {
	g := randomGraph(10, 20, 2)
	fz := g.Freeze()
	for name, fn := range map[string]func(){
		"AddVertex":     func() { fz.AddVertex(1) },
		"AddEdge":       func() { fz.AddEdge(0, 1, 1) },
		"SetVertexProp": func() { fz.SetVertexProp(0, "x", Int(1)) },
		"SetEdgeProp":   func() { fz.SetEdgeProp(0, "x", Int(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on frozen graph did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestFreezeIsolation appends to the live graph from one goroutine while
// others traverse the snapshot. Run under -race this is the proof that a
// snapshot shares no mutable state with its source.
func TestFreezeIsolation(t *testing.T) {
	g := randomGraph(100, 400, 3)
	fz := g.Freeze()
	wantV, wantE := fz.NumVertices(), fz.NumEdges()

	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		vl, el := g.Dict().Intern("v:E"), g.Dict().Intern("e:G")
		for i := 0; i < 200; i++ {
			v := g.AddVertex(vl)
			g.SetVertexProp(v, "name", String("new"))
			g.AddEdge(v, VertexID(i%100), el)
		}
	}()
	for r := 0; r < 2; r++ {
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				total := 0
				for v := 0; v < fz.NumVertices(); v++ {
					total += len(fz.Out(VertexID(v)))
					fz.OutNeighbors(VertexID(v), 4, nil)
					fz.VertexProp(VertexID(v), "name")
				}
				if total != fz.NumEdges() {
					t.Errorf("snapshot edge count drifted: %d", total)
					return
				}
			}
		}()
	}
	wg.Wait()
	if fz.NumVertices() != wantV || fz.NumEdges() != wantE {
		t.Fatalf("snapshot watermark moved: %d/%d", fz.NumVertices(), fz.NumEdges())
	}
	if g.NumVertices() != wantV+200 {
		t.Fatalf("live graph missing appends: %d", g.NumVertices())
	}
}

// TestLivePropWritesBelowWatermark: once a snapshot exists, property
// writes to pre-watermark vertices/edges of the LIVE graph must be
// rejected (the maps are shared with lock-free snapshot readers); writes
// to vertices appended after the freeze stay legal.
func TestLivePropWritesBelowWatermark(t *testing.T) {
	g := randomGraph(10, 20, 4)
	g.SetVertexProp(0, "ok", Int(1)) // pre-freeze: fine
	g.Freeze()
	for name, fn := range map[string]func(){
		"SetVertexProp": func() { g.SetVertexProp(0, "x", Int(1)) },
		"SetEdgeProp":   func() { g.SetEdgeProp(0, "x", Int(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s below watermark did not panic", name)
				}
			}()
			fn()
		}()
	}
	v := g.AddVertex(1)
	g.SetVertexProp(v, "x", Int(1)) // post-watermark: fine
	e := g.AddEdge(v, 0, 4)
	g.SetEdgeProp(e, "x", Int(1))
}

func TestFreezeEmptyGraph(t *testing.T) {
	fz := New().Freeze()
	if fz.NumVertices() != 0 || fz.NumEdges() != 0 {
		t.Fatal("empty freeze not empty")
	}
	if _, _, ok := fz.FrozenNeighbors(0, 1, true); !ok {
		t.Fatal("empty frozen graph must still report frozen")
	}
}
