package cflr

import (
	"math/rand"
	"testing"

	"repro/internal/bitmap"
	"repro/internal/graph"
)

// Same-generation grammar over edge labels p (parent) — the classic CFLR
// example: SG -> p^-1 SG p | p^-1 p. SG(x, y) holds iff x and y are at the
// same depth below a common ancestor, which is easy to verify directly.

func buildTree(rng *rand.Rand, n int) (*graph.Graph, graph.Label, []int) {
	g := graph.New()
	p := g.Dict().Intern("p")
	depth := make([]int, n)
	lbl := g.Dict().Intern("n")
	for i := 0; i < n; i++ {
		g.AddVertex(lbl)
	}
	for i := 1; i < n; i++ {
		parent := rng.Intn(i)
		// child -> parent edge labeled p
		g.AddEdge(graph.VertexID(i), graph.VertexID(parent), p)
		depth[i] = depth[parent] + 1
	}
	return g, p, depth
}

func sameGenGrammar(p graph.Label) *Grammar {
	g := NewGrammar()
	sg := g.AddNonterminal("SG")
	// Edges point child -> parent, so a same-generation path climbs with
	// forward p and descends with inverse p:
	// SG -> p p^-1 (siblings) | p SG p^-1 (cousins).
	g.Add(sg, T(EdgeTerm(p, false)), T(EdgeTerm(p, true)))
	g.Add(sg, T(EdgeTerm(p, false)), N(sg), T(EdgeTerm(p, true)))
	g.SetStart(sg)
	return g
}

// bruteSameGen computes the relation directly: walk up from both vertices
// simultaneously; related iff they reach a common ancestor at equal height
// in lockstep with all intermediate pairs distinct... for trees the simple
// characterization is: x != y is possible only via the recursive paths, so
// we compute via fixpoint on the definition.
func bruteSameGen(g *graph.Graph, p graph.Label, n int) map[[2]int]bool {
	parentOf := make([]int, n)
	for i := range parentOf {
		parentOf[i] = -1
	}
	for e := 0; e < g.NumEdges(); e++ {
		id := graph.EdgeID(e)
		if g.EdgeLabel(id) == p {
			parentOf[g.Src(id)] = int(g.Dst(id))
		}
	}
	rel := make(map[[2]int]bool)
	// Base: same parent.
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			if parentOf[x] >= 0 && parentOf[x] == parentOf[y] {
				rel[[2]int{x, y}] = true
			}
		}
	}
	// Recursive: parents related.
	for changed := true; changed; {
		changed = false
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				if rel[[2]int{x, y}] {
					continue
				}
				px, py := parentOf[x], parentOf[y]
				if px >= 0 && py >= 0 && rel[[2]int{px, py}] {
					rel[[2]int{x, y}] = true
					changed = true
				}
			}
		}
	}
	return rel
}

func TestSameGenerationReachability(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		g, p, _ := buildTree(rng, n)
		gr := sameGenGrammar(p).Normalize()
		solver, err := NewSolver(g, gr, Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := solver.Solve()
		if err != nil {
			t.Fatal(err)
		}
		want := bruteSameGen(g, p, n)
		got := make(map[[2]int]bool)
		res.IteratePairs(gr.Start(), func(u, v graph.VertexID) bool {
			got[[2]int{int(u), int(v)}] = true
			return true
		})
		for k := range want {
			if !got[k] {
				t.Errorf("seed=%d: missing SG%v", seed, k)
			}
		}
		for k := range got {
			if !want[k] {
				t.Errorf("seed=%d: extra SG%v", seed, k)
			}
		}
	}
}

func TestNormalize(t *testing.T) {
	g := NewGrammar()
	a := g.AddNonterminal("A")
	b := g.AddNonterminal("B")
	l := graph.Label(1)
	// A -> t B t B t (5 items).
	g.Add(a, T(EdgeTerm(l, false)), N(b), T(EdgeTerm(l, true)), N(b), T(VertexLabelTerm(l)))
	g.Add(b, T(EdgeTerm(l, false)))
	if g.IsNormalForm() {
		t.Fatal("5-item rule should not be normal form")
	}
	nf := g.Normalize()
	if !nf.IsNormalForm() {
		t.Fatal("Normalize did not produce normal form")
	}
	// 5-item rule becomes 4 binary rules; B rule kept.
	if len(nf.Productions()) != 5 {
		t.Fatalf("want 5 productions, got %d:\n%s", len(nf.Productions()), nf)
	}
	if nf.Start() != g.Start() {
		t.Fatal("start symbol changed")
	}
}

// TestNormalizeEquivalence: the original 3-ary SimProv-style grammar and
// its normalized form derive the same relation.
func TestNormalizeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g, p, _ := buildTree(rng, 30)
	orig := sameGenGrammar(p) // has a 3-item production
	nf := orig.Normalize()

	solver, err := NewSolver(g, nf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := solver.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// Roaring-backed solve must agree.
	solver2, err := NewSolver(g, nf, Options{Sets: bitmap.RoaringFactory})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := solver2.Solve()
	if err != nil {
		t.Fatal(err)
	}
	count1, count2 := 0, 0
	res.IteratePairs(nf.Start(), func(u, v graph.VertexID) bool { count1++; return true })
	res2.IteratePairs(nf.Start(), func(u, v graph.VertexID) bool {
		count2++
		if !res.Has(nf.Start(), u, v) {
			t.Fatalf("roaring fact (%d,%d) missing from bitset solve", u, v)
		}
		return true
	})
	if count1 != count2 {
		t.Fatalf("fact counts differ: %d vs %d", count1, count2)
	}
}

func TestSolverRejectsNonNormalForm(t *testing.T) {
	g, p, _ := buildTree(rand.New(rand.NewSource(1)), 10)
	if _, err := NewSolver(g, sameGenGrammar(p), Options{}); err == nil {
		t.Fatal("non-normal-form grammar accepted")
	}
}

func TestFactBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, p, _ := buildTree(rng, 60)
	gr := sameGenGrammar(p).Normalize()
	solver, err := NewSolver(g, gr, Options{MaxFacts: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := solver.Solve(); err != ErrFactBudget {
		t.Fatalf("want ErrFactBudget, got %v", err)
	}
}

func TestEdgeFilter(t *testing.T) {
	// Two disjoint parent edges; filtering one of them kills its sibling
	// fact.
	g := graph.New()
	p := g.Dict().Intern("p")
	nl := g.Dict().Intern("n")
	for i := 0; i < 4; i++ {
		g.AddVertex(nl)
	}
	e1 := g.AddEdge(1, 0, p)
	g.AddEdge(2, 0, p)
	g.AddEdge(3, 0, p)
	gr := sameGenGrammar(p).Normalize()
	solver, err := NewSolver(g, gr, Options{
		EdgeOK: func(e graph.EdgeID) bool { return e != e1 },
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := solver.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if res.Has(gr.Start(), 1, 2) {
		t.Fatal("filtered edge still produced facts")
	}
	if !res.Has(gr.Start(), 2, 3) {
		t.Fatal("unfiltered siblings lost")
	}
}

func TestGrammarString(t *testing.T) {
	g, p, _ := buildTree(rand.New(rand.NewSource(1)), 5)
	_ = g
	s := sameGenGrammar(p).String()
	if s == "" {
		t.Fatal("empty grammar rendering")
	}
}
