package cflr

import (
	"errors"
	"fmt"

	"repro/internal/bitmap"
	"repro/internal/graph"
)

// ErrFactBudget is returned when the solver exceeds its configured fact
// budget (the practical analogue of CflrB running out of memory on Pd50k in
// the paper's Fig. 5a).
var ErrFactBudget = errors.New("cflr: fact budget exceeded")

// Options configure a solve.
type Options struct {
	// Sets chooses the fast-set implementation (dense bitset by default;
	// bitmap.RoaringFactory gives the paper's Cbm variant).
	Sets bitmap.Factory
	// VertexOK and EdgeOK, when non-nil, are the paper's boundary label
	// functions F_v / F_e: a vertex/edge failing the predicate is treated
	// as labeled epsilon and never matched by a terminal.
	VertexOK func(graph.VertexID) bool
	EdgeOK   func(graph.EdgeID) bool
	// MaxFacts bounds the number of derived facts (0 = unlimited).
	MaxFacts int
}

// Result exposes the derived facts of a solve.
type Result struct {
	g       *Grammar
	rows    [][]bitmap.Set // [symbol][u] -> set of v
	cols    [][]bitmap.Set // [symbol][v] -> set of u
	numFact int
}

// Has reports whether fact sym(u, v) was derived.
func (r *Result) Has(sym Symbol, u, v graph.VertexID) bool {
	row := r.rows[sym][u]
	return row != nil && row.Contains(uint32(v))
}

// Row returns the set of v with sym(u, v), or nil.
func (r *Result) Row(sym Symbol, u graph.VertexID) bitmap.Set { return r.rows[sym][u] }

// Col returns the set of u with sym(u, v), or nil.
func (r *Result) Col(sym Symbol, v graph.VertexID) bitmap.Set { return r.cols[sym][v] }

// NumFacts returns the total number of derived facts.
func (r *Result) NumFacts() int { return r.numFact }

// Bytes estimates the memory held by the fact sets.
func (r *Result) Bytes() int {
	total := 0
	for _, bySym := range [][][]bitmap.Set{r.rows, r.cols} {
		for _, byV := range bySym {
			for _, s := range byV {
				if s != nil {
					total += s.Bytes()
				}
			}
		}
	}
	return total
}

// IteratePairs visits all pairs (u, v) with sym(u, v).
func (r *Result) IteratePairs(sym Symbol, fn func(u, v graph.VertexID) bool) {
	for u, set := range r.rows[sym] {
		if set == nil {
			continue
		}
		stop := false
		set.Iterate(func(v uint32) bool {
			if !fn(graph.VertexID(u), graph.VertexID(v)) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

type workItem struct {
	sym  Symbol
	u, v uint32
}

// occurrence records that a nonterminal appears in a binary production at
// the given position, with the sibling item and the production's LHS.
type occurrence struct {
	lhs     Symbol
	sibling RHSItem
	// onLeft is true when the indexing nonterminal is the LEFT item
	// (A -> B C indexed under B).
	onLeft bool
}

// Solver runs CflrB on one graph with one normal-form grammar.
type Solver struct {
	g     *graph.Graph
	gr    *Grammar
	opts  Options
	units map[Symbol][]Symbol // unit productions A -> B indexed under B
	occ   map[Symbol][]occurrence
}

// NewSolver prepares a solver; the grammar must be in normal form.
func NewSolver(pg *graph.Graph, gr *Grammar, opts Options) (*Solver, error) {
	if !gr.IsNormalForm() {
		return nil, fmt.Errorf("cflr: grammar is not in normal form; call Normalize")
	}
	if opts.Sets == nil {
		opts.Sets = bitmap.BitsetFactory
	}
	s := &Solver{
		g:     pg,
		gr:    gr,
		opts:  opts,
		units: make(map[Symbol][]Symbol),
		occ:   make(map[Symbol][]occurrence),
	}
	for _, p := range gr.Productions() {
		switch len(p.RHS) {
		case 1:
			if !p.RHS[0].IsTerminal {
				s.units[p.RHS[0].N] = append(s.units[p.RHS[0].N], p.LHS)
			}
		case 2:
			l, r := p.RHS[0], p.RHS[1]
			if !l.IsTerminal {
				s.occ[l.N] = append(s.occ[l.N], occurrence{lhs: p.LHS, sibling: r, onLeft: true})
			}
			if !r.IsTerminal {
				s.occ[r.N] = append(s.occ[r.N], occurrence{lhs: p.LHS, sibling: l, onLeft: false})
			}
		}
	}
	return s, nil
}

func (s *Solver) vertexOK(v graph.VertexID) bool {
	return s.opts.VertexOK == nil || s.opts.VertexOK(v)
}

func (s *Solver) edgeOK(e graph.EdgeID) bool {
	return s.opts.EdgeOK == nil || s.opts.EdgeOK(e)
}

// termOut appends the terminal-successors of v under t: vertices v' such
// that the terminal can take a path position from v to v'.
func (s *Solver) termOut(v graph.VertexID, t Terminal, buf []graph.VertexID) []graph.VertexID {
	switch t.Kind {
	case TermEdge:
		if !t.Inverse {
			for _, e := range s.g.Out(v) {
				if s.g.EdgeLabel(e) == t.Label && s.edgeOK(e) && s.vertexOK(s.g.Dst(e)) {
					buf = append(buf, s.g.Dst(e))
				}
			}
		} else {
			for _, e := range s.g.In(v) {
				if s.g.EdgeLabel(e) == t.Label && s.edgeOK(e) && s.vertexOK(s.g.Src(e)) {
					buf = append(buf, s.g.Src(e))
				}
			}
		}
	case TermVertexLabel:
		if s.g.VertexLabel(v) == t.Label && s.vertexOK(v) {
			buf = append(buf, v)
		}
	case TermVertexToken:
		if v == t.Vertex && s.vertexOK(v) {
			buf = append(buf, v)
		}
	}
	return buf
}

// termIn appends the terminal-predecessors of u under t: vertices u' such
// that the terminal can take a path position from u' to u.
func (s *Solver) termIn(u graph.VertexID, t Terminal, buf []graph.VertexID) []graph.VertexID {
	switch t.Kind {
	case TermEdge:
		if !t.Inverse {
			for _, e := range s.g.In(u) {
				if s.g.EdgeLabel(e) == t.Label && s.edgeOK(e) && s.vertexOK(s.g.Src(e)) {
					buf = append(buf, s.g.Src(e))
				}
			}
		} else {
			for _, e := range s.g.Out(u) {
				if s.g.EdgeLabel(e) == t.Label && s.edgeOK(e) && s.vertexOK(s.g.Dst(e)) {
					buf = append(buf, s.g.Dst(e))
				}
			}
		}
	case TermVertexLabel, TermVertexToken:
		return s.termOut(u, t, buf)
	}
	return buf
}

// Solve runs the CflrB worklist to fixpoint and returns the derived facts.
func (s *Solver) Solve() (*Result, error) {
	n := s.g.NumVertices()
	nsym := s.gr.NumNonterminals()
	res := &Result{
		g:    s.gr,
		rows: make([][]bitmap.Set, nsym),
		cols: make([][]bitmap.Set, nsym),
	}
	for i := 0; i < nsym; i++ {
		res.rows[i] = make([]bitmap.Set, n)
		res.cols[i] = make([]bitmap.Set, n)
	}

	var work []workItem
	head := 0

	add := func(sym Symbol, u, v graph.VertexID) error {
		row := res.rows[sym][u]
		if row == nil {
			row = s.opts.Sets(n)
			res.rows[sym][u] = row
		}
		if !row.Add(uint32(v)) {
			return nil
		}
		col := res.cols[sym][v]
		if col == nil {
			col = s.opts.Sets(n)
			res.cols[sym][v] = col
		}
		col.Add(uint32(u))
		res.numFact++
		if s.opts.MaxFacts > 0 && res.numFact > s.opts.MaxFacts {
			return ErrFactBudget
		}
		work = append(work, workItem{sym: sym, u: uint32(u), v: uint32(v)})
		return nil
	}

	// Seed ground facts from all-terminal productions.
	var buf, buf2 []graph.VertexID
	for _, p := range s.gr.Productions() {
		switch {
		case len(p.RHS) == 1 && p.RHS[0].IsTerminal:
			t := p.RHS[0].T
			if err := s.seedUnit(p.LHS, t, add); err != nil {
				return res, err
			}
		case len(p.RHS) == 2 && p.RHS[0].IsTerminal && p.RHS[1].IsTerminal:
			// A -> t1 t2: compose ground relations.
			t1, t2 := p.RHS[0].T, p.RHS[1].T
			err := s.iterateGround(t1, func(u, mid graph.VertexID) error {
				buf2 = s.termOut(mid, t2, buf2[:0])
				for _, v := range buf2 {
					if err := add(p.LHS, u, v); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return res, err
			}
		}
	}

	// Worklist to fixpoint.
	var diffBuf []uint32
	for head < len(work) {
		it := work[head]
		head++
		u, v := graph.VertexID(it.u), graph.VertexID(it.v)

		for _, lhs := range s.units[it.sym] {
			if err := add(lhs, u, v); err != nil {
				return res, err
			}
		}
		for _, oc := range s.occ[it.sym] {
			if oc.onLeft {
				// LHS -> B C with B = popped fact: extend to the right.
				if oc.sibling.IsTerminal {
					buf = s.termOut(v, oc.sibling.T, buf[:0])
					for _, v2 := range buf {
						if err := add(oc.lhs, u, v2); err != nil {
							return res, err
						}
					}
				} else {
					src := res.rows[oc.sibling.N][v]
					if src == nil {
						continue
					}
					dstRow := res.rows[oc.lhs][u]
					if dstRow == nil {
						dstRow = s.opts.Sets(n)
						res.rows[oc.lhs][u] = dstRow
					}
					diffBuf = src.DiffAddInto(dstRow, diffBuf[:0])
					for _, v2 := range diffBuf {
						col := res.cols[oc.lhs][v2]
						if col == nil {
							col = s.opts.Sets(n)
							res.cols[oc.lhs][graph.VertexID(v2)] = col
						}
						col.Add(it.u)
						res.numFact++
						if s.opts.MaxFacts > 0 && res.numFact > s.opts.MaxFacts {
							return res, ErrFactBudget
						}
						work = append(work, workItem{sym: oc.lhs, u: it.u, v: v2})
					}
				}
			} else {
				// LHS -> C B with B = popped fact: extend to the left.
				if oc.sibling.IsTerminal {
					buf = s.termIn(u, oc.sibling.T, buf[:0])
					for _, u2 := range buf {
						if err := add(oc.lhs, u2, v); err != nil {
							return res, err
						}
					}
				} else {
					src := res.cols[oc.sibling.N][u]
					if src == nil {
						continue
					}
					dstCol := res.cols[oc.lhs][v]
					if dstCol == nil {
						dstCol = s.opts.Sets(n)
						res.cols[oc.lhs][v] = dstCol
					}
					diffBuf = src.DiffAddInto(dstCol, diffBuf[:0])
					for _, u2 := range diffBuf {
						row := res.rows[oc.lhs][u2]
						if row == nil {
							row = s.opts.Sets(n)
							res.rows[oc.lhs][graph.VertexID(u2)] = row
						}
						row.Add(it.v)
						res.numFact++
						if s.opts.MaxFacts > 0 && res.numFact > s.opts.MaxFacts {
							return res, ErrFactBudget
						}
						work = append(work, workItem{sym: oc.lhs, u: u2, v: it.v})
					}
				}
			}
		}
	}
	return res, nil
}

// seedUnit seeds facts for A -> t.
func (s *Solver) seedUnit(lhs Symbol, t Terminal, add func(Symbol, graph.VertexID, graph.VertexID) error) error {
	return s.iterateGround(t, func(u, v graph.VertexID) error { return add(lhs, u, v) })
}

// iterateGround visits all ground pairs of a terminal.
func (s *Solver) iterateGround(t Terminal, fn func(u, v graph.VertexID) error) error {
	switch t.Kind {
	case TermEdge:
		for e := 0; e < s.g.NumEdges(); e++ {
			id := graph.EdgeID(e)
			if s.g.EdgeLabel(id) != t.Label || !s.edgeOK(id) {
				continue
			}
			u, v := s.g.Src(id), s.g.Dst(id)
			if t.Inverse {
				u, v = v, u
			}
			if !s.vertexOK(u) || !s.vertexOK(v) {
				continue
			}
			if err := fn(u, v); err != nil {
				return err
			}
		}
	case TermVertexLabel:
		for _, v := range s.g.VerticesWithLabel(t.Label) {
			if !s.vertexOK(v) {
				continue
			}
			if err := fn(v, v); err != nil {
				return err
			}
		}
	case TermVertexToken:
		if int(t.Vertex) < s.g.NumVertices() && s.vertexOK(t.Vertex) {
			if err := fn(t.Vertex, t.Vertex); err != nil {
				return err
			}
		}
	}
	return nil
}
