// Package cflr implements context-free-language reachability (CFLR) over
// property graphs: a context-free grammar representation, conversion to the
// binary normal form CflrB requires, and the generic CflrB worklist solver
// (paper Appendix B, Algorithm 1; Chaudhuri-style with fast sets).
//
// Terminals are resolved directly against graph adjacency: a terminal is an
// edge label (optionally traversed inversely, the paper's U^-1 / G^-1), a
// vertex label (a "self-loop" as the paper puts it for rules r3/r4/r7/r8),
// or a concrete vertex token (the per-Vdst rule r0).
package cflr

import (
	"fmt"
	"strings"

	"repro/internal/graph"
)

// Symbol identifies a nonterminal within a grammar.
type Symbol int32

// TerminalKind distinguishes the three terminal flavors.
type TerminalKind uint8

// Terminal kinds.
const (
	// TermEdge matches traversing an edge with a given label.
	TermEdge TerminalKind = iota
	// TermVertexLabel matches "staying" on a vertex with a given label
	// (a virtual self-loop).
	TermVertexLabel
	// TermVertexToken matches staying on one specific vertex.
	TermVertexToken
)

// Terminal is a grammar terminal resolved against the graph.
type Terminal struct {
	Kind    TerminalKind
	Label   graph.Label    // edge or vertex label (TermEdge, TermVertexLabel)
	Inverse bool           // traverse the edge against its direction (TermEdge)
	Vertex  graph.VertexID // concrete vertex (TermVertexToken)
}

// EdgeTerm builds an edge terminal.
func EdgeTerm(l graph.Label, inverse bool) Terminal {
	return Terminal{Kind: TermEdge, Label: l, Inverse: inverse}
}

// VertexLabelTerm builds a vertex-label self-loop terminal.
func VertexLabelTerm(l graph.Label) Terminal {
	return Terminal{Kind: TermVertexLabel, Label: l}
}

// VertexTokenTerm builds a concrete-vertex terminal.
func VertexTokenTerm(v graph.VertexID) Terminal {
	return Terminal{Kind: TermVertexToken, Vertex: v}
}

// RHSItem is one right-hand-side item: a terminal or a nonterminal.
type RHSItem struct {
	IsTerminal bool
	T          Terminal
	N          Symbol
}

// T wraps a terminal as an RHS item.
func T(t Terminal) RHSItem { return RHSItem{IsTerminal: true, T: t} }

// N wraps a nonterminal as an RHS item.
func N(s Symbol) RHSItem { return RHSItem{N: s} }

// Production is LHS -> RHS... (RHS non-empty; epsilon productions are not
// supported, matching the paper's grammars).
type Production struct {
	LHS Symbol
	RHS []RHSItem
}

// Grammar is a context-free grammar whose terminals are graph-resolved.
type Grammar struct {
	names []string
	prods []Production
	start Symbol
}

// NewGrammar returns an empty grammar.
func NewGrammar() *Grammar { return &Grammar{} }

// AddNonterminal registers a nonterminal and returns its symbol.
func (g *Grammar) AddNonterminal(name string) Symbol {
	g.names = append(g.names, name)
	return Symbol(len(g.names) - 1)
}

// NumNonterminals returns the number of registered nonterminals.
func (g *Grammar) NumNonterminals() int { return len(g.names) }

// Name returns the display name of a nonterminal.
func (g *Grammar) Name(s Symbol) string {
	if int(s) < len(g.names) {
		return g.names[s]
	}
	return fmt.Sprintf("N%d", s)
}

// SetStart sets the start symbol.
func (g *Grammar) SetStart(s Symbol) { g.start = s }

// Start returns the start symbol.
func (g *Grammar) Start() Symbol { return g.start }

// Productions returns the production list.
func (g *Grammar) Productions() []Production { return g.prods }

// Add appends a production LHS -> items.
func (g *Grammar) Add(lhs Symbol, items ...RHSItem) {
	if len(items) == 0 {
		panic("cflr: epsilon productions are not supported")
	}
	g.prods = append(g.prods, Production{LHS: lhs, RHS: items})
}

// IsNormalForm reports whether every production has at most two RHS items.
func (g *Grammar) IsNormalForm() bool {
	for _, p := range g.prods {
		if len(p.RHS) > 2 {
			return false
		}
	}
	return true
}

// Normalize returns an equivalent grammar in binary normal form: every
// production with more than two RHS items is broken into a left-to-right
// chain of binary helper productions (the standard construction the paper
// notes "introduces more worklist entries and misses grammar properties" —
// which is exactly what SimProvAlg avoids).
func (g *Grammar) Normalize() *Grammar {
	out := &Grammar{names: append([]string(nil), g.names...), start: g.start}
	helper := 0
	for _, p := range g.prods {
		if len(p.RHS) <= 2 {
			out.prods = append(out.prods, Production{LHS: p.LHS, RHS: append([]RHSItem(nil), p.RHS...)})
			continue
		}
		// LHS -> x1 x2 ... xm  becomes
		// H1 -> x1 x2; H2 -> H1 x3; ...; LHS -> H_{m-2} xm
		prev := p.RHS[0]
		for i := 1; i < len(p.RHS); i++ {
			var lhs Symbol
			if i == len(p.RHS)-1 {
				lhs = p.LHS
			} else {
				helper++
				lhs = out.AddNonterminal(fmt.Sprintf("%s#%d", g.Name(p.LHS), helper))
			}
			out.prods = append(out.prods, Production{LHS: lhs, RHS: []RHSItem{prev, p.RHS[i]}})
			prev = N(lhs)
		}
	}
	return out
}

// String renders the grammar for debugging.
func (g *Grammar) String() string {
	var b strings.Builder
	for _, p := range g.prods {
		b.WriteString(g.Name(p.LHS))
		b.WriteString(" ->")
		for _, it := range p.RHS {
			b.WriteByte(' ')
			if it.IsTerminal {
				switch it.T.Kind {
				case TermEdge:
					fmt.Fprintf(&b, "e%d", it.T.Label)
					if it.T.Inverse {
						b.WriteString("^-1")
					}
				case TermVertexLabel:
					fmt.Fprintf(&b, "v%d", it.T.Label)
				case TermVertexToken:
					fmt.Fprintf(&b, "tok(%d)", it.T.Vertex)
				}
			} else {
				b.WriteString(g.Name(it.N))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
