package psum_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/psum"
)

func TestPSumBasics(t *testing.T) {
	_, segs := gen.Sd(gen.SdConfig{Alpha: 0.1, Activities: 10, Segments: 5, Seed: 1})
	res := psum.Summarize(segs, psum.Options{K: gen.SdSumOptions().K})
	if res.InputVertices == 0 {
		t.Fatal("no input vertices")
	}
	if res.Nodes <= 0 || res.Nodes > res.InputVertices {
		t.Fatalf("node count %d out of range (inputs %d)", res.Nodes, res.InputVertices)
	}
	cr := res.CompactionRatio()
	if cr <= 0 || cr > 1 {
		t.Fatalf("cr %v out of range", cr)
	}
	// Every occurrence is classified.
	total := 0
	for _, s := range segs {
		total += len(s.Vertices)
	}
	if len(res.Classes) != total {
		t.Fatalf("classified %d of %d occurrences", len(res.Classes), total)
	}
}

// TestPSumMergesOnlySameLabel: merged occurrences always share their
// aggregated label (kind + kept properties).
func TestPSumMergesOnlySameLabel(t *testing.T) {
	g, segs := gen.Sd(gen.SdConfig{Alpha: 0.05, Activities: 8, Segments: 4, Seed: 2})
	opts := psum.Options{K: gen.SdSumOptions().K}
	res := psum.Summarize(segs, opts)
	byClass := map[int]map[string]bool{}
	for occ, cl := range res.Classes {
		if byClass[cl] == nil {
			byClass[cl] = map[string]bool{}
		}
		v := graph.VertexID(occ[1])
		kind := g.KindOf(v).String()
		cmd := g.PG().VertexProp(v, "command").AsString()
		byClass[cl][kind+"|"+cmd] = true
	}
	for cl, labels := range byClass {
		if len(labels) > 1 {
			t.Fatalf("class %d mixes labels %v", cl, labels)
		}
	}
}

// TestPSumPreservesKeywordPaths: on identical segments every vertex class
// collapses across segments, so the summary is no larger than one segment
// plus the keyword pair.
func TestPSumIdenticalSegments(t *testing.T) {
	g := core.NewSegment // silence unused import when core usage changes
	_ = g
	_, segs := gen.Sd(gen.SdConfig{Alpha: 0.01, Activities: 6, Segments: 2, Seed: 3})
	res := psum.Summarize(segs, psum.Options{K: gen.SdSumOptions().K})
	if res.CompactionRatio() > 0.95 {
		t.Errorf("near-identical segments produced no compaction: cr=%.3f", res.CompactionRatio())
	}
}
