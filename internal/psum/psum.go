// Package psum implements the pSum baseline the paper compares PgSum
// against (Sec. V, "Summarization Operator"; Wu et al., "Summarizing answer
// graphs induced by keyword queries", PVLDB 2013).
//
// pSum summarizes a set of answer graphs from keyword search queries. It
// works on UNDIRECTED graphs and preserves paths between keyword vertices.
// Following the paper's adaptation, each PgSeg segment gets a conceptual
// (start, end) keyword vertex pair: start connects to every 0-in-degree
// vertex, end to every 0-out-degree vertex. Vertices are then merged by a
// stable partition refinement over undirected neighborhoods (a
// bisimulation-style criterion), which preserves all label paths between
// the keyword pair but — unlike PgSum — cannot exploit directed in-trace /
// out-trace equivalence, so it merges less on workflow-shaped graphs.
package psum

import (
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/prov"
)

// Options configure the baseline; it reuses PgSum's property aggregation so
// both summarizers see the same vertex labels.
type Options struct {
	K core.Aggregation
}

// Result is the pSum summary: the merged node count is what the compaction
// ratio compares.
type Result struct {
	// Nodes is the number of summary nodes.
	Nodes int
	// InputVertices is the total number of segment vertex occurrences.
	InputVertices int
	// Classes maps each occurrence (segment index, vertex) to its summary
	// node id.
	Classes map[[2]int]int
}

// CompactionRatio returns nodes / input vertices.
func (r *Result) CompactionRatio() float64 {
	if r.InputVertices == 0 {
		return 1
	}
	return float64(r.Nodes) / float64(r.InputVertices)
}

// label computes the aggregated vertex label (kind + kept properties),
// matching PgSum's base color.
func label(p *prov.Graph, v graph.VertexID, k core.Aggregation) string {
	kind := p.KindOf(v)
	var keys []string
	switch kind {
	case prov.KindEntity:
		keys = k.Entity
	case prov.KindActivity:
		keys = k.Activity
	case prov.KindAgent:
		keys = k.Agent
	}
	var b strings.Builder
	b.WriteString(kind.String())
	for _, key := range keys {
		b.WriteByte('|')
		b.WriteString(key)
		b.WriteByte('=')
		b.WriteString(p.PG().VertexProp(v, key).AsString())
	}
	return b.String()
}

// Summarize runs the baseline over a set of segments.
func Summarize(segs []*core.Segment, opts Options) *Result {
	// Build the undirected multigraph over all occurrences plus one
	// (start, end) keyword pair per the adaptation (shared across
	// segments so cross-segment merging is possible, as with PgSum).
	type node struct {
		color int
		adj   []int // neighbor node indices (undirected, with edge color folded into neighbor color during refinement)
	}
	var nodes []node
	colorIDs := map[string]int{}
	intern := func(sig string) int {
		if id, ok := colorIDs[sig]; ok {
			return id
		}
		id := len(colorIDs)
		colorIDs[sig] = id
		return id
	}

	occID := map[[2]int]int{}
	addNode := func(sig string) int {
		id := len(nodes)
		nodes = append(nodes, node{color: intern(sig)})
		return id
	}
	start := addNode("__start__")
	end := addNode("__end__")

	total := 0
	for si, s := range segs {
		g := s.P.PG()
		inDeg := map[graph.VertexID]int{}
		outDeg := map[graph.VertexID]int{}
		for _, e := range s.Edges {
			outDeg[g.Src(e)]++
			inDeg[g.Dst(e)]++
		}
		for _, v := range s.Vertices {
			id := addNode(label(s.P, v, opts.K))
			occID[[2]int{si, int(v)}] = id
			total++
			if inDeg[v] == 0 {
				nodes[start].adj = append(nodes[start].adj, id)
				nodes[id].adj = append(nodes[id].adj, start)
			}
			if outDeg[v] == 0 {
				nodes[end].adj = append(nodes[end].adj, id)
				nodes[id].adj = append(nodes[id].adj, end)
			}
		}
		for _, e := range s.Edges {
			f := occID[[2]int{si, int(g.Src(e))}]
			t := occID[[2]int{si, int(g.Dst(e))}]
			nodes[f].adj = append(nodes[f].adj, t)
			nodes[t].adj = append(nodes[t].adj, f)
		}
	}

	// Stable partition refinement over undirected neighbor color sets:
	// iterate until the coloring stabilizes (coarsest stable partition
	// refining the initial labels).
	colors := make([]int, len(nodes))
	for i, nd := range nodes {
		colors[i] = nd.color
	}
	for iter := 0; iter < len(nodes); iter++ {
		next := make([]int, len(nodes))
		sigIDs := map[string]int{}
		changedStructure := false
		for i, nd := range nodes {
			neigh := make([]int, 0, len(nd.adj))
			for _, a := range nd.adj {
				neigh = append(neigh, colors[a])
			}
			sort.Ints(neigh)
			// Neighbor color SET (not multiset): pSum merges vertices whose
			// neighborhoods look alike regardless of multiplicity, which is
			// what keeps keyword paths intact on undirected answer graphs.
			uniq := neigh[:0]
			prev := -1
			for _, c := range neigh {
				if c != prev {
					uniq = append(uniq, c)
					prev = c
				}
			}
			var b strings.Builder
			for _, c := range uniq {
				b.WriteByte(',')
				b.WriteString(itoa(c))
			}
			sig := itoa(colors[i]) + ";" + b.String()
			id, ok := sigIDs[sig]
			if !ok {
				id = len(sigIDs)
				sigIDs[sig] = id
			}
			next[i] = id
		}
		same := countDistinct(colors) == countDistinct(next)
		colors = next
		if same && !changedStructure {
			break
		}
	}

	classes := make(map[[2]int]int, total)
	for occ, id := range occID {
		classes[occ] = colors[id]
	}
	distinct := map[int]bool{}
	for _, c := range classes {
		distinct[c] = true
	}
	return &Result{Nodes: len(distinct), InputVertices: total, Classes: classes}
}

func countDistinct(xs []int) int {
	m := map[int]bool{}
	for _, x := range xs {
		m[x] = true
	}
	return len(m)
}

func itoa(x int) string {
	if x == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for x > 0 {
		i--
		buf[i] = byte('0' + x%10)
		x /= 10
	}
	return string(buf[i:])
}
