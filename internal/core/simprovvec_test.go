package core

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/bitmap"
	"repro/internal/cflr"
	"repro/internal/graph"
	"repro/internal/prov"
)

// White-box coverage of the set-at-a-time VC2 solvers (simprovvec.go): the
// level-synchronous SimProvTst and the round-grouped SimProvAlg must match
// their scalar counterparts exactly on every query shape the gate admits —
// including excluded relations, disabled early stopping, non-monotone
// ingestion and the fact-budget error path — and the regime choice itself
// must pick the side the options and the snapshot statistics dictate.

// vc2Set runs SimilarPaths under the given options and returns the result
// as a map.
func vc2Set(t *testing.T, p *prov.Graph, q Query, opts Options) map[uint32]bool {
	t.Helper()
	set, err := NewEngine(p, opts).SimilarPaths(q)
	if err != nil {
		t.Fatalf("SimilarPaths(%+v): %v", opts, err)
	}
	m := map[uint32]bool{}
	set.Iterate(func(x uint32) bool { m[x] = true; return true })
	return m
}

func diffSets(t *testing.T, label string, want, got map[uint32]bool) {
	t.Helper()
	for v := range want {
		if !got[v] {
			t.Errorf("%s: vectorized solver missing vertex %d", label, v)
		}
	}
	for v := range got {
		if !want[v] {
			t.Errorf("%s: vectorized solver has extra vertex %d", label, v)
		}
	}
}

// solverPair diffs the forced-vectorized solver against the scalar one on a
// frozen snapshot for both SimProvTst and SimProvAlg.
func solverPair(t *testing.T, label string, fz *prov.Graph, q Query, base Options) {
	t.Helper()
	for _, solver := range []SolverKind{SolverTst, SolverAlg} {
		scalar, vec := base, base
		scalar.Solver, vec.Solver = solver, solver
		scalar.ScalarTraversal = true
		vec.ForceVecSolver = true
		diffSets(t, fmt.Sprintf("%s/%v", label, solver),
			vc2Set(t, fz, q, scalar), vc2Set(t, fz, q, vec))
	}
}

func TestVecSolversAgreeOnLifecycle(t *testing.T) {
	for rounds := 1; rounds <= 6; rounds++ {
		p, src, dst := smallLifecycle(rounds)
		fz := p.Freeze()
		q := Query{Src: src, Dst: dst}
		solverPair(t, fmt.Sprintf("rounds=%d", rounds), fz, q, Options{})
		solverPair(t, fmt.Sprintf("rounds=%d/noearlystop", rounds), fz, q, Options{NoEarlyStop: true})
	}
}

func TestVecSolversExcludedRels(t *testing.T) {
	p, src, dst := smallLifecycle(5)
	fz := p.Freeze()
	for _, excl := range [][]prov.Rel{
		{prov.RelGen},
		{prov.RelUsed},
		{prov.RelGen, prov.RelUsed},
		{prov.RelDeriv, prov.RelAssoc},
	} {
		q := Query{Src: src, Dst: dst, Boundary: Boundary{ExcludeRels: excl}}
		solverPair(t, fmt.Sprintf("excl=%v", excl), fz, q, Options{})
	}
}

// TestVecSolversNonMonotone: out-of-order ingestion (an ancestry edge toward
// a newer id) bars the depth/height bitvec path for the scalar solver, but
// the level-synchronous solver mirrors the class-chain iteration and stays
// exact.
func TestVecSolversNonMonotone(t *testing.T) {
	p := prov.New()
	// Activities created before their inputs: Used edges point old -> new.
	a1 := p.NewActivity("a1")
	a2 := p.NewActivity("a2")
	src := p.NewEntity("src")
	mid := p.NewEntity("mid")
	dst := p.NewEntity("dst")
	p.Used(a1, src)
	p.WasGeneratedBy(mid, a1)
	p.Used(a2, mid)
	p.WasGeneratedBy(dst, a2)
	eng := NewEngine(p, Options{})
	if eng.ancestryMonotone() {
		t.Fatal("graph should be non-monotone")
	}
	fz := p.Freeze()
	q := Query{Src: []graph.VertexID{src}, Dst: []graph.VertexID{dst}}
	solverPair(t, "nonmonotone", fz, q, Options{})
	solverPair(t, "nonmonotone/noearlystop", fz, q, Options{NoEarlyStop: true})
}

// wideLifecycle records enough ancestry edges to clear vecSolverMinEdges,
// with fan-in across artifacts so VC2 is non-trivial.
func wideLifecycle(runs int) (*prov.Graph, []graph.VertexID, []graph.VertexID) {
	rc := prov.NewRecorder()
	d := rc.Import("a", "data", "")
	m := rc.Import("a", "model", "")
	cur := []graph.VertexID{d, m}
	for i := 0; i < runs; i++ {
		_, out := rc.Run("a", "step", cur, []string{"o1", "o2", "o3"})
		cur = []graph.VertexID{out[i%3], out[(i+1)%3], d}
	}
	_, final := rc.Run("a", "final", cur, []string{"result"})
	return rc.P, []graph.VertexID{d, m}, final
}

// TestVecSolverRegimeChoice pins the DegreeStats heuristic: the set-at-a-time
// path engages by default exactly when the snapshot's ancestry blocks reach
// vecSolverMinEdges, and never on live graphs, scalar-forced engines, or
// property-constrained queries.
func TestVecSolverRegimeChoice(t *testing.T) {
	small, _, _ := smallLifecycle(3)
	big, _, _ := wideLifecycle(800) // ~4800 U+G edges
	ad := func(p *prov.Graph) *adjacency { return newAdjacency(p, Boundary{}) }

	cases := []struct {
		name string
		p    *prov.Graph
		opts Options
		want bool
	}{
		{"small-default", small.Freeze(), Options{}, false},
		{"small-forced", small.Freeze(), Options{ForceVecSolver: true}, true},
		{"big-default", big.Freeze(), Options{}, true},
		{"big-scalar", big.Freeze(), Options{ScalarTraversal: true}, false},
		{"live-forced", big, Options{ForceVecSolver: true}, false},
		{"big-matchprop", big.Freeze(), Options{MatchActivityProp: "x"}, false},
	}
	for _, tc := range cases {
		if got := NewEngine(tc.p, tc.opts).vecSolverChosen(ad(tc.p)); got != tc.want {
			t.Errorf("%s: vecSolverChosen = %v, want %v", tc.name, got, tc.want)
		}
	}
	// Filtered boundaries are never vectorized.
	fz := big.Freeze()
	adf := newAdjacency(fz, Boundary{VertexFilters: []VertexFilter{
		func(*prov.Graph, graph.VertexID) bool { return true },
	}})
	if NewEngine(fz, Options{ForceVecSolver: true}).vecSolverChosen(adf) {
		t.Error("filtered boundary must stay scalar")
	}
}

// TestVecSolverDefaultAboveThreshold: above the edge threshold the default
// engine takes the vectorized path; its results must still match a forced
// scalar run (the dispatch itself, not just the forced variants).
func TestVecSolverDefaultAboveThreshold(t *testing.T) {
	p, src, dst := wideLifecycle(800)
	fz := p.Freeze()
	eng := NewEngine(fz, Options{})
	if !eng.vecSolverChosen(newAdjacency(fz, Boundary{})) {
		t.Fatal("threshold graph should choose the vectorized solver by default")
	}
	q := Query{Src: src, Dst: dst}
	for _, solver := range []SolverKind{SolverTst, SolverAlg} {
		diffSets(t, fmt.Sprintf("default/%v", solver),
			vc2Set(t, fz, q, Options{Solver: solver, ScalarTraversal: true}),
			vc2Set(t, fz, q, Options{Solver: solver}))
	}
}

// TestVecSolverExcludedBlocksNotRead pins the block-skipping contract: a
// boundary excluding a relation must keep the vectorized solvers from ever
// acquiring that relation's CSR block.
func TestVecSolverExcludedBlocksNotRead(t *testing.T) {
	p, src, dst := smallLifecycle(4)
	fz := p.Freeze()
	genLabel := fz.RelLabel(prov.RelGen)
	for _, solver := range []SolverKind{SolverTst, SolverAlg} {
		sawGen := false
		restore := graph.SetRowReadHook(func(l graph.Label, out bool) {
			if l == genLabel {
				sawGen = true
			}
		})
		q := Query{Src: src, Dst: dst, Boundary: Boundary{ExcludeRels: []prov.Rel{prov.RelGen}}}
		_, err := NewEngine(fz, Options{Solver: solver, ForceVecSolver: true}).SimilarPaths(q)
		restore()
		if err != nil {
			t.Fatalf("%v: %v", solver, err)
		}
		if sawGen {
			t.Errorf("%v: excluded G block was read", solver)
		}
	}
}

// TestVecAlgFactBudget: the vectorized SimProvAlg honors MaxFacts.
func TestVecAlgFactBudget(t *testing.T) {
	p, src, dst := smallLifecycle(5)
	fz := p.Freeze()
	opts := Options{Solver: SolverAlg, ForceVecSolver: true, MaxFacts: 2}
	_, err := NewEngine(fz, opts).SimilarPaths(Query{Src: src, Dst: dst})
	if !errors.Is(err, cflr.ErrFactBudget) {
		t.Fatalf("want ErrFactBudget, got %v", err)
	}
}

// TestVecAlgFallsBackOnCustomSets: an explicitly chosen set representation
// (the Roaring ablation) must keep the scalar worklist even when the
// vectorized gate would otherwise fire — and the results still agree.
func TestVecAlgFallsBackOnCustomSets(t *testing.T) {
	p, src, dst := smallLifecycle(5)
	fz := p.Freeze()
	q := Query{Src: src, Dst: dst}
	roaring := vc2Set(t, fz, q, Options{
		Solver: SolverAlg, ForceVecSolver: true, Sets: bitmap.RoaringFactory,
	})
	diffSets(t, "roaring-fallback",
		vc2Set(t, fz, q, Options{Solver: SolverAlg, ScalarTraversal: true}), roaring)
}

// TestVecSolverSegmentParity diffs whole segments (vertices, edges, rule
// attribution) between forced-vectorized and scalar engines.
func TestVecSolverSegmentParity(t *testing.T) {
	p, src, dst := smallLifecycle(6)
	fz := p.Freeze()
	q := Query{Src: src, Dst: dst}
	for _, solver := range []SolverKind{SolverTst, SolverAlg} {
		sv, err := NewEngine(fz, Options{Solver: solver, ScalarTraversal: true}).Segment(q)
		if err != nil {
			t.Fatal(err)
		}
		vv, err := NewEngine(fz, Options{Solver: solver, ForceVecSolver: true}).Segment(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(sv.Vertices) != len(vv.Vertices) || len(sv.Edges) != len(vv.Edges) {
			t.Fatalf("%v: segment size mismatch: %d/%d vertices, %d/%d edges",
				solver, len(sv.Vertices), len(vv.Vertices), len(sv.Edges), len(vv.Edges))
		}
		for i, v := range sv.Vertices {
			if vv.Vertices[i] != v {
				t.Fatalf("%v: vertex %d: %d vs %d", solver, i, v, vv.Vertices[i])
			}
			if sv.ByRule[v] != vv.ByRule[v] {
				t.Errorf("%v: rule mismatch at %d: %v vs %v", solver, v, sv.ByRule[v], vv.ByRule[v])
			}
		}
		for i, eid := range sv.Edges {
			if vv.Edges[i] != eid {
				t.Fatalf("%v: edge %d: %d vs %d", solver, i, eid, vv.Edges[i])
			}
		}
	}
}
