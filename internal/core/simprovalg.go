package core

import (
	"repro/internal/bitmap"
	"repro/internal/cflr"
	"repro/internal/graph"
)

// SimProvAlg (paper Sec. III.B.2, "Rewriting SimProv", Fig. 4):
//
//	Ee -> vj                      for each vj in Vdst   (Ee subset of E x E)
//	Aa -> G^-1 Ee G                                     (Aa subset of A x A)
//	Ee -> U^-1 Aa U
//
// The rewriting folds the normal form's intermediate nonterminals away, so
// one worklist pop derives a whole Aa (or Ee) fact at once (the paper's
// "reduction for worklist tuples"). Both relations are symmetric, enabling
// the (id(x) <= id(y)) pruning strategy; the temporal early-stopping rule
// drops pairs whose two sides are both strictly older than every source
// entity, because derivation strictly descends in order-of-being and an
// answer fact must keep one side at a source.

// pairStore keeps a symmetric vertex-pair relation as per-vertex partner
// sets (both orientations stored so lookups and partner enumeration are
// direct).
type pairStore struct {
	sets    []bitmap.Set
	factory bitmap.Factory
	n       int
	count   int
}

func newPairStore(n int, f bitmap.Factory) *pairStore {
	return &pairStore{sets: make([]bitmap.Set, n), factory: f, n: n}
}

// add inserts the unordered pair {u, v}; it reports whether it was new.
func (ps *pairStore) add(u, v graph.VertexID) bool {
	su := ps.sets[u]
	if su == nil {
		su = ps.factory(ps.n)
		ps.sets[u] = su
	}
	if !su.Add(uint32(v)) {
		return false
	}
	if u != v {
		sv := ps.sets[v]
		if sv == nil {
			sv = ps.factory(ps.n)
			ps.sets[v] = sv
		}
		sv.Add(uint32(u))
	}
	ps.count++
	return true
}

func (ps *pairStore) has(u, v graph.VertexID) bool {
	s := ps.sets[u]
	return s != nil && s.Contains(uint32(v))
}

func (ps *pairStore) partners(u graph.VertexID, fn func(graph.VertexID) bool) {
	if s := ps.sets[u]; s != nil {
		s.Iterate(func(x uint32) bool { return fn(graph.VertexID(x)) })
	}
}

func (ps *pairStore) bytes() int {
	total := 0
	for _, s := range ps.sets {
		if s != nil {
			total += s.Bytes()
		}
	}
	return total
}

// algFacts is the factSource over SimProvAlg's two stores.
type algFacts struct {
	ee *pairStore
	aa *pairStore
}

func (f *algFacts) hasEe(u, v graph.VertexID) bool { return f.ee.has(u, v) }
func (f *algFacts) hasAa(u, v graph.VertexID) bool { return f.aa.has(u, v) }
func (f *algFacts) eePartners(s graph.VertexID, fn func(graph.VertexID) bool) {
	f.ee.partners(s, fn)
}

// Bytes reports the fact-store footprint (for the memory experiments).
func (f *algFacts) Bytes() int { return f.ee.bytes() + f.aa.bytes() }

// NumFacts reports the number of stored pair facts.
func (f *algFacts) NumFacts() int { return f.ee.count + f.aa.count }

type algItem struct {
	isEe bool
	u, v uint32
}

// runSimProvAlg derives all Ee/Aa facts for the query.
func (e *Engine) runSimProvAlg(src, dst []graph.VertexID, ad *adjacency) (*algFacts, error) {
	// Set-at-a-time path (simprovvec.go): requires the symmetric-pair
	// pruning (rounds push canonical pairs) and the default dense-bitset
	// stores (word-parallel partner merges) on top of the shared gate.
	if e.vecSolverChosen(ad) && !e.opts.NoPruning && e.setsDefault {
		return e.runSimProvAlgVec(src, dst, ad)
	}
	n := e.P.NumVertices()
	facts := &algFacts{
		ee: newPairStore(n, e.opts.Sets),
		aa: newPairStore(n, e.opts.Sets),
	}
	matchA := e.propMatch(e.opts.MatchActivityProp)
	matchE := e.propMatch(e.opts.MatchEntityProp)

	minSrc := int64(1) << 62
	for _, s := range src {
		if o := e.P.Order(s); o < minSrc {
			minSrc = o
		}
	}
	earlyStop := !e.opts.NoEarlyStop
	pruning := !e.opts.NoPruning

	var work []algItem
	head := 0
	pushEe := func(u, v graph.VertexID) bool {
		if pruning && u > v {
			u, v = v, u
		}
		if !facts.ee.add(u, v) {
			return true
		}
		if e.opts.MaxFacts > 0 && facts.NumFacts() > e.opts.MaxFacts {
			return false
		}
		work = append(work, algItem{isEe: true, u: uint32(u), v: uint32(v)})
		return true
	}
	pushAa := func(u, v graph.VertexID) bool {
		if pruning && u > v {
			u, v = v, u
		}
		if !facts.aa.add(u, v) {
			return true
		}
		if e.opts.MaxFacts > 0 && facts.NumFacts() > e.opts.MaxFacts {
			return false
		}
		work = append(work, algItem{isEe: false, u: uint32(u), v: uint32(v)})
		return true
	}

	for _, vj := range dst {
		if !ad.vertexOK(vj) {
			continue
		}
		if !pushEe(vj, vj) {
			return facts, cflr.ErrFactBudget
		}
	}

	var bufU, bufV []graph.VertexID
	for head < len(work) {
		it := work[head]
		head++
		u, v := graph.VertexID(it.u), graph.VertexID(it.v)
		if earlyStop && e.P.Order(u) < minSrc && e.P.Order(v) < minSrc {
			// Every further derivation strictly descends in order-of-being,
			// so this pair can never reach a source entity.
			continue
		}
		if it.isEe {
			// Aa(a1, a2) <- G^-1(a1, e1=u) Ee(u, v) G(e2=v, a2):
			// a1 generated u, a2 generated v.
			bufU = ad.generatorsOf(u, bufU[:0])
			bufV = ad.generatorsOf(v, bufV[:0])
			for _, a1 := range bufU {
				for _, a2 := range bufV {
					if matchA != nil && !matchA(a1, a2) {
						continue
					}
					if !pushAa(a1, a2) {
						return facts, cflr.ErrFactBudget
					}
				}
			}
		} else {
			// Ee(e1, e2) <- U^-1(e1, a1=u) Aa(u, v) U(a2=v, e2):
			// e1 is an input of u, e2 an input of v.
			bufU = ad.inputsOf(u, bufU[:0])
			bufV = ad.inputsOf(v, bufV[:0])
			for _, e1 := range bufU {
				for _, e2 := range bufV {
					if matchE != nil && !matchE(e1, e2) {
						continue
					}
					if !pushEe(e1, e2) {
						return facts, cflr.ErrFactBudget
					}
				}
			}
		}
	}
	return facts, nil
}
