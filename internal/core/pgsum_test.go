package core_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// pathLanguage enumerates all path-label words up to maxLen edges in a
// labeled digraph given as (node label, adjacency with edge labels). A word
// is "class (rel class)*".
func pathLanguage(labels []int, out [][][2]int, maxLen int) map[string]bool {
	words := make(map[string]bool)
	var dfs func(v int, sb []string, depth int)
	dfs = func(v int, sb []string, depth int) {
		words[strings.Join(sb, " ")] = true
		if depth == maxLen {
			return
		}
		for _, arc := range out[v] {
			dfs(arc[0], append(sb, fmt.Sprint(arc[1]), fmt.Sprint(labels[arc[0]])), depth+1)
		}
	}
	for v := range labels {
		dfs(v, []string{fmt.Sprint(labels[v])}, 0)
	}
	return words
}

// psgGraph converts a Psg into (labels, adjacency) form.
func psgGraph(p *core.Psg) ([]int, [][][2]int) {
	labels := make([]int, len(p.Nodes))
	out := make([][][2]int, len(p.Nodes))
	for i, n := range p.Nodes {
		labels[i] = n.Class
	}
	for _, e := range p.Edges {
		out[e.From] = append(out[e.From], [2]int{e.To, int(e.Rel)})
	}
	return labels, out
}

// g0Graph reconstructs the class-labeled disjoint union of the segments,
// reading each occurrence's class off the Psg node that absorbed it.
func g0Graph(segs []*core.Segment, p *core.Psg) ([]int, [][][2]int) {
	classOf := make(map[[2]int]int)
	for _, n := range p.Nodes {
		for _, m := range n.Members {
			classOf[m] = n.Class
		}
	}
	var labels []int
	var out [][][2]int
	idx := make(map[[2]int]int)
	for si, s := range segs {
		for _, v := range s.Vertices {
			key := [2]int{si, int(v)}
			idx[key] = len(labels)
			labels = append(labels, classOf[key])
			out = append(out, nil)
		}
	}
	for si, s := range segs {
		g := s.P.PG()
		for _, e := range s.Edges {
			f := idx[[2]int{si, int(g.Src(e))}]
			t := idx[[2]int{si, int(g.Dst(e))}]
			out[f] = append(out[f], [2]int{t, int(s.P.RelOf(e))})
		}
	}
	return labels, out
}

func checkPsgInvariant(t *testing.T, name string, segs []*core.Segment, psg *core.Psg, maxLen int) {
	t.Helper()
	gl, ga := g0Graph(segs, psg)
	pl, pa := psgGraph(psg)
	want := pathLanguage(gl, ga, maxLen)
	got := pathLanguage(pl, pa, maxLen)
	for w := range want {
		if !got[w] {
			t.Errorf("%s: path word lost: %q", name, w)
			return
		}
	}
	for w := range got {
		if !want[w] {
			t.Errorf("%s: path word invented: %q", name, w)
			return
		}
	}
}

func checkPsgDAG(t *testing.T, name string, psg *core.Psg) {
	t.Helper()
	n := len(psg.Nodes)
	indeg := make([]int, n)
	adj := make([][]int, n)
	for _, e := range psg.Edges {
		adj[e.From] = append(adj[e.From], e.To)
		indeg[e.To]++
	}
	var queue []int
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	seen := 0
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		for _, d := range adj[v] {
			indeg[d]--
			if indeg[d] == 0 {
				queue = append(queue, d)
			}
		}
	}
	if seen != n {
		t.Errorf("%s: Psg contains a cycle (%d of %d nodes in topo order)", name, seen, n)
	}
}

// TestPsgInvariantOnSd checks the two halves of the Psg contract — no path
// label lost, none invented — on segment sets of varying stability, plus
// DAG-ness and a sane compaction ratio.
func TestPsgInvariantOnSd(t *testing.T) {
	alphas := []float64{0.025, 0.1, 0.5, 1.0}
	if testing.Short() {
		alphas = []float64{0.1, 1.0}
	}
	for _, alpha := range alphas {
		for seed := int64(1); seed <= 3; seed++ {
			name := fmt.Sprintf("alpha=%g seed=%d", alpha, seed)
			_, segs := gen.Sd(gen.SdConfig{Alpha: alpha, Activities: 8, Segments: 4, Seed: seed})
			psg, err := core.Summarize(segs, gen.SdSumOptions())
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if cr := psg.CompactionRatio(); cr <= 0 || cr > 1 {
				t.Errorf("%s: compaction ratio out of range: %v", name, cr)
			}
			checkPsgDAG(t, name, psg)
			checkPsgInvariant(t, name, segs, psg, 6)
		}
	}
}

// TestPsgExactIsoInvariant re-runs the invariant with exact-isomorphism
// provenance types and a larger radius.
func TestPsgExactIsoInvariant(t *testing.T) {
	_, segs := gen.Sd(gen.SdConfig{Alpha: 0.1, Activities: 8, Segments: 4, Seed: 9})
	opts := gen.SdSumOptions()
	opts.TypeRadius = 2
	opts.ExactIso = true
	psg, err := core.Summarize(segs, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkPsgDAG(t, "exact-iso", psg)
	checkPsgInvariant(t, "exact-iso", segs, psg, 6)
}

// TestPsgCompactsStablePipelines: segments drawn from a highly concentrated
// transition matrix should compact substantially.
func TestPsgCompactsStablePipelines(t *testing.T) {
	_, segs := gen.Sd(gen.SdConfig{Alpha: 0.02, Activities: 12, Segments: 10, Seed: 2})
	psg, err := core.Summarize(segs, gen.SdSumOptions())
	if err != nil {
		t.Fatal(err)
	}
	if cr := psg.CompactionRatio(); cr > 0.8 {
		t.Errorf("stable pipelines barely compacted: cr=%.3f", cr)
	}
}

// TestPsgFrequencies: every edge frequency is in (0, 1], and an edge shared
// by all segments gets frequency 1.
func TestPsgFrequencies(t *testing.T) {
	_, segs := gen.Sd(gen.SdConfig{Alpha: 0.05, Activities: 6, Segments: 5, Seed: 4})
	psg, err := core.Summarize(segs, gen.SdSumOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(psg.Edges) == 0 {
		t.Fatal("summary has no edges")
	}
	for _, e := range psg.Edges {
		if e.Freq <= 0 || e.Freq > 1 {
			t.Errorf("edge frequency out of range: %+v", e)
		}
	}
}

// TestPsgMemberPartition: the Psg nodes partition the input occurrences.
func TestPsgMemberPartition(t *testing.T) {
	_, segs := gen.Sd(gen.SdConfig{Alpha: 0.1, Activities: 10, Segments: 6, Seed: 5})
	psg, err := core.Summarize(segs, gen.SdSumOptions())
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[[2]int]bool)
	total := 0
	for _, n := range psg.Nodes {
		if len(n.Members) == 0 {
			t.Error("empty Psg node")
		}
		for _, m := range n.Members {
			if seen[m] {
				t.Errorf("occurrence %v in two Psg nodes", m)
			}
			seen[m] = true
			total++
		}
	}
	if total != psg.InputVertices {
		t.Errorf("member count %d != input vertices %d", total, psg.InputVertices)
	}
	want := 0
	for _, s := range segs {
		want += len(s.Vertices)
	}
	if psg.InputVertices != want {
		t.Errorf("InputVertices=%d, want %d", psg.InputVertices, want)
	}
	var _ graph.VertexID // keep import
}
