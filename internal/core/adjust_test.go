package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/prov"
)

// TestAdjustExclude: the interactive adjust step filters a cached segment
// without re-induction; query vertices survive any filter.
func TestAdjustExclude(t *testing.T) {
	p := gen.Pd(gen.PdConfig{N: 300, Seed: 3})
	src, dst := gen.DefaultQuery(p)
	eng := core.NewEngine(p, core.Options{})
	seg, err := eng.Segment(core.Query{Src: src, Dst: dst})
	if err != nil {
		t.Fatal(err)
	}
	// Exclude all agents.
	out := eng.AdjustExclude(seg, core.Boundary{
		VertexFilters: []core.VertexFilter{func(p *prov.Graph, v graph.VertexID) bool {
			return !p.IsKind(v, prov.KindAgent)
		}},
	})
	for _, v := range out.Vertices {
		if p.IsKind(v, prov.KindAgent) {
			t.Fatal("agent survived exclusion")
		}
	}
	if out.NumVertices() >= seg.NumVertices() {
		t.Fatal("exclusion removed nothing")
	}
	// Edges incident to removed vertices are gone.
	g := p.PG()
	for _, e := range out.Edges {
		if !out.Contains(g.Src(e)) || !out.Contains(g.Dst(e)) {
			t.Fatal("dangling edge after exclusion")
		}
	}
	// A filter that rejects everything still keeps the query vertices.
	all := eng.AdjustExclude(seg, core.Boundary{
		VertexFilters: []core.VertexFilter{func(*prov.Graph, graph.VertexID) bool { return false }},
	})
	for _, v := range append(append([]graph.VertexID{}, src...), dst...) {
		if !all.Contains(v) {
			t.Fatal("query vertex dropped by exclusion")
		}
	}
}

// TestAdjustExpand: expansion grows the cached segment monotonically and
// matches re-running the query with the expansion in the boundary.
func TestAdjustExpand(t *testing.T) {
	g, names := fig2(t)
	eng := core.NewEngine(g, core.Options{})
	base := core.Query{
		Src:      []graph.VertexID{names["dataset"]},
		Dst:      []graph.VertexID{names["weights2"]},
		Boundary: core.Boundary{ExcludeRels: []prov.Rel{prov.RelAttr, prov.RelDeriv}},
	}
	seg, err := eng.Segment(base)
	if err != nil {
		t.Fatal(err)
	}
	grown, err := eng.AdjustExpand(seg, core.Expansion{Within: []graph.VertexID{names["weights2"]}, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.AdjustExpand(seg, core.Expansion{Within: []graph.VertexID{1 << 30}, K: 1}); err == nil {
		t.Fatal("out-of-range expansion vertex accepted")
	}
	if grown.NumVertices() <= seg.NumVertices() {
		t.Fatal("expansion grew nothing")
	}
	for _, v := range seg.Vertices {
		if !grown.Contains(v) {
			t.Fatal("expansion lost a vertex")
		}
	}
	if !grown.Contains(names["update2"]) || !grown.Contains(names["model1"]) {
		t.Fatal("expansion missed the k=2 ancestry")
	}
}

// fig2 builds the paper's Fig. 2 graph at the core level (without the root
// facade, to keep the test inside the operator package's external suite).
func fig2(t *testing.T) (*prov.Graph, map[string]graph.VertexID) {
	t.Helper()
	rc := prov.NewRecorder()
	names := map[string]graph.VertexID{}
	names["dataset"] = rc.Import("Alice", "dataset", "http://x")
	names["model1"] = rc.Import("Alice", "model", "")
	names["solver1"] = rc.Import("Alice", "solver", "")
	_, o1 := rc.Run("Alice", "train", []graph.VertexID{names["model1"], names["solver1"], names["dataset"]}, []string{"logs", "weights"})
	names["weights1"] = o1[1]
	up2, mo := rc.Run("Alice", "update", []graph.VertexID{names["model1"]}, []string{"model"})
	names["update2"] = up2
	names["model2"] = mo[0]
	_, o2 := rc.Run("Alice", "train", []graph.VertexID{names["model2"], names["solver1"], names["dataset"]}, []string{"logs", "weights"})
	names["weights2"] = o2[1]
	return rc.P, names
}

// TestSegmentErrors: malformed queries are rejected.
func TestSegmentErrors(t *testing.T) {
	p := gen.Pd(gen.PdConfig{N: 100, Seed: 1})
	eng := core.NewEngine(p, core.Options{})
	if _, err := eng.Segment(core.Query{}); err == nil {
		t.Fatal("empty query accepted")
	}
	ents := p.Entities()
	if _, err := eng.Segment(core.Query{Src: []graph.VertexID{ents[0]}, Dst: []graph.VertexID{graph.VertexID(1 << 30)}}); err == nil {
		t.Fatal("out-of-range vertex accepted")
	}
	acts := p.Activities()
	if _, err := eng.Segment(core.Query{Src: []graph.VertexID{acts[0]}, Dst: []graph.VertexID{ents[0]}}); err == nil {
		t.Fatal("non-entity query vertex accepted")
	}
}

// TestSrcEqualsDst: the paper allows Vsrc = Vdst (program-issued slicing);
// the zero-length palindrome must anchor the vertex itself.
func TestSrcEqualsDst(t *testing.T) {
	p := gen.Pd(gen.PdConfig{N: 200, Seed: 5})
	ents := p.Entities()
	v := ents[len(ents)-1]
	eng := core.NewEngine(p, core.Options{})
	seg, err := eng.Segment(core.Query{Src: []graph.VertexID{v}, Dst: []graph.VertexID{v}})
	if err != nil {
		t.Fatal(err)
	}
	if !seg.Contains(v) {
		t.Fatal("self-query lost its vertex")
	}
	// All three solvers agree on self-queries.
	for _, kind := range []core.SolverKind{core.SolverAlg, core.SolverCflrB} {
		e2 := core.NewEngine(p, core.Options{Solver: kind})
		s2, err := e2.Segment(core.Query{Src: []graph.VertexID{v}, Dst: []graph.VertexID{v}})
		if err != nil {
			t.Fatal(err)
		}
		if s2.NumVertices() != seg.NumVertices() {
			t.Fatalf("%v: self-query differs: %d vs %d", kind, s2.NumVertices(), seg.NumVertices())
		}
	}
}
