package core

import (
	"errors"

	"repro/internal/cflr"
	"repro/internal/graph"
	"repro/internal/prov"
)

// CflrB baseline: run the generic subcubic CFLR solver on the SimProv
// normal form (paper Fig. 6):
//
//	r0: Qd -> vj                    for each vj in Vdst
//	r1: Lg -> G^-1 Qd | G^-1 Re     r5: Lu -> U^-1 Ra
//	r2: Rg -> Lg G                  r6: Ru -> Lu U
//	r3: La -> A Rg                  r7: Le -> E Ru
//	r4: Ra -> La A                  r8: Re -> Le E
//
// with start symbol Re. The vertex labels A and E act as self-loop
// terminals. Re corresponds to the rewritten grammar's Ee (fully wrapped)
// and Ra to Aa, which is what the shared derivation-marking pass consumes.

// simProvSymbols names the nonterminals of the normal form.
type simProvSymbols struct {
	Qd, Lg, Rg, La, Ra, Lu, Ru, Le, Re cflr.Symbol
}

// buildSimProvNormalForm constructs the Fig. 6 grammar for a destination set.
func buildSimProvNormalForm(p *prov.Graph, dst []graph.VertexID) (*cflr.Grammar, simProvSymbols) {
	g := cflr.NewGrammar()
	var s simProvSymbols
	s.Qd = g.AddNonterminal("Qd")
	s.Lg = g.AddNonterminal("Lg")
	s.Rg = g.AddNonterminal("Rg")
	s.La = g.AddNonterminal("La")
	s.Ra = g.AddNonterminal("Ra")
	s.Lu = g.AddNonterminal("Lu")
	s.Ru = g.AddNonterminal("Ru")
	s.Le = g.AddNonterminal("Le")
	s.Re = g.AddNonterminal("Re")

	gLabel := p.RelLabel(prov.RelGen)
	uLabel := p.RelLabel(prov.RelUsed)
	aLabel := p.KindLabel(prov.KindActivity)
	eLabel := p.KindLabel(prov.KindEntity)

	for _, vj := range dst {
		g.Add(s.Qd, cflr.T(cflr.VertexTokenTerm(vj)))
	}
	g.Add(s.Lg, cflr.T(cflr.EdgeTerm(gLabel, true)), cflr.N(s.Qd))
	g.Add(s.Lg, cflr.T(cflr.EdgeTerm(gLabel, true)), cflr.N(s.Re))
	g.Add(s.Rg, cflr.N(s.Lg), cflr.T(cflr.EdgeTerm(gLabel, false)))
	g.Add(s.La, cflr.T(cflr.VertexLabelTerm(aLabel)), cflr.N(s.Rg))
	g.Add(s.Ra, cflr.N(s.La), cflr.T(cflr.VertexLabelTerm(aLabel)))
	g.Add(s.Lu, cflr.T(cflr.EdgeTerm(uLabel, true)), cflr.N(s.Ra))
	g.Add(s.Ru, cflr.N(s.Lu), cflr.T(cflr.EdgeTerm(uLabel, false)))
	g.Add(s.Le, cflr.T(cflr.VertexLabelTerm(eLabel)), cflr.N(s.Ru))
	g.Add(s.Re, cflr.N(s.Le), cflr.T(cflr.VertexLabelTerm(eLabel)))
	g.SetStart(s.Re)
	return g, s
}

// cflrFacts adapts a cflr.Result to the shared factSource interface.
type cflrFacts struct {
	res  *cflr.Result
	syms simProvSymbols
	dst  map[graph.VertexID]bool
}

func (f *cflrFacts) hasEe(u, v graph.VertexID) bool {
	if u == v && f.dst[u] {
		return true // base fact Qd(vj, vj)
	}
	return f.res.Has(f.syms.Re, u, v)
}

func (f *cflrFacts) hasAa(u, v graph.VertexID) bool {
	return f.res.Has(f.syms.Ra, u, v)
}

func (f *cflrFacts) eePartners(s graph.VertexID, fn func(graph.VertexID) bool) {
	if f.dst[s] {
		if !fn(s) {
			return
		}
	}
	if row := f.res.Row(f.syms.Re, s); row != nil {
		row.Iterate(func(x uint32) bool { return fn(graph.VertexID(x)) })
	}
}

// ErrUnsupportedConstraint is returned when the CflrB baseline is asked to
// evaluate a property-match constrained query (supported only by the
// SimProv-specific solvers).
var ErrUnsupportedConstraint = errors.New("core: CflrB baseline does not support property-match constraints")

// runCflrB evaluates the normal-form grammar with the generic solver.
func (e *Engine) runCflrB(src, dst []graph.VertexID, ad *adjacency) (*cflrFacts, error) {
	if e.opts.MatchActivityProp != "" || e.opts.MatchEntityProp != "" {
		return nil, ErrUnsupportedConstraint
	}
	_ = src // the generic CFLR baseline cannot exploit source information
	gr, syms := buildSimProvNormalForm(e.P, dst)
	solver, err := cflr.NewSolver(e.P.PG(), gr, cflr.Options{
		Sets:     e.opts.Sets,
		MaxFacts: e.opts.MaxFacts,
		VertexOK: func(v graph.VertexID) bool { return ad.vertexOK(v) },
		EdgeOK:   func(eid graph.EdgeID) bool { return ad.edgeOK(eid) },
	})
	if err != nil {
		return nil, err
	}
	res, err := solver.Solve()
	if err != nil {
		return nil, err
	}
	dstSet := make(map[graph.VertexID]bool, len(dst))
	for _, v := range dst {
		if ad.vertexOK(v) {
			dstSet[v] = true
		}
	}
	return &cflrFacts{res: res, syms: syms, dst: dstSet}, nil
}
