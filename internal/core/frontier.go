package core

import (
	"math/bits"
	"sort"

	"repro/internal/bitmap"
	"repro/internal/graph"
	"repro/internal/prov"
)

// Frontier-at-a-time traversal engine. On a frozen snapshot every
// per-relation neighbor set is a contiguous CSR row (at most two segments on
// incrementally extended epochs), so a BFS step is a sweep of row unions
// into a bitset followed by one word-parallel visited-set subtraction —
// vertex-at-a-time stack walks become whole-frontier kernel calls. Excluded
// relations are dropped before the walk starts, so their blocks are never
// read at all (pinned by the graph package's row-read hook in tests).
//
// Each step picks its direction Beamer-style: top-down scatters the
// frontier's rows forward; once the frontier's expected edge volume (from
// the snapshot's freeze-time degree statistics) overtakes the unvisited
// remainder, the step flips bottom-up — scan the complement of the visited
// set word-wise and probe each candidate's reverse row against the frontier
// with early exit.
//
// Every routine here is bit-identical to its scalar counterpart (the walks
// compute sets, not orders, and rule attribution is uniform per phase);
// Options.ScalarTraversal forces the scalar path and the difftest harness
// diffs the two over the randomized script corpus.

// vectorizable reports whether traversals under this boundary may take the
// frontier path: the snapshot must be frozen (CSR rows to union) and the
// boundary plain — programmatic per-vertex/per-edge predicates would have
// to run per element anyway, forfeiting the word-parallel win.
func (e *Engine) vectorizable(ad *adjacency) bool {
	return !e.opts.ScalarTraversal && ad.plain && e.P.Frozen()
}

// closureRels returns the ancestry relations a closure follows (shared by
// the scalar and frontier walks).
func (e *Engine) closureRels() []prov.Rel {
	rels := []prov.Rel{prov.RelUsed, prov.RelGen}
	if !e.opts.VC1ExcludeDerivations {
		rels = append(rels, prov.RelDeriv)
	}
	return rels
}

// orViewRow unions v's row of one resolved block view into dst, zero-copy
// across both epoch segments.
func orViewRow(dst *bitmap.Bitset, vw graph.RelView, v graph.VertexID) {
	b, x := vw.Row(v)
	bitmap.OrInto(dst, b)
	bitmap.OrInto(dst, x)
}

// closureViews resolves the closure's relation blocks once — excluded
// relations and labels with no edges in the traversal direction are dropped
// here, so their blocks are never read during the walk — and sums the
// freeze-time average degrees for the direction heuristic.
func (e *Engine) closureViews(ad *adjacency, out bool) (views []graph.RelView, avg float64) {
	g := e.P.PG()
	ds := g.Degrees()
	for _, r := range e.closureRels() {
		if !ad.relOK[r] {
			continue
		}
		l := e.P.RelLabel(r)
		if !g.LabelHasEdges(l, out) {
			continue
		}
		vw, _ := g.RelBlockView(l, out)
		views = append(views, vw)
		avg += ds.AvgDegree(l)
	}
	return views, avg
}

// frontierClosure is ancestryClosure, frontier-at-a-time, with three step
// regimes chosen per level from the frontier's cardinality and the
// snapshot's freeze-time degree statistics:
//
//   - sparse (|frontier| ≤ n/64, the array-container regime): walk the
//     frontier as an id list and test-and-set each neighbor — per-edge work
//     with resolved block views, no full-bitset passes at all. Deep narrow
//     DAG levels (the Pd lifecycle shape) stay in this regime throughout,
//     where dense stepping would pay O(n/64) words per level times
//     thousands of levels.
//   - dense top-down: union whole neighbor rows into the next-frontier
//     bitset and subtract the visited set word-parallel.
//   - bottom-up (Beamer flip, |frontier|·avgDeg > |unvisited|): scan the
//     complement of the visited set word-wise and probe each candidate's
//     reverse row against the frontier with early exit.
func (e *Engine) frontierClosure(seeds []graph.VertexID, ad *adjacency, forward bool) *bitmap.Bitset {
	n := e.P.NumVertices()
	visited := bitmap.NewBitset(n)
	var curIDs []uint32
	for _, v := range seeds {
		if visited.Add(uint32(v)) {
			curIDs = append(curIDs, uint32(v))
		}
	}
	views, avg := e.closureViews(ad, forward)
	if len(views) == 0 {
		return visited
	}
	var revViews []graph.RelView // resolved on the first bottom-up step
	var curBits, nextBits *bitmap.Bitset
	var nextIDs []uint32
	sparse := true
	sparseMax := n/64 + 1
	curCard := len(curIDs)
	visitedCount := curCard
	for curCard > 0 && visitedCount < n {
		switch {
		case float64(curCard)*avg > float64(n-visitedCount):
			if revViews == nil {
				revViews, _ = e.closureViews(ad, !forward)
			}
			curBits, nextBits = ensureBits(curBits, nextBits, n, sparse, curIDs)
			nextBits.Clear()
			stepBottomUp(revViews, curBits, visited, nextBits, n)
			curCard = nextBits.Cardinality()
			visited.UnionWith(nextBits)
			visitedCount += curCard
			curBits, nextBits = nextBits, curBits
			sparse = false
		case sparse && curCard <= sparseMax:
			nextIDs = nextIDs[:0]
			for _, x := range curIDs {
				v := graph.VertexID(x)
				for _, vw := range views {
					b, xt := vw.Row(v)
					for _, nb := range b {
						if visited.Add(uint32(nb)) {
							nextIDs = append(nextIDs, uint32(nb))
						}
					}
					for _, nb := range xt {
						if visited.Add(uint32(nb)) {
							nextIDs = append(nextIDs, uint32(nb))
						}
					}
				}
			}
			curIDs, nextIDs = nextIDs, curIDs
			curCard = len(curIDs)
			visitedCount += curCard
		default:
			curBits, nextBits = ensureBits(curBits, nextBits, n, sparse, curIDs)
			nextBits.Clear()
			for _, vw := range views {
				curBits.Iterate(func(x uint32) bool {
					orViewRow(nextBits, vw, graph.VertexID(x))
					return true
				})
			}
			nextBits.AndNotWith(visited)
			curCard = nextBits.Cardinality()
			visited.UnionWith(nextBits)
			visitedCount += curCard
			curBits, nextBits = nextBits, curBits
			sparse = false
		}
		// A dense frontier that thinned out drops back to the id-list
		// regime.
		if !sparse && curCard > 0 && curCard <= sparseMax {
			curIDs = curIDs[:0]
			curBits.Iterate(func(x uint32) bool { curIDs = append(curIDs, x); return true })
			sparse = true
		}
	}
	return visited
}

// ensureBits lazily allocates the dense-step scratch bitsets and, when the
// current frontier lives in the id list, materializes it into cur.
func ensureBits(cur, next *bitmap.Bitset, n int, sparse bool, ids []uint32) (*bitmap.Bitset, *bitmap.Bitset) {
	if cur == nil {
		cur = bitmap.NewBitset(n)
		next = bitmap.NewBitset(n)
	}
	if sparse {
		cur.Clear()
		for _, x := range ids {
			cur.Add(x)
		}
	}
	return cur, next
}

// stepBottomUp walks the complement of the visited set word-wise and probes
// each unvisited vertex's reverse rows against the frontier, stopping at
// the first hit per vertex.
func stepBottomUp(revViews []graph.RelView, cur, visited, next *bitmap.Bitset, n int) {
	for wi, wc := 0, visited.WordCount(); wi < wc; wi++ {
		w := ^visited.Word(wi)
		if w == 0 {
			continue
		}
		base := uint32(wi) * 64
		for w != 0 {
			t := bits.TrailingZeros64(w)
			w &= w - 1
			v := base + uint32(t)
			if int(v) >= n {
				return // padding bits past the vertex count
			}
			for _, vw := range revViews {
				rb, rx := vw.Row(graph.VertexID(v))
				if bitmap.AnyInto(cur, rb) || bitmap.AnyInto(cur, rx) {
					next.Add(v)
					break
				}
			}
		}
	}
}

// expandFrontier is expand, frontier-at-a-time: each of the k steps is two
// row-union sweeps (entities → G-out → activities, activities → U-out →
// next entities) with word-parallel seen-set subtraction. The visited sets
// match the scalar walk exactly: kinds are disjoint and every scalar
// discovery is tested against the same pre-sweep seen state.
func (e *Engine) expandFrontier(ad *adjacency, ex Expansion, add func(graph.VertexID)) {
	g := e.P.PG()
	n := e.P.NumVertices()
	lGen, lUsed := e.P.RelLabel(prov.RelGen), e.P.RelLabel(prov.RelUsed)
	genOK := ad.relOK[prov.RelGen] && g.LabelHasEdges(lGen, true)
	usedOK := ad.relOK[prov.RelUsed] && g.LabelHasEdges(lUsed, true)
	var genView, usedView graph.RelView
	if genOK {
		genView, _ = g.RelBlockView(lGen, true)
	}
	if usedOK {
		usedView, _ = g.RelBlockView(lUsed, true)
	}
	seen := bitmap.NewBitset(n)
	cur := bitmap.NewBitset(n)
	for _, en := range ex.Within {
		cur.Add(uint32(en))
	}
	acts := bitmap.NewBitset(n)
	next := bitmap.NewBitset(n)
	for step := 0; step < ex.K && cur.Cardinality() > 0; step++ {
		acts.Clear()
		if genOK {
			cur.Iterate(func(x uint32) bool {
				orViewRow(acts, genView, graph.VertexID(x))
				return true
			})
		}
		acts.AndNotWith(seen)
		seen.UnionWith(acts)
		next.Clear()
		acts.Iterate(func(x uint32) bool {
			add(graph.VertexID(x))
			if usedOK {
				orViewRow(next, usedView, graph.VertexID(x))
			}
			return true
		})
		next.AndNotWith(seen)
		seen.UnionWith(next)
		next.Iterate(func(x uint32) bool { add(graph.VertexID(x)); return true })
		cur, next = next, cur
	}
}

// frontierSiblings is VC3 over the CSR: one union of the G-in rows of every
// induced activity, then a single attribution sweep.
func (e *Engine) frontierSiblings(coreSet *bitmap.Bitset, ad *adjacency, addV func(graph.VertexID, Rule)) {
	if !ad.relOK[prov.RelGen] {
		return
	}
	g := e.P.PG()
	l := e.P.RelLabel(prov.RelGen)
	if !g.LabelHasEdges(l, false) {
		return
	}
	actLabel := e.P.KindLabel(prov.KindActivity)
	genIn, _ := g.RelBlockView(l, false)
	sibs := bitmap.NewBitset(e.P.NumVertices())
	coreSet.Iterate(func(x uint32) bool {
		if g.VertexLabel(graph.VertexID(x)) == actLabel {
			orViewRow(sibs, genIn, graph.VertexID(x))
		}
		return true
	})
	sibs.Iterate(func(x uint32) bool { addV(graph.VertexID(x), RuleC3); return true })
}

// frontierAgents is VC4: union the S/A out-rows of every segment vertex,
// iterated to fixpoint. Under the PROV schema agents carry no S/A
// out-edges, so the second round is empty — the loop mirrors the scalar
// walk's live iteration, which likewise visits agents appended ahead of its
// cursor. vset is the segment's (mutable, growing via addV) vertex set.
func (e *Engine) frontierAgents(vset *bitmap.Bitset, ad *adjacency, addV func(graph.VertexID, Rule)) {
	g := e.P.PG()
	var views []graph.RelView
	for _, r := range []prov.Rel{prov.RelAssoc, prov.RelAttr} {
		if ad.relOK[r] && g.LabelHasEdges(e.P.RelLabel(r), true) {
			vw, _ := g.RelBlockView(e.P.RelLabel(r), true)
			views = append(views, vw)
		}
	}
	if len(views) == 0 {
		return
	}
	cur := vset.Clone()
	agents := bitmap.NewBitset(e.P.NumVertices())
	for cur.Cardinality() > 0 {
		agents.Clear()
		for _, vw := range views {
			cur.Iterate(func(x uint32) bool {
				orViewRow(agents, vw, graph.VertexID(x))
				return true
			})
		}
		agents.AndNotWith(vset)
		if agents.Cardinality() == 0 {
			return
		}
		agents.Iterate(func(x uint32) bool { addV(graph.VertexID(x), RuleC4); return true })
		cur, agents = agents, cur
	}
}

// inducedEdgesVec enumerates ES per relation label: only non-excluded
// blocks are read (the scalar path walks every vertex's mixed edge list and
// filters per edge), and within a block each segment vertex contributes one
// contiguous row scan. The ids are sorted at the end, like the scalar path,
// so the result is identical.
func (e *Engine) inducedEdgesVec(vs *bitmap.Bitset, ad *adjacency) []graph.EdgeID {
	g := e.P.PG()
	var out []graph.EdgeID
	for r := prov.Rel(0); r <= prov.RelDeriv; r++ {
		if !ad.relOK[r] {
			continue
		}
		l := e.P.RelLabel(r)
		if !g.LabelHasEdges(l, true) {
			continue
		}
		vs.Iterate(func(x uint32) bool {
			nbrs, eids, _ := g.FrozenNeighbors(graph.VertexID(x), l, true)
			for i, d := range nbrs {
				if vs.Contains(uint32(d)) {
					out = append(out, eids[i])
				}
			}
			return true
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
