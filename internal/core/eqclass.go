package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
	"repro/internal/prov"
)

// Vertex equivalence for PgSum (paper Sec. IV.A.1): two segment vertices
// are equivalent under (K, Rk) when (a) their PROV kinds match, (b) their
// K-projected property values match, and (c) their k-hop neighborhoods
// within their segments are isomorphic w.r.t. kind and K-projected
// properties.
//
// Condition (c) is computed by k rounds of color refinement (a vertex's
// round-i color folds in the multiset of (relationship, direction,
// neighbor color) over its segment edges), optionally sharpened by an
// exact rooted-isomorphism check within refinement groups.

// Aggregation is the paper's K = (K_E, K_A, K_U): the property types kept
// per vertex kind; all other properties are ignored when comparing
// vertices.
type Aggregation struct {
	Entity   []string
	Activity []string
	Agent    []string
}

// keysFor returns the kept property keys for a vertex kind.
func (k Aggregation) keysFor(kind prov.Kind) []string {
	switch kind {
	case prov.KindEntity:
		return k.Entity
	case prov.KindActivity:
		return k.Activity
	case prov.KindAgent:
		return k.Agent
	}
	return nil
}

// SumOptions configure PgSum.
type SumOptions struct {
	// K is the property aggregation.
	K Aggregation
	// TypeRadius is Rk's k: the neighborhood radius that defines a
	// vertex's provenance type (0 = kind+properties only).
	TypeRadius int
	// ExactIso verifies refinement groups with an exact rooted-isomorphism
	// check on the k-hop neighborhoods (refinement alone can conflate
	// rare non-isomorphic neighborhoods).
	ExactIso bool
	// MaxIsoNodes caps the neighborhood size for the exact check
	// (default 64; larger neighborhoods fall back to refinement colors).
	MaxIsoNodes int
	// MaxRounds bounds the merge loop (0 = until fixpoint).
	MaxRounds int
}

// occRef identifies one vertex occurrence: segment index + vertex id.
type occRef struct {
	seg int
	v   graph.VertexID
}

// segIndex provides local adjacency for one segment: only segment edges.
type segIndex struct {
	seg   *Segment
	out   map[graph.VertexID][]graph.EdgeID
	in    map[graph.VertexID][]graph.EdgeID
	verts []graph.VertexID
}

func indexSegment(s *Segment) *segIndex {
	si := &segIndex{
		seg:   s,
		out:   make(map[graph.VertexID][]graph.EdgeID),
		in:    make(map[graph.VertexID][]graph.EdgeID),
		verts: s.Vertices,
	}
	g := s.P.PG()
	for _, e := range s.Edges {
		si.out[g.Src(e)] = append(si.out[g.Src(e)], e)
		si.in[g.Dst(e)] = append(si.in[g.Dst(e)], e)
	}
	return si
}

// baseColor returns the kind + aggregated-property signature of a vertex.
func baseColor(p *prov.Graph, v graph.VertexID, k Aggregation) string {
	kind := p.KindOf(v)
	var b strings.Builder
	b.WriteString(kind.String())
	for _, key := range k.keysFor(kind) {
		b.WriteByte('|')
		b.WriteString(key)
		b.WriteByte('=')
		b.WriteString(p.PG().VertexProp(v, key).AsString())
	}
	return b.String()
}

// classifier assigns provenance-type class ids to segment vertex
// occurrences.
type classifier struct {
	opts SumOptions
	segs []*segIndex

	// color per occurrence, refined in rounds.
	colors []map[graph.VertexID]int

	// interning of color signatures.
	colorIDs map[string]int
	// display name of each class (base color of any member + type index).
	classBase []string
}

func (c *classifier) intern(sig string) int {
	if id, ok := c.colorIDs[sig]; ok {
		return id
	}
	id := len(c.colorIDs)
	c.colorIDs[sig] = id
	return id
}

// classify computes the final class id of every occurrence across all
// segments. The same class id means "mergeable candidates" per the
// equivalence relation.
func classify(segs []*Segment, opts SumOptions) *classifier {
	c := &classifier{
		opts:     opts,
		segs:     make([]*segIndex, len(segs)),
		colors:   make([]map[graph.VertexID]int, len(segs)),
		colorIDs: make(map[string]int),
	}
	for i, s := range segs {
		c.segs[i] = indexSegment(s)
		c.colors[i] = make(map[graph.VertexID]int, len(s.Vertices))
	}
	var baseOf []string
	// Round 0: kind + K-projected properties.
	for i, si := range c.segs {
		for _, v := range si.verts {
			sig := baseColor(si.seg.P, v, opts.K)
			id := c.intern(sig)
			for id >= len(baseOf) {
				baseOf = append(baseOf, "")
			}
			baseOf[id] = sig
			c.colors[i][v] = id
		}
	}
	// Refinement rounds 1..k.
	for round := 0; round < opts.TypeRadius; round++ {
		next := make([]map[graph.VertexID]int, len(c.segs))
		newBase := make([]string, 0, len(baseOf))
		newIDs := make(map[string]int)
		internNext := func(sig, base string) int {
			if id, ok := newIDs[sig]; ok {
				return id
			}
			id := len(newIDs)
			newIDs[sig] = id
			newBase = append(newBase, base)
			return id
		}
		for i, si := range c.segs {
			next[i] = make(map[graph.VertexID]int, len(si.verts))
			g := si.seg.P.PG()
			for _, v := range si.verts {
				parts := make([]string, 0, len(si.out[v])+len(si.in[v]))
				for _, e := range si.out[v] {
					parts = append(parts, fmt.Sprintf(">%d:%d", si.seg.P.RelOf(e), c.colors[i][g.Dst(e)]))
				}
				for _, e := range si.in[v] {
					parts = append(parts, fmt.Sprintf("<%d:%d", si.seg.P.RelOf(e), c.colors[i][g.Src(e)]))
				}
				sort.Strings(parts)
				cur := c.colors[i][v]
				sig := fmt.Sprintf("%d;%s", cur, strings.Join(parts, ","))
				next[i][v] = internNext(sig, baseOf[cur])
			}
		}
		c.colors = next
		baseOf = newBase
		c.colorIDs = newIDs
	}
	c.classBase = baseOf
	if opts.ExactIso && opts.TypeRadius > 0 {
		c.splitByExactIso()
	}
	return c
}

// classOf returns the final class id of an occurrence.
func (c *classifier) classOf(o occRef) int { return c.colors[o.seg][o.v] }

// className returns a display name for a class: the base color plus a
// provenance-type discriminator index (Fig. 2(e)'s "(t1)" / "(t2)").
func (c *classifier) className(class int) string {
	if class < len(c.classBase) && c.classBase[class] != "" {
		return c.classBase[class]
	}
	return fmt.Sprintf("class%d", class)
}

// splitByExactIso refines color groups with exact rooted isomorphism of
// k-hop neighborhoods: occurrences that share a refinement color but have
// non-isomorphic neighborhoods receive fresh class ids.
func (c *classifier) splitByExactIso() {
	groups := make(map[int][]occRef)
	for i, si := range c.segs {
		for _, v := range si.verts {
			cl := c.colors[i][v]
			groups[cl] = append(groups[cl], occRef{seg: i, v: v})
		}
	}
	maxNodes := c.opts.MaxIsoNodes
	if maxNodes <= 0 {
		maxNodes = 64
	}
	nextID := len(c.colorIDs)
	classes := make([]int, 0, len(groups))
	for cl := range groups {
		classes = append(classes, cl)
	}
	sort.Ints(classes)
	for _, cl := range classes {
		members := groups[cl]
		if len(members) < 2 {
			continue
		}
		// Representative of each discovered sub-class, with its
		// neighborhood.
		type subclass struct {
			hood *neighborhood
			id   int
		}
		var subs []subclass
		for _, m := range members {
			h := c.extractNeighborhood(m, maxNodes)
			if h == nil {
				// Over-budget neighborhood: keep the refinement color.
				continue
			}
			placed := false
			for _, sc := range subs {
				if isomorphic(h, sc.hood) {
					c.colors[m.seg][m.v] = sc.id
					placed = true
					break
				}
			}
			if !placed {
				id := cl
				if len(subs) > 0 {
					id = nextID
					nextID++
					for id >= len(c.classBase) {
						c.classBase = append(c.classBase, "")
					}
					c.classBase[id] = c.classBase[cl]
				}
				subs = append(subs, subclass{hood: h, id: id})
				c.colors[m.seg][m.v] = id
			}
		}
	}
}
