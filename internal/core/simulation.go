package core

import (
	"repro/internal/bitmap"
)

// Simulation preorders on the working summary graph (paper Sec. IV.B):
// u <=sout v ("v out-simulates u") iff labels match and every labeled child
// of u is out-simulated by some equally-labeled-edge child of v; <=sin is
// the same over parents. Simulation approximates trace dominance: u <=sout
// v implies every out-path label of u is an out-path label of v, which is
// what Lemma 5's merge conditions need.

// sumGraph is the mutable working graph PgSum merges over: nodes carry a
// class label; arcs carry the PROV relationship and are deduplicated.
type sumGraph struct {
	label []int
	out   [][]halfArc
	in    [][]halfArc
}

func (g *sumGraph) numNodes() int { return len(g.label) }

// simulation computes sim[u] = the set of v with u <= v, over children
// (forward=true, i.e. <=sout) or parents (forward=false, i.e. <=sin),
// using a fixpoint refinement with a change worklist.
func simulation(g *sumGraph, forward bool) []*bitmap.Bitset {
	n := g.numNodes()
	succ, pred := g.out, g.in
	if !forward {
		succ, pred = g.in, g.out
	}

	// Group nodes by label for initialization.
	byLabel := make(map[int][]int)
	for v := 0; v < n; v++ {
		byLabel[g.label[v]] = append(byLabel[g.label[v]], v)
	}
	sim := make([]*bitmap.Bitset, n)
	for v := 0; v < n; v++ {
		s := bitmap.NewBitset(n)
		for _, u := range byLabel[g.label[v]] {
			s.Add(uint32(u))
		}
		sim[v] = s
	}

	// Bucket each node's children per relation as bitsets so check's inner
	// existential ("does some equally-labeled child of v land in sim(...)?")
	// is one word-parallel Intersects instead of a nested arc scan. The
	// predicate is unchanged, so the fixpoint — which is unique — is too.
	maxRel := -1
	for v := 0; v < n; v++ {
		for _, arc := range succ[v] {
			if int(arc.rel) > maxRel {
				maxRel = int(arc.rel)
			}
		}
	}
	childBits := make([][]*bitmap.Bitset, maxRel+1)
	for v := 0; v < n; v++ {
		for _, arc := range succ[v] {
			row := childBits[arc.rel]
			if row == nil {
				row = make([]*bitmap.Bitset, n)
				childBits[arc.rel] = row
			}
			if row[v] == nil {
				row[v] = bitmap.NewBitset(n)
			}
			row[v].Add(uint32(arc.to))
		}
	}

	// check reports whether v still simulates u.
	check := func(u, v int) bool {
		for _, arc := range succ[u] {
			cb := childBits[arc.rel][v]
			if cb == nil || !sim[arc.to].Intersects(cb) {
				return false
			}
		}
		return true
	}

	// Fixpoint: when sim(c) shrinks, only pairs (u, v) with u a
	// predecessor of c need rechecking.
	inQueue := make([]bool, n)
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		queue = append(queue, v)
		inQueue[v] = true
	}
	var removals []uint32
	for len(queue) > 0 {
		c := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		inQueue[c] = false

		// Recheck every candidate pair (u, v) where u is a predecessor of
		// c (u's successor c constrains who can simulate u).
		for _, parc := range pred[c] {
			u := parc.to
			removals = removals[:0]
			sim[u].Iterate(func(x uint32) bool {
				v := int(x)
				if v != u && !check(u, v) {
					removals = append(removals, x)
				}
				return true
			})
			if len(removals) == 0 {
				continue
			}
			for _, x := range removals {
				sim[u].Remove(x)
			}
			if !inQueue[u] {
				queue = append(queue, u)
				inQueue[u] = true
			}
		}
	}
	return sim
}

// simEquivClasses partitions nodes into mutual-simulation equivalence
// classes; singleton classes are omitted.
func simEquivClasses(sim []*bitmap.Bitset) [][]int {
	n := len(sim)
	assigned := make([]bool, n)
	var classes [][]int
	for u := 0; u < n; u++ {
		if assigned[u] {
			continue
		}
		assigned[u] = true
		members := []int{u}
		sim[u].Iterate(func(x uint32) bool {
			v := int(x)
			if v > u && !assigned[v] && sim[v].Contains(uint32(u)) {
				assigned[v] = true
				members = append(members, v)
			}
			return true
		})
		if len(members) > 1 {
			classes = append(classes, members)
		}
	}
	return classes
}
