package core

import (
	"math/rand"
	"strings"
	"testing"
)

// buildSum creates a sumGraph from an edge list with labels per node.
func buildSum(labels []int, edges [][3]int) *sumGraph {
	g := &sumGraph{
		label: labels,
		out:   make([][]halfArc, len(labels)),
		in:    make([][]halfArc, len(labels)),
	}
	for _, e := range edges {
		g.out[e[0]] = append(g.out[e[0]], halfArc{to: e[1], rel: uint8(e[2])})
		g.in[e[1]] = append(g.in[e[1]], halfArc{to: e[0], rel: uint8(e[2])})
	}
	return g
}

// outTraces enumerates all out-path label words from v (bounded).
func outTraces(g *sumGraph, v, maxLen int) map[string]bool {
	words := map[string]bool{}
	var dfs func(v int, parts []string, depth int)
	dfs = func(v int, parts []string, depth int) {
		words[strings.Join(parts, " ")] = true
		if depth == maxLen {
			return
		}
		for _, arc := range g.out[v] {
			dfs(arc.to, append(parts, itoa2(int(arc.rel)), itoa2(g.label[arc.to])), depth+1)
		}
	}
	dfs(v, []string{itoa2(g.label[v])}, 0)
	return words
}

func inTraces(g *sumGraph, v, maxLen int) map[string]bool {
	words := map[string]bool{}
	var dfs func(v int, parts []string, depth int)
	dfs = func(v int, parts []string, depth int) {
		words[strings.Join(parts, " ")] = true
		if depth == maxLen {
			return
		}
		for _, arc := range g.in[v] {
			dfs(arc.to, append(parts, itoa2(int(arc.rel)), itoa2(g.label[arc.to])), depth+1)
		}
	}
	dfs(v, []string{itoa2(g.label[v])}, 0)
	return words
}

func itoa2(x int) string {
	const digits = "0123456789"
	if x < 10 {
		return digits[x : x+1]
	}
	return digits[x/10:x/10+1] + digits[x%10:x%10+1]
}

func subset(a, b map[string]bool) bool {
	for w := range a {
		if !b[w] {
			return false
		}
	}
	return true
}

// TestSimulationImpliesTraceInclusion: u <=sout v must imply every bounded
// out-trace of u is an out-trace of v (and dually for <=sin), on random
// DAGs.
func TestSimulationImpliesTraceInclusion(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(14)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = rng.Intn(3)
		}
		var edges [][3]int
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.25 {
					edges = append(edges, [3]int{i, j, rng.Intn(2)})
				}
			}
		}
		g := buildSum(labels, edges)
		simOut := simulation(g, true)
		simIn := simulation(g, false)
		for u := 0; u < n; u++ {
			ou := outTraces(g, u, 6)
			iu := inTraces(g, u, 6)
			simOut[u].Iterate(func(x uint32) bool {
				v := int(x)
				if !subset(ou, outTraces(g, v, 6)) {
					t.Fatalf("trial %d: %d <=sout %d but out-traces not included", trial, u, v)
				}
				return true
			})
			simIn[u].Iterate(func(x uint32) bool {
				v := int(x)
				if !subset(iu, inTraces(g, v, 6)) {
					t.Fatalf("trial %d: %d <=sin %d but in-traces not included", trial, u, v)
				}
				return true
			})
		}
	}
}

// TestSimulationReflexiveAndLabelRespecting.
func TestSimulationBasics(t *testing.T) {
	g := buildSum([]int{0, 0, 1}, [][3]int{{0, 2, 0}, {1, 2, 0}})
	sim := simulation(g, true)
	for v := 0; v < 3; v++ {
		if !sim[v].Contains(uint32(v)) {
			t.Fatalf("sim not reflexive at %d", v)
		}
	}
	if sim[0].Contains(2) || sim[2].Contains(0) {
		t.Fatal("simulation crosses labels")
	}
	// 0 and 1 are structurally identical: mutual simulation.
	if !sim[0].Contains(1) || !sim[1].Contains(0) {
		t.Fatal("identical nodes must simulate each other")
	}
}

// TestSimulationChain: a longer out-chain dominates a shorter same-label
// chain but not vice versa.
func TestSimulationChain(t *testing.T) {
	// 0 -> 1 ; 2 -> 3 -> 4, labels all 0.
	g := buildSum([]int{0, 0, 0, 0, 0}, [][3]int{{0, 1, 0}, {2, 3, 0}, {3, 4, 0}})
	sim := simulation(g, true)
	if !sim[0].Contains(2) {
		t.Fatal("short chain should be out-dominated by long chain")
	}
	if sim[2].Contains(0) {
		t.Fatal("long chain cannot be out-dominated by short chain")
	}
}

// TestSimEquivClassesPartition.
func TestSimEquivClasses(t *testing.T) {
	// Two identical diamonds.
	labels := []int{0, 1, 1, 2, 0, 1, 1, 2}
	edges := [][3]int{
		{0, 1, 0}, {0, 2, 1}, {1, 3, 0}, {2, 3, 0},
		{4, 5, 0}, {4, 6, 1}, {5, 7, 0}, {6, 7, 0},
	}
	g := buildSum(labels, edges)
	classes := simEquivClasses(simulation(g, true))
	// 0~4, 3~7 trivially (3,7 are sinks with same label; 1,5 same; 2,6
	// same; but 1 vs 2 have different edge labels into them — out-sim only
	// looks down, so 1,2,5,6 all out-simulate each other (same label, both
	// lead to a label-2 sink via rel 0).
	foundRoots := false
	for _, c := range classes {
		has0, has4 := false, false
		for _, m := range c {
			if m == 0 {
				has0 = true
			}
			if m == 4 {
				has4 = true
			}
		}
		if has0 && has4 {
			foundRoots = true
		}
	}
	if !foundRoots {
		t.Fatal("identical diamond roots not out-equivalent")
	}
	// Classes are disjoint.
	seen := map[int]bool{}
	for _, c := range classes {
		for _, m := range c {
			if seen[m] {
				t.Fatal("overlapping classes")
			}
			seen[m] = true
		}
	}
}
