package core_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/prov"
)

// diffSegs fails the test unless the two segments are identical in every
// externally observable dimension.
func diffSegs(t *testing.T, tag string, a, b *core.Segment) {
	t.Helper()
	if fmt.Sprint(a.Vertices) != fmt.Sprint(b.Vertices) {
		t.Fatalf("%s: vertex sets differ: %d vs %d vertices", tag, len(a.Vertices), len(b.Vertices))
	}
	if fmt.Sprint(a.Edges) != fmt.Sprint(b.Edges) {
		t.Fatalf("%s: edge sets differ: %d vs %d edges", tag, len(a.Edges), len(b.Edges))
	}
	for _, v := range a.Vertices {
		if a.ByRule[v] != b.ByRule[v] {
			t.Fatalf("%s: rule attribution differs at %d: %v vs %v", tag, v, a.ByRule[v], b.ByRule[v])
		}
	}
	as, bs := a.Support(), b.Support()
	if fmt.Sprint(as.ToSlice()) != fmt.Sprint(bs.ToSlice()) {
		t.Fatalf("%s: support sets differ", tag)
	}
}

// TestFrontierMatchesScalar runs PgSeg with the vectorized frontier engine
// and with ScalarTraversal forced, over a spread of plain boundaries, and
// requires bit-identical segments. (The randomized corpus lives in
// graph/difftest; this is the in-package smoke with targeted boundaries.)
func TestFrontierMatchesScalar(t *testing.T) {
	for _, n := range []int{60, 400, 1500} {
		p := gen.Pd(gen.PdConfig{N: n, Seed: int64(n)}).Freeze()
		src, dst := gen.DefaultQuery(p)
		boundaries := []core.Boundary{
			{},
			{ExcludeRels: []prov.Rel{prov.RelDeriv}},
			{ExcludeRels: []prov.Rel{prov.RelAttr, prov.RelAssoc}},
			{ExcludeRels: []prov.Rel{prov.RelDeriv, prov.RelUsed}},
			{Expansions: []core.Expansion{{Within: dst, K: 3}}},
			{ExcludeRels: []prov.Rel{prov.RelDeriv}, Expansions: []core.Expansion{{Within: src, K: 2}, {Within: dst, K: 5}}},
		}
		for bi, b := range boundaries {
			q := core.Query{Src: src, Dst: dst, Boundary: b}
			vec, err := core.NewEngine(p, core.Options{}).Segment(q)
			if err != nil {
				t.Fatal(err)
			}
			sca, err := core.NewEngine(p, core.Options{ScalarTraversal: true}).Segment(q)
			if err != nil {
				t.Fatal(err)
			}
			diffSegs(t, fmt.Sprintf("n=%d boundary=%d", n, bi), vec, sca)
		}
	}
}

// TestFrontierClosureMatchesScalar pins the closure building block in both
// directions, with and without derivation edges.
func TestFrontierClosureMatchesScalar(t *testing.T) {
	p := gen.Pd(gen.PdConfig{N: 800, Seed: 2}).Freeze()
	src, dst := gen.DefaultQuery(p)
	for _, excl := range []bool{false, true} {
		vecEng := core.NewEngine(p, core.Options{VC1ExcludeDerivations: excl})
		scaEng := core.NewEngine(p, core.Options{VC1ExcludeDerivations: excl, ScalarTraversal: true})
		for _, fwd := range []bool{true, false} {
			seeds := dst
			if !fwd {
				seeds = src
			}
			b := core.Boundary{ExcludeRels: []prov.Rel{prov.RelAttr}}
			v := vecEng.AncestryClosure(seeds, b, fwd)
			s := scaEng.AncestryClosure(seeds, b, fwd)
			if fmt.Sprint(v.ToSlice()) != fmt.Sprint(s.ToSlice()) {
				t.Fatalf("closure(fwd=%v exclD=%v): %d vs %d vertices", fwd, excl, v.Cardinality(), s.Cardinality())
			}
		}
	}
}

// TestAdjustExpandMatchesScalar covers the adjust surface, whose expand and
// induced-edge sweeps also dispatch to the frontier engine.
func TestAdjustExpandMatchesScalar(t *testing.T) {
	p := gen.Pd(gen.PdConfig{N: 500, Seed: 9}).Freeze()
	src, dst := gen.DefaultQuery(p)
	q := core.Query{Src: src, Dst: dst, Boundary: core.Boundary{ExcludeRels: []prov.Rel{prov.RelDeriv}}}
	vecEng := core.NewEngine(p, core.Options{})
	scaEng := core.NewEngine(p, core.Options{ScalarTraversal: true})
	vseg, err := vecEng.Segment(q)
	if err != nil {
		t.Fatal(err)
	}
	sseg, err := scaEng.Segment(q)
	if err != nil {
		t.Fatal(err)
	}
	ex := core.Expansion{Within: src, K: 4}
	vout, err := vecEng.AdjustExpand(vseg, ex)
	if err != nil {
		t.Fatal(err)
	}
	sout, err := scaEng.AdjustExpand(sseg, ex)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(vout.Vertices) != fmt.Sprint(sout.Vertices) || fmt.Sprint(vout.Edges) != fmt.Sprint(sout.Edges) {
		t.Fatal("AdjustExpand diverges between frontier and scalar paths")
	}
}

// TestExcludedBlocksNeverRead pins the block-skip contract: segmenting with
// excluded relations must not read a single CSR row of those labels.
func TestExcludedBlocksNeverRead(t *testing.T) {
	p := gen.Pd(gen.PdConfig{N: 400, Seed: 4}).Freeze()
	src, dst := gen.DefaultQuery(p)
	excluded := []prov.Rel{prov.RelDeriv, prov.RelAttr}
	bad := map[graph.Label]bool{}
	for _, r := range excluded {
		bad[p.RelLabel(r)] = true
	}
	reads := map[graph.Label]int{}
	restore := graph.SetRowReadHook(func(l graph.Label, out bool) { reads[l]++ })
	defer restore()
	eng := core.NewEngine(p, core.Options{})
	seg, err := eng.Segment(core.Query{
		Src: src, Dst: dst,
		Boundary: core.Boundary{
			ExcludeRels: excluded,
			Expansions:  []core.Expansion{{Within: dst, K: 3}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if seg.NumVertices() == 0 {
		t.Fatal("empty segment: the traversal never ran")
	}
	total := 0
	for l, c := range reads {
		if bad[l] {
			t.Errorf("excluded label %q: %d CSR row reads", p.PG().Dict().Name(l), c)
		}
		total += c
	}
	if total == 0 {
		t.Fatal("hook observed no reads at all: instrumentation is dead")
	}
}
