package core

import (
	"hash/maphash"

	"repro/internal/bitmap"
	"repro/internal/graph"
)

// SimProvTst (paper Sec. III.B.2, "Transitive property"): evaluating each
// destination vertex vj separately makes Ee and Aa transitive, so each
// iteration level is a single equivalence class:
//
//	[e]_0     = {vj}
//	[a]_{m+1} = generators of [e]_m      (one step down in order-of-being)
//	[e]_{m+1} = inputs of [a]_{m+1}
//
// All pairs within [e]_m are Ee facts; a level whose class contains a
// source entity is an answer level, and VC2 receives every vertex on an
// ancestry path of exactly that length from vj (computed by a backward
// prune over the levels). Runtime is O(|G| + |U|) per destination.
//
// When a property-match constraint is active, path labels are no longer
// determined by length alone, so each level fans out into one class per
// property-value signature; classes form chains via parent pointers and the
// default case degenerates to a single chain.

type tstClass struct {
	sig    uint64
	level  int
	ents   []graph.VertexID // [e]_level (deduplicated)
	acts   []graph.VertexID // [a]_level that produced ents (nil at level 0)
	parent *tstClass
}

var tstSeed = maphash.MakeSeed()

func chainSig(parent uint64, part string) uint64 {
	var h maphash.Hash
	h.SetSeed(tstSeed)
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(parent >> (8 * i))
	}
	h.Write(b[:])
	h.WriteString(part)
	return h.Sum64()
}

// runSimProvTst computes VC2 for all destinations.
func (e *Engine) runSimProvTst(src, dst []graph.VertexID, ad *adjacency) (*bitmap.Bitset, error) {
	out := bitmap.NewBitset(e.P.NumVertices())
	// Set-at-a-time path: plain queries on frozen snapshots whose ancestry
	// blocks are big enough for whole-row passes (or with ForceVecSolver)
	// run the sweep solver (simprovsweep.go) on temporally monotone
	// snapshots, and the level-synchronous frontier solver (simprovvec.go)
	// when out-of-order ingestion bars the single-sweep propagation.
	if e.vecSolverChosen(ad) {
		if e.ancestryMonotone() {
			sw := e.newTstSweepState(ad, src)
			for _, vj := range dst {
				if ad.vertexOK(vj) {
					sw.run(vj, out)
				}
			}
			return out, nil
		}
		st := e.newTstVecState(ad, src)
		for _, vj := range dst {
			if ad.vertexOK(vj) {
				st.run(vj, out)
			}
		}
		return out, nil
	}
	srcSet := make(map[graph.VertexID]bool, len(src))
	minSrc := int64(1) << 62
	for _, s := range src {
		srcSet[s] = true
		if o := e.P.Order(s); o < minSrc {
			minSrc = o
		}
	}
	// Plain queries on temporally monotone graphs take the word-parallel
	// depth/height-set path (tstbitset.go); property-constrained queries —
	// where path labels are no longer determined by depth — and graphs
	// with out-of-order ingestion use the explicit class-chain iteration.
	useBitset := e.opts.MatchActivityProp == "" && e.opts.MatchEntityProp == "" && e.ancestryMonotone()
	for _, vj := range dst {
		if !ad.vertexOK(vj) {
			continue
		}
		if useBitset {
			e.tstSingleBitset(vj, srcSet, ad, out)
		} else {
			e.tstSingle(vj, srcSet, minSrc, ad, out)
		}
	}
	return out, nil
}

// tstSingle runs the level iteration for one destination and accumulates
// VC2 vertices into out.
func (e *Engine) tstSingle(vj graph.VertexID, srcSet map[graph.VertexID]bool, minSrc int64, ad *adjacency, out *bitmap.Bitset) {
	g := e.P.PG()
	matchAKey := e.opts.MatchActivityProp
	matchEKey := e.opts.MatchEntityProp
	earlyStop := !e.opts.NoEarlyStop

	root := &tstClass{ents: []graph.VertexID{vj}}
	cur := []*tstClass{root}
	if srcSet[vj] {
		e.tstCollect(root, ad, out)
	}

	// Levels strictly descend in maximum order-of-being, so the iteration
	// terminates within NumVertices levels on any temporally consistent
	// graph; the cap is defensive against inconsistent PropTime overrides.
	maxLevel := e.P.NumVertices() + 1
	var bufA, bufE []graph.VertexID
	for len(cur) > 0 && cur[0].level < maxLevel {
		var next []*tstClass
		for _, c := range cur {
			// [a]_{m+1}: generators of the class entities, grouped by the
			// activity property signature when the constraint is active.
			bufA = bufA[:0]
			for _, en := range c.ents {
				bufA = ad.generatorsOf(en, bufA)
			}
			actGroups := groupByProp(g, dedupVertices(bufA), matchAKey)
			for _, ag := range actGroups {
				// [e]_{m+1}: inputs of the group's activities, grouped by
				// the entity property signature.
				bufE = bufE[:0]
				for _, a := range ag.members {
					bufE = ad.inputsOf(a, bufE)
				}
				entGroups := groupByProp(g, dedupVertices(bufE), matchEKey)
				for _, eg := range entGroups {
					nc := &tstClass{
						sig:    chainSig(chainSig(c.sig, ag.key), eg.key),
						level:  c.level + 1,
						ents:   eg.members,
						acts:   ag.members,
						parent: c,
					}
					// Answer level: the class contains a source entity.
					for _, en := range nc.ents {
						if srcSet[en] {
							e.tstCollect(nc, ad, out)
							break
						}
					}
					// Temporal early stop: a class whose members are all
					// strictly older than every source can never produce an
					// answer level deeper in its own chain.
					if earlyStop && e.tstAllOld(nc, minSrc) {
						continue
					}
					next = append(next, nc)
				}
			}
		}
		cur = next
	}
}

func (e *Engine) tstAllOld(c *tstClass, minSrc int64) bool {
	for _, v := range c.ents {
		if e.P.Order(v) >= minSrc {
			return false
		}
	}
	for _, v := range c.acts {
		if e.P.Order(v) >= minSrc {
			return false
		}
	}
	return true
}

type propGroup struct {
	key     string
	members []graph.VertexID
}

// groupByProp partitions vertices by the value of a property; an empty key
// yields a single group.
func groupByProp(g *graph.Graph, vs []graph.VertexID, key string) []propGroup {
	if key == "" {
		if len(vs) == 0 {
			return nil
		}
		return []propGroup{{members: vs}}
	}
	byVal := make(map[string][]graph.VertexID)
	var order []string
	for _, v := range vs {
		val := g.VertexProp(v, key).AsString()
		if _, ok := byVal[val]; !ok {
			order = append(order, val)
		}
		byVal[val] = append(byVal[val], v)
	}
	out := make([]propGroup, 0, len(order))
	for _, val := range order {
		out = append(out, propGroup{key: val, members: byVal[val]})
	}
	return out
}

// tstCollect performs the backward prune for an answer class at level m:
// every entity of the class is the endpoint of a valid length-m ancestry
// path from vj; walking down the chain keeps exactly the activities and
// entities that extend to level m.
func (e *Engine) tstCollect(c *tstClass, ad *adjacency, out *bitmap.Bitset) {
	// Xe starts as the full answer-level class.
	xe := make(map[graph.VertexID]bool, len(c.ents))
	for _, en := range c.ents {
		xe[en] = true
		out.Add(uint32(en))
	}
	var buf []graph.VertexID
	for walk := c; walk.level > 0; walk = walk.parent {
		// Keep activities with at least one kept input.
		var keptActs []graph.VertexID
		for _, a := range walk.acts {
			buf = ad.inputsOf(a, buf[:0])
			for _, en := range buf {
				if xe[en] {
					keptActs = append(keptActs, a)
					out.Add(uint32(a))
					break
				}
			}
		}
		// Keep parent entities generated by a kept activity.
		parentEnts := make(map[graph.VertexID]bool, len(walk.parent.ents))
		for _, en := range walk.parent.ents {
			parentEnts[en] = true
		}
		nxt := make(map[graph.VertexID]bool)
		for _, a := range keptActs {
			buf = ad.generatedBy(a, buf[:0])
			for _, en := range buf {
				if parentEnts[en] {
					nxt[en] = true
					out.Add(uint32(en))
				}
			}
		}
		xe = nxt
	}
}
