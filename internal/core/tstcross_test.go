package core

import (
	"testing"

	"repro/internal/bitmap"
	"repro/internal/graph"
	"repro/internal/prov"
)

// Cross-check the two SimProvTst implementations directly: the word-parallel
// depth/height-set solver (tstbitset.go) and the explicit equivalence-class
// chain iteration (simprovtst.go) must produce identical VC2 sets on plain
// queries. The external suite only exercises the chain path through
// property-constrained queries, so this white-box test closes the gap.

func tstBoth(t *testing.T, p *prov.Graph, src, dst []graph.VertexID) (chain, bits map[uint32]bool) {
	t.Helper()
	eng := NewEngine(p, Options{})
	ad := newAdjacency(p, Boundary{})
	srcSet := make(map[graph.VertexID]bool)
	minSrc := int64(1) << 62
	for _, s := range src {
		srcSet[s] = true
		if o := p.Order(s); o < minSrc {
			minSrc = o
		}
	}
	outChain := bitmap.NewBitset(p.NumVertices())
	outBits := bitmap.NewBitset(p.NumVertices())
	for _, vj := range dst {
		eng.tstSingle(vj, srcSet, minSrc, ad, outChain)
		eng.tstSingleBitset(vj, srcSet, ad, outBits)
	}
	toMap := func(b *bitmap.Bitset) map[uint32]bool {
		m := map[uint32]bool{}
		b.Iterate(func(x uint32) bool { m[x] = true; return true })
		return m
	}
	return toMap(outChain), toMap(outBits)
}

// smallLifecycle builds a deterministic mixed-shape lifecycle.
func smallLifecycle(extraRounds int) (*prov.Graph, []graph.VertexID, []graph.VertexID) {
	rc := prov.NewRecorder()
	d := rc.Import("a", "data", "")
	m := rc.Import("a", "model", "")
	cur := []graph.VertexID{d, m}
	for i := 0; i < extraRounds; i++ {
		_, out := rc.Run("a", "step", cur, []string{"mid", "side"})
		// Mix fan-in/fan-out: next round uses one new and one old entity.
		cur = []graph.VertexID{out[0], d}
		if i%2 == 1 {
			cur = append(cur, m)
		}
	}
	_, final := rc.Run("a", "final", cur, []string{"result"})
	return rc.P, []graph.VertexID{d, m}, final
}

func TestTstImplementationsAgree(t *testing.T) {
	for rounds := 1; rounds <= 6; rounds++ {
		p, src, dst := smallLifecycle(rounds)
		chain, bits := tstBoth(t, p, src, dst)
		for v := range chain {
			if !bits[v] {
				t.Errorf("rounds=%d: bitset impl missing vertex %d", rounds, v)
			}
		}
		for v := range bits {
			if !chain[v] {
				t.Errorf("rounds=%d: bitset impl has extra vertex %d", rounds, v)
			}
		}
	}
}

// TestTstImplementationsAgreeNoEarlyStop repeats without the depth cap.
func TestTstImplementationsAgreeNoEarlyStop(t *testing.T) {
	p, src, dst := smallLifecycle(5)
	eng := NewEngine(p, Options{NoEarlyStop: true})
	ad := newAdjacency(p, Boundary{})
	srcSet := map[graph.VertexID]bool{src[0]: true, src[1]: true}
	outChain := bitmap.NewBitset(p.NumVertices())
	outBits := bitmap.NewBitset(p.NumVertices())
	eng.tstSingle(dst[0], srcSet, 0, ad, outChain)
	eng.tstSingleBitset(dst[0], srcSet, ad, outBits)
	if outChain.Cardinality() != outBits.Cardinality() {
		t.Fatalf("cardinality mismatch: %d vs %d", outChain.Cardinality(), outBits.Cardinality())
	}
	outChain.Iterate(func(x uint32) bool {
		if !outBits.Contains(x) {
			t.Errorf("vertex %d only in chain impl", x)
		}
		return true
	})
}

// TestBitvecOps covers the word-parallel primitives directly.
func TestBitvecOps(t *testing.T) {
	b := newBitvec(200)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 199} {
		b.set(i)
		if !b.get(i) {
			t.Fatalf("set/get %d", i)
		}
	}
	if b.get(2) || b.get(130) {
		t.Fatal("phantom bits")
	}
	if b.maxBit() != 199 {
		t.Fatalf("maxBit %d", b.maxBit())
	}
	// Shift-left-by-1 into a fresh vector.
	dst := newBitvec(200)
	orShift1Into(dst, b)
	for _, i := range []int{1, 2, 64, 65, 66, 128, 129} {
		if !dst.get(i) {
			t.Fatalf("orShift1Into missing bit %d", i)
		}
	}
	if dst.get(0) {
		t.Fatal("shift created bit 0")
	}
	// Right shift.
	shr := b.shr(64)
	if !shr.get(0) || !shr.get(1) || !shr.get(63) || !shr.get(64) {
		t.Fatal("shr(64) misaligned")
	}
	if shr.get(2) {
		t.Fatal("shr phantom")
	}
	// Intersections.
	c := newBitvec(200)
	c.set(65)
	if !b.intersects(c) {
		t.Fatal("intersects false negative")
	}
	c2 := newBitvec(200)
	c2.set(66)
	if b.intersects(c2) {
		t.Fatal("intersects false positive")
	}
	if !newBitvec(100).empty() {
		t.Fatal("fresh vec not empty")
	}
}

// TestAncestryMonotone: Pd-style ingestion is monotone; a hand-built
// violation is detected.
func TestAncestryMonotone(t *testing.T) {
	p, _, _ := smallLifecycle(3)
	eng := NewEngine(p, Options{})
	if !eng.ancestryMonotone() {
		t.Fatal("recorder-built graph should be monotone")
	}
	// Build a graph where an activity uses a LATER entity (allowed by the
	// store, but temporally inconsistent).
	q := prov.New()
	a := q.NewActivity("act")
	e := q.NewEntity("late")
	q.Used(a, e) // a (id 0) -> e (id 1): src <= dst, violates monotonicity
	eng2 := NewEngine(q, Options{})
	if eng2.ancestryMonotone() {
		t.Fatal("violation not detected")
	}
}
