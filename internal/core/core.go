// Package core implements the paper's two provenance graph query operators:
//
//   - PgSeg (Sec. III): segmentation — given source entities Vsrc and
//     destination entities Vdst, induce the connected subgraph that shows
//     how Vdst was generated, including vertices on direct paths (VC1),
//     vertices on similar paths per the context-free language L(SimProv)
//     (VC2), sibling entities (VC3), and involved agents (VC4), subject to
//     boundary criteria B.
//
//   - PgSum (Sec. IV): summarization — combine a set of segments into a
//     provenance summary graph (Psg) that preserves path labels exactly
//     (no path added, no path lost) while merging vertices that are
//     equivalent under property aggregation K and provenance type Rk.
//
// Three interchangeable VC2 solvers are provided: the generic CflrB
// baseline (via internal/cflr), SimProvAlg (the paper's rewritten-grammar
// worklist algorithm), and SimProvTst (the per-destination transitive
// algorithm, linear in |G| + |U| per destination).
package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/bitmap"
	"repro/internal/graph"
	"repro/internal/prov"
)

// SolverKind selects the VC2 (similar-path) reachability algorithm.
type SolverKind int

// Available VC2 solvers.
const (
	// SolverTst is SimProvTst (default; fastest).
	SolverTst SolverKind = iota
	// SolverAlg is SimProvAlg on the rewritten grammar of Fig. 4.
	SolverAlg
	// SolverCflrB is the generic subcubic CFLR baseline on the normal form
	// of Fig. 6.
	SolverCflrB
)

// String names the solver.
func (k SolverKind) String() string {
	switch k {
	case SolverTst:
		return "SimProvTst"
	case SolverAlg:
		return "SimProvAlg"
	case SolverCflrB:
		return "CflrB"
	}
	return "unknown"
}

// Options configure a segmentation engine.
type Options struct {
	// Solver picks the VC2 algorithm (default SolverTst).
	Solver SolverKind
	// Sets picks the fast-set implementation for SimProvAlg/CflrB
	// (default dense bitset; bitmap.RoaringFactory is the paper's Cbm).
	Sets bitmap.Factory
	// NoPruning disables SimProvAlg's symmetric-pair pruning (ablation).
	NoPruning bool
	// NoEarlyStop disables the temporal early-stopping rule (Fig. 5d
	// ablates this).
	NoEarlyStop bool
	// MaxFacts bounds derived facts for SimProvAlg/CflrB (0 = unlimited);
	// exceeding it returns cflr.ErrFactBudget.
	MaxFacts int
	// MatchActivityProp, when set, strengthens L(SimProv) so matched
	// activity pairs must agree on this property (the paper's
	// sigma(a_i, p0) = sigma(a_j, p0) generalization). Supported by
	// SimProvAlg and SimProvTst.
	MatchActivityProp string
	// MatchEntityProp is the analogous constraint on matched entity pairs.
	MatchEntityProp string
	// VC1ExcludeDerivations drops wasDerivedFrom edges from direct-path
	// induction (they participate by default; Fig. 2's Q1/Q2 instead
	// exclude them with an explicit edge-type boundary).
	VC1ExcludeDerivations bool
	// ScalarTraversal forces the scalar vertex-at-a-time walks even where
	// the vectorized frontier engine applies (plain boundaries on frozen
	// snapshots — see frontier.go). Results are identical either way; the
	// difftest harness runs both and diffs.
	ScalarTraversal bool
	// ForceVecSolver bypasses the DegreeStats regime choice and always takes
	// the set-at-a-time VC2 solver paths where they apply (see simprovvec.go).
	// The differential harness and the bench panels force the vectorized side
	// so small graphs exercise it too; production queries leave this off and
	// let the snapshot's freeze-time statistics decide.
	ForceVecSolver bool
}

// Engine evaluates PgSeg queries over one provenance graph.
type Engine struct {
	P    *prov.Graph
	opts Options
	// setsDefault records that the caller left Options.Sets nil (factory
	// functions are not comparable, so the defaulting below is remembered
	// here): the vectorized SimProvAlg requires the dense-bitset stores for
	// its word-parallel partner merges and must not silently replace an
	// explicitly requested set representation (e.g. the Roaring ablation).
	setsDefault bool
}

// NewEngine builds an engine; zero-value options select SimProvTst with
// dense bitsets, pruning and early stopping enabled.
func NewEngine(p *prov.Graph, opts Options) *Engine {
	setsDefault := opts.Sets == nil
	if setsDefault {
		opts.Sets = bitmap.BitsetFactory
	}
	return &Engine{P: p, opts: opts, setsDefault: setsDefault}
}

// Opts returns the engine options.
func (e *Engine) Opts() Options { return e.opts }

// VertexFilter is an exclusion boundary predicate over vertices (paper's
// b_v); a vertex failing any filter is treated as labeled epsilon.
type VertexFilter func(p *prov.Graph, v graph.VertexID) bool

// EdgeFilter is an exclusion boundary predicate over edges (paper's b_e).
type EdgeFilter func(p *prov.Graph, e graph.EdgeID) bool

// Expansion is an expansion boundary b_x(Vx, k): include ancestry paths up
// to k activities away from the entities in Within.
type Expansion struct {
	Within []graph.VertexID
	K      int
}

// Boundary is the PgSeg boundary criteria B: exclusion constraints plus
// expansion specifications.
type Boundary struct {
	VertexFilters []VertexFilter
	EdgeFilters   []EdgeFilter
	// ExcludeRels is a convenience exclusion of whole PROV edge types
	// (e.g. Q1 in Fig. 2(d) excludes A and D edges).
	ExcludeRels []prov.Rel
	Expansions  []Expansion
}

// Query is the PgSeg 3-tuple (Vsrc, Vdst, B).
type Query struct {
	Src      []graph.VertexID
	Dst      []graph.VertexID
	Boundary Boundary
}

// Rule identifies which induction rule contributed a vertex.
type Rule uint8

// Induction rules (paper Sec. III.A.2 rules a-d).
const (
	RuleQuery Rule = iota // member of Vsrc or Vdst
	RuleC1                // on a direct path
	RuleC2                // on a similar path (L(SimProv))
	RuleC3                // sibling entity generated by an induced activity
	RuleC4                // involved agent
)

// String names the rule.
func (r Rule) String() string {
	switch r {
	case RuleQuery:
		return "query"
	case RuleC1:
		return "C1:direct"
	case RuleC2:
		return "C2:similar"
	case RuleC3:
		return "C3:sibling"
	case RuleC4:
		return "C4:agent"
	}
	return "?"
}

// Segment is a PgSeg result: a connected subgraph S(VS, ES) of the
// provenance graph, with per-vertex rule attribution.
type Segment struct {
	P *prov.Graph

	Src []graph.VertexID
	Dst []graph.VertexID

	// Vertices is VS in ascending id order.
	Vertices []graph.VertexID
	// Edges is ES in ascending id order.
	Edges []graph.EdgeID
	// ByRule records the first induction rule that contributed each vertex.
	ByRule map[graph.VertexID]Rule

	vset *bitmap.Bitset
	// support is the revalidation support set (see Support).
	support *bitmap.Bitset
}

// Contains reports whether v is in the segment.
func (s *Segment) Contains(v graph.VertexID) bool { return s.vset.Contains(uint32(v)) }

// VertexSet returns the segment's vertex set as a bitset (do not modify).
func (s *Segment) VertexSet() *bitmap.Bitset { return s.vset }

// Support returns the segment's revalidation support set (nil for segments
// not produced by Engine.Segment, e.g. adjusted copies): the query's two
// ancestry closures, every segment vertex, and the expansion seeds. Every
// derivation the query depends on stays inside this set, so on an
// append-only graph the result can only change if a newly ingested edge is
// incident to a support vertex — the check the serving layer's epoch
// revalidation performs per cached entry. Do not modify the returned set.
func (s *Segment) Support() *bitmap.Bitset { return s.support }

// Rebase returns a shallow copy of the segment re-pointed at a newer
// snapshot of the same append-only graph (every id the segment references
// is stable across snapshots). The original is left untouched so readers
// holding it are unaffected.
func (s *Segment) Rebase(p *prov.Graph) *Segment {
	ns := *s
	ns.P = p
	return &ns
}

// NumVertices returns |VS|.
func (s *Segment) NumVertices() int { return len(s.Vertices) }

// NumEdges returns |ES|.
func (s *Segment) NumEdges() int { return len(s.Edges) }

// ErrEmptyQuery is returned when Src or Dst is empty.
var ErrEmptyQuery = errors.New("core: PgSeg query needs non-empty Src and Dst")

// SimilarPaths computes just the VC2 vertex set (the L(SimProv) similar
// paths) for a query. It is the core of the segmentation operator, exposed
// separately so the three solvers can be measured in isolation (Fig. 5a-d).
func (e *Engine) SimilarPaths(q Query) (*bitmap.Bitset, error) {
	ad := newAdjacency(e.P, q.Boundary)
	return e.similarPathVertices(q, ad)
}

// Segment evaluates the induce step of a PgSeg query and assembles the
// result subgraph. Boundary exclusions are fused into induction (Appendix C
// style); expansions are applied as part of assembly. AdjustExclude and
// AdjustExpand support the interactive adjust step over a cached segment.
func (e *Engine) Segment(q Query) (*Segment, error) {
	if len(q.Src) == 0 || len(q.Dst) == 0 {
		return nil, ErrEmptyQuery
	}
	for _, v := range append(append([]graph.VertexID{}, q.Src...), q.Dst...) {
		if int(v) >= e.P.NumVertices() {
			return nil, fmt.Errorf("core: query vertex %d out of range", v)
		}
		if !e.P.IsKind(v, prov.KindEntity) {
			return nil, fmt.Errorf("core: query vertex %d is not an entity", v)
		}
	}
	// Expansion vertices come from the same untrusted surfaces as Src/Dst
	// (CLI flags, HTTP requests) and are walked unchecked by expand.
	for _, ex := range q.Boundary.Expansions {
		for _, v := range ex.Within {
			if int(v) >= e.P.NumVertices() {
				return nil, fmt.Errorf("core: expansion vertex %d out of range", v)
			}
		}
	}
	ad := newAdjacency(e.P, q.Boundary)

	vc1, support := e.directPathVertices(q, ad)
	vc2, err := e.similarPathVertices(q, ad)
	if err != nil {
		return nil, err
	}

	seg := &Segment{
		P:      e.P,
		Src:    append([]graph.VertexID(nil), q.Src...),
		Dst:    append([]graph.VertexID(nil), q.Dst...),
		ByRule: make(map[graph.VertexID]Rule),
		vset:   bitmap.NewBitset(e.P.NumVertices()),
	}
	addV := func(v graph.VertexID, r Rule) {
		if seg.vset.Add(uint32(v)) {
			seg.ByRule[v] = r
		}
	}
	for _, v := range q.Src {
		addV(v, RuleQuery)
	}
	for _, v := range q.Dst {
		addV(v, RuleQuery)
	}
	vc1.Iterate(func(x uint32) bool { addV(graph.VertexID(x), RuleC1); return true })
	vc2.Iterate(func(x uint32) bool { addV(graph.VertexID(x), RuleC2); return true })

	// VC3: entities generated by induced activities but not already induced.
	coreSet := vc1.Clone()
	coreSet.UnionWith(vc2)
	if e.vectorizable(ad) {
		e.frontierSiblings(coreSet, ad, addV)
	} else {
		var buf []graph.VertexID
		coreSet.Iterate(func(x uint32) bool {
			v := graph.VertexID(x)
			if e.P.IsKind(v, prov.KindActivity) {
				buf = ad.generatedBy(v, buf[:0])
				for _, sib := range buf {
					addV(sib, RuleC3)
				}
			}
			return true
		})
	}

	// Expansions (b_x): ancestry within k activities of the given entities.
	for _, ex := range q.Boundary.Expansions {
		e.expand(ad, ex, func(v graph.VertexID) { addV(v, RuleC2) })
	}

	// VC4: agents of every included vertex, reached by non-excluded edges.
	if e.vectorizable(ad) {
		e.frontierAgents(seg.vset, ad, addV)
	} else {
		var agents []graph.VertexID
		seg.vset.Iterate(func(x uint32) bool {
			agents = ad.agentsOf(graph.VertexID(x), agents[:0])
			for _, u := range agents {
				addV(u, RuleC4)
			}
			return true
		})
	}

	// Support set: the closures already bound every VC1/VC2 derivation; add
	// the segment itself (covers VC3 siblings, VC4 agents, induced edges and
	// expansion frontiers) and the expansion seeds, which expand walks from
	// without necessarily including them.
	support.UnionWith(seg.vset)
	for _, ex := range q.Boundary.Expansions {
		for _, v := range ex.Within {
			support.Add(uint32(v))
		}
	}
	seg.support = support

	seg.Vertices = setToVertices(seg.vset)
	seg.Edges = e.inducedEdges(seg.vset, ad)
	return seg, nil
}

func setToVertices(vs *bitmap.Bitset) []graph.VertexID {
	out := make([]graph.VertexID, 0, vs.Cardinality())
	vs.Iterate(func(x uint32) bool {
		out = append(out, graph.VertexID(x))
		return true
	})
	return out
}

// inducedEdges returns ES = all non-excluded edges with both endpoints in vs.
func (e *Engine) inducedEdges(vs *bitmap.Bitset, ad *adjacency) []graph.EdgeID {
	if e.vectorizable(ad) {
		return e.inducedEdgesVec(vs, ad)
	}
	var out []graph.EdgeID
	g := e.P.PG()
	vs.Iterate(func(x uint32) bool {
		v := graph.VertexID(x)
		for _, eid := range g.Out(v) {
			if vs.Contains(uint32(g.Dst(eid))) && ad.edgeOK(eid) {
				out = append(out, eid)
			}
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// expand walks ancestry up to k activity-steps from the expansion entities,
// reporting every visited activity and entity. A visited set keeps the walk
// linear in |G|: without it, diamond-shaped ancestry re-expands duplicated
// frontier vertices multiplicatively per step, and k arrives unvalidated
// from CLI flags and HTTP requests.
func (e *Engine) expand(ad *adjacency, ex Expansion, add func(graph.VertexID)) {
	if e.vectorizable(ad) {
		e.expandFrontier(ad, ex, add)
		return
	}
	seen := bitmap.NewBitset(e.P.NumVertices())
	ents := make([]graph.VertexID, 0, len(ex.Within))
	seeds := bitmap.NewBitset(e.P.NumVertices())
	for _, en := range ex.Within {
		if seeds.Add(uint32(en)) {
			ents = append(ents, en)
		}
	}
	var acts, inputs, next []graph.VertexID
	for step := 0; step < ex.K && len(ents) > 0; step++ {
		acts = acts[:0]
		for _, en := range ents {
			acts = ad.generatorsOf(en, acts)
		}
		next = next[:0]
		for _, a := range acts {
			if !seen.Add(uint32(a)) {
				continue
			}
			add(a)
			inputs = ad.inputsOf(a, inputs[:0])
			for _, en := range inputs {
				if seen.Add(uint32(en)) {
					add(en)
					next = append(next, en)
				}
			}
		}
		ents = append(ents[:0], next...)
	}
}

// AdjustExclude applies additional exclusion filters to a cached segment
// (the interactive adjust step) and returns a new, filtered segment. Query
// vertices (Src/Dst) are never removed.
func (e *Engine) AdjustExclude(s *Segment, b Boundary) *Segment {
	ad := newAdjacency(e.P, b)
	out := &Segment{
		P:      s.P,
		Src:    s.Src,
		Dst:    s.Dst,
		ByRule: make(map[graph.VertexID]Rule),
		vset:   bitmap.NewBitset(e.P.NumVertices()),
	}
	for _, v := range s.Src {
		if out.vset.Add(uint32(v)) {
			out.ByRule[v] = RuleQuery
		}
	}
	for _, v := range s.Dst {
		if out.vset.Add(uint32(v)) {
			out.ByRule[v] = RuleQuery
		}
	}
	for _, v := range s.Vertices {
		if ad.vertexOK(v) && out.vset.Add(uint32(v)) {
			out.ByRule[v] = s.ByRule[v]
		}
	}
	out.Vertices = setToVertices(out.vset)
	g := e.P.PG()
	for _, eid := range s.Edges {
		if out.vset.Contains(uint32(g.Src(eid))) && out.vset.Contains(uint32(g.Dst(eid))) && ad.edgeOK(eid) {
			out.Edges = append(out.Edges, eid)
		}
	}
	return out
}

// AdjustExpand grows a cached segment by an expansion specification and
// returns the new segment. Expansion vertices arrive from the same
// untrusted surfaces as query vertices and are walked unchecked by expand,
// so they are range-validated here.
func (e *Engine) AdjustExpand(s *Segment, ex Expansion) (*Segment, error) {
	for _, v := range ex.Within {
		if int(v) >= e.P.NumVertices() {
			return nil, fmt.Errorf("core: expansion vertex %d out of range", v)
		}
	}
	ad := newAdjacency(e.P, Boundary{})
	out := &Segment{
		P:      s.P,
		Src:    s.Src,
		Dst:    s.Dst,
		ByRule: make(map[graph.VertexID]Rule),
		vset:   s.vset.Clone(),
	}
	for v, r := range s.ByRule {
		out.ByRule[v] = r
	}
	e.expand(ad, ex, func(v graph.VertexID) {
		if out.vset.Add(uint32(v)) {
			out.ByRule[v] = RuleC2
		}
	})
	out.Vertices = setToVertices(out.vset)
	out.Edges = e.inducedEdges(out.vset, ad)
	return out, nil
}
