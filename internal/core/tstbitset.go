package core

import (
	"math/bits"

	"repro/internal/bitmap"
	"repro/internal/graph"
	"repro/internal/prov"
)

// Bitset formulation of SimProvTst for plain (non-property-constrained)
// queries. On a PROV graph with plain labels, a path's word is determined
// by its activity-depth, so per destination vj the whole computation
// reduces to per-vertex DEPTH sets and HEIGHT sets over [0, maxDepth]:
//
//	D(v) = { m : an alternating ancestry path of m activity-steps runs
//	            from vj to v }
//	H(e) = { h : an alternating ancestry path of h activity-steps starts
//	            at entity e }
//
// A level m is an answer level iff m is in D(src) for some source; a vertex
// is in VC2 for answer level m iff some split i + h = m has i in D(v) and
// h in its continuation set. Both set families are computed in two linear
// sweeps over the (temporally monotone) vertex order with word-parallel
// shifts, giving the near-linear behavior Theorem 2 promises — the
// explicit per-level equivalence-class iteration in simprovtst.go remains
// for property-constrained queries, where labels are no longer determined
// by depth.

// bitvec is a fixed-width bit vector over depths.
type bitvec []uint64

func newBitvec(bitsN int) bitvec { return make(bitvec, (bitsN+63)/64) }

func (b bitvec) set(i int) { b[i/64] |= 1 << (i % 64) }

func (b bitvec) get(i int) bool {
	w := i / 64
	return w < len(b) && b[w]&(1<<(i%64)) != 0
}

func (b bitvec) empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

// orInto dst |= src.
func orInto(dst, src bitvec) {
	for i, w := range src {
		dst[i] |= w
	}
}

// orShift1Into dst |= (src << 1).
func orShift1Into(dst, src bitvec) {
	carry := uint64(0)
	for i, w := range src {
		dst[i] |= (w << 1) | carry
		carry = w >> 63
	}
}

// shr returns b >> n (new vector).
func (b bitvec) shr(n int) bitvec {
	out := make(bitvec, len(b))
	wordShift, bitShift := n/64, uint(n%64)
	for i := range out {
		j := i + wordShift
		if j >= len(b) {
			break
		}
		out[i] = b[j] >> bitShift
		if bitShift > 0 && j+1 < len(b) {
			out[i] |= b[j+1] << (64 - bitShift)
		}
	}
	return out
}

// intersects reports whether a AND b is non-zero.
func (b bitvec) intersects(o bitvec) bool {
	for i, w := range b {
		if i < len(o) && w&o[i] != 0 {
			return true
		}
	}
	return false
}

// maxBit returns the highest set bit (or -1).
func (b bitvec) maxBit() int {
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] != 0 {
			return i*64 + 63 - bits.LeadingZeros64(b[i])
		}
	}
	return -1
}

// ancestryMonotone reports whether every ancestry edge points from a newer
// vertex to a strictly older one (true for ingestion-ordered provenance);
// the bitset solver relies on this for its single-sweep propagation.
func (e *Engine) ancestryMonotone() bool {
	g := e.P.PG()
	uL, gL := e.P.RelLabel(prov.RelUsed), e.P.RelLabel(prov.RelGen)
	for eid := 0; eid < g.NumEdges(); eid++ {
		id := graph.EdgeID(eid)
		l := g.EdgeLabel(id)
		if (l == uL || l == gL) && g.Src(id) <= g.Dst(id) {
			return false
		}
	}
	return true
}

// tstSingleBitset runs the depth/height-set algorithm for one destination,
// accumulating VC2 vertices into out.
func (e *Engine) tstSingleBitset(vj graph.VertexID, srcSet map[graph.VertexID]bool, ad *adjacency, out *bitmap.Bitset) {
	// Depth cap: each level strictly descends by at least one activity and
	// one entity id, so levels beyond (id(vj) - minSrcId)/2 + 1 cannot
	// contain a source. Without early stopping fall back to the longest
	// possible alternation.
	minSrcID := int64(1) << 62
	for s := range srcSet {
		if int64(s) < minSrcID {
			minSrcID = int64(s)
		}
	}
	nAct := len(e.P.Activities())
	maxD := nAct + 1
	if !e.opts.NoEarlyStop {
		if gap := int(int64(vj) - minSrcID); gap >= 0 && gap/2+2 < maxD {
			maxD = gap/2 + 2
		} else if gap < 0 {
			maxD = 1
		}
	}
	width := maxD + 2

	depth := make(map[graph.VertexID]bitvec)
	depth[vj] = newBitvec(width)
	depth[vj].set(0)

	// Downward sweep (decreasing ids): propagate depth sets to ancestors.
	// Reached vertices are collected in decreasing id order for the height
	// sweep afterwards.
	reached := []graph.VertexID{vj}
	var buf []graph.VertexID
	// Iterate in decreasing id order using a simple index scan over the
	// reached frontier: because ancestry edges strictly decrease ids, a
	// vertex's final depth set is complete by the time the scan reaches it
	// if we process candidates ordered by id. We maintain a bucket queue
	// keyed by id.
	pending := bitmap.NewBitset(int(vj) + 1)
	pending.Add(uint32(vj))
	for cur := int(vj); cur >= 0; cur-- {
		if !pending.Contains(uint32(cur)) {
			continue
		}
		v := graph.VertexID(cur)
		dv := depth[v]
		if e.P.IsKind(v, prov.KindEntity) {
			// [a]_{m+1} via generators.
			buf = ad.generatorsOf(v, buf[:0])
			for _, a := range buf {
				da := depth[a]
				if da == nil {
					da = newBitvec(width)
					depth[a] = da
					pending.Add(uint32(a))
					reached = append(reached, a)
				}
				orShift1Into(da, dv)
			}
		} else {
			// [e]_{m} via inputs (no depth increment: the activity carries
			// the incremented depth).
			buf = ad.inputsOf(v, buf[:0])
			for _, in := range buf {
				di := depth[in]
				if di == nil {
					di = newBitvec(width)
					depth[in] = di
					pending.Add(uint32(in))
					reached = append(reached, in)
				}
				orInto(di, dv)
			}
		}
	}

	// Trim depth bits beyond maxD (shifts may have spilled one position).
	// Valid answer levels.
	var answers bitvec
	for s := range srcSet {
		if d := depth[s]; d != nil {
			if answers == nil {
				answers = newBitvec(width)
			}
			orInto(answers, d)
		}
	}
	if answers == nil || answers.empty() {
		return
	}
	var levels []int
	for m := 0; m <= maxD+1; m++ {
		if answers.get(m) {
			levels = append(levels, m)
		}
	}

	// Upward sweep (increasing ids over reached vertices): continuation
	// sets. For an entity e: C(e) = {0} | union over generators a of
	// (C'(a)+1) ... but expressed bottom-up we compute H (height) sets:
	// H(e) = {0} | union_{a in generators(e)} (H'(a)),
	// H'(a) = union_{e' in inputs(a)} (H(e') + 1).
	// Since generators/inputs have SMALLER ids, an increasing-id sweep
	// sees dependencies first.
	height := make(map[graph.VertexID]bitvec, len(reached))
	// reached was appended in decreasing-id discovery order but not
	// necessarily sorted; sort via bitset iteration.
	reachSet := bitmap.NewBitset(int(vj) + 1)
	for _, v := range reached {
		reachSet.Add(uint32(v))
	}
	reachSet.Iterate(func(x uint32) bool {
		v := graph.VertexID(x)
		hv := newBitvec(width)
		if e.P.IsKind(v, prov.KindEntity) {
			hv.set(0)
			buf = ad.generatorsOf(v, buf[:0])
			for _, a := range buf {
				if ha := height[a]; ha != nil {
					orInto(hv, ha)
				}
			}
		} else {
			buf = ad.inputsOf(v, buf[:0])
			for _, in := range buf {
				if he := height[in]; he != nil {
					orShift1Into(hv, he)
				}
			}
		}
		height[v] = hv
		return true
	})

	// Collection: v is on an exact-length-m path iff some i+h = m with
	// i in D(v) and h in C(v), where C(entity) = H(entity) and
	// C(activity) = union over inputs H(input) = H'(activity) >> 1.
	maxM := levels[len(levels)-1]
	reachSet.Iterate(func(x uint32) bool {
		v := graph.VertexID(x)
		dv := depth[v]
		cv := height[v]
		if !e.P.IsKind(v, prov.KindEntity) {
			cv = cv.shr(1)
		}
		// Reverse cv over [0, maxM]: rev.get(j) == cv.get(maxM - j); then
		// exists i: dv[i] && cv[m-i]  <=>  dv AND (rev >> (maxM - m)) != 0.
		rev := newBitvec(width)
		for h := 0; h <= maxM; h++ {
			if cv.get(h) {
				rev.set(maxM - h)
			}
		}
		for _, m := range levels {
			if dv.intersects(rev.shr(maxM - m)) {
				out.Add(uint32(v))
				break
			}
		}
		return true
	})
}
