package core_test

import (
	"fmt"
	"testing"

	"repro/internal/bitmap"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/prov"
)

// bruteForceVC2 computes VC2 directly from the language semantics: both
// halves of an L(SimProv) path are ancestry paths from some vj in Vdst with
// identical label sequences, which on a plain-labeled PROV graph means
// identical activity-depth. So for each vj and each depth m at which a
// source entity is reachable by an alternating G/U ancestry path, VC2
// contains every vertex on every alternating ancestry path of exactly m
// activity-steps from vj.
func bruteForceVC2(p *prov.Graph, src, dst []graph.VertexID, maxDepth int) map[graph.VertexID]bool {
	srcSet := make(map[graph.VertexID]bool)
	for _, s := range src {
		srcSet[s] = true
	}
	out := make(map[graph.VertexID]bool)
	for _, vj := range dst {
		type pathRec struct{ verts []graph.VertexID }
		byDepth := make([][]pathRec, maxDepth+1)
		var walk func(cur graph.VertexID, depth int, verts []graph.VertexID)
		walk = func(cur graph.VertexID, depth int, verts []graph.VertexID) {
			byDepth[depth] = append(byDepth[depth], pathRec{verts: append([]graph.VertexID(nil), verts...)})
			if depth == maxDepth {
				return
			}
			var acts []graph.VertexID
			acts = p.GeneratorsOf(cur, acts)
			for _, a := range acts {
				var ins []graph.VertexID
				ins = p.InputsOf(a, ins)
				for _, e := range ins {
					walk(e, depth+1, append(append(append([]graph.VertexID(nil), verts...), a), e))
				}
			}
		}
		walk(vj, 0, []graph.VertexID{vj})
		for m := 0; m <= maxDepth; m++ {
			hasSrc := false
			for _, rec := range byDepth[m] {
				if srcSet[rec.verts[len(rec.verts)-1]] {
					hasSrc = true
					break
				}
			}
			if !hasSrc {
				continue
			}
			for _, rec := range byDepth[m] {
				for _, v := range rec.verts {
					out[v] = true
				}
			}
		}
	}
	return out
}

func setFromBitset(b *bitmap.Bitset) map[graph.VertexID]bool {
	out := make(map[graph.VertexID]bool)
	b.Iterate(func(x uint32) bool {
		out[graph.VertexID(x)] = true
		return true
	})
	return out
}

func sameVertexSet(t *testing.T, name string, got, want map[graph.VertexID]bool) {
	t.Helper()
	for v := range want {
		if !got[v] {
			t.Errorf("%s: missing vertex %d", name, v)
		}
	}
	for v := range got {
		if !want[v] {
			t.Errorf("%s: extra vertex %d", name, v)
		}
	}
}

func vc2With(t *testing.T, p *prov.Graph, opts core.Options, q core.Query) map[graph.VertexID]bool {
	t.Helper()
	e := core.NewEngine(p, opts)
	set, err := e.SimilarPaths(q)
	if err != nil {
		t.Fatalf("%v: %v", opts.Solver, err)
	}
	return setFromBitset(set)
}

// TestSolverEquivalenceOnPd cross-checks SimProvTst, SimProvAlg and CflrB
// against each other and against the brute-force semantics on a family of
// small random lifecycle graphs.
func TestSolverEquivalenceOnPd(t *testing.T) {
	depthCap := 14
	sizes := []int{40, 80, 150}
	if testing.Short() {
		sizes = []int{40, 80}
	}
	for seed := int64(1); seed <= 8; seed++ {
		for _, n := range sizes {
			p := gen.Pd(gen.PdConfig{N: n, Seed: seed})
			if err := p.Validate(); err != nil {
				t.Fatalf("seed=%d n=%d: invalid graph: %v", seed, n, err)
			}
			src, dst := gen.DefaultQuery(p)
			q := core.Query{Src: src, Dst: dst}

			want := bruteForceVC2(p, src, dst, depthCap)
			for _, kind := range []core.SolverKind{core.SolverTst, core.SolverAlg, core.SolverCflrB} {
				got := vc2With(t, p, core.Options{Solver: kind}, q)
				sameVertexSet(t, fmt.Sprintf("seed=%d n=%d %v", seed, n, kind), got, want)
			}
		}
	}
}

// TestSolverEquivalenceRoaring checks the Cbm (compressed bitmap) variants
// give identical answers.
func TestSolverEquivalenceRoaring(t *testing.T) {
	p := gen.Pd(gen.PdConfig{N: 150, Seed: 3})
	src, dst := gen.DefaultQuery(p)
	q := core.Query{Src: src, Dst: dst}
	want := vc2With(t, p, core.Options{Solver: core.SolverAlg}, q)
	for _, kind := range []core.SolverKind{core.SolverAlg, core.SolverCflrB} {
		got := vc2With(t, p, core.Options{Solver: kind, Sets: bitmap.RoaringFactory}, q)
		sameVertexSet(t, fmt.Sprintf("%v+cbm", kind), got, want)
	}
}

// TestEarlyStopAndPruningPreserveAnswers verifies the optimizations are
// semantics-preserving (they only skip work that cannot contribute).
func TestEarlyStopAndPruningPreserveAnswers(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		p := gen.Pd(gen.PdConfig{N: 120, Seed: seed})
		// Sources in the middle make early stopping actually fire.
		src, dst := gen.QueryAtRank(p, 50)
		q := core.Query{Src: src, Dst: dst}
		want := vc2With(t, p, core.Options{Solver: core.SolverAlg, NoEarlyStop: true, NoPruning: true}, q)
		got := vc2With(t, p, core.Options{Solver: core.SolverAlg}, q)
		sameVertexSet(t, "alg early-stop", got, want)
		gotTst := vc2With(t, p, core.Options{Solver: core.SolverTst}, q)
		sameVertexSet(t, "tst early-stop", gotTst, want)
		gotTstNo := vc2With(t, p, core.Options{Solver: core.SolverTst, NoEarlyStop: true}, q)
		sameVertexSet(t, "tst no-early-stop", gotTstNo, want)
	}
}

// TestBoundaryExclusionConsistency checks that all solvers agree under
// vertex-exclusion boundaries.
func TestBoundaryExclusionConsistency(t *testing.T) {
	p := gen.Pd(gen.PdConfig{N: 120, Seed: 7})
	src, dst := gen.DefaultQuery(p)
	q := core.Query{
		Src: src,
		Dst: dst,
		Boundary: core.Boundary{
			VertexFilters: []core.VertexFilter{func(p *prov.Graph, v graph.VertexID) bool {
				return v%7 != 3
			}},
		},
	}
	want := vc2With(t, p, core.Options{Solver: core.SolverAlg}, q)
	for _, kind := range []core.SolverKind{core.SolverTst, core.SolverCflrB} {
		got := vc2With(t, p, core.Options{Solver: kind}, q)
		sameVertexSet(t, fmt.Sprintf("boundary %v", kind), got, want)
	}
}

// TestPropertyConstrainedMatch checks the sigma(a_i,p)=sigma(a_j,p)
// generalization: SimProvAlg and SimProvTst must agree, and constrained
// results must be a subset of unconstrained ones.
func TestPropertyConstrainedMatch(t *testing.T) {
	seeds, n := int64(5), 150
	if testing.Short() {
		// SimProvAlg on Pd150 dominates short runs (~3s/seed); one smaller
		// seed still exercises the constrained-match path end to end.
		seeds, n = 1, 100
	}
	for seed := int64(1); seed <= seeds; seed++ {
		p := gen.Pd(gen.PdConfig{N: n, Seed: seed})
		src, dst := gen.DefaultQuery(p)
		q := core.Query{Src: src, Dst: dst}
		optsA := core.Options{Solver: core.SolverAlg, MatchActivityProp: prov.PropCommand}
		optsT := core.Options{Solver: core.SolverTst, MatchActivityProp: prov.PropCommand}
		got := vc2With(t, p, optsA, q)
		gotT := vc2With(t, p, optsT, q)
		sameVertexSet(t, "prop-match alg vs tst", gotT, got)

		unconstrained := vc2With(t, p, core.Options{Solver: core.SolverAlg}, q)
		for v := range got {
			if !unconstrained[v] {
				t.Errorf("seed=%d: constrained result has vertex %d outside unconstrained set", seed, v)
			}
		}
	}
}

// TestSegmentAssemblyAcrossSolvers checks the full PgSeg result (all four
// induction rules) is identical for every solver.
func TestSegmentAssemblyAcrossSolvers(t *testing.T) {
	p := gen.Pd(gen.PdConfig{N: 200, Seed: 11})
	src, dst := gen.DefaultQuery(p)
	q := core.Query{Src: src, Dst: dst}
	ref, err := core.NewEngine(p, core.Options{Solver: core.SolverTst}).Segment(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Vertices) == 0 || len(ref.Edges) == 0 {
		t.Fatalf("reference segment empty: %d vertices %d edges", len(ref.Vertices), len(ref.Edges))
	}
	for _, kind := range []core.SolverKind{core.SolverAlg, core.SolverCflrB} {
		seg, err := core.NewEngine(p, core.Options{Solver: kind}).Segment(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(seg.Vertices) != len(ref.Vertices) || len(seg.Edges) != len(ref.Edges) {
			t.Fatalf("%v: segment differs: %d/%d vertices, %d/%d edges",
				kind, len(seg.Vertices), len(ref.Vertices), len(seg.Edges), len(ref.Edges))
		}
		for i, v := range seg.Vertices {
			if ref.Vertices[i] != v {
				t.Fatalf("%v: vertex list differs at %d", kind, i)
			}
		}
	}
}
