package core

import (
	"repro/internal/bitmap"
	"repro/internal/graph"
	"repro/internal/prov"
)

// Sweep-form set-at-a-time SimProvTst for temporally monotone snapshots.
//
// The level-synchronous frontier solver (tstVecState) materializes every
// equivalence class [e]_m explicitly, so each edge is re-traversed once per
// level its endpoint appears in. On deep diamond-shaped provenance the level
// multiplicity is large and that re-traversal swamps the row-union savings.
// The depth/height formulation (tstbitset.go) visits each edge exactly once
// — but its collection phase builds a reversed continuation vector bit by
// bit per vertex and allocates a shifted copy per answer level, which is
// where its runtime concentrates on big graphs.
//
// This solver keeps the single-visit edge discipline and eliminates the
// collection convolution algebraically. With A the answer-level set and
// C(v) the continuation (height) set of the scalar solver, define
//
//	T(v) = { i : exists h in C(v) with i+h in A }
//
// — the depths at which arriving at v can still complete to an answer-level
// path. Membership becomes a single word-parallel intersection,
// v in VC2  <=>  D(v) AND T(v) != 0, and T satisfies local recurrences that
// one increasing-id sweep evaluates (dependencies have smaller ids):
//
//	Tr(a) = union_{e' in inputs(a)}    T(e')     (activities)
//	T(e)  = A | union_{a in gen(e)}    Tr(a)>>1  (entities)
//
// derived by distributing "completes to A" over the scalar recurrences
// H(e) = {0} | union H'(a), H'(a) = union (H(e')+1). Three linear passes
// over the reached subgraph at O(maxDepth/64) words per edge, no per-vertex
// reversal, no per-level shifts. Depth and target sets live in flat slab
// arenas indexed by discovery slot instead of per-vertex map entries.
//
// The sweep requires ancestry edges to strictly descend in vertex id (the
// same ancestryMonotone condition the scalar bitset path checks); the
// dispatcher falls back to the level-synchronous solver otherwise.

// bvArena hands out fixed-width bit vectors from append-only slabs, indexed
// by slot. Slabs arrive zeroed from the allocator, so a freshly assigned
// slot is an empty vector.
type bvArena struct {
	w       int // words per vector
	perSlab int // vectors per slab
	slabs   [][]uint64
}

// bvArenaSlabWords sizes slabs at ~2 MB so huge reaches never re-copy a
// monolithic arena and small reaches never over-allocate.
const bvArenaSlabWords = 1 << 18

func newBvArena(w int) *bvArena {
	per := bvArenaSlabWords / w
	if per < 1 {
		per = 1
	}
	return &bvArena{w: w, perSlab: per}
}

func (a *bvArena) vec(slot int32) bitvec {
	si := int(slot) / a.perSlab
	for len(a.slabs) <= si {
		a.slabs = append(a.slabs, make([]uint64, a.perSlab*a.w))
	}
	off := (int(slot) % a.perSlab) * a.w
	return bitvec(a.slabs[si][off : off+a.w : off+a.w])
}

// orShr1Into dst |= (src >> 1), dropping bit 0 (a continuation one step
// longer needs arrival one step shallower).
func orShr1Into(dst, src bitvec) {
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	for i := 0; i < n; i++ {
		w := src[i] >> 1
		if i+1 < len(src) {
			w |= src[i+1] << 63
		}
		dst[i] |= w
	}
}

// tstSweepState carries the per-query constants across destinations.
type tstSweepState struct {
	e         *Engine
	av        ancestryViews
	src       []graph.VertexID
	minSrcID  int64
	nAct      int
	earlyStop bool
}

func (e *Engine) newTstSweepState(ad *adjacency, src []graph.VertexID) *tstSweepState {
	st := &tstSweepState{
		e:         e,
		av:        e.resolveAncestryViews(ad),
		src:       src,
		minSrcID:  int64(1) << 62,
		nAct:      len(e.P.Activities()),
		earlyStop: !e.opts.NoEarlyStop,
	}
	for _, s := range src {
		if int64(s) < st.minSrcID {
			st.minSrcID = int64(s)
		}
	}
	return st
}

// run evaluates one destination and accumulates its VC2 vertices into out.
func (st *tstSweepState) run(vj graph.VertexID, out *bitmap.Bitset) {
	// Depth cap, exactly as tstSingleBitset: levels strictly descend by at
	// least one activity and one entity id per step.
	maxD := st.nAct + 1
	if st.earlyStop {
		if gap := int(int64(vj) - st.minSrcID); gap >= 0 && gap/2+2 < maxD {
			maxD = gap/2 + 2
		} else if gap < 0 {
			maxD = 1
		}
	}
	width := maxD + 2
	W := (width + 63) / 64

	p := st.e.P
	n := int(vj) + 1
	// Slots are 1-based so the zero value of slotOf means "unreached".
	slotOf := make([]int32, n)
	depth := newBvArena(W)
	nslots := int32(0)
	reached := bitmap.NewBitset(n)
	slot := func(v uint32) int32 {
		if s := slotOf[v]; s != 0 {
			return s
		}
		nslots++
		slotOf[v] = nslots
		reached.Add(v)
		return nslots
	}

	depth.vec(slot(uint32(vj))).set(0)

	// Downward sweep (decreasing ids). Ancestry rows only hold strictly
	// smaller ids, so a vertex's depth set is final when the countdown
	// reaches it and every push lands ahead of the scan.
	for cur := int(vj); cur >= 0; cur-- {
		if !reached.Contains(uint32(cur)) {
			continue
		}
		v := graph.VertexID(cur)
		dv := depth.vec(slotOf[cur])
		if p.IsKind(v, prov.KindEntity) {
			b, x := st.av.genOut.Row(v)
			for _, a := range b {
				orShift1Into(depth.vec(slot(uint32(a))), dv)
			}
			for _, a := range x {
				orShift1Into(depth.vec(slot(uint32(a))), dv)
			}
		} else {
			b, x := st.av.usedOut.Row(v)
			for _, in := range b {
				orInto(depth.vec(slot(uint32(in))), dv)
			}
			for _, in := range x {
				orInto(depth.vec(slot(uint32(in))), dv)
			}
		}
	}

	// Answer levels: depths at which a source is reached, capped at maxD+1
	// (deeper bits are word-granularity spill, never genuine answer levels).
	var answers bitvec
	for _, s := range st.src {
		if int64(s) >= int64(n) {
			continue
		}
		if sl := slotOf[uint32(s)]; sl != 0 {
			if answers == nil {
				answers = make(bitvec, W)
			}
			orInto(answers, depth.vec(sl))
		}
	}
	if answers == nil {
		return
	}
	top := maxD + 1
	for i := range answers {
		if base := i * 64; base+63 > top {
			if base > top {
				answers[i] = 0
			} else {
				answers[i] &= (1 << uint(top-base+1)) - 1
			}
		}
	}
	maxM := answers.maxBit()
	if maxM < 0 {
		return
	}

	// Upward sweep (increasing ids): evaluate T bottom-up and test
	// membership in place. T only needs bits [0, maxM], so the target
	// arena's width shrinks to the answer window.
	TW := maxM/64 + 1
	ansT := answers[:TW]
	tar := newBvArena(TW)
	reached.Iterate(func(xv uint32) bool {
		v := graph.VertexID(xv)
		sl := slotOf[xv]
		tv := tar.vec(sl)
		if p.IsKind(v, prov.KindEntity) {
			copy(tv, ansT)
			b, x := st.av.genOut.Row(v)
			for _, a := range b {
				orShr1Into(tv, tar.vec(slotOf[uint32(a)]))
			}
			for _, a := range x {
				orShr1Into(tv, tar.vec(slotOf[uint32(a)]))
			}
		} else {
			b, x := st.av.usedOut.Row(v)
			for _, in := range b {
				orInto(tv, tar.vec(slotOf[uint32(in)]))
			}
			for _, in := range x {
				orInto(tv, tar.vec(slotOf[uint32(in)]))
			}
		}
		if depth.vec(sl)[:TW].intersects(tv) {
			out.Add(xv)
		}
		return true
	})
}
