package core

import (
	"sort"

	"repro/internal/bitmap"
	"repro/internal/cflr"
	"repro/internal/graph"
	"repro/internal/prov"
)

// Set-at-a-time VC2 solvers. The scalar SimProvTst/SimProvAlg worklists
// dominate segmentation runtime after PR 7 vectorized the closures: both
// re-check successors vertex-at-a-time through the adjacency wrapper. On a
// frozen snapshot with a plain boundary every per-rule neighbor set is a
// contiguous CSR row, so the same treatment the frontier engine gave the
// closures applies to the solvers themselves:
//
//   - SimProvTst runs the three-sweep depth/target-set solver on temporally
//     monotone snapshots (simprovsweep.go). On out-of-order ingestion the
//     per-level classes become frontier sets materialized by RelView row
//     unions — one pass per level instead of per-vertex generator/input
//     rescans, and the backward answer prune becomes AnyInto probes against
//     a kept-entity bitset (tstVec below).
//   - SimProvAlg's worklist pops are grouped per round and per left vertex:
//     all partners a vertex gains in a round derive through one target-set
//     union followed by a word-parallel DiffAddInto against the existing
//     partner set, replacing per-pair hash pushes (algVec below).
//
// Excluded relation types are dropped when the block views are resolved —
// their CSR blocks are never read (the zero RelView yields empty rows),
// which the graph package's row-read hook pins in tests.
//
// Both solvers are exact replacements: tstVec mirrors tstSingle's
// single-chain plain-mode semantics level by level (including the
// answer-before-early-stop ordering), algVec derives the same fact closure
// as the scalar worklist in batched order (set closure is order-free). The
// scalar paths stay addressable behind Options.ScalarTraversal and the
// difftest harness diffs all four solver variants over randomized
// incremental snapshot chains (difftest.DiffSolvers, FuzzVecSolver).

// vecSolverMinEdges gates the set-at-a-time solvers on the snapshot's
// freeze-time ancestry edge volume: below it, per-destination worklists are
// tiny and the scalar solvers win by skipping the bitset scaffolding (the
// scratch allocation plus O(n/64)-word passes per dense level).
const vecSolverMinEdges = 4096

// vecSolverApplicable reports whether the set-at-a-time solvers may serve
// this query at all: frozen CSR rows to union, a plain boundary (per-edge
// predicates would run per element anyway), and no property-match
// constraints (property signatures split levels into per-value class
// chains, which the single-chain frontier representation cannot express).
func (e *Engine) vecSolverApplicable(ad *adjacency) bool {
	return !e.opts.ScalarTraversal && ad.plain && e.P.Frozen() &&
		e.opts.MatchActivityProp == "" && e.opts.MatchEntityProp == ""
}

// vecSolverChosen applies the regime choice on top of applicability: the
// freeze-time DegreeStats decide whether the ancestry blocks (U and G) are
// big enough for whole-row passes to beat the scalar worklists.
// ForceVecSolver bypasses the heuristic — the differential harness and the
// bench panels force the vectorized side so small graphs exercise it too.
func (e *Engine) vecSolverChosen(ad *adjacency) bool {
	if !e.vecSolverApplicable(ad) {
		return false
	}
	if e.opts.ForceVecSolver {
		return true
	}
	ds := e.P.PG().Degrees()
	ancestry := ds.EdgesWithLabel(e.P.RelLabel(prov.RelUsed)) +
		ds.EdgesWithLabel(e.P.RelLabel(prov.RelGen))
	return ancestry >= vecSolverMinEdges
}

// ancestryViews resolves the U/G block views a vectorized solver needs,
// honoring the boundary's relation exclusions: an excluded relation maps to
// the zero RelView, whose rows are empty — the block itself is never
// acquired, so none of its rows are ever read.
type ancestryViews struct {
	genOut  graph.RelView // entity  -> generating activities (G out-rows)
	genIn   graph.RelView // activity -> generated entities    (G in-rows)
	usedOut graph.RelView // activity -> input entities        (U out-rows)
}

func (e *Engine) resolveAncestryViews(ad *adjacency) ancestryViews {
	g := e.P.PG()
	var av ancestryViews
	if ad.relOK[prov.RelGen] {
		l := e.P.RelLabel(prov.RelGen)
		if g.LabelHasEdges(l, true) {
			av.genOut, _ = g.RelBlockView(l, true)
		}
		if g.LabelHasEdges(l, false) {
			av.genIn, _ = g.RelBlockView(l, false)
		}
	}
	if ad.relOK[prov.RelUsed] {
		l := e.P.RelLabel(prov.RelUsed)
		if g.LabelHasEdges(l, true) {
			av.usedOut, _ = g.RelBlockView(l, true)
		}
	}
	return av
}

// --- tstVec: level-synchronous SimProvTst -------------------------------

// tstVecState carries one query's scratch across destinations. The scratch
// bitset and the kept-entity set are left empty between uses so one
// allocation serves every destination; per-level member lists are reused by
// capacity.
type tstVecState struct {
	e         *Engine
	av        ancestryViews
	srcSet    *bitmap.Bitset
	minSrc    int64
	earlyStop bool
	maxLevel  int
	sparseMax int

	scratch *bitmap.Bitset // level dedup + prune target set; empty between uses
	xe      *bitmap.Bitset // backward-prune kept-entity set; empty between uses

	entLv  [][]uint32 // [e]_m per level (deduplicated, unordered)
	actLv  [][]uint32 // [a]_m per level
	answer []bool     // level contains a source entity

	keptBuf, xeBuf, newBuf, genBuf []uint32
}

func (e *Engine) newTstVecState(ad *adjacency, src []graph.VertexID) *tstVecState {
	n := e.P.NumVertices()
	st := &tstVecState{
		e:         e,
		av:        e.resolveAncestryViews(ad),
		srcSet:    bitmap.NewBitset(n),
		minSrc:    int64(1) << 62,
		earlyStop: !e.opts.NoEarlyStop,
		maxLevel:  n + 1,
		sparseMax: n/64 + 1,
		scratch:   bitmap.NewBitset(n),
		xe:        bitmap.NewBitset(n),
	}
	for _, s := range src {
		st.srcSet.Add(uint32(s))
		if o := e.P.Order(s); o < st.minSrc {
			st.minSrc = o
		}
	}
	return st
}

func (st *tstVecState) ensureLevel(l int) {
	for len(st.entLv) <= l {
		st.entLv = append(st.entLv, nil)
		st.actLv = append(st.actLv, nil)
		st.answer = append(st.answer, false)
	}
}

// unionRows unions the view's rows over the members into dst, deduplicated
// through the scratch bitset. Sparse frontiers (at most n/64 members, the
// array-container regime) test-and-set per element and undo their bits by
// Remove afterwards; dense frontiers pay whole-row OrInto scatters, one
// materializing iteration and one word-parallel Clear instead. The scratch
// is empty again on return either way.
func (st *tstVecState) unionRows(vw graph.RelView, members []uint32, dst []uint32) []uint32 {
	if len(members) <= st.sparseMax {
		for _, m := range members {
			b, x := vw.Row(graph.VertexID(m))
			for _, nb := range b {
				if st.scratch.Add(uint32(nb)) {
					dst = append(dst, uint32(nb))
				}
			}
			for _, nb := range x {
				if st.scratch.Add(uint32(nb)) {
					dst = append(dst, uint32(nb))
				}
			}
		}
		for _, x := range dst {
			st.scratch.Remove(x)
		}
		return dst
	}
	for _, m := range members {
		b, x := vw.Row(graph.VertexID(m))
		bitmap.OrInto(st.scratch, b)
		bitmap.OrInto(st.scratch, x)
	}
	st.scratch.Iterate(func(x uint32) bool { dst = append(dst, x); return true })
	st.scratch.Clear()
	return dst
}

// allOld reports the temporal early stop: every member of the new level is
// strictly older than every source, so no deeper level of this chain can be
// an answer level (derivation strictly descends in order-of-being).
func (st *tstVecState) allOld(ents, acts []uint32) bool {
	for _, x := range ents {
		if st.e.P.Order(graph.VertexID(x)) >= st.minSrc {
			return false
		}
	}
	for _, x := range acts {
		if st.e.P.Order(graph.VertexID(x)) >= st.minSrc {
			return false
		}
	}
	return true
}

// run evaluates one destination: the forward level iteration
// ([a]_{m+1} = generators of [e]_m, [e]_{m+1} = inputs of [a]_{m+1}) as row
// unions, then one fused backward prune over all answer levels.
func (st *tstVecState) run(vj graph.VertexID, out *bitmap.Bitset) {
	st.ensureLevel(0)
	st.entLv[0] = append(st.entLv[0][:0], uint32(vj))
	st.actLv[0] = st.actLv[0][:0]
	st.answer[0] = st.srcSet.Contains(uint32(vj))
	deepest := -1
	if st.answer[0] {
		deepest = 0
	}
	lvl := 0
	for lvl < st.maxLevel {
		st.ensureLevel(lvl + 1)
		acts := st.unionRows(st.av.genOut, st.entLv[lvl], st.actLv[lvl+1][:0])
		st.actLv[lvl+1] = acts
		if len(acts) == 0 {
			break
		}
		ents := st.unionRows(st.av.usedOut, acts, st.entLv[lvl+1][:0])
		st.entLv[lvl+1] = ents
		if len(ents) == 0 {
			break
		}
		lvl++
		ans := false
		for _, x := range ents {
			if st.srcSet.Contains(x) {
				ans = true
				break
			}
		}
		st.answer[lvl] = ans
		if ans {
			deepest = lvl
		}
		// Answer check before the early stop, like the scalar chain: a level
		// that is both an answer and all-old still contributes its prune.
		if st.earlyStop && st.allOld(ents, acts) {
			break
		}
	}
	if deepest >= 0 {
		st.collect(deepest, out)
	}
}

// collect is the backward answer prune, fused over every answer level in
// one sweep from the deepest: the kept-entity set Xe absorbs each answer
// level's full class as the sweep reaches it. Fusing is exact because the
// per-level prune steps (kept activities = those with an input in Xe, kept
// parents = previous level ∩ generated-by-kept) distribute over unions of
// Xe — one walk with the merged set equals the scalar solver's separate
// tstCollect chains.
func (st *tstVecState) collect(deepest int, out *bitmap.Bitset) {
	xeL := st.xeBuf[:0]
	newL := st.newBuf[:0]
	for l := deepest; ; l-- {
		if st.answer[l] {
			for _, x := range st.entLv[l] {
				if st.xe.Add(x) {
					out.Add(x)
					xeL = append(xeL, x)
				}
			}
		}
		if l == 0 {
			break
		}
		// Kept activities: at least one input entity still in Xe. The probe
		// is AnyInto against the kept set — early exit per row.
		kept := st.keptBuf[:0]
		for _, a := range st.actLv[l] {
			b, x := st.av.usedOut.Row(graph.VertexID(a))
			if bitmap.AnyInto(st.xe, b) || bitmap.AnyInto(st.xe, x) {
				kept = append(kept, a)
				out.Add(a)
			}
		}
		st.keptBuf = kept
		// Parent entities: previous level ∩ entities generated by a kept
		// activity. The generated set is built in the scratch bitset (same
		// sparse/dense split as unionRows) and probed per parent candidate.
		genSparse := len(kept) <= st.sparseMax
		genL := st.genBuf[:0] // recorded for the sparse clear only
		for _, a := range kept {
			b, x := st.av.genIn.Row(graph.VertexID(a))
			if genSparse {
				for _, nb := range b {
					if st.scratch.Add(uint32(nb)) {
						genL = append(genL, uint32(nb))
					}
				}
				for _, nb := range x {
					if st.scratch.Add(uint32(nb)) {
						genL = append(genL, uint32(nb))
					}
				}
			} else {
				bitmap.OrInto(st.scratch, b)
				bitmap.OrInto(st.scratch, x)
			}
		}
		newL = newL[:0]
		for _, x := range st.entLv[l-1] {
			if st.scratch.Contains(x) {
				newL = append(newL, x)
				out.Add(x)
			}
		}
		if genSparse {
			for _, x := range genL {
				st.scratch.Remove(x)
			}
		} else {
			st.scratch.Clear()
		}
		st.genBuf = genL[:0]
		// Xe for the next (shallower) iteration is exactly the kept parents.
		for _, x := range xeL {
			st.xe.Remove(x)
		}
		for _, x := range newL {
			st.xe.Add(x)
		}
		xeL, newL = newL, xeL[:0]
	}
	for _, x := range xeL {
		st.xe.Remove(x)
	}
	st.xeBuf, st.newBuf = xeL[:0], newL[:0]
}

// --- algVec: round-grouped SimProvAlg -----------------------------------

// algVecPending is one canonical pair awaiting derivation, keyed for
// grouping by its left vertex.
type algVecPending struct{ u, v uint32 }

// runSimProvAlgVec derives the same Ee/Aa closure as the scalar worklist,
// round by round: pending pairs are grouped by left vertex, each group
// unions its right sides' generator (resp. input) rows into one target set,
// and each left-side generator a1 then gains all its new partners in a
// single word-parallel DiffAddInto against its partner bitset. Per-pair
// hash-queue churn becomes one diff pass per (group, a1).
//
// Requires the default dense-bitset fact sets (DiffAddInto's word-parallel
// path) and the symmetric-pair pruning (rounds push canonical pairs); the
// dispatcher falls back to the scalar worklist otherwise.
func (e *Engine) runSimProvAlgVec(src, dst []graph.VertexID, ad *adjacency) (*algFacts, error) {
	n := e.P.NumVertices()
	facts := &algFacts{
		ee: newPairStore(n, bitmap.BitsetFactory),
		aa: newPairStore(n, bitmap.BitsetFactory),
	}
	av := e.resolveAncestryViews(ad)

	minSrc := int64(1) << 62
	for _, s := range src {
		if o := e.P.Order(s); o < minSrc {
			minSrc = o
		}
	}
	earlyStop := !e.opts.NoEarlyStop

	var pendEe, pendAa []algVecPending
	for _, vj := range dst {
		if !ad.vertexOK(vj) {
			continue
		}
		if facts.ee.add(vj, vj) {
			pendEe = append(pendEe, algVecPending{uint32(vj), uint32(vj)})
			if e.opts.MaxFacts > 0 && facts.NumFacts() > e.opts.MaxFacts {
				return facts, cflr.ErrFactBudget
			}
		}
	}

	target := bitmap.NewBitset(n)
	sparseMax := n/64 + 1
	var targetL, newBuf []uint32

	// derive processes one round of pending pairs of one relation: for each
	// left-vertex group, union the step rows (fwd) of the admitted right
	// sides into the target set, then merge the target into every partner
	// set of the left side's own step row (lhs), pushing the new canonical
	// pairs into the next round of the other relation.
	derive := func(pend []algVecPending, fwd, lhs graph.RelView, store *pairStore, next []algVecPending) ([]algVecPending, error) {
		sort.Slice(pend, func(i, j int) bool { return pend[i].u < pend[j].u })
		for i := 0; i < len(pend); {
			u := pend[i].u
			j := i
			for j < len(pend) && pend[j].u == u {
				j++
			}
			group := pend[i:j]
			i = j
			uOld := earlyStop && e.P.Order(graph.VertexID(u)) < minSrc
			lb, lx := lhs.Row(graph.VertexID(u))
			if len(lb)+len(lx) == 0 {
				continue
			}
			// Target set: union of the step rows over the group's right
			// sides, minus the early-stopped pairs (both sides strictly
			// older than every source can never reach an answer).
			targetL = targetL[:0]
			dense := false
			for _, p := range group {
				if uOld && e.P.Order(graph.VertexID(p.v)) < minSrc {
					continue
				}
				b, x := fwd.Row(graph.VertexID(p.v))
				if dense {
					bitmap.OrInto(target, b)
					bitmap.OrInto(target, x)
					continue
				}
				for _, nb := range b {
					if target.Add(uint32(nb)) {
						targetL = append(targetL, uint32(nb))
					}
				}
				for _, nb := range x {
					if target.Add(uint32(nb)) {
						targetL = append(targetL, uint32(nb))
					}
				}
				if len(targetL) > sparseMax {
					dense = true
				}
			}
			if !dense && len(targetL) == 0 {
				continue
			}
			for _, a1 := range lb {
				var err error
				next, err = facts.mergePartners(store, uint32(a1), target, targetL, dense, &newBuf, next, e.opts.MaxFacts)
				if err != nil {
					return next, err
				}
			}
			for _, a1 := range lx {
				var err error
				next, err = facts.mergePartners(store, uint32(a1), target, targetL, dense, &newBuf, next, e.opts.MaxFacts)
				if err != nil {
					return next, err
				}
			}
			if dense {
				target.Clear()
			} else {
				for _, x := range targetL {
					target.Remove(x)
				}
			}
		}
		return next, nil
	}

	for len(pendEe)+len(pendAa) > 0 {
		// Ee pops derive Aa pairs over the G rows: Aa(a1,a2) <- G^-1 Ee G.
		batch := pendEe
		pendEe = pendEe[len(pendEe):]
		var err error
		pendAa, err = derive(batch, av.genOut, av.genOut, facts.aa, pendAa)
		if err != nil {
			return facts, err
		}
		// Aa pops derive Ee pairs over the U rows: Ee(e1,e2) <- U^-1 Aa U.
		batch = pendAa
		pendAa = pendAa[len(pendAa):]
		pendEe, err = derive(batch, av.usedOut, av.usedOut, facts.ee, pendEe)
		if err != nil {
			return facts, err
		}
	}
	return facts, nil
}

// mergePartners merges the target set into a1's partner set and pushes each
// new canonical pair into next. Dense targets diff word-parallel
// (DiffAddInto); sparse ones walk their element list instead — a handful of
// test-and-set adds beats scanning every word of the partner universe. The
// budget check runs after the merge, like the scalar per-add check but
// batched per row: the returned facts are still a superset witness of the
// budget excess.
func (f *algFacts) mergePartners(store *pairStore, a1 uint32, target *bitmap.Bitset, targetL []uint32, dense bool, newBuf *[]uint32, next []algVecPending, maxFacts int) ([]algVecPending, error) {
	su := store.sets[a1]
	if su == nil {
		su = store.factory(store.n)
		store.sets[a1] = su
	}
	if dense {
		*newBuf = target.DiffAddInto(su, (*newBuf)[:0])
	} else {
		nb := (*newBuf)[:0]
		for _, t := range targetL {
			if su.Add(t) {
				nb = append(nb, t)
			}
		}
		*newBuf = nb
	}
	for _, t := range *newBuf {
		if t != a1 {
			sv := store.sets[t]
			if sv == nil {
				sv = store.factory(store.n)
				store.sets[t] = sv
			}
			sv.Add(a1)
		}
		store.count++
		u, v := a1, t
		if u > v {
			u, v = v, u
		}
		next = append(next, algVecPending{u, v})
	}
	if maxFacts > 0 && f.NumFacts() > maxFacts {
		return next, cflr.ErrFactBudget
	}
	return next, nil
}
