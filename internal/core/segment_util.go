package core

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/bitmap"
	"repro/internal/graph"
	"repro/internal/prov"
)

// NewSegment builds a segment directly from an explicit vertex set: VS is
// the (deduplicated) vertex list and ES every provenance edge among them.
// This is how externally delimited segments (e.g. the Sd generator's, or a
// per-commit slice) enter PgSum without going through a PgSeg query.
func NewSegment(p *prov.Graph, vertices []graph.VertexID) *Segment {
	s := &Segment{
		P:      p,
		ByRule: make(map[graph.VertexID]Rule, len(vertices)),
		vset:   bitmap.NewBitset(p.NumVertices()),
	}
	for _, v := range vertices {
		if s.vset.Add(uint32(v)) {
			s.ByRule[v] = RuleQuery
		}
	}
	s.Vertices = setToVertices(s.vset)
	g := p.PG()
	for _, v := range s.Vertices {
		for _, e := range g.Out(v) {
			if s.vset.Contains(uint32(g.Dst(e))) {
				s.Edges = append(s.Edges, e)
			}
		}
	}
	sort.Slice(s.Edges, func(i, j int) bool { return s.Edges[i] < s.Edges[j] })
	return s
}

// displayName renders a vertex for human-readable output.
func displayName(p *prov.Graph, v graph.VertexID) string {
	if n := p.Name(v); n != "" {
		return n
	}
	return fmt.Sprintf("%v#%d", p.KindOf(v), v)
}

// Render writes a compact text description of the segment: the query
// vertices, then each induced vertex with its rule, then the edges.
func (s *Segment) Render(w io.Writer) {
	fmt.Fprintf(w, "segment: |V|=%d |E|=%d\n", len(s.Vertices), len(s.Edges))
	fmt.Fprintf(w, "  src: %s\n", nameList(s.P, s.Src))
	fmt.Fprintf(w, "  dst: %s\n", nameList(s.P, s.Dst))
	byRule := map[Rule][]graph.VertexID{}
	for _, v := range s.Vertices {
		byRule[s.ByRule[v]] = append(byRule[s.ByRule[v]], v)
	}
	for _, r := range []Rule{RuleC1, RuleC2, RuleC3, RuleC4} {
		if vs := byRule[r]; len(vs) > 0 {
			fmt.Fprintf(w, "  %s: %s\n", r, nameList(s.P, vs))
		}
	}
	for _, e := range s.Edges {
		g := s.P.PG()
		fmt.Fprintf(w, "  %s -[%s]-> %s\n",
			displayName(s.P, g.Src(e)), s.P.RelOf(e), displayName(s.P, g.Dst(e)))
	}
}

func nameList(p *prov.Graph, vs []graph.VertexID) string {
	names := make([]string, len(vs))
	for i, v := range vs {
		names[i] = displayName(p, v)
	}
	return strings.Join(names, ", ")
}

// WriteDOT renders the segment as graphviz DOT.
func (s *Segment) WriteDOT(w io.Writer) error {
	subset := make(map[graph.VertexID]bool, len(s.Vertices))
	for _, v := range s.Vertices {
		subset[v] = true
	}
	return s.P.PG().WriteDOT(w, graph.DOTOptions{
		NameProp: prov.PropName,
		Subset:   subset,
		VertexShape: map[string]string{
			"v:E": "ellipse",
			"v:A": "box",
			"v:U": "house",
		},
	})
}

// Render writes the summary graph in a readable adjacency form, annotating
// vertices with member counts and edges with frequencies (Fig. 2(e)).
func (p *Psg) Render(w io.Writer) {
	fmt.Fprintf(w, "psg: %d nodes (from %d vertices in %d segments), %d edges, cr=%.3f\n",
		len(p.Nodes), p.InputVertices, p.Segments, len(p.Edges), p.CompactionRatio())
	for i, n := range p.Nodes {
		fmt.Fprintf(w, "  [%d] %s x%d\n", i, n.Label, len(n.Members))
	}
	for _, e := range p.Edges {
		fmt.Fprintf(w, "  [%d] -[%s %d%%]-> [%d]\n", e.From, e.Rel, int(e.Freq*100+0.5), e.To)
	}
}

// WriteDOT renders the summary graph as graphviz DOT with frequency-labeled
// edges.
func (p *Psg) WriteDOT(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "digraph psg {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  rankdir=LR;")
	for i, n := range p.Nodes {
		label := fmt.Sprintf("%s\\nx%d", strings.ReplaceAll(n.Label, `"`, `\"`), len(n.Members))
		fmt.Fprintf(w, "  n%d [label=\"%s\"];\n", i, label)
	}
	for _, e := range p.Edges {
		fmt.Fprintf(w, "  n%d -> n%d [label=\"%s %d%%\"];\n", e.From, e.To, e.Rel, int(e.Freq*100+0.5))
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
