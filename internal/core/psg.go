package core

import (
	"fmt"
	"sort"

	"repro/internal/bitmap"
	"repro/internal/graph"
	"repro/internal/prov"
)

// PgSum evaluation (paper Sec. IV.B): initialize the provenance summary
// graph Psg as g0, the class-labeled disjoint union of the input segments,
// then repeatedly merge vertices under the Lemma 5 conditions —
//
//	(1) u 'sin  v  (mutual in-simulation),
//	(2) u 'sout v  (mutual out-simulation),
//	(3) u <=sin v and u <=sout v (both-way dominance),
//
// each of which guarantees no path label is added; merging never removes
// paths, so the Psg invariant (identical path-label language) holds. A
// cycle guard keeps the result a DAG as the Psg definition requires.

// PsgNode is one summary vertex: an equivalence-class-labeled group of
// segment vertex occurrences.
type PsgNode struct {
	// Class is the equivalence class id under (K, Rk).
	Class int
	// Label is a human-readable class name (kind, aggregated properties,
	// and a provenance-type discriminator).
	Label string
	// Members lists the merged occurrences as (segment index, vertex id).
	Members [][2]int
}

// PsgEdge is a summary edge annotated with its appearance frequency across
// segments (paper's gamma).
type PsgEdge struct {
	From, To int
	Rel      prov.Rel
	Freq     float64
}

// Psg is the provenance summary graph.
type Psg struct {
	Nodes []PsgNode
	Edges []PsgEdge
	// InputVertices is the size of g0 (total vertex occurrences across the
	// input segments), the denominator of the compaction ratio.
	InputVertices int
	// Segments is |S|.
	Segments int
	// Rounds is the number of merge rounds performed.
	Rounds int
}

// CompactionRatio returns cr = |M| / |g0 vertices| (paper Sec. V); lower
// is better.
func (p *Psg) CompactionRatio() float64 {
	if p.InputVertices == 0 {
		return 1
	}
	return float64(len(p.Nodes)) / float64(p.InputVertices)
}

// origEdge is a segment edge lifted into occurrence space.
type origEdge struct {
	seg      int
	from, to int // occurrence indices
	rel      prov.Rel
}

// Summarize evaluates PgSum(S, K, Rk) and returns the summary graph.
func Summarize(segs []*Segment, opts SumOptions) (*Psg, error) {
	if len(segs) == 0 {
		return nil, fmt.Errorf("core: PgSum needs at least one segment")
	}
	cls := classify(segs, opts)

	// Build g0: the disjoint union of the segments, labeled by class.
	var (
		labels  []int // per occurrence
		occs    []occRef
		edges   []origEdge
		classNm = make(map[int]string)
	)
	for i, s := range segs {
		occIdx := make(map[graph.VertexID]int, len(s.Vertices))
		for _, v := range s.Vertices {
			o := occRef{seg: i, v: v}
			occIdx[v] = len(occs)
			occs = append(occs, o)
			cl := cls.classOf(o)
			labels = append(labels, cl)
			if _, ok := classNm[cl]; !ok {
				classNm[cl] = cls.className(cl)
			}
		}
		g := s.P.PG()
		for _, e := range s.Edges {
			edges = append(edges, origEdge{
				seg:  i,
				from: occIdx[g.Src(e)],
				to:   occIdx[g.Dst(e)],
				rel:  s.P.RelOf(e),
			})
		}
	}
	classNm = discriminate(classNm)

	// nodeOf maps each occurrence to its current Psg node (dense ids).
	n0 := len(occs)
	nodeOf := make([]int, n0)
	for i := range nodeOf {
		nodeOf[i] = i
	}
	cur := buildSumGraph(labels, nodeOf, n0, edges)

	// Merge loop: one Lemma 5 condition per phase. Batching a single
	// condition is sound (see mergePhase); mixing conditions in one batch
	// can weave cycles through the quotient, so phases alternate with
	// graph rebuilds until a full cycle makes no progress.
	rounds := 0
	for opts.MaxRounds == 0 || rounds < opts.MaxRounds {
		progressed := false
		for _, phase := range []mergeCondition{condInEquiv, condOutEquiv, condDominance} {
			remap, numNew, changed := mergePhase(cur, phase)
			if !changed {
				continue
			}
			progressed = true
			for i := range nodeOf {
				nodeOf[i] = remap[nodeOf[i]]
			}
			cur = buildSumGraph(labels, nodeOf, numNew, edges)
		}
		rounds++
		if !progressed {
			break
		}
	}

	return assemblePsg(cur, nodeOf, labels, occs, segs, edges, classNm, rounds), nil
}

// discriminate appends (t1), (t2), ... to class names that share a base
// name (same kind + aggregated properties, different provenance type).
func discriminate(names map[int]string) map[int]string {
	byBase := make(map[string][]int)
	for cl, base := range names {
		byBase[base] = append(byBase[base], cl)
	}
	out := make(map[int]string, len(names))
	for base, cls := range byBase {
		if len(cls) == 1 {
			out[cls[0]] = base
			continue
		}
		sort.Ints(cls)
		for i, cl := range cls {
			out[cl] = fmt.Sprintf("%s (t%d)", base, i+1)
		}
	}
	return out
}

// buildSumGraph materializes the quotient graph over numNodes nodes: node
// labels come from member occurrences; arcs deduplicate parallel (rel, to)
// pairs (parallel identical edges do not change the path-label language).
func buildSumGraph(labels, nodeOf []int, numNodes int, edges []origEdge) *sumGraph {
	g := &sumGraph{
		label: make([]int, numNodes),
		out:   make([][]halfArc, numNodes),
		in:    make([][]halfArc, numNodes),
	}
	for i, nd := range nodeOf {
		g.label[nd] = labels[i]
	}
	seen := make(map[int64]bool, len(edges))
	for _, e := range edges {
		f, t := nodeOf[e.from], nodeOf[e.to]
		key := int64(f)<<34 | int64(t)<<4 | int64(e.rel)
		if seen[key] {
			continue
		}
		seen[key] = true
		g.out[f] = append(g.out[f], halfArc{to: t, rel: uint8(e.rel)})
		g.in[t] = append(g.in[t], halfArc{to: f, rel: uint8(e.rel)})
	}
	return g
}

// mergeCondition selects which Lemma 5 condition a phase applies.
type mergeCondition int

const (
	// condInEquiv merges mutual in-simulation classes (condition 1). A
	// whole batch is sound: members share their in-path-label language, so
	// no merge adds labels, and a cycle among merged groups would force
	// the longest-in-path length to strictly increase around the cycle
	// while being constant within each group — impossible in a DAG.
	condInEquiv mergeCondition = iota
	// condOutEquiv is the dual (condition 2).
	condOutEquiv
	// condDominance merges u into a node that both in- and out-dominates
	// it (condition 3); sound per-pair, but cycles can appear across
	// independent merges, so this phase maintains quotient reachability
	// and skips cycle-forming merges.
	condDominance
)

// mergePhase computes simulations on the current graph and applies one
// batch of merges under a single Lemma 5 condition. It returns a remap
// from old node ids to new dense node ids, the new node count, and whether
// anything merged.
func mergePhase(g *sumGraph, cond mergeCondition) (remap []int, numNew int, changed bool) {
	n := g.numNodes()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	merged := false

	switch cond {
	case condInEquiv, condOutEquiv:
		sim := simulation(g, cond == condOutEquiv)
		for _, class := range simEquivClasses(sim) {
			for _, m := range class[1:] {
				parent[find(m)] = find(class[0])
				merged = true
			}
		}
	case condDominance:
		simIn := simulation(g, false)
		simOut := simulation(g, true)
		guard := newReachGuard(g)
		for u := 0; u < n; u++ {
			simIn[u].Iterate(func(x uint32) bool {
				v := int(x)
				if v == u || !simOut[u].Contains(x) {
					return true
				}
				if find(v) == find(u) {
					return true
				}
				if guard.wouldCycle(find(u), find(v)) {
					return true // try another dominator
				}
				guard.union(find(u), find(v))
				parent[find(u)] = find(v)
				merged = true
				return false
			})
		}
	}
	if !merged {
		return nil, n, false
	}
	remap = make([]int, n)
	dense := make(map[int]int, n)
	for v := 0; v < n; v++ {
		r := find(v)
		id, ok := dense[r]
		if !ok {
			id = len(dense)
			dense[r] = id
		}
		remap[v] = id
	}
	return remap, len(dense), true
}

// reachGuard tracks reachability in the evolving quotient graph so the
// dominance phase never merges two order-related groups. Groups are keyed
// by their union-find representative at call time.
type reachGuard struct {
	members []*bitmap.Bitset // group -> original nodes inside
	desc    []*bitmap.Bitset // group -> original nodes reachable from it
	anc     []*bitmap.Bitset // group -> original nodes that reach it
	owner   []int            // original node -> current group rep
}

func newReachGuard(g *sumGraph) *reachGuard {
	n := g.numNodes()
	rg := &reachGuard{
		members: make([]*bitmap.Bitset, n),
		desc:    make([]*bitmap.Bitset, n),
		anc:     make([]*bitmap.Bitset, n),
		owner:   make([]int, n),
	}
	// Topological order for transitive closure.
	indeg := make([]int, n)
	for v := 0; v < n; v++ {
		indeg[v] = len(g.in[v])
	}
	var topo []int
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
		rg.owner[v] = v
		rg.members[v] = bitmap.NewBitset(n)
		rg.members[v].Add(uint32(v))
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		topo = append(topo, v)
		for _, arc := range g.out[v] {
			indeg[arc.to]--
			if indeg[arc.to] == 0 {
				queue = append(queue, arc.to)
			}
		}
	}
	for i := len(topo) - 1; i >= 0; i-- {
		v := topo[i]
		s := bitmap.NewBitset(n)
		for _, arc := range g.out[v] {
			s.Add(uint32(arc.to))
			s.UnionWith(rg.desc[arc.to])
		}
		rg.desc[v] = s
	}
	for _, v := range topo {
		s := bitmap.NewBitset(n)
		for _, arc := range g.in[v] {
			s.Add(uint32(arc.to))
			s.UnionWith(rg.anc[arc.to])
		}
		rg.anc[v] = s
	}
	return rg
}

// wouldCycle reports whether merging groups a and b would create a cycle:
// some member of one group reaches a member of the other.
func (rg *reachGuard) wouldCycle(a, b int) bool {
	return rg.desc[a].Intersects(rg.members[b]) || rg.desc[b].Intersects(rg.members[a])
}

// union merges group a into group b and propagates the combined
// reachability to all ancestor and descendant groups (a merge makes
// everything above either group reach everything below both).
func (rg *reachGuard) union(a, b int) {
	rg.members[b].UnionWith(rg.members[a])
	rg.desc[b].UnionWith(rg.desc[a])
	rg.anc[b].UnionWith(rg.anc[a])
	rg.members[a] = rg.members[b]
	rg.desc[a] = rg.desc[b]
	rg.anc[a] = rg.anc[b]
	// Propagate: every node that reaches the merged group now reaches the
	// group and its combined descendants; every node reachable from it
	// gains the group and its combined ancestors.
	descPlus := rg.desc[b].Clone()
	descPlus.UnionWith(rg.members[b])
	ancPlus := rg.anc[b].Clone()
	ancPlus.UnionWith(rg.members[b])
	rg.anc[b].Iterate(func(x uint32) bool {
		rg.desc[rg.owner[x]].UnionWith(descPlus)
		return true
	})
	rg.desc[b].Iterate(func(x uint32) bool {
		rg.anc[rg.owner[x]].UnionWith(ancPlus)
		return true
	})
	rg.members[b].Iterate(func(x uint32) bool {
		rg.owner[x] = b
		return true
	})
}

// assemblePsg builds the final output structure.
func assemblePsg(g *sumGraph, nodeOf, labels []int, occs []occRef, segs []*Segment, edges []origEdge, classNm map[int]string, rounds int) *Psg {
	psg := &Psg{
		Nodes:         make([]PsgNode, g.numNodes()),
		InputVertices: len(occs),
		Segments:      len(segs),
		Rounds:        rounds,
	}
	for i, o := range occs {
		pn := &psg.Nodes[nodeOf[i]]
		if pn.Members == nil {
			pn.Class = labels[i]
			pn.Label = classNm[labels[i]]
		}
		pn.Members = append(pn.Members, [2]int{o.seg, int(o.v)})
	}
	type edgeKey struct {
		from, to int
		rel      prov.Rel
	}
	bySeg := make(map[edgeKey]map[int]bool)
	for _, e := range edges {
		k := edgeKey{from: nodeOf[e.from], to: nodeOf[e.to], rel: e.rel}
		if bySeg[k] == nil {
			bySeg[k] = make(map[int]bool)
		}
		bySeg[k][e.seg] = true
	}
	keys := make([]edgeKey, 0, len(bySeg))
	for k := range bySeg {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].from != keys[j].from {
			return keys[i].from < keys[j].from
		}
		if keys[i].to != keys[j].to {
			return keys[i].to < keys[j].to
		}
		return keys[i].rel < keys[j].rel
	})
	for _, k := range keys {
		psg.Edges = append(psg.Edges, PsgEdge{
			From: k.from,
			To:   k.to,
			Rel:  k.rel,
			Freq: float64(len(bySeg[k])) / float64(len(segs)),
		})
	}
	return psg
}
