package core

import (
	"sort"

	"repro/internal/graph"
)

// Exact rooted isomorphism of k-hop neighborhoods, used to sharpen the
// color-refinement approximation of provenance types Rk (paper Sec. IV.A.1
// condition (c): the k-hop subgraphs must be isomorphic w.r.t. kind and
// aggregated properties).

// neighborhood is a small rooted labeled digraph extracted from a segment:
// node 0 is the root; node labels are refinement colors of the PREVIOUS
// round's assignment (which already fold in kind and K-properties); edges
// carry the PROV relationship.
type neighborhood struct {
	labels []int
	out    [][]halfArc // per node: (to, rel)
	in     [][]halfArc
}

type halfArc struct {
	to  int
	rel uint8
}

// extractNeighborhood builds the k-hop ball around an occurrence, following
// segment edges in both directions; it returns nil when the ball exceeds
// maxNodes (caller falls back to refinement colors).
func (c *classifier) extractNeighborhood(o occRef, maxNodes int) *neighborhood {
	si := c.segs[o.seg]
	g := si.seg.P.PG()
	k := c.opts.TypeRadius

	idx := map[graph.VertexID]int{o.v: 0}
	order := []graph.VertexID{o.v}
	frontier := []graph.VertexID{o.v}
	for hop := 0; hop < k; hop++ {
		var next []graph.VertexID
		for _, v := range frontier {
			for _, e := range si.out[v] {
				d := g.Dst(e)
				if _, ok := idx[d]; !ok {
					idx[d] = len(order)
					order = append(order, d)
					next = append(next, d)
				}
			}
			for _, e := range si.in[v] {
				s := g.Src(e)
				if _, ok := idx[s]; !ok {
					idx[s] = len(order)
					order = append(order, s)
					next = append(next, s)
				}
			}
		}
		if len(order) > maxNodes {
			return nil
		}
		frontier = next
	}
	h := &neighborhood{
		labels: make([]int, len(order)),
		out:    make([][]halfArc, len(order)),
		in:     make([][]halfArc, len(order)),
	}
	for i, v := range order {
		h.labels[i] = c.colors[o.seg][v]
	}
	for i, v := range order {
		for _, e := range si.out[v] {
			if j, ok := idx[g.Dst(e)]; ok {
				rel := uint8(si.seg.P.RelOf(e))
				h.out[i] = append(h.out[i], halfArc{to: j, rel: rel})
				h.in[j] = append(h.in[j], halfArc{to: i, rel: rel})
			}
		}
	}
	for i := range h.out {
		sortArcs(h.out[i])
		sortArcs(h.in[i])
	}
	return h
}

func sortArcs(a []halfArc) {
	sort.Slice(a, func(i, j int) bool {
		if a[i].rel != a[j].rel {
			return a[i].rel < a[j].rel
		}
		return a[i].to < a[j].to
	})
}

// isomorphic reports whether two rooted neighborhoods admit a rooted
// label- and edge-preserving bijection (both directions checked). Nil
// neighborhoods (over-budget extractions) are never considered isomorphic
// to anything, which conservatively keeps their refinement color.
func isomorphic(a, b *neighborhood) bool {
	if a == nil || b == nil {
		return false
	}
	if len(a.labels) != len(b.labels) {
		return false
	}
	if a.labels[0] != b.labels[0] {
		return false
	}
	// Quick invariant: multiset of (label, outdeg, indeg).
	if !sameDegreeProfile(a, b) {
		return false
	}
	n := len(a.labels)
	mapping := make([]int, n) // a-node -> b-node
	used := make([]bool, n)
	for i := range mapping {
		mapping[i] = -1
	}
	mapping[0] = 0
	used[0] = true
	return matchNode(a, b, 1, mapping, used)
}

func sameDegreeProfile(a, b *neighborhood) bool {
	sig := func(h *neighborhood) []int64 {
		out := make([]int64, len(h.labels))
		for i := range h.labels {
			out[i] = int64(h.labels[i])<<32 | int64(len(h.out[i]))<<16 | int64(len(h.in[i]))
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	sa, sb := sig(a), sig(b)
	for i := range sa {
		if sa[i] != sb[i] {
			return false
		}
	}
	return true
}

// matchNode extends a partial mapping over a's nodes in index order
// (index order is BFS from the root, so each new node is adjacent to an
// already-mapped one, keeping the search tight).
func matchNode(a, b *neighborhood, i int, mapping []int, used []bool) bool {
	if i == len(a.labels) {
		return true
	}
	for cand := 0; cand < len(b.labels); cand++ {
		if used[cand] || b.labels[cand] != a.labels[i] {
			continue
		}
		if len(b.out[cand]) != len(a.out[i]) || len(b.in[cand]) != len(a.in[i]) {
			continue
		}
		mapping[i] = cand
		used[cand] = true
		if consistent(a, b, i, mapping) && matchNode(a, b, i+1, mapping, used) {
			return true
		}
		mapping[i] = -1
		used[cand] = false
	}
	return false
}

// consistent checks all arcs between node i and already-mapped nodes.
func consistent(a, b *neighborhood, i int, mapping []int) bool {
	for _, arc := range a.out[i] {
		m := mapping[arc.to]
		if m < 0 {
			continue
		}
		if !hasArc(b.out[mapping[i]], m, arc.rel) {
			return false
		}
	}
	for _, arc := range a.in[i] {
		m := mapping[arc.to]
		if m < 0 {
			continue
		}
		if !hasArc(b.in[mapping[i]], m, arc.rel) {
			return false
		}
	}
	// Reverse direction: arcs in b between mapping[i] and mapped nodes must
	// exist in a (bijective edge preservation).
	inv := make(map[int]int, i+1)
	for ai, bi := range mapping[:i+1] {
		if bi >= 0 {
			inv[bi] = ai
		}
	}
	for _, arc := range b.out[mapping[i]] {
		if ai, ok := inv[arc.to]; ok {
			if !hasArc(a.out[i], ai, arc.rel) {
				return false
			}
		}
	}
	for _, arc := range b.in[mapping[i]] {
		if ai, ok := inv[arc.to]; ok {
			if !hasArc(a.in[i], ai, arc.rel) {
				return false
			}
		}
	}
	return true
}

func hasArc(arcs []halfArc, to int, rel uint8) bool {
	for _, a := range arcs {
		if a.to == to && a.rel == rel {
			return true
		}
	}
	return false
}
